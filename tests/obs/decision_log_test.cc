#include "obs/decision_log.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/json_reader.h"

namespace freshsel::obs {
namespace {

DecisionLog MakeSampleLog() {
  DecisionLog log;
  log.set_algorithm("grasp");
  DecisionRecord add;
  add.round = 0;
  add.kind = DecisionKind::kAdd;
  add.chosen = 7;
  add.gain = 1.5;
  add.profit = 1.5;
  add.score = 1.5;
  add.has_runner_up = true;
  add.runner_up = 3;
  add.runner_up_score = 1.25;
  add.margin = 0.25;
  add.oracle_calls = 12;
  add.calls_saved = 30;
  add.pool_size = 42;
  log.Record(add);
  DecisionRecord swap;
  swap.round = 1;
  swap.restart = 2;
  swap.kind = DecisionKind::kSwap;
  swap.chosen = 9;
  swap.partner = 7;
  swap.gain = 0.125;
  swap.profit = 1.625;
  swap.score = 0.125;
  swap.oracle_calls = 5;
  swap.cache_hits = 4;
  swap.sample_size = 11;
  swap.pool_size = 40;
  log.Record(swap);
  log.AddDegradation("src_004", "history too short");
  return log;
}

std::string ToJson(const DecisionLog& log) {
  JsonWriter writer;
  log.AppendJson(writer);
  return writer.TakeString();
}

TEST(DecisionLogTest, KindNamesAreStable) {
  EXPECT_EQ(DecisionKindName(DecisionKind::kAdd), "add");
  EXPECT_EQ(DecisionKindName(DecisionKind::kRemove), "remove");
  EXPECT_EQ(DecisionKindName(DecisionKind::kSwap), "swap");
  EXPECT_EQ(DecisionKindName(DecisionKind::kSingleton), "singleton");
}

TEST(DecisionLogTest, EmptyAndClear) {
  DecisionLog log;
  EXPECT_TRUE(log.empty());
  log.set_algorithm("greedy/lazy");
  EXPECT_FALSE(log.empty());
  log.Clear();
  EXPECT_TRUE(log.empty());
  log.AddDegradation("s", "r");
  EXPECT_FALSE(log.empty());
}

TEST(DecisionLogTest, ConditionalFieldsMatchRecordState) {
  const std::string json = ToJson(MakeSampleLog());
  // The add record has a runner-up triple but no restart/partner/cache
  // fields; the swap record is the mirror image.
  const std::size_t add_at = json.find("\"round\":0");
  const std::size_t swap_at = json.find("\"round\":1");
  ASSERT_NE(add_at, std::string::npos);
  ASSERT_NE(swap_at, std::string::npos);
  const std::string add_obj = json.substr(add_at, swap_at - add_at);
  EXPECT_NE(add_obj.find("\"runner_up\":3"), std::string::npos);
  EXPECT_NE(add_obj.find("\"margin\""), std::string::npos);
  EXPECT_EQ(add_obj.find("\"restart\""), std::string::npos);
  EXPECT_EQ(add_obj.find("\"partner\""), std::string::npos);
  EXPECT_EQ(add_obj.find("\"cache_hits\""), std::string::npos);
  const std::string swap_obj = json.substr(swap_at);
  EXPECT_NE(swap_obj.find("\"restart\":2"), std::string::npos);
  EXPECT_NE(swap_obj.find("\"partner\":7"), std::string::npos);
  EXPECT_NE(swap_obj.find("\"cache_hits\":4"), std::string::npos);
  EXPECT_NE(swap_obj.find("\"sample_size\":11"), std::string::npos);
  EXPECT_EQ(swap_obj.find("\"runner_up\""), std::string::npos);
}

TEST(DecisionLogTest, JsonRoundTripIsBitIdentical) {
  const DecisionLog log = MakeSampleLog();
  const std::string json = ToJson(log);
  const JsonValue parsed = ParseJson(json).value();
  const DecisionLog reread = DecisionLog::FromJsonValue(parsed).value();
  EXPECT_EQ(ToJson(reread), json);
  ASSERT_EQ(reread.records().size(), 2u);
  EXPECT_EQ(reread.algorithm(), "grasp");
  EXPECT_EQ(reread.records()[0].kind, DecisionKind::kAdd);
  EXPECT_TRUE(reread.records()[0].has_runner_up);
  EXPECT_EQ(reread.records()[0].runner_up, 3u);
  EXPECT_EQ(reread.records()[1].kind, DecisionKind::kSwap);
  EXPECT_EQ(reread.records()[1].partner, 7u);
  EXPECT_FALSE(reread.records()[1].has_runner_up);
  ASSERT_EQ(reread.degraded().size(), 1u);
  EXPECT_EQ(reread.degraded()[0].source, "src_004");
  EXPECT_EQ(reread.degraded()[0].reason, "history too short");
}

TEST(DecisionLogTest, FromJsonValueToleratesUnknownFields) {
  const JsonValue parsed =
      ParseJson("{\"algorithm\": \"greedy/eager\", \"future_field\": [1],"
                " \"decisions\": [{\"round\": 0, \"kind\": \"add\","
                " \"chosen\": 5, \"gain\": 1.0, \"profit\": 1.0,"
                " \"score\": 1.0, \"oracle_calls\": 3, \"calls_saved\": 0,"
                " \"pool_size\": 9, \"not_yet_invented\": true}],"
                " \"degraded\": []}")
          .value();
  const DecisionLog log = DecisionLog::FromJsonValue(parsed).value();
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].chosen, 5u);
  EXPECT_EQ(log.records()[0].pool_size, 9u);
  EXPECT_FALSE(log.records()[0].has_runner_up);
}

TEST(DecisionLogTest, FromJsonValueRejectsNonObject) {
  EXPECT_FALSE(DecisionLog::FromJsonValue(ParseJson("[]").value()).ok());
  EXPECT_FALSE(
      DecisionLog::FromJsonValue(ParseJson("\"log\"").value()).ok());
}

}  // namespace
}  // namespace freshsel::obs
