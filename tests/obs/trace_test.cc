#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace freshsel::obs {
namespace {

/// Each test drives the process-wide trace machinery, so establish a known
/// state on entry and leave tracing disabled on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTraceEnabled(false);
    ClearTrace();
  }
  void TearDown() override {
    SetTraceEnabled(false);
    ClearTrace();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  { TraceSpan span("trace_test/disabled"); }
  EXPECT_TRUE(CollectTrace().empty());
}

TEST_F(TraceTest, NestedSpansParentOnSameThread) {
  SetTraceEnabled(true);
  {
    TraceSpan outer("trace_test/outer");
    { TraceSpan inner("trace_test/inner"); }
  }
  SetTraceEnabled(false);

  const std::vector<TraceEvent> events = CollectTrace();
  ASSERT_EQ(events.size(), 2u);
  // CollectTrace orders by begin time: outer opened first.
  const TraceEvent& outer = events[0];
  const TraceEvent& inner = events[1];
  EXPECT_STREQ(outer.name, "trace_test/outer");
  EXPECT_STREQ(inner.name, "trace_test/inner");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_NE(inner.id, outer.id);
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_LE(outer.begin_ns, inner.begin_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
  EXPECT_LE(inner.begin_ns, inner.end_ns);
}

TEST_F(TraceTest, SequentialSpansDoNotParentEachOther) {
  SetTraceEnabled(true);
  { TraceSpan first("trace_test/first"); }
  { TraceSpan second("trace_test/second"); }
  SetTraceEnabled(false);

  const std::vector<TraceEvent> events = CollectTrace();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[1].parent, 0u);
}

TEST_F(TraceTest, PoolWorkerSpansAttributeToCallerSpan) {
  // Chunks are claimed dynamically, so a fast body can be swallowed whole
  // by the calling thread before the workers wake. Give each chunk real
  // work and retry until some chunk demonstrably ran on a worker thread.
  ThreadPool pool(3);
  SetTraceEnabled(true);
  std::set<std::uint64_t> outer_ids;
  std::set<std::uint32_t> chunk_tids;
  for (int attempt = 0; attempt < 50 && chunk_tids.size() < 2; ++attempt) {
    {
      TraceSpan outer("trace_test/parallel_outer");
      pool.ParallelFor(64, [](std::size_t begin, std::size_t end) {
        TraceSpan chunk("trace_test/chunk");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        volatile std::size_t sink = end - begin;
        static_cast<void>(sink);
      });
    }
    chunk_tids.clear();
    for (const TraceEvent& event : CollectTrace()) {
      if (std::string(event.name) == "trace_test/chunk") {
        chunk_tids.insert(event.tid);
      }
    }
  }
  SetTraceEnabled(false);

  const std::vector<TraceEvent> events = CollectTrace();
  std::size_t chunks = 0;
  for (const TraceEvent& event : events) {
    if (std::string(event.name) == "trace_test/parallel_outer") {
      outer_ids.insert(event.id);
    }
  }
  ASSERT_FALSE(outer_ids.empty());
  for (const TraceEvent& event : events) {
    if (std::string(event.name) != "trace_test/chunk") continue;
    ++chunks;
    // Every pooled chunk span must attribute to one of the caller's
    // spans even when it ran on a worker thread.
    EXPECT_EQ(outer_ids.count(event.parent), 1u)
        << "chunk on tid " << event.tid << " parented to " << event.parent;
  }
  EXPECT_GE(chunks, 1u);
  // With 3 workers plus the calling thread and 1ms chunks, some chunk
  // must land off the calling thread within the retry budget.
  EXPECT_GE(chunk_tids.size(), 2u);
}

TEST_F(TraceTest, ClearTraceDiscardsBufferedEvents) {
  SetTraceEnabled(true);
  { TraceSpan span("trace_test/cleared"); }
  ClearTrace();
  { TraceSpan span("trace_test/kept"); }
  SetTraceEnabled(false);

  const std::vector<TraceEvent> events = CollectTrace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "trace_test/kept");
}

TEST_F(TraceTest, RingBufferOverwriteReportsDrops) {
  SetTraceEnabled(true);
  // Well past the per-thread ring capacity.
  for (int i = 0; i < 20000; ++i) {
    TraceSpan span("trace_test/flood");
  }
  SetTraceEnabled(false);
  EXPECT_GT(TraceDroppedCount(), 0u);
  EXPECT_FALSE(CollectTrace().empty());
  ClearTrace();
  EXPECT_EQ(TraceDroppedCount(), 0u);
}

TEST_F(TraceTest, ChromeJsonStructure) {
  // Build a fixed two-span trace by hand so the serialization assertions
  // don't depend on timing.
  std::vector<TraceEvent> events;
  TraceEvent outer;
  outer.name = "outer";
  outer.begin_ns = 5000;
  outer.end_ns = 9000;
  outer.tid = 0;
  outer.id = 1;
  outer.parent = 0;
  TraceEvent inner;
  inner.name = "inner \"quoted\"";
  inner.begin_ns = 6000;
  inner.end_ns = 8000;
  inner.tid = 3;
  inner.id = 2;
  inner.parent = 1;
  events.push_back(outer);
  events.push_back(inner);

  const std::string json = TraceToChromeJson(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  // JSON string escaping of the quoted name.
  EXPECT_NE(json.find("inner \\\"quoted\\\""), std::string::npos);
  // Timestamps rebase to the earliest event and convert ns -> us:
  // outer starts at 0us for 4us, inner at 1us for 2us.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":2"), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":1"), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, RingOverflowCountsDropsPerThread) {
  SetTraceEnabled(true);
  // kRingCapacity in trace.cc is 16384 events per thread; push that many
  // plus kOverflow so exactly kOverflow overwrites happen on this thread.
  constexpr std::size_t kCapacity = 1 << 14;
  constexpr std::uint64_t kOverflow = 100;
  for (std::size_t i = 0; i < kCapacity + kOverflow; ++i) {
    TraceSpan span("trace_test/overflow");
  }
  SetTraceEnabled(false);

  EXPECT_EQ(TraceDroppedCount(), kOverflow);
  const std::vector<TraceDrop> drops = TraceDroppedByThread();
  ASSERT_FALSE(drops.empty());
  std::uint64_t total = 0;
  for (const TraceDrop& drop : drops) total += drop.dropped;
  EXPECT_EQ(total, TraceDroppedCount());
  for (std::size_t i = 1; i < drops.size(); ++i) {
    EXPECT_LT(drops[i - 1].tid, drops[i].tid);  // Ordered by tid.
  }

  ClearTrace();
  EXPECT_EQ(TraceDroppedCount(), 0u);
  EXPECT_TRUE(TraceDroppedByThread().empty());
}

TEST_F(TraceTest, ChromeJsonEmbedsDropMetadata) {
  std::vector<TraceEvent> events;
  TraceEvent event;
  event.name = "trace_test/drop_meta";
  event.begin_ns = 1000;
  event.end_ns = 2000;
  event.tid = 1;
  event.id = 1;
  events.push_back(event);

  const std::vector<TraceDrop> drops = {{1, 5}, {3, 2}};
  const std::string json = TraceToChromeJson(events, drops);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":7"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_by_thread\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos);
  // Drop-free serializations stay clean of the metadata block.
  EXPECT_EQ(TraceToChromeJson(events).find("otherData"), std::string::npos);
  EXPECT_EQ(TraceToChromeJson(events, {}).find("otherData"),
            std::string::npos);
}

TEST_F(TraceTest, WriteTraceFileRoundTrip) {
  SetTraceEnabled(true);
  { TraceSpan span("trace_test/file_span"); }
  SetTraceEnabled(false);

  const std::string path =
      ::testing::TempDir() + "/obs_trace_test_out.json";
  const Status status = WriteTraceFile(path);
  ASSERT_TRUE(status.ok()) << status.message();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("trace_test/file_span"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace freshsel::obs
