#include "obs/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace freshsel::obs {
namespace {

RunReport MakeSampleReport() {
  RunReport report;
  report.name = "report_test/run";
  report.labels["algorithm"] = "GRASP-(3,5)";
  report.values["profit"] = 1.25;
  report.counters["oracle_calls"] = 42;
  report.AddStage("load", 0.5);
  report.AddStage("select", 1.5);
  return report;
}

TEST(RunReportTest, ToJsonContainsSchemaFields) {
  const RunReport report = MakeSampleReport();
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"report_test/run\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\":\"GRASP-(3,5)\""), std::string::npos);
  EXPECT_NE(json.find("\"values\""), std::string::npos);
  EXPECT_NE(json.find("\"profit\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"oracle_calls\":42"), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

TEST(RunReportTest, StagesPreserveExecutionOrder) {
  const RunReport report = MakeSampleReport();
  ASSERT_EQ(report.stages.size(), 2u);
  EXPECT_EQ(report.stages[0].name, "load");
  EXPECT_EQ(report.stages[1].name, "select");
  const std::string json = report.ToJson();
  EXPECT_LT(json.find("\"load\""), json.find("\"select\""));
}

TEST(RunReportTest, CaptureGlobalMetricsFoldsRegistry) {
  MetricsRegistry::Global().GetCounter("report_test.captured").Add(9);
  RunReport report;
  report.CaptureGlobalMetrics();
  EXPECT_GE(report.metrics.counters.at("report_test.captured"), 9u);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"report_test.captured\""), std::string::npos);
}

TEST(RunReportTest, WriteJsonFileRoundTrip) {
  const RunReport report = MakeSampleReport();
  const std::string path =
      ::testing::TempDir() + "/obs_report_test_out.json";
  const Status status = report.WriteJsonFile(path);
  ASSERT_TRUE(status.ok()) << status.message();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  // WriteJsonFile terminates the file with a newline.
  EXPECT_EQ(buffer.str(), report.ToJson() + "\n");
  std::remove(path.c_str());
}

TEST(RunReportTest, WriteJsonFileBadPathFails) {
  const RunReport report = MakeSampleReport();
  const Status status =
      report.WriteJsonFile("/nonexistent-dir/obs_report_test.json");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace freshsel::obs
