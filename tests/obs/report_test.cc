#include "obs/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace freshsel::obs {
namespace {

RunReport MakeSampleReport() {
  RunReport report;
  report.name = "report_test/run";
  report.labels["algorithm"] = "GRASP-(3,5)";
  report.values["profit"] = 1.25;
  report.counters["oracle_calls"] = 42;
  report.AddStage("load", 0.5);
  report.AddStage("select", 1.5);
  return report;
}

TEST(RunReportTest, ToJsonContainsSchemaFields) {
  const RunReport report = MakeSampleReport();
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"report_test/run\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\":\"GRASP-(3,5)\""), std::string::npos);
  EXPECT_NE(json.find("\"values\""), std::string::npos);
  EXPECT_NE(json.find("\"profit\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"oracle_calls\":42"), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

TEST(RunReportTest, StagesPreserveExecutionOrder) {
  const RunReport report = MakeSampleReport();
  ASSERT_EQ(report.stages.size(), 2u);
  EXPECT_EQ(report.stages[0].name, "load");
  EXPECT_EQ(report.stages[1].name, "select");
  const std::string json = report.ToJson();
  EXPECT_LT(json.find("\"load\""), json.find("\"select\""));
}

TEST(RunReportTest, CaptureGlobalMetricsFoldsRegistry) {
  MetricsRegistry::Global().GetCounter("report_test.captured").Add(9);
  RunReport report;
  report.CaptureGlobalMetrics();
  EXPECT_GE(report.metrics.counters.at("report_test.captured"), 9u);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"report_test.captured\""), std::string::npos);
}

TEST(RunReportTest, WriteJsonFileRoundTrip) {
  const RunReport report = MakeSampleReport();
  const std::string path =
      ::testing::TempDir() + "/obs_report_test_out.json";
  const Status status = report.WriteJsonFile(path);
  ASSERT_TRUE(status.ok()) << status.message();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  // WriteJsonFile terminates the file with a newline.
  EXPECT_EQ(buffer.str(), report.ToJson() + "\n");
  std::remove(path.c_str());
}

TEST(RunReportTest, WriteJsonFileBadPathFails) {
  const RunReport report = MakeSampleReport();
  const Status status =
      report.WriteJsonFile("/nonexistent-dir/obs_report_test.json");
  EXPECT_FALSE(status.ok());
}

// Golden v1 document (the pre-decision-log schema exactly as PR-era
// writers emitted it): must stay loadable forever - committed BENCH_*.json
// baselines from that era are still diffable.
constexpr char kGoldenV1[] =
    "{\"schema_version\":1,\"name\":\"bench_micro_selection\","
    "\"labels\":{\"algorithm\":\"greedy\"},"
    "\"values\":{\"profit\":1.9199999999999999},"
    "\"counters\":{\"oracle_calls\":812},"
    "\"stages\":[{\"name\":\"select\",\"seconds\":0.25}],"
    "\"metrics\":{\"counters\":{\"selection.greedy.rounds\":20},"
    "\"gauges\":{\"selection.universe.size\":100},"
    "\"histograms\":{}}}";

TEST(RunReportTest, ReadsGoldenV1Document) {
  const RunReport report = RunReport::FromJson(kGoldenV1).value();
  EXPECT_EQ(report.name, "bench_micro_selection");
  EXPECT_EQ(report.labels.at("algorithm"), "greedy");
  EXPECT_DOUBLE_EQ(report.values.at("profit"), 1.92);
  EXPECT_EQ(report.counters.at("oracle_calls"), 812u);
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_EQ(report.stages[0].name, "select");
  EXPECT_EQ(report.metrics.counters.at("selection.greedy.rounds"), 20u);
  // v1 has no decision log; it defaults to empty, not an error.
  EXPECT_TRUE(report.decision_log.empty());
}

TEST(RunReportTest, V2RoundTripIsBitIdentical) {
  RunReport report = MakeSampleReport();
  DecisionRecord record;
  record.round = 0;
  record.chosen = 7;
  record.gain = 0.1;  // Not exactly representable: %.17g must round-trip.
  record.profit = 1.0 / 3.0;
  record.score = 0.1;
  record.oracle_calls = 41;
  record.calls_saved = 1;
  record.pool_size = 42;
  report.decision_log.set_algorithm("greedy/lazy");
  report.decision_log.Record(record);
  report.decision_log.AddDegradation("src_002", "window too sparse");
  report.metrics.counters["selection.oracle.calls"] = 1u << 30;
  Histogram::Snapshot hist;
  hist.bounds = {0.5};
  hist.counts = {3, 1};
  hist.count = 4;
  hist.sum = 1.75;
  report.metrics.histograms["stage.select.seconds"] = hist;

  const std::string json = report.ToJson();
  const RunReport reread = RunReport::FromJson(json).value();
  EXPECT_EQ(reread.ToJson(), json);
  ASSERT_EQ(reread.decision_log.records().size(), 1u);
  EXPECT_EQ(reread.decision_log.records()[0].chosen, 7u);
  EXPECT_EQ(reread.decision_log.records()[0].profit, 1.0 / 3.0);
}

TEST(RunReportTest, FromJsonToleratesUnknownFutureFields) {
  std::string json(kGoldenV1);
  json.insert(1, "\"schema_version_99_field\":{\"nested\":[1,2]},");
  const RunReport report = RunReport::FromJson(json).value();
  EXPECT_EQ(report.name, "bench_micro_selection");
}

TEST(RunReportTest, FromJsonRejectsBadDocuments) {
  EXPECT_FALSE(RunReport::FromJson("[]").ok());
  EXPECT_FALSE(RunReport::FromJson("{\"name\":\"x\"}").ok());  // No version.
  EXPECT_FALSE(
      RunReport::FromJson("{\"schema_version\":0,\"name\":\"x\"}").ok());
  EXPECT_FALSE(RunReport::FromJson("not json").ok());
}

TEST(RunReportTest, ReadJsonFileRoundTrip) {
  const RunReport report = MakeSampleReport();
  const std::string path =
      ::testing::TempDir() + "/obs_report_read_test.json";
  ASSERT_TRUE(report.WriteJsonFile(path).ok());
  const RunReport reread = RunReport::ReadJsonFile(path).value();
  EXPECT_EQ(reread.ToJson(), report.ToJson());
  std::remove(path.c_str());
  EXPECT_FALSE(RunReport::ReadJsonFile(path).ok());
}

}  // namespace
}  // namespace freshsel::obs
