#include "obs/json_reader.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace freshsel::obs {
namespace {

TEST(JsonReaderTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null").value().is_null());
  EXPECT_TRUE(ParseJson("true").value().AsBool());
  EXPECT_FALSE(ParseJson("false").value().AsBool());
  EXPECT_DOUBLE_EQ(ParseJson("-2.5e3").value().AsDouble(), -2500.0);
  EXPECT_EQ(ParseJson("\"hi\"").value().AsString(), "hi");
}

TEST(JsonReaderTest, ParsesNestedObjectInDocumentOrder) {
  const JsonValue doc =
      ParseJson("{\"b\": [1, 2, {\"x\": true}], \"a\": {\"y\": null}}")
          .value();
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "b");  // Document order, not sorted.
  EXPECT_EQ(doc.members()[1].first, "a");
  const JsonValue* array = doc.Find("b");
  ASSERT_NE(array, nullptr);
  ASSERT_EQ(array->items().size(), 3u);
  EXPECT_DOUBLE_EQ(array->items()[1].AsDouble(), 2.0);
  EXPECT_TRUE(array->items()[2].Find("x")->AsBool());
}

TEST(JsonReaderTest, ExactUint64SurvivesAboveDoublePrecision) {
  // 2^53 + 1 is not representable as a double; the exact integer channel
  // must preserve it for counter round trips.
  const JsonValue value = ParseJson("9007199254740993").value();
  EXPECT_EQ(value.AsUint64(), 9007199254740993ull);
  // 19 digits is the exact-channel ceiling (always fits uint64).
  const JsonValue big = ParseJson("9999999999999999999").value();
  EXPECT_EQ(big.AsUint64(), 9999999999999999999ull);
}

TEST(JsonReaderTest, AsUint64TruncatesDoublesAndClampsNegatives) {
  EXPECT_EQ(ParseJson("3.9").value().AsUint64(), 3u);
  EXPECT_EQ(ParseJson("-7").value().AsUint64(), 0u);
  EXPECT_EQ(ParseJson("\"nope\"").value().AsUint64(), 0u);
}

TEST(JsonReaderTest, StringEscapesAndSurrogatePairs) {
  const JsonValue value =
      ParseJson("\"a\\n\\t\\\"\\\\b\\u0041\\uD83D\\uDE00\"").value();
  EXPECT_EQ(value.AsString(), "a\n\t\"\\bA\xF0\x9F\x98\x80");
}

TEST(JsonReaderTest, TypedMemberShorthands) {
  const JsonValue doc =
      ParseJson("{\"n\": 1.5, \"u\": 7, \"s\": \"x\"}").value();
  EXPECT_DOUBLE_EQ(doc.NumberOr("n", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(doc.NumberOr("missing", -1.0), -1.0);
  EXPECT_EQ(doc.UintOr("u", 0), 7u);
  EXPECT_EQ(doc.UintOr("s", 9), 9u);  // Wrong kind -> fallback.
  EXPECT_EQ(doc.StringOr("s", ""), "x");
  EXPECT_EQ(doc.StringOr("n", "d"), "d");
}

TEST(JsonReaderTest, ErrorsCarryByteOffset) {
  for (const char* bad :
       {"{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1e", "-",
        "{\"a\":1}x"}) {
    const Result<JsonValue> result = ParseJson(bad);
    EXPECT_FALSE(result.ok()) << bad;
  }
}

TEST(JsonReaderTest, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonReaderTest, ParseJsonFileMissingFileFails) {
  EXPECT_FALSE(ParseJsonFile("/nonexistent-dir/none.json").ok());
}

}  // namespace
}  // namespace freshsel::obs
