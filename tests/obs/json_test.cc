#include "obs/json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace freshsel::obs {
namespace {

TEST(JsonEscapeTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape(std::string("a\x01"
                                   "b")),
            "a\\u0001b");
}

TEST(JsonWriterTest, ObjectWithFields) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Field("s", "text");
  writer.Field("d", 1.5);
  writer.Field("u", std::uint64_t{7});
  writer.EndObject();
  EXPECT_EQ(writer.str(), "{\"s\":\"text\",\"d\":1.5,\"u\":7}");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("items");
  writer.BeginArray();
  writer.Uint(1);
  writer.Uint(2);
  writer.BeginObject();
  writer.Field("k", "v");
  writer.EndObject();
  writer.EndArray();
  writer.EndObject();
  EXPECT_EQ(writer.str(), "{\"items\":[1,2,{\"k\":\"v\"}]}");
}

TEST(JsonWriterTest, ScalarsAndNull) {
  JsonWriter writer;
  writer.BeginArray();
  writer.Bool(true);
  writer.Bool(false);
  writer.Null();
  writer.Int(-3);
  writer.EndArray();
  EXPECT_EQ(writer.str(), "[true,false,null,-3]");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter writer;
  writer.BeginArray();
  writer.Double(std::numeric_limits<double>::infinity());
  writer.Double(-std::numeric_limits<double>::infinity());
  writer.Double(std::nan(""));
  writer.EndArray();
  EXPECT_EQ(writer.str(), "[null,null,null]");
}

TEST(JsonWriterTest, DoublesRoundTrip) {
  JsonWriter writer;
  writer.BeginArray();
  writer.Double(0.1);
  writer.Double(1e-9);
  writer.EndArray();
  // Parse back the two values and compare exactly.
  const std::string& out = writer.str();
  double a = 0.0;
  double b = 0.0;
  ASSERT_EQ(std::sscanf(out.c_str(), "[%lf,%lf]", &a, &b), 2);
  EXPECT_EQ(a, 0.1);
  EXPECT_EQ(b, 1e-9);
}

TEST(JsonWriterTest, TakeStringMoves) {
  JsonWriter writer;
  writer.BeginObject();
  writer.EndObject();
  EXPECT_EQ(writer.TakeString(), "{}");
}

}  // namespace
}  // namespace freshsel::obs
