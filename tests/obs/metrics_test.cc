#include "obs/metrics.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/macros.h"

namespace freshsel::obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ExactUnderThreadPool) {
  Counter counter;
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 100000;
  pool.ParallelFor(kTasks, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) counter.Add();
  });
  EXPECT_EQ(counter.Value(), kTasks);
}

TEST(CounterTest, ExactUnderRawThreads) {
  // More threads than shards: stripes wrap around, totals must still be
  // exact.
  Counter counter;
  constexpr int kThreads = 12;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndReset) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  EXPECT_EQ(gauge.Value(), 3.5);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, UpperInclusiveBucketBoundaries) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Record(0.5);     // <= 1.0 -> bucket 0.
  histogram.Record(1.0);     // == bound is inclusive -> bucket 0.
  histogram.Record(1.0001);  // just above -> bucket 1.
  histogram.Record(10.0);    // bucket 1.
  histogram.Record(100.0);   // bucket 2.
  histogram.Record(100.01);  // above the last bound -> overflow bucket.

  const Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);  // 3 bounds + overflow.
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 2u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.count, 6u);
}

TEST(HistogramTest, ExtremeValues) {
  Histogram histogram({1.0, 10.0});
  histogram.Record(0.0);
  histogram.Record(-5.0);  // Below every bound -> first bucket.
  histogram.Record(1e300);
  const Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.count, 3u);
}

TEST(HistogramTest, SumAndMean) {
  Histogram histogram({1.0, 10.0});
  histogram.Record(2.0);
  histogram.Record(4.0);
  const Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snapshot.sum, 6.0);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 3.0);
  histogram.Reset();
  EXPECT_EQ(histogram.TakeSnapshot().count, 0u);
  EXPECT_DOUBLE_EQ(histogram.TakeSnapshot().Mean(), 0.0);
}

TEST(HistogramTest, ExactCountAndSumUnderThreadPool) {
  Histogram histogram(Histogram::DefaultLatencyBounds());
  ThreadPool pool(4);
  constexpr std::size_t kRecords = 50000;
  pool.ParallelFor(kRecords, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) histogram.Record(0.001);
  });
  const Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_EQ(snapshot.count, kRecords);
  // The sum is a CAS loop on a double; with identical addends it must be
  // exact (no lost updates, and 50'000 * 0.001 is exactly representable
  // step by step within tolerance).
  EXPECT_NEAR(snapshot.sum, 0.001 * static_cast<double>(kRecords), 1e-6);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : snapshot.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, kRecords);
}

TEST(HistogramTest, DefaultLatencyBoundsAscending) {
  const std::vector<double> bounds = Histogram::DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_LE(bounds.front(), 1e-5);  // Catches micro-scale latencies.
  EXPECT_GE(bounds.back(), 10.0);   // And whole-run scale ones.
}

TEST(RegistryTest, SameNameSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.GetHistogram("h");
  Histogram& h2 = registry.GetHistogram("h", {1.0, 2.0});  // Name wins.
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.bounds(), Histogram::DefaultLatencyBounds());
}

TEST(RegistryTest, SnapshotAndResetAll) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("events");
  counter.Add(7);
  registry.GetGauge("width").Set(2.0);
  registry.GetHistogram("lat").Record(0.5);

  MetricsSnapshot snapshot = registry.TakeSnapshot();
  EXPECT_EQ(snapshot.counters.at("events"), 7u);
  EXPECT_EQ(snapshot.gauges.at("width"), 2.0);
  EXPECT_EQ(snapshot.histograms.at("lat").count, 1u);

  registry.ResetAll();
  snapshot = registry.TakeSnapshot();
  // Registrations survive (cached references stay valid), values zero.
  EXPECT_EQ(snapshot.counters.at("events"), 0u);
  EXPECT_EQ(snapshot.gauges.at("width"), 0.0);
  EXPECT_EQ(snapshot.histograms.at("lat").count, 0u);
  counter.Add();  // The old reference still works.
  EXPECT_EQ(registry.TakeSnapshot().counters.at("events"), 1u);
}

TEST(RegistryTest, ConcurrentRegistrationAndUse) {
  MetricsRegistry registry;
  ThreadPool pool(4);
  std::vector<std::string> counter_names;
  std::vector<std::string> histogram_names;
  for (int i = 0; i < 7; ++i) counter_names.push_back("c" + std::to_string(i));
  for (int i = 0; i < 3; ++i) {
    histogram_names.push_back("h" + std::to_string(i));
  }
  pool.ParallelFor(1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      registry.GetCounter(counter_names[i % 7]).Add();
      registry.GetHistogram(histogram_names[i % 3]).Record(0.01);
    }
  });
  const MetricsSnapshot snapshot = registry.TakeSnapshot();
  std::uint64_t total = 0;
  for (const auto& [name, value] : snapshot.counters) total += value;
  EXPECT_EQ(total, 1000u);
  std::uint64_t records = 0;
  for (const auto& [name, h] : snapshot.histograms) records += h.count;
  EXPECT_EQ(records, 1000u);
}

TEST(SnapshotTest, JsonAndTextShapes) {
  MetricsRegistry registry;
  registry.GetCounter("a.count").Add(3);
  registry.GetGauge("b.gauge").Set(1.5);
  registry.GetHistogram("c.lat", {1.0}).Record(0.5);
  const MetricsSnapshot snapshot = registry.TakeSnapshot();

  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c.lat\""), std::string::npos);

  const std::string text = snapshot.ToText();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("3"), std::string::npos);
}

TEST(HistogramPercentileTest, InterpolatesInsideBuckets) {
  Histogram::Snapshot snapshot;
  snapshot.bounds = {10.0, 20.0};
  snapshot.counts = {4, 4, 2};  // Two finite buckets + overflow.
  snapshot.count = 10;
  // Rank 5 is the first record of the [10, 20] bucket: 1/4 into it.
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.5), 12.5);
  // Rank 2.5 sits 62.5% into the first bucket, whose lower edge is 0.
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.25), 6.25);
  // q clamps to [0, 1].
  EXPECT_DOUBLE_EQ(snapshot.Percentile(-1.0), snapshot.Percentile(0.0));
  EXPECT_DOUBLE_EQ(snapshot.Percentile(2.0), snapshot.Percentile(1.0));
}

TEST(HistogramPercentileTest, OverflowBucketReportsLastFiniteEdge) {
  Histogram::Snapshot snapshot;
  snapshot.bounds = {10.0, 20.0};
  snapshot.counts = {4, 4, 2};
  snapshot.count = 10;
  // Ranks 9.5 and 10 land in the overflow bucket: the estimate floors at
  // the last finite edge rather than extrapolating.
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.95), 20.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(1.0), 20.0);
}

TEST(HistogramPercentileTest, EmptyHistogramReportsZero) {
  Histogram::Snapshot snapshot;
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.5), 0.0);
  snapshot.bounds = {1.0};
  snapshot.counts = {0, 0};
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.99), 0.0);
}

TEST(HistogramPercentileTest, LivePercentilesAreOrderedAndBounded) {
  Histogram histogram({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 50; ++i) histogram.Record(0.5);
  for (int i = 0; i < 45; ++i) histogram.Record(3.0);
  for (int i = 0; i < 5; ++i) histogram.Record(7.0);
  const Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  const double p50 = snapshot.Percentile(0.50);
  const double p95 = snapshot.Percentile(0.95);
  const double p99 = snapshot.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p99, 8.0);
  // 50 of 100 records are <= 1.0, so p50 lives in the first bucket.
  EXPECT_LE(p50, 1.0);
  // The top 5% are in the (4, 8] bucket.
  EXPECT_GT(p99, 4.0);
}

TEST(ScopedLatencyTimerTest, RecordsOnDestruction) {
  Histogram histogram(Histogram::DefaultLatencyBounds());
  {
    ScopedLatencyTimer timer(histogram);
    EXPECT_GE(timer.ElapsedSeconds(), 0.0);
    EXPECT_GE(timer.ElapsedMillis(), 0.0);
  }
  const Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_GE(snapshot.sum, 0.0);
}

#if FRESHSEL_OBS_ACTIVE
TEST(MacroTest, CountMacroReachesGlobalRegistry) {
  FRESHSEL_OBS_COUNT("obs_test.macro.counter", 2);
  FRESHSEL_OBS_COUNT("obs_test.macro.counter", 3);
  const MetricsSnapshot snapshot =
      MetricsRegistry::Global().TakeSnapshot();
  EXPECT_GE(snapshot.counters.at("obs_test.macro.counter"), 5u);
}

TEST(MacroTest, ScopedLatencyMacroRecords) {
  { FRESHSEL_OBS_SCOPED_LATENCY("obs_test.macro.latency"); }
  const MetricsSnapshot snapshot =
      MetricsRegistry::Global().TakeSnapshot();
  EXPECT_GE(snapshot.histograms.at("obs_test.macro.latency").count, 1u);
}
#endif  // FRESHSEL_OBS_ACTIVE

}  // namespace
}  // namespace freshsel::obs
