#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace freshsel::obs {
namespace {

MetricsSnapshot MakeSnapshot() {
  MetricsSnapshot snapshot;
  snapshot.counters["selection.oracle.calls"] = 812;
  snapshot.gauges["selection.universe.size"] = 100.0;
  Histogram::Snapshot hist;
  hist.bounds = {0.125, 1.0};
  hist.counts = {2, 1, 1};  // Two buckets + overflow.
  hist.count = 4;
  hist.sum = 3.5;
  snapshot.histograms["stage.select.seconds"] = hist;
  return snapshot;
}

TEST(OpenMetricsTest, CounterFamilyWithTotalSuffix) {
  const std::string text = MakeSnapshot().ToOpenMetrics();
  EXPECT_NE(
      text.find("# TYPE freshsel_selection_oracle_calls counter"),
      std::string::npos);
  // The HELP line preserves the dotted id for dashboard mapping.
  EXPECT_NE(text.find("selection.oracle.calls"), std::string::npos);
  EXPECT_NE(text.find("freshsel_selection_oracle_calls_total 812\n"),
            std::string::npos);
}

TEST(OpenMetricsTest, GaugeFamily) {
  const std::string text = MakeSnapshot().ToOpenMetrics();
  EXPECT_NE(text.find("# TYPE freshsel_selection_universe_size gauge"),
            std::string::npos);
  EXPECT_NE(text.find("freshsel_selection_universe_size 100\n"),
            std::string::npos);
}

TEST(OpenMetricsTest, HistogramBucketsAreCumulativeWithInf) {
  const std::string text = MakeSnapshot().ToOpenMetrics();
  const std::string name = "freshsel_stage_select_seconds";
  EXPECT_NE(text.find("# TYPE " + name + " histogram"), std::string::npos);
  const std::size_t b1 = text.find(name + "_bucket{le=\"0.125\"} 2\n");
  const std::size_t b2 = text.find(name + "_bucket{le=\"1\"} 3\n");
  const std::size_t binf = text.find(name + "_bucket{le=\"+Inf\"} 4\n");
  ASSERT_NE(b1, std::string::npos);
  ASSERT_NE(b2, std::string::npos);
  ASSERT_NE(binf, std::string::npos);
  EXPECT_LT(b1, b2);
  EXPECT_LT(b2, binf);
  EXPECT_NE(text.find(name + "_sum 3.5\n"), std::string::npos);
  EXPECT_NE(text.find(name + "_count 4\n"), std::string::npos);
}

TEST(OpenMetricsTest, EndsWithEofMarker) {
  const std::string text = MakeSnapshot().ToOpenMetrics();
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  // Empty snapshots still terminate correctly.
  EXPECT_EQ(MetricsSnapshot().ToOpenMetrics(), "# EOF\n");
}

}  // namespace
}  // namespace freshsel::obs
