// Compiles the instrumentation macros with FRESHSEL_OBS_FORCE_OFF (the
// per-translation-unit equivalent of building with -DFRESHSEL_OBS=OFF) and
// asserts they expand to nothing: no trace spans, no registry entries, and
// FRESHSEL_OBS_ACTIVE visible as 0 to conditional code.
#define FRESHSEL_OBS_FORCE_OFF
#include "obs/macros.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

static_assert(FRESHSEL_OBS_ACTIVE == 0,
              "FRESHSEL_OBS_FORCE_OFF must disable the obs macros");

namespace freshsel::obs {
namespace {

TEST(ObsOffTest, MacrosRegisterNothing) {
  FRESHSEL_TRACE_SPAN("obs_off_test/never_span");
  FRESHSEL_OBS_COUNT("obs_off_test.never.counter", 123);
  FRESHSEL_OBS_GAUGE_SET("obs_off_test.never.gauge", 1.0);
  FRESHSEL_OBS_HISTOGRAM_RECORD("obs_off_test.never.hist", 0.5);
  { FRESHSEL_OBS_SCOPED_LATENCY("obs_off_test.never.latency"); }

  const MetricsSnapshot snapshot = MetricsRegistry::Global().TakeSnapshot();
  EXPECT_EQ(snapshot.counters.count("obs_off_test.never.counter"), 0u);
  EXPECT_EQ(snapshot.gauges.count("obs_off_test.never.gauge"), 0u);
  EXPECT_EQ(snapshot.histograms.count("obs_off_test.never.hist"), 0u);
  EXPECT_EQ(snapshot.histograms.count("obs_off_test.never.latency"), 0u);
}

TEST(ObsOffTest, DisabledSpanEmitsNoTraceEventsEvenWhenEnabled) {
  SetTraceEnabled(true);
  ClearTrace();
  { FRESHSEL_TRACE_SPAN("obs_off_test/enabled_but_compiled_out"); }
  SetTraceEnabled(false);
  for (const TraceEvent& event : CollectTrace()) {
    EXPECT_NE(std::string(event.name),
              "obs_off_test/enabled_but_compiled_out");
  }
  ClearTrace();
}

TEST(ObsOffTest, MacrosAreStatementSafe) {
  // Must parse as a single statement in unbraced control flow.
  if (true) FRESHSEL_OBS_COUNT("obs_off_test.branch.count", 1);
  for (int i = 0; i < 1; ++i)
    FRESHSEL_OBS_GAUGE_SET("obs_off_test.loop.gauge", 1.0);
  EXPECT_EQ(MetricsRegistry::Global().TakeSnapshot().counters.count(
                "obs_off_test.branch.count"),
            0u);
}

}  // namespace
}  // namespace freshsel::obs
