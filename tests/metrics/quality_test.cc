#include "metrics/quality.h"

#include <cstdint>
#include <gtest/gtest.h>

#include "source/source_simulator.h"
#include "testing/test_world.h"
#include "world/world_simulator.h"

namespace freshsel::metrics {
namespace {

TEST(MetricsFromCountsTest, FormulasMatchDefinitions) {
  // 10 world entities; result holds 6 of which 5 covered and 3 up-to-date.
  QualityCounts counts{3, 5, 6, 10};
  QualityMetrics m = MetricsFromCounts(counts);
  EXPECT_DOUBLE_EQ(m.coverage, 0.5);          // Eq. 1.
  EXPECT_DOUBLE_EQ(m.local_freshness, 0.5);   // Eq. 2: 3/6.
  EXPECT_DOUBLE_EQ(m.global_freshness, 0.3);  // Eq. 3.
  // |F u Omega| = 10 + (6 - 5) = 11 -> accuracy 3/11 (Eq. 4).
  EXPECT_DOUBLE_EQ(m.accuracy, 3.0 / 11.0);
}

TEST(MetricsFromCountsTest, AccuracyEquationFiveEquivalence) {
  // Eq. 5: Acc = GF / (1 - Cov + GF/LF). Verify against the count form.
  QualityCounts counts{4, 7, 9, 20};
  QualityMetrics m = MetricsFromCounts(counts);
  const double eq5 = m.global_freshness /
                     (1.0 - m.coverage +
                      m.global_freshness / m.local_freshness);
  EXPECT_NEAR(m.accuracy, eq5, 1e-12);
}

TEST(MetricsFromCountsTest, DegenerateDenominators) {
  QualityMetrics empty = MetricsFromCounts({0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(empty.coverage, 0.0);
  EXPECT_DOUBLE_EQ(empty.local_freshness, 0.0);
  EXPECT_DOUBLE_EQ(empty.accuracy, 0.0);

  QualityMetrics no_world = MetricsFromCounts({2, 0, 3, 0});
  EXPECT_DOUBLE_EQ(no_world.coverage, 0.0);
  EXPECT_DOUBLE_EQ(no_world.local_freshness, 2.0 / 3.0);
}

TEST(ComputeCountsTest, HandBuiltScenario) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(w);

  // Day 11: source holds {0 (out: world v1, source v0), 1 (up), 2 (up)}.
  // World at day 11: entities 0, 1, 2 alive (3 of 6; entity 3 born at 15).
  QualityCounts counts = ComputeCounts(w, {&s}, 11);
  EXPECT_EQ(counts.up, 2);
  EXPECT_EQ(counts.covered, 3);
  EXPECT_EQ(counts.in_result, 3);
  EXPECT_EQ(counts.world_total, 3);

  // Day 52: entity 0 dead in world (50) but still in source -> ghost.
  counts = ComputeCounts(w, {&s}, 52);
  EXPECT_EQ(counts.in_result, 3);
  EXPECT_EQ(counts.covered, 2);
}

TEST(ComputeCountsTest, UnionAcrossSources) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s1 = testing::MakeTestSource(w);

  // A second source carrying only entity 3 (subdomain 2), up to date.
  source::SourceSpec spec;
  spec.name = "s2";
  spec.scope = {2};
  source::SourceHistory s2(spec, w.entity_count());
  source::CaptureRecord rec;
  rec.entity = 3;
  rec.subdomain = 2;
  rec.inserted = 15;
  rec.version_captures = {{0, 15}, {1, 40}, {2, 60}};
  ASSERT_TRUE(s2.AddRecord(rec).ok());

  QualityCounts single = ComputeCounts(w, {&s1}, 45);
  QualityCounts both = ComputeCounts(w, {&s1, &s2}, 45);
  EXPECT_EQ(both.in_result, single.in_result + 1);
  EXPECT_EQ(both.up, single.up + 1);
  EXPECT_EQ(both.world_total, single.world_total);
}

TEST(ComputeCountsTest, MaskRestrictsCounts) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(w);
  BitVector mask = integration::DomainMask(w, {0});
  const std::int64_t world_in_mask = w.CountAtIn({0}, 11);
  QualityCounts counts = ComputeCounts(w, {&s}, 11, &mask, world_in_mask);
  // Only entities 0, 1 (subdomain 0) counted; entity 2 excluded.
  EXPECT_EQ(counts.in_result, 2);
  EXPECT_EQ(counts.covered, 2);
  EXPECT_EQ(counts.up, 1);
  EXPECT_EQ(counts.world_total, 2);
}

TEST(CountsFromSignaturesTest, MatchesComputeCounts) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(w);
  integration::SourceSignatures sig =
      integration::BuildSignatures(w, s, 30);
  QualityCounts from_sig =
      CountsFromSignatures({&sig}, w.TotalCountAt(30));
  QualityCounts direct = ComputeCounts(w, {&s}, 30);
  EXPECT_EQ(from_sig.up, direct.up);
  EXPECT_EQ(from_sig.covered, direct.covered);
  EXPECT_EQ(from_sig.in_result, direct.in_result);
}

TEST(CoverageMonotonicityProperty, CoverageNeverDropsWhenAddingSources) {
  // Simulated world + several random sources; coverage of a union must be
  // monotone in the source set (the paper's Example 5 behaviour).
  world::DataDomain domain =
      world::DataDomain::Create("loc", 2, "cat", 2).value();
  world::WorldSpec spec{domain, {}, 200};
  for (int i = 0; i < 4; ++i) spec.rates.push_back({0.5, 0.01, 0.02, 50});
  Rng rng(23);
  world::World w = world::SimulateWorld(spec, rng).value();

  std::vector<source::SourceSpec> specs;
  for (int i = 0; i < 4; ++i) {
    source::SourceSpec s;
    s.name = "s" + std::to_string(i);
    s.scope = {0, 1, 2, 3};
    s.schedule = {1 + i, 0};
    s.insert_capture = {0.1 * i, 5.0 + 3.0 * i};
    s.update_capture = {0.1, 6.0};
    s.delete_capture = {0.1, 8.0};
    s.initial_awareness = 0.4 + 0.1 * i;
    specs.push_back(s);
  }
  std::vector<source::SourceHistory> histories =
      source::SimulateSources(w, specs, rng).value();

  for (TimePoint t : {50, 100, 150}) {
    double prev_cov = 0.0;
    std::vector<const source::SourceHistory*> set;
    for (const auto& h : histories) {
      set.push_back(&h);
      QualityMetrics m = MetricsFromCounts(ComputeCounts(w, set, t));
      EXPECT_GE(m.coverage, prev_cov - 1e-12);
      prev_cov = m.coverage;
    }
  }
}

TEST(SourceQualityAtTest, PerfectSourceHasPerfectQuality) {
  world::DataDomain domain =
      world::DataDomain::Create("loc", 1, "cat", 1).value();
  world::WorldSpec spec{domain, {{1.0, 0.01, 0.02, 50}}, 100};
  Rng rng(29);
  world::World w = world::SimulateWorld(spec, rng).value();
  source::SourceSpec s;
  s.name = "perfect";
  s.scope = {0};
  s.schedule = {1, 0};
  s.insert_capture = {0.0, 0.0};
  s.update_capture = {0.0, 0.0};
  s.delete_capture = {0.0, 0.0};
  s.initial_awareness = 1.0;
  source::SourceHistory h = source::SimulateSource(w, s, rng).value();
  QualityMetrics m = SourceQualityAt(w, h, 60);
  EXPECT_DOUBLE_EQ(m.coverage, 1.0);
  EXPECT_DOUBLE_EQ(m.local_freshness, 1.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
}

TEST(InsertionDelayStatsTest, PerfectSourceHasZeroDelay) {
  world::World w = testing::MakeTestWorld();
  // Hand-built source captured entity 5? No - it only carries 0,1,2.
  source::SourceHistory s = testing::MakeTestSource(w);
  // Window (0, 100]: births at 5 (e2), 15 (e3), 25 (e4), 60 (e5). In the
  // source scope {0, 1}: e2 (sub 1, born 5, captured day 8, delay 3) and
  // e5 (sub 0, born 60, never captured).
  DelayStats stats = InsertionDelayStats(w, s, TimeWindow{0, 100}, 10.0);
  EXPECT_EQ(stats.observed, 2);
  EXPECT_DOUBLE_EQ(stats.mean_delay, 3.0);
  EXPECT_DOUBLE_EQ(stats.delayed_fraction, 0.5);  // e5 never captured.
}

TEST(AverageLocalFreshnessTest, PerfectSourceIsFullyFresh) {
  world::DataDomain domain =
      world::DataDomain::Create("loc", 1, "cat", 1).value();
  world::WorldSpec spec{domain, {{0.5, 0.01, 0.05, 30}}, 100};
  Rng rng(31);
  world::World w = world::SimulateWorld(spec, rng).value();
  source::SourceSpec s;
  s.name = "perfect";
  s.scope = {0};
  s.schedule = {1, 0};
  s.insert_capture = {0.0, 0.0};
  s.update_capture = {0.0, 0.0};
  s.delete_capture = {0.0, 0.0};
  source::SourceHistory h = source::SimulateSource(w, s, rng).value();
  EXPECT_NEAR(AverageLocalFreshness(w, h, TimeWindow{0, 100}), 1.0, 1e-12);
}

}  // namespace
}  // namespace freshsel::metrics
