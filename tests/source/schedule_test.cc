#include "source/schedule.h"

#include <gtest/gtest.h>

namespace freshsel::source {
namespace {

TEST(UpdateScheduleTest, DailySchedule) {
  UpdateSchedule s{1, 0};
  EXPECT_EQ(s.LatestUpdateAt(5), 5);
  EXPECT_EQ(s.NextUpdateAtOrAfter(5), 5);
  EXPECT_TRUE(s.IsUpdateDay(0));
  EXPECT_TRUE(s.IsUpdateDay(123));
  EXPECT_DOUBLE_EQ(s.frequency(), 1.0);
}

TEST(UpdateScheduleTest, WeeklyWithPhase) {
  UpdateSchedule s{7, 3};  // Updates at 3, 10, 17, ...
  EXPECT_EQ(s.LatestUpdateAt(3), 3);
  EXPECT_EQ(s.LatestUpdateAt(9), 3);
  EXPECT_EQ(s.LatestUpdateAt(10), 10);
  EXPECT_EQ(s.LatestUpdateAt(16), 10);
  EXPECT_EQ(s.NextUpdateAtOrAfter(4), 10);
  EXPECT_EQ(s.NextUpdateAtOrAfter(10), 10);
  EXPECT_EQ(s.NextUpdateAtOrAfter(11), 17);
  EXPECT_TRUE(s.IsUpdateDay(17));
  EXPECT_FALSE(s.IsUpdateDay(16));
}

TEST(UpdateScheduleTest, BeforeFirstUpdate) {
  UpdateSchedule s{7, 3};
  // Latest update before t=2 is phase - period = -4.
  EXPECT_EQ(s.LatestUpdateAt(2), -4);
  EXPECT_EQ(s.NextUpdateAtOrAfter(0), 3);
  EXPECT_EQ(s.NextUpdateAtOrAfter(-10), -4);
}

TEST(UpdateScheduleTest, WithDivisorCoarsensPeriod) {
  UpdateSchedule s{3, 1};
  UpdateSchedule half = s.WithDivisor(2);
  EXPECT_EQ(half.period, 6);
  EXPECT_EQ(half.phase, 1);
  // Updates at 1, 7, 13, ...
  EXPECT_EQ(half.LatestUpdateAt(12), 7);
  EXPECT_EQ(half.NextUpdateAtOrAfter(8), 13);
}

TEST(UpdateScheduleTest, DivisorOneIsIdentity) {
  UpdateSchedule s{5, 2};
  UpdateSchedule same = s.WithDivisor(1);
  for (TimePoint t = -10; t <= 30; ++t) {
    EXPECT_EQ(s.LatestUpdateAt(t), same.LatestUpdateAt(t));
  }
}

TEST(UpdateScheduleTest, LatestAndNextAreConsistent) {
  UpdateSchedule s{4, 2};
  for (TimePoint t = -20; t <= 40; ++t) {
    const TimePoint latest = s.LatestUpdateAt(t);
    const TimePoint next = s.NextUpdateAtOrAfter(t);
    EXPECT_LE(latest, t);
    EXPECT_GE(next, t);
    EXPECT_EQ((latest - s.phase) % s.period, 0);
    EXPECT_EQ((next - s.phase) % s.period, 0);
    EXPECT_TRUE(next == latest || next == latest + s.period);
  }
}

}  // namespace
}  // namespace freshsel::source
