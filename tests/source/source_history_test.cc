#include "source/source_history.h"

#include <gtest/gtest.h>

#include "testing/test_world.h"

namespace freshsel::source {
namespace {

TEST(CaptureRecordTest, ContainsAt) {
  CaptureRecord rec;
  rec.inserted = 5;
  rec.deleted = 20;
  EXPECT_FALSE(rec.ContainsAt(4));
  EXPECT_TRUE(rec.ContainsAt(5));
  EXPECT_TRUE(rec.ContainsAt(19));
  EXPECT_FALSE(rec.ContainsAt(20));
}

TEST(CaptureRecordTest, KnownVersionAtTakesMaxCaptured) {
  CaptureRecord rec;
  rec.inserted = 0;
  rec.version_captures = {{0, 0}, {2, 10}, {1, 15}};  // v1 arrives late.
  EXPECT_EQ(rec.KnownVersionAt(5), 0u);
  EXPECT_EQ(rec.KnownVersionAt(10), 2u);
  EXPECT_EQ(rec.KnownVersionAt(20), 2u);  // Late v1 does not downgrade.
}

TEST(SourceHistoryTest, AddAndFind) {
  world::World w = testing::MakeTestWorld();
  SourceHistory history = testing::MakeTestSource(w);
  EXPECT_EQ(history.records().size(), 3u);
  EXPECT_NE(history.Find(0), nullptr);
  EXPECT_NE(history.Find(1), nullptr);
  EXPECT_EQ(history.Find(3), nullptr);
  EXPECT_EQ(history.Find(999), nullptr);
}

TEST(SourceHistoryTest, RejectsDuplicatesAndOutOfRange) {
  SourceSpec spec;
  spec.name = "s";
  SourceHistory history(spec, 3);
  CaptureRecord rec;
  rec.entity = 1;
  rec.inserted = 0;
  EXPECT_TRUE(history.AddRecord(rec).ok());
  EXPECT_FALSE(history.AddRecord(rec).ok());  // Duplicate.
  CaptureRecord out_of_range;
  out_of_range.entity = 10;
  out_of_range.inserted = 0;
  EXPECT_FALSE(history.AddRecord(out_of_range).ok());
}

TEST(SourceHistoryTest, SkipsNeverInsertedRecords) {
  SourceSpec spec;
  SourceHistory history(spec, 3);
  CaptureRecord rec;
  rec.entity = 0;
  rec.inserted = world::kNever;
  EXPECT_TRUE(history.AddRecord(rec).ok());
  EXPECT_EQ(history.records().size(), 0u);
  EXPECT_EQ(history.Find(0), nullptr);
}

TEST(SourceHistoryTest, ContentCountAt) {
  world::World w = testing::MakeTestWorld();
  SourceHistory history = testing::MakeTestSource(w);
  EXPECT_EQ(history.ContentCountAt(0), 1);   // Entity 1 from day 0.
  EXPECT_EQ(history.ContentCountAt(2), 2);   // + entity 0.
  EXPECT_EQ(history.ContentCountAt(10), 3);  // + entity 2 (day 8).
  EXPECT_EQ(history.ContentCountAt(60), 2);  // Entity 0 deleted at 55.
}

TEST(SourceHistoryTest, WithAcquisitionDivisorAlignsCaptures) {
  world::World w = testing::MakeTestWorld();
  SourceHistory history = testing::MakeTestSource(w, /*period=*/1);
  SourceHistory slower = history.WithAcquisitionDivisor(10);
  EXPECT_EQ(slower.schedule().period, 10);

  // Entity 0's v1 capture at day 12 realigns to day 20.
  const CaptureRecord* rec = slower.Find(0);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->KnownVersionAt(19), 0u);
  EXPECT_EQ(rec->KnownVersionAt(20), 1u);
  // Deletion at 55 realigns to 60.
  EXPECT_TRUE(rec->ContainsAt(59));
  EXPECT_FALSE(rec->ContainsAt(60));
}

TEST(SourceHistoryTest, DivisorNeverAcceleratesCaptures) {
  world::World w = testing::MakeTestWorld();
  SourceHistory history = testing::MakeTestSource(w);
  SourceHistory slower = history.WithAcquisitionDivisor(7);
  for (const CaptureRecord& rec : history.records()) {
    const CaptureRecord* slow = slower.Find(rec.entity);
    if (slow == nullptr) continue;  // Dropped entirely: fine.
    EXPECT_GE(slow->inserted, rec.inserted);
    if (rec.deleted != world::kNever && slow->deleted != world::kNever) {
      EXPECT_GE(slow->deleted, rec.deleted);
    }
  }
}

TEST(SourceHistoryTest, DivisorDropsCapturesAfterDeletion) {
  // Build a record where realignment pushes an update past the deletion.
  SourceSpec spec;
  spec.schedule.period = 1;
  SourceHistory history(spec, 1);
  CaptureRecord rec;
  rec.entity = 0;
  rec.inserted = 0;
  rec.deleted = 12;
  rec.version_captures = {{0, 0}, {1, 11}};
  ASSERT_TRUE(history.AddRecord(rec).ok());
  // Divisor 10: acquisition days 0, 10, 20. v1 at 11 -> 20, delete 12 -> 20.
  SourceHistory slower = history.WithAcquisitionDivisor(10);
  const CaptureRecord* slow = slower.Find(0);
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->version_captures.size(), 1u);  // v1 dropped.
  EXPECT_EQ(slow->deleted, 20);
}

TEST(SourceHistoryTest, RestrictedToFiltersBySubdomain) {
  world::World w = testing::MakeTestWorld();
  SourceHistory history = testing::MakeTestSource(w);
  // Scope of the test source is {0, 1}; entities 0, 1 live in sub 0 and
  // entity 2 in sub 1.
  SourceHistory slice = history.RestrictedTo({0}, "-slice");
  EXPECT_EQ(slice.records().size(), 2u);
  EXPECT_NE(slice.Find(0), nullptr);
  EXPECT_NE(slice.Find(1), nullptr);
  EXPECT_EQ(slice.Find(2), nullptr);
  EXPECT_EQ(slice.spec().scope, (std::vector<world::SubdomainId>{0}));
  EXPECT_EQ(slice.name(), "test-source-slice");
}

TEST(SourceHistoryTest, RestrictedToDisjointSubdomainsIsEmpty) {
  world::World w = testing::MakeTestWorld();
  SourceHistory history = testing::MakeTestSource(w);
  SourceHistory slice = history.RestrictedTo({2, 3}, "-x");
  EXPECT_EQ(slice.records().size(), 0u);
  EXPECT_TRUE(slice.spec().scope.empty());
}

}  // namespace
}  // namespace freshsel::source
