#include "source/source_simulator.h"

#include <cstdint>
#include <gtest/gtest.h>

#include "world/world_simulator.h"

namespace freshsel::source {
namespace {

world::World MakeSimWorld(std::uint64_t seed = 21) {
  world::DataDomain domain =
      world::DataDomain::Create("loc", 2, "cat", 2).value();
  world::WorldSpec spec{std::move(domain), {}, 400};
  for (int i = 0; i < 4; ++i) {
    spec.rates.push_back({0.5, 0.01, 0.02, 50});
  }
  Rng rng(seed);
  return world::SimulateWorld(spec, rng).value();
}

SourceSpec PerfectSpec() {
  SourceSpec spec;
  spec.name = "perfect";
  spec.scope = {0, 1, 2, 3};
  spec.schedule = {1, 0};
  spec.insert_capture = {0.0, 0.0};
  spec.update_capture = {0.0, 0.0};
  spec.delete_capture = {0.0, 0.0};
  spec.initial_awareness = 1.0;
  return spec;
}

TEST(SourceSimulatorTest, ValidatesSpec) {
  world::World w = MakeSimWorld();
  Rng rng(1);

  SourceSpec empty_scope = PerfectSpec();
  empty_scope.scope.clear();
  EXPECT_FALSE(SimulateSource(w, empty_scope, rng).ok());

  SourceSpec bad_sub = PerfectSpec();
  bad_sub.scope = {99};
  EXPECT_FALSE(SimulateSource(w, bad_sub, rng).ok());

  SourceSpec bad_period = PerfectSpec();
  bad_period.schedule.period = 0;
  EXPECT_FALSE(SimulateSource(w, bad_period, rng).ok());

  SourceSpec bad_phase = PerfectSpec();
  bad_phase.schedule.phase = 5;
  EXPECT_FALSE(SimulateSource(w, bad_phase, rng).ok());

  SourceSpec bad_miss = PerfectSpec();
  bad_miss.insert_capture.miss_prob = 1.5;
  EXPECT_FALSE(SimulateSource(w, bad_miss, rng).ok());

  SourceSpec bad_delay = PerfectSpec();
  bad_delay.update_capture.delay_mean_days = -1.0;
  EXPECT_FALSE(SimulateSource(w, bad_delay, rng).ok());

  SourceSpec bad_awareness = PerfectSpec();
  bad_awareness.initial_awareness = -0.1;
  EXPECT_FALSE(SimulateSource(w, bad_awareness, rng).ok());
}

TEST(SourceSimulatorTest, PerfectDailySourceTracksWorldExactly) {
  world::World w = MakeSimWorld();
  Rng rng(2);
  SourceHistory history = SimulateSource(w, PerfectSpec(), rng).value();
  // With zero delay, no misses and a daily schedule, the source content
  // matches the world exactly on every day.
  for (TimePoint t = 0; t <= 400; t += 37) {
    std::int64_t world_count = w.TotalCountAt(t);
    EXPECT_EQ(history.ContentCountAt(t), world_count) << "t=" << t;
  }
  // Every version is captured the day it happens.
  for (const CaptureRecord& rec : history.records()) {
    const world::EntityRecord& entity = w.entity(rec.entity);
    EXPECT_EQ(rec.inserted, std::max<TimePoint>(entity.birth, 0));
    if (entity.death != world::kNever && entity.death <= 400) {
      EXPECT_EQ(rec.deleted, entity.death);
    }
  }
}

TEST(SourceSimulatorTest, CapturesAlignToSchedule) {
  world::World w = MakeSimWorld();
  SourceSpec spec = PerfectSpec();
  spec.schedule = {7, 3};
  spec.initial_awareness = 0.0;
  Rng rng(3);
  SourceHistory history = SimulateSource(w, spec, rng).value();
  for (const CaptureRecord& rec : history.records()) {
    for (const auto& [version, day] : rec.version_captures) {
      EXPECT_TRUE(spec.schedule.IsUpdateDay(day))
          << "capture at non-update day " << day;
    }
    if (rec.deleted != world::kNever) {
      EXPECT_TRUE(spec.schedule.IsUpdateDay(rec.deleted));
    }
  }
}

TEST(SourceSimulatorTest, CapturesNeverPrecedeEvents) {
  world::World w = MakeSimWorld();
  SourceSpec spec = PerfectSpec();
  spec.insert_capture = {0.1, 5.0};
  spec.update_capture = {0.2, 8.0};
  spec.delete_capture = {0.1, 10.0};
  spec.initial_awareness = 0.0;
  Rng rng(4);
  SourceHistory history = SimulateSource(w, spec, rng).value();
  for (const CaptureRecord& rec : history.records()) {
    const world::EntityRecord& entity = w.entity(rec.entity);
    for (const auto& [version, day] : rec.version_captures) {
      const TimePoint event_time =
          version == 0 ? entity.birth : entity.update_times[version - 1];
      EXPECT_GE(day, event_time);
      EXPECT_LT(day, rec.deleted);
    }
    if (rec.deleted != world::kNever) {
      EXPECT_GE(rec.deleted, entity.death);
    }
    EXPECT_LE(rec.inserted, 400);
  }
}

TEST(SourceSimulatorTest, FullMissProbabilityCapturesNothingNew) {
  world::World w = MakeSimWorld();
  SourceSpec spec = PerfectSpec();
  spec.insert_capture.miss_prob = 1.0;
  spec.update_capture.miss_prob = 1.0;
  spec.initial_awareness = 0.0;
  Rng rng(5);
  SourceHistory history = SimulateSource(w, spec, rng).value();
  EXPECT_EQ(history.records().size(), 0u);
}

TEST(SourceSimulatorTest, InitialAwarenessSeedsDayZeroContent) {
  world::World w = MakeSimWorld();
  SourceSpec spec = PerfectSpec();
  spec.insert_capture.miss_prob = 1.0;  // Only seeded content possible.
  spec.update_capture.miss_prob = 1.0;
  spec.initial_awareness = 1.0;
  Rng rng(6);
  SourceHistory history = SimulateSource(w, spec, rng).value();
  EXPECT_EQ(history.ContentCountAt(0), w.TotalCountAt(0));
  for (const CaptureRecord& rec : history.records()) {
    EXPECT_EQ(rec.inserted, 0);
  }
}

TEST(SourceSimulatorTest, ScopeRestrictsContent) {
  world::World w = MakeSimWorld();
  SourceSpec spec = PerfectSpec();
  spec.scope = {1};
  Rng rng(7);
  SourceHistory history = SimulateSource(w, spec, rng).value();
  for (const CaptureRecord& rec : history.records()) {
    EXPECT_EQ(w.entity(rec.entity).subdomain, 1u);
    EXPECT_EQ(rec.subdomain, 1u);
  }
}

TEST(SourceSimulatorTest, DelayReducesFreshCaptures) {
  world::World w = MakeSimWorld();
  SourceSpec fast = PerfectSpec();
  fast.initial_awareness = 0.0;
  SourceSpec slow = fast;
  slow.insert_capture.delay_mean_days = 40.0;
  Rng rng_fast(8);
  Rng rng_slow(8);
  SourceHistory fast_history = SimulateSource(w, fast, rng_fast).value();
  SourceHistory slow_history = SimulateSource(w, slow, rng_slow).value();
  // The delayed source holds fewer items at mid-simulation.
  EXPECT_LT(slow_history.ContentCountAt(200),
            fast_history.ContentCountAt(200));
}

TEST(SourceSimulatorTest, SimulateSourcesForksIndependentStreams) {
  world::World w = MakeSimWorld();
  SourceSpec spec = PerfectSpec();
  spec.insert_capture = {0.3, 10.0};
  spec.initial_awareness = 0.5;
  Rng rng(9);
  std::vector<SourceHistory> histories =
      SimulateSources(w, {spec, spec}, rng).value();
  ASSERT_EQ(histories.size(), 2u);
  // Same spec, different random streams: the capture patterns must differ.
  auto fingerprint = [](const SourceHistory& h) {
    std::int64_t sum = 0;
    for (const CaptureRecord& rec : h.records()) {
      sum += rec.inserted * 31 + rec.entity;
    }
    return sum;
  };
  EXPECT_NE(fingerprint(histories[0]), fingerprint(histories[1]));
}

}  // namespace
}  // namespace freshsel::source
