#include "integration/reconstruction_quality.h"

#include <gtest/gtest.h>

#include "source/source_simulator.h"
#include "testing/test_world.h"
#include "world/world_simulator.h"

namespace freshsel::integration {
namespace {

TEST(ReconstructionQualityTest, PerfectSourceScoresPerfectly) {
  // A zero-delay, no-miss daily source reconstructs the world exactly.
  world::DataDomain domain =
      world::DataDomain::Create("loc", 1, "cat", 1).value();
  world::WorldSpec spec{domain, {{1.0, 0.01, 0.02, 100}}, 200};
  Rng rng(501);
  world::World truth = world::SimulateWorld(spec, rng).value();
  source::SourceSpec s;
  s.name = "perfect";
  s.scope = {0};
  s.schedule = {1, 0};
  s.insert_capture = {0.0, 0.0};
  s.update_capture = {0.0, 0.0};
  s.delete_capture = {0.0, 0.0};
  source::SourceHistory history =
      source::SimulateSource(truth, s, rng).value();
  ReconstructionResult result =
      ReconstructWorld(truth.domain(), {&history}, 200,
                       truth.entity_count())
          .value();
  ReconstructionQuality quality = EvaluateReconstruction(truth, result);
  EXPECT_DOUBLE_EQ(quality.entity_recall, 1.0);
  EXPECT_DOUBLE_EQ(quality.appearance_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(quality.mean_appearance_delay, 0.0);
  // Deaths within the horizon are captured the same day; deaths beyond the
  // horizon are invisible to everyone.
  EXPECT_GT(quality.disappearance_recall, 0.95);
  EXPECT_DOUBLE_EQ(quality.mean_disappearance_delay, 0.0);
  EXPECT_GT(quality.update_recall, 0.95);
  EXPECT_LT(quality.mean_population_error, 1e-9);
}

TEST(ReconstructionQualityTest, HandBuiltPartialReconstruction) {
  world::World truth = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(truth);
  ReconstructionResult result =
      ReconstructWorld(truth.domain(), {&s}, 100, truth.entity_count())
          .value();
  ReconstructionQuality quality = EvaluateReconstruction(truth, result);
  // The source mentions 3 of 6 entities.
  EXPECT_DOUBLE_EQ(quality.entity_recall, 0.5);
  // Births: entity 0 seen at 2 (gap 2), 1 at 0 (gap 0), 2 at 8 (gap 3) -
  // all within the 7-day tolerance.
  EXPECT_DOUBLE_EQ(quality.appearance_accuracy, 1.0);
  EXPECT_NEAR(quality.mean_appearance_delay, (2.0 + 0.0 + 3.0) / 3.0,
              1e-12);
  // Dead gold entities: 0 (death 50), 2 (80), 4 (90). The reconstruction
  // marks only entity 0 dead (at 55).
  EXPECT_NEAR(quality.disappearance_recall, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(quality.mean_disappearance_delay, 5.0);
}

TEST(ReconstructionQualityTest, DegradedSourcesScoreLower) {
  world::DataDomain domain =
      world::DataDomain::Create("loc", 1, "cat", 1).value();
  world::WorldSpec spec{domain, {{1.0, 0.01, 0.02, 100}}, 200};
  Rng rng(503);
  world::World truth = world::SimulateWorld(spec, rng).value();

  auto reconstruct_with = [&](double miss, double delay) {
    source::SourceSpec s;
    s.name = "s";
    s.scope = {0};
    s.schedule = {1, 0};
    s.insert_capture = {miss, delay};
    s.update_capture = {miss, delay};
    s.delete_capture = {miss, delay};
    s.initial_awareness = 1.0 - miss;
    Rng source_rng(777);
    source::SourceHistory history =
        source::SimulateSource(truth, s, source_rng).value();
    ReconstructionResult result =
        ReconstructWorld(truth.domain(), {&history}, 200,
                         truth.entity_count())
            .value();
    return EvaluateReconstruction(truth, result);
  };

  ReconstructionQuality good = reconstruct_with(0.0, 1.0);
  ReconstructionQuality bad = reconstruct_with(0.4, 20.0);
  EXPECT_GT(good.entity_recall, bad.entity_recall);
  EXPECT_GT(good.appearance_accuracy, bad.appearance_accuracy);
  EXPECT_LT(good.mean_appearance_delay, bad.mean_appearance_delay);
}

TEST(ReconstructionQualityTest, EmptyReconstruction) {
  world::World truth = testing::MakeTestWorld();
  ReconstructionResult empty =
      ReconstructWorld(truth.domain(), {}, 100, truth.entity_count())
          .value();
  ReconstructionQuality quality = EvaluateReconstruction(truth, empty);
  EXPECT_DOUBLE_EQ(quality.entity_recall, 0.0);
  EXPECT_DOUBLE_EQ(quality.appearance_accuracy, 0.0);
  // Population error: the reconstruction has zero entities everywhere.
  EXPECT_NEAR(quality.mean_population_error, 1.0, 1e-12);
}

}  // namespace
}  // namespace freshsel::integration
