#include "integration/history_integration.h"

#include <gtest/gtest.h>

#include "source/source_simulator.h"
#include "testing/test_world.h"
#include "world/world_simulator.h"

namespace freshsel::integration {
namespace {

TEST(HistoryIntegrationTest, ReconstructsFromHandBuiltSource) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(w);
  world::DataDomain domain =
      world::DataDomain::Create("loc", 2, "cat", 2).value();
  ReconstructionResult result =
      ReconstructWorld(domain, {&s}, 100, w.entity_count()).value();

  // The source mentions entities 0, 1, 2 only.
  EXPECT_EQ(result.world.entity_count(), 3u);
  EXPECT_EQ(result.to_original.size(), 3u);
  EXPECT_EQ(result.from_original[0], 0);
  EXPECT_EQ(result.from_original[3], -1);

  // Entity 0: first mention day 2, updates learned at 12 and 35, deleted
  // by its only source at 55.
  const world::EntityRecord& e0 = result.world.entity(0);
  EXPECT_EQ(e0.birth, 2);
  EXPECT_EQ(e0.update_times, (std::vector<TimePoint>{12, 35}));
  EXPECT_EQ(e0.death, 55);

  // Entity 1 is never deleted anywhere: alive.
  const world::EntityRecord& e1 =
      result.world.entity(result.from_original[1]);
  EXPECT_EQ(e1.death, world::kNever);
}

TEST(HistoryIntegrationTest, EarliestMentionAcrossSourcesWins) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory late = testing::MakeTestSource(w);

  // A second source that saw entity 0 earlier (day 1) and deleted at 52.
  source::SourceSpec spec;
  spec.name = "early";
  source::SourceHistory early(spec, w.entity_count());
  source::CaptureRecord rec;
  rec.entity = 0;
  rec.subdomain = 0;
  rec.inserted = 1;
  rec.deleted = 52;
  rec.version_captures = {{0, 1}, {1, 11}};
  ASSERT_TRUE(early.AddRecord(rec).ok());

  world::DataDomain domain =
      world::DataDomain::Create("loc", 2, "cat", 2).value();
  ReconstructionResult result =
      ReconstructWorld(domain, {&late, &early}, 100, w.entity_count())
          .value();
  const world::EntityRecord& e0 =
      result.world.entity(result.from_original[0]);
  EXPECT_EQ(e0.birth, 1);                       // Earliest mention.
  EXPECT_EQ(e0.update_times.front(), 11);       // Earliest v1 capture.
  EXPECT_EQ(e0.death, 55);                      // Latest deletion.
}

TEST(HistoryIntegrationTest, AliveWhileAnySourceStillCarries) {
  world::World w = testing::MakeTestWorld();
  // The test source never deletes entity 2 -> entity 2 stays alive even
  // though a second source deleted it.
  source::SourceHistory keeper = testing::MakeTestSource(w);
  source::SourceSpec spec;
  source::SourceHistory deleter(spec, w.entity_count());
  source::CaptureRecord rec;
  rec.entity = 2;
  rec.subdomain = 1;
  rec.inserted = 10;
  rec.deleted = 85;
  rec.version_captures = {{0, 10}};
  ASSERT_TRUE(deleter.AddRecord(rec).ok());

  world::DataDomain domain =
      world::DataDomain::Create("loc", 2, "cat", 2).value();
  ReconstructionResult result =
      ReconstructWorld(domain, {&keeper, &deleter}, 100, w.entity_count())
          .value();
  const world::EntityRecord& e2 =
      result.world.entity(result.from_original[2]);
  EXPECT_EQ(e2.death, world::kNever);
}

TEST(HistoryIntegrationTest, RejectsOutOfRangeIds) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(w);
  world::DataDomain domain =
      world::DataDomain::Create("loc", 2, "cat", 2).value();
  EXPECT_FALSE(ReconstructWorld(domain, {&s}, 100, 1).ok());
}

TEST(HistoryIntegrationTest, ReconstructionTracksSimulatedWorldCounts) {
  // End-to-end: simulate a world and several good sources, reconstruct, and
  // compare population curves (the paper's gold-standard validation).
  world::DataDomain domain =
      world::DataDomain::Create("loc", 2, "cat", 2).value();
  world::WorldSpec spec{domain, {}, 300};
  for (int i = 0; i < 4; ++i) spec.rates.push_back({1.0, 0.005, 0.01, 100});
  Rng rng(17);
  world::World w = world::SimulateWorld(spec, rng).value();

  std::vector<source::SourceSpec> source_specs;
  for (int i = 0; i < 3; ++i) {
    source::SourceSpec s;
    s.name = "s" + std::to_string(i);
    s.scope = {0, 1, 2, 3};
    s.schedule = {1, 0};
    s.insert_capture = {0.02, 2.0};
    s.update_capture = {0.05, 3.0};
    s.delete_capture = {0.01, 3.0};
    s.initial_awareness = 0.95;
    source_specs.push_back(s);
  }
  std::vector<source::SourceHistory> histories =
      source::SimulateSources(w, source_specs, rng).value();
  std::vector<const source::SourceHistory*> ptrs;
  for (const auto& h : histories) ptrs.push_back(&h);

  ReconstructionResult result =
      ReconstructWorld(w.domain(), ptrs, 300, w.entity_count()).value();

  // Nearly every entity should be mentioned by someone.
  EXPECT_GT(static_cast<double>(result.world.entity_count()),
            0.9 * static_cast<double>(w.entity_count()));
  // Population curves should track within ~10% through the window.
  for (TimePoint t = 50; t <= 300; t += 50) {
    const double truth = static_cast<double>(w.TotalCountAt(t));
    const double recon = static_cast<double>(result.world.TotalCountAt(t));
    EXPECT_NEAR(recon / truth, 1.0, 0.12) << "t=" << t;
  }
}

}  // namespace
}  // namespace freshsel::integration
