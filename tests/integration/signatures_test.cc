#include "integration/signatures.h"

#include <gtest/gtest.h>

#include "testing/test_world.h"

namespace freshsel::integration {
namespace {

// The test source (testing/test_world.h):
//   entity 0: in source days [2, 55); learns v1 at 12, v2 at 35.
//             World: updates at 10 (v1), 30 (v2); dies at 50.
//   entity 1: in source from day 0; learns v1 at 25. World update at 20.
//   entity 2: in source from day 8, never deleted. World death at 80.

TEST(SignaturesTest, ClassifiesUpToDate) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(w);

  // Day 5: entity 0 at v0 (world v0) -> up. Entity 1 v0 = world v0 -> up.
  // Entity 2 not yet in source (inserted day 8).
  SourceSignatures sig = BuildSignatures(w, s, 5);
  EXPECT_TRUE(sig.up.Test(0));
  EXPECT_TRUE(sig.up.Test(1));
  EXPECT_FALSE(sig.all.Test(2));
  EXPECT_EQ(sig.up.Count(), 2u);
  EXPECT_EQ(sig.cov.Count(), 2u);
  EXPECT_EQ(sig.all.Count(), 2u);
}

TEST(SignaturesTest, ClassifiesOutOfDate) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(w);

  // Day 11: world updated entity 0 to v1 at day 10; source still shows v0
  // (learns v1 at 12) -> out-of-date: covered but not up.
  SourceSignatures sig = BuildSignatures(w, s, 11);
  EXPECT_FALSE(sig.up.Test(0));
  EXPECT_TRUE(sig.cov.Test(0));
  EXPECT_TRUE(sig.all.Test(0));
  // Day 12: source catches up.
  sig = BuildSignatures(w, s, 12);
  EXPECT_TRUE(sig.up.Test(0));
}

TEST(SignaturesTest, ClassifiesNonDeletedGhost) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(w);

  // Entity 0 dies in the world at 50; source deletes it at 55. In [50, 55)
  // it is a non-deleted ghost: in `all` but not `cov`.
  SourceSignatures sig = BuildSignatures(w, s, 52);
  EXPECT_TRUE(sig.all.Test(0));
  EXPECT_FALSE(sig.cov.Test(0));
  EXPECT_FALSE(sig.up.Test(0));
  // After 55 it is gone entirely.
  sig = BuildSignatures(w, s, 55);
  EXPECT_FALSE(sig.all.Test(0));

  // Entity 2 dies at 80 and is never deleted: ghost forever after.
  sig = BuildSignatures(w, s, 90);
  EXPECT_TRUE(sig.all.Test(2));
  EXPECT_FALSE(sig.cov.Test(2));
}

TEST(SignaturesTest, UpImpliesCovImpliesAll) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(w);
  for (TimePoint t = 0; t <= 100; t += 3) {
    SourceSignatures sig = BuildSignatures(w, s, t);
    for (std::size_t e = 0; e < w.entity_count(); ++e) {
      if (sig.up.Test(e)) {
        EXPECT_TRUE(sig.cov.Test(e));
      }
      if (sig.cov.Test(e)) {
        EXPECT_TRUE(sig.all.Test(e));
      }
    }
  }
}

TEST(DomainMaskTest, SelectsSubdomainEntities) {
  world::World w = testing::MakeTestWorld();
  BitVector mask = DomainMask(w, {0});
  // Entities 0, 1, 5 live in subdomain 0.
  EXPECT_TRUE(mask.Test(0));
  EXPECT_TRUE(mask.Test(1));
  EXPECT_TRUE(mask.Test(5));
  EXPECT_FALSE(mask.Test(2));
  EXPECT_EQ(mask.Count(), 3u);

  BitVector all_mask = DomainMask(w, {0, 1, 2, 3});
  EXPECT_EQ(all_mask.Count(), w.entity_count());
}

TEST(DomainMaskTest, EmptySubdomainListIsEmptyMask) {
  world::World w = testing::MakeTestWorld();
  EXPECT_EQ(DomainMask(w, {}).Count(), 0u);
}

}  // namespace
}  // namespace freshsel::integration
