#include "integration/entity_dictionary.h"

#include <gtest/gtest.h>

namespace freshsel::integration {
namespace {

TEST(EntityDictionaryTest, CanonicalizeNormalizes) {
  EXPECT_EQ(EntityDictionary::Canonicalize("  JOE'S  Pizza, NY "),
            "joe s pizza ny");
  EXPECT_EQ(EntityDictionary::Canonicalize("ACME-CORP"), "acme corp");
  EXPECT_EQ(EntityDictionary::Canonicalize("plain"), "plain");
  EXPECT_EQ(EntityDictionary::Canonicalize("  "), "");
  EXPECT_EQ(EntityDictionary::Canonicalize("A  B\t\tC"), "a b c");
  EXPECT_EQ(EntityDictionary::Canonicalize("№∞"), "");
}

TEST(EntityDictionaryTest, InternAssignsDenseIds) {
  EntityDictionary dict;
  EXPECT_EQ(dict.Intern("Alpha"), 0u);
  EXPECT_EQ(dict.Intern("Beta"), 1u);
  EXPECT_EQ(dict.Intern("Gamma"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(EntityDictionaryTest, DuplicatesCollapse) {
  EntityDictionary dict;
  const world::EntityId a = dict.Intern("Joe's Pizza, NY");
  const world::EntityId b = dict.Intern("  joes  pizza ny!!");
  // Note: "Joe's" -> "joe s" vs "joes" -> different canonical keys; the
  // matcher is exact on canonical form.
  EXPECT_NE(a, b);
  const world::EntityId c = dict.Intern("JOE'S PIZZA -- NY");
  EXPECT_EQ(a, c);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(EntityDictionaryTest, LookupWithoutIntern) {
  EntityDictionary dict;
  EXPECT_FALSE(dict.Lookup("missing").has_value());
  dict.Intern("Known Item");
  ASSERT_TRUE(dict.Lookup("known,item").has_value());
  EXPECT_EQ(*dict.Lookup("KNOWN ITEM"), 0u);
}

TEST(EntityDictionaryTest, KeyOfReturnsCanonicalForm) {
  EntityDictionary dict;
  const world::EntityId id = dict.Intern(" Foo & Bar ");
  EXPECT_EQ(dict.KeyOf(id), "foo bar");
}

}  // namespace
}  // namespace freshsel::integration
