#include "integration/union_integrator.h"

#include <cstdint>
#include <gtest/gtest.h>

#include "testing/test_world.h"

namespace freshsel::integration {
namespace {

source::SourceHistory MakeSource(
    std::size_t n_entities,
    std::vector<source::CaptureRecord> records, const char* name = "s") {
  source::SourceSpec spec;
  spec.name = name;
  source::SourceHistory history(spec, n_entities);
  for (auto& rec : records) {
    Status status = history.AddRecord(std::move(rec));
    EXPECT_TRUE(status.ok());
  }
  return history;
}

source::CaptureRecord Rec(
    world::EntityId id, TimePoint inserted, TimePoint deleted,
    std::vector<std::pair<std::uint32_t, TimePoint>> captures) {
  source::CaptureRecord rec;
  rec.entity = id;
  rec.inserted = inserted;
  rec.deleted = deleted;
  rec.version_captures = std::move(captures);
  return rec;
}

TEST(UnionIntegratorTest, UnionOfDisjointSources) {
  source::SourceHistory a =
      MakeSource(4, {Rec(0, 0, world::kNever, {{0, 0}})}, "a");
  source::SourceHistory b =
      MakeSource(4, {Rec(1, 5, world::kNever, {{0, 5}})}, "b");
  IntegratedSnapshot snap = IntegrateAt({&a, &b}, 10);
  EXPECT_EQ(snap.references().size(), 2u);
  EXPECT_EQ(snap.PresentCount(), 2u);
}

TEST(UnionIntegratorTest, EntityNotYetMentionedIsAbsent) {
  source::SourceHistory a =
      MakeSource(4, {Rec(0, 20, world::kNever, {{0, 20}})});
  IntegratedSnapshot snap = IntegrateAt({&a}, 10);
  EXPECT_EQ(snap.references().size(), 0u);
}

TEST(UnionIntegratorTest, NewerDeletionWins) {
  // Source a still carries entity 0 (reference day 3); source b deleted it
  // at day 8 -> integration result drops it.
  source::SourceHistory a =
      MakeSource(4, {Rec(0, 3, world::kNever, {{0, 3}})}, "a");
  source::SourceHistory b = MakeSource(4, {Rec(0, 1, 8, {{0, 1}})}, "b");
  IntegratedSnapshot snap = IntegrateAt({&a, &b}, 10);
  ASSERT_EQ(snap.references().size(), 1u);
  EXPECT_FALSE(snap.references()[0].present);
  EXPECT_EQ(snap.PresentCount(), 0u);
}

TEST(UnionIntegratorTest, NewerValueBeatsOlderDeletion) {
  // b deleted at day 8, but a captured a value update at day 9: the newer
  // reference resurrects the entity (stale-source behaviour).
  source::SourceHistory a =
      MakeSource(4, {Rec(0, 2, world::kNever, {{0, 2}, {1, 9}})}, "a");
  source::SourceHistory b = MakeSource(4, {Rec(0, 1, 8, {{0, 1}})}, "b");
  IntegratedSnapshot snap = IntegrateAt({&a, &b}, 10);
  ASSERT_EQ(snap.references().size(), 1u);
  EXPECT_TRUE(snap.references()[0].present);
  EXPECT_EQ(snap.references()[0].version, 1u);
}

TEST(UnionIntegratorTest, MostRecentVersionWinsAcrossSources) {
  source::SourceHistory a =
      MakeSource(4, {Rec(0, 0, world::kNever, {{0, 0}, {1, 4}})}, "a");
  source::SourceHistory b =
      MakeSource(4, {Rec(0, 0, world::kNever, {{0, 0}, {2, 7}})}, "b");
  IntegratedSnapshot snap = IntegrateAt({&a, &b}, 10);
  ASSERT_EQ(snap.references().size(), 1u);
  EXPECT_EQ(snap.references()[0].version, 2u);
  EXPECT_EQ(snap.references()[0].reference_time, 7);
}

TEST(UnionIntegratorTest, TieBreaksPreferDeletion) {
  source::SourceHistory a =
      MakeSource(4, {Rec(0, 0, world::kNever, {{0, 0}, {1, 8}})}, "a");
  source::SourceHistory b = MakeSource(4, {Rec(0, 0, 8, {{0, 0}})}, "b");
  IntegratedSnapshot snap = IntegrateAt({&a, &b}, 10);
  ASSERT_EQ(snap.references().size(), 1u);
  EXPECT_FALSE(snap.references()[0].present);
}

TEST(UnionIntegratorTest, EmptySourceListIsEmpty) {
  IntegratedSnapshot snap = IntegrateAt({}, 10);
  EXPECT_EQ(snap.references().size(), 0u);
}

}  // namespace
}  // namespace freshsel::integration
