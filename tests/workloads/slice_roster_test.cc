#include "workloads/slice_roster.h"

#include <cstdint>
#include <gtest/gtest.h>

#include <set>

#include "workloads/bl_generator.h"

namespace freshsel::workloads {
namespace {

BlConfig TinyBl() {
  BlConfig config;
  config.locations = 6;
  config.categories = 3;
  config.horizon = 100;
  config.t0 = 60;
  config.scale = 0.3;
  config.n_uniform = 2;
  config.n_location_specialists = 3;
  config.n_category_specialists = 2;
  config.n_medium = 1;
  return config;
}

TEST(SliceRosterTest, OneSlicePerCoveredDimensionValue) {
  Scenario base = GenerateBlScenario(TinyBl()).value();
  SliceRoster roster =
      BuildSliceRoster(base, SliceDimension::kDim1).value();
  ASSERT_FALSE(roster.sources.empty());
  EXPECT_EQ(roster.sources.size(), roster.parent_of.size());
  EXPECT_EQ(roster.sources.size(), roster.dimension_value.size());

  // Every slice covers exactly one location and is drawn from its parent.
  for (std::size_t i = 0; i < roster.sources.size(); ++i) {
    std::set<std::uint32_t> locations;
    for (world::SubdomainId sub : roster.sources[i].spec().scope) {
      locations.insert(base.domain().Dim1Of(sub));
    }
    EXPECT_EQ(locations.size(), 1u);
    EXPECT_EQ(*locations.begin(), roster.dimension_value[i]);
    EXPECT_LT(roster.parent_of[i], base.source_count());
    EXPECT_EQ(roster.classes[i], SourceClass::kMicro);
    // Records subset of the parent's.
    const auto& parent = base.sources[roster.parent_of[i]];
    for (const source::CaptureRecord& rec : roster.sources[i].records()) {
      EXPECT_NE(parent.Find(rec.entity), nullptr);
    }
  }
}

TEST(SliceRosterTest, UniformSourcesSliceIntoAllLocations) {
  Scenario base = GenerateBlScenario(TinyBl()).value();
  SliceRoster roster =
      BuildSliceRoster(base, SliceDimension::kDim1).value();
  // Count slices of the first uniform source (parent 0).
  std::size_t slices_of_first = 0;
  for (std::uint32_t parent : roster.parent_of) {
    if (parent == 0) ++slices_of_first;
  }
  EXPECT_EQ(slices_of_first, TinyBl().locations);
}

TEST(SliceRosterTest, Dim2SlicingUsesCategories) {
  Scenario base = GenerateBlScenario(TinyBl()).value();
  SliceRoster roster =
      BuildSliceRoster(base, SliceDimension::kDim2).value();
  for (std::size_t i = 0; i < roster.sources.size(); ++i) {
    std::set<std::uint32_t> categories;
    for (world::SubdomainId sub : roster.sources[i].spec().scope) {
      categories.insert(base.domain().Dim2Of(sub));
    }
    EXPECT_EQ(categories.size(), 1u);
    EXPECT_EQ(*categories.begin(), roster.dimension_value[i]);
  }
}

TEST(SliceRosterTest, SliceUnionPreservesParentContent) {
  Scenario base = GenerateBlScenario(TinyBl()).value();
  SliceRoster roster =
      BuildSliceRoster(base, SliceDimension::kDim1).value();
  // For parent 0, the union of its slices' records equals its records.
  std::size_t slice_records = 0;
  for (std::size_t i = 0; i < roster.sources.size(); ++i) {
    if (roster.parent_of[i] == 0) {
      slice_records += roster.sources[i].records().size();
    }
  }
  EXPECT_EQ(slice_records, base.sources[0].records().size());
}

}  // namespace
}  // namespace freshsel::workloads
