#include <cstdint>
#include <gtest/gtest.h>

#include <set>

#include "workloads/bl_generator.h"
#include "workloads/blplus_generator.h"
#include "workloads/gdelt_generator.h"

namespace freshsel::workloads {
namespace {

BlConfig SmallBl() {
  BlConfig config;
  config.locations = 10;
  config.categories = 3;
  config.horizon = 120;
  config.t0 = 60;
  config.scale = 0.3;
  return config;
}

TEST(BlGeneratorTest, ValidatesScale) {
  BlConfig config = SmallBl();
  config.scale = 0.0;
  EXPECT_FALSE(GenerateBlScenario(config).ok());
}

TEST(BlGeneratorTest, ProducesExpectedRoster) {
  Scenario s = GenerateBlScenario(SmallBl()).value();
  EXPECT_EQ(s.source_count(), SmallBl().TotalSources());
  EXPECT_EQ(s.classes.size(), s.source_count());
  EXPECT_EQ(s.domain().subdomain_count(), 30u);
  EXPECT_EQ(s.t0, 60);
  EXPECT_GT(s.world.entity_count(), 100u);

  // Class mix matches the config.
  std::size_t uniform = 0;
  for (SourceClass c : s.classes) {
    if (c == SourceClass::kUniform) ++uniform;
  }
  EXPECT_EQ(uniform, SmallBl().n_uniform);
}

TEST(BlGeneratorTest, UniformSourcesSpanWholeDomain) {
  Scenario s = GenerateBlScenario(SmallBl()).value();
  for (std::size_t i = 0; i < s.source_count(); ++i) {
    if (s.classes[i] == SourceClass::kUniform) {
      EXPECT_EQ(s.sources[i].spec().scope.size(),
                s.domain().subdomain_count());
    }
  }
}

TEST(BlGeneratorTest, LocationSpecialistsCoverAllCategoriesOfTheirLocations) {
  Scenario s = GenerateBlScenario(SmallBl()).value();
  for (std::size_t i = 0; i < s.source_count(); ++i) {
    if (s.classes[i] != SourceClass::kLocationSpecialist) continue;
    const auto& scope = s.sources[i].spec().scope;
    std::set<std::uint32_t> locations;
    for (world::SubdomainId sub : scope) {
      locations.insert(s.domain().Dim1Of(sub));
    }
    EXPECT_EQ(scope.size(),
              locations.size() * s.domain().dim2_size());
  }
}

TEST(BlGeneratorTest, DeterministicForSeed) {
  Scenario a = GenerateBlScenario(SmallBl()).value();
  Scenario b = GenerateBlScenario(SmallBl()).value();
  EXPECT_EQ(a.world.entity_count(), b.world.entity_count());
  ASSERT_EQ(a.source_count(), b.source_count());
  for (std::size_t i = 0; i < a.source_count(); ++i) {
    EXPECT_EQ(a.sources[i].records().size(), b.sources[i].records().size());
  }
}

TEST(BlGeneratorTest, DifferentSeedsDiffer) {
  BlConfig other = SmallBl();
  other.seed = 1234;
  Scenario a = GenerateBlScenario(SmallBl()).value();
  Scenario b = GenerateBlScenario(other).value();
  EXPECT_NE(a.world.entity_count(), b.world.entity_count());
}

TEST(GdeltGeneratorTest, ProducesDailySources) {
  GdeltConfig config;
  config.locations = 8;
  config.event_types = 4;
  config.n_large = 3;
  config.n_small = 20;
  config.scale = 0.5;
  Scenario s = GenerateGdeltScenario(config).value();
  EXPECT_EQ(s.source_count(), 23u);
  EXPECT_EQ(s.t0, 15);
  for (const auto& source : s.sources) {
    EXPECT_EQ(source.spec().schedule.period, 1);
  }
  // Events never disappear within the window.
  for (const auto& entity : s.world.entities()) {
    EXPECT_EQ(entity.death, world::kNever);
  }
}

TEST(GdeltGeneratorTest, HotLocationIsBusiest) {
  GdeltConfig config;
  config.locations = 8;
  config.event_types = 4;
  config.n_large = 2;
  config.n_small = 5;
  Scenario s = GenerateGdeltScenario(config).value();
  std::int64_t hot = 0;
  std::int64_t rest_max = 0;
  for (std::uint32_t loc = 0; loc < config.locations; ++loc) {
    std::int64_t total = 0;
    for (world::SubdomainId sub : s.domain().SubdomainsInDim1(loc)) {
      total += s.world.CountAt(sub, s.t0);
    }
    if (loc == 0) {
      hot = total;
    } else {
      rest_max = std::max(rest_max, total);
    }
  }
  EXPECT_GT(hot, rest_max);
}

TEST(ScenarioTest, LargestSourcesSortedBySize) {
  Scenario s = GenerateBlScenario(SmallBl()).value();
  std::vector<std::size_t> top = s.LargestSources(5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(s.sources[top[i - 1]].ContentCountAt(s.t0),
              s.sources[top[i]].ContentCountAt(s.t0));
  }
}

TEST(BlPlusGeneratorTest, RosterSizeMatchesPaperFormula) {
  Scenario base = GenerateBlScenario(SmallBl()).value();
  for (std::uint32_t micro : {0u, 1u, 5u}) {
    MicroRoster roster = GenerateBlPlusRoster(base, micro, 7).value();
    EXPECT_EQ(roster.sources.size(), base.source_count() * (1 + micro));
    EXPECT_EQ(roster.classes.size(), roster.sources.size());
  }
}

TEST(BlPlusGeneratorTest, MicroSourcesAreSlicesOfParents) {
  Scenario base = GenerateBlScenario(SmallBl()).value();
  MicroRoster roster = GenerateBlPlusRoster(base, 3, 7).value();
  // Layout: parent followed by its 3 micro-sources.
  for (std::size_t i = 0; i < roster.sources.size(); i += 4) {
    const auto& parent = roster.sources[i];
    EXPECT_NE(roster.classes[i], SourceClass::kMicro);
    std::set<world::SubdomainId> parent_scope(parent.spec().scope.begin(),
                                              parent.spec().scope.end());
    for (std::size_t m = 1; m <= 3; ++m) {
      const auto& micro = roster.sources[i + m];
      EXPECT_EQ(roster.classes[i + m], SourceClass::kMicro);
      // Scope is a strict subset of the parent's.
      EXPECT_LT(micro.spec().scope.size(), parent.spec().scope.size() + 1);
      for (world::SubdomainId sub : micro.spec().scope) {
        EXPECT_TRUE(parent_scope.count(sub) > 0);
      }
      // Records are a subset of the parent's records.
      EXPECT_LE(micro.records().size(), parent.records().size());
      for (const source::CaptureRecord& rec : micro.records()) {
        EXPECT_NE(parent.Find(rec.entity), nullptr);
      }
    }
  }
}

TEST(BlPlusGeneratorTest, MicroLocationFractionInRange) {
  Scenario base = GenerateBlScenario(SmallBl()).value();
  MicroRoster roster = GenerateBlPlusRoster(base, 2, 11).value();
  for (std::size_t i = 0; i < roster.sources.size(); ++i) {
    if (roster.classes[i] != SourceClass::kMicro) continue;
    // Find the parent (previous non-micro entry).
    std::size_t p = i;
    while (roster.classes[p] == SourceClass::kMicro) --p;
    std::set<std::uint32_t> parent_locs;
    for (world::SubdomainId sub : roster.sources[p].spec().scope) {
      parent_locs.insert(base.domain().Dim1Of(sub));
    }
    std::set<std::uint32_t> micro_locs;
    for (world::SubdomainId sub : roster.sources[i].spec().scope) {
      micro_locs.insert(base.domain().Dim1Of(sub));
    }
    const double fraction = static_cast<double>(micro_locs.size()) /
                            static_cast<double>(parent_locs.size());
    EXPECT_GE(fraction, 0.1);
    EXPECT_LE(fraction, 0.65);
  }
}

TEST(SourceClassNameTest, NamesAreStable) {
  EXPECT_STREQ(SourceClassName(SourceClass::kUniform), "uniform");
  EXPECT_STREQ(SourceClassName(SourceClass::kMicro), "micro");
}

}  // namespace
}  // namespace freshsel::workloads
