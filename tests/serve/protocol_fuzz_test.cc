// Seeded property/fuzz suite for the protocol codec (ISSUE 10 satellite).
// The invariant under test is narrow and absolute: for ANY byte string,
// ParseRequest returns either a parsed request or InvalidArgument - it
// never crashes, never hangs, never returns another error class. The
// mutator is seeded with freshsel::Rng so a failure reproduces exactly;
// ASan/UBSan jobs run this same binary in CI.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "serve/protocol.h"

namespace freshsel::serve {
namespace {

/// The one property every input must satisfy.
void CheckNeverCrashes(const std::string& line) {
  Result<Request> request = ParseRequest(line);
  if (!request.ok()) {
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument)
        << "unexpected error class for: " << line.substr(0, 200);
  }
}

/// A seeded, structurally valid request to mutate. Varies every knob so
/// mutations land on all field kinds (strings, ints, doubles, bools,
/// arrays).
std::string SeedRequest(Rng& rng) {
  switch (rng.NextBounded(4)) {
    case 0: {
      QueryParams params;
      params.scenario = rng.NextBounded(2) == 0 ? "default" : "web.v2-1";
      const char* metrics[] = {"coverage", "accuracy", "freshness", "mix"};
      params.metric = metrics[rng.NextBounded(4)];
      const char* gains[] = {"linear", "quad", "step", "data"};
      params.gain = gains[rng.NextBounded(4)];
      const char* algorithms[] = {"greedy", "maxsub", "grasp", "budgeted"};
      params.algorithm = algorithms[rng.NextBounded(4)];
      params.t0 = static_cast<std::int64_t>(rng.NextBounded(1000));
      params.points = 1 + static_cast<std::int64_t>(rng.NextBounded(20));
      params.stride = 1 + static_cast<std::int64_t>(rng.NextBounded(30));
      if (rng.NextBounded(2) == 0) {
        params.budget = 0.0625 * static_cast<double>(1 + rng.NextBounded(16));
      }
      params.max_divisor = 1 + static_cast<std::int64_t>(rng.NextBounded(4));
      // Seeds ride the wire as JSON doubles, which are only integer-exact
      // up to 2^53; the codec rejects magnitudes past its conservative
      // int64 cap, so fuzz within the representable range.
      params.seed = static_cast<std::int64_t>(rng.Next() >> 11);
      if (rng.NextBounded(2) == 0) params.seed = -params.seed;
      params.threads = 1 + static_cast<std::int64_t>(rng.NextBounded(64));
      params.lazy = rng.NextBounded(2) == 0;
      params.stochastic = rng.NextBounded(2) == 0;
      params.stochastic_epsilon =
          0.0625 * static_cast<double>(1 + rng.NextBounded(15));
      params.fast_math = rng.NextBounded(2) == 0;
      for (std::uint64_t i = 0; i < rng.NextBounded(4); ++i) {
        params.roster.push_back("src_" + std::to_string(i));
      }
      params.include_report = rng.NextBounded(2) == 0;
      return SerializeQueryRequest(rng.NextBounded(2) == 0, rng.Next(),
                                   params);
    }
    case 1: {
      LoadParams params;
      params.scenario = "fuzz-load";
      params.dir = "/tmp/fuzz/\"dir\"\n\t";
      return SerializeLoadRequest(true, rng.Next(), params);
    }
    case 2:
      return SerializeControlRequest(rng.NextBounded(2) == 0, rng.Next(),
                                     RequestOp::kPing);
    default:
      return SerializeControlRequest(true, rng.Next(),
                                     RequestOp::kListScenarios);
  }
}

TEST(ProtocolFuzzTest, ValidSeedsRoundTripUnderEveryRngState) {
  Rng rng(0x5eed0001);
  for (int i = 0; i < 500; ++i) {
    const std::string line = SeedRequest(rng);
    Result<Request> request = ParseRequest(line);
    ASSERT_TRUE(request.ok())
        << "serializer emitted an unparseable request: " << line << " -> "
        << request.status().ToString();
  }
}

TEST(ProtocolFuzzTest, TruncationAtEveryOffsetIsHandled) {
  Rng rng(0x5eed0002);
  for (int i = 0; i < 50; ++i) {
    const std::string line = SeedRequest(rng);
    for (std::size_t cut = 0; cut < line.size(); ++cut) {
      CheckNeverCrashes(line.substr(0, cut));
      CheckNeverCrashes(line.substr(cut));
    }
  }
}

TEST(ProtocolFuzzTest, RandomByteMutationsAreHandled) {
  Rng rng(0x5eed0003);
  for (int i = 0; i < 2000; ++i) {
    std::string line = SeedRequest(rng);
    const std::uint64_t mutations = 1 + rng.NextBounded(8);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      if (line.empty()) break;
      const std::size_t pos = rng.NextBounded(line.size());
      switch (rng.NextBounded(4)) {
        case 0:  // Flip to an arbitrary byte (NUL included).
          line[pos] = static_cast<char>(rng.NextBounded(256));
          break;
        case 1:  // Delete.
          line.erase(pos, 1);
          break;
        case 2:  // Insert an arbitrary byte.
          line.insert(pos, 1, static_cast<char>(rng.NextBounded(256)));
          break;
        default:  // Duplicate a random span (breeds duplicate keys).
          line.insert(pos, line.substr(pos, rng.NextBounded(16)));
          break;
      }
    }
    CheckNeverCrashes(line);
  }
}

TEST(ProtocolFuzzTest, EmbeddedNulBytesAreRejectedCleanly) {
  std::string line = R"({"op":"query","scenario":"de)";
  line += '\0';
  line += R"(fault"})";
  CheckNeverCrashes(line);
  CheckNeverCrashes(std::string(64, '\0'));
  std::string nul_key = R"({"op":"ping",")";
  nul_key += '\0';
  nul_key += R"(":1})";
  CheckNeverCrashes(nul_key);
}

TEST(ProtocolFuzzTest, TypeConfusionOnEveryKnownField) {
  // Every field of a full query request, each replaced by every JSON kind.
  const char* fields[] = {"op",          "id",
                          "scenario",    "metric",
                          "gain",        "algorithm",
                          "t0",          "points",
                          "stride",      "budget",
                          "max_divisor", "kappa",
                          "restarts",    "seed",
                          "threads",     "lazy",
                          "incremental", "stochastic",
                          "stochastic_epsilon",
                          "fast_math",   "roster",
                          "report"};
  const char* confusions[] = {"null", "true",      "-3.25",
                              "\"x\"", "[1,2]",    "{\"k\":1}",
                              "1e308", "-1e308",   "0.5",
                              "[]",    "{}",       "18446744073709551616"};
  for (const char* field : fields) {
    for (const char* confusion : confusions) {
      std::string line = R"({"op":"query",")";
      line += field;
      if (std::string(field) == "op") {
        line = R"({"op":)";
        line += confusion;
        line += "}";
      } else {
        line += R"(":)";
        line += confusion;
        line += "}";
      }
      CheckNeverCrashes(line);
    }
  }
}

TEST(ProtocolFuzzTest, DeepNestingDoesNotOverflowTheStack) {
  // A pathological depth bomb; the parser must error out (depth cap or
  // structural error), not recurse to death.
  std::string deep = R"({"op":"query","roster":)";
  deep.append(5000, '[');
  deep.append(5000, ']');
  deep += "}";
  CheckNeverCrashes(deep);

  std::string deep_objects;
  for (int i = 0; i < 5000; ++i) deep_objects += R"({"a":)";
  deep_objects += "1";
  deep_objects.append(5000, '}');
  CheckNeverCrashes(deep_objects);
}

TEST(ProtocolFuzzTest, OversizedLinesAreRejectedNotParsed) {
  std::string line = R"({"op":"query","scenario":")";
  line.append(kMaxRequestBytes + 1, 'a');
  line += "\"}";
  Result<Request> request = ParseRequest(line);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(request.status().message().find("exceeds"), std::string::npos);
}

TEST(ProtocolFuzzTest, ResponsesSurviveMutationAsParserInput) {
  // Responses and requests share one JSON dialect; a confused client that
  // echoes a response back must get a clean error, not a crash.
  Rng rng(0x5eed0004);
  QueryOutcome outcome;
  outcome.selected = {{"a", 1, 0.5}};
  outcome.text = "profit 1.0\n";
  outcome.report_json = R"({"schema_version":2,"name":"serve/query"})";
  const std::string seeds[] = {
      SerializeQueryOutcome(true, 7, outcome),
      SerializeError(false, 0, "draining", "daemon is shutting down"),
      SerializePing(true, 1, PingInfo{"serving", 0, 0, 1}),
  };
  for (const std::string& seed : seeds) {
    CheckNeverCrashes(seed);
    for (int i = 0; i < 300; ++i) {
      std::string line = seed;
      const std::size_t pos = rng.NextBounded(line.size());
      line[pos] = static_cast<char>(rng.NextBounded(256));
      CheckNeverCrashes(line);
    }
  }
}

}  // namespace
}  // namespace freshsel::serve
