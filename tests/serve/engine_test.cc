// Session/engine-layer tests (DESIGN.md §15): resident scenarios, the
// prepared-query cache, roster filtering, and the central equivalence
// claim - Engine::ExecuteQuery produces byte-for-byte the text that batch
// `freshsel select` prints, because both run serve::ExecuteSelect.

#include "serve/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.h"
#include "fault/failpoint.h"
#include "obs/json_reader.h"
#include "serve/ingest.h"
#include "serve/protocol.h"
#include "testing/scratch.h"

namespace freshsel::serve {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string output;
    ASSERT_EQ(Run({"simulate", "--workload", "bl", "--out",
                   scratch_.path().c_str(), "--seed", "7", "--scale", "0.3",
                   "--locations", "5", "--categories", "2"},
                  &output),
              0)
        << output;
  }

  void TearDown() override {
    fault::FailpointRegistry::Global().DisarmAll();
  }

  static int Run(std::vector<const char*> argv, std::string* output) {
    argv.insert(argv.begin(), "freshsel");
    std::ostringstream out;
    std::ostringstream err;
    const int code = cli::RunMain(static_cast<int>(argv.size()),
                                  argv.data(), out, err);
    *output = out.str() + err.str();
    return code;
  }

  /// The canonical query every test variant starts from.
  static QueryParams BaseParams() {
    QueryParams params;
    params.t0 = 100;
    params.points = 3;
    params.stride = 14;
    return params;
  }

  /// Ingest at the same cutoff the queries use. Batch `select --t0 100`
  /// learns its models at t0=100, so serving the same bytes requires the
  /// resident scenario to be learned there too (the manifest says 300;
  /// queries can only evaluate at or after the learned cutoff).
  static IngestOptions BaseIngest() {
    IngestOptions options;
    options.t0 = 100;
    return options;
  }

  testing::ScratchDir scratch_;
};

TEST_F(EngineTest, RegistryLoadsListsAndBumpsEpochs) {
  ScenarioRegistry registry;
  Result<ScenarioInfo> first =
      registry.Load("default", scratch_.path(), IngestOptions{});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first->sources, 0u);
  EXPECT_GT(first->entities, 0u);
  EXPECT_GT(first->t0, 0);  // From the manifest.
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_EQ(registry.size(), 1u);

  // Re-loading the same name swaps the scenario and bumps the epoch.
  Result<ScenarioInfo> again =
      registry.Load("default", scratch_.path(), IngestOptions{});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->epoch, 2u);
  EXPECT_EQ(registry.size(), 1u);

  Result<ScenarioInfo> alt =
      registry.Load("alt", scratch_.path(), IngestOptions{});
  ASSERT_TRUE(alt.ok());
  EXPECT_EQ(alt->epoch, 3u);

  const std::vector<ScenarioInfo> list = registry.List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name, "alt");  // Sorted by name.
  EXPECT_EQ(list[1].name, "default");

  Result<std::shared_ptr<const ResidentScenario>> missing =
      registry.Get("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("unknown scenario"),
            std::string::npos);
}

TEST_F(EngineTest, ExecuteQueryIsByteIdenticalToBatchSelect) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Load("default", scratch_.path(), BaseIngest()).ok());
  Engine engine(&registry);

  Result<QueryOutcome> outcome = engine.ExecuteQuery(BaseParams());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->selected.empty());
  EXPECT_NE(outcome->text.find("profit"), std::string::npos);
  EXPECT_GE(outcome->coverage, 0.0);
  EXPECT_LE(outcome->coverage, 1.0);
  EXPECT_GT(outcome->oracle_calls, 0u);
  EXPECT_TRUE(outcome->report_json.empty());  // Not requested.

  // The batch CLI on the same directory with the same knobs. Batch output
  // may carry extra leading lines (degradation notes); the selection table
  // + summary must be its byte-identical tail.
  std::string batch;
  ASSERT_EQ(Run({"select", "--dir", scratch_.path().c_str(), "--t0", "100",
                 "--points", "3", "--stride", "14"},
                &batch),
            0)
      << batch;
  ASSERT_FALSE(outcome->text.empty());
  EXPECT_TRUE(batch.ends_with(outcome->text))
      << "daemon text:\n" << outcome->text << "\nbatch output:\n" << batch;

  // Determinism: the same request again yields the same bytes and the
  // same oracle statistics (fresh per-request profit cache).
  Result<QueryOutcome> repeat = engine.ExecuteQuery(BaseParams());
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->text, outcome->text);
  EXPECT_EQ(repeat->oracle_calls, outcome->oracle_calls);
}

TEST_F(EngineTest, PreparedCacheHitsMissesAndFifoEviction) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Load("default", scratch_.path(), BaseIngest()).ok());
  Engine::Options options;
  options.prepared_capacity = 2;
  Engine engine(&registry, options);

  QueryParams a = BaseParams();
  ASSERT_TRUE(engine.ExecuteQuery(a).ok());
  EXPECT_EQ(engine.prepared_cache_stats().hits, 0u);
  EXPECT_EQ(engine.prepared_cache_stats().misses, 1u);

  // Same shape -> hit; algorithm knobs (seed, restarts) are not part of
  // the prepared key.
  QueryParams a_reseeded = a;
  a_reseeded.seed = 99;
  ASSERT_TRUE(engine.ExecuteQuery(a_reseeded).ok());
  EXPECT_EQ(engine.prepared_cache_stats().hits, 1u);
  EXPECT_EQ(engine.prepared_cache_stats().misses, 1u);

  QueryParams b = BaseParams();
  b.stride = 7;
  ASSERT_TRUE(engine.ExecuteQuery(b).ok());
  QueryParams c = BaseParams();
  c.points = 2;
  ASSERT_TRUE(engine.ExecuteQuery(c).ok());  // Capacity 2: evicts `a`.
  EXPECT_EQ(engine.prepared_cache_stats().misses, 3u);

  ASSERT_TRUE(engine.ExecuteQuery(a).ok());  // FIFO evicted -> miss again.
  EXPECT_EQ(engine.prepared_cache_stats().misses, 4u);

  ASSERT_TRUE(engine.ExecuteQuery(c).ok());  // Still resident -> hit.
  EXPECT_EQ(engine.prepared_cache_stats().hits, 2u);
}

TEST_F(EngineTest, RosterFiltersAndRejectsUnknownNames) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Load("default", scratch_.path(), BaseIngest()).ok());
  Engine engine(&registry);

  // Discover the simulator's actual source names instead of guessing.
  Result<std::shared_ptr<const ResidentScenario>> scenario =
      registry.Get("default");
  ASSERT_TRUE(scenario.ok());
  ASSERT_GE((*scenario)->profiles.size(), 2u);
  const std::string first = (*scenario)->profiles[0].name;
  const std::string second = (*scenario)->profiles[1].name;

  QueryParams roster_query = BaseParams();
  roster_query.roster = {first, second};
  Result<QueryOutcome> outcome = engine.ExecuteQuery(roster_query);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  for (const SelectedSource& selected : outcome->selected) {
    EXPECT_TRUE(selected.name == first || selected.name == second)
        << selected.name;
  }

  QueryParams bad = BaseParams();
  bad.roster = {first, "not_a_source"};
  Result<QueryOutcome> rejected = engine.ExecuteQuery(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kNotFound);
  EXPECT_NE(rejected.status().message().find("roster source not in scenario"),
            std::string::npos);
}

TEST_F(EngineTest, T0BeyondHorizonIsRejected) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Load("default", scratch_.path(), BaseIngest()).ok());
  Engine engine(&registry);
  QueryParams params = BaseParams();
  params.t0 = 1000000;
  Result<QueryOutcome> outcome = engine.ExecuteQuery(params);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(outcome.status().message().find("horizon"), std::string::npos);
}

TEST_F(EngineTest, WireBoundsAreReCheckedForInProcessCallers) {
  // The daemon's codec already refuses these, but batch `freshsel select`
  // and tests build QueryParams directly; the engine must reject them
  // before MakeTimePoints sizes an allocation from them or a selector
  // narrows them to int.
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Load("default", scratch_.path(), BaseIngest()).ok());
  Engine engine(&registry);

  QueryParams params = BaseParams();
  params.points = std::int64_t{4} * 1000 * 1000 * 1000 * 1000 * 1000 * 1000;
  Result<QueryOutcome> outcome = engine.ExecuteQuery(params);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(outcome.status().message().find("points"), std::string::npos);

  params = BaseParams();
  params.stride = std::int64_t{1} << 62;  // t0 + i * stride would overflow.
  outcome = engine.ExecuteQuery(params);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);

  params = BaseParams();  // points=3, stride=14: each in range...
  params.points = kMaxEvalSpanSteps;  // ...but the product is not.
  outcome = engine.ExecuteQuery(params);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);

  params = BaseParams();
  params.kappa = std::int64_t{5} * 1000 * 1000 * 1000;  // Negative as int.
  params.algorithm = "grasp";
  outcome = engine.ExecuteQuery(params);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(outcome.status().message().find("kappa"), std::string::npos);

  params = BaseParams();
  params.restarts = std::int64_t{1} << 40;
  outcome = engine.ExecuteQuery(params);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);

  params = BaseParams();
  params.threads = 0;
  outcome = engine.ExecuteQuery(params);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, ManifestT0IsTheDefaultCutoff) {
  ScenarioRegistry registry;
  Result<ScenarioInfo> info =
      registry.Load("default", scratch_.path(), IngestOptions{});
  ASSERT_TRUE(info.ok());
  Engine engine(&registry);
  QueryParams params = BaseParams();
  params.t0 = 0;  // "Use the scenario's manifest cutoff."
  Result<QueryOutcome> outcome = engine.ExecuteQuery(params);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->selected.empty());
}

TEST_F(EngineTest, UnknownScenarioSurfacesAsNotFound) {
  ScenarioRegistry registry;
  Engine engine(&registry);
  QueryParams params = BaseParams();
  params.scenario = "missing";
  Result<QueryOutcome> outcome = engine.ExecuteQuery(params);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, LoadScenarioOpIngestsAtRuntime) {
  ScenarioRegistry registry;
  Engine::Options options;
  options.ingest = BaseIngest();
  Engine engine(&registry, options);
  LoadParams load;
  load.scenario = "runtime";
  load.dir = scratch_.path();
  Result<ScenarioInfo> info = engine.LoadScenario(load);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->name, "runtime");
  ASSERT_EQ(engine.ListScenarios().size(), 1u);
  EXPECT_EQ(engine.ListScenarios()[0].name, "runtime");

  QueryParams params = BaseParams();
  params.scenario = "runtime";
  EXPECT_TRUE(engine.ExecuteQuery(params).ok());
}

TEST_F(EngineTest, RequestedReportIsSchemaV2Json) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Load("default", scratch_.path(), BaseIngest()).ok());
  Engine engine(&registry);
  QueryParams params = BaseParams();
  params.include_report = true;
  Result<QueryOutcome> outcome = engine.ExecuteQuery(params);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_FALSE(outcome->report_json.empty());
  Result<obs::JsonValue> report = obs::ParseJson(outcome->report_json);
  ASSERT_TRUE(report.ok()) << outcome->report_json.substr(0, 200);
  EXPECT_EQ(report->StringOr("name", ""), "serve/query");
  const obs::JsonValue* labels = report->Find("labels");
  ASSERT_NE(labels, nullptr);
  EXPECT_EQ(labels->StringOr("scenario", ""), "default");
}

#if FRESHSEL_FAULT_ACTIVE

TEST_F(EngineTest, QueryFailpointSurfacesAsStructuredError) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Load("default", scratch_.path(), BaseIngest()).ok());
  Engine engine(&registry);
  ASSERT_TRUE(fault::FailpointRegistry::Global()
                  .ArmFromSpec("serve.query=always")
                  .ok());
  Result<QueryOutcome> outcome = engine.ExecuteQuery(BaseParams());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(outcome.status().message().find("injected fault"),
            std::string::npos);
  fault::FailpointRegistry::Global().DisarmAll();
  EXPECT_TRUE(engine.ExecuteQuery(BaseParams()).ok());  // Recovers.
}

TEST_F(EngineTest, IngestFailpointSurfacesAsStructuredError) {
  ScenarioRegistry registry;
  Engine engine(&registry);
  ASSERT_TRUE(fault::FailpointRegistry::Global()
                  .ArmFromSpec("serve.ingest=always")
                  .ok());
  LoadParams load;
  load.scenario = "faulty";
  load.dir = scratch_.path();
  Result<ScenarioInfo> info = engine.LoadScenario(load);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(engine.ListScenarios().empty());  // Nothing half-loaded.
}

#endif  // FRESHSEL_FAULT_ACTIVE

}  // namespace
}  // namespace freshsel::serve
