// Codec-layer tests for the daemon wire protocol (DESIGN.md §15). The
// codec is pure - no sockets, no engine - so everything here is exact:
// strict parsing (unknown fields, duplicate keys, type confusion and
// out-of-domain values are errors, not warnings), canonical serialization,
// and the round-trip property ParseRequest(Serialize*(...)) == original
// that the fuzz suite and `freshsel query` both lean on.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/json_reader.h"

namespace freshsel::serve {
namespace {

Request ParseOk(const std::string& line) {
  Result<Request> request = ParseRequest(line);
  EXPECT_TRUE(request.ok()) << line << " -> " << request.status().ToString();
  return request.ok() ? *request : Request{};
}

Status ParseErr(const std::string& line) {
  Result<Request> request = ParseRequest(line);
  EXPECT_FALSE(request.ok()) << "unexpectedly parsed: " << line;
  return request.ok() ? Status::OK() : request.status();
}

/// Rejection-only form for call sites that don't inspect the message.
void ExpectParseErr(const std::string& line) {
  static_cast<void>(ParseErr(line));
}

// ---------------------------------------------------------------------------
// Parsing: happy paths

TEST(ProtocolParseTest, ControlOpsParseWithAndWithoutId) {
  Request ping = ParseOk(R"({"op":"ping"})");
  EXPECT_EQ(ping.op, RequestOp::kPing);
  EXPECT_FALSE(ping.has_id);

  Request list = ParseOk(R"({"op":"list","id":0})");
  EXPECT_EQ(list.op, RequestOp::kListScenarios);
  EXPECT_TRUE(list.has_id);
  EXPECT_EQ(list.id, 0u);  // has_id distinguishes "no id" from "id 0".

  Request metrics = ParseOk(R"({"op":"metrics","id":18446744073709551615})");
  EXPECT_EQ(metrics.op, RequestOp::kMetrics);
  EXPECT_TRUE(metrics.has_id);
  EXPECT_EQ(metrics.id, std::numeric_limits<std::uint64_t>::max());
}

TEST(ProtocolParseTest, QueryDefaultsMatchBatchSelectDefaults) {
  Request request = ParseOk(R"({"op":"query"})");
  ASSERT_EQ(request.op, RequestOp::kQuery);
  const QueryParams& q = request.query;
  EXPECT_EQ(q.scenario, "default");
  EXPECT_EQ(q.metric, "coverage");
  EXPECT_EQ(q.gain, "linear");
  EXPECT_EQ(q.algorithm, "maxsub");
  EXPECT_EQ(q.t0, 0);
  EXPECT_EQ(q.points, 10);
  EXPECT_EQ(q.stride, 7);
  EXPECT_TRUE(std::isinf(q.budget));
  EXPECT_EQ(q.max_divisor, 1);
  EXPECT_EQ(q.kappa, 5);
  EXPECT_EQ(q.restarts, 20);
  EXPECT_EQ(q.seed, 42);
  EXPECT_EQ(q.threads, 1);
  EXPECT_TRUE(q.lazy);
  EXPECT_TRUE(q.incremental);
  EXPECT_FALSE(q.stochastic);
  EXPECT_DOUBLE_EQ(q.stochastic_epsilon, 0.1);
  EXPECT_FALSE(q.fast_math);
  EXPECT_TRUE(q.roster.empty());
  EXPECT_FALSE(q.include_report);
}

TEST(ProtocolParseTest, QueryWithEveryField) {
  Request request = ParseOk(
      R"({"op":"query","id":7,"scenario":"web-3.1","metric":"mix",)"
      R"("gain":"quad","algorithm":"budgeted","t0":90,"points":4,)"
      R"("stride":14,"budget":0.4,"max_divisor":3,"kappa":2,)"
      R"("restarts":5,"seed":-9,"threads":8,"lazy":false,)"
      R"("incremental":false,"stochastic":true,"stochastic_epsilon":0.25,)"
      R"("fast_math":true,"roster":["a","b"],"report":true})");
  const QueryParams& q = request.query;
  EXPECT_TRUE(request.has_id);
  EXPECT_EQ(request.id, 7u);
  EXPECT_EQ(q.scenario, "web-3.1");
  EXPECT_EQ(q.metric, "mix");
  EXPECT_EQ(q.gain, "quad");
  EXPECT_EQ(q.algorithm, "budgeted");
  EXPECT_EQ(q.t0, 90);
  EXPECT_EQ(q.points, 4);
  EXPECT_EQ(q.stride, 14);
  EXPECT_DOUBLE_EQ(q.budget, 0.4);
  EXPECT_EQ(q.max_divisor, 3);
  EXPECT_EQ(q.kappa, 2);
  EXPECT_EQ(q.restarts, 5);
  EXPECT_EQ(q.seed, -9);
  EXPECT_EQ(q.threads, 8);
  EXPECT_FALSE(q.lazy);
  EXPECT_FALSE(q.incremental);
  EXPECT_TRUE(q.stochastic);
  EXPECT_DOUBLE_EQ(q.stochastic_epsilon, 0.25);
  EXPECT_TRUE(q.fast_math);
  EXPECT_EQ(q.roster, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(q.include_report);
}

TEST(ProtocolParseTest, LoadRequiresDir) {
  Request request =
      ParseOk(R"({"op":"load","scenario":"s1","dir":"/data/s1"})");
  EXPECT_EQ(request.op, RequestOp::kLoadScenario);
  EXPECT_EQ(request.load.scenario, "s1");
  EXPECT_EQ(request.load.dir, "/data/s1");

  EXPECT_EQ(ParseErr(R"({"op":"load","scenario":"s1"})").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseErr(R"({"op":"load","dir":""})").code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Parsing: strictness

TEST(ProtocolParseTest, RejectsMalformedFrames) {
  ExpectParseErr("");
  ExpectParseErr("not json");
  ExpectParseErr("{");
  ExpectParseErr("[1,2,3]");           // Non-object root.
  ExpectParseErr("\"query\"");         // String root.
  ExpectParseErr("42");                // Number root.
  ExpectParseErr("null");
  ExpectParseErr(R"({"id":1})");       // Missing op.
  ExpectParseErr(R"({"op":"nope"})");  // Unknown op.
  ExpectParseErr(R"({"op":42})");      // Type-confused op.
}

TEST(ProtocolParseTest, RejectsUnknownFieldsNamingTheOffender) {
  const Status status = ParseErr(R"({"op":"query","bugdet":0.4})");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bugdet"), std::string::npos)
      << status.ToString();
  // Control ops accept no payload fields at all.
  ExpectParseErr(R"({"op":"ping","scenario":"default"})");
  ExpectParseErr(R"({"op":"list","dir":"/x"})");
}

TEST(ProtocolParseTest, RejectsDuplicateKeys) {
  const Status status =
      ParseErr(R"({"op":"query","budget":0.4,"budget":0.9})");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
  ExpectParseErr(R"({"op":"ping","op":"ping"})");
}

TEST(ProtocolParseTest, RejectsTypeConfusion) {
  ExpectParseErr(R"({"op":"query","budget":"0.4"})");
  ExpectParseErr(R"({"op":"query","scenario":17})");
  ExpectParseErr(R"({"op":"query","lazy":"yes"})");
  ExpectParseErr(R"({"op":"query","points":true})");
  ExpectParseErr(R"({"op":"query","roster":"s1"})");
  ExpectParseErr(R"({"op":"query","roster":[1]})");
  ExpectParseErr(R"({"op":"query","seed":1.5})");     // Non-integer number.
  ExpectParseErr(R"({"op":"query","id":-1})");        // Negative id.
  ExpectParseErr(R"({"op":"query","id":1.5})");
  ExpectParseErr(R"({"op":"query","id":"7"})");
  ExpectParseErr(R"({"op":"load","dir":["x"]})");
}

TEST(ProtocolParseTest, RejectsOutOfDomainValues) {
  ExpectParseErr(R"({"op":"query","metric":"recall"})");
  ExpectParseErr(R"({"op":"query","gain":"cubic"})");
  ExpectParseErr(R"({"op":"query","algorithm":"annealing"})");
  ExpectParseErr(R"({"op":"query","budget":0})");
  ExpectParseErr(R"({"op":"query","budget":-1})");
  ExpectParseErr(R"({"op":"query","points":0})");
  ExpectParseErr(R"({"op":"query","stride":0})");
  ExpectParseErr(R"({"op":"query","threads":0})");
  ExpectParseErr(R"({"op":"query","threads":65})");
  ExpectParseErr(R"({"op":"query","stochastic_epsilon":0})");
  ExpectParseErr(R"({"op":"query","stochastic_epsilon":1})");
  ExpectParseErr(R"({"op":"query","max_divisor":0})");
  ExpectParseErr(R"({"op":"query","scenario":""})");
  ExpectParseErr(R"({"op":"query","scenario":"../etc"})");
  ExpectParseErr(R"({"op":"query","scenario":"a b"})");
  ExpectParseErr(R"({"op":"query","roster":["a","a"]})");  // Duplicate entry.
  ExpectParseErr(R"({"op":"query","roster":[""]})");
}

TEST(ProtocolParseTest, RejectsResourceSizingValuesPastTheWireCaps) {
  // Every knob that sizes an allocation or narrows to int downstream has a
  // hard wire cap; a single request must not be able to reserve gigabytes
  // (points), overflow t0 + i * stride (stride), or flip negative inside a
  // selector (kappa/restarts).
  ExpectParseErr(R"({"op":"query","points":4000000000000000000})");
  ExpectParseErr(R"({"op":"query","points":1048577})");
  ExpectParseErr(R"({"op":"query","stride":4000000000000000000})");
  ExpectParseErr(R"({"op":"query","stride":1048577})");
  ExpectParseErr(R"({"op":"query","max_divisor":65})");
  ExpectParseErr(R"({"op":"query","kappa":5000000000})");
  ExpectParseErr(R"({"op":"query","kappa":65537})");
  ExpectParseErr(R"({"op":"query","restarts":5000000000})");
  ExpectParseErr(R"({"op":"query","restarts":65537})");
  // The caps sit exactly at the documented constants (stride 1 keeps the
  // cross-field points * stride bound satisfied at the points cap).
  EXPECT_EQ(ParseOk(R"({"op":"query","stride":1,"points":1048576})")
                .query.points,
            kMaxEvalSpanSteps);
  EXPECT_EQ(ParseOk(R"({"op":"query","kappa":65536})").query.kappa,
            kMaxQueryKappa);
  EXPECT_EQ(ParseOk(R"({"op":"query","restarts":65536})").query.restarts,
            kMaxQueryRestarts);
  EXPECT_EQ(ParseOk(R"({"op":"query","max_divisor":64})").query.max_divisor,
            kMaxQueryDivisor);
}

TEST(ProtocolParseTest, RejectsEvalSpansPastTheHorizon) {
  // points and stride are individually in range, but their product (the
  // farthest eval time's offset from t0) exceeds the estimator horizon.
  // Field order must not matter.
  ExpectParseErr(R"({"op":"query","points":1048576,"stride":2})");
  ExpectParseErr(R"({"op":"query","stride":1048576,"points":2})");
  ExpectParseErr(R"({"op":"query","points":1025,"stride":1024})");
  // The exact boundary is accepted: 1024 * 1024 == 2^20.
  const Request boundary =
      ParseOk(R"({"op":"query","points":1024,"stride":1024})");
  EXPECT_EQ(boundary.query.points * boundary.query.stride,
            kMaxEvalSpanSteps);
  // A stride-only request still honors the default points (10).
  ExpectParseErr(R"({"op":"query","stride":1048576})" );
}

TEST(ProtocolSerializeTest, ControlSerializerRefusesWorkOps) {
  // Work ops carry parameters; folding them into some control line would
  // hand the caller a valid-looking but wrong request.
  EXPECT_DEATH(SerializeControlRequest(true, 1, RequestOp::kQuery),
               "control op");
  EXPECT_DEATH(SerializeControlRequest(false, 0, RequestOp::kLoadScenario),
               "control op");
}

TEST(ProtocolParseTest, RejectsOversizedLines) {
  std::string line = R"({"op":"query","scenario":")";
  line.append(kMaxRequestBytes, 'a');
  line += "\"}";
  const Status status = ParseErr(line);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("exceeds"), std::string::npos);
}

TEST(ProtocolParseTest, EnumErrorsListTheAllowedValues) {
  const Status status = ParseErr(R"({"op":"query","metric":"recall"})");
  EXPECT_NE(status.message().find("coverage"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("recall"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Round trips

bool SameParams(const QueryParams& a, const QueryParams& b) {
  return a.scenario == b.scenario && a.metric == b.metric &&
         a.gain == b.gain && a.algorithm == b.algorithm && a.t0 == b.t0 &&
         a.points == b.points && a.stride == b.stride &&
         ((std::isinf(a.budget) && std::isinf(b.budget)) ||
          a.budget == b.budget) &&
         a.max_divisor == b.max_divisor && a.kappa == b.kappa &&
         a.restarts == b.restarts && a.seed == b.seed &&
         a.threads == b.threads && a.lazy == b.lazy &&
         a.incremental == b.incremental && a.stochastic == b.stochastic &&
         a.stochastic_epsilon == b.stochastic_epsilon &&
         a.fast_math == b.fast_math && a.roster == b.roster &&
         a.include_report == b.include_report;
}

TEST(ProtocolRoundTripTest, DefaultQueryParamsSurviveSerialization) {
  const QueryParams params;
  Request parsed = ParseOk(SerializeQueryRequest(true, 9, params));
  EXPECT_TRUE(parsed.has_id);
  EXPECT_EQ(parsed.id, 9u);
  EXPECT_TRUE(SameParams(parsed.query, params));
}

TEST(ProtocolRoundTripTest, RichQueryParamsSurviveSerialization) {
  QueryParams params;
  params.scenario = "web.v2-1";
  params.metric = "freshness";
  params.gain = "step";
  params.algorithm = "grasp";
  params.t0 = 365;
  params.points = 3;
  params.stride = 30;
  params.budget = 0.125;  // Dyadic: exact through the double formatter.
  params.max_divisor = 4;
  params.kappa = 3;
  params.restarts = 7;
  params.seed = -1234567;
  params.threads = 16;
  params.lazy = false;
  params.incremental = false;
  params.stochastic = true;
  params.stochastic_epsilon = 0.5;
  params.fast_math = true;
  params.roster = {"crawl-a", "crawl-b", "feed_1"};
  params.include_report = true;
  Request parsed = ParseOk(SerializeQueryRequest(false, 0, params));
  EXPECT_FALSE(parsed.has_id);
  EXPECT_TRUE(SameParams(parsed.query, params));
}

TEST(ProtocolRoundTripTest, LoadAndControlRequestsSurviveSerialization) {
  LoadParams load;
  load.scenario = "s9";
  load.dir = "/data/with \"quotes\" and \n newlines";
  Request parsed = ParseOk(SerializeLoadRequest(true, 3, load));
  EXPECT_EQ(parsed.op, RequestOp::kLoadScenario);
  EXPECT_EQ(parsed.load.scenario, load.scenario);
  EXPECT_EQ(parsed.load.dir, load.dir);

  EXPECT_EQ(ParseOk(SerializeControlRequest(true, 1, RequestOp::kPing)).op,
            RequestOp::kPing);
  EXPECT_EQ(
      ParseOk(SerializeControlRequest(false, 0, RequestOp::kListScenarios))
          .op,
      RequestOp::kListScenarios);
  EXPECT_EQ(ParseOk(SerializeControlRequest(true, 2, RequestOp::kMetrics)).op,
            RequestOp::kMetrics);
}

// ---------------------------------------------------------------------------
// Response serializers

obs::JsonValue ParseResponse(const std::string& line) {
  Result<obs::JsonValue> doc = obs::ParseJson(line);
  EXPECT_TRUE(doc.ok()) << line;
  EXPECT_TRUE(doc.ok() && doc->is_object()) << line;
  return doc.ok() ? *doc : obs::JsonValue();
}

TEST(ProtocolResponseTest, ErrorCarriesCodeAndMessage) {
  obs::JsonValue doc =
      ParseResponse(SerializeError(true, 4, "overloaded", "queue full"));
  EXPECT_EQ(doc.UintOr("id", 0), 4u);
  ASSERT_NE(doc.Find("ok"), nullptr);
  EXPECT_FALSE(doc.Find("ok")->AsBool());
  const obs::JsonValue* error = doc.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->StringOr("code", ""), "overloaded");
  EXPECT_EQ(error->StringOr("message", ""), "queue full");
  EXPECT_EQ(doc.Find("result"), nullptr);
}

TEST(ProtocolResponseTest, StatusErrorUsesSnakeCaseWireNames) {
  obs::JsonValue doc = ParseResponse(
      SerializeStatusError(false, 0, Status::NotFound("no such scenario")));
  EXPECT_EQ(doc.Find("id"), nullptr);  // No id in -> no id out.
  EXPECT_EQ(doc.Find("error")->StringOr("code", ""), "not_found");
  EXPECT_EQ(doc.Find("error")->StringOr("message", ""), "no such scenario");
}

TEST(ProtocolResponseTest, PingCarriesStateAndProtocolVersion) {
  PingInfo info;
  info.state = "draining";
  info.inflight = 2;
  info.queued = 5;
  info.scenarios = 1;
  obs::JsonValue doc = ParseResponse(SerializePing(true, 1, info));
  const obs::JsonValue* result = doc.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->StringOr("state", ""), "draining");
  EXPECT_EQ(result->UintOr("protocol_version", 0),
            static_cast<std::uint64_t>(kProtocolVersion));
  EXPECT_EQ(result->UintOr("inflight", 0), 2u);
  EXPECT_EQ(result->UintOr("queued", 0), 5u);
  EXPECT_EQ(result->UintOr("scenarios", 9), 1u);
}

TEST(ProtocolResponseTest, ScenarioListAndLoadedShareOneShape) {
  ScenarioInfo info;
  info.name = "default";
  info.sources = 12;
  info.entities = 3400;
  info.t0 = 100;
  info.epoch = 3;
  obs::JsonValue loaded = ParseResponse(SerializeLoaded(true, 2, info));
  const obs::JsonValue* result = loaded.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->StringOr("name", ""), "default");
  EXPECT_EQ(result->UintOr("sources", 0), 12u);
  EXPECT_EQ(result->UintOr("entities", 0), 3400u);
  EXPECT_EQ(result->NumberOr("t0", 0), 100.0);
  EXPECT_EQ(result->UintOr("epoch", 0), 3u);

  obs::JsonValue list = ParseResponse(SerializeScenarioList(true, 2, {info}));
  const obs::JsonValue* scenarios = list.Find("result")->Find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_EQ(scenarios->items().size(), 1u);
  EXPECT_EQ(scenarios->items()[0].StringOr("name", ""), "default");
}

TEST(ProtocolResponseTest, QueryOutcomeCarriesSelectionAndText) {
  QueryOutcome outcome;
  outcome.selected = {{"crawl-a", 1, 0.25}, {"feed_1", 2, 0.125}};
  outcome.profit = 1.5;
  outcome.cost = 0.375;
  outcome.coverage = 0.9;
  outcome.freshness = 0.8;
  outcome.accuracy = 0.7;
  outcome.oracle_calls = 42;
  outcome.text = "table\nsummary line\n";
  obs::JsonValue doc =
      ParseResponse(SerializeQueryOutcome(true, 11, outcome));
  const obs::JsonValue* result = doc.Find("result");
  ASSERT_NE(result, nullptr);
  const obs::JsonValue* selected = result->Find("selected");
  ASSERT_NE(selected, nullptr);
  ASSERT_EQ(selected->items().size(), 2u);
  EXPECT_EQ(selected->items()[0].StringOr("name", ""), "crawl-a");
  EXPECT_EQ(selected->items()[1].NumberOr("divisor", 0), 2.0);
  EXPECT_EQ(result->NumberOr("profit", 0), 1.5);
  EXPECT_EQ(result->UintOr("oracle_calls", 0), 42u);
  EXPECT_EQ(result->StringOr("text", ""), "table\nsummary line\n");
  EXPECT_EQ(result->Find("report"), nullptr);  // Absent unless requested.

  outcome.report_json = R"({"schema_version":2})";
  obs::JsonValue with_report =
      ParseResponse(SerializeQueryOutcome(true, 11, outcome));
  const obs::JsonValue* report =
      with_report.Find("result")->Find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->UintOr("schema_version", 0), 2u);
}

// ---------------------------------------------------------------------------
// Status <-> wire code mapping

TEST(ProtocolStatusCodeTest, WireNamesRoundTripForRealStatusCodes) {
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIoError,
        StatusCode::kUnimplemented, StatusCode::kUnavailable}) {
    EXPECT_EQ(StatusCodeFromWireName(StatusCodeWireName(code)), code);
  }
}

TEST(ProtocolStatusCodeTest, TransportTrioFoldsToUnavailable) {
  EXPECT_EQ(StatusCodeFromWireName("oversized"), StatusCode::kUnavailable);
  EXPECT_EQ(StatusCodeFromWireName("overloaded"), StatusCode::kUnavailable);
  EXPECT_EQ(StatusCodeFromWireName("draining"), StatusCode::kUnavailable);
  EXPECT_EQ(StatusCodeFromWireName("gibberish"), StatusCode::kInternal);
}

TEST(ProtocolStatusCodeTest, StatusFromWireNeverReturnsOk) {
  const Status draining = StatusFromWire("draining", "shutting down");
  EXPECT_EQ(draining.code(), StatusCode::kUnavailable);
  EXPECT_EQ(draining.message(), "shutting down");
  // An "ok" error code is a protocol violation; fold it to internal
  // rather than minting a success.
  EXPECT_EQ(StatusFromWire("ok", "x").code(), StatusCode::kInternal);
  EXPECT_EQ(StatusFromWire("not_found", "x").code(), StatusCode::kNotFound);
}

TEST(ProtocolControlOpTest, ClassifiesOps) {
  EXPECT_TRUE(IsControlOp(RequestOp::kPing));
  EXPECT_TRUE(IsControlOp(RequestOp::kListScenarios));
  EXPECT_TRUE(IsControlOp(RequestOp::kMetrics));
  EXPECT_FALSE(IsControlOp(RequestOp::kQuery));
  EXPECT_FALSE(IsControlOp(RequestOp::kLoadScenario));
}

}  // namespace
}  // namespace freshsel::serve
