// Concurrency stress + equivalence suite (ISSUE 10 satellite): many
// client threads hammer one daemon over loopback TCP and every response
// must be byte-identical to what batch `freshsel select` prints for the
// same request. Runs under TSan in the CI serve-gate job; there are no
// sleeps to hide races behind - correctness is enforced by the admission
// queue and the engine's locking alone.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/commands.h"
#include "fault/failpoint.h"
#include "obs/json_reader.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/ingest.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "testing/scratch.h"

namespace freshsel::serve {
namespace {

class ServeStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string output;
    ASSERT_EQ(Run({"simulate", "--workload", "bl", "--out",
                   scratch_.path().c_str(), "--seed", "7", "--scale", "0.3",
                   "--locations", "5", "--categories", "2"},
                  &output),
              0)
        << output;
  }

  void TearDown() override {
    fault::FailpointRegistry::Global().DisarmAll();
  }

  static int Run(std::vector<const char*> argv, std::string* output) {
    argv.insert(argv.begin(), "freshsel");
    std::ostringstream out;
    std::ostringstream err;
    const int code = cli::RunMain(static_cast<int>(argv.size()),
                                  argv.data(), out, err);
    *output = out.str() + err.str();
    return code;
  }

  static QueryParams BaseParams() {
    QueryParams params;
    params.t0 = 100;
    params.points = 3;
    params.stride = 14;
    return params;
  }

  /// Ingest at the queries' cutoff, matching what batch `select --t0 100`
  /// learns (the manifest t0 is later; evaluation can't precede the
  /// learned cutoff).
  static IngestOptions BaseIngest() {
    IngestOptions options;
    options.t0 = 100;
    return options;
  }

  testing::ScratchDir scratch_;
};

/// Extracts result.text from a raw response line, failing the test (and
/// returning "") on any malformed or error response.
std::string ResponseText(const Result<std::string>& response) {
  if (!response.ok()) {
    ADD_FAILURE() << "call failed: " << response.status().ToString();
    return "";
  }
  Result<obs::JsonValue> doc = obs::ParseJson(*response);
  if (!doc.ok() || !doc->is_object()) {
    ADD_FAILURE() << "bad response: " << *response;
    return "";
  }
  const obs::JsonValue* ok = doc->Find("ok");
  if (ok == nullptr || !ok->AsBool()) {
    ADD_FAILURE() << "error response: " << *response;
    return "";
  }
  const obs::JsonValue* result = doc->Find("result");
  return result == nullptr ? "" : result->StringOr("text", "");
}

TEST_F(ServeStressTest, SixtyFourConcurrentClientsMatchBatchSelect) {
  // The batch reference for the exact same knobs.
  std::string batch;
  ASSERT_EQ(Run({"select", "--dir", scratch_.path().c_str(), "--t0", "100",
                 "--points", "3", "--stride", "14"},
                &batch),
            0)
      << batch;

  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Load("default", scratch_.path(), BaseIngest()).ok());
  Engine engine(&registry);
  EngineHandler handler(&engine);
  Server::Options options;
  options.max_inflight = 8;
  options.max_queue = 64;  // Every client fits; no shed in this test.
  Server server(&handler, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 64;
  std::vector<std::string> texts(kClients);
  std::atomic<int> connect_failures{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        Result<Client> client =
            Client::ConnectTcp("127.0.0.1", server.port());
        if (!client.ok()) {
          connect_failures.fetch_add(1);
          return;
        }
        texts[static_cast<std::size_t>(i)] = ResponseText(client->Call(
            SerializeQueryRequest(true, static_cast<std::uint64_t>(i),
                                  BaseParams())));
      });
    }
    for (std::thread& t : clients) t.join();
  }
  EXPECT_EQ(connect_failures.load(), 0);

  ASSERT_FALSE(texts[0].empty());
  EXPECT_TRUE(batch.ends_with(texts[0]))
      << "daemon text:\n" << texts[0] << "\nbatch output:\n" << batch;
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(texts[static_cast<std::size_t>(i)], texts[0])
        << "client " << i << " diverged";
  }
  server.Stop();

  // The shared prepared cache did its job: one build, the rest hits.
  const Engine::CacheStats stats = engine.prepared_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kClients - 1));
}

TEST_F(ServeStressTest, MixedQueryShapesStayDeterministicUnderConcurrency) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Load("default", scratch_.path(), BaseIngest()).ok());
  Engine engine(&registry);

  // Four distinct request shapes: different algorithms, a roster filter,
  // a multi-threaded evaluation. Serial references first (each request
  // builds a fresh profit cache, so serial and concurrent runs report
  // identical statistics).
  std::vector<QueryParams> shapes;
  shapes.push_back(BaseParams());
  {
    QueryParams p = BaseParams();
    p.algorithm = "greedy";
    shapes.push_back(p);
  }
  {
    QueryParams p = BaseParams();
    p.algorithm = "budgeted";
    p.budget = 0.5;
    shapes.push_back(p);
  }
  {
    // Roster names come from the scenario itself, not a guess.
    Result<std::shared_ptr<const ResidentScenario>> scenario =
        registry.Get("default");
    ASSERT_TRUE(scenario.ok());
    ASSERT_GE((*scenario)->profiles.size(), 3u);
    QueryParams p = BaseParams();
    for (std::size_t i = 0; i < 3; ++i) {
      p.roster.push_back((*scenario)->profiles[i].name);
    }
    p.threads = 2;
    shapes.push_back(p);
  }
  std::vector<std::string> reference;
  for (const QueryParams& shape : shapes) {
    Result<QueryOutcome> outcome = engine.ExecuteQuery(shape);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    reference.push_back(outcome->text);
  }

  EngineHandler handler(&engine);
  Server::Options options;
  options.max_inflight = 8;
  options.max_queue = 64;
  Server server(&handler, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 32;
  std::vector<std::string> texts(kClients);
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        Result<Client> client =
            Client::ConnectTcp("127.0.0.1", server.port());
        ASSERT_TRUE(client.ok()) << client.status().ToString();
        const QueryParams& shape =
            shapes[static_cast<std::size_t>(i) % shapes.size()];
        texts[static_cast<std::size_t>(i)] = ResponseText(client->Call(
            SerializeQueryRequest(true, static_cast<std::uint64_t>(i),
                                  shape)));
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(texts[static_cast<std::size_t>(i)],
              reference[static_cast<std::size_t>(i) % shapes.size()])
        << "client " << i << " diverged from its serial reference";
  }
  server.Stop();
}

TEST_F(ServeStressTest, ConcurrentControlOpsNeverBlockOnWork) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Load("default", scratch_.path(), BaseIngest()).ok());
  Engine engine(&registry);
  EngineHandler handler(&engine);
  Server::Options options;
  options.max_inflight = 2;
  options.max_queue = 64;
  Server server(&handler, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kWorkers = 16;
  constexpr int kProbers = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kWorkers; ++i) {
    threads.emplace_back([&] {
      Result<Client> client =
          Client::ConnectTcp("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      if (ResponseText(
              client->Call(SerializeQueryRequest(false, 0, BaseParams())))
              .empty()) {
        failures.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < kProbers; ++i) {
    threads.emplace_back([&] {
      Result<Client> client =
          Client::ConnectTcp("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int probe = 0; probe < 20; ++probe) {
        Result<std::string> response = client->Call(
            SerializeControlRequest(true, static_cast<std::uint64_t>(probe),
                                    RequestOp::kPing));
        Result<obs::JsonValue> doc =
            response.ok() ? obs::ParseJson(*response)
                          : Result<obs::JsonValue>(response.status());
        if (!doc.ok() || doc->Find("ok") == nullptr ||
            !doc->Find("ok")->AsBool()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

#if FRESHSEL_FAULT_ACTIVE

TEST_F(ServeStressTest, IngestionFaultsSurfaceAsStructuredErrors) {
  ScenarioRegistry registry;
  Engine engine(&registry);
  EngineHandler handler(&engine);
  Server server(&handler, Server::Options{});
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(fault::FailpointRegistry::Global()
                  .ArmFromSpec("io.read=always")
                  .ok());
  Result<Client> client = Client::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  LoadParams load;
  load.scenario = "default";
  load.dir = scratch_.path();
  Result<std::string> response =
      client->Call(SerializeLoadRequest(true, 1, load));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  Result<obs::JsonValue> doc = obs::ParseJson(*response);
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->Find("ok"), nullptr);
  EXPECT_FALSE(doc->Find("ok")->AsBool()) << *response;
  const obs::JsonValue* error = doc->Find("error");
  ASSERT_NE(error, nullptr) << *response;
  const std::string code = error->StringOr("code", "");
  EXPECT_TRUE(code == "io_error" || code == "unavailable") << *response;
  EXPECT_NE(error->StringOr("message", "").find("injected fault"),
            std::string::npos)
      << *response;

  // Nothing half-loaded, and the daemon recovers once the fault clears.
  fault::FailpointRegistry::Global().DisarmAll();
  Result<std::string> retry =
      client->Call(SerializeLoadRequest(true, 2, load));
  ASSERT_TRUE(retry.ok());
  Result<obs::JsonValue> retry_doc = obs::ParseJson(*retry);
  ASSERT_TRUE(retry_doc.ok());
  EXPECT_TRUE(retry_doc->Find("ok")->AsBool()) << *retry;
  server.Stop();
}

#endif  // FRESHSEL_FAULT_ACTIVE

}  // namespace
}  // namespace freshsel::serve
