// Transport-layer tests (DESIGN.md §15) against deterministic stub
// handlers: framing, per-connection error recovery, oversized hangups,
// admission control, graceful drain, and the HTTP /metrics one-shot. A
// blocking stub released through a condition variable turns the
// admission-control scenarios into lockstep scripts instead of timing
// races, so these tests are exact under TSan and `ctest -j` alike.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/json_reader.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "testing/scratch.h"

namespace freshsel::serve {
namespace {

/// Canned answers for every verb; thread-safe by construction (all state
/// immutable after Start).
class StubHandler : public RequestHandler {
 public:
  Result<QueryOutcome> HandleQuery(const QueryParams& params) override {
    if (params.scenario == "explode") {
      return Status::NotFound("unknown scenario 'explode'");
    }
    QueryOutcome outcome;
    outcome.selected = {{"s1", 1, 0.5}};
    outcome.profit = 1.0;
    outcome.text = "stub selection for " + params.scenario + "\n";
    return outcome;
  }
  Result<ScenarioInfo> HandleLoad(const LoadParams& params) override {
    ScenarioInfo info;
    info.name = params.scenario;
    info.sources = 3;
    info.entities = 10;
    info.t0 = 50;
    info.epoch = 1;
    return info;
  }
  std::vector<ScenarioInfo> ListScenarios() override {
    ScenarioInfo info;
    info.name = "default";
    info.sources = 3;
    info.entities = 10;
    info.t0 = 50;
    info.epoch = 1;
    return {info};
  }
  std::string MetricsText() override {
    return "# TYPE stub_counter counter\nstub_counter_total 7\n# EOF\n";
  }
};

/// A handler whose queries park on a condition variable until the test
/// releases them - the lever that makes inflight/queued states observable
/// deterministically.
class BlockingHandler : public StubHandler {
 public:
  Result<QueryOutcome> HandleQuery(const QueryParams& params) override {
    {
      MutexLock lock(mutex_);
      ++entered_;
      entered_cv_.NotifyAll();
      while (!released_) release_cv_.Wait(mutex_);
    }
    return StubHandler::HandleQuery(params);
  }

  /// Blocks until `count` queries are parked inside HandleQuery.
  void AwaitEntered(int count) {
    MutexLock lock(mutex_);
    while (entered_ < count) entered_cv_.Wait(mutex_);
  }

  void ReleaseAll() {
    MutexLock lock(mutex_);
    released_ = true;
    release_cv_.NotifyAll();
  }

 private:
  Mutex mutex_;
  CondVar entered_cv_;
  CondVar release_cv_;
  int entered_ FRESHSEL_GUARDED_BY(mutex_) = 0;
  bool released_ FRESHSEL_GUARDED_BY(mutex_) = false;
};

obs::JsonValue Parse(const std::string& line) {
  Result<obs::JsonValue> doc = obs::ParseJson(line);
  EXPECT_TRUE(doc.ok()) << line;
  return doc.ok() ? *doc : obs::JsonValue();
}

std::string ErrorCode(const obs::JsonValue& doc) {
  const obs::JsonValue* error = doc.Find("error");
  return error == nullptr ? "" : error->StringOr("code", "");
}

/// Starts a TCP server on an ephemeral loopback port and connects.
class ServerTest : public ::testing::Test {
 protected:
  void StartTcp(RequestHandler* handler, Server::Options options = {}) {
    server_ = std::make_unique<Server>(handler, std::move(options));
    Status status = server_->Start();
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  Client Connect() {
    Result<Client> client =
        Client::ConnectTcp("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, ControlOpsAnswerOverTcp) {
  StubHandler handler;
  StartTcp(&handler);
  EXPECT_GT(server_->port(), 0);  // Ephemeral bind reported back.
  Client client = Connect();

  obs::JsonValue ping =
      Parse(*client.Call(SerializeControlRequest(true, 1, RequestOp::kPing)));
  EXPECT_TRUE(ping.Find("ok")->AsBool());
  EXPECT_EQ(ping.UintOr("id", 0), 1u);
  EXPECT_EQ(ping.Find("result")->StringOr("state", ""), "serving");
  EXPECT_EQ(ping.Find("result")->UintOr("scenarios", 0), 1u);

  obs::JsonValue list = Parse(*client.Call(
      SerializeControlRequest(true, 2, RequestOp::kListScenarios)));
  ASSERT_EQ(list.Find("result")->Find("scenarios")->items().size(), 1u);

  obs::JsonValue metrics = Parse(
      *client.Call(SerializeControlRequest(true, 3, RequestOp::kMetrics)));
  EXPECT_NE(metrics.Find("result")
                ->StringOr("openmetrics", "")
                .find("stub_counter_total 7"),
            std::string::npos);
}

TEST_F(ServerTest, QueryAndLoadRoundTrip) {
  StubHandler handler;
  StartTcp(&handler);
  Client client = Connect();

  QueryParams params;
  params.scenario = "web";
  obs::JsonValue query =
      Parse(*client.Call(SerializeQueryRequest(true, 4, params)));
  EXPECT_TRUE(query.Find("ok")->AsBool());
  EXPECT_EQ(query.Find("result")->StringOr("text", ""),
            "stub selection for web\n");

  LoadParams load;
  load.scenario = "fresh";
  load.dir = "/data/fresh";
  obs::JsonValue loaded =
      Parse(*client.Call(SerializeLoadRequest(true, 5, load)));
  EXPECT_TRUE(loaded.Find("ok")->AsBool());
  EXPECT_EQ(loaded.Find("result")->StringOr("name", ""), "fresh");

  // Handler errors come back as structured status errors with the id.
  params.scenario = "explode";
  obs::JsonValue failed =
      Parse(*client.Call(SerializeQueryRequest(true, 6, params)));
  EXPECT_FALSE(failed.Find("ok")->AsBool());
  EXPECT_EQ(failed.UintOr("id", 0), 6u);
  EXPECT_EQ(ErrorCode(failed), "not_found");
}

TEST_F(ServerTest, ParseErrorsKeepTheConnectionUsable) {
  StubHandler handler;
  StartTcp(&handler);
  Client client = Connect();

  obs::JsonValue bad = Parse(*client.Call("this is not json"));
  EXPECT_FALSE(bad.Find("ok")->AsBool());
  EXPECT_EQ(ErrorCode(bad), "invalid_argument");
  EXPECT_EQ(bad.Find("id"), nullptr);  // No id recoverable from garbage.

  obs::JsonValue unknown_field =
      Parse(*client.Call(R"({"op":"query","bogus":1})"));
  EXPECT_EQ(ErrorCode(unknown_field), "invalid_argument");

  // Newline framing survives bad lines: the next request still answers.
  obs::JsonValue ping =
      Parse(*client.Call(SerializeControlRequest(true, 9, RequestOp::kPing)));
  EXPECT_TRUE(ping.Find("ok")->AsBool());
}

TEST_F(ServerTest, BlankLinesAndCrlfAreTolerated) {
  StubHandler handler;
  StartTcp(&handler);
  Client client = Connect();
  ASSERT_TRUE(client.Send("").ok());  // Blank keep-alive line: no response.
  ASSERT_TRUE(
      client.Send(SerializeControlRequest(true, 1, RequestOp::kPing) + "\r")
          .ok());
  obs::JsonValue ping = Parse(*client.ReadLine());
  EXPECT_TRUE(ping.Find("ok")->AsBool());
}

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  StubHandler handler;
  StartTcp(&handler);
  Client client = Connect();
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(
        client.Send(SerializeControlRequest(true, id, RequestOp::kPing))
            .ok());
  }
  for (std::uint64_t id = 1; id <= 5; ++id) {
    obs::JsonValue response = Parse(*client.ReadLine());
    EXPECT_EQ(response.UintOr("id", 0), id);
  }
}

TEST_F(ServerTest, OversizedRequestAnswersOnceThenHangsUp) {
  StubHandler handler;
  StartTcp(&handler);
  Client client = Connect();
  std::string huge = R"({"op":"query","scenario":")";
  huge.append(kMaxRequestBytes + 16, 'a');
  huge += "\"}";
  Result<std::string> response = client.Call(huge);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(ErrorCode(Parse(*response)), "oversized");
  // The reader cannot resync inside an oversized line: connection closed.
  Result<std::string> after = client.ReadLine();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kIoError);
}

TEST_F(ServerTest, OverloadShedsBeyondInflightPlusQueue) {
  BlockingHandler handler;
  Server::Options options;
  options.max_inflight = 1;
  options.max_queue = 0;
  StartTcp(&handler, options);

  Client first = Connect();
  ASSERT_TRUE(first.Send(SerializeQueryRequest(true, 1, QueryParams{})).ok());
  handler.AwaitEntered(1);  // The only lane is now held.

  PingInfo info = server_->ping_info();
  EXPECT_EQ(info.inflight, 1u);
  EXPECT_EQ(info.queued, 0u);

  // No queue slots -> immediate shed, not a stall.
  Client second = Connect();
  obs::JsonValue shed =
      Parse(*second.Call(SerializeQueryRequest(true, 2, QueryParams{})));
  EXPECT_FALSE(shed.Find("ok")->AsBool());
  EXPECT_EQ(ErrorCode(shed), "overloaded");
  EXPECT_EQ(shed.UintOr("id", 0), 2u);

  // Control ops bypass admission even while saturated.
  obs::JsonValue ping = Parse(
      *second.Call(SerializeControlRequest(true, 3, RequestOp::kPing)));
  EXPECT_TRUE(ping.Find("ok")->AsBool());
  EXPECT_EQ(ping.Find("result")->UintOr("inflight", 0), 1u);

  handler.ReleaseAll();
  obs::JsonValue done = Parse(*first.ReadLine());
  EXPECT_TRUE(done.Find("ok")->AsBool());
}

TEST_F(ServerTest, QueuedRequestRunsWhenALaneFrees) {
  BlockingHandler handler;
  Server::Options options;
  options.max_inflight = 1;
  options.max_queue = 1;
  StartTcp(&handler, options);

  Client first = Connect();
  ASSERT_TRUE(first.Send(SerializeQueryRequest(true, 1, QueryParams{})).ok());
  handler.AwaitEntered(1);

  Client second = Connect();
  ASSERT_TRUE(
      second.Send(SerializeQueryRequest(true, 2, QueryParams{})).ok());
  // The second request is now parked in the admission queue (it cannot
  // have entered the handler: max_inflight is 1).
  while (server_->ping_info().queued != 1) {
    std::this_thread::yield();
  }

  // A third request overflows the single queue slot.
  Client third = Connect();
  obs::JsonValue shed =
      Parse(*third.Call(SerializeQueryRequest(true, 3, QueryParams{})));
  EXPECT_EQ(ErrorCode(shed), "overloaded");

  handler.ReleaseAll();
  EXPECT_TRUE(Parse(*first.ReadLine()).Find("ok")->AsBool());
  EXPECT_TRUE(Parse(*second.ReadLine()).Find("ok")->AsBool());
}

TEST_F(ServerTest, DrainRefusesNewWorkAndDeliversInflightResponses) {
  BlockingHandler handler;
  Server::Options options;
  options.max_inflight = 4;
  StartTcp(&handler, options);

  Client worker = Connect();
  Client prober = Connect();
  ASSERT_TRUE(
      worker.Send(SerializeQueryRequest(true, 1, QueryParams{})).ok());
  handler.AwaitEntered(1);

  server_->RequestShutdown();
  // Drain begins: state flips to draining while the in-flight query holds
  // its lane. Control ops still answer; poll until the flip is visible.
  while (true) {
    obs::JsonValue ping = Parse(
        *prober.Call(SerializeControlRequest(true, 2, RequestOp::kPing)));
    if (ping.Find("result")->StringOr("state", "") == "draining") break;
  }

  // New work is refused with `draining`, not queued and not dropped.
  obs::JsonValue refused =
      Parse(*prober.Call(SerializeQueryRequest(true, 3, QueryParams{})));
  EXPECT_FALSE(refused.Find("ok")->AsBool());
  EXPECT_EQ(ErrorCode(refused), "draining");

  // Releasing the in-flight query completes the drain; its response is
  // still delivered (the drain only shuts down the read side).
  handler.ReleaseAll();
  obs::JsonValue done = Parse(*worker.ReadLine());
  EXPECT_TRUE(done.Find("ok")->AsBool());
  EXPECT_EQ(done.UintOr("id", 0), 1u);
  server_->Wait();
}

TEST_F(ServerTest, FinishedConnectionThreadHandlesAreReaped) {
  StubHandler handler;
  StartTcp(&handler);
  constexpr int kConnections = 16;
  for (int i = 0; i < kConnections; ++i) {
    {
      Client client = Connect();
      obs::JsonValue ping = Parse(
          *client.Call(SerializeControlRequest(true, 1, RequestOp::kPing)));
      EXPECT_TRUE(ping.Find("ok")->AsBool());
    }  // ~Client closes the socket; the server thread sees EOF and exits.
    // Wait until the connection thread parked its own handle for reaping
    // (the ctest timeout backstops a thread that never exits); the next
    // accept then joins it.
    while (server_->running_connection_threads_for_test() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Each accept reaped the handles parked before it, so after 16
  // sequential connections at most the last one's handle is still
  // retained. Without reaping this would sit at kConnections for the
  // daemon's whole lifetime.
  EXPECT_LE(server_->retained_connection_threads_for_test(), 1u);
  server_->Stop();
  EXPECT_EQ(server_->retained_connection_threads_for_test(), 0u);
}

TEST_F(ServerTest, DoubleStartIsRefusedAndStopIsIdempotent) {
  StubHandler handler;
  StartTcp(&handler);
  Status again = server_->Start();
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  server_->Stop();
  server_->Stop();  // Second stop is a no-op.
}

TEST_F(ServerTest, HttpGetMetricsServesOpenMetrics) {
  StubHandler handler;
  StartTcp(&handler);
  Client client = Connect();
  ASSERT_TRUE(client.Send("GET /metrics HTTP/1.1").ok());
  std::string response;
  while (true) {
    Result<std::string> line = client.ReadLine();
    if (!line.ok()) break;  // Scrape connections are one-shot.
    response += *line + "\n";
  }
  EXPECT_TRUE(response.starts_with("HTTP/1.0 200 OK")) << response;
  EXPECT_NE(response.find("application/openmetrics-text"),
            std::string::npos);
  EXPECT_NE(response.find("stub_counter_total 7"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
}

TEST_F(ServerTest, HttpGetAnythingElseIs404) {
  StubHandler handler;
  StartTcp(&handler);
  Client client = Connect();
  ASSERT_TRUE(client.Send("GET / HTTP/1.1").ok());
  Result<std::string> line = client.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_TRUE(line->starts_with("HTTP/1.0 404")) << *line;
}

TEST(ServerUnixTest, ServesOverUnixSocketAndUnlinksOnDrain) {
  const std::string socket_path = testing::UniqueSocketPath();
  StubHandler handler;
  Server::Options options;
  options.unix_socket = socket_path;
  {
    Server server(&handler, options);
    Status status = server.Start();
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(server.port(), 0);  // No TCP port for unix sockets.
    Result<Client> client = Client::ConnectUnix(socket_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    obs::JsonValue ping = Parse(
        *client->Call(SerializeControlRequest(true, 1, RequestOp::kPing)));
    EXPECT_TRUE(ping.Find("ok")->AsBool());
    server.Stop();
    // Drain removed the filesystem entry.
    EXPECT_FALSE(Client::ConnectUnix(socket_path).ok());
  }
  testing::CleanupSocket(socket_path);
}

TEST(ServerUnixTest, OverlongSocketPathIsRejectedUpFront) {
  StubHandler handler;
  Server::Options options;
  options.unix_socket = "/tmp/" + std::string(200, 'x') + ".sock";
  Server server(&handler, options);
  Status status = server.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace freshsel::serve
