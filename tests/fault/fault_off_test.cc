// Compile-out regression for the failpoint macros: with
// FRESHSEL_FAULT_FORCE_OFF defined before including fault/failpoint.h, the
// macros in THIS translation unit must expand to static_cast<void>(0) —
// armed failpoints neither fire nor account hits here, while the fault
// library API (registry, arming, retry) keeps working. A whole-build
// -DFRESHSEL_FAULT=OFF behaves identically, which is what the CI OFF-mode
// matrix job verifies with this same test.
#define FRESHSEL_FAULT_FORCE_OFF
#include "fault/failpoint.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace freshsel::fault {
namespace {

static_assert(FRESHSEL_FAULT_ACTIVE == 0,
              "FRESHSEL_FAULT_FORCE_OFF must zero FRESHSEL_FAULT_ACTIVE");

Status OffTuOperation() {
  FRESHSEL_FAILPOINT_RETURN("offtu.return",
                            Status::Unavailable("must never inject"));
  FRESHSEL_FAILPOINT("offtu.touch");
  return Status::OK();
}

TEST(FaultOffTest, ArmedFailpointsAreInertInThisTu) {
  // Arm through the registry directly; the macro call sites above must not
  // even consult it.
  FailpointRegistry::Global().Get("offtu.return").Arm(TriggerSpec::Always());
  FailpointRegistry::Global().Get("offtu.touch").Arm(TriggerSpec::Always());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(OffTuOperation().ok());
  }
  EXPECT_EQ(FailpointRegistry::Global().Get("offtu.return").hits(), 0u);
  EXPECT_EQ(FailpointRegistry::Global().Get("offtu.return").fires(), 0u);
  EXPECT_EQ(FailpointRegistry::Global().Get("offtu.touch").hits(), 0u);
  FailpointRegistry::Global().Get("offtu.return").Disarm();
  FailpointRegistry::Global().Get("offtu.touch").Disarm();
}

TEST(FaultOffTest, RegistryApiStillWorksWhenMacrosAreOff) {
  // The library itself is always built: programmatic use is unaffected.
  Failpoint& point = FailpointRegistry::Global().Get("offtu.direct");
  point.Arm(TriggerSpec::EveryNth(2));
  EXPECT_FALSE(point.ShouldFail());
  EXPECT_TRUE(point.ShouldFail());
  point.Disarm();
}

TEST(FaultOffTest, MacrosAreValidStatementsInControlFlow) {
  // static_cast<void>(0) must remain usable wherever a statement is; an
  // expansion with a stray semicolon or a bare block would break these.
  if (true)
    FRESHSEL_FAILPOINT("offtu.if");
  else
    FRESHSEL_FAILPOINT("offtu.else");
  for (int i = 0; i < 2; ++i) FRESHSEL_FAILPOINT("offtu.loop");
  SUCCEED();
}

}  // namespace
}  // namespace freshsel::fault
