#include "fault/retry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/result.h"
#include "obs/macros.h"
#include "obs/metrics.h"

namespace freshsel::fault {
namespace {

RetryOptions FastOptions(int max_attempts = 3) {
  RetryOptions options;
  options.max_attempts = max_attempts;
  options.initial_backoff_seconds = 0.25;
  options.backoff_multiplier = 2.0;
  options.max_backoff_seconds = 1.0;
  options.jitter_fraction = 0.0;
  return options;
}

/// Policy whose sleeps are recorded instead of slept.
RetryPolicy RecordingPolicy(const RetryOptions& options,
                            std::vector<double>* sleeps) {
  RetryPolicy policy(options);
  policy.set_sleep_fn([sleeps](double seconds) { sleeps->push_back(seconds); });
  return policy;
}

TEST(RetryPolicyTest, RetryableCodes) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.IsRetryable(Status::IoError("disk")));
  EXPECT_TRUE(policy.IsRetryable(Status::Unavailable("flaky")));
  EXPECT_FALSE(policy.IsRetryable(Status::OK()));
  EXPECT_FALSE(policy.IsRetryable(Status::InvalidArgument("bad")));
  EXPECT_FALSE(policy.IsRetryable(Status::NotFound("gone")));

  RetryOptions pinned;
  pinned.retry_io_error = false;
  pinned.retry_unavailable = false;
  RetryPolicy none(pinned);
  EXPECT_FALSE(none.IsRetryable(Status::IoError("disk")));
  EXPECT_FALSE(none.IsRetryable(Status::Unavailable("flaky")));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy(FastOptions(/*max_attempts=*/10));
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(0), 0.25);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3), 1.0);  // Capped.
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(9), 1.0);
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  RetryOptions options = FastOptions(10);
  options.jitter_fraction = 0.2;
  options.jitter_seed = 99;
  RetryPolicy policy(options);
  for (int retry = 0; retry < 8; ++retry) {
    const double base =
        std::min(0.25 * std::pow(2.0, static_cast<double>(retry)), 1.0);
    const double jittered = policy.BackoffSeconds(retry);
    EXPECT_GE(jittered, base * 0.8);
    EXPECT_LE(jittered, base * 1.2);
    // Pure function of (options, retry): replay yields identical values.
    EXPECT_DOUBLE_EQ(jittered, policy.BackoffSeconds(retry));
    EXPECT_DOUBLE_EQ(jittered, RetryPolicy(options).BackoffSeconds(retry));
  }
  // A different seed perturbs at least one sleep in the schedule.
  options.jitter_seed = 100;
  RetryPolicy reseeded(options);
  bool any_differs = false;
  for (int retry = 0; retry < 8; ++retry) {
    any_differs |= reseeded.BackoffSeconds(retry) !=
                   policy.BackoffSeconds(retry);
  }
  EXPECT_TRUE(any_differs);
}

TEST(RetryPolicyTest, FirstTrySuccessDoesNotSleep) {
  std::vector<double> sleeps;
  RetryPolicy policy = RecordingPolicy(FastOptions(), &sleeps);
  int calls = 0;
  EXPECT_TRUE(policy
                  .Run("op",
                       [&calls]() {
                         ++calls;
                         return Status::OK();
                       })
                  .ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryPolicyTest, TransientFailureRetriesUntilSuccess) {
  std::vector<double> sleeps;
  RetryPolicy policy = RecordingPolicy(FastOptions(5), &sleeps);
  std::vector<std::pair<int, std::string>> hook_calls;
  policy.set_on_retry(
      [&hook_calls](std::string_view op, int retry, const Status& last) {
        hook_calls.emplace_back(retry, std::string(op));
        EXPECT_EQ(last.code(), StatusCode::kUnavailable);
      });
  int calls = 0;
  const Status status = policy.Run("flaky", [&calls]() {
    ++calls;
    return calls < 3 ? Status::Unavailable("transient") : Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(sleeps.size(), 2u);  // Two retries, each preceded by a sleep.
  EXPECT_DOUBLE_EQ(sleeps[0], policy.BackoffSeconds(0));
  EXPECT_DOUBLE_EQ(sleeps[1], policy.BackoffSeconds(1));
  ASSERT_EQ(hook_calls.size(), 2u);
  EXPECT_EQ(hook_calls[0], (std::pair<int, std::string>{0, "flaky"}));
  EXPECT_EQ(hook_calls[1], (std::pair<int, std::string>{1, "flaky"}));
}

TEST(RetryPolicyTest, NonRetryableFailsFast) {
  std::vector<double> sleeps;
  RetryPolicy policy = RecordingPolicy(FastOptions(5), &sleeps);
  int calls = 0;
  const Status status = policy.Run("fatal", [&calls]() {
    ++calls;
    return Status::InvalidArgument("bad row");
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryPolicyTest, ExhaustionReturnsLastErrorAndCounts) {
  obs::MetricsRegistry::Global().ResetAll();
  std::vector<double> sleeps;
  RetryPolicy policy = RecordingPolicy(FastOptions(3), &sleeps);
  int calls = 0;
  const Status status = policy.Run("down", [&calls]() {
    ++calls;
    return Status::IoError("attempt " + std::to_string(calls));
  });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("attempt 3"), std::string::npos);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps.size(), 2u);
#if FRESHSEL_OBS_ACTIVE
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().TakeSnapshot();
  EXPECT_EQ(snapshot.counters.at("io.retry.attempts"), 2u);
  EXPECT_EQ(snapshot.counters.at("io.retry.exhausted"), 1u);
#endif  // FRESHSEL_OBS_ACTIVE
}

TEST(RetryPolicyTest, SingleAttemptNeverRetries) {
  std::vector<double> sleeps;
  RetryPolicy policy = RecordingPolicy(FastOptions(1), &sleeps);
  int calls = 0;
  EXPECT_FALSE(policy
                   .Run("once",
                        [&calls]() {
                          ++calls;
                          return Status::IoError("nope");
                        })
                   .ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryPolicyTest, RunResultPropagatesValueAndError) {
  std::vector<double> sleeps;
  RetryPolicy policy = RecordingPolicy(FastOptions(4), &sleeps);
  int calls = 0;
  Result<int> result =
      policy.RunResult<int>("value", [&calls]() -> Result<int> {
        ++calls;
        if (calls < 2) return Status::Unavailable("warming up");
        return 42;
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);

  Result<int> failed = policy.RunResult<int>(
      "never", []() -> Result<int> { return Status::NotFound("missing"); });
  EXPECT_EQ(failed.status().code(), StatusCode::kNotFound);
}

TEST(RetryPolicyDeathTest, InvalidOptionsAreContractViolations) {
  RetryOptions zero_attempts;
  zero_attempts.max_attempts = 0;
  EXPECT_DEATH(RetryPolicy{zero_attempts}, "max_attempts");
  RetryOptions negative_backoff;
  negative_backoff.initial_backoff_seconds = -0.5;
  EXPECT_DEATH(RetryPolicy{negative_backoff}, "finite and non-negative");
  RetryOptions shrinking;
  shrinking.backoff_multiplier = 0.5;
  EXPECT_DEATH(RetryPolicy{shrinking}, "backoff_multiplier");
  RetryOptions wild_jitter;
  wild_jitter.jitter_fraction = 1.5;
  EXPECT_DEATH(RetryPolicy{wild_jitter}, "must be a probability");
}

}  // namespace
}  // namespace freshsel::fault
