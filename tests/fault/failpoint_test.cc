#include "fault/failpoint.h"

#include <cstdint>
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "common/status.h"

namespace freshsel::fault {
namespace {

// Each test uses its own failpoint names: the registry is process-wide and
// registrations are permanent, so sharing names across tests would leak
// trigger state between them.

TEST(FailpointTest, UnarmedNeverFiresAndCountsNothing) {
  Failpoint& point = FailpointRegistry::Global().Get("t.unarmed");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(point.ShouldFail());
  EXPECT_EQ(point.hits(), 0u);  // Unarmed hits are not accounted.
  EXPECT_EQ(point.fires(), 0u);
}

TEST(FailpointTest, GetReturnsStableReference) {
  Failpoint& a = FailpointRegistry::Global().Get("t.stable");
  Failpoint& b = FailpointRegistry::Global().Get("t.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "t.stable");
  EXPECT_EQ(FailpointRegistry::Global().Lookup("t.stable"), &a);
  EXPECT_EQ(FailpointRegistry::Global().Lookup("t.never-created"), nullptr);
}

TEST(FailpointTest, AlwaysFiresEveryHit) {
  Failpoint& point = FailpointRegistry::Global().Get("t.always");
  point.Arm(TriggerSpec::Always());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(point.ShouldFail());
  EXPECT_EQ(point.hits(), 5u);
  EXPECT_EQ(point.fires(), 5u);
  point.Disarm();
  EXPECT_FALSE(point.ShouldFail());
}

TEST(FailpointTest, OneShotFiresOnceThenDisarms) {
  Failpoint& point = FailpointRegistry::Global().Get("t.once");
  point.Arm(TriggerSpec::OneShot());
  EXPECT_TRUE(point.ShouldFail());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(point.ShouldFail());
  EXPECT_EQ(point.fires(), 1u);
  EXPECT_EQ(point.hits(), 1u);  // Post-fire hits are unarmed, not counted.
}

TEST(FailpointTest, EveryNthPassesThenFires) {
  Failpoint& point = FailpointRegistry::Global().Get("t.nth");
  point.Arm(TriggerSpec::EveryNth(3));
  std::vector<bool> pattern;
  for (int i = 0; i < 9; ++i) pattern.push_back(point.ShouldFail());
  EXPECT_EQ(pattern, (std::vector<bool>{false, false, true, false, false,
                                        true, false, false, true}));
  EXPECT_EQ(point.hits(), 9u);
  EXPECT_EQ(point.fires(), 3u);
}

TEST(FailpointTest, EveryFirstIsAlways) {
  Failpoint& point = FailpointRegistry::Global().Get("t.nth1");
  point.Arm(TriggerSpec::EveryNth(1));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(point.ShouldFail());
}

TEST(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  Failpoint& point = FailpointRegistry::Global().Get("t.prob");
  auto draw_pattern = [&point](std::uint64_t seed) {
    point.Arm(TriggerSpec::Probability(0.5, seed));
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(point.ShouldFail());
    return pattern;
  };
  const std::vector<bool> first = draw_pattern(11);
  const std::vector<bool> replay = draw_pattern(11);
  EXPECT_EQ(first, replay);  // Re-arming restarts the private Rng stream.
  EXPECT_NE(first, draw_pattern(12));  // Another seed, another pattern.
  int fires = 0;
  for (bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 10);  // p=0.5 over 64 draws: loose sanity bounds.
  EXPECT_LT(fires, 54);
}

TEST(FailpointTest, ProbabilityExtremes) {
  Failpoint& point = FailpointRegistry::Global().Get("t.prob-extreme");
  point.Arm(TriggerSpec::Probability(0.0, 1));
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(point.ShouldFail());
  point.Arm(TriggerSpec::Probability(1.0, 1));
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(point.ShouldFail());
}

TEST(FailpointTest, RearmingResetsAccounting) {
  Failpoint& point = FailpointRegistry::Global().Get("t.rearm");
  point.Arm(TriggerSpec::Always());
  point.ShouldFail();
  point.ShouldFail();
  EXPECT_EQ(point.fires(), 2u);
  point.Arm(TriggerSpec::EveryNth(2));
  EXPECT_EQ(point.hits(), 0u);
  EXPECT_EQ(point.fires(), 0u);
  EXPECT_FALSE(point.ShouldFail());
  EXPECT_TRUE(point.ShouldFail());
}

TEST(FailpointTest, ArmWithDisarmedSpecDisarms) {
  Failpoint& point = FailpointRegistry::Global().Get("t.arm-disarm");
  point.Arm(TriggerSpec::Always());
  point.Arm(TriggerSpec{});
  EXPECT_FALSE(point.ShouldFail());
}

TEST(FailpointTest, StateSnapshotsSpec) {
  Failpoint& point = FailpointRegistry::Global().Get("t.state");
  point.Arm(TriggerSpec::EveryNth(4));
  point.ShouldFail();
  const Failpoint::State state = point.state();
  EXPECT_EQ(state.spec.mode, TriggerMode::kEveryNth);
  EXPECT_EQ(state.spec.every_nth, 4u);
  EXPECT_EQ(state.hits, 1u);
  EXPECT_EQ(state.fires, 0u);
}

TEST(FailpointTest, ConcurrentHitsAreFullyAccounted) {
  Failpoint& point = FailpointRegistry::Global().Get("t.concurrent");
  point.Arm(TriggerSpec::EveryNth(2));
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&point]() {
      for (int j = 0; j < kHitsPerThread; ++j) point.ShouldFail();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(point.hits(), static_cast<std::uint64_t>(kThreads) *
                              kHitsPerThread);
  EXPECT_EQ(point.fires(), point.hits() / 2);
}

TEST(FailpointRegistryTest, ArmFromSpecGrammar) {
  FailpointRegistry registry;
  ASSERT_TRUE(registry
                  .ArmFromSpec("a.read=always; b.write=nth:3,"
                               "c.learn = prob:0.25:7 ;; d.x=once")
                  .ok());
  EXPECT_EQ(registry.Lookup("a.read")->state().spec.mode,
            TriggerMode::kAlways);
  EXPECT_EQ(registry.Lookup("b.write")->state().spec.every_nth, 3u);
  const TriggerSpec prob = registry.Lookup("c.learn")->state().spec;
  EXPECT_EQ(prob.mode, TriggerMode::kProbability);
  EXPECT_DOUBLE_EQ(prob.probability, 0.25);
  EXPECT_EQ(prob.seed, 7u);
  EXPECT_EQ(registry.Lookup("d.x")->state().spec.mode, TriggerMode::kOneShot);
}

TEST(FailpointRegistryTest, ArmFromSpecOffDisarms) {
  FailpointRegistry registry;
  ASSERT_TRUE(registry.ArmFromSpec("p=always").ok());
  EXPECT_TRUE(registry.Lookup("p")->ShouldFail());
  ASSERT_TRUE(registry.ArmFromSpec("p=off").ok());
  EXPECT_FALSE(registry.Lookup("p")->ShouldFail());
}

TEST(FailpointRegistryTest, BadSpecsRejectedWithoutPartialArming) {
  FailpointRegistry registry;
  // The first clause is valid, the second is not: nothing may be armed.
  EXPECT_EQ(registry.ArmFromSpec("good=always;bad=wat").code(),
            StatusCode::kInvalidArgument);
  Failpoint* good = registry.Lookup("good");
  EXPECT_TRUE(good == nullptr || !good->ShouldFail());

  EXPECT_FALSE(registry.ArmFromSpec("=always").ok());
  EXPECT_FALSE(registry.ArmFromSpec("name=").ok());
  EXPECT_FALSE(registry.ArmFromSpec("name").ok());
  EXPECT_FALSE(registry.ArmFromSpec("n=nth").ok());
  EXPECT_FALSE(registry.ArmFromSpec("n=nth:0").ok());
  EXPECT_FALSE(registry.ArmFromSpec("n=nth:abc").ok());
  EXPECT_FALSE(registry.ArmFromSpec("n=prob").ok());
  EXPECT_FALSE(registry.ArmFromSpec("n=prob:1.5").ok());
  EXPECT_FALSE(registry.ArmFromSpec("n=prob:0.5:x").ok());
  EXPECT_FALSE(registry.ArmFromSpec("n=always:1").ok());
  EXPECT_FALSE(registry.ArmFromSpec("n=off:1").ok());
}

TEST(FailpointRegistryTest, EmptySpecIsNoOp) {
  FailpointRegistry registry;
  EXPECT_TRUE(registry.ArmFromSpec("").ok());
  EXPECT_TRUE(registry.ArmFromSpec(" ; , ").ok());
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(FailpointRegistryTest, SnapshotSortedAndTotalFires) {
  FailpointRegistry registry;
  ASSERT_TRUE(registry.ArmFromSpec("zz=always;aa=always").ok());
  registry.Get("zz").ShouldFail();
  registry.Get("zz").ShouldFail();
  registry.Get("aa").ShouldFail();
  const std::vector<FailpointRegistry::Entry> entries = registry.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "aa");
  EXPECT_EQ(entries[1].name, "zz");
  EXPECT_EQ(entries[0].state.fires, 1u);
  EXPECT_EQ(entries[1].state.fires, 2u);
  EXPECT_EQ(registry.TotalFires(), 3u);
}

TEST(FailpointRegistryTest, DisarmAllStopsEveryPoint) {
  FailpointRegistry registry;
  ASSERT_TRUE(registry.ArmFromSpec("x=always;y=nth:1").ok());
  registry.DisarmAll();
  EXPECT_FALSE(registry.Get("x").ShouldFail());
  EXPECT_FALSE(registry.Get("y").ShouldFail());
}

TEST(FailpointRegistryTest, ArmFromEnvReadsVariable) {
  ASSERT_EQ(setenv("FRESHSEL_FAILPOINTS", "env.point=nth:2", 1), 0);
  FailpointRegistry registry;
  ASSERT_TRUE(registry.ArmFromEnv().ok());
  EXPECT_FALSE(registry.Get("env.point").ShouldFail());
  EXPECT_TRUE(registry.Get("env.point").ShouldFail());
  ASSERT_EQ(unsetenv("FRESHSEL_FAILPOINTS"), 0);
  FailpointRegistry unset_registry;
  EXPECT_TRUE(unset_registry.ArmFromEnv().ok());
  EXPECT_TRUE(unset_registry.Snapshot().empty());
}

TEST(FailpointRegistryTest, TriggerModeNames) {
  EXPECT_EQ(TriggerModeName(TriggerMode::kDisarmed), "disarmed");
  EXPECT_EQ(TriggerModeName(TriggerMode::kAlways), "always");
  EXPECT_EQ(TriggerModeName(TriggerMode::kOneShot), "once");
  EXPECT_EQ(TriggerModeName(TriggerMode::kEveryNth), "nth");
  EXPECT_EQ(TriggerModeName(TriggerMode::kProbability), "prob");
}

#if FRESHSEL_FAULT_ACTIVE

Status GuardedOperation() {
  FRESHSEL_FAILPOINT_RETURN("t.macro.return",
                            Status::Unavailable("injected"));
  return Status::OK();
}

TEST(FailpointMacroTest, FailpointReturnInjectsWhenArmed) {
  EXPECT_TRUE(GuardedOperation().ok());  // Registers the point, disarmed.
  Failpoint* point = FailpointRegistry::Global().Lookup("t.macro.return");
  ASSERT_NE(point, nullptr);
  point->Arm(TriggerSpec::EveryNth(2));
  EXPECT_TRUE(GuardedOperation().ok());
  const Status injected = GuardedOperation();
  EXPECT_EQ(injected.code(), StatusCode::kUnavailable);
  point->Disarm();
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST(FailpointMacroTest, PlainFailpointCountsHits) {
  auto touch = []() { FRESHSEL_FAILPOINT("t.macro.touch"); };
  touch();
  Failpoint* point = FailpointRegistry::Global().Lookup("t.macro.touch");
  ASSERT_NE(point, nullptr);
  point->Arm(TriggerSpec::Always());
  touch();
  touch();
  EXPECT_EQ(point->hits(), 2u);
  EXPECT_EQ(point->fires(), 2u);
  point->Disarm();
}

#endif  // FRESHSEL_FAULT_ACTIVE

}  // namespace
}  // namespace freshsel::fault
