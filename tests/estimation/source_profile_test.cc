#include "estimation/source_profile.h"

#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>

#include "source/source_simulator.h"
#include "testing/test_world.h"
#include "world/world_simulator.h"

namespace freshsel::estimation {
namespace {

world::World MakeSimWorld(TimePoint horizon = 600, std::uint64_t seed = 61) {
  world::DataDomain domain =
      world::DataDomain::Create("loc", 2, "cat", 1).value();
  world::WorldSpec spec{std::move(domain), {}, horizon};
  spec.rates.push_back({2.0, 0.005, 0.01, 300});
  spec.rates.push_back({1.0, 0.005, 0.01, 200});
  Rng rng(seed);
  return world::SimulateWorld(spec, rng).value();
}

TEST(SourceProfileTest, LearnValidatesT0) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(w);
  EXPECT_FALSE(LearnSourceProfile(w, s, 0).ok());
  EXPECT_FALSE(LearnSourceProfile(w, s, 200).ok());
  EXPECT_TRUE(LearnSourceProfile(w, s, 100).ok());
}

TEST(SourceProfileTest, LearnsUpdateIntervalAndAnchor) {
  world::World w = MakeSimWorld();
  source::SourceSpec spec;
  spec.name = "weekly";
  spec.scope = {0, 1};
  spec.schedule = {7, 3};
  spec.insert_capture = {0.0, 2.0};
  spec.update_capture = {0.0, 2.0};
  spec.delete_capture = {0.0, 2.0};
  Rng rng(67);
  source::SourceHistory h = source::SimulateSource(w, spec, rng).value();
  SourceProfile profile = LearnSourceProfile(w, h, 400).value();
  // With many entities nearly every update day carries a capture.
  EXPECT_NEAR(profile.update_interval, 7.0, 0.5);
  // Anchor: the last update day <= 400 is 397 (3 + 56*7 = 395? 3+56*7=395,
  // +7=402 > 400). Whatever the exact day, it must be a schedule day.
  EXPECT_TRUE(spec.schedule.IsUpdateDay(profile.anchor));
  EXPECT_LE(profile.anchor, 400);
}

TEST(SourceProfileTest, ObservedScopeMatchesActual) {
  world::World w = MakeSimWorld();
  source::SourceSpec spec;
  spec.name = "loc0";
  spec.scope = {0};
  spec.schedule = {1, 0};
  spec.insert_capture = {0.0, 1.0};
  Rng rng(71);
  source::SourceHistory h = source::SimulateSource(w, spec, rng).value();
  SourceProfile profile = LearnSourceProfile(w, h, 400).value();
  EXPECT_EQ(profile.observed_scope, (std::vector<world::SubdomainId>{0}));
}

TEST(SourceProfileTest, InsertEffectivenessPlateauTracksMissProb) {
  world::World w = MakeSimWorld();
  source::SourceSpec spec;
  spec.name = "lossy";
  spec.scope = {0, 1};
  spec.schedule = {1, 0};
  spec.insert_capture = {0.3, 2.0};  // 30% missed forever.
  // Disable update captures: they would re-insert missed entities and lift
  // the plateau above the pure-insert capture probability.
  spec.update_capture = {1.0, 1.0};
  Rng rng(73);
  source::SourceHistory h = source::SimulateSource(w, spec, rng).value();
  SourceProfile profile = LearnSourceProfile(w, h, 500).value();
  // The KM plateau should approach the capture probability 0.7. Censoring
  // keeps it from reaching it exactly; evaluate well inside the window.
  EXPECT_NEAR(profile.g_insert.Evaluate(100.0), 0.7, 0.06);
}

TEST(SourceProfileTest, InsertEffectivenessTracksExponentialDelay) {
  world::World w = MakeSimWorld();
  source::SourceSpec spec;
  spec.name = "delayed";
  spec.scope = {0, 1};
  spec.schedule = {1, 0};
  spec.insert_capture = {0.0, 10.0};  // Mean 10-day delay.
  Rng rng(79);
  source::SourceHistory h = source::SimulateSource(w, spec, rng).value();
  SourceProfile profile = LearnSourceProfile(w, h, 500).value();
  // G(tau) ~ 1 - exp(-tau/10) (publication rounds delays up to the next
  // day, shifting the curve slightly left/up; allow slack).
  for (double tau : {5.0, 10.0, 20.0, 40.0}) {
    const double expected = 1.0 - std::exp(-tau / 10.0);
    EXPECT_NEAR(profile.g_insert.Evaluate(tau), expected, 0.08)
        << "tau=" << tau;
  }
}

TEST(SourceProfileTest, LearnerIsCensoredAtT0) {
  // Learn at a very early cutoff: barely any capture is observed yet, so
  // the learned G must be far below the long-run capture probability.
  world::World w = MakeSimWorld();
  source::SourceSpec spec;
  spec.name = "slow";
  spec.scope = {0, 1};
  spec.schedule = {1, 0};
  spec.insert_capture = {0.0, 50.0};  // Very slow captures.
  Rng rng(83);
  source::SourceHistory h = source::SimulateSource(w, spec, rng).value();
  SourceProfile early = LearnSourceProfile(w, h, 30).value();
  SourceProfile late = LearnSourceProfile(w, h, 550).value();
  EXPECT_LT(early.g_insert.FinalValue(), late.g_insert.Evaluate(200.0));
}

TEST(SourceProfileTest, SignaturesBuiltAtT0) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory s = testing::MakeTestSource(w);
  SourceProfile profile = LearnSourceProfile(w, s, 40).value();
  // Day 40: source holds entities 0 (v2 known at 35 == world v2), 1, 2.
  EXPECT_TRUE(profile.sig_t0.up.Test(0));
  EXPECT_TRUE(profile.sig_t0.up.Test(1));
  EXPECT_TRUE(profile.sig_t0.up.Test(2));
  EXPECT_EQ(profile.sig_t0.all.Count(), 3u);
}

TEST(SourceProfileEffectivenessTest, EquationEightSemantics) {
  SourceProfile profile;
  profile.update_interval = 10.0;
  profile.anchor = 100;
  profile.g_insert =
      stats::StepFunction::FromKnots({{0.0, 0.2}, {5.0, 0.6}, {15.0, 0.9}})
          .value();

  // t = 117 -> latest acquisition at 110. Event at 108: G(110-108)=G(2)=0.2.
  EXPECT_DOUBLE_EQ(profile.Effectiveness(profile.g_insert, 117.0, 108.0),
                   0.2);
  // Event at 104: G(6) = 0.6.
  EXPECT_DOUBLE_EQ(profile.Effectiveness(profile.g_insert, 117.0, 104.0),
                   0.6);
  // Event at 90: G(20) = 0.9.
  EXPECT_DOUBLE_EQ(profile.Effectiveness(profile.g_insert, 117.0, 90.0),
                   0.9);
  // Event after the latest acquisition (112 > 110): nothing published yet.
  EXPECT_DOUBLE_EQ(profile.Effectiveness(profile.g_insert, 117.0, 112.0),
                   0.0);
}

TEST(SourceProfileEffectivenessTest, DivisorCoarsensAcquisition) {
  SourceProfile profile;
  profile.update_interval = 10.0;
  profile.anchor = 100;
  profile.g_insert = stats::StepFunction::FromKnots({{0.0, 1.0}}).value();

  // Divisor 1: acquisition at 110 covers an event at 105 by t=117.
  EXPECT_DOUBLE_EQ(profile.Effectiveness(profile.g_insert, 117.0, 105.0, 1),
                   1.0);
  // Divisor 2: acquisitions at 100, 120 - nothing between 105 and 117.
  EXPECT_DOUBLE_EQ(profile.Effectiveness(profile.g_insert, 117.0, 105.0, 2),
                   0.0);
  // By t=121 the divisor-2 acquisition at 120 has happened.
  EXPECT_DOUBLE_EQ(profile.Effectiveness(profile.g_insert, 121.0, 105.0, 2),
                   1.0);
}

TEST(SourceProfileTest, LearnSourceProfilesBatch) {
  world::World w = testing::MakeTestWorld();
  std::vector<source::SourceHistory> histories;
  histories.push_back(testing::MakeTestSource(w));
  histories.push_back(testing::MakeTestSource(w, /*period=*/2));
  std::vector<SourceProfile> profiles =
      LearnSourceProfiles(w, histories, 60).value();
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].name, "test-source");
}

}  // namespace
}  // namespace freshsel::estimation
