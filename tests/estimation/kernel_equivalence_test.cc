// Kernel equivalence suite (DESIGN.md §13): the SIMD miss-product kernels
// behind QualityEstimator must not change what the estimator publishes.
//
//  * Exact path (fast_math_kernels off, the default): elementwise kernels
//    only - results are bit-identical across backends, across the cached /
//    uncached table paths, and across the full / incremental evaluation
//    paths (the latter two are also covered by eval_context_test).
//  * Fast-math path (opt-in): blocked reductions re-associate the
//    accumulation, so the contract is a bounded deviation from the exact
//    path, checked here across every Options mask including
//    capture-backlog.
//  * The kMissProductFloor underflow fix: ~200 high-effectiveness sources
//    drive the per-tau miss products far below the subnormal range; the
//    floor keeps the arithmetic normal while Push/Pop stays bit-exact and
//    incremental evaluations keep matching full recomputes.

#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/bit_vector.h"
#include "common/random.h"
#include "common/time_types.h"
#include "estimation/quality_estimator.h"
#include "estimation/source_profile.h"
#include "estimation/world_change_model.h"
#include "source/source_simulator.h"
#include "stats/step_function.h"
#include "world/world_simulator.h"

namespace freshsel::estimation {
namespace {

using SourceHandle = QualityEstimator::SourceHandle;

/// Fast-math re-associates sums of O(steps) unit-magnitude terms, so the
/// deviation is a few ulps of the summed magnitude; 1e-9 on [0, 1]
/// metrics leaves orders of magnitude of slack while still catching any
/// use of the wrong kernel or weight array.
constexpr double kFastMathTol = 1e-9;

void ExpectQualityWithin(const EstimatedQuality& a, const EstimatedQuality& b,
                         double tol, const std::string& what) {
  EXPECT_NEAR(a.coverage, b.coverage, tol) << what;
  EXPECT_NEAR(a.local_freshness, b.local_freshness, tol) << what;
  EXPECT_NEAR(a.global_freshness, b.global_freshness, tol) << what;
  EXPECT_NEAR(a.accuracy, b.accuracy, tol) << what;
  EXPECT_NEAR(a.expected_result, b.expected_result,
              tol * (1.0 + std::abs(b.expected_result)))
      << what;
  EXPECT_NEAR(a.expected_up, b.expected_up,
              tol * (1.0 + std::abs(b.expected_up)))
      << what;
  EXPECT_EQ(a.expected_world, b.expected_world) << what;
}

void ExpectQualityIdentical(const EstimatedQuality& a,
                            const EstimatedQuality& b,
                            const std::string& what) {
  EXPECT_EQ(a.coverage, b.coverage) << what;
  EXPECT_EQ(a.local_freshness, b.local_freshness) << what;
  EXPECT_EQ(a.global_freshness, b.global_freshness) << what;
  EXPECT_EQ(a.accuracy, b.accuracy) << what;
  EXPECT_EQ(a.expected_result, b.expected_result) << what;
  EXPECT_EQ(a.expected_up, b.expected_up) << what;
  EXPECT_EQ(a.expected_world, b.expected_world) << what;
}

/// The 2x2 simulated world of eval_context_test.cc; parameterized over
/// the full 4-bit Options mask so every model variant (including
/// capture-backlog) runs through the kernels.
class KernelEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr TimePoint kT0 = 300;
  static constexpr TimePoint kHorizon = 500;

  void SetUp() override {
    world::DataDomain domain =
        world::DataDomain::Create("loc", 2, "cat", 2).value();
    world::WorldSpec spec{std::move(domain), {}, kHorizon};
    spec.rates.push_back({1.5, 0.004, 0.008, 375});
    spec.rates.push_back({0.8, 0.006, 0.004, 133});
    spec.rates.push_back({1.0, 0.003, 0.010, 333});
    spec.rates.push_back({0.5, 0.005, 0.006, 100});
    Rng rng(97);
    world_ = std::make_unique<world::World>(
        world::SimulateWorld(spec, rng).value());

    std::vector<source::SourceSpec> specs;
    for (int i = 0; i < 6; ++i) {
      source::SourceSpec s;
      s.name = "s" + std::to_string(i);
      s.scope = i < 3 ? std::vector<world::SubdomainId>{0, 1, 2, 3}
                      : std::vector<world::SubdomainId>{
                            static_cast<world::SubdomainId>(i - 3)};
      s.schedule = {1 + i % 3, 0};
      s.insert_capture = {0.05 * i, 2.0 + 4.0 * i};
      s.update_capture = {0.05 * i, 3.0 + 4.0 * i};
      s.delete_capture = {0.05 * i, 4.0 + 4.0 * i};
      s.initial_awareness = 0.9 - 0.1 * i;
      specs.push_back(s);
    }
    const auto histories = source::SimulateSources(*world_, specs, rng).value();
    model_ = std::make_unique<WorldChangeModel>(
        WorldChangeModel::Learn(*world_, kT0).value());
    profiles_ = LearnSourceProfiles(*world_, histories, kT0).value();
  }

  static QualityEstimator::Options OptionsFromMask(int mask) {
    QualityEstimator::Options options;
    options.per_event_survival = (mask & 1) != 0;
    options.exponential_world_model = (mask & 2) != 0;
    options.model_capture_backlog = (mask & 4) != 0;
    options.model_ghost_result = (mask & 8) != 0;
    return options;
  }

  QualityEstimator MakeEstimator(QualityEstimator::Options options,
                                 TimePoints eval_times) {
    QualityEstimator est = QualityEstimator::Create(
                               *world_, *model_, {}, std::move(eval_times),
                               options)
                               .value();
    for (const SourceProfile& p : profiles_) {
      EXPECT_TRUE(est.AddSource(&p, 1).ok());
    }
    return est;
  }

  std::unique_ptr<world::World> world_;
  std::unique_ptr<WorldChangeModel> model_;
  std::vector<SourceProfile> profiles_;
};

TEST_P(KernelEquivalenceTest, FastMathFullPathWithinBoundOfExact) {
  QualityEstimator::Options exact_options = OptionsFromMask(GetParam());
  QualityEstimator::Options fast_options = exact_options;
  fast_options.fast_math_kernels = true;
  QualityEstimator exact =
      MakeEstimator(exact_options, {kT0 + 15, kT0 + 45, kT0 + 90});
  QualityEstimator fast =
      MakeEstimator(fast_options, {kT0 + 15, kT0 + 45, kT0 + 90});

  Rng rng(41);
  for (int round = 0; round < 30; ++round) {
    std::vector<SourceHandle> set;
    for (std::size_t s = 0; s < exact.source_count(); ++s) {
      if (rng.Bernoulli(0.5)) set.push_back(static_cast<SourceHandle>(s));
    }
    for (TimePoint t : exact.eval_times()) {
      ExpectQualityWithin(fast.Estimate(set, t), exact.Estimate(set, t),
                          kFastMathTol,
                          "mask " + std::to_string(GetParam()) + ", |S|=" +
                              std::to_string(set.size()) + ", t=" +
                              std::to_string(t));
    }
  }
}

TEST_P(KernelEquivalenceTest, FastMathDeltaPathWithinBoundOfExact) {
  QualityEstimator::Options exact_options = OptionsFromMask(GetParam());
  QualityEstimator::Options fast_options = exact_options;
  fast_options.fast_math_kernels = true;
  QualityEstimator exact =
      MakeEstimator(exact_options, {kT0 + 15, kT0 + 45});
  QualityEstimator fast = MakeEstimator(fast_options, {kT0 + 15, kT0 + 45});

  QualityEstimator::EvalContext exact_ctx = exact.MakeEvalContext();
  QualityEstimator::EvalContext fast_ctx = fast.MakeEvalContext();
  const std::size_t n = exact.source_count();
  for (std::size_t depth = 0; depth < n; ++depth) {
    for (std::size_t c = 0; c < n; ++c) {
      const SourceHandle cand = static_cast<SourceHandle>(c);
      for (TimePoint t : exact.eval_times()) {
        ExpectQualityWithin(fast_ctx.EstimateWith(cand, t),
                            exact_ctx.EstimateWith(cand, t), kFastMathTol,
                            "mask " + std::to_string(GetParam()) +
                                ", depth " + std::to_string(depth));
      }
    }
    exact_ctx.Push(static_cast<SourceHandle>(depth));
    fast_ctx.Push(static_cast<SourceHandle>(depth));
  }
}

TEST_P(KernelEquivalenceTest, ExactPathCachedAndUncachedBitIdentical) {
  // The same (set, t) evaluated through the memoized SoA tables and
  // through the uncached ad-hoc fold must agree bit for bit - including
  // the kMissProductFloor, which both paths apply identically. The
  // uncached estimator registers a different eval time so TimeIndexOf
  // misses and the ad-hoc branch runs.
  QualityEstimator::Options options = OptionsFromMask(GetParam());
  QualityEstimator cached =
      MakeEstimator(options, {kT0 + 15, kT0 + 45, kT0 + 90});
  QualityEstimator uncached = MakeEstimator(options, {kT0 + 33});

  Rng rng(59);
  for (int round = 0; round < 20; ++round) {
    std::vector<SourceHandle> set;
    for (std::size_t s = 0; s < cached.source_count(); ++s) {
      if (rng.Bernoulli(0.5)) set.push_back(static_cast<SourceHandle>(s));
    }
    for (TimePoint t : cached.eval_times()) {
      ExpectQualityIdentical(uncached.Estimate(set, t),
                             cached.Estimate(set, t),
                             "mask " + std::to_string(GetParam()) + ", t=" +
                                 std::to_string(t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOptionCombos, KernelEquivalenceTest,
                         ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// Underflow regression (the kMissProductFloor bugfix).

/// Builds a synthetic profile that captures `capture_prob` of every change
/// with daily acquisitions - the per-tau miss factor is (1 - capture_prob)
/// for every tau, so a stack of these drives running products toward
/// (1 - p)^n, far below the subnormal threshold for n ~ 200.
SourceProfile HighEffectivenessProfile(const world::World& world, int index,
                                       double capture_prob) {
  SourceProfile p;
  p.name = "h" + std::to_string(index);
  const std::size_t entities = world.entity_count();
  p.sig_t0.up = BitVector(entities);
  p.sig_t0.cov = BitVector(entities);
  p.sig_t0.all = BitVector(entities);
  // Sparse, index-dependent signatures so union counts keep moving as
  // sources are pushed.
  for (std::size_t id = static_cast<std::size_t>(index) % 7; id < entities;
       id += 7) {
    p.sig_t0.up.Set(id);
    p.sig_t0.cov.Set(id);
    p.sig_t0.all.Set(id);
  }
  p.update_interval = 1.0;
  p.anchor = 0;
  p.g_insert = stats::StepFunction::Constant(capture_prob);
  p.g_update = stats::StepFunction::Constant(capture_prob);
  p.g_delete = stats::StepFunction::Constant(capture_prob);
  return p;
}

class UnderflowRegressionTest : public ::testing::TestWithParam<bool> {
 protected:
  static constexpr TimePoint kT0 = 300;
  static constexpr int kSources = 200;

  void SetUp() override {
    world::DataDomain domain =
        world::DataDomain::Create("loc", 1, "cat", 1).value();
    world::WorldSpec spec{std::move(domain), {}, 400};
    spec.rates.push_back({1.2, 0.004, 0.008, 300});
    Rng rng(23);
    world_ = std::make_unique<world::World>(
        world::SimulateWorld(spec, rng).value());
    model_ = std::make_unique<WorldChangeModel>(
        WorldChangeModel::Learn(*world_, kT0).value());
    for (int i = 0; i < kSources; ++i) {
      profiles_.push_back(HighEffectivenessProfile(*world_, i, 0.99));
    }
  }

  std::unique_ptr<world::World> world_;
  std::unique_ptr<WorldChangeModel> model_;
  std::vector<SourceProfile> profiles_;
};

TEST_P(UnderflowRegressionTest, TwoHundredSourcesStayConsistent) {
  QualityEstimator::Options options;
  options.model_capture_backlog = GetParam();
  QualityEstimator est =
      QualityEstimator::Create(*world_, *model_, {}, {kT0 + 20, kT0 + 60},
                               options)
          .value();
  for (const SourceProfile& p : profiles_) {
    ASSERT_TRUE(est.AddSource(&p, 1).ok());
  }

  // (1 - 0.99)^200 = 1e-400: without the floor the running products
  // denormalize around depth ~150 and hit exactly zero soon after. The
  // floor keeps the arithmetic normal; the incremental path must keep
  // matching full recomputes the whole way down, and every published
  // metric must stay a finite probability (the DCHECKs inside
  // EvaluateFromProducts enforce the latter on every call).
  QualityEstimator::EvalContext ctx = est.MakeEvalContext();
  std::vector<SourceHandle> set;
  for (int i = 0; i < kSources; ++i) {
    const SourceHandle handle = static_cast<SourceHandle>(i);
    ctx.Push(handle);
    set.push_back(handle);
    if ((i + 1) % 25 == 0 || i + 1 == kSources) {
      for (TimePoint t : est.eval_times()) {
        const EstimatedQuality incremental = ctx.EstimateCurrent(t);
        const EstimatedQuality full = est.Estimate(set, t);
        ExpectQualityWithin(incremental, full, 1e-12,
                            "depth " + std::to_string(i + 1) + ", t=" +
                                std::to_string(t));
        EXPECT_TRUE(std::isfinite(incremental.expected_result));
        EXPECT_TRUE(std::isfinite(incremental.expected_up));
      }
    }
  }
}

TEST_P(UnderflowRegressionTest, PushPopBitExactAtFullDepth) {
  QualityEstimator::Options options;
  options.model_capture_backlog = GetParam();
  QualityEstimator est =
      QualityEstimator::Create(*world_, *model_, {}, {kT0 + 20, kT0 + 60},
                               options)
          .value();
  for (const SourceProfile& p : profiles_) {
    ASSERT_TRUE(est.AddSource(&p, 1).ok());
  }

  QualityEstimator::EvalContext ctx = est.MakeEvalContext();
  for (int i = 0; i + 1 < kSources; ++i) {
    ctx.Push(static_cast<SourceHandle>(i));
  }
  // At depth 199 every product sits at the floor; a further Push + Pop
  // must restore the state bit-exactly (checkpoint restore, not divide).
  std::vector<EstimatedQuality> before;
  std::vector<EstimatedQuality> after;
  ctx.EstimateAllTimes(before);
  ctx.Push(static_cast<SourceHandle>(kSources - 1));
  ctx.Pop();
  ctx.EstimateAllTimes(after);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    ExpectQualityIdentical(after[i], before[i],
                           "time index " + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(BacklogOnOff, UnderflowRegressionTest,
                         ::testing::Bool());

}  // namespace
}  // namespace freshsel::estimation
