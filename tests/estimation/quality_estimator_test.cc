#include "estimation/quality_estimator.h"

#include <cstdint>
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "metrics/quality.h"
#include "source/source_simulator.h"
#include "world/world_simulator.h"

namespace freshsel::estimation {
namespace {

/// A simulated 2x2 world with 6 heterogeneous sources, models learned at
/// t0 = 300, ground truth through day 500.
class EstimatorFixture : public ::testing::Test {
 protected:
  static constexpr TimePoint kT0 = 300;
  static constexpr TimePoint kHorizon = 500;

  void SetUp() override {
    world::DataDomain domain =
        world::DataDomain::Create("loc", 2, "cat", 2).value();
    world::WorldSpec spec{std::move(domain), {}, kHorizon};
    // Each subdomain is seeded at its stationary population
    // lambda / gamma_d, the regime the paper's Eq. 14 presumes.
    spec.rates.push_back({1.5, 0.004, 0.008, 375});
    spec.rates.push_back({0.8, 0.006, 0.004, 133});
    spec.rates.push_back({1.0, 0.003, 0.010, 333});
    spec.rates.push_back({0.5, 0.005, 0.006, 100});
    Rng rng(97);
    world_ = std::make_unique<world::World>(
        world::SimulateWorld(spec, rng).value());

    for (int i = 0; i < 6; ++i) {
      source::SourceSpec s;
      s.name = "s" + std::to_string(i);
      s.scope = i < 3 ? std::vector<world::SubdomainId>{0, 1, 2, 3}
                      : std::vector<world::SubdomainId>{
                            static_cast<world::SubdomainId>(i - 3)};
      s.schedule = {1 + i % 3, 0};
      s.insert_capture = {0.05 * i, 2.0 + 4.0 * i};
      s.update_capture = {0.05 * i, 3.0 + 4.0 * i};
      s.delete_capture = {0.05 * i, 4.0 + 4.0 * i};
      s.initial_awareness = 0.9 - 0.1 * i;
      specs_.push_back(s);
    }
    histories_ = source::SimulateSources(*world_, specs_, rng).value();
    model_ = std::make_unique<WorldChangeModel>(
        WorldChangeModel::Learn(*world_, kT0).value());
    profiles_ = LearnSourceProfiles(*world_, histories_, kT0).value();
  }

  QualityEstimator MakeEstimator(
      std::vector<world::SubdomainId> domain, TimePoints eval_times,
      QualityEstimator::Options options = {}) {
    QualityEstimator est =
        QualityEstimator::Create(*world_, *model_, std::move(domain),
                                 std::move(eval_times), options)
            .value();
    for (const SourceProfile& p : profiles_) {
      EXPECT_TRUE(est.AddSource(&p, 1).ok());
    }
    return est;
  }

  std::unique_ptr<world::World> world_;
  std::vector<source::SourceSpec> specs_;
  std::vector<source::SourceHistory> histories_;
  std::unique_ptr<WorldChangeModel> model_;
  std::vector<SourceProfile> profiles_;
};

TEST_F(EstimatorFixture, CreateValidates) {
  EXPECT_FALSE(QualityEstimator::Create(*world_, *model_, {99}, {}).ok());
  EXPECT_FALSE(
      QualityEstimator::Create(*world_, *model_, {}, {kT0 - 10}).ok());
  EXPECT_TRUE(QualityEstimator::Create(*world_, *model_, {}, {kT0 + 10})
                  .ok());
}

TEST_F(EstimatorFixture, CreateRejectsDuplicateEvalTimes) {
  // A repeated time would alias one lookup slot while EstimateAllTimes /
  // EstimateAverage weight it twice - InvalidArgument, not silent skew.
  auto dup =
      QualityEstimator::Create(*world_, *model_, {}, {kT0 + 10, kT0 + 10});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  // Non-adjacent duplicates are caught too (the check sorts first).
  auto spread = QualityEstimator::Create(*world_, *model_, {},
                                         {kT0 + 10, kT0 + 20, kT0 + 10});
  ASSERT_FALSE(spread.ok());
  EXPECT_EQ(spread.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EstimatorFixture, CreateRejectsEvalTimesBeyondHorizon) {
  // Each registered time materializes O(t - t0) tables; a bogus far-future
  // time means multi-GB allocations, so it is rejected up front.
  auto bogus = QualityEstimator::Create(*world_, *model_, {},
                                        {kT0 + kMaxEvalHorizonSteps + 1});
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(QualityEstimator::Create(*world_, *model_, {},
                                       {kT0 + kMaxEvalHorizonSteps})
                  .ok());
}

using EstimatorDeathTest = EstimatorFixture;

TEST_F(EstimatorDeathTest, EstimateBeforeT0Dies) {
  // The old behavior returned a silent all-zero quality for t < t0, which
  // made selections over garbage estimates look like valid selections.
  QualityEstimator est = MakeEstimator({}, {kT0 + 10});
  EXPECT_DEATH(est.Estimate({0}, kT0 - 1), "before t0");
}

TEST_F(EstimatorDeathTest, EstimateBeyondHorizonDies) {
  QualityEstimator est = MakeEstimator({}, {kT0 + 10});
  EXPECT_DEATH(est.Estimate({0}, kT0 + kMaxEvalHorizonSteps + 1),
               "beyond the supported horizon");
}

TEST_F(EstimatorFixture, AddSourceValidates) {
  QualityEstimator est = MakeEstimator({}, {kT0 + 10});
  EXPECT_FALSE(est.AddSource(nullptr, 1).ok());
  EXPECT_FALSE(est.AddSource(&profiles_[0], 0).ok());
  EXPECT_TRUE(est.AddSource(&profiles_[0], 3).ok());
  EXPECT_EQ(est.source_count(), profiles_.size() + 1);
}

TEST_F(EstimatorFixture, AtT0MatchesExactMetrics) {
  QualityEstimator est = MakeEstimator({}, {kT0});
  std::vector<const source::SourceHistory*> set_hist{&histories_[0],
                                                     &histories_[2]};
  metrics::QualityMetrics exact = metrics::MetricsFromCounts(
      metrics::ComputeCounts(*world_, set_hist, kT0));
  EstimatedQuality estimated = est.Estimate({0, 2}, kT0);
  EXPECT_NEAR(estimated.coverage, exact.coverage, 1e-9);
  EXPECT_NEAR(estimated.local_freshness, exact.local_freshness, 1e-9);
  EXPECT_NEAR(estimated.global_freshness, exact.global_freshness, 1e-9);
  EXPECT_NEAR(estimated.accuracy, exact.accuracy, 1e-9);
}

TEST_F(EstimatorFixture, EmptySetIsZeroQuality) {
  QualityEstimator est = MakeEstimator({}, {kT0 + 30});
  EstimatedQuality q = est.Estimate({}, kT0 + 30);
  EXPECT_DOUBLE_EQ(q.coverage, 0.0);
  EXPECT_DOUBLE_EQ(q.global_freshness, 0.0);
  EXPECT_GT(q.expected_world, 0.0);
}

TEST_F(EstimatorFixture, MetricsStayInUnitInterval) {
  QualityEstimator est = MakeEstimator({}, {kT0 + 60});
  Rng rng(5);
  for (int round = 0; round < 30; ++round) {
    std::vector<QualityEstimator::SourceHandle> set;
    for (std::size_t s = 0; s < profiles_.size(); ++s) {
      if (rng.Bernoulli(0.5)) {
        set.push_back(static_cast<QualityEstimator::SourceHandle>(s));
      }
    }
    EstimatedQuality q = est.Estimate(set, kT0 + 60);
    for (double v : {q.coverage, q.local_freshness, q.global_freshness,
                     q.accuracy}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST_F(EstimatorFixture, CoverageIsMonotone) {
  QualityEstimator est = MakeEstimator({}, {kT0 + 90});
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    // Random chain: add sources one at a time in random order.
    std::vector<QualityEstimator::SourceHandle> order;
    for (std::size_t s = 0; s < profiles_.size(); ++s) {
      order.push_back(static_cast<QualityEstimator::SourceHandle>(s));
    }
    rng.Shuffle(order);
    std::vector<QualityEstimator::SourceHandle> set;
    double prev_cov = 0.0;
    double prev_gf = 0.0;
    for (QualityEstimator::SourceHandle h : order) {
      set.push_back(h);
      std::sort(set.begin(), set.end());
      EstimatedQuality q = est.Estimate(set, kT0 + 90);
      EXPECT_GE(q.coverage, prev_cov - 1e-9);
      EXPECT_GE(q.global_freshness, prev_gf - 1e-9);
      prev_cov = q.coverage;
      prev_gf = q.global_freshness;
    }
  }
}

TEST_F(EstimatorFixture, CoverageAndGlobalFreshnessAreSubmodular) {
  QualityEstimator est = MakeEstimator({}, {kT0 + 60});
  const std::size_t n = profiles_.size();
  Rng rng(11);
  int checked = 0;
  for (int round = 0; round < 200; ++round) {
    // Random A subset of B, random s outside B.
    std::vector<QualityEstimator::SourceHandle> a;
    std::vector<QualityEstimator::SourceHandle> b;
    std::vector<QualityEstimator::SourceHandle> outside;
    for (std::size_t e = 0; e < n; ++e) {
      const auto h = static_cast<QualityEstimator::SourceHandle>(e);
      const double roll = rng.NextDouble();
      if (roll < 0.3) {
        a.push_back(h);
        b.push_back(h);
      } else if (roll < 0.6) {
        b.push_back(h);
      } else {
        outside.push_back(h);
      }
    }
    if (outside.empty()) continue;
    const auto s = outside[rng.NextBounded(outside.size())];
    auto with = [](std::vector<QualityEstimator::SourceHandle> set,
                   QualityEstimator::SourceHandle e) {
      set.insert(std::upper_bound(set.begin(), set.end(), e), e);
      return set;
    };
    const TimePoint t = kT0 + 60;
    EstimatedQuality qa = est.Estimate(a, t);
    EstimatedQuality qas = est.Estimate(with(a, s), t);
    EstimatedQuality qb = est.Estimate(b, t);
    EstimatedQuality qbs = est.Estimate(with(b, s), t);
    // Diminishing returns (Theorems 1 and 2).
    EXPECT_GE(qas.coverage - qa.coverage,
              qbs.coverage - qb.coverage - 1e-9);
    EXPECT_GE(qas.global_freshness - qa.global_freshness,
              qbs.global_freshness - qb.global_freshness - 1e-9);
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

TEST_F(EstimatorFixture, LowerAcquisitionFrequencyNeverHelpsCoverage) {
  QualityEstimator est = MakeEstimator({}, {kT0 + 45});
  // Register source 0 again at divisors 2, 4, 8.
  std::vector<QualityEstimator::SourceHandle> handles{0};
  for (std::int64_t d : {2, 4, 8}) {
    handles.push_back(est.AddSource(&profiles_[0], d).value());
  }
  double prev = 2.0;
  for (QualityEstimator::SourceHandle h : handles) {
    const double cov = est.Estimate({h}, kT0 + 45).coverage;
    EXPECT_LE(cov, prev + 1e-9);
    prev = cov;
  }
}

TEST_F(EstimatorFixture, PredictsFutureQualityOfSingleSource) {
  // The headline Figure 11 property: predicted quality of a large source
  // tracks the simulated ground truth at future time points.
  QualityEstimator est = MakeEstimator({}, MakeTimePoints(kT0 + 30, 5, 30));
  for (int i = 0; i < 2; ++i) {
    const auto h = static_cast<QualityEstimator::SourceHandle>(i);
    for (TimePoint t : est.eval_times()) {
      EstimatedQuality predicted = est.Estimate({h}, t);
      metrics::QualityMetrics actual = metrics::MetricsFromCounts(
          metrics::ComputeCounts(*world_, {&histories_[i]}, t));
      EXPECT_NEAR(predicted.coverage, actual.coverage, 0.08)
          << "source " << i << " t=" << t;
      EXPECT_NEAR(predicted.local_freshness, actual.local_freshness, 0.12)
          << "source " << i << " t=" << t;
      EXPECT_NEAR(predicted.accuracy, actual.accuracy, 0.12)
          << "source " << i << " t=" << t;
    }
  }
}

TEST_F(EstimatorFixture, DomainRestrictionMatchesMaskedExact) {
  QualityEstimator est = MakeEstimator({0, 1}, {kT0});
  BitVector mask = integration::DomainMask(*world_, {0, 1});
  metrics::QualityCounts counts = metrics::ComputeCounts(
      *world_, {&histories_[1]}, kT0, &mask, world_->CountAtIn({0, 1}, kT0));
  metrics::QualityMetrics exact = metrics::MetricsFromCounts(counts);
  EstimatedQuality q = est.Estimate({1}, kT0);
  EXPECT_NEAR(q.coverage, exact.coverage, 1e-9);
  EXPECT_NEAR(q.local_freshness, exact.local_freshness, 1e-9);
}

TEST_F(EstimatorFixture, CacheDoesNotChangeResults) {
  QualityEstimator::Options cached;
  cached.cache_effectiveness = true;
  QualityEstimator::Options uncached;
  uncached.cache_effectiveness = false;
  QualityEstimator a = MakeEstimator({}, {kT0 + 40, kT0 + 80}, cached);
  QualityEstimator b = MakeEstimator({}, {kT0 + 40, kT0 + 80}, uncached);
  for (TimePoint t : {kT0 + 40, kT0 + 80}) {
    for (std::vector<QualityEstimator::SourceHandle> set :
         {std::vector<QualityEstimator::SourceHandle>{0},
          std::vector<QualityEstimator::SourceHandle>{1, 3, 5},
          std::vector<QualityEstimator::SourceHandle>{0, 1, 2, 3, 4, 5}}) {
      EstimatedQuality qa = a.Estimate(set, t);
      EstimatedQuality qb = b.Estimate(set, t);
      EXPECT_DOUBLE_EQ(qa.coverage, qb.coverage);
      EXPECT_DOUBLE_EQ(qa.local_freshness, qb.local_freshness);
      EXPECT_DOUBLE_EQ(qa.accuracy, qb.accuracy);
    }
  }
}

TEST_F(EstimatorFixture, PaperSurvivalVariantStaysValid) {
  QualityEstimator::Options paper;
  paper.per_event_survival = false;
  QualityEstimator est = MakeEstimator({}, {kT0 + 60}, paper);
  EstimatedQuality q = est.Estimate({0, 1, 2}, kT0 + 60);
  EXPECT_GE(q.local_freshness, 0.0);
  EXPECT_LE(q.local_freshness, 1.0);
  EXPECT_GE(q.coverage, 0.0);
  EXPECT_LE(q.coverage, 1.0);
}

TEST_F(EstimatorFixture, CaptureBacklogNeverReducesCoverage) {
  QualityEstimator::Options with_backlog;
  with_backlog.model_capture_backlog = true;
  QualityEstimator plain = MakeEstimator({}, {kT0 + 45});
  QualityEstimator extended = MakeEstimator({}, {kT0 + 45}, with_backlog);
  for (std::vector<QualityEstimator::SourceHandle> set :
       {std::vector<QualityEstimator::SourceHandle>{0},
        std::vector<QualityEstimator::SourceHandle>{2, 4},
        std::vector<QualityEstimator::SourceHandle>{0, 1, 2, 3, 4, 5}}) {
    const double base = plain.Estimate(set, kT0 + 45).coverage;
    const double backlog = extended.Estimate(set, kT0 + 45).coverage;
    EXPECT_GE(backlog, base - 1e-12);
  }
  // Empty set: no backlog capture possible.
  EXPECT_DOUBLE_EQ(extended.Estimate({}, kT0 + 45).coverage, 0.0);
}

TEST_F(EstimatorFixture, GhostResultNeverShrinksResultSize) {
  QualityEstimator::Options with_ghosts;
  with_ghosts.model_ghost_result = true;
  QualityEstimator plain = MakeEstimator({}, {kT0 + 90});
  QualityEstimator extended = MakeEstimator({}, {kT0 + 90}, with_ghosts);
  const std::vector<QualityEstimator::SourceHandle> set{0, 1, 2};
  EXPECT_GE(extended.Estimate(set, kT0 + 90).expected_result,
            plain.Estimate(set, kT0 + 90).expected_result - 1e-9);
}

TEST_F(EstimatorFixture, ExponentialWorldModelConvergesToStationary) {
  QualityEstimator::Options exponential;
  exponential.exponential_world_model = true;
  QualityEstimator est = MakeEstimator({}, {kT0 + 60}, exponential);
  // The fixture world is seeded at its stationary population, so both
  // models should predict roughly the t0 count; the exponential model must
  // stay bounded even far in the future.
  const double near = est.Estimate({0}, kT0 + 60).expected_world;
  const double far = est.Estimate({0}, kT0 + 20000).expected_world;
  EXPECT_NEAR(near / static_cast<double>(est.domain_count_t0()), 1.0, 0.1);
  EXPECT_NEAR(far / near, 1.0, 0.2);  // Converged, not diverging linearly.
}

TEST_F(EstimatorFixture, EstimateAverageAveragesOverEvalTimes) {
  QualityEstimator est = MakeEstimator({}, {kT0 + 30, kT0 + 60});
  EstimatedQuality q1 = est.Estimate({0, 1}, kT0 + 30);
  EstimatedQuality q2 = est.Estimate({0, 1}, kT0 + 60);
  EstimatedQuality avg = est.EstimateAverage({0, 1});
  EXPECT_NEAR(avg.coverage, (q1.coverage + q2.coverage) / 2.0, 1e-12);
  EXPECT_NEAR(avg.accuracy, (q1.accuracy + q2.accuracy) / 2.0, 1e-12);
}

TEST_F(EstimatorFixture, UncachedEvalTimeStillWorks) {
  QualityEstimator est = MakeEstimator({}, {kT0 + 30});
  // Estimate at a time not in eval_times: computed ad hoc.
  EstimatedQuality q = est.Estimate({0, 1}, kT0 + 77);
  EXPECT_GT(q.coverage, 0.0);
  EXPECT_LE(q.coverage, 1.0);
}

}  // namespace
}  // namespace freshsel::estimation
