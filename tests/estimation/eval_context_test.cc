// EvalContext equivalence suite: the incremental delta-evaluation path
// (Push / Pop / EstimateWith / EstimateAllTimes) is a pure acceleration of
// `Estimate` - the values it returns must agree with fresh full
// evaluations to ulp precision, across every Options flag combination,
// and Pop must restore the pre-Push state bit-exactly.

#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/time_types.h"
#include "estimation/quality_estimator.h"
#include "estimation/source_profile.h"
#include "estimation/world_change_model.h"
#include "source/source_simulator.h"
#include "world/world_simulator.h"

namespace freshsel::estimation {
namespace {

using SourceHandle = QualityEstimator::SourceHandle;

/// Incremental products append the candidate's factor at the end rather
/// than at its sorted position, so delta evaluations are ulp-equivalent,
/// not bit-identical; 1e-12 relative is far above accumulated ulp noise
/// and far below any quantity the selection layer distinguishes.
constexpr double kTol = 1e-12;

void ExpectQualityNear(const EstimatedQuality& a, const EstimatedQuality& b,
                       const std::string& what) {
  EXPECT_NEAR(a.coverage, b.coverage, kTol) << what;
  EXPECT_NEAR(a.local_freshness, b.local_freshness, kTol) << what;
  EXPECT_NEAR(a.global_freshness, b.global_freshness, kTol) << what;
  EXPECT_NEAR(a.accuracy, b.accuracy, kTol) << what;
  EXPECT_NEAR(a.expected_result, b.expected_result,
              kTol * (1.0 + std::abs(b.expected_result)))
      << what;
  EXPECT_NEAR(a.expected_up, b.expected_up,
              kTol * (1.0 + std::abs(b.expected_up)))
      << what;
  EXPECT_EQ(a.expected_world, b.expected_world) << what;
}

void ExpectQualityIdentical(const EstimatedQuality& a,
                            const EstimatedQuality& b,
                            const std::string& what) {
  EXPECT_EQ(a.coverage, b.coverage) << what;
  EXPECT_EQ(a.local_freshness, b.local_freshness) << what;
  EXPECT_EQ(a.global_freshness, b.global_freshness) << what;
  EXPECT_EQ(a.accuracy, b.accuracy) << what;
  EXPECT_EQ(a.expected_result, b.expected_result) << what;
  EXPECT_EQ(a.expected_up, b.expected_up) << what;
  EXPECT_EQ(a.expected_world, b.expected_world) << what;
}

/// The 2x2 simulated world of quality_estimator_test.cc with 6
/// heterogeneous sources; fixtures parameterized by the Options flag mask
/// build estimators over three future eval times.
class EvalContextTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr TimePoint kT0 = 300;
  static constexpr TimePoint kHorizon = 500;

  void SetUp() override {
    world::DataDomain domain =
        world::DataDomain::Create("loc", 2, "cat", 2).value();
    world::WorldSpec spec{std::move(domain), {}, kHorizon};
    spec.rates.push_back({1.5, 0.004, 0.008, 375});
    spec.rates.push_back({0.8, 0.006, 0.004, 133});
    spec.rates.push_back({1.0, 0.003, 0.010, 333});
    spec.rates.push_back({0.5, 0.005, 0.006, 100});
    Rng rng(97);
    world_ = std::make_unique<world::World>(
        world::SimulateWorld(spec, rng).value());

    for (int i = 0; i < 6; ++i) {
      source::SourceSpec s;
      s.name = "s" + std::to_string(i);
      s.scope = i < 3 ? std::vector<world::SubdomainId>{0, 1, 2, 3}
                      : std::vector<world::SubdomainId>{
                            static_cast<world::SubdomainId>(i - 3)};
      s.schedule = {1 + i % 3, 0};
      s.insert_capture = {0.05 * i, 2.0 + 4.0 * i};
      s.update_capture = {0.05 * i, 3.0 + 4.0 * i};
      s.delete_capture = {0.05 * i, 4.0 + 4.0 * i};
      s.initial_awareness = 0.9 - 0.1 * i;
      specs_.push_back(s);
    }
    histories_ = source::SimulateSources(*world_, specs_, rng).value();
    model_ = std::make_unique<WorldChangeModel>(
        WorldChangeModel::Learn(*world_, kT0).value());
    profiles_ = LearnSourceProfiles(*world_, histories_, kT0).value();
  }

  /// Options decoded from the 4-bit flag mask `GetParam()`.
  static QualityEstimator::Options OptionsFromMask(int mask) {
    QualityEstimator::Options options;
    options.per_event_survival = (mask & 1) != 0;
    options.exponential_world_model = (mask & 2) != 0;
    options.model_capture_backlog = (mask & 4) != 0;
    options.model_ghost_result = (mask & 8) != 0;
    return options;
  }

  QualityEstimator MakeEstimator(QualityEstimator::Options options) {
    QualityEstimator est =
        QualityEstimator::Create(*world_, *model_, {},
                                 {kT0 + 15, kT0 + 45, kT0 + 90}, options)
            .value();
    for (const SourceProfile& p : profiles_) {
      EXPECT_TRUE(est.AddSource(&p, 1).ok());
    }
    return est;
  }

  std::unique_ptr<world::World> world_;
  std::vector<source::SourceSpec> specs_;
  std::vector<source::SourceHistory> histories_;
  std::unique_ptr<WorldChangeModel> model_;
  std::vector<SourceProfile> profiles_;
};

TEST_P(EvalContextTest, EstimateWithMatchesFreshEstimate) {
  QualityEstimator est = MakeEstimator(OptionsFromMask(GetParam()));
  const std::size_t n = est.source_count();
  for (std::uint64_t seed : {5u, 19u, 77u}) {
    Rng rng(seed);
    QualityEstimator::EvalContext ctx = est.MakeEvalContext();
    std::vector<SourceHandle> set;
    // Grow a random chain, checking every outside candidate at each size.
    for (std::size_t round = 0; round <= n; ++round) {
      for (TimePoint t : est.eval_times()) {
        ExpectQualityNear(
            ctx.EstimateCurrent(t), est.Estimate(set, t),
            "current, mask " + std::to_string(GetParam()) + ", |S|=" +
                std::to_string(set.size()) + ", t=" + std::to_string(t));
        for (std::size_t c = 0; c < n; ++c) {
          const SourceHandle candidate = static_cast<SourceHandle>(c);
          bool in_set = false;
          for (SourceHandle h : set) in_set |= (h == candidate);
          if (in_set) continue;
          std::vector<SourceHandle> with = set;
          with.push_back(candidate);
          ExpectQualityNear(
              ctx.EstimateWith(candidate, t), est.Estimate(with, t),
              "with " + std::to_string(c) + ", mask " +
                  std::to_string(GetParam()) + ", |S|=" +
                  std::to_string(set.size()) + ", t=" + std::to_string(t));
        }
      }
      if (round == n) break;
      SourceHandle next;
      do {
        next = static_cast<SourceHandle>(rng.NextBounded(n));
      } while ([&] {
        for (SourceHandle h : set) {
          if (h == next) return true;
        }
        return false;
      }());
      set.push_back(next);
      ctx.Push(next);
    }
  }
}

TEST_P(EvalContextTest, PushPopFuzzMatchesFreshEstimate) {
  QualityEstimator est = MakeEstimator(OptionsFromMask(GetParam()));
  const std::size_t n = est.source_count();
  Rng rng(1234 + static_cast<std::uint64_t>(GetParam()));
  QualityEstimator::EvalContext ctx = est.MakeEvalContext();
  std::vector<SourceHandle> shadow;
  std::vector<EstimatedQuality> batched;
  for (int step = 0; step < 200; ++step) {
    const double u = rng.UniformDouble(0.0, 1.0);
    if (shadow.empty() || (u < 0.55 && shadow.size() < n)) {
      SourceHandle next;
      do {
        next = static_cast<SourceHandle>(rng.NextBounded(n));
      } while ([&] {
        for (SourceHandle h : shadow) {
          if (h == next) return true;
        }
        return false;
      }());
      ctx.Push(next);
      shadow.push_back(next);
    } else if (u < 0.9) {
      ctx.Pop();
      shadow.pop_back();
    } else {
      ctx.Clear();
      shadow.clear();
    }
    ASSERT_EQ(ctx.pushed(), shadow) << "step " << step;
    // Spot-check one eval time per step, the full batch every 16 steps.
    const TimePoint t =
        est.eval_times()[rng.NextBounded(est.eval_times().size())];
    ExpectQualityNear(ctx.EstimateCurrent(t), est.Estimate(shadow, t),
                      "fuzz step " + std::to_string(step) + ", mask " +
                          std::to_string(GetParam()));
    if (step % 16 == 0) {
      ctx.EstimateAllTimes(batched);
      ASSERT_EQ(batched.size(), est.eval_times().size());
      for (std::size_t i = 0; i < batched.size(); ++i) {
        ExpectQualityNear(
            batched[i], est.Estimate(shadow, est.eval_times()[i]),
            "fuzz batched step " + std::to_string(step));
      }
    }
  }
}

TEST_P(EvalContextTest, PopRestoresBitExactly) {
  QualityEstimator est = MakeEstimator(OptionsFromMask(GetParam()));
  const std::size_t n = est.source_count();
  QualityEstimator::EvalContext ctx = est.MakeEvalContext();
  std::vector<EstimatedQuality> before;
  std::vector<EstimatedQuality> after;
  for (std::size_t depth = 0; depth < n; ++depth) {
    ctx.EstimateAllTimes(before);
    // Push a source whose near-zero miss products would amplify rounding
    // error under divide-back-out; checkpoint restore must be exact.
    const SourceHandle pushed = static_cast<SourceHandle>(depth);
    ctx.Push(pushed);
    ctx.Pop();
    ctx.EstimateAllTimes(after);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      ExpectQualityIdentical(after[i], before[i],
                             "pop at depth " + std::to_string(depth) +
                                 ", mask " + std::to_string(GetParam()));
    }
    ctx.Push(pushed);
  }
}

TEST_P(EvalContextTest, BatchedEstimateAllTimesIsBitIdentical) {
  QualityEstimator est = MakeEstimator(OptionsFromMask(GetParam()));
  Rng rng(31);
  std::vector<EstimatedQuality> batched;
  for (int round = 0; round < 20; ++round) {
    std::vector<SourceHandle> set;
    for (std::size_t s = 0; s < est.source_count(); ++s) {
      if (rng.Bernoulli(0.5)) set.push_back(static_cast<SourceHandle>(s));
    }
    est.EstimateAllTimes(set, batched);
    ASSERT_EQ(batched.size(), est.eval_times().size());
    for (std::size_t i = 0; i < batched.size(); ++i) {
      ExpectQualityIdentical(
          batched[i], est.Estimate(set, est.eval_times()[i]),
          "batched round " + std::to_string(round) + ", mask " +
              std::to_string(GetParam()));
    }
  }
}

TEST_P(EvalContextTest, SingletonDeltaFromEmptySetIsBitIdentical) {
  // Multiplying an all-ones product by one factor is exact, so singleton
  // delta evaluations agree with plain estimates bit for bit - the
  // property BudgetedGreedy's phase-2 singleton scan relies on.
  QualityEstimator est = MakeEstimator(OptionsFromMask(GetParam()));
  QualityEstimator::EvalContext ctx = est.MakeEvalContext();
  for (std::size_t s = 0; s < est.source_count(); ++s) {
    const SourceHandle handle = static_cast<SourceHandle>(s);
    for (TimePoint t : est.eval_times()) {
      ExpectQualityIdentical(ctx.EstimateWith(handle, t),
                             est.Estimate({handle}, t),
                             "singleton " + std::to_string(s) + ", mask " +
                                 std::to_string(GetParam()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOptionCombos, EvalContextTest,
                         ::testing::Range(0, 16));

TEST(EvalContextSupportTest, RequiresCachingAndEvalTimes) {
  world::DataDomain domain =
      world::DataDomain::Create("loc", 1, "cat", 1).value();
  world::WorldSpec spec{std::move(domain), {}, 400};
  spec.rates.push_back({1.0, 0.004, 0.008, 250});
  Rng rng(11);
  world::World world = world::SimulateWorld(spec, rng).value();
  WorldChangeModel model = WorldChangeModel::Learn(world, 300).value();

  QualityEstimator::Options no_cache;
  no_cache.cache_effectiveness = false;
  EXPECT_FALSE(QualityEstimator::Create(world, model, {}, {310}, no_cache)
                   .value()
                   .SupportsIncremental());
  EXPECT_FALSE(QualityEstimator::Create(world, model, {}, {})
                   .value()
                   .SupportsIncremental());
  EXPECT_TRUE(QualityEstimator::Create(world, model, {}, {310})
                  .value()
                  .SupportsIncremental());
}

}  // namespace
}  // namespace freshsel::estimation
