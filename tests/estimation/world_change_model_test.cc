#include "estimation/world_change_model.h"

#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>

#include "testing/test_world.h"
#include "world/world_simulator.h"

namespace freshsel::estimation {
namespace {

TEST(WorldChangeModelTest, LearnValidatesT0) {
  world::World w = testing::MakeTestWorld();
  EXPECT_FALSE(WorldChangeModel::Learn(w, 0).ok());
  EXPECT_FALSE(WorldChangeModel::Learn(w, -5).ok());
  EXPECT_FALSE(WorldChangeModel::Learn(w, 101).ok());
  EXPECT_TRUE(WorldChangeModel::Learn(w, 100).ok());
}

TEST(WorldChangeModelTest, HandBuiltWorldRates) {
  world::World w = testing::MakeTestWorld();
  WorldChangeModel model = WorldChangeModel::Learn(w, 100).value();
  // Subdomain 0 (entities 0, 1, 5): appearances in (0,100] = 1 (entity 5 at
  // day 60); disappearances = 1 (entity 0 at 50); updates = 10,30,20,70 = 4.
  const SubdomainChangeModel& m0 = model.subdomain(0);
  EXPECT_DOUBLE_EQ(m0.lambda_insert, 1.0 / 100.0);
  EXPECT_DOUBLE_EQ(m0.lambda_disappear, 1.0 / 100.0);
  EXPECT_DOUBLE_EQ(m0.lambda_update, 4.0 / 100.0);
  // Lifespans: e0 observed 50; e1 censored 100; e5 censored 40.
  // gamma_d = 1 / 190.
  EXPECT_NEAR(m0.gamma_disappear, 1.0 / 190.0, 1e-12);
  // Entities 1 and 5 alive at 100; entity 0 died -> count 2.
  EXPECT_EQ(m0.count_at_t0, 2);
}

TEST(WorldChangeModelTest, NoDeathsGivesZeroGamma) {
  world::World w = testing::MakeTestWorld();
  WorldChangeModel model = WorldChangeModel::Learn(w, 100).value();
  // Subdomain 2 holds entity 3 only (never dies).
  EXPECT_DOUBLE_EQ(model.subdomain(2).gamma_disappear, 0.0);
  EXPECT_DOUBLE_EQ(model.subdomain(2).lambda_disappear, 0.0);
}

TEST(WorldChangeModelTest, LearnerIgnoresPostT0Events) {
  world::World w = testing::MakeTestWorld();
  // t0 = 40: entity 0's death (50), entity 3's update (60), entity 5's
  // birth (60) are all in the future and must not leak into the model.
  WorldChangeModel model = WorldChangeModel::Learn(w, 40).value();
  const SubdomainChangeModel& m0 = model.subdomain(0);
  EXPECT_DOUBLE_EQ(m0.lambda_insert, 0.0);     // Entity 5 not seen.
  EXPECT_DOUBLE_EQ(m0.lambda_disappear, 0.0);  // Entity 0 death not seen.
  EXPECT_DOUBLE_EQ(m0.gamma_disappear, 0.0);
  // Updates seen by day 40 in sub 0: 10, 30 (e0), 20 (e1) = 3.
  EXPECT_DOUBLE_EQ(m0.lambda_update, 3.0 / 40.0);
  EXPECT_EQ(m0.count_at_t0, 2);  // Entities 0 and 1.
}

struct RateParams {
  double lambda_insert;
  double gamma_d;
  double gamma_u;
};

class RateRecoveryTest : public ::testing::TestWithParam<RateParams> {};

TEST_P(RateRecoveryTest, RecoversSimulatedRates) {
  const RateParams p = GetParam();
  world::DataDomain domain =
      world::DataDomain::Create("a", 1, "b", 1).value();
  world::WorldSpec spec{std::move(domain), {}, 600};
  spec.rates.push_back({p.lambda_insert, p.gamma_d, p.gamma_u, 2000});
  Rng rng(43);
  world::World w = world::SimulateWorld(spec, rng).value();
  WorldChangeModel model = WorldChangeModel::Learn(w, 400).value();
  const SubdomainChangeModel& m = model.subdomain(0);

  EXPECT_NEAR(m.lambda_insert, p.lambda_insert,
              0.15 * p.lambda_insert + 0.02);
  if (p.gamma_d > 0.0) {
    EXPECT_NEAR(m.gamma_disappear, p.gamma_d, 0.15 * p.gamma_d);
  } else {
    EXPECT_DOUBLE_EQ(m.gamma_disappear, 0.0);
  }
  if (p.gamma_u > 0.0) {
    EXPECT_NEAR(m.gamma_update, p.gamma_u, 0.15 * p.gamma_u);
  }
  EXPECT_EQ(m.count_at_t0, w.TotalCountAt(400));
}

INSTANTIATE_TEST_SUITE_P(
    Rates, RateRecoveryTest,
    ::testing::Values(RateParams{2.0, 0.01, 0.02},
                      RateParams{5.0, 0.002, 0.005},
                      RateParams{0.5, 0.02, 0.0},
                      RateParams{1.0, 0.0, 0.01},
                      RateParams{10.0, 0.005, 0.05}));

TEST(WorldChangeModelTest, AggregatePoolsSubdomains) {
  world::World w = testing::MakeTestWorld();
  WorldChangeModel model = WorldChangeModel::Learn(w, 100).value();
  SubdomainChangeModel agg = model.Aggregate({0, 1, 2, 3});
  double lambda_sum = 0.0;
  std::int64_t count_sum = 0;
  for (world::SubdomainId sub = 0; sub < 4; ++sub) {
    lambda_sum += model.subdomain(sub).lambda_insert;
    count_sum += model.subdomain(sub).count_at_t0;
  }
  EXPECT_DOUBLE_EQ(agg.lambda_insert, lambda_sum);
  EXPECT_EQ(agg.count_at_t0, count_sum);
}

TEST(WorldChangeModelTest, PredictCountLinearGrowth) {
  // Pure growth world: no deaths. E[count at t] = count_t0 + lambda (t-t0).
  world::DataDomain domain =
      world::DataDomain::Create("a", 1, "b", 1).value();
  world::WorldSpec spec{std::move(domain), {}, 500};
  spec.rates.push_back({3.0, 0.0, 0.0, 100});
  Rng rng(47);
  world::World w = world::SimulateWorld(spec, rng).value();
  WorldChangeModel model = WorldChangeModel::Learn(w, 300).value();
  const double predicted = model.PredictCount({0}, 500);
  const double actual = static_cast<double>(w.TotalCountAt(500));
  EXPECT_NEAR(predicted / actual, 1.0, 0.05);
}

TEST(WorldChangeModelTest, PredictCountStationaryWorld) {
  // Birth-death balance: prediction should stay near the t0 population.
  world::DataDomain domain =
      world::DataDomain::Create("a", 1, "b", 1).value();
  world::WorldSpec spec{std::move(domain), {}, 800};
  // Stationary population ~ lambda/gamma = 4 / 0.004 = 1000.
  spec.rates.push_back({4.0, 0.004, 0.0, 1000});
  Rng rng(53);
  world::World w = world::SimulateWorld(spec, rng).value();
  WorldChangeModel model = WorldChangeModel::Learn(w, 500).value();
  const double predicted = model.PredictCount({0}, 700);
  const double actual = static_cast<double>(w.TotalCountAt(700));
  EXPECT_NEAR(predicted / actual, 1.0, 0.08);
}

TEST(WorldChangeModelTest, PredictCountNeverNegative) {
  world::World w = testing::MakeTestWorld();
  WorldChangeModel model = WorldChangeModel::Learn(w, 60).value();
  EXPECT_GE(model.PredictCount({0, 1, 2, 3}, 100000), 0.0);
}

}  // namespace
}  // namespace freshsel::estimation
