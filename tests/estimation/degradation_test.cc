#include "estimation/degradation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "estimation/source_profile.h"
#include "obs/macros.h"
#include "obs/metrics.h"
#include "testing/test_world.h"

namespace freshsel::estimation {
namespace {

constexpr TimePoint kT0 = 70;

/// A source with a declared scope but no capture at all: unfittable.
source::SourceHistory MakeDeadSource(const world::World& w, std::string name,
                                     std::vector<world::SubdomainId> scope) {
  source::SourceSpec spec;
  spec.name = std::move(name);
  spec.scope = std::move(scope);
  spec.schedule = {1, 0};
  return source::SourceHistory(spec, w.entity_count());
}

/// A fitted source confined to subdomain 3: carries entity 4 (born 25,
/// update at 45) with real capture events before kT0.
source::SourceHistory MakeSub3Source(const world::World& w) {
  source::SourceSpec spec;
  spec.name = "sub3-source";
  spec.scope = {3};
  spec.schedule = {1, 0};
  source::SourceHistory history(spec, w.entity_count());
  source::CaptureRecord rec;
  rec.entity = 4;
  rec.subdomain = 3;
  rec.inserted = 26;
  rec.deleted = world::kNever;
  rec.version_captures = {{0, 26}, {1, 47}};
  EXPECT_TRUE(history.AddRecord(std::move(rec)).ok());
  return history;
}

TEST(FitStatsTest, FittedSourceReportsEvents) {
  const world::World w = testing::MakeTestWorld();
  SourceProfileFitStats stats;
  const Result<SourceProfile> profile =
      LearnSourceProfile(w, testing::MakeTestSource(w), kT0, &stats);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_GT(stats.insert_samples, 0u);
  EXPECT_GT(stats.insert_events, 0u);
  EXPECT_GT(stats.update_events, 0u);
  EXPECT_GT(stats.delete_events, 0u);
  EXPECT_EQ(stats.total_samples(), stats.insert_samples +
                                       stats.update_samples +
                                       stats.delete_samples);
  EXPECT_TRUE(stats.fittable());
}

TEST(FitStatsTest, DeadSourceIsUnfittable) {
  const world::World w = testing::MakeTestWorld();
  SourceProfileFitStats stats;
  const Result<SourceProfile> profile = LearnSourceProfile(
      w, MakeDeadSource(w, "dead", {0, 1}), kT0, &stats);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(stats.total_events(), 0u);
  EXPECT_FALSE(stats.fittable());
  // No observed scope, zero-effectiveness distributions.
  EXPECT_TRUE(profile->observed_scope.empty());
  EXPECT_DOUBLE_EQ(profile->g_insert.FinalValue(), 0.0);
}

TEST(FitStatsTest, NullStatsPointerIsAccepted) {
  const world::World w = testing::MakeTestWorld();
  EXPECT_TRUE(
      LearnSourceProfile(w, testing::MakeTestSource(w), kT0, nullptr).ok());
}

TEST(AverageStepFunctionsTest, EmptyInputIsZero) {
  const stats::StepFunction averaged = AverageStepFunctions({});
  EXPECT_DOUBLE_EQ(averaged.Evaluate(10.0), 0.0);
  EXPECT_DOUBLE_EQ(averaged.FinalValue(), 0.0);
}

TEST(AverageStepFunctionsTest, SingleFunctionIsIdentityPointwise) {
  const stats::StepFunction fn =
      stats::StepFunction::FromKnots({{1.0, 0.25}, {4.0, 0.75}}).value();
  const stats::StepFunction averaged = AverageStepFunctions({&fn});
  for (double x : {-1.0, 0.0, 0.5, 1.0, 2.0, 4.0, 100.0}) {
    EXPECT_DOUBLE_EQ(averaged.Evaluate(x), fn.Evaluate(x)) << "x=" << x;
  }
}

TEST(AverageStepFunctionsTest, AveragesOverUnionOfKnots) {
  const stats::StepFunction a =
      stats::StepFunction::FromKnots({{1.0, 0.5}, {3.0, 1.0}}).value();
  const stats::StepFunction b =
      stats::StepFunction::FromKnots({{2.0, 0.4}}).value();
  const stats::StepFunction averaged = AverageStepFunctions({&a, &b});
  EXPECT_DOUBLE_EQ(averaged.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(averaged.Evaluate(1.0), 0.25);  // (0.5 + 0) / 2.
  EXPECT_DOUBLE_EQ(averaged.Evaluate(2.0), 0.45);  // (0.5 + 0.4) / 2.
  EXPECT_DOUBLE_EQ(averaged.Evaluate(3.5), 0.7);   // (1.0 + 0.4) / 2.
  EXPECT_DOUBLE_EQ(averaged.FinalValue(), 0.7);
}

TEST(AverageStepFunctionsTest, ConstantPeersAverageToConstant) {
  const stats::StepFunction zero = stats::StepFunction::Constant(0.0);
  const stats::StepFunction one = stats::StepFunction::Constant(1.0);
  const stats::StepFunction averaged = AverageStepFunctions({&zero, &one});
  EXPECT_DOUBLE_EQ(averaged.Evaluate(5.0), 0.5);
}

TEST(MakePriorProfileTest, NoPeersRetainsZeroProfileWithDailyInterval) {
  const world::World w = testing::MakeTestWorld();
  const SourceProfile raw =
      LearnSourceProfile(w, MakeDeadSource(w, "dead", {2, 0}), kT0).value();
  const SourceProfile prior = MakePriorProfile(raw, {2, 0}, {}, kT0);
  EXPECT_EQ(prior.name, "dead");
  EXPECT_EQ(prior.observed_scope,
            (std::vector<world::SubdomainId>{0, 2}));  // Sorted.
  EXPECT_EQ(prior.anchor, kT0);
  EXPECT_DOUBLE_EQ(prior.update_interval, 1.0);
  EXPECT_DOUBLE_EQ(prior.g_insert.FinalValue(), 0.0);
}

TEST(MakePriorProfileTest, PeersContributeAveragedDistributions) {
  const world::World w = testing::MakeTestWorld();
  const SourceProfile peer1 =
      LearnSourceProfile(w, testing::MakeTestSource(w), kT0).value();
  const SourceProfile peer2 =
      LearnSourceProfile(w, MakeSub3Source(w), kT0).value();
  const SourceProfile raw =
      LearnSourceProfile(w, MakeDeadSource(w, "dead", {1}), kT0).value();
  const SourceProfile prior =
      MakePriorProfile(raw, {1}, {&peer1, &peer2}, kT0);
  EXPECT_EQ(prior.anchor, kT0);
  EXPECT_DOUBLE_EQ(
      prior.update_interval,
      (peer1.update_interval + peer2.update_interval) / 2.0);
  for (double x : {0.0, 1.0, 5.0, 20.0, 60.0}) {
    EXPECT_DOUBLE_EQ(
        prior.g_insert.Evaluate(x),
        (peer1.g_insert.Evaluate(x) + peer2.g_insert.Evaluate(x)) / 2.0)
        << "x=" << x;
    EXPECT_DOUBLE_EQ(
        prior.g_update.Evaluate(x),
        (peer1.g_update.Evaluate(x) + peer2.g_update.Evaluate(x)) / 2.0)
        << "x=" << x;
  }
  // Signatures carry over from the raw learn (they are fit-independent).
  EXPECT_EQ(prior.sig_t0.up.Count(), raw.sig_t0.up.Count());
  EXPECT_EQ(prior.sig_t0.all.Count(), raw.sig_t0.all.Count());
}

TEST(RobustLearnTest, AllFittableRosterIsUntouched) {
  const world::World w = testing::MakeTestWorld();
  const std::vector<source::SourceHistory> histories = {
      testing::MakeTestSource(w), MakeSub3Source(w)};
  const Result<RobustProfiles> robust = LearnSourceProfilesRobust(
      w, histories, kT0, DegradationMode::kDegrade);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  EXPECT_FALSE(robust->report.any());
  EXPECT_EQ(robust->report.total_sources, 2u);
  const std::vector<SourceProfile> plain =
      LearnSourceProfiles(w, histories, kT0).value();
  ASSERT_EQ(robust->profiles.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(robust->profiles[i].g_update.knots(),
              plain[i].g_update.knots());
    EXPECT_EQ(robust->profiles[i].anchor, plain[i].anchor);
  }
}

TEST(RobustLearnTest, StrictModeNamesEveryOffender) {
  const world::World w = testing::MakeTestWorld();
  const std::vector<source::SourceHistory> histories = {
      testing::MakeTestSource(w), MakeDeadSource(w, "dead-a", {0}),
      MakeDeadSource(w, "dead-b", {1})};
  const Result<RobustProfiles> robust = LearnSourceProfilesRobust(
      w, histories, kT0, DegradationMode::kStrict);
  ASSERT_FALSE(robust.ok());
  EXPECT_EQ(robust.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(robust.status().message().find("dead-a"), std::string::npos);
  EXPECT_NE(robust.status().message().find("dead-b"), std::string::npos);
}

TEST(RobustLearnTest, DegradeModeSubstitutesAndReports) {
  const world::World w = testing::MakeTestWorld();
  obs::MetricsRegistry::Global().ResetAll();
  const std::vector<source::SourceHistory> histories = {
      testing::MakeTestSource(w), MakeDeadSource(w, "dead", {0, 1})};
  const Result<RobustProfiles> robust = LearnSourceProfilesRobust(
      w, histories, kT0, DegradationMode::kDegrade);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  ASSERT_EQ(robust->report.degraded.size(), 1u);
  EXPECT_EQ(robust->report.degraded[0].index, 1u);
  EXPECT_EQ(robust->report.degraded[0].name, "dead");
  EXPECT_NE(robust->report.degraded[0].reason.find("subdomain-prior"),
            std::string::npos);
  // The substituted profile equals the manual prior built from the one
  // fitted peer.
  const SourceProfile peer =
      LearnSourceProfile(w, histories[0], kT0).value();
  const SourceProfile raw =
      LearnSourceProfile(w, histories[1], kT0).value();
  const SourceProfile expected =
      MakePriorProfile(raw, {0, 1}, {&peer}, kT0);
  EXPECT_EQ(robust->profiles[1].observed_scope, expected.observed_scope);
  EXPECT_DOUBLE_EQ(robust->profiles[1].update_interval,
                   expected.update_interval);
  EXPECT_EQ(robust->profiles[1].g_insert.knots(), expected.g_insert.knots());
  EXPECT_EQ(robust->profiles[1].g_update.knots(), expected.g_update.knots());
  EXPECT_EQ(robust->profiles[1].g_delete.knots(), expected.g_delete.knots());
  // The fitted source is untouched.
  EXPECT_EQ(robust->profiles[0].g_update.knots(), peer.g_update.knots());
#if FRESHSEL_OBS_ACTIVE
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().TakeSnapshot();
  EXPECT_EQ(snapshot.counters.at("estimation.degraded.sources"), 1u);
#endif  // FRESHSEL_OBS_ACTIVE
}

TEST(RobustLearnTest, PeersRestrictedToOverlappingScope) {
  const world::World w = testing::MakeTestWorld();
  // Peer A observes subdomains {0, 1}; peer B observes {3}. A dead source
  // declared in {3} must inherit B's distributions alone.
  const std::vector<source::SourceHistory> histories = {
      testing::MakeTestSource(w), MakeSub3Source(w),
      MakeDeadSource(w, "dead-sub3", {3})};
  const Result<RobustProfiles> robust = LearnSourceProfilesRobust(
      w, histories, kT0, DegradationMode::kDegrade);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  const SourceProfile peer_b = LearnSourceProfile(w, histories[1], kT0).value();
  EXPECT_EQ(robust->profiles[2].g_insert.knots(), peer_b.g_insert.knots());
  EXPECT_DOUBLE_EQ(robust->profiles[2].update_interval,
                   peer_b.update_interval);
}

TEST(RobustLearnTest, NoOverlapFallsBackToAllFittedPeers) {
  const world::World w = testing::MakeTestWorld();
  // Declared scope {2} overlaps no fitted peer (A observes {0,1}, B {3}),
  // so the prior averages both.
  const std::vector<source::SourceHistory> histories = {
      testing::MakeTestSource(w), MakeSub3Source(w),
      MakeDeadSource(w, "dead-sub2", {2})};
  const Result<RobustProfiles> robust = LearnSourceProfilesRobust(
      w, histories, kT0, DegradationMode::kDegrade);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  const SourceProfile peer_a = LearnSourceProfile(w, histories[0], kT0).value();
  const SourceProfile peer_b = LearnSourceProfile(w, histories[1], kT0).value();
  EXPECT_DOUBLE_EQ(
      robust->profiles[2].update_interval,
      (peer_a.update_interval + peer_b.update_interval) / 2.0);
  for (double x : {1.0, 10.0, 50.0}) {
    EXPECT_DOUBLE_EQ(
        robust->profiles[2].g_insert.Evaluate(x),
        (peer_a.g_insert.Evaluate(x) + peer_b.g_insert.Evaluate(x)) / 2.0);
  }
}

TEST(RobustLearnTest, AllUnfittableRosterKeepsZeroProfiles) {
  const world::World w = testing::MakeTestWorld();
  const std::vector<source::SourceHistory> histories = {
      MakeDeadSource(w, "dead-a", {0}), MakeDeadSource(w, "dead-b", {1})};
  const Result<RobustProfiles> robust = LearnSourceProfilesRobust(
      w, histories, kT0, DegradationMode::kDegrade);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  EXPECT_EQ(robust->report.degraded.size(), 2u);
  for (const DegradedSource& degraded : robust->report.degraded) {
    EXPECT_NE(degraded.reason.find("no fitted peers"), std::string::npos)
        << degraded.reason;
  }
  for (const SourceProfile& profile : robust->profiles) {
    EXPECT_DOUBLE_EQ(profile.g_insert.FinalValue(), 0.0);
    EXPECT_DOUBLE_EQ(profile.update_interval, 1.0);
    EXPECT_EQ(profile.anchor, kT0);
  }
}

TEST(RobustLearnTest, ModeNames) {
  EXPECT_STREQ(DegradationModeName(DegradationMode::kStrict), "strict");
  EXPECT_STREQ(DegradationModeName(DegradationMode::kDegrade), "degrade");
}

}  // namespace
}  // namespace freshsel::estimation
