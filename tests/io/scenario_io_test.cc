#include "io/scenario_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "source/source_simulator.h"
#include "testing/test_world.h"
#include "world/world_simulator.h"

namespace freshsel::io {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

TEST(ScenarioIoTest, WorldRoundTrip) {
  world::World original = testing::MakeTestWorld();
  const std::string path = TempPath("world_roundtrip.csv");
  ASSERT_TRUE(WriteWorldCsv(original, path).ok());

  Result<world::World> loaded = ReadWorldCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->entity_count(), original.entity_count());
  EXPECT_EQ(loaded->horizon(), original.horizon());
  EXPECT_EQ(loaded->domain().dim1_name(), "loc");
  EXPECT_EQ(loaded->domain().subdomain_count(),
            original.domain().subdomain_count());
  for (std::size_t i = 0; i < original.entity_count(); ++i) {
    const world::EntityRecord& a = original.entity(i);
    const world::EntityRecord& b = loaded->entity(i);
    EXPECT_EQ(a.subdomain, b.subdomain);
    EXPECT_EQ(a.birth, b.birth);
    EXPECT_EQ(a.death, b.death);
    EXPECT_EQ(a.update_times, b.update_times);
  }
  // The loaded world is finalized: count queries work.
  for (TimePoint t = 0; t <= 100; t += 10) {
    EXPECT_EQ(loaded->TotalCountAt(t), original.TotalCountAt(t));
  }
  std::remove(path.c_str());
}

TEST(ScenarioIoTest, SimulatedWorldRoundTrip) {
  world::DataDomain domain =
      world::DataDomain::Create("loc", 3, "cat", 2).value();
  world::WorldSpec spec{std::move(domain), {}, 120};
  for (int i = 0; i < 6; ++i) spec.rates.push_back({0.5, 0.01, 0.03, 20});
  Rng rng(31);
  world::World original = world::SimulateWorld(spec, rng).value();
  const std::string path = TempPath("world_sim_roundtrip.csv");
  ASSERT_TRUE(WriteWorldCsv(original, path).ok());
  Result<world::World> loaded = ReadWorldCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->entity_count(), original.entity_count());
  EXPECT_EQ(loaded->change_log().size(), original.change_log().size());
  std::remove(path.c_str());
}

TEST(ScenarioIoTest, SourceHistoryRoundTrip) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory original = testing::MakeTestSource(w, /*period=*/2);
  const std::string path = TempPath("source_roundtrip.csv");
  ASSERT_TRUE(WriteSourceHistoryCsv(original, path).ok());

  Result<source::SourceHistory> loaded = ReadSourceHistoryCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), original.name());
  EXPECT_EQ(loaded->schedule().period, 2);
  EXPECT_EQ(loaded->spec().scope, original.spec().scope);
  EXPECT_EQ(loaded->records().size(), original.records().size());
  EXPECT_EQ(loaded->world_entity_count(), original.world_entity_count());
  for (const source::CaptureRecord& rec : original.records()) {
    const source::CaptureRecord* got = loaded->Find(rec.entity);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->subdomain, rec.subdomain);
    EXPECT_EQ(got->inserted, rec.inserted);
    EXPECT_EQ(got->deleted, rec.deleted);
    EXPECT_EQ(got->version_captures, rec.version_captures);
  }
  std::remove(path.c_str());
}

TEST(ScenarioIoTest, LoadedHistoryBehavesLikeOriginal) {
  world::World w = testing::MakeTestWorld();
  source::SourceHistory original = testing::MakeTestSource(w);
  const std::string path = TempPath("source_behave.csv");
  ASSERT_TRUE(WriteSourceHistoryCsv(original, path).ok());
  source::SourceHistory loaded = ReadSourceHistoryCsv(path).value();
  for (TimePoint t = 0; t <= 100; t += 7) {
    EXPECT_EQ(loaded.ContentCountAt(t), original.ContentCountAt(t));
  }
  std::remove(path.c_str());
}

TEST(ScenarioIoTest, MissingFilesError) {
  EXPECT_EQ(ReadWorldCsv("/nonexistent/nope.csv").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(ReadSourceHistoryCsv("/nonexistent/nope.csv").status().code(),
            StatusCode::kIoError);
}

TEST(ScenarioIoTest, MalformedWorldFilesRejected) {
  const std::string path = TempPath("bad_world.csv");

  WriteFile(path, "");
  EXPECT_FALSE(ReadWorldCsv(path).ok());

  WriteFile(path, "#wrong,loc,2,cat,2,100\n");
  EXPECT_FALSE(ReadWorldCsv(path).ok());

  WriteFile(path, "#world,loc,2,cat,2,100\nwrong header\n");
  EXPECT_FALSE(ReadWorldCsv(path).ok());

  WriteFile(path,
            "#world,loc,2,cat,2,100\nid,subdomain,birth,death,updates\n"
            "0,1,abc,,\n");
  EXPECT_FALSE(ReadWorldCsv(path).ok());

  WriteFile(path,
            "#world,loc,2,cat,2,100\nid,subdomain,birth,death,updates\n"
            "0,99,0,,\n");  // Subdomain out of range.
  EXPECT_FALSE(ReadWorldCsv(path).ok());
  std::remove(path.c_str());
}

TEST(ScenarioIoTest, MalformedSourceFilesRejected) {
  const std::string path = TempPath("bad_source.csv");

  WriteFile(path, "#source,s,1,0\n");  // Too few header fields.
  EXPECT_FALSE(ReadSourceHistoryCsv(path).ok());

  WriteFile(path, "#source,s,1,0,10\nno scope line\n");
  EXPECT_FALSE(ReadSourceHistoryCsv(path).ok());

  WriteFile(path,
            "#source,s,1,0,10\n#scope,0\n"
            "entity,subdomain,inserted,deleted,captures\n"
            "3,0,5,,0-5\n");  // Bad capture separator.
  EXPECT_FALSE(ReadSourceHistoryCsv(path).ok());
  std::remove(path.c_str());
}

TEST(ScenarioIoTest, EmptyScopeAndNoRecordsRoundTrip) {
  source::SourceSpec spec;
  spec.name = "empty";
  spec.schedule = {3, 1};
  source::SourceHistory original(spec, 5);
  const std::string path = TempPath("empty_source.csv");
  ASSERT_TRUE(WriteSourceHistoryCsv(original, path).ok());
  Result<source::SourceHistory> loaded = ReadSourceHistoryCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->records().empty());
  EXPECT_TRUE(loaded->spec().scope.empty());
  EXPECT_EQ(loaded->schedule().phase, 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace freshsel::io
