// Property / fuzz sweep for io/scenario_io: every malformed input must be
// rejected with a Status — never a crash, hang, or leak (the CI sanitizer
// jobs run this suite under ASan/UBSan/TSan). The mutator is seeded, so a
// failing corpus entry reproduces from its (seed, iteration) pair printed
// on failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "io/scenario_io.h"
#include "testing/test_world.h"

namespace freshsel::io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A well-formed world CSV to mutate.
std::string BaseWorldCsv() {
  const std::string path = TempPath("fuzz_base_world.csv");
  const world::World base = testing::MakeTestWorld();
  EXPECT_TRUE(WriteWorldCsv(base, path).ok());
  const std::string text = ReadFile(path);
  std::remove(path.c_str());
  return text;
}

/// A well-formed source CSV to mutate.
std::string BaseSourceCsv() {
  const std::string path = TempPath("fuzz_base_source.csv");
  const world::World base = testing::MakeTestWorld();
  EXPECT_TRUE(
      WriteSourceHistoryCsv(testing::MakeTestSource(base), path).ok());
  const std::string text = ReadFile(path);
  std::remove(path.c_str());
  return text;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string joined;
  for (const std::string& line : lines) {
    joined += line;
    joined += '\n';
  }
  return joined;
}

/// One seeded random corruption of `text`. Covers the malformed-input
/// classes called out in DESIGN.md §11: truncation mid-row, non-numeric
/// fields, duplicated rows (duplicate entity ids), shuffled row order
/// (out-of-order ids / timestamps), deleted lines, injected garbage bytes,
/// and full emptying.
std::string Mutate(const std::string& text, Rng& rng) {
  std::vector<std::string> lines = SplitLines(text);
  switch (rng.NextBounded(7)) {
    case 0: {  // Truncate at an arbitrary byte (often mid-row).
      if (text.empty()) return text;
      return text.substr(0, rng.NextBounded(text.size()));
    }
    case 1: {  // Corrupt one byte into a non-numeric character.
      std::string mutated = text;
      if (mutated.empty()) return mutated;
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>('a' + rng.NextBounded(26));
      return mutated;
    }
    case 2: {  // Duplicate a random line (duplicate entity ids).
      if (lines.empty()) return text;
      const std::size_t at = rng.NextBounded(lines.size());
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                   lines[at]);
      return JoinLines(lines);
    }
    case 3: {  // Swap two lines (out-of-order rows / headers).
      if (lines.size() < 2) return text;
      const std::size_t a = rng.NextBounded(lines.size());
      const std::size_t b = rng.NextBounded(lines.size());
      std::swap(lines[a], lines[b]);
      return JoinLines(lines);
    }
    case 4: {  // Drop a random line (missing header / truncated table).
      if (lines.empty()) return text;
      lines.erase(lines.begin() +
                  static_cast<std::ptrdiff_t>(rng.NextBounded(lines.size())));
      return JoinLines(lines);
    }
    case 5: {  // Inject a garbage line at a random position.
      const std::size_t at = rng.NextBounded(lines.size() + 1);
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                   "####,garbage,|,::,");
      return JoinLines(lines);
    }
    default:  // Empty file.
      return "";
  }
}

/// Property: loaders terminate and return a Status for arbitrary corpus
/// mutations. Stacked mutations explore compounded corruption.
TEST(ScenarioIoFuzzTest, MutatedWorldFilesNeverCrash) {
  const std::string base = BaseWorldCsv();
  const std::string path = TempPath("fuzz_world.csv");
  Rng rng(20260806);
  int rejected = 0;
  constexpr int kIterations = 300;
  for (int i = 0; i < kIterations; ++i) {
    std::string mutated = base;
    const std::size_t rounds = 1 + rng.NextBounded(3);
    for (std::size_t r = 0; r < rounds; ++r) mutated = Mutate(mutated, rng);
    WriteFile(path, mutated);
    const Result<world::World> loaded = ReadWorldCsv(path);
    if (!loaded.ok()) {
      ++rejected;
      EXPECT_FALSE(loaded.status().message().empty())
          << "iteration " << i << " produced a blank error";
    }
  }
  // The corpus must actually exercise the error paths: most mutations make
  // the file invalid (a few, like swapping identical lines, are benign).
  EXPECT_GT(rejected, kIterations / 2);
  std::remove(path.c_str());
}

TEST(ScenarioIoFuzzTest, MutatedSourceFilesNeverCrash) {
  const std::string base = BaseSourceCsv();
  const std::string path = TempPath("fuzz_source.csv");
  Rng rng(77001);
  int rejected = 0;
  constexpr int kIterations = 300;
  for (int i = 0; i < kIterations; ++i) {
    std::string mutated = base;
    const std::size_t rounds = 1 + rng.NextBounded(3);
    for (std::size_t r = 0; r < rounds; ++r) mutated = Mutate(mutated, rng);
    WriteFile(path, mutated);
    const Result<source::SourceHistory> loaded = ReadSourceHistoryCsv(path);
    if (!loaded.ok()) {
      ++rejected;
      EXPECT_FALSE(loaded.status().message().empty())
          << "iteration " << i << " produced a blank error";
    }
  }
  EXPECT_GT(rejected, kIterations / 2);
  std::remove(path.c_str());
}

// Directed corpus: one deterministic regression per malformed-input class.

TEST(ScenarioIoFuzzTest, TruncatedRowRejected) {
  const std::string path = TempPath("fuzz_truncated.csv");
  WriteFile(path,
            "#world,loc,2,cat,2,100\nid,subdomain,birth,death,updates\n"
            "0,1,5");  // Row cut off after three of five fields.
  EXPECT_EQ(ReadWorldCsv(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ScenarioIoFuzzTest, NonNumericFieldsRejected) {
  const std::string path = TempPath("fuzz_nonnumeric.csv");
  WriteFile(path,
            "#world,loc,2,cat,2,100\nid,subdomain,birth,death,updates\n"
            "zero,1,5,,\n");
  EXPECT_EQ(ReadWorldCsv(path).status().code(),
            StatusCode::kInvalidArgument);
  WriteFile(path,
            "#world,loc,2,cat,2,horizon\nid,subdomain,birth,death,updates\n");
  EXPECT_EQ(ReadWorldCsv(path).status().code(),
            StatusCode::kInvalidArgument);
  WriteFile(path,
            "#source,s,1,0,10\n#scope,0\n"
            "entity,subdomain,inserted,deleted,captures\n"
            "3,0,five,,\n");
  EXPECT_EQ(ReadSourceHistoryCsv(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ScenarioIoFuzzTest, DuplicateEntityIdsRejected) {
  const std::string world_path = TempPath("fuzz_dup_world.csv");
  WriteFile(world_path,
            "#world,loc,2,cat,2,100\nid,subdomain,birth,death,updates\n"
            "0,1,0,,\n0,1,0,,\n");
  EXPECT_FALSE(ReadWorldCsv(world_path).ok());
  std::remove(world_path.c_str());

  const std::string source_path = TempPath("fuzz_dup_source.csv");
  WriteFile(source_path,
            "#source,s,1,0,10\n#scope,0\n"
            "entity,subdomain,inserted,deleted,captures\n"
            "3,0,5,,0:5\n3,0,6,,0:6\n");
  EXPECT_FALSE(ReadSourceHistoryCsv(source_path).ok());
  std::remove(source_path.c_str());
}

TEST(ScenarioIoFuzzTest, OutOfOrderTimestampsRejected) {
  const std::string path = TempPath("fuzz_ooo.csv");
  // Update days must be strictly increasing per entity.
  WriteFile(path,
            "#world,loc,2,cat,2,100\nid,subdomain,birth,death,updates\n"
            "0,1,0,,40|10\n");
  EXPECT_FALSE(ReadWorldCsv(path).ok());
  // Death before birth violates the lifespan invariant.
  WriteFile(path,
            "#world,loc,2,cat,2,100\nid,subdomain,birth,death,updates\n"
            "0,1,50,20,\n");
  EXPECT_FALSE(ReadWorldCsv(path).ok());
  std::remove(path.c_str());
}

TEST(ScenarioIoFuzzTest, EmptyFilesRejected) {
  const std::string path = TempPath("fuzz_empty.csv");
  WriteFile(path, "");
  EXPECT_FALSE(ReadWorldCsv(path).ok());
  EXPECT_FALSE(ReadSourceHistoryCsv(path).ok());
  std::remove(path.c_str());
}

/// Round-trip property: write -> read -> write must reproduce the first
/// file byte for byte (the serialization is canonical, so a re-write of a
/// just-parsed object cannot drift).
TEST(ScenarioIoFuzzTest, WorldWriteReadWriteIsByteStable) {
  const std::string first = TempPath("fuzz_rt_world1.csv");
  const std::string second = TempPath("fuzz_rt_world2.csv");
  const world::World original = testing::MakeTestWorld();
  ASSERT_TRUE(WriteWorldCsv(original, first).ok());
  const Result<world::World> loaded = ReadWorldCsv(first);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(WriteWorldCsv(*loaded, second).ok());
  EXPECT_EQ(ReadFile(first), ReadFile(second));
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(ScenarioIoFuzzTest, SourceWriteReadWriteIsByteStable) {
  const std::string first = TempPath("fuzz_rt_source1.csv");
  const std::string second = TempPath("fuzz_rt_source2.csv");
  const world::World base = testing::MakeTestWorld();
  const source::SourceHistory original = testing::MakeTestSource(base);
  ASSERT_TRUE(WriteSourceHistoryCsv(original, first).ok());
  const Result<source::SourceHistory> loaded = ReadSourceHistoryCsv(first);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(WriteSourceHistoryCsv(*loaded, second).ok());
  EXPECT_EQ(ReadFile(first), ReadFile(second));
  std::remove(first.c_str());
  std::remove(second.c_str());
}

}  // namespace
}  // namespace freshsel::io
