// Degradation equivalence suite (DESIGN.md §11): running the selector over
// a scenario whose roster contains K unfittable sources, learned through the
// robust pipeline in degrade mode, must produce byte-identical selections
// and profits to a pipeline where the subdomain-prior profiles are
// substituted manually. Graceful degradation is a pure profile rewrite — it
// must not perturb any downstream selection path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "estimation/degradation.h"
#include "estimation/source_profile.h"
#include "harness/learned_scenario.h"
#include "selection/algorithms.h"
#include "selection/budgeted_greedy.h"
#include "selection/cost.h"
#include "selection/profit.h"
#include "workloads/bl_generator.h"

namespace freshsel::selection {
namespace {

void ExpectIdentical(const SelectionResult& a, const SelectionResult& b,
                     const char* what, std::uint64_t seed) {
  EXPECT_EQ(a.selected, b.selected) << what << ", seed " << seed;
  EXPECT_EQ(a.profit, b.profit) << what << ", seed " << seed;
}

/// A source that never captured anything: declared scope, zero records.
source::SourceHistory MakeDeadSource(const workloads::Scenario& scenario,
                                     std::string name,
                                     std::vector<world::SubdomainId> scope) {
  source::SourceSpec spec;
  spec.name = std::move(name);
  spec.scope = std::move(scope);
  spec.schedule = {2, 0};
  return source::SourceHistory(spec, scenario.world.entity_count());
}

bool ScopesOverlap(const std::vector<world::SubdomainId>& observed,
                   const std::vector<world::SubdomainId>& declared) {
  for (world::SubdomainId sub : observed) {
    if (std::find(declared.begin(), declared.end(), sub) != declared.end()) {
      return true;
    }
  }
  return false;
}

/// BL scenario with three dead sources appended to the roster.
class DegradationEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    workloads::BlConfig config;
    config.seed = GetParam();
    config.locations = 8;
    config.categories = 3;
    config.horizon = 220;
    config.t0 = 150;
    config.scale = 0.3;
    config.n_uniform = 2;
    config.n_location_specialists = 4;
    config.n_category_specialists = 3;
    config.n_medium = 2;
    scenario_ = std::make_unique<workloads::Scenario>(
        workloads::GenerateBlScenario(config).value());
    fitted_count_ = scenario_->sources.size();
    scenario_->sources.push_back(
        MakeDeadSource(*scenario_, "dead-narrow", {0, 1}));
    scenario_->sources.push_back(
        MakeDeadSource(*scenario_, "dead-mid", {5, 9, 13}));
    scenario_->sources.push_back(
        MakeDeadSource(*scenario_, "dead-broad", {2, 7, 11, 19, 23}));
  }

  /// Estimator + oracle over an explicit profile vector.
  struct Pipeline {
    std::unique_ptr<estimation::QualityEstimator> estimator;
    std::unique_ptr<ProfitOracle> oracle;
  };

  Pipeline MakePipeline(const estimation::WorldChangeModel& world_model,
                        const std::vector<estimation::SourceProfile>& learned,
                        double budget) {
    Pipeline p;
    p.estimator = std::make_unique<estimation::QualityEstimator>(
        estimation::QualityEstimator::Create(
            scenario_->world, world_model, {},
            MakeTimePoints(scenario_->t0 + 14, 3, 14))
            .value());
    std::vector<const estimation::SourceProfile*> profiles;
    for (const auto& profile : learned) {
      profiles.push_back(&profile);
      EXPECT_TRUE(p.estimator->AddSource(&profile).ok());
    }
    ProfitOracle::Config config;
    config.budget = budget;
    p.oracle = std::make_unique<ProfitOracle>(
        ProfitOracle::Create(p.estimator.get(),
                             CostModel::ItemShareCosts(profiles), config)
            .value());
    return p;
  }

  /// The manual reference: plain learn (dead sources fit to zero profiles),
  /// then substitute each dead source's profile with MakePriorProfile built
  /// from the fitted peers overlapping its declared scope — exactly the
  /// contract LearnScenarioRobust promises in degrade mode.
  std::vector<estimation::SourceProfile> ManualSubstitution(
      const harness::LearnedScenario& plain) {
    std::vector<estimation::SourceProfile> substituted = plain.profiles;
    for (std::size_t i = fitted_count_; i < substituted.size(); ++i) {
      const std::vector<world::SubdomainId>& declared =
          scenario_->sources[i].spec().scope;
      std::vector<const estimation::SourceProfile*> peers;
      for (std::size_t j = 0; j < fitted_count_; ++j) {
        if (ScopesOverlap(plain.profiles[j].observed_scope, declared)) {
          peers.push_back(&plain.profiles[j]);
        }
      }
      if (peers.empty()) {
        for (std::size_t j = 0; j < fitted_count_; ++j) {
          peers.push_back(&plain.profiles[j]);
        }
      }
      substituted[i] = estimation::MakePriorProfile(
          plain.profiles[i], declared, peers, scenario_->t0);
    }
    return substituted;
  }

  std::unique_ptr<workloads::Scenario> scenario_;
  std::size_t fitted_count_ = 0;
};

TEST_P(DegradationEquivalenceTest, RobustLearnMatchesManualSubstitution) {
  const harness::LearnedScenario robust =
      harness::LearnScenarioRobust(*scenario_,
                                   estimation::DegradationMode::kDegrade)
          .value();
  ASSERT_EQ(robust.degradation.degraded.size(), 3u);
  EXPECT_EQ(robust.degradation.total_sources, scenario_->sources.size());
  EXPECT_EQ(robust.degradation.degraded[0].name, "dead-narrow");
  EXPECT_EQ(robust.degradation.degraded[0].index, fitted_count_);

  const harness::LearnedScenario plain =
      harness::LearnScenario(*scenario_).value();
  const std::vector<estimation::SourceProfile> manual =
      ManualSubstitution(plain);
  ASSERT_EQ(robust.profiles.size(), manual.size());
  for (std::size_t i = 0; i < manual.size(); ++i) {
    EXPECT_EQ(robust.profiles[i].g_insert.knots(),
              manual[i].g_insert.knots())
        << "source " << i;
    EXPECT_EQ(robust.profiles[i].g_update.knots(),
              manual[i].g_update.knots())
        << "source " << i;
    EXPECT_EQ(robust.profiles[i].update_interval, manual[i].update_interval)
        << "source " << i;
  }
  // The substitution must not be vacuous: a prior profile carries real
  // capture signal where the zero profile carried none.
  for (std::size_t i = fitted_count_; i < robust.profiles.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.profiles[i].g_insert.FinalValue(), 0.0);
    EXPECT_GT(robust.profiles[i].g_insert.FinalValue(), 0.0)
        << "source " << i;
  }
}

TEST_P(DegradationEquivalenceTest, GreedySelectsIdenticallyOnBothPipelines) {
  const harness::LearnedScenario robust =
      harness::LearnScenarioRobust(*scenario_,
                                   estimation::DegradationMode::kDegrade)
          .value();
  const harness::LearnedScenario plain =
      harness::LearnScenario(*scenario_).value();
  const std::vector<estimation::SourceProfile> manual =
      ManualSubstitution(plain);
  const double unbounded = std::numeric_limits<double>::infinity();
  Pipeline a = MakePipeline(robust.world_model, robust.profiles, unbounded);
  Pipeline b = MakePipeline(plain.world_model, manual, unbounded);
  ExpectIdentical(Greedy(*a.oracle, nullptr, GreedyOptions{false}),
                  Greedy(*b.oracle, nullptr, GreedyOptions{false}),
                  "degraded eager greedy", GetParam());
  ExpectIdentical(Greedy(*a.oracle, nullptr, GreedyOptions{true}),
                  Greedy(*b.oracle, nullptr, GreedyOptions{true}),
                  "degraded lazy greedy", GetParam());
}

TEST_P(DegradationEquivalenceTest, BudgetedGreedyAgreesOnBothPipelines) {
  const harness::LearnedScenario robust =
      harness::LearnScenarioRobust(*scenario_,
                                   estimation::DegradationMode::kDegrade)
          .value();
  const harness::LearnedScenario plain =
      harness::LearnScenario(*scenario_).value();
  const std::vector<estimation::SourceProfile> manual =
      ManualSubstitution(plain);
  for (double budget : {0.2, 0.5}) {
    Pipeline a = MakePipeline(robust.world_model, robust.profiles, budget);
    Pipeline b = MakePipeline(plain.world_model, manual, budget);
    ExpectIdentical(BudgetedGreedy(*a.oracle, BudgetedGreedyOptions{true}),
                    BudgetedGreedy(*b.oracle, BudgetedGreedyOptions{true}),
                    "degraded budgeted greedy", GetParam());
  }
}

TEST_P(DegradationEquivalenceTest, GraspAgreesOnBothPipelines) {
  const harness::LearnedScenario robust =
      harness::LearnScenarioRobust(*scenario_,
                                   estimation::DegradationMode::kDegrade)
          .value();
  const harness::LearnedScenario plain =
      harness::LearnScenario(*scenario_).value();
  const std::vector<estimation::SourceProfile> manual =
      ManualSubstitution(plain);
  const double unbounded = std::numeric_limits<double>::infinity();
  Pipeline a = MakePipeline(robust.world_model, robust.profiles, unbounded);
  Pipeline b = MakePipeline(plain.world_model, manual, unbounded);
  ThreadPool pool(3);
  GraspParams params{2, 3, GetParam(), &pool};
  ExpectIdentical(Grasp(*a.oracle, params), Grasp(*b.oracle, params),
                  "degraded grasp", GetParam());
}

TEST_P(DegradationEquivalenceTest, StrictModeRefusesTheDegradedRoster) {
  const Result<harness::LearnedScenario> robust = harness::LearnScenarioRobust(
      *scenario_, estimation::DegradationMode::kStrict);
  ASSERT_FALSE(robust.ok());
  EXPECT_EQ(robust.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(robust.status().message().find("dead-narrow"), std::string::npos);
  EXPECT_NE(robust.status().message().find("dead-broad"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegradationEquivalenceTest,
                         ::testing::Values(3u, 11u, 42u));

}  // namespace
}  // namespace freshsel::selection
