#include "selection/selector.h"

#include <gtest/gtest.h>

#include "selection/profit.h"

namespace freshsel::selection {
namespace {

/// Modular test function (same shape as in algorithms_test).
class ModularFunction : public ProfitFunction {
 public:
  explicit ModularFunction(std::vector<double> weights)
      : weights_(std::move(weights)) {}
  std::size_t universe_size() const override { return weights_.size(); }
  double Profit(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    double total = 0.0;
    for (SourceHandle e : set) total += weights_[e];
    return total;
  }

 private:
  std::vector<double> weights_;
};

TEST(SelectorTest, AlgorithmNames) {
  EXPECT_EQ(AlgorithmName(Algorithm::kGreedy), "Greedy");
  EXPECT_EQ(AlgorithmName(Algorithm::kMaxSub), "MaxSub");
  EXPECT_EQ(AlgorithmName(Algorithm::kGrasp, 5, 20), "GRASP-(5,20)");
  EXPECT_EQ(AlgorithmName(Algorithm::kHillClimb), "HillClimb");
}

TEST(SelectorTest, DispatchesAllAlgorithmsToOptimum) {
  ModularFunction f({2.0, -1.0, 3.0});
  for (Algorithm algorithm :
       {Algorithm::kGreedy, Algorithm::kMaxSub, Algorithm::kGrasp,
        Algorithm::kHillClimb}) {
    SelectorConfig config;
    config.algorithm = algorithm;
    config.grasp_kappa = 2;
    config.grasp_restarts = 5;
    Result<SelectionResult> result = SelectSources(f, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->selected, (std::vector<SourceHandle>{0, 2}))
        << AlgorithmName(algorithm);
    EXPECT_DOUBLE_EQ(result->profit, 5.0);
  }
}

TEST(SelectorTest, MaxSubWithMatroidUsesConstrainedSearch) {
  ModularFunction f({5.0, 4.0, 3.0});
  PartitionMatroid matroid =
      PartitionMatroid::Create({0, 0, 0}, {1}).value();
  SelectorConfig config;
  config.algorithm = Algorithm::kMaxSub;
  Result<SelectionResult> result = SelectSources(f, config, &matroid);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, (std::vector<SourceHandle>{0}));
}

TEST(SelectorTest, HillClimbEqualsGraspOneOne) {
  ModularFunction f({1.0, 2.0, -3.0, 4.0});
  SelectorConfig hill;
  hill.algorithm = Algorithm::kHillClimb;
  hill.seed = 9;
  SelectorConfig grasp;
  grasp.algorithm = Algorithm::kGrasp;
  grasp.grasp_kappa = 1;
  grasp.grasp_restarts = 1;
  grasp.seed = 9;
  EXPECT_EQ(SelectSources(f, hill)->selected,
            SelectSources(f, grasp)->selected);
}

}  // namespace
}  // namespace freshsel::selection
