#include "selection/algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"
#include "selection/set_util.h"

namespace freshsel::selection {
namespace {

/// Modular (additive) test function: Profit(S) = sum of per-element weights
/// (negative weights model cost-dominated elements).
class ModularFunction : public ProfitFunction {
 public:
  explicit ModularFunction(std::vector<double> weights)
      : weights_(std::move(weights)) {}
  std::size_t universe_size() const override { return weights_.size(); }
  double Profit(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    double total = 0.0;
    for (SourceHandle e : set) total += weights_[e];
    return total;
  }

 private:
  std::vector<double> weights_;
};

/// Weighted-coverage submodular function minus additive costs: element e
/// covers a set of items; Profit(S) = sum of weights of covered items minus
/// sum of element costs. Monotone submodular gain, additive cost - exactly
/// the structure of the paper's profit.
class CoverageFunction : public ProfitFunction {
 public:
  CoverageFunction(std::vector<std::vector<int>> covers,
                   std::vector<double> item_weights,
                   std::vector<double> costs)
      : covers_(std::move(covers)),
        item_weights_(std::move(item_weights)),
        costs_(std::move(costs)) {}

  std::size_t universe_size() const override { return covers_.size(); }

  double Profit(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    std::vector<bool> covered(item_weights_.size(), false);
    double cost = 0.0;
    for (SourceHandle e : set) {
      cost += costs_[e];
      for (int item : covers_[e]) covered[item] = true;
    }
    double gain = 0.0;
    for (std::size_t i = 0; i < covered.size(); ++i) {
      if (covered[i]) gain += item_weights_[i];
    }
    return gain - cost;
  }

  static CoverageFunction Random(std::size_t n_elements,
                                 std::size_t n_items, double cost_scale,
                                 Rng& rng) {
    std::vector<std::vector<int>> covers(n_elements);
    for (auto& c : covers) {
      const std::size_t k = 1 + rng.NextBounded(n_items / 2);
      for (std::size_t j = 0; j < k; ++j) {
        c.push_back(static_cast<int>(rng.NextBounded(n_items)));
      }
    }
    std::vector<double> weights(n_items);
    for (auto& weight : weights) weight = rng.UniformDouble(0.1, 1.0);
    std::vector<double> costs(n_elements);
    for (auto& cost : costs) cost = rng.UniformDouble(0.0, cost_scale);
    return CoverageFunction(std::move(covers), std::move(weights),
                            std::move(costs));
  }

 private:
  std::vector<std::vector<int>> covers_;
  std::vector<double> item_weights_;
  std::vector<double> costs_;
};

TEST(ImprovesByTest, ThresholdSemantics) {
  EXPECT_TRUE(internal::ImprovesBy(1.2, 1.0, 0.1));
  EXPECT_FALSE(internal::ImprovesBy(1.05, 1.0, 0.1));
  EXPECT_FALSE(internal::ImprovesBy(
      std::numeric_limits<double>::infinity() * -1.0, 1.0, 0.1));
  // Near-zero current: absolute guard applies.
  EXPECT_TRUE(internal::ImprovesBy(0.01, 0.0, 0.1));
  EXPECT_FALSE(internal::ImprovesBy(1e-6, 0.0, 0.1));
}

TEST(GreedyTest, PicksAllPositiveWeights) {
  ModularFunction f({1.0, -2.0, 3.0, -0.5, 2.0});
  SelectionResult result = Greedy(f);
  EXPECT_EQ(result.selected, (std::vector<SourceHandle>{0, 2, 4}));
  EXPECT_DOUBLE_EQ(result.profit, 6.0);
  EXPECT_GT(result.oracle_calls, 0u);
}

TEST(GreedyTest, EmptyWhenEverythingHurts) {
  ModularFunction f({-1.0, -2.0});
  SelectionResult result = Greedy(f);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_DOUBLE_EQ(result.profit, 0.0);
}

TEST(GreedyTest, NearZeroProfitsTerminateEmpty) {
  // Marginals at or below the unified improvement threshold must not be
  // taken - the greedy family shares internal::kImprovementEps, so runs on
  // near-zero-profit instances terminate immediately instead of chaining
  // floating-point chatter.
  ModularFunction f({internal::kImprovementEps,
                     internal::kImprovementEps / 2.0, 0.0});
  for (bool lazy : {true, false}) {
    SelectionResult result = Greedy(f, nullptr, GreedyOptions{lazy});
    EXPECT_TRUE(result.selected.empty()) << "lazy=" << lazy;
    EXPECT_DOUBLE_EQ(result.profit, 0.0) << "lazy=" << lazy;
  }
  // A marginal just above the threshold is still taken.
  ModularFunction above({1e-9});
  EXPECT_EQ(Greedy(above).selected, (std::vector<SourceHandle>{0}));
}

TEST(GreedyTest, EagerFallbackMatchesDefault) {
  Rng rng(167);
  CoverageFunction f = CoverageFunction::Random(12, 18, 0.4, rng);
  SelectionResult lazy = Greedy(f, nullptr, GreedyOptions{true});
  SelectionResult eager = Greedy(f, nullptr, GreedyOptions{false});
  EXPECT_EQ(lazy.selected, eager.selected);
  EXPECT_DOUBLE_EQ(lazy.profit, eager.profit);
  // The lazy path must not spend more oracle calls than the eager scan,
  // and the saved + spent accounting must reconstruct the eager total.
  EXPECT_LE(lazy.oracle_calls, eager.oracle_calls);
  EXPECT_EQ(lazy.oracle_calls + lazy.oracle_calls_saved,
            eager.oracle_calls);
}

TEST(GreedyTest, RespectsMatroid) {
  ModularFunction f({5.0, 4.0, 3.0, 2.0});
  // All four elements in one group of capacity 2.
  PartitionMatroid matroid =
      PartitionMatroid::Create({0, 0, 0, 0}, {2}).value();
  SelectionResult result = Greedy(f, &matroid);
  EXPECT_EQ(result.selected, (std::vector<SourceHandle>{0, 1}));
  EXPECT_DOUBLE_EQ(result.profit, 9.0);
}

TEST(BruteForceTest, FindsOptimum) {
  ModularFunction f({1.0, -2.0, 3.0});
  SelectionResult result = BruteForce(f);
  EXPECT_EQ(result.selected, (std::vector<SourceHandle>{0, 2}));
  EXPECT_DOUBLE_EQ(result.profit, 4.0);
}

TEST(BruteForceTest, RespectsMatroid) {
  ModularFunction f({1.0, 2.0, 4.0});
  PartitionMatroid matroid =
      PartitionMatroid::Create({0, 0, 0}, {1}).value();
  SelectionResult result = BruteForce(f, &matroid);
  EXPECT_EQ(result.selected, (std::vector<SourceHandle>{2}));
}

TEST(MaxSubTest, ModularOptimum) {
  ModularFunction f({1.0, -2.0, 3.0, -0.5, 2.0});
  SelectionResult result = MaxSub(f);
  EXPECT_EQ(result.selected, (std::vector<SourceHandle>{0, 2, 4}));
  EXPECT_DOUBLE_EQ(result.profit, 6.0);
}

TEST(MaxSubTest, EmptyUniverse) {
  ModularFunction f({});
  SelectionResult result = MaxSub(f);
  EXPECT_TRUE(result.selected.empty());
}

TEST(MaxSubTest, NearOptimalOnRandomCoverageInstances) {
  Rng rng(171);
  for (int round = 0; round < 25; ++round) {
    CoverageFunction f = CoverageFunction::Random(9, 14, 0.4, rng);
    SelectionResult opt = BruteForce(f);
    SelectionResult maxsub = MaxSub(f, /*epsilon=*/0.1);
    // Feige et al. guarantee 1/3 for non-monotone; our instances are
    // near-monotone, so demand much more in practice.
    EXPECT_GE(maxsub.profit, 0.75 * opt.profit - 1e-9)
        << "round " << round;
  }
}

TEST(MaxSubTest, BeatsOrMatchesGreedyOnAverage) {
  Rng rng(173);
  double maxsub_total = 0.0;
  double greedy_total = 0.0;
  for (int round = 0; round < 30; ++round) {
    CoverageFunction f = CoverageFunction::Random(10, 16, 0.5, rng);
    maxsub_total += MaxSub(f, 0.1).profit;
    greedy_total += Greedy(f).profit;
  }
  EXPECT_GE(maxsub_total, 0.98 * greedy_total);
}

TEST(MatroidLocalSearchTest, RespectsConstraints) {
  Rng rng(177);
  for (int round = 0; round < 20; ++round) {
    CoverageFunction f = CoverageFunction::Random(12, 16, 0.3, rng);
    // Three groups of four, capacity 1 each.
    PartitionMatroid matroid =
        PartitionMatroid::Create({0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2},
                                 {1, 1, 1})
            .value();
    SelectionResult result = MaxSubMatroid(f, {&matroid}, 0.1);
    EXPECT_TRUE(matroid.IsIndependent(result.selected));
    EXPECT_LE(result.selected.size(), 3u);
  }
}

TEST(MatroidLocalSearchTest, NearOptimalUnderPartitionMatroid) {
  Rng rng(179);
  for (int round = 0; round < 20; ++round) {
    CoverageFunction f = CoverageFunction::Random(10, 14, 0.3, rng);
    PartitionMatroid matroid =
        PartitionMatroid::Create({0, 0, 0, 0, 0, 1, 1, 1, 1, 1}, {2, 2})
            .value();
    SelectionResult opt = BruteForce(f, &matroid);
    SelectionResult local = MaxSubMatroid(f, {&matroid}, 0.05);
    // Guarantee is 1/(k+eps) = ~1/1; in practice expect close to optimal.
    EXPECT_GE(local.profit, 0.6 * opt.profit - 1e-9) << "round " << round;
  }
}

TEST(GraspTest, HillClimbFindsModularOptimum) {
  ModularFunction f({1.0, -2.0, 3.0, -0.5, 2.0});
  SelectionResult result = Grasp(f, GraspParams{1, 1, 7});
  EXPECT_EQ(result.selected, (std::vector<SourceHandle>{0, 2, 4}));
}

TEST(GraspTest, DeterministicForSeed) {
  Rng rng(181);
  CoverageFunction f = CoverageFunction::Random(10, 15, 0.4, rng);
  SelectionResult a = Grasp(f, GraspParams{3, 5, 99});
  SelectionResult b = Grasp(f, GraspParams{3, 5, 99});
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_DOUBLE_EQ(a.profit, b.profit);
}

TEST(GraspTest, MoreRestartsNeverHurt) {
  Rng rng(191);
  for (int round = 0; round < 10; ++round) {
    CoverageFunction f = CoverageFunction::Random(10, 15, 0.5, rng);
    const double one = Grasp(f, GraspParams{2, 1, 7}).profit;
    const double many = Grasp(f, GraspParams{2, 12, 7}).profit;
    EXPECT_GE(many, one - 1e-9);
  }
}

TEST(GraspTest, NearOptimalOnRandomInstances) {
  Rng rng(193);
  for (int round = 0; round < 20; ++round) {
    CoverageFunction f = CoverageFunction::Random(9, 12, 0.4, rng);
    SelectionResult opt = BruteForce(f);
    SelectionResult grasp = Grasp(f, GraspParams{3, 10, 5});
    EXPECT_GE(grasp.profit, 0.9 * opt.profit - 1e-9) << "round " << round;
  }
}

TEST(GraspTest, RespectsMatroid) {
  Rng rng(197);
  CoverageFunction f = CoverageFunction::Random(8, 12, 0.2, rng);
  PartitionMatroid matroid =
      PartitionMatroid::Create({0, 0, 0, 0, 1, 1, 1, 1}, {1, 1}).value();
  SelectionResult result = Grasp(f, GraspParams{2, 8, 3}, &matroid);
  EXPECT_TRUE(matroid.IsIndependent(result.selected));
}

TEST(GraspConstructTest, ReusesPickedProfitInsteadOfReEvaluating) {
  // Regression: Construct used to re-call oracle.Profit(selected) after
  // adding the picked candidate although that exact value had just been
  // computed for the pick. The per-round budget is therefore exactly the
  // candidate scan - 1 initial call plus (#feasible unselected) per round,
  // nothing more.
  ModularFunction f({1.0, 2.0, 3.0});
  Rng rng(7);
  const std::vector<SourceHandle> selected =
      internal::GraspConstruct(f, /*kappa=*/1, nullptr, rng, nullptr);
  EXPECT_EQ(selected, (std::vector<SourceHandle>{0, 1, 2}));
  // Rounds scan 3, 2, then 1 candidate; plus the initial Profit({}).
  EXPECT_EQ(f.call_count(), 1u + 3u + 2u + 1u);
}

TEST(GraspConstructTest, CallCountScalesWithFeasibleCandidatesOnly) {
  // Under a capacity-1 matroid only the first round scans everything; the
  // loop then ends with no feasible candidate left, again with zero
  // post-pick re-evaluation.
  ModularFunction f({5.0, 4.0, 3.0, 2.0});
  PartitionMatroid matroid =
      PartitionMatroid::Create({0, 0, 0, 0}, {1}).value();
  Rng rng(11);
  const std::vector<SourceHandle> selected =
      internal::GraspConstruct(f, /*kappa=*/1, &matroid, rng, nullptr);
  EXPECT_EQ(selected, (std::vector<SourceHandle>{0}));
  EXPECT_EQ(f.call_count(), 1u + 4u);
}

TEST(MaxSubFromTest, WarmStartReachesSameQualityAsColdStart) {
  Rng rng(211);
  for (int round = 0; round < 15; ++round) {
    CoverageFunction f = CoverageFunction::Random(10, 14, 0.4, rng);
    SelectionResult cold = MaxSub(f, 0.1);
    // Warm starts from several seeds must reach at least cold quality
    // minus local-optimum slack; from the cold optimum itself, exactly it.
    SelectionResult warm_same = MaxSubFrom(f, cold.selected, 0.1);
    EXPECT_GE(warm_same.profit, cold.profit - 1e-9);
    SelectionResult warm_empty = MaxSubFrom(f, {}, 0.1);
    EXPECT_GE(warm_empty.profit, 0.5 * cold.profit - 1e-9);
  }
}

TEST(MaxSubFromTest, ImprovesAPoorStart) {
  ModularFunction f({3.0, -2.0, 5.0, -1.0});
  // Start from the worst possible set.
  SelectionResult result = MaxSubFrom(f, {1, 3}, 0.1);
  EXPECT_EQ(result.selected, (std::vector<SourceHandle>{0, 2}));
  EXPECT_DOUBLE_EQ(result.profit, 8.0);
}

TEST(OracleCallCountingTest, CallsAreCounted) {
  ModularFunction f({1.0, 2.0, 3.0});
  EXPECT_EQ(f.call_count(), 0u);
  SelectionResult result = Greedy(f);
  EXPECT_EQ(result.oracle_calls, f.call_count());
  f.ResetCallCount();
  EXPECT_EQ(f.call_count(), 0u);
}

}  // namespace
}  // namespace freshsel::selection
