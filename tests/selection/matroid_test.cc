#include "selection/matroid.h"

#include <gtest/gtest.h>

namespace freshsel::selection {
namespace {

TEST(PartitionMatroidTest, CreateValidates) {
  EXPECT_FALSE(PartitionMatroid::Create({0, 1, 5}, {1, 1}).ok());  // Group 5.
  EXPECT_FALSE(PartitionMatroid::Create({0, 0}, {0}).ok());  // Capacity 0.
  EXPECT_TRUE(PartitionMatroid::Create({0, 0, 1}, {1, 2}).ok());
}

TEST(PartitionMatroidTest, IndependenceRespectsCapacities) {
  // Elements 0,1,2 in group 0 (cap 1); elements 3,4 in group 1 (cap 2).
  PartitionMatroid m =
      PartitionMatroid::Create({0, 0, 0, 1, 1}, {1, 2}).value();
  EXPECT_TRUE(m.IsIndependent({}));
  EXPECT_TRUE(m.IsIndependent({0}));
  EXPECT_TRUE(m.IsIndependent({0, 3, 4}));
  EXPECT_FALSE(m.IsIndependent({0, 1}));
  EXPECT_FALSE(m.IsIndependent({0, 1, 2}));
}

TEST(PartitionMatroidTest, CanAdd) {
  PartitionMatroid m =
      PartitionMatroid::Create({0, 0, 1, 1}, {1, 2}).value();
  EXPECT_TRUE(m.CanAdd({}, 0));
  EXPECT_FALSE(m.CanAdd({0}, 1));  // Group 0 full.
  EXPECT_TRUE(m.CanAdd({0, 2}, 3));
  EXPECT_FALSE(m.CanAdd({2, 3}, 2));  // Group 1 already at capacity 2.
}

TEST(PartitionMatroidTest, ConflictsWith) {
  PartitionMatroid m =
      PartitionMatroid::Create({0, 0, 0, 1}, {1, 1}).value();
  EXPECT_EQ(m.ConflictsWith({0, 3}, 1),
            (std::vector<SourceHandle>{0}));
  EXPECT_TRUE(m.ConflictsWith({3}, 1).empty());
  EXPECT_EQ(m.GroupOf(3), 1u);
  EXPECT_EQ(m.CapacityOf(0), 1u);
  EXPECT_EQ(m.element_count(), 4u);
  EXPECT_EQ(m.group_count(), 2u);
}

TEST(PartitionMatroidTest, DownwardClosedProperty) {
  // Any subset of an independent set is independent.
  PartitionMatroid m =
      PartitionMatroid::Create({0, 0, 1, 1, 2}, {1, 2, 1}).value();
  const std::vector<SourceHandle> independent{0, 2, 3, 4};
  ASSERT_TRUE(m.IsIndependent(independent));
  for (std::size_t skip = 0; skip < independent.size(); ++skip) {
    std::vector<SourceHandle> subset;
    for (std::size_t i = 0; i < independent.size(); ++i) {
      if (i != skip) subset.push_back(independent[i]);
    }
    EXPECT_TRUE(m.IsIndependent(subset));
  }
}

}  // namespace
}  // namespace freshsel::selection
