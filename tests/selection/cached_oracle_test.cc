#include "selection/cached_oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "selection/algorithms.h"

namespace freshsel::selection {
namespace {

/// Modular profit with a gain/cost split, counting underlying evaluations.
class ModularGainCost : public GainCostFunction {
 public:
  ModularGainCost(std::vector<double> weights, std::vector<double> costs,
                  double budget)
      : weights_(std::move(weights)),
        costs_(std::move(costs)),
        budget_(budget) {}

  std::size_t universe_size() const override { return weights_.size(); }
  double Gain(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    double total = 0.0;
    for (SourceHandle e : set) total += weights_[e];
    return total;
  }
  double Cost(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    double total = 0.0;
    for (SourceHandle e : set) total += costs_[e];
    return total;
  }
  double Profit(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    double total = 0.0;
    for (SourceHandle e : set) total += weights_[e] - costs_[e];
    return total;
  }
  double budget() const override { return budget_; }
  bool thread_safe() const override { return true; }

 private:
  std::vector<double> weights_;
  std::vector<double> costs_;
  double budget_;
};

TEST(CachedProfitOracleTest, RepeatEvaluationsHitTheCache) {
  ModularGainCost base({1.0, 2.0, 3.0}, {0.1, 0.2, 0.3}, 10.0);
  CachedProfitOracle cached(base);

  const std::vector<SourceHandle> set = {0, 2};
  const double first = cached.Profit(set);
  const double second = cached.Profit(set);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(base.call_count(), 1u);  // Only the miss reached the base.
  EXPECT_EQ(cached.call_count(), 1u);

  const auto stats = cached.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(CachedProfitOracleTest, ProfitGainCostAreCachedIndependently) {
  ModularGainCost base({1.0, 2.0}, {0.5, 0.5}, 10.0);
  CachedProfitOracle cached(base);
  const std::vector<SourceHandle> set = {0, 1};
  // Same key, three different evaluations: three misses, no cross-talk.
  EXPECT_DOUBLE_EQ(cached.Profit(set), base.Profit(set));
  EXPECT_DOUBLE_EQ(cached.Gain(set), base.Gain(set));
  EXPECT_DOUBLE_EQ(cached.Cost(set), base.Cost(set));
  EXPECT_EQ(cached.stats().misses, 3u);
  EXPECT_EQ(cached.stats().hits, 0u);
  EXPECT_DOUBLE_EQ(cached.budget(), 10.0);
}

TEST(CachedProfitOracleTest, DistinctSetsDoNotCollide) {
  ModularGainCost base({1.0, 2.0, 4.0, 8.0}, {0, 0, 0, 0}, 100.0);
  CachedProfitOracle cached(base);
  // All 16 subsets: distinct canonical keys, distinct values.
  for (std::uint32_t bits = 0; bits < 16; ++bits) {
    std::vector<SourceHandle> set;
    for (std::uint32_t e = 0; e < 4; ++e) {
      if ((bits >> e) & 1) set.push_back(e);
    }
    EXPECT_DOUBLE_EQ(cached.Profit(set), static_cast<double>(bits));
  }
  EXPECT_EQ(cached.stats().misses, 16u);
  for (std::uint32_t bits = 0; bits < 16; ++bits) {
    std::vector<SourceHandle> set;
    for (std::uint32_t e = 0; e < 4; ++e) {
      if ((bits >> e) & 1) set.push_back(e);
    }
    EXPECT_DOUBLE_EQ(cached.Profit(set), static_cast<double>(bits));
  }
  EXPECT_EQ(cached.stats().hits, 16u);
}

TEST(CachedProfitOracleTest, ClearCachesForcesReEvaluation) {
  ModularGainCost base({1.0}, {0.0}, 1.0);
  CachedProfitOracle cached(base);
  cached.Profit({0});
  cached.Profit({0});
  cached.ClearCaches();
  EXPECT_EQ(cached.stats().hits, 0u);
  EXPECT_EQ(cached.stats().misses, 0u);
  cached.Profit({0});
  EXPECT_EQ(cached.stats().misses, 1u);
  EXPECT_EQ(base.call_count(), 2u);
}

TEST(CachedProfitOracleTest, SelectionThroughCacheMatchesDirect) {
  ModularGainCost base({3.0, -1.0, 2.0, 0.5}, {0.5, 0.5, 0.5, 0.2}, 100.0);
  CachedProfitOracle cached(base);
  SelectionResult direct = Greedy(base);
  SelectionResult through_cache = Greedy(cached);
  EXPECT_EQ(direct.selected, through_cache.selected);
  EXPECT_DOUBLE_EQ(direct.profit, through_cache.profit);
}

TEST(CachedProfitOracleTest, SharesBaseThreadSafetyAndIsRaceFreeItself) {
  ModularGainCost base({1.0, 2.0, 3.0, 4.0}, {0, 0, 0, 0}, 100.0);
  CachedProfitOracle cached(base);
  EXPECT_TRUE(cached.thread_safe());
  // Concurrent mixed hits and misses; exercised under TSan in the
  // sanitizer CI matrix.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cached, t] {
      for (std::uint32_t round = 0; round < 50; ++round) {
        const SourceHandle a = static_cast<SourceHandle>((round + t) % 4);
        const SourceHandle b = static_cast<SourceHandle>(round % 4);
        cached.Profit(a == b ? std::vector<SourceHandle>{a}
                             : std::vector<SourceHandle>{std::min(a, b),
                                                         std::max(a, b)});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto stats = cached.stats();
  EXPECT_EQ(stats.hits + stats.misses, 200u);
  EXPECT_EQ(cached.call_count(), stats.misses);
}

}  // namespace
}  // namespace freshsel::selection
