// Decision-log audit suite: the per-round audit trail recorded through
// GreedyOptions/GraspParams/BudgetedGreedyOptions::decision_log must
// reconstruct the selection exactly - same acceptance order, bit-identical
// telescoping gains and final profit - so a committed RunReport explains a
// run without re-executing it. Under -DFRESHSEL_OBS=OFF recording compiles
// out and the log stays empty; the suite skips rather than asserts there.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/decision_log.h"
#include "selection/algorithms.h"
#include "selection/budgeted_greedy.h"

namespace freshsel::selection {
namespace {

/// Weighted-coverage submodular profit with additive costs, small enough
/// that every algorithm terminates in a handful of rounds but rich enough
/// that marginal gains are all distinct.
class CoverageOracle : public ProfitFunction {
 public:
  CoverageOracle() {
    covers_ = {{0, 1, 2}, {2, 3}, {4, 5, 6}, {0, 6}, {7}, {1, 3, 5, 7}};
    item_weights_ = {1.0, 0.75, 0.5, 1.25, 0.875, 0.625, 1.5, 0.9375};
    costs_ = {0.25, 0.125, 0.375, 0.5, 0.0625, 0.1875};
  }

  std::size_t universe_size() const override { return covers_.size(); }

  double Profit(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    std::vector<bool> covered(item_weights_.size(), false);
    double cost = 0.0;
    for (SourceHandle e : set) {
      cost += costs_[e];
      for (int item : covers_[e]) covered[item] = true;
    }
    double gain = 0.0;
    for (std::size_t i = 0; i < covered.size(); ++i) {
      if (covered[i]) gain += item_weights_[i];
    }
    return gain - cost;
  }

 private:
  std::vector<std::vector<int>> covers_;
  std::vector<double> item_weights_;
  std::vector<double> costs_;
};

/// Gain/cost split of the same structure for BudgetedGreedy.
class BudgetedCoverageOracle : public GainCostFunction {
 public:
  explicit BudgetedCoverageOracle(double budget) : budget_(budget) {}

  std::size_t universe_size() const override {
    return inner_.universe_size();
  }
  double Profit(const std::vector<SourceHandle>& set) const override {
    return inner_.Profit(set);
  }
  double Gain(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    return inner_.Profit(set) + Cost(set);  // Undo the cost term.
  }
  double Cost(const std::vector<SourceHandle>& set) const override {
    const std::vector<double> costs = {0.25,   0.125, 0.375,
                                       0.5,    0.0625, 0.1875};
    double total = 0.0;
    for (SourceHandle e : set) total += costs[e];
    return total;
  }
  double budget() const override { return budget_; }

 private:
  CoverageOracle inner_;
  double budget_;
};

/// Replays the log against the result: acceptance order, telescoping
/// gains, and the final profit must all match bit-identically (the
/// algorithm computed the gains from these very doubles).
void ExpectLogReconstructsResult(const obs::DecisionLog& log,
                                 const SelectionResult& result) {
  ASSERT_EQ(log.records().size(), result.selected.size());
  std::vector<SourceHandle> chosen;
  double prev_profit = 0.0;
  for (std::size_t i = 0; i < log.records().size(); ++i) {
    const obs::DecisionRecord& record = log.records()[i];
    EXPECT_EQ(record.kind, obs::DecisionKind::kAdd) << "round " << i;
    EXPECT_EQ(record.round, i);
    if (i > 0) {
      EXPECT_EQ(record.gain, record.profit - prev_profit) << "round " << i;
    }
    prev_profit = record.profit;
    chosen.push_back(static_cast<SourceHandle>(record.chosen));
  }
  EXPECT_EQ(log.records().back().profit, result.profit);
  std::vector<SourceHandle> sorted = chosen;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, result.selected);
}

TEST(DecisionLogAuditTest, LazyGreedyLogReconstructsSelection) {
  CoverageOracle oracle;
  obs::DecisionLog log;
  GreedyOptions options;
  options.decision_log = &log;
  const SelectionResult result = Greedy(oracle, nullptr, options);
  if (log.empty()) GTEST_SKIP() << "observability compiled out";
  EXPECT_EQ(log.algorithm(), "greedy/lazy");
  ExpectLogReconstructsResult(log, result);
  // Oracle-call attribution never exceeds the run's total (the empty-set
  // seed evaluation and final sub-epsilon rescores are unattributed).
  std::uint64_t logged_calls = 0;
  for (const obs::DecisionRecord& record : log.records()) {
    logged_calls += record.oracle_calls;
  }
  EXPECT_LE(logged_calls, result.oracle_calls);
}

TEST(DecisionLogAuditTest, EagerAndLazyLogsAgreeBitIdentically) {
  CoverageOracle oracle;
  obs::DecisionLog lazy_log;
  GreedyOptions lazy_options;
  lazy_options.decision_log = &lazy_log;
  const SelectionResult lazy = Greedy(oracle, nullptr, lazy_options);

  obs::DecisionLog eager_log;
  GreedyOptions eager_options;
  eager_options.lazy = false;
  eager_options.decision_log = &eager_log;
  const SelectionResult eager = Greedy(oracle, nullptr, eager_options);

  if (lazy_log.empty()) GTEST_SKIP() << "observability compiled out";
  EXPECT_EQ(lazy_log.algorithm(), "greedy/lazy");
  EXPECT_EQ(eager_log.algorithm(), "greedy/eager");
  EXPECT_EQ(lazy.selected, eager.selected);
  ASSERT_EQ(lazy_log.records().size(), eager_log.records().size());
  for (std::size_t i = 0; i < lazy_log.records().size(); ++i) {
    EXPECT_EQ(lazy_log.records()[i].chosen, eager_log.records()[i].chosen);
    EXPECT_EQ(lazy_log.records()[i].gain, eager_log.records()[i].gain);
    EXPECT_EQ(lazy_log.records()[i].profit,
              eager_log.records()[i].profit);
  }
}

TEST(DecisionLogAuditTest, RunnerUpMarginsAreConsistent) {
  CoverageOracle oracle;
  obs::DecisionLog log;
  GreedyOptions options;
  options.lazy = false;  // The eager scan always knows the runner-up.
  options.decision_log = &log;
  Greedy(oracle, nullptr, options);
  if (log.empty()) GTEST_SKIP() << "observability compiled out";
  bool saw_runner_up = false;
  for (const obs::DecisionRecord& record : log.records()) {
    if (!record.has_runner_up) continue;
    saw_runner_up = true;
    EXPECT_NE(record.runner_up, record.chosen);
    EXPECT_GE(record.margin, 0.0);
    EXPECT_EQ(record.margin, record.score - record.runner_up_score);
  }
  // Six candidates with distinct marginals: at least the first round has
  // a runner-up.
  EXPECT_TRUE(saw_runner_up);
}

TEST(DecisionLogAuditTest, StochasticGreedyTagsSampleSizes) {
  CoverageOracle oracle;
  obs::DecisionLog log;
  GreedyOptions options;
  options.stochastic = true;
  options.stochastic_seed = 7;
  options.decision_log = &log;
  const SelectionResult result = Greedy(oracle, nullptr, options);
  if (log.empty()) GTEST_SKIP() << "observability compiled out";
  EXPECT_EQ(log.algorithm(), "greedy/stochastic");
  ASSERT_EQ(log.records().size(), result.selected.size());
  for (const obs::DecisionRecord& record : log.records()) {
    EXPECT_GT(record.sample_size, 0u);
    EXPECT_LE(record.sample_size, oracle.universe_size());
  }
}

TEST(DecisionLogAuditTest, BudgetedGreedyNamesItsVariant) {
  BudgetedCoverageOracle oracle(/*budget=*/10.0);  // Loose: phase 1 wins.
  obs::DecisionLog log;
  BudgetedGreedyOptions options;
  options.decision_log = &log;
  const SelectionResult result = BudgetedGreedy(oracle, options);
  if (log.empty()) GTEST_SKIP() << "observability compiled out";
  EXPECT_EQ(log.algorithm(), "budgeted/lazy");
  ASSERT_FALSE(log.records().size() == 0);
  ASSERT_FALSE(result.selected.empty());
  for (const obs::DecisionRecord& record : log.records()) {
    EXPECT_EQ(record.kind, obs::DecisionKind::kAdd);
  }
}

TEST(DecisionLogAuditTest, GraspTagsRestarts) {
  CoverageOracle oracle;
  obs::DecisionLog log;
  GraspParams params;
  params.kappa = 2;
  params.restarts = 3;
  params.seed = 11;
  params.decision_log = &log;
  Grasp(oracle, params);
  if (log.empty()) GTEST_SKIP() << "observability compiled out";
  EXPECT_EQ(log.algorithm(), "grasp");
  ASSERT_FALSE(log.records().size() == 0);
  std::uint32_t max_restart = 0;
  for (const obs::DecisionRecord& record : log.records()) {
    EXPECT_LT(record.restart, 3u);
    max_restart = std::max(max_restart, record.restart);
    const bool known_kind = record.kind == obs::DecisionKind::kAdd ||
                            record.kind == obs::DecisionKind::kRemove ||
                            record.kind == obs::DecisionKind::kSwap;
    EXPECT_TRUE(known_kind);
  }
  EXPECT_GT(max_restart, 0u);  // Later restarts audit too.
}

}  // namespace
}  // namespace freshsel::selection
