// Acceleration-layer equivalence suite: the lazy (CELF) evaluation order,
// the memoizing oracle decorator, and the thread-pool parallel paths are
// pure accelerations - selections and profits must be byte-identical to
// the plain implementations, on synthetic functions and on full BL / BL+
// scenario oracles, across seeds.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "harness/learned_scenario.h"
#include "selection/algorithms.h"
#include "selection/budgeted_greedy.h"
#include "selection/cached_oracle.h"
#include "selection/cost.h"
#include "workloads/bl_generator.h"
#include "workloads/blplus_generator.h"

namespace freshsel::selection {
namespace {

/// Weighted-coverage-minus-cost profit (monotone submodular gain, additive
/// cost), thread-safe via stateless evaluation.
class CoverageFunction : public ProfitFunction {
 public:
  CoverageFunction(std::vector<std::vector<int>> covers,
                   std::vector<double> item_weights,
                   std::vector<double> costs)
      : covers_(std::move(covers)),
        item_weights_(std::move(item_weights)),
        costs_(std::move(costs)) {}

  std::size_t universe_size() const override { return covers_.size(); }
  double Profit(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    std::vector<bool> covered(item_weights_.size(), false);
    double cost = 0.0;
    for (SourceHandle e : set) {
      cost += costs_[e];
      for (int item : covers_[e]) covered[item] = true;
    }
    double gain = 0.0;
    for (std::size_t i = 0; i < covered.size(); ++i) {
      if (covered[i]) gain += item_weights_[i];
    }
    return gain - cost;
  }
  bool thread_safe() const override { return true; }

  static CoverageFunction Random(std::size_t n_elements,
                                 std::size_t n_items, double cost_scale,
                                 Rng& rng) {
    std::vector<std::vector<int>> covers(n_elements);
    for (auto& c : covers) {
      const std::size_t k = 1 + rng.NextBounded(n_items / 2);
      for (std::size_t j = 0; j < k; ++j) {
        c.push_back(static_cast<int>(rng.NextBounded(n_items)));
      }
    }
    std::vector<double> weights(n_items);
    for (auto& weight : weights) weight = rng.UniformDouble(0.1, 1.0);
    std::vector<double> costs(n_elements);
    for (auto& cost : costs) cost = rng.UniformDouble(0.0, cost_scale);
    return CoverageFunction(std::move(covers), std::move(weights),
                            std::move(costs));
  }

 private:
  std::vector<std::vector<int>> covers_;
  std::vector<double> item_weights_;
  std::vector<double> costs_;
};

void ExpectIdentical(const SelectionResult& a, const SelectionResult& b,
                     const char* what, std::uint64_t seed) {
  EXPECT_EQ(a.selected, b.selected) << what << ", seed " << seed;
  // Byte-identical, not approximately equal: accelerations reuse the very
  // same floating-point values the plain path computes.
  EXPECT_EQ(a.profit, b.profit) << what << ", seed " << seed;
}

TEST(GreedyEquivalenceTest, LazyCachedAndPlainAgreeAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    CoverageFunction f = CoverageFunction::Random(20, 30, 0.4, rng);
    SelectionResult eager = Greedy(f, nullptr, GreedyOptions{false});
    SelectionResult lazy = Greedy(f, nullptr, GreedyOptions{true});
    CachedProfitOracle cached(f);
    SelectionResult through_cache = Greedy(cached);
    ExpectIdentical(lazy, eager, "lazy vs eager", seed);
    ExpectIdentical(through_cache, eager, "cached vs eager", seed);
    EXPECT_LE(lazy.oracle_calls, eager.oracle_calls) << "seed " << seed;
  }
}

TEST(GreedyEquivalenceTest, LazyMatchesEagerUnderMatroid) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 13);
    CoverageFunction f = CoverageFunction::Random(12, 20, 0.3, rng);
    PartitionMatroid matroid =
        PartitionMatroid::Create({0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2},
                                 {2, 2, 2})
            .value();
    SelectionResult eager = Greedy(f, &matroid, GreedyOptions{false});
    SelectionResult lazy = Greedy(f, &matroid, GreedyOptions{true});
    ExpectIdentical(lazy, eager, "matroid lazy vs eager", seed);
  }
}

TEST(GraspEquivalenceTest, ParallelPoolMatchesSerialAcrossSeeds) {
  ThreadPool pool(4);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 17);
    CoverageFunction f = CoverageFunction::Random(14, 22, 0.4, rng);
    GraspParams serial{3, 4, seed, nullptr};
    GraspParams parallel{3, 4, seed, &pool};
    ExpectIdentical(Grasp(f, parallel), Grasp(f, serial),
                    "grasp pool vs serial", seed);
  }
}

/// Full-pipeline fixture: BL scenario -> learned models -> estimator ->
/// ProfitOracle, the configuration the paper's experiments run.
class ScenarioEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    workloads::BlConfig config;
    config.seed = GetParam();
    config.locations = 8;
    config.categories = 3;
    config.horizon = 220;
    config.t0 = 150;
    config.scale = 0.3;
    config.n_uniform = 2;
    config.n_location_specialists = 4;
    config.n_category_specialists = 3;
    config.n_medium = 2;
    scenario_ = std::make_unique<workloads::Scenario>(
        workloads::GenerateBlScenario(config).value());
  }

  /// Estimator + oracle over `sources` (the scenario's own by default).
  struct Pipeline {
    std::unique_ptr<harness::LearnedScenario> learned;
    std::unique_ptr<estimation::QualityEstimator> estimator;
    std::unique_ptr<ProfitOracle> oracle;
  };

  Pipeline MakePipeline(double budget,
                        const std::vector<source::SourceHistory>* sources =
                            nullptr) {
    Pipeline p;
    p.learned = std::make_unique<harness::LearnedScenario>(
        (sources == nullptr
             ? harness::LearnScenario(*scenario_)
             : harness::LearnScenarioWithSources(*scenario_, *sources))
            .value());
    p.estimator = std::make_unique<estimation::QualityEstimator>(
        estimation::QualityEstimator::Create(
            scenario_->world, p.learned->world_model, {},
            MakeTimePoints(scenario_->t0 + 14, 3, 14))
            .value());
    std::vector<const estimation::SourceProfile*> profiles;
    for (const auto& profile : p.learned->profiles) {
      profiles.push_back(&profile);
      EXPECT_TRUE(p.estimator->AddSource(&profile).ok());
    }
    ProfitOracle::Config config;
    config.budget = budget;
    p.oracle = std::make_unique<ProfitOracle>(
        ProfitOracle::Create(p.estimator.get(),
                             CostModel::ItemShareCosts(profiles), config)
            .value());
    return p;
  }

  std::unique_ptr<workloads::Scenario> scenario_;
};

TEST_P(ScenarioEquivalenceTest, GreedyVariantsAgreeOnBlOracle) {
  Pipeline p = MakePipeline(std::numeric_limits<double>::infinity());
  SelectionResult eager = Greedy(*p.oracle, nullptr, GreedyOptions{false});
  SelectionResult lazy = Greedy(*p.oracle, nullptr, GreedyOptions{true});
  CachedProfitOracle cached(*p.oracle);
  SelectionResult through_cache = Greedy(cached);
  ExpectIdentical(lazy, eager, "BL lazy vs eager", GetParam());
  ExpectIdentical(through_cache, eager, "BL cached vs eager", GetParam());
}

TEST_P(ScenarioEquivalenceTest, BudgetedGreedyVariantsAgreeOnBlOracle) {
  for (double budget : {0.2, 0.5}) {
    Pipeline p = MakePipeline(budget);
    SelectionResult eager =
        BudgetedGreedy(*p.oracle, BudgetedGreedyOptions{false});
    SelectionResult lazy =
        BudgetedGreedy(*p.oracle, BudgetedGreedyOptions{true});
    ExpectIdentical(lazy, eager, "BL budgeted lazy vs eager", GetParam());
    EXPECT_LE(lazy.oracle_calls, eager.oracle_calls);
  }
}

TEST_P(ScenarioEquivalenceTest, GraspPoolMatchesSerialOnBlOracle) {
  Pipeline p = MakePipeline(std::numeric_limits<double>::infinity());
  ThreadPool pool(3);
  GraspParams serial{2, 3, GetParam(), nullptr};
  GraspParams parallel{2, 3, GetParam(), &pool};
  ExpectIdentical(Grasp(*p.oracle, parallel), Grasp(*p.oracle, serial),
                  "BL grasp pool vs serial", GetParam());
}

TEST_P(ScenarioEquivalenceTest, GreedyVariantsAgreeOnBlPlusRoster) {
  workloads::MicroRoster roster =
      workloads::GenerateBlPlusRoster(*scenario_, /*micro_per_source=*/1,
                                      GetParam())
          .value();
  Pipeline p = MakePipeline(std::numeric_limits<double>::infinity(),
                            &roster.sources);
  SelectionResult eager = Greedy(*p.oracle, nullptr, GreedyOptions{false});
  SelectionResult lazy = Greedy(*p.oracle, nullptr, GreedyOptions{true});
  ExpectIdentical(lazy, eager, "BL+ lazy vs eager", GetParam());
  EXPECT_LE(lazy.oracle_calls, eager.oracle_calls);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioEquivalenceTest,
                         ::testing::Values(3u, 11u, 42u));

}  // namespace
}  // namespace freshsel::selection
