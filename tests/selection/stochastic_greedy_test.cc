#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/random.h"
#include "estimation/source_profile.h"
#include "estimation/world_change_model.h"
#include "selection/algorithms.h"
#include "selection/budgeted_greedy.h"
#include "selection/cached_oracle.h"
#include "selection/set_util.h"
#include "source/source_simulator.h"
#include "world/world_simulator.h"

namespace freshsel::selection {
namespace {

/// Weighted-coverage submodular function minus additive costs (same shape
/// as the algorithms_test oracle): monotone submodular gain, additive
/// cost - the structure stochastic greedy's guarantee assumes.
class CoverageFunction : public ProfitFunction {
 public:
  CoverageFunction(std::vector<std::vector<int>> covers,
                   std::vector<double> item_weights,
                   std::vector<double> costs)
      : covers_(std::move(covers)),
        item_weights_(std::move(item_weights)),
        costs_(std::move(costs)) {}

  std::size_t universe_size() const override { return covers_.size(); }

  double Profit(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    std::vector<bool> covered(item_weights_.size(), false);
    double cost = 0.0;
    for (SourceHandle e : set) {
      cost += costs_[e];
      for (int item : covers_[e]) covered[item] = true;
    }
    double gain = 0.0;
    for (std::size_t i = 0; i < covered.size(); ++i) {
      if (covered[i]) gain += item_weights_[i];
    }
    return gain - cost;
  }

  static CoverageFunction Random(std::size_t n_elements,
                                 std::size_t n_items, double cost_scale,
                                 Rng& rng) {
    std::vector<std::vector<int>> covers(n_elements);
    for (auto& c : covers) {
      const std::size_t k = 1 + rng.NextBounded(n_items / 2);
      for (std::size_t j = 0; j < k; ++j) {
        c.push_back(static_cast<int>(rng.NextBounded(n_items)));
      }
    }
    std::vector<double> weights(n_items);
    for (auto& weight : weights) weight = rng.UniformDouble(0.1, 1.0);
    std::vector<double> costs(n_elements);
    for (auto& cost : costs) cost = rng.UniformDouble(0.0, cost_scale);
    return CoverageFunction(std::move(covers), std::move(weights),
                            std::move(costs));
  }

 private:
  std::vector<std::vector<int>> covers_;
  std::vector<double> item_weights_;
  std::vector<double> costs_;
};

/// Modular (additive) profit for the degenerate-termination cases.
class ModularFunction : public ProfitFunction {
 public:
  explicit ModularFunction(std::vector<double> weights)
      : weights_(std::move(weights)) {}
  std::size_t universe_size() const override { return weights_.size(); }
  double Profit(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    double total = 0.0;
    for (SourceHandle e : set) total += weights_[e];
    return total;
  }

 private:
  std::vector<double> weights_;
};

/// Budgeted variant: coverage gain, additive cost, fixed budget.
class CoverageGainCost : public GainCostFunction {
 public:
  CoverageGainCost(CoverageFunction gain_part, std::vector<double> costs,
                   double budget)
      : gain_part_(std::move(gain_part)),
        costs_(std::move(costs)),
        budget_(budget) {}

  std::size_t universe_size() const override {
    return gain_part_.universe_size();
  }
  double Profit(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    return gain_part_.Profit(set);
  }
  double Gain(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    return gain_part_.Profit(set);
  }
  double Cost(const std::vector<SourceHandle>& set) const override {
    double total = 0.0;
    for (SourceHandle e : set) total += costs_[e];
    return total;
  }
  double budget() const override { return budget_; }

 private:
  CoverageFunction gain_part_;
  std::vector<double> costs_;
  double budget_;
};

GreedyOptions Stochastic(std::uint64_t seed, bool lazy = true,
                         bool incremental = true, double eps = 0.1,
                         std::size_t k = 0) {
  GreedyOptions options;
  options.lazy = lazy;
  options.incremental = incremental;
  options.stochastic = true;
  options.stochastic_epsilon = eps;
  options.stochastic_seed = seed;
  options.stochastic_k = k;
  return options;
}

TEST(StochasticSampleSizeTest, MatchesFormula) {
  // ceil((n/k) * ln(1/eps)).
  EXPECT_EQ(internal::StochasticSampleSize(100, 10, 0.1),
            static_cast<std::size_t>(std::ceil(10.0 * std::log(10.0))));
  EXPECT_EQ(internal::StochasticSampleSize(100, 10, 0.2),
            static_cast<std::size_t>(std::ceil(10.0 * std::log(5.0))));
  EXPECT_EQ(internal::StochasticSampleSize(60, 20, 0.1),
            static_cast<std::size_t>(std::ceil(3.0 * std::log(10.0))));
  // Floors: never below one candidate per round, k never below 1.
  EXPECT_EQ(internal::StochasticSampleSize(0, 5, 0.1), 1u);
  EXPECT_GE(internal::StochasticSampleSize(10, 0, 0.5), 1u);
  // eps clamped into (0, 1): out-of-range values stay finite.
  EXPECT_GE(internal::StochasticSampleSize(10, 2, 0.0), 1u);
  EXPECT_EQ(internal::StochasticSampleSize(10, 2, 1.0), 1u);
  // Smaller eps -> larger samples (monotonicity of the guarantee knob).
  EXPECT_GT(internal::StochasticSampleSize(100, 10, 0.05),
            internal::StochasticSampleSize(100, 10, 0.2));
}

TEST(DeriveSampleKTest, MatroidEffectiveRank) {
  // No matroid: k = n (one sample of ~ln(1/eps) candidates per round).
  EXPECT_EQ(internal::DeriveSampleK(7, nullptr), 7u);
  EXPECT_EQ(internal::DeriveSampleK(0, nullptr), 1u);
  // Two groups of 3, capacities 2 and 10: rank = min(3,2) + min(3,10).
  PartitionMatroid matroid =
      PartitionMatroid::Create({0, 0, 0, 1, 1, 1}, {2, 10}).value();
  EXPECT_EQ(internal::DeriveSampleK(6, &matroid), 5u);
  // A universe smaller than the matroid only counts its own elements.
  EXPECT_EQ(internal::DeriveSampleK(2, &matroid), 2u);
}

TEST(StochasticGreedyTest, DeterministicPerSeed) {
  Rng rng(401);
  CoverageFunction f = CoverageFunction::Random(30, 40, 0.3, rng);
  const SelectionResult a = Greedy(f, nullptr, Stochastic(7));
  const SelectionResult b = Greedy(f, nullptr, Stochastic(7));
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_DOUBLE_EQ(a.profit, b.profit);
  EXPECT_EQ(a.oracle_calls, b.oracle_calls);
}

TEST(StochasticGreedyTest, SelectionsIdenticalAcrossLazyAndEager) {
  // The sampling stream is drawn once per round before any scoring and the
  // winner is always freshly scored, so the lazy stale-bound skipping must
  // not change what gets selected - only how many evaluations it costs.
  Rng rng(403);
  for (int round = 0; round < 10; ++round) {
    CoverageFunction f = CoverageFunction::Random(25, 30, 0.4, rng);
    for (std::uint64_t seed : {1u, 17u, 99u}) {
      const SelectionResult lazy =
          Greedy(f, nullptr, Stochastic(seed, /*lazy=*/true));
      const SelectionResult eager =
          Greedy(f, nullptr, Stochastic(seed, /*lazy=*/false));
      EXPECT_EQ(lazy.selected, eager.selected)
          << "round " << round << " seed " << seed;
      EXPECT_DOUBLE_EQ(lazy.profit, eager.profit);
      // Every skip the lazy pass takes is an evaluation the eager pass
      // actually ran: spent + saved reconstructs the eager budget.
      EXPECT_LE(lazy.oracle_calls, eager.oracle_calls);
      EXPECT_EQ(lazy.oracle_calls + lazy.oracle_calls_saved,
                eager.oracle_calls)
          << "round " << round << " seed " << seed;
    }
  }
}

TEST(StochasticGreedyTest, DifferentSeedsExploreDifferentSamples) {
  // Not a hard guarantee per instance, but across many seeds on an
  // instance with many near-equivalent elements at least one pair of runs
  // must differ - otherwise the sampler is not actually sampling.
  Rng rng(407);
  CoverageFunction f = CoverageFunction::Random(40, 25, 0.2, rng);
  std::vector<std::vector<SourceHandle>> runs;
  bool any_difference = false;
  for (std::uint64_t seed = 1; seed <= 8 && !any_difference; ++seed) {
    runs.push_back(
        Greedy(f, nullptr, Stochastic(seed, true, true, 0.5, 8)).selected);
    if (runs.size() > 1 && runs.back() != runs.front()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(StochasticGreedyTest, FullSampleDegeneratesToExactGreedy) {
  // When the per-round sample covers every feasible candidate (tiny eps,
  // or k = 1 so the ratio is n), stochastic greedy must reproduce the
  // exact eager greedy selection - same argmax, same tie-breaks.
  Rng rng(409);
  for (int round = 0; round < 10; ++round) {
    CoverageFunction f = CoverageFunction::Random(15, 20, 0.4, rng);
    const SelectionResult exact =
        Greedy(f, nullptr, GreedyOptions{/*lazy=*/false});
    const SelectionResult full_sample =
        Greedy(f, nullptr, Stochastic(5, true, true, /*eps=*/0.1,
                                      /*k=*/1));
    EXPECT_EQ(full_sample.selected, exact.selected) << "round " << round;
    EXPECT_DOUBLE_EQ(full_sample.profit, exact.profit);
  }
}

TEST(StochasticGreedyTest, QualityCloseToExactUnderMatroid) {
  // Mirzasoleiman et al.: expected (1 - 1/e - eps) * OPT. On these small
  // instances, demand >= 90% of the exact greedy's profit on average.
  Rng rng(411);
  double stochastic_total = 0.0;
  double exact_total = 0.0;
  for (int round = 0; round < 20; ++round) {
    CoverageFunction f = CoverageFunction::Random(30, 25, 0.2, rng);
    PartitionMatroid matroid =
        PartitionMatroid::Create(std::vector<std::uint32_t>(30, 0), {5})
            .value();
    exact_total += Greedy(f, &matroid).profit;
    stochastic_total +=
        Greedy(f, &matroid, Stochastic(static_cast<std::uint64_t>(round)))
            .profit;
  }
  EXPECT_GE(stochastic_total, 0.9 * exact_total);
}

TEST(StochasticGreedyTest, RespectsMatroid) {
  Rng rng(419);
  CoverageFunction f = CoverageFunction::Random(24, 20, 0.2, rng);
  PartitionMatroid matroid =
      PartitionMatroid::Create(
          {0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2,
           3, 3, 3, 3, 3, 3},
          {2, 2, 2, 2})
          .value();
  for (std::uint64_t seed : {3u, 31u}) {
    const SelectionResult result = Greedy(f, &matroid, Stochastic(seed));
    EXPECT_TRUE(matroid.IsIndependent(result.selected)) << "seed " << seed;
  }
}

TEST(StochasticGreedyTest, OracleCallsBoundedBySampleBudget) {
  // Per round: at most sample_size evaluations (plus the initial empty-set
  // call, plus one final round that finds no improvement). With k fixed at
  // 5 on n = 40 the per-round sample is well under n, so the stochastic
  // run must also undercut the eager scan's quadratic budget.
  Rng rng(421);
  CoverageFunction f = CoverageFunction::Random(40, 30, 0.2, rng);
  const std::size_t sample_size =
      internal::StochasticSampleSize(40, 5, 0.1);
  ASSERT_LT(sample_size, 40u);

  const SelectionResult eager =
      Greedy(f, nullptr, GreedyOptions{/*lazy=*/false});
  const SelectionResult stochastic =
      Greedy(f, nullptr, Stochastic(13, /*lazy=*/false, true, 0.1, 5));
  const std::uint64_t rounds = stochastic.selected.size() + 1;
  EXPECT_LE(stochastic.oracle_calls, 1 + rounds * sample_size);
  EXPECT_LT(stochastic.oracle_calls, eager.oracle_calls);
}

TEST(StochasticGreedyTest, AllNegativeTerminatesEmpty) {
  ModularFunction f({-1.0, -2.0, -0.5});
  const SelectionResult result = Greedy(f, nullptr, Stochastic(5));
  EXPECT_TRUE(result.selected.empty());
  EXPECT_DOUBLE_EQ(result.profit, 0.0);
}

TEST(StochasticGreedyTest, NearZeroMarginalsNotTaken) {
  // The shared improvement threshold applies to the sampled argmax too.
  ModularFunction f({internal::kImprovementEps,
                     internal::kImprovementEps / 2.0, 0.0});
  const SelectionResult result = Greedy(f, nullptr, Stochastic(5));
  EXPECT_TRUE(result.selected.empty());
}

TEST(StochasticGreedyTest, EmptyUniverse) {
  ModularFunction f({});
  const SelectionResult result = Greedy(f, nullptr, Stochastic(5));
  EXPECT_TRUE(result.selected.empty());
  EXPECT_DOUBLE_EQ(result.profit, 0.0);
}

TEST(StochasticGreedyTest, CachedOracleGivesSameSelection) {
  // The cache is value-transparent, so routing the sampled evaluations
  // through CachedProfitOracle must not change the selection; repeated
  // runs on the warmed cache answer from memory.
  Rng rng(431);
  CoverageFunction f = CoverageFunction::Random(20, 25, 0.3, rng);
  CachedProfitOracle cached(f);
  const SelectionResult direct = Greedy(f, nullptr, Stochastic(21));
  const SelectionResult through_cache =
      Greedy(cached, nullptr, Stochastic(21));
  EXPECT_EQ(through_cache.selected, direct.selected);
  EXPECT_DOUBLE_EQ(through_cache.profit, direct.profit);
  const std::uint64_t misses_after_first = cached.stats().misses;
  const SelectionResult warmed = Greedy(cached, nullptr, Stochastic(21));
  EXPECT_EQ(warmed.selected, direct.selected);
  EXPECT_EQ(cached.stats().misses, misses_after_first)
      << "second identical run must be all cache hits";
}

TEST(BudgetedStochasticTest, DeterministicAndWithinBudget) {
  Rng rng(433);
  CoverageFunction gain = CoverageFunction::Random(25, 30, 0.0, rng);
  std::vector<double> costs(25);
  for (auto& c : costs) c = rng.UniformDouble(0.5, 2.0);
  CoverageGainCost oracle(std::move(gain), costs, /*budget=*/6.0);

  BudgetedGreedyOptions options;
  options.stochastic = true;
  options.stochastic_seed = 11;
  const SelectionResult a = BudgetedGreedy(oracle, options);
  const SelectionResult b = BudgetedGreedy(oracle, options);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_DOUBLE_EQ(a.profit, b.profit);
  EXPECT_LE(oracle.Cost(a.selected), oracle.budget() + 1e-9);
}

TEST(BudgetedStochasticTest, LazyAndEagerSelectIdentically) {
  Rng rng(439);
  for (int round = 0; round < 8; ++round) {
    CoverageFunction gain = CoverageFunction::Random(20, 24, 0.0, rng);
    std::vector<double> costs(20);
    for (auto& c : costs) c = rng.UniformDouble(0.5, 2.0);
    CoverageGainCost oracle(std::move(gain), costs, /*budget=*/5.0);
    BudgetedGreedyOptions lazy;
    lazy.stochastic = true;
    lazy.stochastic_seed = 3;
    BudgetedGreedyOptions eager = lazy;
    eager.lazy = false;
    const SelectionResult a = BudgetedGreedy(oracle, lazy);
    const SelectionResult b = BudgetedGreedy(oracle, eager);
    EXPECT_EQ(a.selected, b.selected) << "round " << round;
    EXPECT_DOUBLE_EQ(a.profit, b.profit);
  }
}

TEST(BudgetedStochasticTest, SingletonSafeguardStillApplies) {
  // One expensive element dominates every cheap union; the phase-2
  // safeguard scans all affordable singletons regardless of sampling, so
  // the stochastic run must still find it.
  std::vector<std::vector<int>> covers(9);
  for (int item = 0; item < 12; ++item) covers[8].push_back(item);
  for (int e = 0; e < 8; ++e) covers[e] = {e % 3};
  CoverageFunction gain(std::move(covers),
                        std::vector<double>(12, 1.0),
                        std::vector<double>(9, 0.0));
  std::vector<double> costs(9, 0.5);
  costs[8] = 4.0;  // Affordable alone, not alongside many cheap ones.
  CoverageGainCost oracle(std::move(gain), costs, /*budget=*/4.0);
  BudgetedGreedyOptions options;
  options.stochastic = true;
  options.stochastic_epsilon = 0.5;  // Small samples: miss-prone phase 1.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    options.stochastic_seed = seed;
    const SelectionResult result = BudgetedGreedy(oracle, options);
    EXPECT_EQ(result.selected, (std::vector<SourceHandle>{8}))
        << "seed " << seed;
  }
}

/// Real-estimator fixture (mirrors budgeted_greedy_test): ProfitOracle
/// supports incremental contexts, so this is where the full lazy x
/// incremental grid is exercised end to end.
class EstimatorStochasticTest : public ::testing::Test {
 protected:
  static constexpr TimePoint kT0 = 150;

  void SetUp() override {
    world::DataDomain domain =
        world::DataDomain::Create("loc", 2, "cat", 1).value();
    world::WorldSpec spec{std::move(domain), {}, 200};
    spec.rates.push_back({2.0, 0.01, 0.02, 200});
    spec.rates.push_back({1.0, 0.01, 0.02, 100});
    Rng rng(509);
    world_ = std::make_unique<world::World>(
        world::SimulateWorld(spec, rng).value());
    auto add = [&](const char* name,
                   std::vector<world::SubdomainId> scope,
                   double visibility) {
      source::SourceSpec s;
      s.name = name;
      s.scope = std::move(scope);
      s.schedule = {1, 0};
      s.insert_capture = {0.0, 1.0};
      s.visibility = visibility;
      specs_.push_back(s);
    };
    add("big", {0, 1}, 0.85);
    add("small-a", {0}, 0.6);
    add("small-b", {0}, 0.95);
    add("small-c", {1}, 0.7);
    add("small-d", {1}, 0.9);
    add("small-e", {0}, 0.5);
    add("small-f", {1}, 0.55);
    histories_ = source::SimulateSources(*world_, specs_, rng).value();
    model_ = std::make_unique<estimation::WorldChangeModel>(
        estimation::WorldChangeModel::Learn(*world_, kT0).value());
    profiles_ =
        estimation::LearnSourceProfiles(*world_, histories_, kT0).value();
    estimator_ = std::make_unique<estimation::QualityEstimator>(
        estimation::QualityEstimator::Create(*world_, *model_, {},
                                             {kT0 + 20})
            .value());
    for (const auto& p : profiles_) {
      ASSERT_TRUE(estimator_->AddSource(&p, 1).ok());
    }
  }

  ProfitOracle MakeOracle() {
    ProfitOracle::Config config;
    config.gain = GainModel(GainFamily::kLinear, QualityMetric::kCoverage);
    config.cost_weight = 0.02;
    return ProfitOracle::Create(estimator_.get(),
                                std::vector<double>(specs_.size(), 1.0),
                                config)
        .value();
  }

  std::unique_ptr<world::World> world_;
  std::vector<source::SourceSpec> specs_;
  std::vector<source::SourceHistory> histories_;
  std::unique_ptr<estimation::WorldChangeModel> model_;
  std::vector<estimation::SourceProfile> profiles_;
  std::unique_ptr<estimation::QualityEstimator> estimator_;
};

TEST_F(EstimatorStochasticTest, IdenticalSelectionsAcrossScoringModes) {
  // Same seed, all four scoring modes: the sampled pools are identical and
  // the incremental context's delta evaluations track the plain oracle's
  // values to selection-identical precision on this instance.
  ProfitOracle oracle = MakeOracle();
  ASSERT_TRUE(oracle.supports_incremental());
  std::vector<SourceHandle> reference;
  bool first = true;
  for (bool lazy : {true, false}) {
    for (bool incremental : {true, false}) {
      const SelectionResult result = Greedy(
          oracle, nullptr,
          Stochastic(29, lazy, incremental, /*eps=*/0.2, /*k=*/3));
      if (first) {
        reference = result.selected;
        first = false;
        EXPECT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(result.selected, reference)
            << "lazy=" << lazy << " incremental=" << incremental;
      }
    }
  }
}

TEST_F(EstimatorStochasticTest, StochasticSpendsFewerOracleCalls) {
  ProfitOracle oracle = MakeOracle();
  const SelectionResult exact =
      Greedy(oracle, nullptr,
             GreedyOptions{/*lazy=*/false, /*incremental=*/false});
  const SelectionResult stochastic =
      Greedy(oracle, nullptr,
             Stochastic(29, /*lazy=*/false, /*incremental=*/false,
                        /*eps=*/0.3, /*k=*/3));
  EXPECT_LT(stochastic.oracle_calls, exact.oracle_calls);
  EXPECT_GE(stochastic.profit, 0.8 * exact.profit);
}

}  // namespace
}  // namespace freshsel::selection
