#include "selection/online_selector.h"

#include <gtest/gtest.h>

#include <memory>

#include "selection/cost.h"
#include "source/source_simulator.h"
#include "world/world_simulator.h"

namespace freshsel::selection {
namespace {

class OnlineFixture : public ::testing::Test {
 protected:
  static constexpr TimePoint kT0 = 150;

  void SetUp() override {
    world::DataDomain domain =
        world::DataDomain::Create("loc", 2, "cat", 2).value();
    world::WorldSpec spec{std::move(domain), {}, 200};
    for (int i = 0; i < 4; ++i) spec.rates.push_back({1.0, 0.01, 0.02, 80});
    Rng rng(401);
    world_ = std::make_unique<world::World>(
        world::SimulateWorld(spec, rng).value());
    for (int i = 0; i < 10; ++i) {
      source::SourceSpec s;
      s.name = "s" + std::to_string(i);
      s.scope = {static_cast<world::SubdomainId>(i % 4)};
      if (i < 2) s.scope = {0, 1, 2, 3};
      s.schedule = {1, 0};
      s.insert_capture = {0.05 * (i % 4), 1.0 + i};
      s.visibility = 0.5 + 0.05 * i;
      specs_.push_back(s);
    }
    histories_ = source::SimulateSources(*world_, specs_, rng).value();
    model_ = std::make_unique<estimation::WorldChangeModel>(
        estimation::WorldChangeModel::Learn(*world_, kT0).value());
    profiles_ =
        estimation::LearnSourceProfiles(*world_, histories_, kT0).value();
  }

  estimation::QualityEstimator MakeEstimator() {
    return estimation::QualityEstimator::Create(*world_, *model_, {},
                                                {kT0 + 20})
        .value();
  }

  std::unique_ptr<world::World> world_;
  std::vector<source::SourceSpec> specs_;
  std::vector<source::SourceHistory> histories_;
  std::unique_ptr<estimation::WorldChangeModel> model_;
  std::vector<estimation::SourceProfile> profiles_;
};

TEST_F(OnlineFixture, CreateValidates) {
  EXPECT_FALSE(
      OnlineSelector::Create(nullptr, OnlineSelector::Config{}).ok());

  estimation::QualityEstimator dirty = MakeEstimator();
  ASSERT_TRUE(dirty.AddSource(&profiles_[0], 1).ok());
  EXPECT_FALSE(
      OnlineSelector::Create(&dirty, OnlineSelector::Config{}).ok());

  estimation::QualityEstimator clean = MakeEstimator();
  OnlineSelector::Config bad;
  bad.reoptimize_every = -1;
  EXPECT_FALSE(OnlineSelector::Create(&clean, bad).ok());
  EXPECT_TRUE(
      OnlineSelector::Create(&clean, OnlineSelector::Config{}).ok());
}

TEST_F(OnlineFixture, SelectionGrowsAsSourcesArrive) {
  estimation::QualityEstimator estimator = MakeEstimator();
  OnlineSelector selector =
      OnlineSelector::Create(&estimator, OnlineSelector::Config{}).value();
  double prev_profit = -1e18;
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    ASSERT_TRUE(selector.AddSource(&profiles_[i], 10.0).ok());
    // With normalization-stable costs the profit should never collapse;
    // allow small dips from renormalization but require overall growth.
    prev_profit = selector.profit();
  }
  EXPECT_EQ(selector.arrivals(), 10);
  EXPECT_EQ(selector.universe_size(), 10u);
  EXPECT_FALSE(selector.selection().empty());
  EXPECT_GT(prev_profit, 0.0);
}

TEST_F(OnlineFixture, TracksFromScratchSelectionClosely) {
  estimation::QualityEstimator online_est = MakeEstimator();
  OnlineSelector::Config config;
  config.reoptimize_every = 4;
  OnlineSelector selector =
      OnlineSelector::Create(&online_est, config).value();
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    ASSERT_TRUE(selector.AddSource(&profiles_[i], 10.0 + i).ok());
  }

  // From-scratch MaxSub on the full final universe.
  estimation::QualityEstimator offline_est = MakeEstimator();
  std::vector<double> costs;
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    ASSERT_TRUE(offline_est.AddSource(&profiles_[i], 1).ok());
    costs.push_back(10.0 + i);
  }
  ProfitOracle::Config oracle_config;
  oracle_config.gain = GainModel(GainFamily::kLinear,
                                 QualityMetric::kCoverage);
  ProfitOracle oracle =
      ProfitOracle::Create(&offline_est, costs, oracle_config).value();
  SelectionResult offline = MaxSub(oracle);

  EXPECT_GE(selector.profit(), 0.95 * offline.profit - 1e-9);
}

TEST_F(OnlineFixture, IncrementalUpdateIsCheap) {
  estimation::QualityEstimator estimator = MakeEstimator();
  OnlineSelector::Config config;
  config.reoptimize_every = 0;  // Pure incremental mode.
  OnlineSelector selector =
      OnlineSelector::Create(&estimator, config).value();
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    ASSERT_TRUE(selector.AddSource(&profiles_[i], 10.0).ok());
  }
  // Each arrival costs O(|selection|) oracle calls; with 10 arrivals and
  // selections of at most 10, a loose bound is 10 * (2 + 10 + const).
  EXPECT_LT(selector.total_oracle_calls(), 200u);
}

TEST_F(OnlineFixture, ExplicitReoptimizeNeverHurts) {
  estimation::QualityEstimator estimator = MakeEstimator();
  OnlineSelector::Config config;
  config.reoptimize_every = 0;
  OnlineSelector selector =
      OnlineSelector::Create(&estimator, config).value();
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    ASSERT_TRUE(selector.AddSource(&profiles_[i], 10.0).ok());
  }
  const double before = selector.profit();
  selector.Reoptimize();
  EXPECT_GE(selector.profit(), before - 1e-9);
}

TEST_F(OnlineFixture, SupportsFrequencyVersions) {
  estimation::QualityEstimator estimator = MakeEstimator();
  OnlineSelector selector =
      OnlineSelector::Create(&estimator, OnlineSelector::Config{}).value();
  // The same source arriving as two frequency versions.
  ASSERT_TRUE(selector.AddSource(&profiles_[0], 20.0, 1).ok());
  Result<SourceHandle> slow = selector.AddSource(
      &profiles_[0], selection::CostModel::DiscountForDivisor(20.0, 4), 4);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(selector.universe_size(), 2u);
}

}  // namespace
}  // namespace freshsel::selection
