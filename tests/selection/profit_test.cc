#include "selection/profit.h"

#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "estimation/source_profile.h"
#include "estimation/world_change_model.h"
#include "source/source_simulator.h"
#include "world/world_simulator.h"

namespace freshsel::selection {
namespace {

class ProfitOracleFixture : public ::testing::Test {
 protected:
  static constexpr TimePoint kT0 = 200;

  void SetUp() override {
    world::DataDomain domain =
        world::DataDomain::Create("loc", 1, "cat", 2).value();
    world::WorldSpec spec{std::move(domain), {}, 300};
    spec.rates.push_back({1.0, 0.005, 0.01, 100});
    spec.rates.push_back({0.5, 0.005, 0.01, 60});
    Rng rng(211);
    world_ = std::make_unique<world::World>(
        world::SimulateWorld(spec, rng).value());
    for (int i = 0; i < 3; ++i) {
      source::SourceSpec s;
      s.name = "s" + std::to_string(i);
      s.scope = {0, 1};
      s.schedule = {1 + i, 0};
      s.insert_capture = {0.05 * i, 1.0 + 2.0 * i};
      s.initial_awareness = 0.9 - 0.2 * i;
      specs_.push_back(s);
    }
    histories_ = source::SimulateSources(*world_, specs_, rng).value();
    model_ = std::make_unique<estimation::WorldChangeModel>(
        estimation::WorldChangeModel::Learn(*world_, kT0).value());
    profiles_ =
        estimation::LearnSourceProfiles(*world_, histories_, kT0).value();
    estimator_ = std::make_unique<estimation::QualityEstimator>(
        estimation::QualityEstimator::Create(*world_, *model_, {},
                                             {kT0 + 20, kT0 + 40})
            .value());
    for (const auto& p : profiles_) {
      ASSERT_TRUE(estimator_->AddSource(&p, 1).ok());
    }
  }

  ProfitOracle MakeOracle(ProfitOracle::Config config,
                          std::vector<double> costs = {10.0, 20.0, 30.0}) {
    return ProfitOracle::Create(estimator_.get(), std::move(costs), config)
        .value();
  }

  std::unique_ptr<world::World> world_;
  std::vector<source::SourceSpec> specs_;
  std::vector<source::SourceHistory> histories_;
  std::unique_ptr<estimation::WorldChangeModel> model_;
  std::vector<estimation::SourceProfile> profiles_;
  std::unique_ptr<estimation::QualityEstimator> estimator_;
};

TEST_F(ProfitOracleFixture, CreateValidates) {
  EXPECT_FALSE(
      ProfitOracle::Create(nullptr, {1.0}, ProfitOracle::Config{}).ok());
  EXPECT_FALSE(ProfitOracle::Create(estimator_.get(), {1.0},
                                    ProfitOracle::Config{})
                   .ok());  // Wrong cost count.
  EXPECT_TRUE(ProfitOracle::Create(estimator_.get(), {1.0, 2.0, 3.0},
                                   ProfitOracle::Config{})
                  .ok());
}

TEST_F(ProfitOracleFixture, CostsAreNormalized) {
  ProfitOracle oracle = MakeOracle(ProfitOracle::Config{});
  EXPECT_DOUBLE_EQ(oracle.Cost({0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(oracle.Cost({0}), 10.0 / 60.0);
  EXPECT_DOUBLE_EQ(oracle.Cost({}), 0.0);
}

TEST_F(ProfitOracleFixture, GainIsNormalizedToUnitInterval) {
  ProfitOracle oracle = MakeOracle(ProfitOracle::Config{});
  const double gain = oracle.Gain({0, 1, 2});
  EXPECT_GT(gain, 0.0);
  EXPECT_LE(gain, 1.0);
}

TEST_F(ProfitOracleFixture, ProfitIsGainMinusWeightedCost) {
  ProfitOracle::Config config;
  config.cost_weight = 0.5;
  ProfitOracle oracle = MakeOracle(config);
  const double profit = oracle.Profit({0, 1});
  EXPECT_NEAR(profit, oracle.Gain({0, 1}) - 0.5 * oracle.Cost({0, 1}),
              1e-12);
}

TEST_F(ProfitOracleFixture, BudgetMakesSetsInfeasible) {
  ProfitOracle::Config config;
  config.budget = 0.4;  // Normalized: selecting everything costs 1.
  ProfitOracle oracle = MakeOracle(config);
  EXPECT_TRUE(std::isinf(oracle.Profit({0, 1, 2})));
  EXPECT_LT(oracle.Profit({0, 1, 2}), 0.0);
  EXPECT_TRUE(std::isfinite(oracle.Profit({0})));
  EXPECT_TRUE(oracle.WithinBudget({0}));
  EXPECT_FALSE(oracle.WithinBudget({0, 1, 2}));
}

TEST_F(ProfitOracleFixture, GainCallsAreCounted) {
  ProfitOracle oracle = MakeOracle(ProfitOracle::Config{});
  EXPECT_EQ(oracle.call_count(), 0u);
  oracle.Profit({0});
  oracle.Profit({0, 1});
  EXPECT_EQ(oracle.call_count(), 2u);
  oracle.ResetCallCount();
  EXPECT_EQ(oracle.call_count(), 0u);
}

TEST_F(ProfitOracleFixture, DataGainScalesWithWorldSize) {
  ProfitOracle::Config config;
  config.gain = GainModel(GainFamily::kData, QualityMetric::kCoverage);
  ProfitOracle oracle = MakeOracle(config);
  const double gain = oracle.Gain({0, 1, 2});
  EXPECT_GT(gain, 0.0);
  EXPECT_LE(gain, 1.0);
}

TEST_F(ProfitOracleFixture, AggregateModes) {
  ProfitOracle::Config avg_config;
  ProfitOracle::Config max_config;
  max_config.aggregate = AggregateMode::kMax;
  ProfitOracle::Config min_config;
  min_config.aggregate = AggregateMode::kMin;
  ProfitOracle avg = MakeOracle(avg_config);
  ProfitOracle best = MakeOracle(max_config);
  ProfitOracle worst = MakeOracle(min_config);
  const std::vector<SourceHandle> set{0, 1};
  EXPECT_LE(worst.Gain(set), avg.Gain(set) + 1e-12);
  EXPECT_LE(avg.Gain(set), best.Gain(set) + 1e-12);
}

TEST_F(ProfitOracleFixture, GainAveragesPerTimeGains) {
  // For the quadratic family, avg(G(q_t)) != G(avg(q_t)); verify the oracle
  // averages per-time-point gains as Section 5 requires.
  ProfitOracle::Config config;
  config.gain = GainModel(GainFamily::kQuadratic, QualityMetric::kCoverage);
  ProfitOracle oracle = MakeOracle(config);
  double expected = 0.0;
  for (TimePoint t : estimator_->eval_times()) {
    const double cov = estimator_->Estimate({0}, t).coverage;
    expected += 100.0 * cov * cov;
  }
  expected /= 100.0 * static_cast<double>(estimator_->eval_times().size());
  EXPECT_NEAR(oracle.Gain({0}), expected, 1e-12);
}

}  // namespace
}  // namespace freshsel::selection
