// Incremental-oracle equivalence suite: scoring candidates through
// MarginalEvalContext (delta evaluation inside the estimator) is a pure
// acceleration - every algorithm must pick the identical selection with
// incremental on and off, with profits agreeing to <= 1e-12, on full
// BL-scenario ProfitOracles, across seeds and estimator Options flags.
// Oracle-call accounting must also match exactly, so the lazy-greedy
// savings statistics stay comparable across the two paths.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "harness/learned_scenario.h"
#include "selection/algorithms.h"
#include "selection/budgeted_greedy.h"
#include "selection/cached_oracle.h"
#include "selection/cost.h"
#include "selection/selector.h"
#include "workloads/bl_generator.h"

namespace freshsel::selection {
namespace {

/// Incremental evaluations are ulp-equivalent to plain full-set calls
/// (factor products associate differently), so profits may differ in the
/// last bits while the argmax sequence - and hence the selection - stays
/// identical.
constexpr double kProfitTol = 1e-12;

void ExpectEquivalent(const SelectionResult& incremental,
                      const SelectionResult& plain, const char* what,
                      std::uint64_t seed) {
  EXPECT_EQ(incremental.selected, plain.selected)
      << what << ", seed " << seed;
  EXPECT_NEAR(incremental.profit, plain.profit,
              kProfitTol * (1.0 + std::abs(plain.profit)))
      << what << ", seed " << seed;
  EXPECT_EQ(incremental.oracle_calls, plain.oracle_calls)
      << what << ", seed " << seed;
  EXPECT_EQ(incremental.oracle_calls_saved, plain.oracle_calls_saved)
      << what << ", seed " << seed;
}

/// Full-pipeline fixture: BL scenario -> learned models -> estimator ->
/// ProfitOracle, parameterized by scenario seed.
class IncrementalEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    workloads::BlConfig config;
    config.seed = GetParam();
    config.locations = 8;
    config.categories = 3;
    config.horizon = 220;
    config.t0 = 150;
    config.scale = 0.3;
    config.n_uniform = 2;
    config.n_location_specialists = 4;
    config.n_category_specialists = 3;
    config.n_medium = 2;
    scenario_ = std::make_unique<workloads::Scenario>(
        workloads::GenerateBlScenario(config).value());
  }

  struct Pipeline {
    std::unique_ptr<harness::LearnedScenario> learned;
    std::unique_ptr<estimation::QualityEstimator> estimator;
    std::unique_ptr<ProfitOracle> oracle;
  };

  Pipeline MakePipeline(
      double budget,
      estimation::QualityEstimator::Options options = {}) {
    Pipeline p;
    p.learned = std::make_unique<harness::LearnedScenario>(
        harness::LearnScenario(*scenario_).value());
    p.estimator = std::make_unique<estimation::QualityEstimator>(
        estimation::QualityEstimator::Create(
            scenario_->world, p.learned->world_model, {},
            MakeTimePoints(scenario_->t0 + 14, 3, 14), options)
            .value());
    std::vector<const estimation::SourceProfile*> profiles;
    for (const auto& profile : p.learned->profiles) {
      profiles.push_back(&profile);
      EXPECT_TRUE(p.estimator->AddSource(&profile).ok());
    }
    ProfitOracle::Config config;
    config.budget = budget;
    p.oracle = std::make_unique<ProfitOracle>(
        ProfitOracle::Create(p.estimator.get(),
                             CostModel::ItemShareCosts(profiles), config)
            .value());
    return p;
  }

  std::unique_ptr<workloads::Scenario> scenario_;
};

TEST_P(IncrementalEquivalenceTest, GreedyMatchesPlainEagerAndLazy) {
  Pipeline p = MakePipeline(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(p.oracle->supports_incremental());
  for (bool lazy : {false, true}) {
    GreedyOptions plain_opts{lazy, /*incremental=*/false};
    GreedyOptions inc_opts{lazy, /*incremental=*/true};
    ExpectEquivalent(Greedy(*p.oracle, nullptr, inc_opts),
                     Greedy(*p.oracle, nullptr, plain_opts),
                     lazy ? "lazy greedy" : "eager greedy", GetParam());
  }
}

TEST_P(IncrementalEquivalenceTest, GreedyMatchesAcrossEstimatorOptions) {
  // Every estimator Options flag changes the oracle values; the
  // incremental path must track each variant exactly.
  for (int mask = 0; mask < 16; ++mask) {
    estimation::QualityEstimator::Options options;
    options.per_event_survival = (mask & 1) != 0;
    options.exponential_world_model = (mask & 2) != 0;
    options.model_capture_backlog = (mask & 4) != 0;
    options.model_ghost_result = (mask & 8) != 0;
    Pipeline p =
        MakePipeline(std::numeric_limits<double>::infinity(), options);
    SelectionResult plain =
        Greedy(*p.oracle, nullptr, GreedyOptions{true, false});
    SelectionResult incremental =
        Greedy(*p.oracle, nullptr, GreedyOptions{true, true});
    ExpectEquivalent(incremental, plain,
                     ("options mask " + std::to_string(mask)).c_str(),
                     GetParam());
  }
}

TEST_P(IncrementalEquivalenceTest, GreedyMatchesUnderMatroid) {
  Pipeline p = MakePipeline(std::numeric_limits<double>::infinity());
  std::vector<std::uint32_t> groups;
  for (std::size_t e = 0; e < p.oracle->universe_size(); ++e) {
    groups.push_back(static_cast<std::uint32_t>(e % 3));
  }
  PartitionMatroid matroid =
      PartitionMatroid::Create(groups, {2, 2, 2}).value();
  for (bool lazy : {false, true}) {
    ExpectEquivalent(
        Greedy(*p.oracle, &matroid, GreedyOptions{lazy, true}),
        Greedy(*p.oracle, &matroid, GreedyOptions{lazy, false}),
        "matroid greedy", GetParam());
  }
}

TEST_P(IncrementalEquivalenceTest, BudgetedGreedyMatchesPlain) {
  for (double budget : {0.2, 0.5}) {
    Pipeline p = MakePipeline(budget);
    for (bool lazy : {false, true}) {
      ExpectEquivalent(
          BudgetedGreedy(*p.oracle, BudgetedGreedyOptions{lazy, true}),
          BudgetedGreedy(*p.oracle, BudgetedGreedyOptions{lazy, false}),
          "budgeted greedy", GetParam());
    }
  }
}

TEST_P(IncrementalEquivalenceTest, GraspMatchesPlainSerialAndPooled) {
  Pipeline p = MakePipeline(std::numeric_limits<double>::infinity());
  ThreadPool pool(3);
  for (ThreadPool* worker_pool : {static_cast<ThreadPool*>(nullptr),
                                  &pool}) {
    GraspParams plain{2, 3, GetParam(), worker_pool,
                      /*incremental=*/false};
    GraspParams incremental{2, 3, GetParam(), worker_pool,
                            /*incremental=*/true};
    ExpectEquivalent(Grasp(*p.oracle, incremental),
                     Grasp(*p.oracle, plain),
                     worker_pool ? "grasp pooled" : "grasp serial",
                     GetParam());
  }
}

TEST_P(IncrementalEquivalenceTest, CachedOracleForwardsIncremental) {
  Pipeline p = MakePipeline(std::numeric_limits<double>::infinity());
  CachedProfitOracle cached(*p.oracle);
  EXPECT_TRUE(cached.supports_incremental());
  SelectionResult plain =
      Greedy(cached, nullptr, GreedyOptions{true, false});
  SelectionResult incremental =
      Greedy(cached, nullptr, GreedyOptions{true, true});
  EXPECT_EQ(incremental.selected, plain.selected) << GetParam();
  EXPECT_NEAR(incremental.profit, plain.profit,
              kProfitTol * (1.0 + std::abs(plain.profit)))
      << GetParam();
  // The memo sits in front of the incremental context, so repeated keys
  // hit the cache identically on both paths; re-running through the same
  // decorator can only save calls.
  EXPECT_LE(incremental.oracle_calls, plain.oracle_calls) << GetParam();
}

TEST_P(IncrementalEquivalenceTest, SelectorFacadeHonorsIncrementalFlag) {
  Pipeline p = MakePipeline(std::numeric_limits<double>::infinity());
  for (Algorithm algorithm :
       {Algorithm::kGreedy, Algorithm::kGrasp, Algorithm::kHillClimb}) {
    SelectorConfig plain;
    plain.algorithm = algorithm;
    plain.seed = GetParam();
    plain.grasp_kappa = 2;
    plain.grasp_restarts = 2;
    plain.incremental_oracle = false;
    SelectorConfig incremental = plain;
    incremental.incremental_oracle = true;
    SelectionResult a = SelectSources(*p.oracle, incremental).value();
    SelectionResult b = SelectSources(*p.oracle, plain).value();
    EXPECT_EQ(a.selected, b.selected)
        << AlgorithmName(algorithm) << ", seed " << GetParam();
    EXPECT_NEAR(a.profit, b.profit,
                kProfitTol * (1.0 + std::abs(b.profit)))
        << AlgorithmName(algorithm) << ", seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalenceTest,
                         ::testing::Values(3u, 11u, 42u));

/// Synthetic oracle without incremental support: the flag must degrade
/// gracefully to the plain path (supports_incremental() is false, so the
/// algorithms never ask for a context).
class PlainCoverage : public ProfitFunction {
 public:
  std::size_t universe_size() const override { return 8; }
  double Profit(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    double total = 0.0;
    for (SourceHandle e : set) total += 1.0 / (1.0 + e);
    return total - 0.05 * static_cast<double>(set.size() * set.size());
  }
};

TEST(IncrementalFallbackTest, OracleWithoutSupportUsesPlainPath) {
  PlainCoverage f;
  EXPECT_FALSE(f.supports_incremental());
  EXPECT_EQ(f.MakeContext(), nullptr);
  SelectionResult on = Greedy(f, nullptr, GreedyOptions{true, true});
  SelectionResult off = Greedy(f, nullptr, GreedyOptions{true, false});
  EXPECT_EQ(on.selected, off.selected);
  EXPECT_EQ(on.profit, off.profit);
  EXPECT_EQ(on.oracle_calls, off.oracle_calls);
}

}  // namespace
}  // namespace freshsel::selection
