// End-to-end test of the combined problem the paper sketches at the end of
// Definition 5: slice selection *with* variable update frequencies - the
// augmented universe built over micro-source profiles under the per-source
// partition matroid.

#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "harness/learned_scenario.h"
#include "selection/cost.h"
#include "selection/frequency_selection.h"
#include "selection/selector.h"
#include "workloads/bl_generator.h"
#include "workloads/slice_roster.h"

namespace freshsel::selection {
namespace {

class SliceFrequencyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    workloads::BlConfig config;
    config.locations = 6;
    config.categories = 3;
    config.horizon = 150;
    config.t0 = 90;
    config.scale = 0.3;
    config.n_uniform = 2;
    config.n_location_specialists = 3;
    config.n_category_specialists = 2;
    config.n_medium = 1;
    scenario_ = std::make_unique<workloads::Scenario>(
        workloads::GenerateBlScenario(config).value());
    roster_ = std::make_unique<workloads::SliceRoster>(
        workloads::BuildSliceRoster(*scenario_,
                                    workloads::SliceDimension::kDim1)
            .value());
    learned_ = std::make_unique<harness::LearnedScenario>(
        harness::LearnScenarioWithSources(*scenario_, roster_->sources)
            .value());
  }

  std::unique_ptr<workloads::Scenario> scenario_;
  std::unique_ptr<workloads::SliceRoster> roster_;
  std::unique_ptr<harness::LearnedScenario> learned_;
};

TEST_F(SliceFrequencyFixture, SliceSelectionWithFrequencies) {
  estimation::QualityEstimator estimator =
      estimation::QualityEstimator::Create(scenario_->world,
                                           learned_->world_model, {},
                                           {scenario_->t0 + 20})
          .value();
  std::vector<const estimation::SourceProfile*> profiles;
  for (const auto& p : learned_->profiles) profiles.push_back(&p);
  std::vector<double> base_costs = CostModel::ItemShareCosts(profiles);
  AugmentedUniverse universe =
      BuildAugmentedUniverse(estimator, profiles, base_costs,
                             /*max_divisor=*/3)
          .value();
  ASSERT_EQ(universe.handles.size(), profiles.size() * 3);

  ProfitOracle::Config config;
  config.gain =
      GainModel(GainFamily::kLinear, QualityMetric::kCoverage);
  ProfitOracle oracle =
      ProfitOracle::Create(&estimator, universe.costs, config).value();
  SelectorConfig selector;
  selector.algorithm = Algorithm::kMaxSub;
  SelectionResult result =
      SelectSources(oracle, selector, &universe.matroid).value();

  // One frequency version per micro-source, and the result is feasible and
  // non-trivial.
  EXPECT_TRUE(universe.matroid.IsIndependent(result.selected));
  EXPECT_FALSE(result.selected.empty());
  EXPECT_TRUE(std::isfinite(result.profit));

  // Every selected element maps back to a micro-source with a parent in
  // the original roster.
  for (SourceHandle h : result.selected) {
    const std::uint32_t micro = universe.source_of[h];
    ASSERT_LT(micro, roster_->sources.size());
    EXPECT_LT(roster_->parent_of[micro], scenario_->source_count());
    EXPECT_GE(universe.divisor_of[h], 1);
    EXPECT_LE(universe.divisor_of[h], 3);
  }
}

TEST_F(SliceFrequencyFixture, MixedGainStaysSubmodularFriendly) {
  // The coverage+global-freshness mix is a legal submodular objective for
  // MaxSub; check that selection runs and respects the matroid.
  estimation::QualityEstimator estimator =
      estimation::QualityEstimator::Create(scenario_->world,
                                           learned_->world_model, {},
                                           {scenario_->t0 + 20})
          .value();
  std::vector<const estimation::SourceProfile*> profiles;
  for (const auto& p : learned_->profiles) profiles.push_back(&p);
  AugmentedUniverse universe =
      BuildAugmentedUniverse(estimator, profiles,
                             CostModel::ItemShareCosts(profiles), 2)
          .value();
  ProfitOracle::Config config;
  config.gain = GainModel(GainFamily::kLinear,
                          QualityMetric::kCoverageFreshnessMix, 0.7);
  ProfitOracle oracle =
      ProfitOracle::Create(&estimator, universe.costs, config).value();
  SelectionResult result = MaxSubMatroid(oracle, {&universe.matroid});
  EXPECT_TRUE(universe.matroid.IsIndependent(result.selected));
  EXPECT_TRUE(std::isfinite(result.profit));
}

}  // namespace
}  // namespace freshsel::selection
