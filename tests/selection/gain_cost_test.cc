#include <cstdint>
#include <gtest/gtest.h>

#include "selection/cost.h"
#include "selection/gain.h"

namespace freshsel::selection {
namespace {

estimation::EstimatedQuality MakeQuality(double cov, double lf, double gf,
                                         double acc, double world) {
  estimation::EstimatedQuality q;
  q.coverage = cov;
  q.local_freshness = lf;
  q.global_freshness = gf;
  q.accuracy = acc;
  q.expected_world = world;
  return q;
}

TEST(GainModelTest, LinearCurve) {
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kLinear, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kLinear, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kLinear, 1.0), 100.0);
}

TEST(GainModelTest, QuadraticCurve) {
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kQuadratic, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kQuadratic, 1.0), 100.0);
}

TEST(GainModelTest, StepCurveMatchesPaperSchedule) {
  // Section 6.1's piecewise definition.
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kStep, 0.1), 10.0);
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kStep, 0.2), 100.0);
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kStep, 0.3), 110.0);
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kStep, 0.5), 150.0);
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kStep, 0.6), 160.0);
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kStep, 0.7), 200.0);
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kStep, 0.8), 210.0);
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kStep, 0.95), 300.0);
  EXPECT_DOUBLE_EQ(GainModel::Curve(GainFamily::kStep, 1.0), 305.0);
}

TEST(GainModelTest, StepCurveIsMonotone) {
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double g = GainModel::Curve(GainFamily::kStep, q);
    EXPECT_GE(g, prev);
    prev = g;
  }
}

TEST(GainModelTest, MetricSelection) {
  estimation::EstimatedQuality q = MakeQuality(0.1, 0.2, 0.3, 0.4, 100.0);
  EXPECT_DOUBLE_EQ(
      GainModel(GainFamily::kLinear, QualityMetric::kCoverage).MetricValue(q),
      0.1);
  EXPECT_DOUBLE_EQ(GainModel(GainFamily::kLinear,
                             QualityMetric::kLocalFreshness)
                       .MetricValue(q),
                   0.2);
  EXPECT_DOUBLE_EQ(GainModel(GainFamily::kLinear,
                             QualityMetric::kGlobalFreshness)
                       .MetricValue(q),
                   0.3);
  EXPECT_DOUBLE_EQ(
      GainModel(GainFamily::kLinear, QualityMetric::kAccuracy).MetricValue(q),
      0.4);
}

TEST(GainModelTest, CoverageFreshnessMix) {
  estimation::EstimatedQuality q = MakeQuality(0.8, 0.0, 0.4, 0.0, 100.0);
  GainModel even(GainFamily::kLinear,
                 QualityMetric::kCoverageFreshnessMix, 0.5);
  EXPECT_DOUBLE_EQ(even.MetricValue(q), 0.6);
  GainModel cov_heavy(GainFamily::kLinear,
                      QualityMetric::kCoverageFreshnessMix, 1.0);
  EXPECT_DOUBLE_EQ(cov_heavy.MetricValue(q), 0.8);
  GainModel fresh_heavy(GainFamily::kLinear,
                        QualityMetric::kCoverageFreshnessMix, 0.0);
  EXPECT_DOUBLE_EQ(fresh_heavy.MetricValue(q), 0.4);
  // Out-of-range alpha clamps.
  GainModel clamped(GainFamily::kLinear,
                    QualityMetric::kCoverageFreshnessMix, 3.0);
  EXPECT_DOUBLE_EQ(clamped.MetricValue(q), 0.8);
}

TEST(GainModelTest, DataGainPaysPerCoveredItem) {
  GainModel gain(GainFamily::kData, QualityMetric::kCoverage);
  estimation::EstimatedQuality q = MakeQuality(0.5, 0, 0, 0, 2000.0);
  // $10 per covered item: 10 * 0.5 * 2000.
  EXPECT_DOUBLE_EQ(gain.Evaluate(q), 10000.0);
  EXPECT_DOUBLE_EQ(gain.MaxGain(2000.0), 20000.0);
}

TEST(GainModelTest, MaxGainForQualityFamilies) {
  EXPECT_DOUBLE_EQ(
      GainModel(GainFamily::kLinear, QualityMetric::kCoverage).MaxGain(1e9),
      100.0);
  EXPECT_DOUBLE_EQ(
      GainModel(GainFamily::kStep, QualityMetric::kCoverage).MaxGain(5.0),
      305.0);
}

TEST(CostModelTest, ItemShareCostsSplitSharedItems) {
  // Two sources over a 3-item world: source A holds {0, 1}, source B holds
  // {1, 2}. Item 1 is shared -> each pays 5; items 0 and 2 cost 10.
  estimation::SourceProfile a;
  estimation::SourceProfile b;
  a.sig_t0.all = BitVector(3);
  b.sig_t0.all = BitVector(3);
  a.sig_t0.all.Set(0);
  a.sig_t0.all.Set(1);
  b.sig_t0.all.Set(1);
  b.sig_t0.all.Set(2);
  std::vector<double> costs = CostModel::ItemShareCosts({&a, &b});
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_DOUBLE_EQ(costs[0], 15.0);
  EXPECT_DOUBLE_EQ(costs[1], 15.0);
}

TEST(CostModelTest, EmptyProfileListIsEmpty) {
  EXPECT_TRUE(CostModel::ItemShareCosts({}).empty());
}

TEST(CostModelTest, DiscountForDivisorMatchesPaperFormula) {
  // c' = c / (1 + m/10).
  EXPECT_DOUBLE_EQ(CostModel::DiscountForDivisor(110.0, 1), 100.0);
  EXPECT_DOUBLE_EQ(CostModel::DiscountForDivisor(120.0, 2), 100.0);
  EXPECT_DOUBLE_EQ(CostModel::DiscountForDivisor(100.0, 10), 50.0);
}

TEST(CostModelTest, DiscountDecreasesWithDivisor) {
  double prev = 1e18;
  for (std::int64_t m = 1; m <= 10; ++m) {
    const double c = CostModel::DiscountForDivisor(100.0, m);
    EXPECT_LT(c, prev);
    prev = c;
  }
}

}  // namespace
}  // namespace freshsel::selection
