#include "selection/budgeted_greedy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "estimation/source_profile.h"
#include "estimation/world_change_model.h"
#include "source/source_simulator.h"
#include "world/world_simulator.h"

namespace freshsel::selection {
namespace {

/// Small simulated scenario with sources of very different sizes so the
/// budget bites.
class BudgetedFixture : public ::testing::Test {
 protected:
  static constexpr TimePoint kT0 = 150;

  void SetUp() override {
    world::DataDomain domain =
        world::DataDomain::Create("loc", 2, "cat", 1).value();
    world::WorldSpec spec{std::move(domain), {}, 200};
    spec.rates.push_back({2.0, 0.01, 0.02, 200});
    spec.rates.push_back({1.0, 0.01, 0.02, 100});
    Rng rng(307);
    world_ = std::make_unique<world::World>(
        world::SimulateWorld(spec, rng).value());
    // Sources: one big covering everything, several small specialists with
    // varied visibility so their union beats the big one.
    auto add = [&](const char* name,
                   std::vector<world::SubdomainId> scope,
                   double visibility) {
      source::SourceSpec s;
      s.name = name;
      s.scope = std::move(scope);
      s.schedule = {1, 0};
      s.insert_capture = {0.0, 1.0};
      s.visibility = visibility;
      specs_.push_back(s);
    };
    add("big", {0, 1}, 0.85);
    add("small-a", {0}, 0.6);
    add("small-b", {0}, 0.95);
    add("small-c", {1}, 0.7);
    add("small-d", {1}, 0.9);
    histories_ = source::SimulateSources(*world_, specs_, rng).value();
    model_ = std::make_unique<estimation::WorldChangeModel>(
        estimation::WorldChangeModel::Learn(*world_, kT0).value());
    profiles_ =
        estimation::LearnSourceProfiles(*world_, histories_, kT0).value();
    estimator_ = std::make_unique<estimation::QualityEstimator>(
        estimation::QualityEstimator::Create(*world_, *model_, {},
                                             {kT0 + 20})
            .value());
    for (const auto& p : profiles_) {
      ASSERT_TRUE(estimator_->AddSource(&p, 1).ok());
    }
  }

  ProfitOracle MakeOracle(double budget,
                          std::vector<double> costs = {50, 10, 12, 9,
                                                       11}) {
    ProfitOracle::Config config;
    config.gain = GainModel(GainFamily::kLinear,
                            QualityMetric::kCoverage);
    config.budget = budget;
    config.cost_weight = 0.0;  // Pure budgeted gain maximization.
    return ProfitOracle::Create(estimator_.get(), std::move(costs), config)
        .value();
  }

  std::unique_ptr<world::World> world_;
  std::vector<source::SourceSpec> specs_;
  std::vector<source::SourceHistory> histories_;
  std::unique_ptr<estimation::WorldChangeModel> model_;
  std::vector<estimation::SourceProfile> profiles_;
  std::unique_ptr<estimation::QualityEstimator> estimator_;
};

TEST_F(BudgetedFixture, RespectsBudget) {
  for (double budget : {0.1, 0.25, 0.5, 0.8}) {
    ProfitOracle oracle = MakeOracle(budget);
    SelectionResult result = BudgetedGreedy(oracle);
    EXPECT_LE(oracle.Cost(result.selected), budget + 1e-9)
        << "budget " << budget;
  }
}

TEST_F(BudgetedFixture, UnlimitedBudgetTakesEverythingUseful) {
  ProfitOracle oracle =
      MakeOracle(std::numeric_limits<double>::infinity());
  SelectionResult result = BudgetedGreedy(oracle);
  // With zero cost weight and unlimited budget, every source with positive
  // marginal coverage should be taken.
  EXPECT_GE(result.selected.size(), 4u);
}

TEST_F(BudgetedFixture, MatchesBruteForceWithinFactor) {
  for (double budget : {0.3, 0.5}) {
    ProfitOracle oracle = MakeOracle(budget);
    SelectionResult greedy = BudgetedGreedy(oracle);
    SelectionResult optimal = BruteForce(oracle);
    // KMN-style guarantee is (1 - 1/e)/2 ~ 0.31; expect much better in
    // practice on these small instances.
    EXPECT_GE(oracle.Gain(greedy.selected),
              0.7 * oracle.Gain(optimal.selected))
        << "budget " << budget;
  }
}

TEST_F(BudgetedFixture, PrefersCheapUnionOverExpensiveSingle) {
  // Budget fits either the big expensive source or all four small ones;
  // the smalls' union covers more per unit cost.
  ProfitOracle oracle = MakeOracle(/*budget=*/0.46);
  SelectionResult result = BudgetedGreedy(oracle);
  // Whatever it picks, it must be at least as good as the best single
  // affordable source (the phase-2 safeguard).
  double best_single = 0.0;
  for (std::size_t e = 0; e < oracle.universe_size(); ++e) {
    const SourceHandle handle = static_cast<SourceHandle>(e);
    if (oracle.Cost({handle}) <= 0.46) {
      best_single = std::max(best_single, oracle.Gain({handle}));
    }
  }
  EXPECT_GE(oracle.Gain(result.selected), best_single - 1e-12);
}

TEST_F(BudgetedFixture, ZeroBudgetSelectsNothing) {
  ProfitOracle oracle = MakeOracle(0.0);
  SelectionResult result = BudgetedGreedy(oracle);
  EXPECT_TRUE(result.selected.empty());
}

TEST_F(BudgetedFixture, LazyMatchesEagerExactly) {
  for (double budget : {0.1, 0.25, 0.46, 0.5, 0.8}) {
    ProfitOracle oracle = MakeOracle(budget);
    SelectionResult lazy =
        BudgetedGreedy(oracle, BudgetedGreedyOptions{true});
    SelectionResult eager =
        BudgetedGreedy(oracle, BudgetedGreedyOptions{false});
    EXPECT_EQ(lazy.selected, eager.selected) << "budget " << budget;
    EXPECT_DOUBLE_EQ(lazy.profit, eager.profit) << "budget " << budget;
    EXPECT_LE(lazy.oracle_calls, eager.oracle_calls) << "budget " << budget;
  }
}

/// Synthetic gain/cost function that counts Gain and Cost calls
/// separately, for the cost-call budget regressions.
class CountingGainCost : public GainCostFunction {
 public:
  CountingGainCost(std::vector<double> weights, std::vector<double> costs,
                   double budget)
      : weights_(std::move(weights)),
        costs_(std::move(costs)),
        budget_(budget) {}

  std::size_t universe_size() const override { return weights_.size(); }
  double Gain(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    ++gain_calls_;
    // Concave-over-modular: sqrt of the weight sum, monotone submodular.
    double total = 0.0;
    for (SourceHandle e : set) total += weights_[e];
    return std::sqrt(total);
  }
  double Cost(const std::vector<SourceHandle>& set) const override {
    ++calls_;
    ++cost_calls_;
    double total = 0.0;
    for (SourceHandle e : set) total += costs_[e];
    return total;
  }
  double Profit(const std::vector<SourceHandle>& set) const override {
    return Cost(set) <= budget_ + 1e-12
               ? Gain(set)
               : -std::numeric_limits<double>::infinity();
  }
  double budget() const override { return budget_; }

  std::uint64_t gain_calls() const { return gain_calls_; }
  std::uint64_t cost_calls() const { return cost_calls_; }

 private:
  std::vector<double> weights_;
  std::vector<double> costs_;
  double budget_;
  mutable std::uint64_t gain_calls_ = 0;
  mutable std::uint64_t cost_calls_ = 0;
};

TEST(BudgetedGreedyCostCallsTest, SingletonCostsAreEvaluatedOncePerElement) {
  // Regression: each round used to re-evaluate oracle.Cost({e}) for the
  // affordability check, the ratio, and the running total - up to three
  // times per element per round. Costs are now hoisted: exactly one
  // Cost({e}) call per element for the whole run, in both modes, however
  // many rounds the greedy takes.
  const std::size_t n = 12;
  std::vector<double> weights(n), costs(n);
  for (std::size_t e = 0; e < n; ++e) {
    weights[e] = 1.0 + static_cast<double>(e % 5);
    costs[e] = 0.5 + 0.25 * static_cast<double>(e % 3);
  }
  for (bool lazy : {true, false}) {
    CountingGainCost oracle(weights, costs, /*budget=*/4.0);
    SelectionResult result =
        BudgetedGreedy(oracle, BudgetedGreedyOptions{lazy});
    EXPECT_GE(result.selected.size(), 2u) << "lazy=" << lazy;
    // One Cost call per element, plus the final Profit's cost check.
    EXPECT_EQ(oracle.cost_calls(), n + 1) << "lazy=" << lazy;
  }
}

}  // namespace
}  // namespace freshsel::selection
