#include "selection/frequency_selection.h"

#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "selection/algorithms.h"
#include "selection/selector.h"
#include "source/source_simulator.h"
#include "world/world_simulator.h"

namespace freshsel::selection {
namespace {

class FrequencyFixture : public ::testing::Test {
 protected:
  static constexpr TimePoint kT0 = 200;

  void SetUp() override {
    world::DataDomain domain =
        world::DataDomain::Create("loc", 1, "cat", 1).value();
    world::WorldSpec spec{std::move(domain), {}, 300};
    spec.rates.push_back({2.0, 0.01, 0.02, 200});
    Rng rng(223);
    world_ = std::make_unique<world::World>(
        world::SimulateWorld(spec, rng).value());
    for (int i = 0; i < 3; ++i) {
      source::SourceSpec s;
      s.name = "s" + std::to_string(i);
      s.scope = {0};
      s.schedule = {1, 0};
      s.insert_capture = {0.0, 1.0 + i};
      specs_.push_back(s);
    }
    histories_ = source::SimulateSources(*world_, specs_, rng).value();
    model_ = std::make_unique<estimation::WorldChangeModel>(
        estimation::WorldChangeModel::Learn(*world_, kT0).value());
    profiles_ =
        estimation::LearnSourceProfiles(*world_, histories_, kT0).value();
    estimator_ = std::make_unique<estimation::QualityEstimator>(
        estimation::QualityEstimator::Create(*world_, *model_, {},
                                             {kT0 + 30})
            .value());
  }

  std::vector<const estimation::SourceProfile*> ProfilePtrs() const {
    std::vector<const estimation::SourceProfile*> out;
    for (const auto& p : profiles_) out.push_back(&p);
    return out;
  }

  std::unique_ptr<world::World> world_;
  std::vector<source::SourceSpec> specs_;
  std::vector<source::SourceHistory> histories_;
  std::unique_ptr<estimation::WorldChangeModel> model_;
  std::vector<estimation::SourceProfile> profiles_;
  std::unique_ptr<estimation::QualityEstimator> estimator_;
};

TEST_F(FrequencyFixture, BuildValidates) {
  EXPECT_FALSE(BuildAugmentedUniverse(*estimator_, ProfilePtrs(),
                                      {1.0}, 3)
                   .ok());  // Cost count mismatch.
  EXPECT_FALSE(BuildAugmentedUniverse(*estimator_, ProfilePtrs(),
                                      {1.0, 1.0, 1.0}, 0)
                   .ok());  // Bad divisor.
}

TEST_F(FrequencyFixture, AugmentedUniverseStructure) {
  AugmentedUniverse universe =
      BuildAugmentedUniverse(*estimator_, ProfilePtrs(),
                             {100.0, 200.0, 300.0}, 4)
          .value();
  ASSERT_EQ(universe.handles.size(), 12u);  // 3 sources x 4 divisors.
  EXPECT_EQ(estimator_->source_count(), 12u);
  // Elements 0..3 are versions of source 0 with divisors 1..4.
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(universe.source_of[i], i / 4);
    EXPECT_EQ(universe.divisor_of[i], static_cast<std::int64_t>(i % 4 + 1));
    EXPECT_EQ(universe.matroid.GroupOf(
                  static_cast<SourceHandle>(i)),
              i / 4);
  }
  // Costs follow the paper's discount.
  EXPECT_DOUBLE_EQ(universe.costs[0], 100.0 / 1.1);
  EXPECT_DOUBLE_EQ(universe.costs[3], 100.0 / 1.4);
  EXPECT_DOUBLE_EQ(universe.costs[4], 200.0 / 1.1);
}

TEST_F(FrequencyFixture, MatroidForbidsTwoVersionsOfOneSource) {
  AugmentedUniverse universe =
      BuildAugmentedUniverse(*estimator_, ProfilePtrs(),
                             {100.0, 200.0, 300.0}, 3)
          .value();
  // Elements 0 and 1 are both versions of source 0.
  EXPECT_FALSE(universe.matroid.IsIndependent({0, 1}));
  // One version of each source is fine.
  EXPECT_TRUE(universe.matroid.IsIndependent({0, 4, 8}));
}

TEST_F(FrequencyFixture, EndToEndVaryingFrequencySelection) {
  AugmentedUniverse universe =
      BuildAugmentedUniverse(*estimator_, ProfilePtrs(),
                             {100.0, 100.0, 100.0}, 3)
          .value();
  ProfitOracle::Config config;
  config.gain = GainModel(GainFamily::kLinear, QualityMetric::kCoverage);
  ProfitOracle oracle =
      ProfitOracle::Create(estimator_.get(), universe.costs, config)
          .value();
  SelectorConfig selector;
  selector.algorithm = Algorithm::kMaxSub;
  SelectionResult result =
      SelectSources(oracle, selector, &universe.matroid).value();
  EXPECT_TRUE(universe.matroid.IsIndependent(result.selected));
  EXPECT_FALSE(result.selected.empty());
  // Varying frequencies should never do worse than the fixed-frequency
  // subset of the same universe restricted to divisor 1... at least the
  // returned profit must be a real feasible value.
  EXPECT_TRUE(std::isfinite(result.profit));
}

}  // namespace
}  // namespace freshsel::selection
