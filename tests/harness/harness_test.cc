#include <algorithm>

#include <gtest/gtest.h>

#include "harness/characterization.h"
#include "harness/learned_scenario.h"
#include "harness/prediction_experiment.h"
#include "harness/selection_experiment.h"
#include "workloads/bl_generator.h"
#include "workloads/gdelt_generator.h"

namespace freshsel::harness {
namespace {

workloads::BlConfig SmallBl() {
  workloads::BlConfig config;
  config.locations = 8;
  config.categories = 3;
  config.horizon = 200;
  config.t0 = 120;
  config.scale = 0.4;
  config.n_uniform = 2;
  config.n_location_specialists = 4;
  config.n_category_specialists = 3;
  config.n_medium = 1;
  return config;
}

class HarnessFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = std::make_unique<workloads::Scenario>(
        workloads::GenerateBlScenario(SmallBl()).value());
    learned_ = std::make_unique<LearnedScenario>(
        LearnScenario(*scenario_).value());
  }

  std::unique_ptr<workloads::Scenario> scenario_;
  std::unique_ptr<LearnedScenario> learned_;
};

TEST_F(HarnessFixture, LearnScenarioProducesAllProfiles) {
  EXPECT_EQ(learned_->profiles.size(), scenario_->source_count());
  EXPECT_EQ(learned_->t0(), scenario_->t0);
  EXPECT_EQ(learned_->world_model.subdomain_count(),
            scenario_->domain().subdomain_count());
}

TEST_F(HarnessFixture, LargestSubdomainPointsAreSortedAndFiltered) {
  std::vector<DomainPoint> points =
      LargestSubdomainPoints(scenario_->world, scenario_->t0, 4);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(
        scenario_->world.CountAt(points[i - 1].subdomains[0], scenario_->t0),
        scenario_->world.CountAt(points[i].subdomains[0], scenario_->t0));
  }
  // dim1 filter restricts to one location.
  std::vector<DomainPoint> filtered =
      LargestSubdomainPoints(scenario_->world, scenario_->t0, 2, 0);
  for (const DomainPoint& p : filtered) {
    EXPECT_EQ(scenario_->domain().Dim1Of(p.subdomains[0]), 0u);
  }
}

TEST_F(HarnessFixture, WorldCountPredictionErrorsAreSmall) {
  std::vector<world::SubdomainId> all;
  for (world::SubdomainId sub = 0;
       sub < scenario_->domain().subdomain_count(); ++sub) {
    all.push_back(sub);
  }
  std::vector<double> errors =
      WorldCountPredictionErrors(*learned_, all,
                                 MakeTimePoints(scenario_->t0 + 20, 3, 20))
          .value();
  ASSERT_EQ(errors.size(), 3u);
  for (double e : errors) {
    EXPECT_GE(e, 0.0);
    EXPECT_LT(e, 0.15);
  }
}

TEST_F(HarnessFixture, WorldCountPredictionRejectsBeyondHorizon) {
  EXPECT_FALSE(
      WorldCountPredictionErrors(*learned_, {0}, {100000}).ok());
}

TEST_F(HarnessFixture, SourceQualityPredictionErrorsAreReasonable) {
  const std::size_t largest = scenario_->LargestSources(1)[0];
  QualityErrorSeries series =
      SourceQualityPredictionErrors(*learned_, largest, {},
                                    MakeTimePoints(scenario_->t0 + 20, 3, 20))
          .value();
  ASSERT_EQ(series.coverage.size(), 3u);
  for (double e : series.coverage) EXPECT_LT(e, 0.2);
  for (double e : series.accuracy) EXPECT_LT(e, 0.3);
}

TEST_F(HarnessFixture, SourceQualityPredictionValidatesIndex) {
  EXPECT_FALSE(
      SourceQualityPredictionErrors(*learned_, 999, {}, {150}).ok());
}

TEST_F(HarnessFixture, RunComparisonAggregates) {
  ComparisonConfig config;
  config.algorithms = {
      AlgoSpec{selection::Algorithm::kGreedy, 1, 1},
      AlgoSpec{selection::Algorithm::kMaxSub, 1, 1},
      AlgoSpec{selection::Algorithm::kGrasp, 2, 3},
  };
  config.eval_offsets = {20, 40};
  std::vector<DomainPoint> points =
      LargestSubdomainPoints(scenario_->world, scenario_->t0, 2);
  std::vector<AlgoAggregate> aggregates =
      RunComparison(*learned_, scenario_->classes, points, config).value();
  ASSERT_EQ(aggregates.size(), 3u);
  for (const AlgoAggregate& agg : aggregates) {
    EXPECT_EQ(agg.run_count, 2);
    EXPECT_GE(agg.best_count, 0);
    EXPECT_LE(agg.best_count, 2);
    EXPECT_GT(agg.n_sources.mean(), 0.0);
    EXPECT_GE(agg.coverage.mean(), 0.0);
    EXPECT_LE(agg.coverage.mean(), 1.0);
  }
  // At least one algorithm achieved the best profit in every run.
  int total_best = 0;
  for (const AlgoAggregate& agg : aggregates) total_best += agg.best_count;
  EXPECT_GE(total_best, 2);
  EXPECT_EQ(aggregates[2].name, "GRASP-(2,3)");
}

TEST_F(HarnessFixture, RunComparisonVaryingFrequency) {
  ComparisonConfig config;
  config.algorithms = {AlgoSpec{selection::Algorithm::kGreedy, 1, 1},
                       AlgoSpec{selection::Algorithm::kMaxSub, 1, 1}};
  config.eval_offsets = {20};
  config.max_divisor = 3;
  std::vector<DomainPoint> points =
      LargestSubdomainPoints(scenario_->world, scenario_->t0, 1);
  std::vector<AlgoAggregate> aggregates =
      RunComparison(*learned_, scenario_->classes, points, config).value();
  for (const AlgoAggregate& agg : aggregates) {
    EXPECT_EQ(agg.run_count, 1);
    // Divisor stats were collected for selected sources.
    if (!agg.selected_by_class.empty()) {
      EXPECT_FALSE(agg.divisor_by_class.empty());
    }
  }
}

TEST_F(HarnessFixture, CharacterizeSourcesProducesConsistentRows) {
  std::vector<SourceCharacterization> rows =
      CharacterizeSources(*learned_, scenario_->classes);
  ASSERT_EQ(rows.size(), scenario_->source_count());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SourceCharacterization& row = rows[i];
    EXPECT_EQ(row.name, scenario_->sources[i].name());
    EXPECT_EQ(row.source_class, scenario_->classes[i]);
    EXPECT_GE(row.coverage, 0.0);
    EXPECT_LE(row.coverage, 1.0);
    EXPECT_GE(row.local_freshness, 0.0);
    EXPECT_LE(row.local_freshness, 1.0);
    EXPECT_GE(row.insert_g_plateau, row.insert_g_week - 1e-12);
    EXPECT_GT(row.update_interval, 0.0);
    // Accuracy never exceeds coverage (up <= covered, |F u Omega| >=
    // |Omega|).
    EXPECT_LE(row.accuracy, row.coverage + 1e-12);
    // Scope: at most the full domain.
    EXPECT_LE(row.scope_subdomains,
              scenario_->domain().subdomain_count());
  }
  // The uniform sources carry the most items.
  std::size_t max_items = 0;
  for (const auto& row : rows) max_items = std::max(max_items,
                                                    row.items_at_t0);
  bool uniform_is_large = false;
  for (const auto& row : rows) {
    if (row.source_class == workloads::SourceClass::kUniform &&
        row.items_at_t0 > max_items / 2) {
      uniform_is_large = true;
    }
  }
  EXPECT_TRUE(uniform_is_large);
}

TEST(GdeltHarnessTest, ComparisonRunsOnGdeltScenario) {
  workloads::GdeltConfig config;
  config.locations = 8;
  config.event_types = 4;
  config.n_large = 3;
  config.n_small = 25;
  config.scale = 0.5;
  workloads::Scenario gdelt =
      workloads::GenerateGdeltScenario(config).value();
  LearnedScenario learned = LearnScenario(gdelt).value();

  ComparisonConfig comparison;
  comparison.algorithms = {AlgoSpec{selection::Algorithm::kGreedy, 1, 1},
                           AlgoSpec{selection::Algorithm::kMaxSub, 1, 1}};
  comparison.eval_offsets = {1, 3, 5};
  std::vector<DomainPoint> points =
      LargestSubdomainPoints(gdelt.world, gdelt.t0, 2, /*dim1_filter=*/0);
  std::vector<AlgoAggregate> aggregates =
      RunComparison(learned, gdelt.classes, points, comparison).value();
  ASSERT_EQ(aggregates.size(), 2u);
  for (const AlgoAggregate& agg : aggregates) {
    EXPECT_EQ(agg.run_count, 2);
    EXPECT_GT(agg.coverage.mean(), 0.0);
  }
}

TEST_F(HarnessFixture, RunComparisonValidatesClasses) {
  ComparisonConfig config;
  config.algorithms = {AlgoSpec{selection::Algorithm::kGreedy, 1, 1}};
  config.eval_offsets = {20};
  std::vector<DomainPoint> points =
      LargestSubdomainPoints(scenario_->world, scenario_->t0, 1);
  std::vector<workloads::SourceClass> wrong_classes(2);
  EXPECT_FALSE(
      RunComparison(*learned_, wrong_classes, points, config).ok());
}

}  // namespace
}  // namespace freshsel::harness
