// Compile-and-smoke test of the umbrella header: every public module is
// reachable through one include and the core pipeline links end to end.

#include "freshsel.h"

#include <cmath>

#include <gtest/gtest.h>

namespace freshsel {
namespace {

TEST(UmbrellaTest, EndToEndPipelineCompilesAndRuns) {
  workloads::BlConfig config;
  config.locations = 4;
  config.categories = 2;
  config.horizon = 80;
  config.t0 = 50;
  config.scale = 0.3;
  config.n_uniform = 1;
  config.n_location_specialists = 2;
  config.n_category_specialists = 1;
  config.n_medium = 0;
  Result<workloads::Scenario> scenario =
      workloads::GenerateBlScenario(config);
  ASSERT_TRUE(scenario.ok());

  Result<harness::LearnedScenario> learned =
      harness::LearnScenario(*scenario);
  ASSERT_TRUE(learned.ok());

  Result<estimation::QualityEstimator> estimator =
      estimation::QualityEstimator::Create(scenario->world,
                                           learned->world_model, {},
                                           {scenario->t0 + 10});
  ASSERT_TRUE(estimator.ok());
  std::vector<const estimation::SourceProfile*> profiles;
  for (const auto& p : learned->profiles) {
    profiles.push_back(&p);
    ASSERT_TRUE(estimator->AddSource(&p).ok());
  }
  Result<selection::ProfitOracle> oracle = selection::ProfitOracle::Create(
      &*estimator, selection::CostModel::ItemShareCosts(profiles),
      selection::ProfitOracle::Config{});
  ASSERT_TRUE(oracle.ok());
  selection::SelectionResult plan = selection::MaxSub(*oracle);
  EXPECT_TRUE(std::isfinite(plan.profit));
}

}  // namespace
}  // namespace freshsel
