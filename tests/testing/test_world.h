#ifndef FRESHSEL_TESTS_TESTING_TEST_WORLD_H_
#define FRESHSEL_TESTS_TESTING_TEST_WORLD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "source/source_history.h"
#include "world/world.h"

namespace freshsel::testing {

/// Builds a tiny deterministic 2x2-subdomain world used across test suites.
///
/// Horizon 100. Subdomains: (loc, cat) with 2 locations x 2 categories.
/// Entities (id: subdomain, birth, death, updates):
///   0: sub 0, born 0,  dies 50,   updates {10, 30}
///   1: sub 0, born 0,  alive,     updates {20}
///   2: sub 1, born 5,  dies 80,   updates {}
///   3: sub 2, born 15, alive,     updates {40, 60}
///   4: sub 3, born 25, dies 90,   updates {45}
///   5: sub 0, born 60, alive,     updates {70}
inline world::World MakeTestWorld() {
  world::DataDomain domain =
      world::DataDomain::Create("loc", 2, "cat", 2).value();
  world::World w(std::move(domain), /*horizon=*/100);
  auto add = [&](world::EntityId id, world::SubdomainId sub, TimePoint birth,
                 TimePoint death, std::vector<TimePoint> updates) {
    world::EntityRecord rec;
    rec.id = id;
    rec.subdomain = sub;
    rec.birth = birth;
    rec.death = death;
    rec.update_times = std::move(updates);
    Status status = w.AddEntity(std::move(rec));
    (void)status;
  };
  add(0, 0, 0, 50, {10, 30});
  add(1, 0, 0, world::kNever, {20});
  add(2, 1, 5, 80, {});
  add(3, 2, 15, world::kNever, {40, 60});
  add(4, 3, 25, 90, {45});
  add(5, 0, 60, world::kNever, {70});
  Status status = w.Finalize();
  (void)status;
  return w;
}

/// A hand-built source over MakeTestWorld():
///   * carries entity 0 from day 2 (v0), learns v1 at 12, v2 at 35,
///     deletes it at day 55;
///   * carries entity 1 from day 0 (v0) and learns v1 at day 25;
///   * carries entity 2 from day 8, never deletes it (ghost after 80);
///   * never carries entities 3, 4, 5.
inline source::SourceHistory MakeTestSource(const world::World& w,
                                            std::int64_t period = 1) {
  source::SourceSpec spec;
  spec.name = "test-source";
  spec.scope = {0, 1};
  spec.schedule.period = period;
  spec.schedule.phase = 0;
  source::SourceHistory history(spec, w.entity_count());
  auto add = [&](world::EntityId id, world::SubdomainId sub,
                 TimePoint inserted, TimePoint deleted,
                 std::vector<std::pair<std::uint32_t, TimePoint>> captures) {
    source::CaptureRecord rec;
    rec.entity = id;
    rec.subdomain = sub;
    rec.inserted = inserted;
    rec.deleted = deleted;
    rec.version_captures = std::move(captures);
    Status status = history.AddRecord(std::move(rec));
    (void)status;
  };
  add(0, 0, 2, 55, {{0, 2}, {1, 12}, {2, 35}});
  add(1, 0, 0, world::kNever, {{0, 0}, {1, 25}});
  add(2, 1, 8, world::kNever, {{0, 8}});
  return history;
}

}  // namespace freshsel::testing

#endif  // FRESHSEL_TESTS_TESTING_TEST_WORLD_H_
