#ifndef FRESHSEL_TESTS_TESTING_SCRATCH_H_
#define FRESHSEL_TESTS_TESTING_SCRATCH_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <string_view>

namespace freshsel::testing {

/// Process-unique counter for scratch paths. Parallel `ctest -j` schedules
/// run many test binaries against the same /tmp at once, and gtest's
/// TempDir() alone does not distinguish them; pid + counter does.
inline unsigned NextScratchId() {
  static std::atomic<unsigned> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// A per-test scratch directory: created empty on construction under
/// gtest's TempDir(), named after the running test plus a pid/counter
/// suffix, recursively removed on destruction. Replaces the hand-rolled
/// SetUp/TearDown remove_all dance the e2e suites used to copy around.
class ScratchDir {
 public:
  explicit ScratchDir(std::string_view tag = "scratch") {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = "freshsel_";
    name += tag;
    if (info != nullptr) {
      name += '_';
      name += info->test_suite_name();
      name += '_';
      name += info->name();
    }
    name += '_';
    name += std::to_string(::getpid());
    name += '_';
    name += std::to_string(NextScratchId());
    path_ = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }

  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // Best effort in teardown.
  }

  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return path_; }

  /// Path of `name` inside the scratch directory.
  std::string file(std::string_view name) const {
    return path_ + "/" + std::string(name);
  }

 private:
  std::string path_;
};

/// A short, process-unique unix-socket path directly in /tmp.
/// sockaddr_un::sun_path caps paths at ~107 bytes and test-name-derived
/// TempDir() paths easily blow past it, so socket paths do not live in the
/// ScratchDir. The server unlinks the path on drain; call CleanupSocket in
/// teardown anyway so an aborted test leaves nothing behind.
inline std::string UniqueSocketPath() {
  return "/tmp/fsel_" + std::to_string(::getpid()) + "_" +
         std::to_string(NextScratchId()) + ".sock";
}

inline void CleanupSocket(const std::string& path) { ::unlink(path.c_str()); }

}  // namespace freshsel::testing

#endif  // FRESHSEL_TESTS_TESTING_SCRATCH_H_
