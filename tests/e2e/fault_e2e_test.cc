// Deterministic fault-injected end-to-end run (DESIGN.md §11): the same
// CLI invocation with the same --failpoints spec and --deterministic-metrics
// must produce byte-identical selections and metrics files on every repeat,
// including under a parallel `ctest -j` schedule. Fault injection is seeded
// and counted, never timed.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.h"
#include "fault/failpoint.h"
#include "obs/macros.h"
#include "testing/scratch.h"

namespace freshsel {
namespace {

class FaultE2eTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::FailpointRegistry::Global().DisarmAll();
  }

  int Run(std::vector<const char*> argv, std::string* output = nullptr) {
    argv.insert(argv.begin(), "freshsel");
    std::ostringstream out;
    std::ostringstream err;
    const int code = cli::RunMain(static_cast<int>(argv.size()),
                                  argv.data(), out, err);
    if (output != nullptr) *output = out.str() + err.str();
    return code;
  }

  static std::string ReadFile(const std::string& path) {
    std::stringstream buffer;
    buffer << std::ifstream(path).rdbuf();
    return buffer.str();
  }

  /// Per-test unique scenario directory (tests/testing/scratch.h).
  testing::ScratchDir scratch_{"fault_e2e"};
  const std::string& dir_ = scratch_.path();
};

#if FRESHSEL_FAULT_ACTIVE

TEST_F(FaultE2eTest, FaultInjectedSelectIsByteReproducible) {
  std::string output;
  ASSERT_EQ(Run({"simulate", "--workload", "bl", "--out", dir_.c_str(),
                 "--seed", "7", "--scale", "0.3", "--locations", "5",
                 "--categories", "2"},
                &output),
            0)
      << output;

  std::vector<std::string> metrics_files;
  std::vector<std::string> selections;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const std::string metrics_path =
        dir_ + "/metrics_" + std::to_string(repeat) + ".json";
    const std::string metrics_flag = "--metrics-out=" + metrics_path;
    // Failpoint hit counters persist across in-process runs, so re-arm
    // before each repeat for an identical injection schedule.
    fault::FailpointRegistry::Global().DisarmAll();
    std::string run_output;
    ASSERT_EQ(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                   "--points", "3", "--stride", "14", "--failpoints",
                   "io.read=nth:2", "--retry-max", "5", "--retry-backoff",
                   "0", "--deterministic-metrics", metrics_flag.c_str()},
                  &run_output),
              0)
        << run_output;
    metrics_files.push_back(ReadFile(metrics_path));
    selections.push_back(run_output);
  }

  for (int repeat = 1; repeat < 3; ++repeat) {
    EXPECT_EQ(metrics_files[repeat], metrics_files[0])
        << "metrics drifted on repeat " << repeat;
    EXPECT_EQ(selections[repeat], selections[0])
        << "selection output drifted on repeat " << repeat;
  }

  // The injections actually happened and were absorbed by retries (the
  // registry detail disappears from reports under -DFRESHSEL_OBS=OFF).
#if FRESHSEL_OBS_ACTIVE
  EXPECT_NE(metrics_files[0].find("\"fault.failpoints.injected\""),
            std::string::npos);
  EXPECT_NE(metrics_files[0].find("\"io.retry.attempts\""),
            std::string::npos);
  EXPECT_EQ(metrics_files[0].find("\"io.retry.exhausted\""),
            std::string::npos);
#endif  // FRESHSEL_OBS_ACTIVE
}

TEST_F(FaultE2eTest, ProbabilisticFaultsAreSeedDeterministic) {
  std::string output;
  ASSERT_EQ(Run({"simulate", "--workload", "bl", "--out", dir_.c_str(),
                 "--seed", "7", "--scale", "0.3", "--locations", "5",
                 "--categories", "2"},
                &output),
            0)
      << output;
  std::vector<std::string> metrics_files;
  for (int repeat = 0; repeat < 2; ++repeat) {
    const std::string metrics_path =
        dir_ + "/prob_metrics_" + std::to_string(repeat) + ".json";
    const std::string metrics_flag = "--metrics-out=" + metrics_path;
    fault::FailpointRegistry::Global().DisarmAll();
    std::string run_output;
    ASSERT_EQ(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                   "--points", "3", "--stride", "14", "--failpoints",
                   "io.read=prob:0.3:99", "--retry-max", "8",
                   "--retry-backoff", "0", "--deterministic-metrics",
                   metrics_flag.c_str()},
                  &run_output),
              0)
        << run_output;
    metrics_files.push_back(ReadFile(metrics_path));
  }
  EXPECT_EQ(metrics_files[0], metrics_files[1]);
}

TEST_F(FaultE2eTest, WriteFaultsSurfaceWhenRetriesExhaust) {
  // simulate writes the scenario; an always-on write failpoint must fail
  // the command with the injected error, not crash or half-write silently.
  fault::FailpointRegistry::Global().DisarmAll();
  std::string output;
  EXPECT_NE(Run({"simulate", "--workload", "bl", "--out", dir_.c_str(),
                 "--scale", "0.3", "--locations", "5", "--categories", "2",
                 "--failpoints", "io.write=always", "--retry-max", "2",
                 "--retry-backoff", "0"},
                &output),
            0);
  EXPECT_NE(output.find("injected fault"), std::string::npos);
}

#endif  // FRESHSEL_FAULT_ACTIVE

}  // namespace
}  // namespace freshsel
