// Daemon lifecycle end-to-end (ISSUE 10 satellite): `freshsel serve` is
// started in-process on a unix socket, health-checked, queried (and the
// answer compared with batch `freshsel select` and with the `freshsel
// query` subcommand), then SIGTERM'd mid-flight - it must drain, print
// "drained", and exit 0.

#include <gtest/gtest.h>

#include <csignal>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/commands.h"
#include "obs/json_reader.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "testing/scratch.h"

namespace freshsel {
namespace {

int RunCli(std::vector<const char*> argv, std::string* output) {
  argv.insert(argv.begin(), "freshsel");
  std::ostringstream out;
  std::ostringstream err;
  const int code =
      cli::RunMain(static_cast<int>(argv.size()), argv.data(), out, err);
  *output = out.str() + err.str();
  return code;
}

/// Connects to the daemon's unix socket, retrying while it boots. The
/// daemon prints "listening on" only after the socket is bound, but the
/// serve thread races this test, so poll instead of sleeping blind.
Result<serve::Client> ConnectWithRetry(const std::string& socket_path) {
  for (int attempt = 0; attempt < 2000; ++attempt) {
    Result<serve::Client> client = serve::Client::ConnectUnix(socket_path);
    if (client.ok()) return client;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Status::Unavailable("daemon never came up on " + socket_path);
}

TEST(ServeE2eTest, ServeDrainsCleanlyOnSigterm) {
  testing::ScratchDir scratch("serve_e2e");
  const std::string socket_path = testing::UniqueSocketPath();
  std::string output;
  ASSERT_EQ(RunCli({"simulate", "--workload", "bl", "--out",
                 scratch.path().c_str(), "--seed", "7", "--scale", "0.3",
                 "--locations", "5", "--categories", "2"},
                &output),
            0)
      << output;

  // The batch reference the daemon's answer must match byte-for-byte.
  std::string batch;
  ASSERT_EQ(RunCli({"select", "--dir", scratch.path().c_str(), "--t0", "100",
                 "--points", "3", "--stride", "14"},
                &batch),
            0)
      << batch;

  // `freshsel serve` blocks until drained; run it like a daemon.
  std::string serve_output;
  int serve_code = -1;
  std::thread daemon([&] {
    serve_code = RunCli({"serve", "--dir", scratch.path().c_str(), "--t0",
                      "100", "--socket", socket_path.c_str()},
                     &serve_output);
  });

  {
    Result<serve::Client> client = ConnectWithRetry(socket_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    // Health check: serving, one resident scenario.
    Result<std::string> ping = client->Call(
        serve::SerializeControlRequest(true, 1, serve::RequestOp::kPing));
    ASSERT_TRUE(ping.ok()) << ping.status().ToString();
    Result<obs::JsonValue> ping_doc = obs::ParseJson(*ping);
    ASSERT_TRUE(ping_doc.ok());
    ASSERT_TRUE(ping_doc->Find("ok")->AsBool()) << *ping;
    EXPECT_EQ(ping_doc->Find("result")->StringOr("state", ""), "serving");
    EXPECT_EQ(ping_doc->Find("result")->UintOr("scenarios", 0), 1u);

    // A query over the socket answers with the batch-identical text.
    serve::QueryParams params;
    params.t0 = 100;
    params.points = 3;
    params.stride = 14;
    Result<std::string> response = client->Call(
        serve::SerializeQueryRequest(true, 2, params));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    Result<obs::JsonValue> doc = obs::ParseJson(*response);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(doc->Find("ok")->AsBool()) << *response;
    const std::string text = doc->Find("result")->StringOr("text", "");
    ASSERT_FALSE(text.empty());
    EXPECT_TRUE(batch.ends_with(text))
        << "daemon text:\n" << text << "\nbatch output:\n" << batch;

    // The `freshsel query` subcommand against the same daemon prints that
    // same text verbatim.
    std::string query_output;
    ASSERT_EQ(RunCli({"query", "--socket", socket_path.c_str(), "--t0", "100",
                   "--points", "3", "--stride", "14"},
                  &query_output),
              0)
        << query_output;
    EXPECT_EQ(query_output, text);

    // And `freshsel query --op ping` works for scripting health checks.
    std::string ping_output;
    ASSERT_EQ(RunCli({"query", "--socket", socket_path.c_str(), "--op", "ping"},
                  &ping_output),
              0)
        << ping_output;
    EXPECT_NE(ping_output.find("\"state\":\"serving\""), std::string::npos)
        << ping_output;
  }  // Client closes before the drain below.

  // SIGTERM lands in this process; RunServe's handler forwards it to the
  // server, which drains and returns.
  ASSERT_EQ(std::raise(SIGTERM), 0);
  daemon.join();
  EXPECT_EQ(serve_code, 0) << serve_output;
  EXPECT_NE(serve_output.find("loaded scenario 'default'"),
            std::string::npos)
      << serve_output;
  EXPECT_NE(serve_output.find("listening on unix:" + socket_path),
            std::string::npos)
      << serve_output;
  EXPECT_NE(serve_output.find("drained"), std::string::npos) << serve_output;

  // The drain removed the socket file.
  EXPECT_FALSE(serve::Client::ConnectUnix(socket_path).ok());
  testing::CleanupSocket(socket_path);
}

TEST(ServeE2eTest, SigtermMidFlightStillAnswersTheInflightQuery) {
  testing::ScratchDir scratch("serve_e2e_midflight");
  const std::string socket_path = testing::UniqueSocketPath();
  std::string output;
  ASSERT_EQ(RunCli({"simulate", "--workload", "bl", "--out",
                 scratch.path().c_str(), "--seed", "7", "--scale", "0.3",
                 "--locations", "5", "--categories", "2"},
                &output),
            0)
      << output;

  std::string serve_output;
  int serve_code = -1;
  std::thread daemon([&] {
    serve_code = RunCli({"serve", "--dir", scratch.path().c_str(), "--t0",
                      "100", "--socket", socket_path.c_str()},
                     &serve_output);
  });

  {
    Result<serve::Client> client = ConnectWithRetry(socket_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    serve::QueryParams params;
    params.t0 = 100;
    params.points = 3;
    params.stride = 14;
    // Pipeline the query, then shoot the daemon before reading the answer:
    // the drain must still deliver the in-flight response.
    ASSERT_TRUE(
        client->Send(serve::SerializeQueryRequest(true, 1, params)).ok());
    ASSERT_EQ(std::raise(SIGTERM), 0);
    // Three clean outcomes, depending on how far the request got before
    // the drain: admitted (ok + full result), refused (structured
    // `draining` error), or never read (EOF from the drain's read-side
    // shutdown). Anything else - a crash, a half-written line - fails.
    // The *deterministic* in-flight-delivery guarantee is pinned down in
    // server_test.cc with a blocking stub handler.
    Result<std::string> response = client->ReadLine();
    if (response.ok()) {
      Result<obs::JsonValue> doc = obs::ParseJson(*response);
      ASSERT_TRUE(doc.ok()) << *response;
      const obs::JsonValue* ok = doc->Find("ok");
      ASSERT_NE(ok, nullptr) << *response;
      if (!ok->AsBool()) {
        EXPECT_EQ(doc->Find("error")->StringOr("code", ""), "draining")
            << *response;
      } else {
        EXPECT_NE(doc->Find("result")->StringOr("text", "").find("profit"),
                  std::string::npos)
            << *response;
      }
    } else {
      EXPECT_EQ(response.status().code(), StatusCode::kIoError)
          << response.status().ToString();
    }
  }

  daemon.join();
  EXPECT_EQ(serve_code, 0) << serve_output;
  EXPECT_NE(serve_output.find("drained"), std::string::npos) << serve_output;
  testing::CleanupSocket(socket_path);
}

}  // namespace
}  // namespace freshsel
