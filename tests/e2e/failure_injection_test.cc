// Failure injection: pathological inputs must degrade gracefully - empty
// sources, dead subdomains, all-censored learning data, degenerate
// oracles. Nothing here may crash, NaN, or return out-of-range metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "estimation/quality_estimator.h"
#include "estimation/source_profile.h"
#include "estimation/world_change_model.h"
#include "metrics/quality.h"
#include "selection/budgeted_greedy.h"
#include "selection/cost.h"
#include "selection/selector.h"
#include "source/source_simulator.h"
#include "world/world_simulator.h"

namespace freshsel {
namespace {

bool AllMetricsSane(const estimation::EstimatedQuality& q) {
  for (double v : {q.coverage, q.local_freshness, q.global_freshness,
                   q.accuracy}) {
    if (!std::isfinite(v) || v < 0.0 || v > 1.0) return false;
  }
  return std::isfinite(q.expected_world) &&
         std::isfinite(q.expected_result) && std::isfinite(q.expected_up);
}

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world::DataDomain domain =
        world::DataDomain::Create("loc", 2, "cat", 2).value();
    world::WorldSpec spec{std::move(domain), {}, 120};
    spec.rates.push_back({1.0, 0.01, 0.02, 60});
    spec.rates.push_back({0.5, 0.01, 0.02, 40});
    spec.rates.push_back({0.0, 0.0, 0.0, 0});  // Dead subdomain: empty.
    spec.rates.push_back({0.5, 0.01, 0.02, 40});
    Rng rng(811);
    world_ = std::make_unique<world::World>(
        world::SimulateWorld(spec, rng).value());
    model_ = std::make_unique<estimation::WorldChangeModel>(
        estimation::WorldChangeModel::Learn(*world_, 80).value());
  }

  std::unique_ptr<world::World> world_;
  std::unique_ptr<estimation::WorldChangeModel> model_;
};

TEST_F(FailureInjectionTest, EmptySourceLearnsAndEstimates) {
  // A source that exists but never captured anything.
  source::SourceSpec spec;
  spec.name = "empty";
  spec.scope = {0};
  source::SourceHistory empty(spec, world_->entity_count());
  estimation::SourceProfile profile =
      estimation::LearnSourceProfile(*world_, empty, 80).value();
  EXPECT_TRUE(profile.observed_scope.empty());
  EXPECT_DOUBLE_EQ(profile.g_insert.FinalValue(), 0.0);

  estimation::QualityEstimator estimator =
      estimation::QualityEstimator::Create(*world_, *model_, {}, {100})
          .value();
  auto handle = estimator.AddSource(&profile, 1).value();
  estimation::EstimatedQuality q = estimator.Estimate({handle}, 100);
  EXPECT_TRUE(AllMetricsSane(q));
  EXPECT_DOUBLE_EQ(q.coverage, 0.0);
}

TEST_F(FailureInjectionTest, DeadSubdomainEstimatorIsSane) {
  // Estimator restricted to the empty subdomain 2.
  estimation::QualityEstimator estimator =
      estimation::QualityEstimator::Create(*world_, *model_, {2}, {100})
          .value();
  EXPECT_EQ(estimator.domain_count_t0(), 0);
  estimation::EstimatedQuality q = estimator.Estimate({}, 100);
  EXPECT_TRUE(AllMetricsSane(q));
}

TEST_F(FailureInjectionTest, SourceMissingEverythingStillSelectable) {
  source::SourceSpec spec;
  spec.name = "blind";
  spec.scope = {0, 1, 3};
  spec.schedule = {1, 0};
  spec.insert_capture = {1.0, 1.0};  // Misses every appearance.
  spec.update_capture = {1.0, 1.0};
  spec.delete_capture = {1.0, 1.0};
  spec.initial_awareness = 0.0;
  Rng rng(821);
  source::SourceHistory blind =
      source::SimulateSource(*world_, spec, rng).value();
  EXPECT_EQ(blind.records().size(), 0u);

  // A useful companion source.
  spec.name = "ok";
  spec.insert_capture = {0.0, 1.0};
  spec.update_capture = {0.0, 1.0};
  spec.delete_capture = {0.0, 1.0};
  spec.initial_awareness = 0.9;
  source::SourceHistory ok =
      source::SimulateSource(*world_, spec, rng).value();

  std::vector<source::SourceHistory> histories;
  histories.push_back(std::move(blind));
  histories.push_back(std::move(ok));
  std::vector<estimation::SourceProfile> profiles =
      estimation::LearnSourceProfiles(*world_, histories, 80).value();

  estimation::QualityEstimator estimator =
      estimation::QualityEstimator::Create(*world_, *model_, {}, {100})
          .value();
  std::vector<const estimation::SourceProfile*> ptrs;
  for (const auto& p : profiles) {
    ptrs.push_back(&p);
    ASSERT_TRUE(estimator.AddSource(&p).ok());
  }
  // The blind source has no items, so the useful source carries the whole
  // normalized cost (1.0); soften the cost weight so selecting it stays
  // profitable.
  selection::ProfitOracle::Config config;
  config.cost_weight = 0.1;
  selection::ProfitOracle oracle =
      selection::ProfitOracle::Create(
          &estimator, selection::CostModel::ItemShareCosts(ptrs), config)
          .value();
  selection::SelectionResult result = selection::MaxSub(oracle);
  // The blind source contributes nothing; the useful one is selected.
  EXPECT_EQ(result.selected, (std::vector<selection::SourceHandle>{1}));
}

TEST_F(FailureInjectionTest, ZeroCostUniverseSelectsEverythingUseful) {
  source::SourceSpec spec;
  spec.name = "s";
  spec.scope = {0, 1, 3};
  spec.schedule = {1, 0};
  spec.insert_capture = {0.2, 2.0};
  Rng rng(823);
  std::vector<source::SourceHistory> histories =
      source::SimulateSources(*world_, {spec, spec, spec}, rng).value();
  std::vector<estimation::SourceProfile> profiles =
      estimation::LearnSourceProfiles(*world_, histories, 80).value();
  estimation::QualityEstimator estimator =
      estimation::QualityEstimator::Create(*world_, *model_, {}, {100})
          .value();
  for (const auto& p : profiles) ASSERT_TRUE(estimator.AddSource(&p).ok());
  // All-zero costs: normalization must not divide by zero.
  selection::ProfitOracle oracle =
      selection::ProfitOracle::Create(&estimator, {0.0, 0.0, 0.0},
                                      selection::ProfitOracle::Config{})
          .value();
  EXPECT_DOUBLE_EQ(oracle.Cost({0, 1, 2}), 0.0);
  selection::SelectionResult result = selection::Greedy(oracle);
  EXPECT_EQ(result.selected.size(), 3u);

  // BudgetedGreedy with zero costs: everything is free.
  selection::ProfitOracle::Config budgeted_config;
  budgeted_config.budget = 0.5;
  budgeted_config.cost_weight = 0.0;
  selection::ProfitOracle budgeted =
      selection::ProfitOracle::Create(&estimator, {0.0, 0.0, 0.0},
                                      budgeted_config)
          .value();
  selection::SelectionResult free = selection::BudgetedGreedy(budgeted);
  EXPECT_EQ(free.selected.size(), 3u);
}

TEST_F(FailureInjectionTest, DuplicateProfileRegistrationsBehave) {
  source::SourceSpec spec;
  spec.name = "dup";
  spec.scope = {0};
  spec.schedule = {1, 0};
  Rng rng(827);
  source::SourceHistory history =
      source::SimulateSource(*world_, spec, rng).value();
  estimation::SourceProfile profile =
      estimation::LearnSourceProfile(*world_, history, 80).value();
  estimation::QualityEstimator estimator =
      estimation::QualityEstimator::Create(*world_, *model_, {}, {100})
          .value();
  auto a = estimator.AddSource(&profile, 1).value();
  auto b = estimator.AddSource(&profile, 1).value();
  // At t0 the estimate is the signature union, so duplicates are exactly
  // idempotent.
  EXPECT_NEAR(estimator.Estimate({a}, 80).coverage,
              estimator.Estimate({a, b}, 80).coverage, 1e-12);
  // At future times the estimator's independence assumption treats the
  // copies as two observers, so the duplicate may only *raise* the
  // estimate, and only slightly.
  const double single = estimator.Estimate({a}, 100).coverage;
  const double doubled = estimator.Estimate({a, b}, 100).coverage;
  EXPECT_GE(doubled, single - 1e-12);
  EXPECT_LE(doubled, single + 0.05);
}

TEST_F(FailureInjectionTest, ExactMetricsOnEmptySourceList) {
  metrics::QualityCounts counts = metrics::ComputeCounts(*world_, {}, 60);
  EXPECT_EQ(counts.up, 0);
  EXPECT_EQ(counts.in_result, 0);
  EXPECT_GT(counts.world_total, 0);
  metrics::QualityMetrics m = metrics::MetricsFromCounts(counts);
  EXPECT_DOUBLE_EQ(m.coverage, 0.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
}

TEST_F(FailureInjectionTest, WorldWithSingleEntity) {
  world::DataDomain domain =
      world::DataDomain::Create("a", 1, "b", 1).value();
  world::World tiny(std::move(domain), 20);
  world::EntityRecord rec;
  rec.id = 0;
  rec.birth = 0;
  ASSERT_TRUE(tiny.AddEntity(rec).ok());
  ASSERT_TRUE(tiny.Finalize().ok());
  estimation::WorldChangeModel model =
      estimation::WorldChangeModel::Learn(tiny, 10).value();
  EXPECT_DOUBLE_EQ(model.subdomain(0).lambda_insert, 0.0);
  estimation::QualityEstimator estimator =
      estimation::QualityEstimator::Create(tiny, model, {}, {15}).value();
  EXPECT_TRUE(AllMetricsSane(estimator.Estimate({}, 15)));
}

}  // namespace
}  // namespace freshsel
