// End-to-end robustness across scenario seeds: the whole pipeline
// (simulate -> learn -> estimate -> select) must behave sanely for any
// seed, not just the benches' defaults. Parameterized gtest sweeps seeds.

#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "harness/learned_scenario.h"
#include "harness/prediction_experiment.h"
#include "metrics/quality.h"
#include "selection/cost.h"
#include "selection/selector.h"
#include "workloads/bl_generator.h"
#include "workloads/gdelt_generator.h"

namespace freshsel {
namespace {

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    workloads::BlConfig config;
    config.seed = GetParam();
    config.locations = 10;
    config.categories = 4;
    config.horizon = 260;
    config.t0 = 160;
    config.scale = 0.35;
    config.n_uniform = 2;
    config.n_location_specialists = 6;
    config.n_category_specialists = 4;
    config.n_medium = 2;
    scenario_ = std::make_unique<workloads::Scenario>(
        workloads::GenerateBlScenario(config).value());
    learned_ = std::make_unique<harness::LearnedScenario>(
        harness::LearnScenario(*scenario_).value());
  }

  std::unique_ptr<workloads::Scenario> scenario_;
  std::unique_ptr<harness::LearnedScenario> learned_;
};

TEST_P(SeedSweepTest, WorldPredictionStaysAccurate) {
  std::vector<world::SubdomainId> all;
  for (world::SubdomainId sub = 0;
       sub < scenario_->domain().subdomain_count(); ++sub) {
    all.push_back(sub);
  }
  std::vector<double> errors =
      harness::WorldCountPredictionErrors(
          *learned_, all, MakeTimePoints(scenario_->t0 + 25, 4, 25))
          .value();
  for (double e : errors) EXPECT_LT(e, 0.12) << "seed " << GetParam();
}

TEST_P(SeedSweepTest, LargestSourceQualityPredictionStaysAccurate) {
  const std::size_t largest = scenario_->LargestSources(1)[0];
  harness::QualityErrorSeries series =
      harness::SourceQualityPredictionErrors(
          *learned_, largest, {}, MakeTimePoints(scenario_->t0 + 25, 4, 25))
          .value();
  for (double e : series.coverage) {
    EXPECT_LT(e, 0.12) << "seed " << GetParam();
  }
  for (double e : series.local_freshness) {
    EXPECT_LT(e, 0.25) << "seed " << GetParam();
  }
}

TEST_P(SeedSweepTest, SelectionIsFeasibleAndOrdered) {
  estimation::QualityEstimator estimator =
      estimation::QualityEstimator::Create(
          scenario_->world, learned_->world_model, {},
          MakeTimePoints(scenario_->t0 + 14, 5, 14))
          .value();
  std::vector<const estimation::SourceProfile*> profiles;
  for (const auto& p : learned_->profiles) {
    profiles.push_back(&p);
    ASSERT_TRUE(estimator.AddSource(&p).ok());
  }
  selection::ProfitOracle oracle =
      selection::ProfitOracle::Create(
          &estimator, selection::CostModel::ItemShareCosts(profiles),
          selection::ProfitOracle::Config{})
          .value();

  const selection::SelectionResult greedy = selection::Greedy(oracle);
  const selection::SelectionResult maxsub = selection::MaxSub(oracle);
  const selection::SelectionResult grasp =
      selection::Grasp(oracle, selection::GraspParams{2, 8, GetParam()});

  for (const selection::SelectionResult* result :
       {&greedy, &maxsub, &grasp}) {
    EXPECT_TRUE(std::isfinite(result->profit)) << "seed " << GetParam();
    // Selections are sorted, duplicate-free handles in range.
    for (std::size_t i = 0; i < result->selected.size(); ++i) {
      EXPECT_LT(result->selected[i], profiles.size());
      if (i > 0) {
        EXPECT_LT(result->selected[i - 1], result->selected[i]);
      }
    }
  }
  // The local searches never lose to Greedy by more than noise, and GRASP
  // with restarts never loses to hill climbing.
  EXPECT_GE(maxsub.profit, greedy.profit - 0.02) << "seed " << GetParam();
  EXPECT_GE(grasp.profit, greedy.profit - 0.02) << "seed " << GetParam();
}

TEST_P(SeedSweepTest, EstimatedSelectionQualityMatchesRealizedFuture) {
  estimation::QualityEstimator estimator =
      estimation::QualityEstimator::Create(
          scenario_->world, learned_->world_model, {},
          {scenario_->t0 + 50})
          .value();
  std::vector<const estimation::SourceProfile*> profiles;
  for (const auto& p : learned_->profiles) {
    profiles.push_back(&p);
    ASSERT_TRUE(estimator.AddSource(&p).ok());
  }
  selection::ProfitOracle oracle =
      selection::ProfitOracle::Create(
          &estimator, selection::CostModel::ItemShareCosts(profiles),
          selection::ProfitOracle::Config{})
          .value();
  selection::SelectionResult plan = selection::MaxSub(oracle);
  ASSERT_FALSE(plan.selected.empty());

  const double predicted =
      estimator.Estimate(plan.selected, scenario_->t0 + 50).coverage;
  std::vector<const source::SourceHistory*> chosen;
  for (selection::SourceHandle h : plan.selected) {
    chosen.push_back(&scenario_->sources[h]);
  }
  const double realized =
      metrics::MetricsFromCounts(
          metrics::ComputeCounts(scenario_->world, chosen,
                                 scenario_->t0 + 50))
          .coverage;
  EXPECT_NEAR(predicted, realized, 0.12) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1, 17, 99, 2024, 777777));

class GdeltSeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GdeltSeedSweepTest, ShortWindowPipelineStaysSane) {
  workloads::GdeltConfig config;
  config.seed = GetParam();
  config.locations = 10;
  config.event_types = 5;
  config.n_large = 3;
  config.n_small = 30;
  config.scale = 0.5;
  workloads::Scenario gdelt =
      workloads::GenerateGdeltScenario(config).value();
  harness::LearnedScenario learned =
      harness::LearnScenario(gdelt).value();

  // Event-count prediction over the eval week (hot location).
  std::vector<double> errors =
      harness::WorldCountPredictionErrors(
          learned, gdelt.domain().SubdomainsInDim1(0),
          MakeTimePoints(gdelt.t0 + 1, 5, 1))
          .value();
  for (double e : errors) EXPECT_LT(e, 0.15) << "seed " << GetParam();

  // Selection remains feasible with only 15 days of training.
  estimation::QualityEstimator estimator =
      estimation::QualityEstimator::Create(
          gdelt.world, learned.world_model,
          gdelt.domain().SubdomainsInDim1(0),
          MakeTimePoints(gdelt.t0 + 1, 7, 1))
          .value();
  std::vector<const estimation::SourceProfile*> profiles;
  for (const auto& p : learned.profiles) {
    profiles.push_back(&p);
    ASSERT_TRUE(estimator.AddSource(&p).ok());
  }
  selection::ProfitOracle oracle =
      selection::ProfitOracle::Create(
          &estimator, selection::CostModel::ItemShareCosts(profiles),
          selection::ProfitOracle::Config{})
          .value();
  selection::SelectionResult plan = selection::MaxSub(oracle);
  EXPECT_TRUE(std::isfinite(plan.profit)) << "seed " << GetParam();
  EXPECT_FALSE(plan.selected.empty()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GdeltSeedSweepTest,
                         ::testing::Values(3, 444, 31337));

}  // namespace
}  // namespace freshsel
