#include "common/check.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace freshsel {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  FRESHSEL_CHECK(1 + 1 == 2);
  FRESHSEL_CHECK(true) << "detail is not evaluated on success";
  FRESHSEL_CHECK_FINITE(0.5);
  FRESHSEL_CHECK_NONNEG(0.0);
  FRESHSEL_CHECK_PROB(0.0);
  FRESHSEL_CHECK_PROB(1.0);
  FRESHSEL_DCHECK(true);
  FRESHSEL_DCHECK_PROB(0.25);
}

TEST(CheckDeathTest, FailedCheckAbortsWithFormattedMessage) {
  EXPECT_DEATH(FRESHSEL_CHECK(2 + 2 == 5) << "arithmetic drifted",
               "FRESHSEL_CHECK\\(2 \\+ 2 == 5\\) failed: arithmetic drifted");
}

TEST(CheckDeathTest, MessageNamesFileAndCondition) {
  EXPECT_DEATH(FRESHSEL_CHECK(false), "check_test.cc");
}

TEST(CheckDeathTest, MessageCarriesLineNumber) {
  EXPECT_DEATH(FRESHSEL_CHECK(false), "check_test\\.cc:[0-9]+");
}

TEST(CheckDeathTest, StreamedDetailAcceptsMultipleValues) {
  EXPECT_DEATH(FRESHSEL_CHECK(false) << "k=" << 3 << " name=" << "x"
                                     << " p=" << 0.5,
               "k=3 name=x p=0.5");
}

TEST(CheckDeathTest, CheckProbRejectsOutOfRangeAndNan) {
  EXPECT_DEATH(FRESHSEL_CHECK_PROB(1.5), "must be a probability");
  EXPECT_DEATH(FRESHSEL_CHECK_PROB(-0.1), "must be a probability");
  EXPECT_DEATH(FRESHSEL_CHECK_PROB(std::nan("")), "must be a probability");
}

TEST(CheckDeathTest, CheckFiniteRejectsInfAndNan) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(FRESHSEL_CHECK_FINITE(inf), "is not finite");
  EXPECT_DEATH(FRESHSEL_CHECK_FINITE(std::nan("")), "is not finite");
}

TEST(CheckDeathTest, CheckNonnegRejectsNegative) {
  EXPECT_DEATH(FRESHSEL_CHECK_NONNEG(-1e-9), "finite and non-negative");
  EXPECT_DEATH(FRESHSEL_CHECK_NONNEG(std::nan("")), "finite and non-negative");
  EXPECT_DEATH(
      FRESHSEL_CHECK_NONNEG(-std::numeric_limits<double>::infinity()),
      "finite and non-negative");
}

TEST(CheckTest, ChecksComposeInExpressionContexts) {
  // The macros must stay single statements usable in unbraced control flow.
  if (true)
    FRESHSEL_CHECK(true) << "then-arm";
  else
    FRESHSEL_CHECK(true) << "else-arm";
  for (int i = 0; i < 2; ++i) FRESHSEL_CHECK_NONNEG(static_cast<double>(i));
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckFiresInDebugBuilds) {
  EXPECT_DEATH(FRESHSEL_DCHECK(false) << "debug contract", "debug contract");
  EXPECT_DEATH(FRESHSEL_DCHECK_PROB(2.0), "must be a probability");
}
#else
TEST(CheckTest, DcheckIsCompiledOutInReleaseBuilds) {
  // Must not abort, and must not evaluate the condition's side effects.
  int evaluations = 0;
  FRESHSEL_DCHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 0);
  FRESHSEL_DCHECK_PROB(42.0);
}
#endif

void ThrowingHandler(const char* message) {
  throw std::runtime_error(message);
}

TEST(CheckTest, FailureHandlerHookObservesFailuresWithoutDying) {
  internal::CheckFailureHandler previous =
      internal::SetCheckFailureHandler(&ThrowingHandler);
  try {
    EXPECT_THROW(
        { FRESHSEL_CHECK(false) << "observed by handler, x=" << 7; },
        std::runtime_error);
    try {
      FRESHSEL_CHECK_PROB(3.0);
      FAIL() << "CHECK_PROB(3.0) did not fire";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("must be a probability in [0, 1]"),
                std::string::npos)
          << what;
      EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
    }
  } catch (...) {
    internal::SetCheckFailureHandler(previous);
    throw;
  }
  internal::SetCheckFailureHandler(previous);
}

TEST(CheckTest, SetHandlerReturnsPreviousAndNullRestoresDefault) {
  internal::CheckFailureHandler defaulted =
      internal::SetCheckFailureHandler(&ThrowingHandler);
  EXPECT_EQ(internal::SetCheckFailureHandler(nullptr), &ThrowingHandler);
  // After restoring via nullptr, installing again returns the default, not
  // the throwing handler.
  EXPECT_EQ(internal::SetCheckFailureHandler(defaulted), defaulted);
}

}  // namespace
}  // namespace freshsel
