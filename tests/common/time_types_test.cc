#include "common/time_types.h"

#include <gtest/gtest.h>

namespace freshsel {
namespace {

TEST(TimeWindowTest, LengthAndBounds) {
  TimeWindow w{10, 20};
  EXPECT_EQ(w.length(), 10);
  EXPECT_EQ(w.first(), 11);
  EXPECT_EQ(w.last(), 20);
}

TEST(TimeWindowTest, ContainsIsHalfOpenAtStart) {
  TimeWindow w{10, 20};
  EXPECT_FALSE(w.Contains(10));
  EXPECT_TRUE(w.Contains(11));
  EXPECT_TRUE(w.Contains(20));
  EXPECT_FALSE(w.Contains(21));
}

TEST(TimeWindowTest, DegenerateWindowHasZeroLength) {
  TimeWindow w{5, 5};
  EXPECT_EQ(w.length(), 0);
  EXPECT_FALSE(w.Contains(5));
  TimeWindow inverted{7, 3};
  EXPECT_EQ(inverted.length(), 0);
}

TEST(MakeTimePointsTest, StrideAndCount) {
  EXPECT_EQ(MakeTimePoints(100, 3, 30), (TimePoints{100, 130, 160}));
  EXPECT_EQ(MakeTimePoints(5, 0), TimePoints{});
  EXPECT_EQ(MakeTimePoints(0, 4), (TimePoints{0, 1, 2, 3}));
}

}  // namespace
}  // namespace freshsel
