#include "common/random.h"

#include <cstdint>
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace freshsel {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInRangeAndHitsAll) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= v == -3;
    hi_seen |= v == 3;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateMatches) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  const double lambda = 0.25;
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.Exponential(lambda);
  EXPECT_NEAR(total / n, 1.0 / lambda, 0.1);
}

class PoissonSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonSweepTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(31);
  const int n = 60000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = static_cast<double>(rng.Poisson(mean));
    EXPECT_GE(v, 0.0);
    sum += v;
    sum_sq += v * v;
  }
  const double sample_mean = sum / n;
  const double sample_var = sum_sq / n - sample_mean * sample_mean;
  // Poisson: mean == variance == lambda. Tolerate sampling noise.
  const double tol = 5.0 * std::sqrt(mean / n) + 0.01;
  EXPECT_NEAR(sample_mean, mean, tol * std::max(1.0, mean));
  EXPECT_NEAR(sample_var, mean, 0.1 * std::max(1.0, mean));
}

// Covers both the Knuth (< 30) and PTRS (>= 30) sampling paths.
INSTANTIATE_TEST_SUITE_P(Means, PoissonSweepTest,
                         ::testing::Values(0.1, 1.0, 5.0, 25.0, 40.0, 120.0));

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(41);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n - mean * mean), 3.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctSubset) {
  Rng rng(67);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::size_t> sample = rng.SampleWithoutReplacement(20, 7);
    EXPECT_EQ(sample.size(), 7u);
    std::set<std::size_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), 7u);
    for (std::size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(71);
  std::vector<std::size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(83);
  Rng child = parent.Fork();
  // The child stream should not mirror the parent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace freshsel
