// Deliberately mis-annotated translation unit. NOT part of any build
// target: CMake try_compiles this file when FRESHSEL_THREAD_SAFETY=ON and
// FAILS THE CONFIGURE if it compiles — i.e. the fixture proves
// `-Werror=thread-safety` is actually armed and catching violations, not
// silently accepted (see "Thread-safety analysis" in the top-level
// CMakeLists.txt and DESIGN.md §12).
//
// Every function below is a distinct violation class the analysis must
// reject; if Clang ever stops diagnosing any of them the whole TU still
// fails on the others, and if it diagnoses none the configure aborts.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace freshsel {
namespace {

struct Guarded {
  Mutex mu;
  int value FRESHSEL_GUARDED_BY(mu) = 0;

  // Violation 1: writes a guarded field with no lock held.
  void UnlockedWrite() { value = 1; }

  // Violation 2: claims to require the lock, then calls a function that
  // acquires it again (double acquire).
  void DoubleAcquire() FRESHSEL_REQUIRES(mu) { MutexLock lock(mu); }

  // Violation 3: returns with the mutex still held (missing release).
  void LeakLock() FRESHSEL_NO_THREAD_SAFETY_ANALYSIS { mu.Lock(); }
  void CallerOfLeak() {
    mu.Lock();
    // Missing Unlock: "mutex is still held at the end of function".
  }
};

}  // namespace
}  // namespace freshsel

int main() {
  freshsel::Guarded g;
  g.UnlockedWrite();
  return 0;
}
