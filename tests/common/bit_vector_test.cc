#include "common/bit_vector.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace freshsel {
namespace {

TEST(BitVectorTest, StartsEmpty) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.Count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.Test(i));
}

TEST(BitVectorTest, SetResetTest) {
  BitVector v(130);  // Spans three words.
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(63));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(129));
  EXPECT_FALSE(v.Test(1));
  EXPECT_EQ(v.Count(), 4u);
  v.Reset(63);
  EXPECT_FALSE(v.Test(63));
  EXPECT_EQ(v.Count(), 3u);
}

TEST(BitVectorTest, SetIsIdempotent) {
  BitVector v(10);
  v.Set(5);
  v.Set(5);
  EXPECT_EQ(v.Count(), 1u);
}

TEST(BitVectorTest, ClearKeepsWidth) {
  BitVector v(70);
  v.Set(69);
  v.Clear();
  EXPECT_EQ(v.size(), 70u);
  EXPECT_EQ(v.Count(), 0u);
}

TEST(BitVectorTest, OrWith) {
  BitVector a(100);
  BitVector b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  a.OrWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(50));
  EXPECT_TRUE(a.Test(99));
  EXPECT_EQ(a.Count(), 3u);
}

TEST(BitVectorTest, AndNotWith) {
  BitVector a(80);
  BitVector b(80);
  a.Set(3);
  a.Set(4);
  b.Set(4);
  b.Set(5);
  a.AndNotWith(b);
  EXPECT_TRUE(a.Test(3));
  EXPECT_FALSE(a.Test(4));
  EXPECT_EQ(a.Count(), 1u);
}

TEST(BitVectorTest, IntersectAndUnionCounts) {
  BitVector a(200);
  BitVector b(200);
  for (std::size_t i = 0; i < 200; i += 2) a.Set(i);   // 100 evens.
  for (std::size_t i = 0; i < 200; i += 3) b.Set(i);   // 67 multiples of 3.
  // Multiples of 6 in [0, 200): 34.
  EXPECT_EQ(a.IntersectCount(b), 34u);
  EXPECT_EQ(a.UnionCount(b), 100u + 67u - 34u);
}

TEST(BitVectorTest, UnionCountOfManyMatchesMaterializedUnion) {
  Rng rng(123);
  const std::size_t width = 500;
  std::vector<BitVector> vecs(4, BitVector(width));
  for (auto& v : vecs) {
    for (int i = 0; i < 80; ++i) {
      v.Set(static_cast<std::size_t>(rng.NextBounded(width)));
    }
  }
  std::vector<const BitVector*> ptrs;
  for (const auto& v : vecs) ptrs.push_back(&v);
  BitVector merged = BitVector::UnionOf(ptrs, width);
  EXPECT_EQ(BitVector::UnionCountOf(ptrs), merged.Count());
}

TEST(BitVectorTest, UnionCountOfEmptyListIsZero) {
  EXPECT_EQ(BitVector::UnionCountOf({}), 0u);
}

TEST(BitVectorTest, VisitSetBitsAscendingAndComplete) {
  BitVector v(200);
  const std::vector<std::size_t> expected{0, 1, 63, 64, 127, 128, 199};
  for (std::size_t i : expected) v.Set(i);
  std::vector<std::size_t> visited;
  v.VisitSetBits([&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, expected);
}

TEST(BitVectorTest, VisitSetBitsEmpty) {
  BitVector v(100);
  std::size_t count = 0;
  v.VisitSetBits([&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(BitVectorTest, VisitSetBitsMatchesCountOnRandom) {
  Rng rng(321);
  BitVector v(1000);
  for (int i = 0; i < 300; ++i) {
    v.Set(static_cast<std::size_t>(rng.NextBounded(1000)));
  }
  std::size_t visited = 0;
  std::size_t prev = 0;
  bool first = true;
  v.VisitSetBits([&](std::size_t i) {
    EXPECT_TRUE(v.Test(i));
    if (!first) {
      EXPECT_GT(i, prev);
    }
    prev = i;
    first = false;
    ++visited;
  });
  EXPECT_EQ(visited, v.Count());
}

TEST(BitVectorTest, EqualityComparesContents) {
  BitVector a(64);
  BitVector b(64);
  EXPECT_TRUE(a == b);
  a.Set(10);
  EXPECT_FALSE(a == b);
  b.Set(10);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == BitVector(65));
}

}  // namespace
}  // namespace freshsel
