#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

namespace freshsel {
namespace {

TEST(ThreadPoolTest, SizeIsClampedToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 17u, 100u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ChunkBoundariesDependOnlyOnSizeAndN) {
  // Two runs over the same n must produce the same partition - the
  // determinism guarantee the selection layer builds on.
  ThreadPool pool(3);
  auto partition = [&](std::size_t n) {
    Mutex mutex;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.ParallelFor(n, [&](std::size_t begin, std::size_t end) {
      MutexLock lock(mutex);
      chunks.emplace(begin, end);
    });
    return chunks;
  };
  for (std::size_t n : {1u, 7u, 64u, 311u}) {
    const auto first = partition(n);
    const auto second = partition(n);
    EXPECT_EQ(first, second) << "n=" << n;
    // Chunks are contiguous and non-overlapping.
    std::size_t expected_begin = 0;
    for (const auto& [begin, end] : first) {
      EXPECT_EQ(begin, expected_begin) << "n=" << n;
      EXPECT_GT(end, begin) << "n=" << n;
      expected_begin = end;
    }
    EXPECT_EQ(expected_begin, n);
  }
}

TEST(ThreadPoolTest, InlinePoolRunsOnCallingThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.ParallelFor(5, [&](std::size_t begin, std::size_t end) {
    (void)begin;
    (void)end;
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_FALSE(seen.empty());
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  // Hammer the batch handoff: many small ParallelFor calls on one pool.
  // Under FRESHSEL_SANITIZE=thread this exercises the pool's
  // synchronization; a data race in the handoff is a TSan failure here.
  ThreadPool pool(4);
  std::vector<std::int64_t> values(257);
  std::iota(values.begin(), values.end(), 1);
  for (int batch = 0; batch < 500; ++batch) {
    std::vector<std::int64_t> doubled(values.size());
    pool.ParallelFor(values.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        doubled[i] = 2 * values[i];
      }
    });
    std::int64_t total = 0;
    for (std::int64_t v : doubled) total += v;
    EXPECT_EQ(total, 257 * 258);  // 2 * sum(1..257).
  }
}

TEST(ThreadPoolTest, SharedPoolIsUsableSingleton) {
  ThreadPool& shared = ThreadPool::Shared();
  EXPECT_GE(shared.size(), 2u);
  EXPECT_LE(shared.size(), 8u);
  std::atomic<std::size_t> covered{0};
  shared.ParallelFor(100, [&](std::size_t begin, std::size_t end) {
    covered.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(covered.load(), 100u);
  EXPECT_EQ(&shared, &ThreadPool::Shared());
}

}  // namespace
}  // namespace freshsel
