#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace freshsel {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table("Demo", {"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== Demo =="), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
}

TEST(TablePrinterTest, PadsMissingCells) {
  TablePrinter table("T", {"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(SeriesPrinterTest, PrintsPoints) {
  SeriesPrinter series("S", "t", {"cov", "acc"});
  series.AddPoint(1.0, {0.5, 0.4});
  series.AddPoint(2.0, {0.6, 0.5});
  std::ostringstream out;
  series.Print(out);
  EXPECT_NE(out.str().find("cov"), std::string::npos);
  EXPECT_NE(out.str().find("0.600000"), std::string::npos);
}

TEST(SeriesPrinterTest, WritesCsv) {
  SeriesPrinter series("S", "t", {"y"});
  series.AddPoint(1.0, {0.25});
  const std::string path = ::testing::TempDir() + "/series_test.csv";
  ASSERT_TRUE(series.WriteCsv(path));
  std::ifstream in(path);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "t,y");
  EXPECT_EQ(row, "1.000000,0.250000");
  std::remove(path.c_str());
}

TEST(SeriesPrinterTest, PadsShortValueVectors) {
  SeriesPrinter series("S", "x", {"a", "b"});
  series.AddPoint(0.0, {1.0});  // b defaults to 0.
  std::ostringstream out;
  series.Print(out);
  EXPECT_NE(out.str().find("0.000000"), std::string::npos);
}

}  // namespace
}  // namespace freshsel
