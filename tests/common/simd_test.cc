#include "common/simd.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace freshsel::simd {
namespace {

// Randomized arrays in the miss-product regime: factors in (0, 1], some
// exactly 1.0 (no-op sources), some tiny (high-effectiveness sources).
// Sizes straddle the vector width so the remainder lanes are exercised
// (AVX2 folds 4 doubles, NEON 2; sizes 0..9 cover every remainder).
std::vector<double> RandomFactors(Rng& rng, std::size_t n) {
  std::vector<double> out(n);
  for (double& v : out) {
    const double roll = rng.NextDouble();
    if (roll < 0.1) {
      v = 1.0;
    } else if (roll < 0.25) {
      v = rng.UniformDouble(1e-140, 1e-120);  // Underflow-provoking.
    } else {
      v = rng.UniformDouble(0.05, 1.0);
    }
  }
  return out;
}

std::vector<double> RandomWeights(Rng& rng, std::size_t n) {
  std::vector<double> out(n);
  for (double& v : out) v = rng.UniformDouble(0.0, 3.0);
  return out;
}

constexpr std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64, 430};
constexpr double kFloor = 1e-250;

TEST(SimdTest, BackendNameIsKnown) {
  const std::string name = kBackendName;
  EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar") << name;
}

// Elementwise kernels carry a bit-identity contract: every backend must
// match the scalar reference exactly, including remainder lanes.
TEST(SimdTest, MulInPlaceBitIdenticalToScalar) {
  Rng rng(7);
  for (std::size_t n : kSizes) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<double> dst = RandomFactors(rng, n);
      const std::vector<double> src = RandomFactors(rng, n);
      std::vector<double> ref = dst;
      MulInPlace(dst.data(), src.data(), n);
      scalar::MulInPlace(ref.data(), src.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(dst[i], ref[i]) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdTest, MulInPlaceFlooredBitIdenticalToScalar) {
  Rng rng(11);
  for (std::size_t n : kSizes) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<double> dst = RandomFactors(rng, n);
      const std::vector<double> src = RandomFactors(rng, n);
      std::vector<double> ref = dst;
      MulInPlaceFloored(dst.data(), src.data(), n, kFloor);
      scalar::MulInPlaceFloored(ref.data(), src.data(), n, kFloor);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(dst[i], ref[i]) << "n=" << n << " i=" << i;
        EXPECT_GE(dst[i], kFloor);
      }
    }
  }
}

TEST(SimdTest, MulInPlaceFlooredClampsUnderflow) {
  // Repeated tiny factors would denormalize and flush to zero without the
  // floor; with it the product parks exactly at the floor.
  std::vector<double> dst(5, 1.0);
  std::vector<double> tiny(5, 1e-130);
  for (int pushes = 0; pushes < 4; ++pushes) {
    MulInPlaceFloored(dst.data(), tiny.data(), dst.size(), kFloor);
  }
  for (double v : dst) EXPECT_EQ(v, kFloor);
}

// Reduction kernels re-associate the accumulation, so the contract is a
// bounded deviation from scalar order, not bit-identity: |delta| <=
// n * eps * sum(|terms|) is the standard reordered-summation bound; a
// slack factor of 8 keeps the assertion robust to FMA contraction.
void ExpectWithinReassociationBound(double got, double want,
                                    double term_magnitude_sum,
                                    std::size_t n) {
  const double eps = std::numeric_limits<double>::epsilon();
  const double bound =
      8.0 * static_cast<double>(n + 1) * eps * (term_magnitude_sum + 1.0);
  EXPECT_NEAR(got, want, bound) << "n=" << n;
}

TEST(SimdTest, DotOneMinusWithinBoundOfScalar) {
  Rng rng(13);
  for (std::size_t n : kSizes) {
    const std::vector<double> w = RandomWeights(rng, n);
    const std::vector<double> m = RandomFactors(rng, n);
    const double got = DotOneMinus(w.data(), m.data(), n);
    const double want = scalar::DotOneMinus(w.data(), m.data(), n);
    double mag = 0.0;
    for (std::size_t i = 0; i < n; ++i) mag += std::abs(w[i]);
    ExpectWithinReassociationBound(got, want, mag, n);
  }
}

TEST(SimdTest, DotOneMinusMulWithinBoundOfScalar) {
  Rng rng(17);
  for (std::size_t n : kSizes) {
    const std::vector<double> w = RandomWeights(rng, n);
    const std::vector<double> m = RandomFactors(rng, n);
    const std::vector<double> c = RandomFactors(rng, n);
    const double got = DotOneMinusMul(w.data(), m.data(), c.data(), n);
    const double want =
        scalar::DotOneMinusMul(w.data(), m.data(), c.data(), n);
    double mag = 0.0;
    for (std::size_t i = 0; i < n; ++i) mag += std::abs(w[i]);
    ExpectWithinReassociationBound(got, want, mag, n);
  }
}

TEST(SimdTest, ScaledSumOneMinusWithinBoundOfScalar) {
  Rng rng(19);
  for (std::size_t n : kSizes) {
    const std::vector<double> m = RandomFactors(rng, n);
    const double scale = 1.7;
    const double got = ScaledSumOneMinus(scale, m.data(), n);
    const double want = scalar::ScaledSumOneMinus(scale, m.data(), n);
    ExpectWithinReassociationBound(got, want,
                                   scale * static_cast<double>(n), n);
  }
}

TEST(SimdTest, ScaledSumOneMinusMulWithinBoundOfScalar) {
  Rng rng(23);
  for (std::size_t n : kSizes) {
    const std::vector<double> m = RandomFactors(rng, n);
    const std::vector<double> c = RandomFactors(rng, n);
    const double scale = 0.42;
    const double got = ScaledSumOneMinusMul(scale, m.data(), c.data(), n);
    const double want =
        scalar::ScaledSumOneMinusMul(scale, m.data(), c.data(), n);
    ExpectWithinReassociationBound(got, want,
                                   scale * static_cast<double>(n), n);
  }
}

// The scalar reference itself: hand-checked values so the reference the
// whole equivalence suite leans on is itself pinned.
TEST(SimdTest, ScalarReferenceHandChecked) {
  const double w[] = {2.0, 3.0};
  const double m[] = {0.5, 0.25};
  const double c[] = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(scalar::DotOneMinus(w, m, 2), 2.0 * 0.5 + 3.0 * 0.75);
  EXPECT_DOUBLE_EQ(scalar::DotOneMinusMul(w, m, c, 2),
                   2.0 * (1.0 - 0.25) + 3.0 * (1.0 - 0.125));
  EXPECT_DOUBLE_EQ(scalar::ScaledSumOneMinus(2.0, m, 2),
                   2.0 * 0.5 + 2.0 * 0.75);
  EXPECT_DOUBLE_EQ(scalar::ScaledSumOneMinusMul(2.0, m, c, 2),
                   2.0 * 0.75 + 2.0 * 0.875);
  double dst[] = {0.5, 1e-300};
  const double src[] = {0.5, 0.5};
  scalar::MulInPlaceFloored(dst, src, 2, kFloor);
  EXPECT_EQ(dst[0], 0.25);
  EXPECT_EQ(dst[1], kFloor);
}

}  // namespace
}  // namespace freshsel::simd
