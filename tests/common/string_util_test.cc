#include "common/string_util.h"

#include <gtest/gtest.h>

namespace freshsel {
namespace {

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\na b\r\n"), "a b");
  EXPECT_EQ(Trim("    "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD 123 Case!"), "mixed 123 case!");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.123456, 4), "0.1235");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("x=%d y=%s", 3, "ok"), "x=3 y=ok");
  EXPECT_EQ(StringPrintf("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StringPrintf("plain"), "plain");
}

}  // namespace
}  // namespace freshsel
