#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace freshsel {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> extracted = std::move(r).value();
  EXPECT_EQ(*extracted, 7);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FRESHSEL_ASSIGN_OR_RETURN(int half, Half(x));
  FRESHSEL_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChainsInOneScope) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> err = Quarter(6);  // 6/2 = 3, odd.
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, CopyPreservesState) {
  Result<int> r = 5;
  Result<int> copy = r;
  EXPECT_TRUE(copy.ok());
  EXPECT_EQ(*copy, 5);

  Result<int> e = Status::Internal("x");
  Result<int> ecopy = e;
  EXPECT_FALSE(ecopy.ok());
}

}  // namespace
}  // namespace freshsel
