#include "common/status.h"

#include <gtest/gtest.h>

namespace freshsel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("missing key").ToString(),
            "NotFound: missing key");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::IoError("a"));
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    FRESHSEL_RETURN_IF_ERROR(fails());
    return Status::Internal("unreached");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);

  auto succeeds = [] { return Status::OK(); };
  auto wrapper_ok = [&]() -> Status {
    FRESHSEL_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached");
  };
  EXPECT_EQ(wrapper_ok().code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

}  // namespace
}  // namespace freshsel
