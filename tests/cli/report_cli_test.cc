// `freshsel report` end-to-end: show / diff / check-regression over real
// RunReport JSON files written to a temp dir, including the non-zero-exit
// contract that the CI report-gate relies on.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.h"
#include "cli/commands.h"
#include "obs/decision_log.h"
#include "obs/report.h"

namespace freshsel::cli {
namespace {

ArgMap ParseReportArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "freshsel");
  Result<ArgMap> args =
      ArgMap::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(args.ok()) << args.status().ToString();
  return *args;
}

/// A report with two decision rounds, one degradation, a histogram, and
/// a handful of counters - every section `report show` renders.
obs::RunReport MakeReport(std::uint64_t first_chosen) {
  obs::RunReport report;
  report.name = "report_cli_test/run";
  report.labels["algorithm"] = "greedy";
  report.values["profit"] = 2.5;
  report.counters["oracle_calls"] = 64;
  report.AddStage("load", 0.25);
  report.AddStage("select", 0.75);
  report.metrics.counters["selection.oracle.calls"] = 64;
  report.metrics.counters["selection.greedy.rounds"] = 2;
  obs::Histogram::Snapshot hist;
  hist.bounds = {0.5, 2.0};
  hist.counts = {3, 1, 0};
  hist.count = 4;
  hist.sum = 1.5;
  report.metrics.histograms["stage.select.seconds"] = hist;

  report.decision_log.set_algorithm("greedy/lazy");
  obs::DecisionRecord first;
  first.round = 0;
  first.chosen = first_chosen;
  first.gain = 1.5;
  first.profit = 1.5;
  first.score = 1.5;
  first.oracle_calls = 40;
  first.pool_size = 8;
  report.decision_log.Record(first);
  obs::DecisionRecord second;
  second.round = 1;
  second.chosen = first_chosen + 1;
  second.gain = 1.0;
  second.profit = 2.5;
  second.score = 1.0;
  second.oracle_calls = 24;
  second.calls_saved = 6;
  second.pool_size = 7;
  report.decision_log.Record(second);
  report.decision_log.AddDegradation("src_003", "history too short");
  return report;
}

std::string WriteReport(const obs::RunReport& report, const char* stem) {
  const std::string path =
      ::testing::TempDir() + "/" + stem + ".json";
  EXPECT_TRUE(report.WriteJsonFile(path).ok());
  return path;
}

class ReportCliTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : written_) std::remove(path.c_str());
  }
  std::string Write(const obs::RunReport& report, const char* stem) {
    written_.push_back(WriteReport(report, stem));
    return written_.back();
  }
  std::vector<std::string> written_;
};

TEST_F(ReportCliTest, ShowRendersEverySection) {
  const std::string path = Write(MakeReport(4), "report_cli_show");
  std::ostringstream out;
  const Status status = RunReportCommand(
      ParseReportArgs({"report", "show", path.c_str()}), out);
  ASSERT_TRUE(status.ok()) << status.message();
  const std::string text = out.str();
  EXPECT_NE(text.find("run: report_cli_test/run"), std::string::npos);
  EXPECT_NE(text.find("algorithm = greedy"), std::string::npos);
  EXPECT_NE(text.find("Stages"), std::string::npos);
  EXPECT_NE(text.find("Hot counters"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  EXPECT_NE(text.find("Decision log (greedy/lazy)"), std::string::npos);
  EXPECT_NE(text.find("degraded: src_003 - history too short"),
            std::string::npos);
}

TEST_F(ReportCliTest, ShowTruncatesRoundsOnRequest) {
  const std::string path = Write(MakeReport(4), "report_cli_rounds");
  std::ostringstream out;
  const Status status = RunReportCommand(
      ParseReportArgs({"report", "show", path.c_str(), "--rounds", "1"}),
      out);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_NE(out.str().find("... 1 more decisions"), std::string::npos);
}

TEST_F(ReportCliTest, DiffReportsIdenticalRuns) {
  const std::string path_a = Write(MakeReport(4), "report_cli_diff_a");
  const std::string path_b = Write(MakeReport(4), "report_cli_diff_b");
  std::ostringstream out;
  const Status status = RunReportCommand(
      ParseReportArgs({"report", "diff", path_a.c_str(), path_b.c_str()}),
      out);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_NE(out.str().find("counters: identical"), std::string::npos);
  EXPECT_NE(
      out.str().find("identical selection order (2 decisions)"),
      std::string::npos);
}

TEST_F(ReportCliTest, DiffPinpointsFirstDivergingDecision) {
  const std::string path_a = Write(MakeReport(4), "report_cli_div_a");
  obs::RunReport other = MakeReport(9);
  other.counters["oracle_calls"] = 80;
  const std::string path_b = Write(other, "report_cli_div_b");
  std::ostringstream out;
  const Status status = RunReportCommand(
      ParseReportArgs({"report", "diff", path_a.c_str(), path_b.c_str()}),
      out);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_NE(out.str().find("decision logs diverge at decision 0"),
            std::string::npos);
  EXPECT_NE(out.str().find("oracle_calls"), std::string::npos);
}

TEST_F(ReportCliTest, CheckRegressionPassesWithinTolerance) {
  obs::RunReport baseline = MakeReport(4);
  const std::string base_path = Write(baseline, "report_cli_base");
  obs::RunReport fresh = MakeReport(4);
  fresh.metrics.counters["selection.oracle.calls"] = 66;  // +3.1%.
  // Extra fresh-only instrumentation is never a regression.
  fresh.metrics.counters["selection.new.counter"] = 1;
  const std::string fresh_path = Write(fresh, "report_cli_fresh");

  std::ostringstream out;
  const Status status = RunReportCommand(
      ParseReportArgs({"report", "check-regression", fresh_path.c_str(),
                       "--baseline", base_path.c_str(), "--tolerance",
                       "0.05"}),
      out);
  ASSERT_TRUE(status.ok()) << status.message() << "\n" << out.str();
  EXPECT_NE(out.str().find("OK:"), std::string::npos);
}

TEST_F(ReportCliTest, CheckRegressionFailsOutsideTolerance) {
  const std::string base_path = Write(MakeReport(4), "report_cli_base2");
  obs::RunReport fresh = MakeReport(4);
  fresh.metrics.counters["selection.oracle.calls"] = 128;  // 2x.
  const std::string fresh_path = Write(fresh, "report_cli_fresh2");

  std::ostringstream out;
  const Status status = RunReportCommand(
      ParseReportArgs({"report", "check-regression", fresh_path.c_str(),
                       "--baseline", base_path.c_str(), "--tolerance",
                       "0.05"}),
      out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(out.str().find("Regressions"), std::string::npos);
  EXPECT_NE(out.str().find("selection.oracle.calls"), std::string::npos);
}

TEST_F(ReportCliTest, CheckRegressionKeysOnlyIgnoresValues) {
  const std::string base_path = Write(MakeReport(4), "report_cli_base3");
  obs::RunReport fresh = MakeReport(4);
  fresh.metrics.counters["selection.oracle.calls"] = 9999;
  const std::string fresh_path = Write(fresh, "report_cli_fresh3");

  std::ostringstream out;
  const Status status = RunReportCommand(
      ParseReportArgs({"report", "check-regression", fresh_path.c_str(),
                       "--baseline", base_path.c_str(), "--keys-only"}),
      out);
  ASSERT_TRUE(status.ok()) << status.message() << "\n" << out.str();

  // A baseline key missing from the fresh report still fails keys-only.
  obs::RunReport missing = MakeReport(4);
  missing.metrics.counters.erase("selection.oracle.calls");
  const std::string missing_path = Write(missing, "report_cli_missing");
  std::ostringstream out2;
  const Status status2 = RunReportCommand(
      ParseReportArgs({"report", "check-regression", missing_path.c_str(),
                       "--baseline", base_path.c_str(), "--keys-only"}),
      out2);
  EXPECT_FALSE(status2.ok());
  EXPECT_NE(out2.str().find("(missing)"), std::string::npos);
}

TEST_F(ReportCliTest, RejectsBadInvocations) {
  std::ostringstream out;
  EXPECT_FALSE(RunReportCommand(ParseReportArgs({"report"}), out).ok());
  EXPECT_FALSE(
      RunReportCommand(ParseReportArgs({"report", "explain", "x.json"}),
                       out)
          .ok());
  EXPECT_FALSE(
      RunReportCommand(ParseReportArgs({"report", "show"}), out).ok());
  // check-regression without --baseline.
  EXPECT_FALSE(
      RunReportCommand(
          ParseReportArgs({"report", "check-regression", "x.json"}), out)
          .ok());
  // Unknown flags are typos, not silently ignored.
  const std::string path = Write(MakeReport(4), "report_cli_flags");
  EXPECT_FALSE(RunReportCommand(
                   ParseReportArgs({"report", "show", path.c_str(),
                                    "--no-such-flag", "1"}),
                   out)
                   .ok());
}

TEST_F(ReportCliTest, RunMainExitCodeReflectsRegression) {
  const std::string base_path = Write(MakeReport(4), "report_cli_main_b");
  obs::RunReport fresh = MakeReport(4);
  fresh.metrics.counters["selection.oracle.calls"] = 128;
  const std::string fresh_path = Write(fresh, "report_cli_main_f");

  const char* bad[] = {"freshsel",       "report",
                       "check-regression", fresh_path.c_str(),
                       "--baseline",     base_path.c_str()};
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_NE(RunMain(6, bad, out, err), 0);
  EXPECT_FALSE(err.str().empty());

  const char* good[] = {"freshsel",       "report",
                        "check-regression", fresh_path.c_str(),
                        "--baseline",     base_path.c_str(),
                        "--keys-only"};
  std::ostringstream out2;
  std::ostringstream err2;
  EXPECT_EQ(RunMain(7, good, out2, err2), 0);
}

}  // namespace
}  // namespace freshsel::cli
