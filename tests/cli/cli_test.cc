#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/args.h"
#include "cli/commands.h"
#include "fault/failpoint.h"
#include "obs/macros.h"
#include "testing/scratch.h"

namespace freshsel::cli {
namespace {

ArgMap ParseOk(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "freshsel");
  Result<ArgMap> args =
      ArgMap::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(args.ok()) << args.status().ToString();
  return *args;
}

TEST(ArgMapTest, ParsesCommandAndFlags) {
  ArgMap args = ParseOk({"select", "--dir", "/tmp/x", "--t0=30"});
  EXPECT_EQ(args.command(), "select");
  EXPECT_EQ(args.GetString("dir", ""), "/tmp/x");
  EXPECT_EQ(args.GetInt("t0", 0).value(), 30);
}

TEST(ArgMapTest, DefaultsApplyWhenAbsent) {
  ArgMap args = ParseOk({"select"});
  EXPECT_EQ(args.GetString("metric", "coverage"), "coverage");
  EXPECT_EQ(args.GetInt("points", 10).value(), 10);
  EXPECT_DOUBLE_EQ(args.GetDouble("scale", 0.5).value(), 0.5);
}

TEST(ArgMapTest, RejectsMalformed) {
  // Positionals parse (the report subcommands consume them); commands
  // that take none reject stray tokens via CheckNoPositionals.
  ArgMap stray = ParseOk({"select", "extra"});
  ASSERT_EQ(stray.positionals().size(), 1u);
  EXPECT_EQ(stray.positionals()[0], "extra");
  EXPECT_FALSE(CheckNoPositionals(stray).ok());

  ArgMap args = ParseOk({"x", "--n", "abc"});
  EXPECT_FALSE(args.GetInt("n", 0).ok());
  ArgMap args2 = ParseOk({"x", "--f", "1.5x"});
  EXPECT_FALSE(args2.GetDouble("f", 0).ok());
}

TEST(ArgMapTest, BareFlagsParseAsBooleans) {
  // A flag at end-of-line or followed by another flag is boolean-style.
  ArgMap args = ParseOk({"select", "--strict", "--dir", "d", "--verbose"});
  EXPECT_EQ(args.GetBool("strict", false).value(), true);
  EXPECT_EQ(args.GetBool("verbose", false).value(), true);
  EXPECT_EQ(args.GetString("dir", ""), "d");
  EXPECT_EQ(args.GetBool("absent", false).value(), false);
  EXPECT_EQ(args.GetBool("missing", true).value(), true);
}

TEST(ArgMapTest, GetBoolParsesExplicitValues) {
  ArgMap args = ParseOk({"x", "--a=true", "--b", "0", "--c=1", "--d",
                         "false", "--bad", "maybe"});
  EXPECT_EQ(args.GetBool("a", false).value(), true);
  EXPECT_EQ(args.GetBool("b", true).value(), false);
  EXPECT_EQ(args.GetBool("c", false).value(), true);
  EXPECT_EQ(args.GetBool("d", true).value(), false);
  EXPECT_FALSE(args.GetBool("bad", false).ok());
}

TEST(ArgMapTest, TracksUnreadFlags) {
  ArgMap args = ParseOk({"select", "--dir", "d", "--typo", "1"});
  args.GetString("dir", "");
  EXPECT_EQ(args.UnreadFlags(), (std::vector<std::string>{"typo"}));
}

class CliEndToEndTest : public ::testing::Test {
 protected:
  int Run(std::vector<const char*> argv, std::string* output = nullptr) {
    argv.insert(argv.begin(), "freshsel");
    std::ostringstream out;
    std::ostringstream err;
    const int code = RunMain(static_cast<int>(argv.size()), argv.data(),
                             out, err);
    if (output != nullptr) *output = out.str() + err.str();
    return code;
  }

  // Unique per-test directory (tests/testing/scratch.h): ctest runs these
  // cases as separate concurrent processes, and a shared path makes them
  // trample each other's files.
  freshsel::testing::ScratchDir scratch_{"cli"};
  const std::string& dir_ = scratch_.path();
};

TEST_F(CliEndToEndTest, UsageOnUnknownCommand) {
  std::string output;
  EXPECT_NE(Run({"frobnicate"}, &output), 0);
  EXPECT_NE(output.find("usage:"), std::string::npos);
}

TEST_F(CliEndToEndTest, SimulateCharacterizeSelect) {
  std::string output;
  ASSERT_EQ(Run({"simulate", "--workload", "bl", "--out", dir_.c_str(),
                 "--scale", "0.3", "--locations", "6", "--categories",
                 "3"},
                &output),
            0)
      << output;
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/world.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/source_000.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/manifest.csv"));

  ASSERT_EQ(Run({"characterize", "--dir", dir_.c_str(), "--t0", "100"},
                &output),
            0)
      << output;
  EXPECT_NE(output.find("Source characterization"), std::string::npos);
  EXPECT_NE(output.find("bl-uniform-0"), std::string::npos);

  ASSERT_EQ(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--algorithm", "maxsub", "--points", "4", "--stride",
                 "14"},
                &output),
            0)
      << output;
  EXPECT_NE(output.find("Selected sources"), std::string::npos);
  EXPECT_NE(output.find("expected coverage"), std::string::npos);
}

TEST_F(CliEndToEndTest, SelectWithFrequenciesAndBudget) {
  std::string output;
  ASSERT_EQ(Run({"simulate", "--workload", "bl", "--out", dir_.c_str(),
                 "--scale", "0.3", "--locations", "5", "--categories",
                 "2"},
                &output),
            0)
      << output;
  ASSERT_EQ(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--max-divisor", "3", "--algorithm", "maxsub"},
                &output),
            0)
      << output;
  EXPECT_NE(output.find("divisor"), std::string::npos);

  ASSERT_EQ(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--algorithm", "budgeted", "--budget", "0.4"},
                &output),
            0)
      << output;
}

TEST_F(CliEndToEndTest, T0FallsBackToManifest) {
  std::string output;
  ASSERT_EQ(Run({"simulate", "--workload", "bl", "--out", dir_.c_str(),
                 "--scale", "0.3", "--locations", "5", "--categories",
                 "2"},
                &output),
            0)
      << output;
  // No --t0: both commands read it from manifest.csv (t0 = 300 for BL).
  ASSERT_EQ(Run({"characterize", "--dir", dir_.c_str()}, &output), 0)
      << output;
  EXPECT_NE(output.find("t0=300"), std::string::npos);
  ASSERT_EQ(Run({"select", "--dir", dir_.c_str(), "--points", "3",
                 "--stride", "14"},
                &output),
            0)
      << output;
  // Without a manifest (deleted), the commands must ask for --t0.
  std::filesystem::remove(dir_ + "/manifest.csv");
  EXPECT_NE(Run({"characterize", "--dir", dir_.c_str()}, &output), 0);
}

TEST_F(CliEndToEndTest, GdeltSimulateWorks) {
  std::string output;
  ASSERT_EQ(Run({"simulate", "--workload", "gdelt", "--out", dir_.c_str(),
                 "--scale", "0.3", "--locations", "6", "--categories",
                 "3"},
                &output),
            0)
      << output;
  ASSERT_EQ(Run({"select", "--dir", dir_.c_str(), "--t0", "15",
                 "--points", "5", "--stride", "1", "--gain", "data"},
                &output),
            0)
      << output;
}

TEST_F(CliEndToEndTest, MetricsAndTraceOutputs) {
  std::string output;
  ASSERT_EQ(Run({"simulate", "--workload", "bl", "--out", dir_.c_str(),
                 "--scale", "0.3", "--locations", "5", "--categories",
                 "2"},
                &output),
            0)
      << output;

  const std::string metrics_path = dir_ + "/metrics.json";
  const std::string trace_path = dir_ + "/trace.json";
  const std::string metrics_flag = "--metrics-out=" + metrics_path;
  const std::string trace_flag = "--trace-out=" + trace_path;
  ASSERT_EQ(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--points", "3", "--stride", "14", "--threads", "2",
                 "--algorithm", "grasp", metrics_flag.c_str(),
                 trace_flag.c_str()},
                &output),
            0)
      << output;

  ASSERT_TRUE(std::filesystem::exists(metrics_path));
  std::stringstream metrics_buf;
  metrics_buf << std::ifstream(metrics_path).rdbuf();
  const std::string metrics = metrics_buf.str();
  EXPECT_NE(metrics.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(metrics.find("\"decision_log\""), std::string::npos);
  EXPECT_NE(metrics.find("\"name\":\"select\""), std::string::npos);
  EXPECT_NE(metrics.find("\"algorithm\""), std::string::npos);
  EXPECT_NE(metrics.find("\"oracle_calls\""), std::string::npos);
  EXPECT_NE(metrics.find("\"cache_hits\""), std::string::npos);
  EXPECT_NE(metrics.find("\"selected_sources\""), std::string::npos);
  EXPECT_NE(metrics.find("\"stages\""), std::string::npos);
  EXPECT_NE(metrics.find("\"profit\""), std::string::npos);

  ASSERT_TRUE(std::filesystem::exists(trace_path));
  std::stringstream trace_buf;
  trace_buf << std::ifstream(trace_path).rdbuf();
  const std::string trace = trace_buf.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
#if FRESHSEL_OBS_ACTIVE
  // Spans only exist when the instrumentation is compiled in.
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("selection/grasp"), std::string::npos);
#endif
}

TEST_F(CliEndToEndTest, RobustnessFlagsAreValidated) {
  std::string output;
  ASSERT_EQ(Run({"simulate", "--workload", "bl", "--out", dir_.c_str(),
                 "--scale", "0.3", "--locations", "5", "--categories",
                 "2"},
                &output),
            0)
      << output;
  // Exclusive mode flags.
  EXPECT_NE(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--strict", "--degrade"},
                &output),
            0);
  EXPECT_NE(output.find("exclusive"), std::string::npos);
  // Retry shape validation.
  EXPECT_NE(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--retry-max", "0"},
                &output),
            0);
  EXPECT_NE(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--retry-backoff", "-1"},
                &output),
            0);
  // Stochastic-greedy epsilon must stay inside the guarantee's (0, 1).
  EXPECT_NE(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--stochastic", "--stochastic-epsilon", "1.5"},
                &output),
            0);
  EXPECT_NE(output.find("stochastic-epsilon"), std::string::npos);
  EXPECT_NE(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--stochastic", "--stochastic-epsilon", "0"},
                &output),
            0);
  // Malformed failpoint specs fail before any work happens (or, in an
  // OFF build, any --failpoints value is refused up front).
  EXPECT_NE(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--failpoints", "io.read=bogus"},
                &output),
            0);
  // A fittable BL roster passes strict mode.
  EXPECT_EQ(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--points", "3", "--stride", "14", "--strict"},
                &output),
            0)
      << output;
}

#if FRESHSEL_FAULT_ACTIVE
TEST_F(CliEndToEndTest, InjectedIoFaultsAreAbsorbedByRetries) {
  std::string output;
  ASSERT_EQ(Run({"simulate", "--workload", "bl", "--out", dir_.c_str(),
                 "--scale", "0.3", "--locations", "5", "--categories",
                 "2"},
                &output),
            0)
      << output;
  const std::string metrics_path = dir_ + "/metrics.json";
  const std::string metrics_flag = "--metrics-out=" + metrics_path;
  // Every second read fails; one retry each absorbs all of them.
  ASSERT_EQ(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--points", "3", "--stride", "14", "--failpoints",
                 "io.read=nth:2", "--retry-max", "5", "--retry-backoff",
                 "0", "--deterministic-metrics", metrics_flag.c_str()},
                &output),
            0)
      << output;
  std::stringstream metrics_buf;
  metrics_buf << std::ifstream(metrics_path).rdbuf();
  const std::string metrics = metrics_buf.str();
#if FRESHSEL_OBS_ACTIVE
  EXPECT_NE(metrics.find("\"fault.failpoints.injected\""), std::string::npos);
  EXPECT_NE(metrics.find("\"io.retry.attempts\""), std::string::npos);
#endif  // FRESHSEL_OBS_ACTIVE
  fault::FailpointRegistry::Global().DisarmAll();

  // An always-failing read exhausts the retry budget and surfaces the
  // injected error.
  EXPECT_NE(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--failpoints", "io.read=always", "--retry-max", "2",
                 "--retry-backoff", "0"},
                &output),
            0);
  EXPECT_NE(output.find("injected fault"), std::string::npos);
  fault::FailpointRegistry::Global().DisarmAll();
}
#else
TEST_F(CliEndToEndTest, FailpointsFlagRefusedInOffBuild) {
  std::string output;
  EXPECT_NE(Run({"select", "--dir", dir_.c_str(), "--t0", "100",
                 "--failpoints", "io.read=always"},
                &output),
            0);
  EXPECT_NE(output.find("compiled failpoints out"), std::string::npos);
}
#endif

TEST_F(CliEndToEndTest, ErrorsAreReported) {
  std::string output;
  EXPECT_NE(Run({"select", "--dir", "/nonexistent", "--t0", "10"},
                &output),
            0);
  EXPECT_NE(Run({"simulate", "--workload", "nope", "--out", dir_.c_str()},
                &output),
            0);
  EXPECT_NE(Run({"characterize", "--dir", dir_.c_str()}, &output), 0);
  EXPECT_NE(Run({"select", "--dir", dir_.c_str(), "--t0", "10",
                 "--bogus-flag", "1"},
                &output),
            0);
}

}  // namespace
}  // namespace freshsel::cli
