#include "cli/tools/lint_lib.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace freshsel::lint {
namespace {

namespace fs = std::filesystem;

/// Fixture files carrying the banned patterns are generated into a fresh
/// temp directory at runtime, so the repository itself never contains them
/// (the lint_tree ctest scans the committed tree).
class FreshselLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("freshsel_lint_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  fs::path WriteFixture(const std::string& relative,
                        const std::string& contents) {
    const fs::path path = root_ / relative;
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << contents;
    return path;
  }

  std::vector<Finding> Lint(const LintOptions& options = LintOptions()) {
    return LintPaths({root_.string()}, options, nullptr);
  }

  static std::vector<std::string> Rules(const std::vector<Finding>& findings) {
    std::vector<std::string> rules;
    rules.reserve(findings.size());
    for (const Finding& f : findings) rules.push_back(f.rule);
    return rules;
  }

  static bool HasRule(const std::vector<Finding>& findings,
                      const std::string& rule) {
    return std::any_of(
        findings.begin(), findings.end(),
        [&](const Finding& f) { return f.rule == rule; });
  }

  fs::path root_;
};

TEST_F(FreshselLintTest, CleanFilePasses) {
  WriteFixture("good.cc",
               "#include \"common/check.h\"\n"
               "int Work(int x) {\n"
               "  FRESHSEL_CHECK(x >= 0);\n"
               "  return x + 1;\n"
               "}\n");
  WriteFixture("good.h",
               "#ifndef FRESHSEL_GOOD_H_\n"
               "#define FRESHSEL_GOOD_H_\n"
               "int Work(int x);\n"
               "#endif  // FRESHSEL_GOOD_H_\n");
  EXPECT_TRUE(Lint().empty()) << "unexpected: " << Rules(Lint()).size();
}

TEST_F(FreshselLintTest, FlagsRandAndSrand) {
  WriteFixture("bad_rand.cc",
               "#include <cstdlib>\n"
               "int Roll() { return rand() % 6; }\n"
               "void Seed() { srand(42); }\n"
               "int Roll2() { return std::rand() % 6; }\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "no-rand");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].line, 3u);
}

TEST_F(FreshselLintTest, DoesNotFlagRandomOrRngIdentifiers) {
  WriteFixture("ok_random.cc",
               "#include \"common/random.h\"\n"
               "double Draw(freshsel::Rng& rng) { return rng.NextDouble(); }\n"
               "int spread(int operand) { return operand; }\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, FlagsBareAssertButNotStaticAssert) {
  WriteFixture("bad_assert.cc",
               "#include <cassert>\n"
               "static_assert(sizeof(int) >= 4, \"int\");\n"
               "void Check(int x) { assert(x > 0); }\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-bare-assert");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST_F(FreshselLintTest, AssertRuleCanBeDisabledForTestTrees) {
  WriteFixture("test_helper.cc", "void F(int x) { assert(x); }\n");
  LintOptions options;
  options.assert_rule = false;
  EXPECT_TRUE(Lint(options).empty());
}

TEST_F(FreshselLintTest, FlagsUsingNamespaceInHeadersOnly) {
  WriteFixture("bad_using.h",
               "#ifndef FRESHSEL_BAD_USING_H_\n"
               "#define FRESHSEL_BAD_USING_H_\n"
               "using namespace std;\n"
               "#endif  // FRESHSEL_BAD_USING_H_\n");
  WriteFixture("ok_using.cc", "using namespace std;\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-using-namespace");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST_F(FreshselLintTest, FlagsMissingAndMismatchedIncludeGuards) {
  WriteFixture("sub/no_guard.h", "int F();\n");
  WriteFixture("sub/wrong_guard.h",
               "#ifndef WRONG_NAME_H_\n"
               "#define WRONG_NAME_H_\n"
               "#endif\n");
  WriteFixture("sub/mismatched.h",
               "#ifndef FRESHSEL_SUB_MISMATCHED_H_\n"
               "#define FRESHSEL_SUB_OTHER_H_\n"
               "#endif\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "include-guard");
}

TEST_F(FreshselLintTest, AcceptsCanonicalGuardAndPragmaOnce) {
  WriteFixture("sub/guarded.h",
               "#ifndef FRESHSEL_SUB_GUARDED_H_\n"
               "#define FRESHSEL_SUB_GUARDED_H_\n"
               "#endif  // FRESHSEL_SUB_GUARDED_H_\n");
  WriteFixture("pragma.h", "#pragma once\nint F();\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, IgnoresPatternsInCommentsAndStrings) {
  WriteFixture("ok_comments.cc",
               "// assert(x) and rand() in a comment are fine\n"
               "/* srand(7); using namespace std; */\n"
               "const char* kDoc = \"call rand() then assert(ok)\";\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, FlagsNumericLimitsWithoutDirectLimitsInclude) {
  WriteFixture("bad_limits.cc",
               "#include \"selection/algorithms.h\"\n"
               "double Worst() {\n"
               "  return -std::numeric_limits<double>::infinity();\n"
               "}\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "iwyu-spot");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("<limits>"), std::string::npos);
}

TEST_F(FreshselLintTest, FlagsFixedWidthIntsWithoutDirectCstdintInclude) {
  WriteFixture("bad_cstdint.cc",
               "#include <vector>\n"
               "std::uint64_t Sum(const std::vector<std::uint32_t>& v) {\n"
               "  std::uint64_t total = 0;\n"
               "  for (std::uint32_t x : v) total += x;\n"
               "  return total;\n"
               "}\n");
  const std::vector<Finding> findings = Lint();
  // One finding per missing header, at the first use, however many uses.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "iwyu-spot");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("<cstdint>"), std::string::npos);
}

TEST_F(FreshselLintTest, AcceptsDirectIncludesAndIgnoresLookalikes) {
  WriteFixture("ok_iwyu.cc",
               "#include <cstdint>\n"
               "#include <limits>\n"
               "std::int64_t Max() {\n"
               "  return std::numeric_limits<std::int64_t>::max();\n"
               "}\n");
  WriteFixture("ok_lookalike.cc",
               "// std::numeric_limits in a comment is fine.\n"
               "struct mystd { static int numeric_limits; };\n"
               "int x = mystd::numeric_limits;\n"
               "int my_uint32_t = 0;  // Not the std alias.\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, FlagsSteadyClockOutsideObs) {
  WriteFixture("selection/bad_clock.cc",
               "#include <chrono>\n"
               "double Now() {\n"
               "  auto t = std::chrono::steady_clock::now();\n"
               "  return t.time_since_epoch().count();\n"
               "}\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "obs-clock");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("obs"), std::string::npos);
}

TEST_F(FreshselLintTest, AllowsSteadyClockInObsTree) {
  WriteFixture("obs/clock_impl.cc",
               "#include <chrono>\n"
               "long Now() {\n"
               "  return std::chrono::steady_clock::now()\n"
               "      .time_since_epoch().count();\n"
               "}\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, ObsClockRuleIgnoresLookalikesAndCanBeDisabled) {
  WriteFixture("ok_clock.cc",
               "// std::chrono::steady_clock::now() in a comment is fine.\n"
               "int my_steady_clock_count = 0;  // Longer identifier.\n");
  EXPECT_TRUE(Lint().empty());

  WriteFixture("tool_clock.cc",
               "#include <chrono>\n"
               "auto T() { return std::chrono::steady_clock::now(); }\n");
  EXPECT_TRUE(HasRule(Lint(), "obs-clock"));
  LintOptions options;
  options.obs_clock_rule = false;
  EXPECT_TRUE(Lint(options).empty());
}

TEST_F(FreshselLintTest, ExpectedGuardDerivation) {
  EXPECT_EQ(ExpectedGuard(fs::path("common/bit_vector.h"), "FRESHSEL_"),
            "FRESHSEL_COMMON_BIT_VECTOR_H_");
  EXPECT_EQ(ExpectedGuard(fs::path("freshsel.h"), "FRESHSEL_"),
            "FRESHSEL_FRESHSEL_H_");
  EXPECT_EQ(ExpectedGuard(fs::path("cli/tools/lint_lib.h"), "FRESHSEL_"),
            "FRESHSEL_CLI_TOOLS_LINT_LIB_H_");
}

TEST_F(FreshselLintTest, MissingPathReportsIoFinding) {
  const std::vector<Finding> findings =
      LintPaths({(root_ / "does_not_exist").string()}, LintOptions(), nullptr);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io");
}

TEST_F(FreshselLintTest, RealLibraryTreeIsClean) {
  const char* source_root = FRESHSEL_SOURCE_ROOT;
  const fs::path src = fs::path(source_root) / "src";
  ASSERT_TRUE(fs::is_directory(src));
  std::size_t scanned = 0;
  const std::vector<Finding> findings =
      LintPaths({src.string()}, LintOptions(), &scanned);
  EXPECT_GT(scanned, 50u);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
}  // namespace freshsel::lint
