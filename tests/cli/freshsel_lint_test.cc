#include "cli/tools/lint_lib.h"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace freshsel::lint {
namespace {

namespace fs = std::filesystem;

/// Fixture files carrying the banned patterns are generated into a fresh
/// temp directory at runtime, so the repository itself never contains them
/// (the lint_tree ctest scans the committed tree).
class FreshselLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("freshsel_lint_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  fs::path WriteFixture(const std::string& relative,
                        const std::string& contents) {
    const fs::path path = root_ / relative;
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << contents;
    return path;
  }

  std::vector<Finding> Lint(const LintOptions& options = LintOptions()) {
    return LintPaths({root_.string()}, options, nullptr);
  }

  static std::vector<std::string> Rules(const std::vector<Finding>& findings) {
    std::vector<std::string> rules;
    rules.reserve(findings.size());
    for (const Finding& f : findings) rules.push_back(f.rule);
    return rules;
  }

  static bool HasRule(const std::vector<Finding>& findings,
                      const std::string& rule) {
    return std::any_of(
        findings.begin(), findings.end(),
        [&](const Finding& f) { return f.rule == rule; });
  }

  fs::path root_;
};

TEST_F(FreshselLintTest, CleanFilePasses) {
  WriteFixture("good.cc",
               "#include \"common/check.h\"\n"
               "int Work(int x) {\n"
               "  FRESHSEL_CHECK(x >= 0);\n"
               "  return x + 1;\n"
               "}\n");
  WriteFixture("good.h",
               "#ifndef FRESHSEL_GOOD_H_\n"
               "#define FRESHSEL_GOOD_H_\n"
               "int Work(int x);\n"
               "#endif  // FRESHSEL_GOOD_H_\n");
  EXPECT_TRUE(Lint().empty()) << "unexpected: " << Rules(Lint()).size();
}

TEST_F(FreshselLintTest, FlagsRandAndSrand) {
  WriteFixture("bad_rand.cc",
               "#include <cstdlib>\n"
               "int Roll() { return rand() % 6; }\n"
               "void Seed() { srand(42); }\n"
               "int Roll2() { return std::rand() % 6; }\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "no-rand");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].line, 3u);
}

TEST_F(FreshselLintTest, DoesNotFlagRandomOrRngIdentifiers) {
  WriteFixture("ok_random.cc",
               "#include \"common/random.h\"\n"
               "double Draw(freshsel::Rng& rng) { return rng.NextDouble(); }\n"
               "int spread(int operand) { return operand; }\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, FlagsBareAssertButNotStaticAssert) {
  WriteFixture("bad_assert.cc",
               "#include <cassert>\n"
               "static_assert(sizeof(int) >= 4, \"int\");\n"
               "void Check(int x) { assert(x > 0); }\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-bare-assert");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST_F(FreshselLintTest, AssertRuleCanBeDisabledForTestTrees) {
  WriteFixture("test_helper.cc", "void F(int x) { assert(x); }\n");
  LintOptions options;
  options.assert_rule = false;
  EXPECT_TRUE(Lint(options).empty());
}

TEST_F(FreshselLintTest, FlagsUsingNamespaceInHeadersOnly) {
  WriteFixture("bad_using.h",
               "#ifndef FRESHSEL_BAD_USING_H_\n"
               "#define FRESHSEL_BAD_USING_H_\n"
               "using namespace std;\n"
               "#endif  // FRESHSEL_BAD_USING_H_\n");
  WriteFixture("ok_using.cc", "using namespace std;\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-using-namespace");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST_F(FreshselLintTest, FlagsMissingAndMismatchedIncludeGuards) {
  WriteFixture("sub/no_guard.h", "int F();\n");
  WriteFixture("sub/wrong_guard.h",
               "#ifndef WRONG_NAME_H_\n"
               "#define WRONG_NAME_H_\n"
               "#endif\n");
  WriteFixture("sub/mismatched.h",
               "#ifndef FRESHSEL_SUB_MISMATCHED_H_\n"
               "#define FRESHSEL_SUB_OTHER_H_\n"
               "#endif\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "include-guard");
}

TEST_F(FreshselLintTest, AcceptsCanonicalGuardAndPragmaOnce) {
  WriteFixture("sub/guarded.h",
               "#ifndef FRESHSEL_SUB_GUARDED_H_\n"
               "#define FRESHSEL_SUB_GUARDED_H_\n"
               "#endif  // FRESHSEL_SUB_GUARDED_H_\n");
  WriteFixture("pragma.h", "#pragma once\nint F();\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, IgnoresPatternsInCommentsAndStrings) {
  WriteFixture("ok_comments.cc",
               "// assert(x) and rand() in a comment are fine\n"
               "/* srand(7); using namespace std; */\n"
               "const char* kDoc = \"call rand() then assert(ok)\";\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, FlagsNumericLimitsWithoutDirectLimitsInclude) {
  WriteFixture("bad_limits.cc",
               "#include \"selection/algorithms.h\"\n"
               "double Worst() {\n"
               "  return -std::numeric_limits<double>::infinity();\n"
               "}\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "iwyu-spot");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("<limits>"), std::string::npos);
}

TEST_F(FreshselLintTest, FlagsFixedWidthIntsWithoutDirectCstdintInclude) {
  WriteFixture("bad_cstdint.cc",
               "#include <vector>\n"
               "std::uint64_t Sum(const std::vector<std::uint32_t>& v) {\n"
               "  std::uint64_t total = 0;\n"
               "  for (std::uint32_t x : v) total += x;\n"
               "  return total;\n"
               "}\n");
  const std::vector<Finding> findings = Lint();
  // One finding per missing header, at the first use, however many uses.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "iwyu-spot");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("<cstdint>"), std::string::npos);
}

TEST_F(FreshselLintTest, AcceptsDirectIncludesAndIgnoresLookalikes) {
  WriteFixture("ok_iwyu.cc",
               "#include <cstdint>\n"
               "#include <limits>\n"
               "std::int64_t Max() {\n"
               "  return std::numeric_limits<std::int64_t>::max();\n"
               "}\n");
  WriteFixture("ok_lookalike.cc",
               "// std::numeric_limits in a comment is fine.\n"
               "struct mystd { static int numeric_limits; };\n"
               "int x = mystd::numeric_limits;\n"
               "int my_uint32_t = 0;  // Not the std alias.\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, FlagsSteadyClockOutsideObs) {
  WriteFixture("selection/bad_clock.cc",
               "#include <chrono>\n"
               "double Now() {\n"
               "  auto t = std::chrono::steady_clock::now();\n"
               "  return t.time_since_epoch().count();\n"
               "}\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "obs-clock");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("obs"), std::string::npos);
}

TEST_F(FreshselLintTest, AllowsSteadyClockInObsTree) {
  WriteFixture("obs/clock_impl.cc",
               "#include <chrono>\n"
               "long Now() {\n"
               "  return std::chrono::steady_clock::now()\n"
               "      .time_since_epoch().count();\n"
               "}\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, ObsClockRuleIgnoresLookalikesAndCanBeDisabled) {
  WriteFixture("ok_clock.cc",
               "// std::chrono::steady_clock::now() in a comment is fine.\n"
               "int my_steady_clock_count = 0;  // Longer identifier.\n");
  EXPECT_TRUE(Lint().empty());

  WriteFixture("tool_clock.cc",
               "#include <chrono>\n"
               "auto T() { return std::chrono::steady_clock::now(); }\n");
  EXPECT_TRUE(HasRule(Lint(), "obs-clock"));
  LintOptions options;
  options.obs_clock_rule = false;
  EXPECT_TRUE(Lint(options).empty());
}

TEST_F(FreshselLintTest, ExpectedGuardDerivation) {
  EXPECT_EQ(ExpectedGuard(fs::path("common/bit_vector.h"), "FRESHSEL_"),
            "FRESHSEL_COMMON_BIT_VECTOR_H_");
  EXPECT_EQ(ExpectedGuard(fs::path("freshsel.h"), "FRESHSEL_"),
            "FRESHSEL_FRESHSEL_H_");
  EXPECT_EQ(ExpectedGuard(fs::path("cli/tools/lint_lib.h"), "FRESHSEL_"),
            "FRESHSEL_CLI_TOOLS_LINT_LIB_H_");
}

TEST_F(FreshselLintTest, MissingPathReportsIoFinding) {
  const std::vector<Finding> findings =
      LintPaths({(root_ / "does_not_exist").string()}, LintOptions(), nullptr);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io");
}

// ---------------------------------------------------------------------------
// Rule catalog.

TEST_F(FreshselLintTest, RuleCatalogIsSortedUniqueAndKnown) {
  const std::vector<RuleInfo>& catalog = RuleCatalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1].id, catalog[i].id) << "catalog not sorted";
  }
  for (const RuleInfo& rule : catalog) {
    EXPECT_TRUE(IsKnownRule(rule.id));
    EXPECT_FALSE(rule.summary.empty());
  }
  EXPECT_FALSE(IsKnownRule("no-such-rule"));
  // The fixable set is exactly what ApplyFixes can repair.
  std::set<std::string> fixable;
  for (const RuleInfo& rule : catalog) {
    if (rule.fixable) fixable.insert(rule.id);
  }
  EXPECT_EQ(fixable, (std::set<std::string>{"failpoint-name", "iwyu-spot"}));
}

TEST_F(FreshselLintTest, DisabledRulesAreSkipped) {
  WriteFixture("bad_rand.cc", "int Roll() { return rand() % 6; }\n");
  LintOptions options;
  options.disabled_rules.insert("no-rand");
  EXPECT_TRUE(Lint(options).empty());
}

// ---------------------------------------------------------------------------
// Inline suppressions.

TEST_F(FreshselLintTest, SuppressionWithReasonEatsFindingSameLine) {
  WriteFixture("ok_rand.cc",
               "int Roll() { return rand() % 6; }"
               "  // FRESHSEL_LINT_ALLOW(no-rand): fixture needs libc rand\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, SuppressionOnLineAboveEatsFinding) {
  WriteFixture("ok_rand2.cc",
               "// FRESHSEL_LINT_ALLOW(no-rand): seeding comparison baseline\n"
               "int Roll() { return rand() % 6; }\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, SuppressionWithoutReasonIsReported) {
  WriteFixture("noreason.cc",
               "// FRESHSEL_LINT_ALLOW(no-rand)\n"
               "int Roll() { return rand() % 6; }\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lint-allow");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("reason"), std::string::npos);
}

TEST_F(FreshselLintTest, SuppressionOfUnknownRuleIsReported) {
  WriteFixture("unknown.cc",
               "// FRESHSEL_LINT_ALLOW(no-such-rule): oops\n"
               "int F() { return 0; }\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lint-allow");
  EXPECT_NE(findings[0].message.find("unknown rule"), std::string::npos);
}

TEST_F(FreshselLintTest, StaleSuppressionIsReported) {
  WriteFixture("stale.cc",
               "// FRESHSEL_LINT_ALLOW(no-rand): nothing to suppress here\n"
               "int F() { return 0; }\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lint-allow");
  EXPECT_NE(findings[0].message.find("matches no finding"), std::string::npos);
}

TEST_F(FreshselLintTest, ParseSuppressionsUnits) {
  const std::vector<Suppression> parsed = ParseSuppressions(
      "// FRESHSEL_LINT_ALLOW(no-rand): baseline\n"
      "// FRESHSEL_LINT_ALLOW(raw-mutex)\n"
      "const char* s = \"FRESHSEL_LINT_ALLOW(no-rand): in a string\";\n"
      "// FRESHSEL_LINT_ALLOW(<rule-id>): placeholder, not a marker\n");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].line, 1u);
  EXPECT_EQ(parsed[0].rule, "no-rand");
  EXPECT_TRUE(parsed[0].has_reason);
  EXPECT_EQ(parsed[1].line, 2u);
  EXPECT_EQ(parsed[1].rule, "raw-mutex");
  EXPECT_FALSE(parsed[1].has_reason);
}

// ---------------------------------------------------------------------------
// status-must-use.

TEST_F(FreshselLintTest, FlagsDiscardedStatusCallAcrossFiles) {
  WriteFixture("api.cc",
               "#include \"common/status.h\"\n"
               "freshsel::Status Save(int x);\n"
               "freshsel::Result<int> Load();\n");
  WriteFixture("caller.cc",
               "void F() {\n"
               "  Save(1);\n"
               "  Load();\n"
               "}\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "status-must-use");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("Save"), std::string::npos);
  EXPECT_EQ(findings[1].line, 3u);
}

TEST_F(FreshselLintTest, DoesNotFlagUsedStatusResults) {
  WriteFixture("api.cc",
               "freshsel::Status Save(int x);\n"
               "freshsel::Result<int> Load();\n");
  WriteFixture("caller.cc",
               "int F() {\n"
               "  freshsel::Status s = Save(1);\n"
               "  FRESHSEL_RETURN_IF_ERROR(Save(2));\n"
               "  (void)Save(3);\n"
               "  if (!Save(4).ok()) return 1;\n"
               "  return Load().value_or(0);\n"
               "}\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, LocalVoidDeclarationExemptsSameNamedFunction) {
  // Another file's `Status PanelA(...)` must not taint this file's
  // unrelated `void PanelA(...)` procedure (tree-wide name matching).
  WriteFixture("other.cc", "freshsel::Status PanelA(int x);\n");
  WriteFixture("local.cc",
               "void PanelA(double y) {}\n"
               "void F() { PanelA(1.5); }\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, StatusMustUseSkipsContinuationLines) {
  WriteFixture("api.cc", "freshsel::Status Save(int x);\n");
  WriteFixture("caller.cc",
               "int F() {\n"
               "  int x = 1 +\n"
               "      Save(2).ok();\n"
               "  return x;\n"
               "}\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, CollectStatusFunctionsUnits) {
  StatusFunctions fns;
  CollectStatusFunctions(
      "freshsel::Status Flush();\n"
      "Result<std::vector<int>> Parse(const std::string& s);\n"
      "Status Writer::Commit(int n) {\n"
      "void NotAStatus();\n"
      "Status value = Other();\n",
      &fns);
  EXPECT_EQ(fns, (StatusFunctions{"Flush", "Parse", "Commit"}));
}

// ---------------------------------------------------------------------------
// nondeterminism.

TEST_F(FreshselLintTest, FlagsWallClockTimeAndRandomDevice) {
  WriteFixture("bad_seed.cc",
               "#include <ctime>\n"
               "long Seed() { return time(nullptr); }\n"
               "long Seed2() { return std::time(nullptr); }\n"
               "unsigned Seed3() { return std::random_device{}(); }\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "nondeterminism");
}

TEST_F(FreshselLintTest, FlagsRawRandomEngines) {
  // The stochastic-greedy sampler contract: candidate sampling draws from
  // seeded common/random.h streams, never from raw std engines (draw
  // sequences outside the Rng stability tests). srand()/rand() stay the
  // no-rand rule's territory, so no double-flagging here.
  WriteFixture("selection/sampler.cc",
               "#include <random>\n"
               "std::mt19937 gen(42);\n"
               "std::mt19937_64 gen64(42);\n"
               "minstd_rand quick;\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "nondeterminism");
}

TEST_F(FreshselLintTest, SeededRngStreamsPassClean) {
  // The sanctioned pattern - a seeded Rng, forked per consumer - must not
  // trip the engine rule (nor "minstd_rand" lookalikes inside words).
  WriteFixture("selection/ok_sampler.cc",
               "#include <cstddef>\n"
               "#include <cstdint>\n"
               "#include <vector>\n"
               "\n"
               "#include \"common/random.h\"\n"
               "std::vector<std::size_t> Sample(std::uint64_t seed) {\n"
               "  freshsel::Rng rng(seed);\n"
               "  freshsel::Rng child = rng.Fork();\n"
               "  return rng.SampleWithoutReplacement(10, 3);\n"
               "}\n"
               "int mt19937ish_name_in_comment = 0;  // mentions mt19937\n");
  const std::vector<Finding> findings = Lint();
  // The identifier matcher is word-boundary based: the declaration line
  // uses mt19937 only as a substring of a longer identifier, and comment
  // text is stripped before matching.
  EXPECT_TRUE(findings.empty());
}

TEST_F(FreshselLintTest, FlagsUnorderedContainersOnlyInOutputPaths) {
  WriteFixture("io/writer.cc",
               "#include <unordered_map>\n"
               "std::unordered_map<int, int> index;\n");
  WriteFixture("selection/solver.cc",
               "#include <unordered_set>\n"
               "std::unordered_set<int> seen;\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 2u);  // Include line + use line, io/ only.
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "nondeterminism");
    EXPECT_NE(f.file.find("writer"), std::string::npos);
  }
}

TEST_F(FreshselLintTest, NondeterminismIgnoresTimeLookalikes) {
  WriteFixture("ok_time.cc",
               "int timeout(int t) { return t; }\n"
               "struct T { double eval_time; };\n"
               "double RunTime(const T& t) { return t.eval_time; }\n");
  EXPECT_TRUE(Lint().empty());
}

// ---------------------------------------------------------------------------
// raw-mutex.

TEST_F(FreshselLintTest, FlagsRawMutexOutsideCommon) {
  WriteFixture("selection/locking.cc",
               "#include <mutex>\n"
               "std::mutex mu;\n"
               "void F() { std::lock_guard<std::mutex> lock(mu); }\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "raw-mutex");
}

TEST_F(FreshselLintTest, AllowsRawMutexInCommon) {
  WriteFixture("common/mutex_impl.cc",
               "#include <mutex>\n"
               "std::mutex mu;\n"
               "void F() { std::unique_lock<std::mutex> lock(mu); }\n");
  EXPECT_TRUE(Lint().empty());
}

// ---------------------------------------------------------------------------
// failpoint-name.

TEST_F(FreshselLintTest, FlagsMalformedFailpointNames) {
  // The macro name is spelled split so the lint gate scanning this test's
  // own source never sees a contiguous failpoint token in the fixture text.
  WriteFixture("fault/site.cc",
               std::string("void F() {\n  FRESHSEL_") +
                   "FAILPOINT(\"BadName\");\n  FRESHSEL_" +
                   "FAILPOINT_RETURN(\n      \"io.read\", s);\n}\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "failpoint-name");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("BadName"), std::string::npos);
}

TEST_F(FreshselLintTest, FailpointRuleSkipsMacroDefinition) {
  WriteFixture("fault/macros_fixture.h",
               std::string("#ifndef FRESHSEL_FAULT_MACROS_FIXTURE_H_\n"
                           "#define FRESHSEL_FAULT_MACROS_FIXTURE_H_\n"
                           "#define FRESHSEL_") +
                   "FAILPOINT(name) DoCheck(name)\n"
                   "#endif  // FRESHSEL_FAULT_MACROS_FIXTURE_H_\n");
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, FlagsMalformedObsMetricNames) {
  // Macro names are spelled split so the lint gate scanning this test's
  // own source never sees a contiguous metric-macro token in the fixture.
  WriteFixture(
      "obs/site.cc",
      std::string("void F() {\n  FRESHSEL_") +
          "OBS_COUNT(\"io.retries\", 1);\n  FRESHSEL_" +
          "OBS_GAUGE_SET(\"Selection.pool.size\", 3.0);\n  FRESHSEL_" +
          "OBS_COUNT(\"io.retry.attempts\", 1);\n  FRESHSEL_" +
          "OBS_SCOPED_LATENCY(\"stage.select.seconds\");\n}\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "obs-counter-name");
  EXPECT_EQ(findings[0].line, 2u);  // Two segments only.
  EXPECT_NE(findings[0].message.find("io.retries"), std::string::npos);
  EXPECT_EQ(findings[1].rule, "obs-counter-name");
  EXPECT_EQ(findings[1].line, 3u);  // Uppercase letters.

  LintOptions options;
  options.disabled_rules = {"obs-counter-name"};
  EXPECT_TRUE(Lint(options).empty());
}

TEST_F(FreshselLintTest, ServeLayerInstrumentationNamesPassClean) {
  // The daemon's real instrumentation ids (src/serve): failpoints follow
  // subsystem.site, counters subsystem.noun.verb. Pinning them here keeps
  // a rename in the serve layer from silently diverging from the names
  // the rules (and dashboards) expect. Macro names are spelled split so
  // the lint gate never sees a contiguous token in this test's source.
  WriteFixture("serve/site.cc",
               std::string("void F() {\n  FRESHSEL_") +
                   "FAILPOINT(\"serve.query\");\n  FRESHSEL_" +
                   "FAILPOINT_RETURN(\"serve.ingest\", s);\n  FRESHSEL_" +
                   "OBS_COUNT(\"serve.queries.executed\", 1);\n  FRESHSEL_" +
                   "OBS_COUNT(\"serve.queries.failed\", 1);\n  FRESHSEL_" +
                   "OBS_COUNT(\"serve.prepared.hits\", 1);\n  FRESHSEL_" +
                   "OBS_COUNT(\"serve.prepared.misses\", 1);\n  FRESHSEL_" +
                   "OBS_COUNT(\"serve.scenarios.ingested\", 1);\n  FRESHSEL_" +
                   "OBS_COUNT(\"serve.requests.received\", 1);\n  FRESHSEL_" +
                   "OBS_COUNT(\"serve.requests.rejected\", 1);\n  FRESHSEL_" +
                   "OBS_COUNT(\"serve.requests.overloaded\", 1);\n  FRESHSEL_" +
                   "OBS_COUNT(\"serve.requests.oversized\", 1);\n  FRESHSEL_" +
                   "OBS_COUNT(\"serve.requests.refused_draining\", 1);\n"
                   "  FRESHSEL_" +
                   "OBS_COUNT(\"serve.connections.accepted\", 1);\n"
                   "  FRESHSEL_" +
                   "OBS_COUNT(\"serve.scrapes.served\", 1);\n  FRESHSEL_" +
                   "OBS_SCOPED_LATENCY(\"serve.query.latency\");\n}\n");
  const std::vector<Finding> findings = Lint();
  EXPECT_TRUE(findings.empty()) << Rules(findings).front();
}

TEST_F(FreshselLintTest, MalformedServeLayerNamesAreFlagged) {
  WriteFixture("serve/bad.cc",
               std::string("void F() {\n  FRESHSEL_") +
                   "FAILPOINT(\"serve.Query\");\n  FRESHSEL_" +
                   "OBS_COUNT(\"serve.queries\", 1);\n}\n");
  const std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "failpoint-name");
  EXPECT_NE(findings[0].message.find("serve.Query"), std::string::npos);
  EXPECT_EQ(findings[1].rule, "obs-counter-name");
  EXPECT_NE(findings[1].message.find("serve.queries"), std::string::npos);
}

TEST_F(FreshselLintTest, ObsCounterNameSkipsMacroDefinition) {
  WriteFixture("obs/macros_fixture.h",
               std::string("#ifndef FRESHSEL_OBS_MACROS_FIXTURE_H_\n"
                           "#define FRESHSEL_OBS_MACROS_FIXTURE_H_\n"
                           "#define FRESHSEL_") +
                   "OBS_COUNT(id, n) DoCount(id, n)\n"
                   "#endif  // FRESHSEL_OBS_MACROS_FIXTURE_H_\n");
  EXPECT_TRUE(Lint().empty());
}

// ---------------------------------------------------------------------------
// Output formats.

TEST_F(FreshselLintTest, JsonOutputEscapesAndCounts) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, "no-rand", "uses \"rand\"\nbadly"},
  };
  const std::string json = FindingsToJson(findings, 7);
  EXPECT_NE(json.find("\"files_scanned\": 7"), std::string::npos);
  EXPECT_NE(json.find("\\\"rand\\\"\\nbadly"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
}

TEST_F(FreshselLintTest, SarifGolden) {
  const std::vector<Finding> findings = {
      {"src/common/random.cc", 42, "no-rand", "rand() is banned"},
  };
  const std::string sarif = FindingsToSarif(findings);
  // Structural golden checks: schema header, the full rule catalog in
  // tool.driver.rules, one result bound to its rule by id and index.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"freshsel_lint\""), std::string::npos);
  for (const RuleInfo& rule : RuleCatalog()) {
    EXPECT_NE(sarif.find("{\"id\": \"" + rule.id + "\""), std::string::npos)
        << rule.id;
  }
  const std::string expected_result =
      "        {\"ruleId\": \"no-rand\", \"ruleIndex\": 6, "
      "\"level\": \"error\", \"message\": {\"text\": \"rand() is "
      "banned\"}, \"locations\": [{\"physicalLocation\": "
      "{\"artifactLocation\": {\"uri\": \"src/common/random.cc\"}, "
      "\"region\": {\"startLine\": 42}}}]}";
  EXPECT_NE(sarif.find(expected_result), std::string::npos) << sarif;
}

TEST_F(FreshselLintTest, SarifEmptyFindingsIsStillARun) {
  const std::string sarif = FindingsToSarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// --fix.

TEST_F(FreshselLintTest, FixInsertsMissingIncludeSorted) {
  const fs::path file = WriteFixture(
      "needs_cstdint.cc",
      "#include <string>\n"
      "#include <vector>\n"
      "std::uint64_t Sum();\n");
  std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  ASSERT_EQ(findings[0].rule, "iwyu-spot");

  // Dry run: edits reported, file untouched.
  const std::vector<FixEdit> dry = ApplyFixes(findings, /*apply=*/false);
  ASSERT_EQ(dry.size(), 1u);
  EXPECT_EQ(dry[0].rule, "iwyu-spot");
  EXPECT_EQ(dry[0].after, "#include <cstdint>");
  EXPECT_EQ(dry[0].line, 1u);  // Sorted before <string>.
  EXPECT_TRUE(HasRule(Lint(), "iwyu-spot")) << "dry run must not write";
  EXPECT_FALSE(EditsToDiff(dry).empty());

  // Apply: file repaired, re-lint clean.
  const std::vector<FixEdit> applied = ApplyFixes(findings, /*apply=*/true);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_TRUE(Lint().empty());
  std::ifstream in(file);
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "#include <cstdint>");
}

TEST_F(FreshselLintTest, FixRewritesFailpointName) {
  const fs::path file = WriteFixture(
      "io/loader.cc", std::string("void F() {\n  FRESHSEL_") +
                          "FAILPOINT(\"ReadHeader\");\n}\n");
  std::vector<Finding> findings = Lint();
  ASSERT_EQ(findings.size(), 1u);
  ASSERT_EQ(findings[0].rule, "failpoint-name");
  const std::vector<FixEdit> applied = ApplyFixes(findings, /*apply=*/true);
  ASSERT_EQ(applied.size(), 1u);
  // Lowercased and prefixed with the directory-derived subsystem.
  EXPECT_NE(applied[0].after.find("\"io.readheader\""), std::string::npos);
  EXPECT_TRUE(Lint().empty());
}

TEST_F(FreshselLintTest, RealLibraryTreeIsClean) {
  const char* source_root = FRESHSEL_SOURCE_ROOT;
  const fs::path src = fs::path(source_root) / "src";
  ASSERT_TRUE(fs::is_directory(src));
  std::size_t scanned = 0;
  const std::vector<Finding> findings =
      LintPaths({src.string()}, LintOptions(), &scanned);
  EXPECT_GT(scanned, 50u);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
}  // namespace freshsel::lint
