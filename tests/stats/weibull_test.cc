#include "stats/weibull.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace freshsel::stats {
namespace {

double DrawWeibull(double shape, double scale, Rng& rng) {
  double u;
  do {
    u = rng.NextDouble();
  } while (u <= 0.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

TEST(WeibullDistributionTest, CreateValidates) {
  EXPECT_FALSE(WeibullDistribution::Create(0.0, 1.0).ok());
  EXPECT_FALSE(WeibullDistribution::Create(1.0, 0.0).ok());
  EXPECT_FALSE(WeibullDistribution::Create(-1.0, 1.0).ok());
  EXPECT_TRUE(WeibullDistribution::Create(2.0, 3.0).ok());
}

TEST(WeibullDistributionTest, ShapeOneIsExponential) {
  WeibullDistribution w = WeibullDistribution::Create(1.0, 2.0).value();
  ExponentialDistribution e = ExponentialDistribution::Create(0.5).value();
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(w.Cdf(x), e.Cdf(x), 1e-9);
    EXPECT_NEAR(w.Pdf(x), e.Pdf(x), 1e-6);
  }
  EXPECT_NEAR(w.Mean(), 2.0, 1e-12);
}

TEST(WeibullDistributionTest, CdfBasics) {
  WeibullDistribution w = WeibullDistribution::Create(2.0, 1.0).value();
  EXPECT_DOUBLE_EQ(w.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.Cdf(-1.0), 0.0);
  EXPECT_NEAR(w.Cdf(1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(w.Survival(1.0), std::exp(-1.0), 1e-12);
  // Mean = Gamma(1.5) ~ 0.8862.
  EXPECT_NEAR(w.Mean(), std::tgamma(1.5), 1e-12);
}

TEST(FitWeibullTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitWeibullCensoredMle({}).ok());
  EXPECT_FALSE(FitWeibullCensoredMle({{5.0, false}}).ok());
  EXPECT_FALSE(FitWeibullCensoredMle({{-1.0, true}}).ok());
}

class WeibullRecoveryTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WeibullRecoveryTest, RecoversShapeAndScaleUnderCensoring) {
  const auto [shape, scale] = GetParam();
  Rng rng(601);
  const double censor_at = 2.5 * scale;
  std::vector<CensoredObservation> obs;
  for (int i = 0; i < 30000; ++i) {
    const double x = DrawWeibull(shape, scale, rng);
    if (x > censor_at) {
      obs.push_back({censor_at, false});
    } else {
      obs.push_back({x, true});
    }
  }
  WeibullDistribution fit = FitWeibullCensoredMle(obs).value();
  EXPECT_NEAR(fit.shape(), shape, 0.06 * shape);
  EXPECT_NEAR(fit.scale(), scale, 0.06 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WeibullRecoveryTest,
    ::testing::Values(std::make_tuple(0.7, 10.0),
                      std::make_tuple(1.0, 50.0),
                      std::make_tuple(1.5, 5.0),
                      std::make_tuple(2.5, 100.0)));

TEST(FitWeibullTest, ExponentialSampleYieldsShapeNearOne) {
  Rng rng(607);
  std::vector<CensoredObservation> obs;
  for (int i = 0; i < 20000; ++i) {
    obs.push_back({rng.Exponential(0.1), true});
  }
  WeibullDistribution fit = FitWeibullCensoredMle(obs).value();
  EXPECT_NEAR(fit.shape(), 1.0, 0.05);
  EXPECT_NEAR(fit.scale(), 10.0, 0.5);
}

TEST(WeibullLogLikelihoodTest, TrueModelBeatsWrongModel) {
  Rng rng(613);
  std::vector<CensoredObservation> obs;
  for (int i = 0; i < 5000; ++i) {
    obs.push_back({DrawWeibull(2.0, 10.0, rng), true});
  }
  const double true_ll = WeibullCensoredLogLikelihood(obs, 2.0, 10.0);
  const double exp_ll = WeibullCensoredLogLikelihood(
      obs, 1.0, 10.0 * std::tgamma(1.5));  // Exponential with same mean.
  EXPECT_GT(true_ll, exp_ll);
}

TEST(WeibullLogLikelihoodTest, CensoredObservationsUseSurvival) {
  std::vector<CensoredObservation> censored{{5.0, false}};
  WeibullDistribution w = WeibullDistribution::Create(1.0, 10.0).value();
  EXPECT_NEAR(WeibullCensoredLogLikelihood(censored, 1.0, 10.0),
              std::log(w.Survival(5.0)), 1e-12);
}

}  // namespace
}  // namespace freshsel::stats
