#include "stats/step_function.h"

#include <gtest/gtest.h>

namespace freshsel::stats {
namespace {

TEST(StepFunctionTest, ConstantFunction) {
  StepFunction f = StepFunction::Constant(0.4);
  EXPECT_DOUBLE_EQ(f.Evaluate(-1.0), 0.0);  // Negative inputs are 0.
  EXPECT_DOUBLE_EQ(f.Evaluate(0.0), 0.4);
  EXPECT_DOUBLE_EQ(f.Evaluate(1e9), 0.4);
  EXPECT_DOUBLE_EQ(f.FinalValue(), 0.4);
}

TEST(StepFunctionTest, ConstantClampsToUnitInterval) {
  EXPECT_DOUBLE_EQ(StepFunction::Constant(2.0).Evaluate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(StepFunction::Constant(-0.5).Evaluate(0.0), 0.0);
}

TEST(StepFunctionTest, FromKnotsEvaluatesRightContinuously) {
  StepFunction f =
      StepFunction::FromKnots({{1.0, 0.3}, {4.0, 0.7}, {9.0, 1.0}}).value();
  EXPECT_DOUBLE_EQ(f.Evaluate(0.0), 0.0);   // Before first knot: initial.
  EXPECT_DOUBLE_EQ(f.Evaluate(0.99), 0.0);
  EXPECT_DOUBLE_EQ(f.Evaluate(1.0), 0.3);   // Right-continuous at knots.
  EXPECT_DOUBLE_EQ(f.Evaluate(3.99), 0.3);
  EXPECT_DOUBLE_EQ(f.Evaluate(4.0), 0.7);
  EXPECT_DOUBLE_EQ(f.Evaluate(8.0), 0.7);
  EXPECT_DOUBLE_EQ(f.Evaluate(9.0), 1.0);
  EXPECT_DOUBLE_EQ(f.Evaluate(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(f.FinalValue(), 1.0);
}

TEST(StepFunctionTest, InitialValueRespected) {
  StepFunction f = StepFunction::FromKnots({{2.0, 0.9}}, 0.5).value();
  EXPECT_DOUBLE_EQ(f.Evaluate(0.0), 0.5);
  EXPECT_DOUBLE_EQ(f.Evaluate(2.0), 0.9);
}

TEST(StepFunctionTest, ValidatesKnots) {
  // Non-increasing x.
  EXPECT_FALSE(StepFunction::FromKnots({{2.0, 0.1}, {2.0, 0.2}}).ok());
  EXPECT_FALSE(StepFunction::FromKnots({{3.0, 0.1}, {1.0, 0.2}}).ok());
  // Negative x.
  EXPECT_FALSE(StepFunction::FromKnots({{-1.0, 0.1}}).ok());
  // Decreasing y.
  EXPECT_FALSE(StepFunction::FromKnots({{1.0, 0.5}, {2.0, 0.3}}).ok());
  // y above 1.
  EXPECT_FALSE(StepFunction::FromKnots({{1.0, 1.5}}).ok());
  // Bad initial.
  EXPECT_FALSE(StepFunction::FromKnots({}, -0.1).ok());
  EXPECT_FALSE(StepFunction::FromKnots({}, 1.1).ok());
  // Empty knots with valid initial is fine.
  EXPECT_TRUE(StepFunction::FromKnots({}, 0.0).ok());
}

TEST(StepFunctionTest, ZeroDelayKnotApplies) {
  // A capture with zero delay (knot at x=0) should fire at x=0.
  StepFunction f = StepFunction::FromKnots({{0.0, 0.25}}).value();
  EXPECT_DOUBLE_EQ(f.Evaluate(0.0), 0.25);
  EXPECT_DOUBLE_EQ(f.Evaluate(-0.001), 0.0);
}

}  // namespace
}  // namespace freshsel::stats
