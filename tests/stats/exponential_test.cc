#include "stats/exponential.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace freshsel::stats {
namespace {

TEST(ExponentialDistributionTest, CreateValidates) {
  EXPECT_FALSE(ExponentialDistribution::Create(0.0).ok());
  EXPECT_FALSE(ExponentialDistribution::Create(-1.0).ok());
  EXPECT_TRUE(ExponentialDistribution::Create(0.5).ok());
}

TEST(ExponentialDistributionTest, PdfCdfSurvival) {
  ExponentialDistribution e = ExponentialDistribution::Create(2.0).value();
  EXPECT_DOUBLE_EQ(e.mean(), 0.5);
  EXPECT_NEAR(e.Pdf(0.0), 2.0, 1e-12);
  EXPECT_NEAR(e.Cdf(1.0), 1.0 - std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e.Survival(1.0), std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(e.Pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.Cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.Survival(-1.0), 1.0);
}

TEST(FitExponentialCensoredMleTest, MatchesPaperEquation7) {
  // Equation 7: rate^-1 = total lifespan / #disappeared.
  // Total duration 10 + 20 + 30(censored) = 60, events 2 -> rate = 1/30.
  std::vector<CensoredObservation> obs{{10, true}, {20, true}, {30, false}};
  EXPECT_NEAR(FitExponentialCensoredMle(obs).value(), 2.0 / 60.0, 1e-12);
}

TEST(FitExponentialCensoredMleTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(FitExponentialCensoredMle({}).ok());
  EXPECT_FALSE(FitExponentialCensoredMle({{5.0, false}}).ok());  // No event.
  EXPECT_FALSE(FitExponentialCensoredMle({{0.0, true}}).ok());   // Zero time.
  EXPECT_FALSE(FitExponentialCensoredMle({{-1.0, true}}).ok());
}

TEST(FitExponentialMleTest, UncensoredIsInverseMean) {
  EXPECT_NEAR(FitExponentialMle({1.0, 2.0, 3.0}).value(), 0.5, 1e-12);
}

class CensoredRecoveryTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CensoredRecoveryTest, RecoversRateUnderCensoring) {
  const auto [rate, censor_horizon] = GetParam();
  Rng rng(113);
  std::vector<CensoredObservation> obs;
  for (int i = 0; i < 40000; ++i) {
    const double duration = rng.Exponential(rate);
    if (duration > censor_horizon) {
      obs.push_back({censor_horizon, false});  // Right-censored.
    } else {
      obs.push_back({duration, true});
    }
  }
  const double fitted = FitExponentialCensoredMle(obs).value();
  EXPECT_NEAR(fitted, rate, 0.05 * rate);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndHorizons, CensoredRecoveryTest,
    ::testing::Values(std::make_tuple(0.01, 100.0),
                      std::make_tuple(0.01, 50.0),   // Heavy censoring.
                      std::make_tuple(0.1, 20.0),
                      std::make_tuple(1.0, 2.0),
                      std::make_tuple(2.0, 10.0)));  // Light censoring.

TEST(ExponentialKsDistanceTest, SmallForCorrectModel) {
  Rng rng(127);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.Exponential(0.5));
  EXPECT_LT(ExponentialKsDistance(sample, 0.5).value(), 0.02);
}

TEST(ExponentialKsDistanceTest, LargeForWrongModel) {
  Rng rng(131);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.Exponential(0.5));
  EXPECT_GT(ExponentialKsDistance(sample, 5.0).value(), 0.3);
}

TEST(ExponentialKsDistanceTest, RejectsEmptySample) {
  EXPECT_FALSE(ExponentialKsDistance({}, 1.0).ok());
}

}  // namespace
}  // namespace freshsel::stats
