#include "stats/poisson.h"

#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"

namespace freshsel::stats {
namespace {

TEST(PoissonDistributionTest, CreateValidates) {
  EXPECT_FALSE(PoissonDistribution::Create(-1.0).ok());
  EXPECT_FALSE(PoissonDistribution::Create(
                   std::numeric_limits<double>::infinity())
                   .ok());
  EXPECT_TRUE(PoissonDistribution::Create(0.0).ok());
}

TEST(PoissonDistributionTest, PmfKnownValues) {
  PoissonDistribution p = PoissonDistribution::Create(2.0).value();
  EXPECT_NEAR(p.Pmf(0), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(p.Pmf(1), 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_NEAR(p.Pmf(2), 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(p.Pmf(-1), 0.0);
}

TEST(PoissonDistributionTest, ZeroLambdaDegenerate) {
  PoissonDistribution p = PoissonDistribution::Create(0.0).value();
  EXPECT_DOUBLE_EQ(p.Pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(p.Pmf(1), 0.0);
  EXPECT_DOUBLE_EQ(p.Cdf(0), 1.0);
}

TEST(PoissonDistributionTest, PmfSumsToOne) {
  PoissonDistribution p = PoissonDistribution::Create(4.5).value();
  double total = 0.0;
  for (int k = 0; k < 100; ++k) total += p.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-10);
  EXPECT_NEAR(p.Cdf(99), 1.0, 1e-10);
}

TEST(PoissonDistributionTest, CdfIsMonotone) {
  PoissonDistribution p = PoissonDistribution::Create(3.0).value();
  double prev = -1.0;
  for (int k = 0; k < 20; ++k) {
    const double cdf = p.Cdf(k);
    EXPECT_GE(cdf, prev);
    prev = cdf;
  }
  EXPECT_DOUBLE_EQ(p.Cdf(-1), 0.0);
}

TEST(FitPoissonMleTest, IsSampleMean) {
  EXPECT_DOUBLE_EQ(FitPoissonMle({2, 4, 6}).value(), 4.0);
  EXPECT_DOUBLE_EQ(FitPoissonMle({0, 0, 0}).value(), 0.0);
}

TEST(FitPoissonMleTest, RejectsBadInput) {
  EXPECT_FALSE(FitPoissonMle({}).ok());
  EXPECT_FALSE(FitPoissonMle({1, -2}).ok());
}

class PoissonMleRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMleRecoveryTest, RecoversIntensity) {
  const double lambda = GetParam();
  Rng rng(91);
  std::vector<std::int64_t> counts;
  for (int i = 0; i < 20000; ++i) counts.push_back(rng.Poisson(lambda));
  const double fitted = FitPoissonMle(counts).value();
  EXPECT_NEAR(fitted, lambda, 0.05 * std::max(1.0, lambda));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMleRecoveryTest,
                         ::testing::Values(0.2, 1.0, 3.0, 12.0, 50.0));

TEST(PoissonChiSquareTest, GoodFitHasSmallReducedStatistic) {
  Rng rng(101);
  CountHistogram observed;
  const double lambda = 6.0;
  for (int i = 0; i < 20000; ++i) observed.Add(rng.Poisson(lambda));
  ChiSquareResult result = PoissonChiSquare(observed, lambda).value();
  EXPECT_GT(result.cells, 3u);
  // Reduced chi-square near 1 for a correct model; allow generous headroom.
  EXPECT_LT(result.reduced, 3.0);
}

TEST(PoissonChiSquareTest, WrongModelHasLargeStatistic) {
  Rng rng(103);
  CountHistogram observed;
  for (int i = 0; i < 20000; ++i) observed.Add(rng.Poisson(6.0));
  ChiSquareResult bad = PoissonChiSquare(observed, 2.0).value();
  ChiSquareResult good = PoissonChiSquare(observed, 6.0).value();
  EXPECT_GT(bad.reduced, 10.0 * good.reduced);
}

TEST(PoissonChiSquareTest, RejectsEmptyAndDegenerate) {
  CountHistogram empty;
  EXPECT_FALSE(PoissonChiSquare(empty, 1.0).ok());

  CountHistogram tiny;  // All mass on one outcome: too few cells.
  tiny.Add(0);
  tiny.Add(0);
  EXPECT_FALSE(PoissonChiSquare(tiny, 0.001).ok());
}

}  // namespace
}  // namespace freshsel::stats
