#include "stats/kaplan_meier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace freshsel::stats {
namespace {

TEST(KaplanMeierTest, RequiresObservations) {
  KaplanMeierEstimator km;
  EXPECT_FALSE(km.Fit().ok());
}

TEST(KaplanMeierTest, AllCensoredGivesZeroFunction) {
  KaplanMeierEstimator km;
  km.Add(5.0, false);
  km.Add(7.0, false);
  StepFunction f = km.Fit().value();
  EXPECT_DOUBLE_EQ(f.Evaluate(100.0), 0.0);
  EXPECT_DOUBLE_EQ(f.FinalValue(), 0.0);
}

TEST(KaplanMeierTest, NoCensoringMatchesEmpiricalCdf) {
  KaplanMeierEstimator km;
  for (double d : {1.0, 2.0, 3.0, 4.0}) km.Add(d, true);
  StepFunction f = km.Fit().value();
  EXPECT_DOUBLE_EQ(f.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.Evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f.Evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f.Evaluate(4.0), 1.0);
}

TEST(KaplanMeierTest, TiedEventsHandled) {
  KaplanMeierEstimator km;
  km.Add(2.0, true);
  km.Add(2.0, true);
  km.Add(5.0, true);
  StepFunction f = km.Fit().value();
  EXPECT_NEAR(f.Evaluate(2.0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(f.Evaluate(5.0), 1.0, 1e-12);
}

TEST(KaplanMeierTest, TextbookCensoredExample) {
  // Durations: 1 (event), 2 (censored), 3 (event), 4 (event).
  // S(1) = 3/4. At t=3 risk set {3,4}: S(3) = 3/4 * 1/2 = 3/8.
  // At t=4 risk set {4}: S(4) = 0.
  KaplanMeierEstimator km;
  km.Add(1.0, true);
  km.Add(2.0, false);
  km.Add(3.0, true);
  km.Add(4.0, true);
  StepFunction f = km.Fit().value();
  EXPECT_NEAR(f.Evaluate(1.0), 0.25, 1e-12);
  EXPECT_NEAR(f.Evaluate(3.0), 1.0 - 0.375, 1e-12);
  EXPECT_NEAR(f.Evaluate(4.0), 1.0, 1e-12);
}

TEST(KaplanMeierTest, CensoredTieProcessedAfterEvent) {
  // At t=2 one event and one censoring: censored subject counts as at risk,
  // so S(2) = 1 - 1/2 = 1/2 and the censored one leaves afterwards.
  KaplanMeierEstimator km;
  km.Add(2.0, true);
  km.Add(2.0, false);
  StepFunction f = km.Fit().value();
  EXPECT_NEAR(f.Evaluate(2.0), 0.5, 1e-12);
  EXPECT_NEAR(f.FinalValue(), 0.5, 1e-12);
}

TEST(KaplanMeierTest, PlateauBelowOneWhenTailCensored) {
  KaplanMeierEstimator km;
  km.Add(1.0, true);
  km.Add(10.0, false);
  km.Add(10.0, false);
  StepFunction f = km.Fit().value();
  EXPECT_NEAR(f.FinalValue(), 1.0 / 3.0, 1e-12);
}

TEST(KaplanMeierTest, NegativeDurationsClampToZero) {
  KaplanMeierEstimator km;
  km.Add(-3.0, true);
  km.Add(1.0, true);
  StepFunction f = km.Fit().value();
  EXPECT_NEAR(f.Evaluate(0.0), 0.5, 1e-12);
}

class KmRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(KmRecoveryTest, RecoversExponentialCdfUnderCensoring) {
  // Delays ~ Exp(rate), censored at a fixed horizon; the KM estimate must
  // track the true CDF well inside the horizon.
  const double rate = GetParam();
  const double horizon = 3.0 / rate;
  Rng rng(139);
  KaplanMeierEstimator km;
  for (int i = 0; i < 30000; ++i) {
    const double d = rng.Exponential(rate);
    if (d > horizon) {
      km.Add(horizon, false);
    } else {
      km.Add(d, true);
    }
  }
  StepFunction f = km.Fit().value();
  ExponentialDistribution truth =
      ExponentialDistribution::Create(rate).value();
  for (double x : {0.2 / rate, 0.5 / rate, 1.0 / rate, 2.0 / rate}) {
    EXPECT_NEAR(f.Evaluate(x), truth.Cdf(x), 0.015)
        << "rate=" << rate << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, KmRecoveryTest,
                         ::testing::Values(0.05, 0.2, 1.0, 4.0));

TEST(KaplanMeierTest, FullyCensoredSampleYieldsZeroFitButStdErrorFails) {
  KaplanMeierEstimator km;
  km.Add(3.0, false);
  km.Add(7.0, false);
  // Fit falls back to the constant-zero effectiveness distribution...
  StepFunction f = km.Fit().value();
  EXPECT_EQ(f.Evaluate(100.0), 0.0);
  // ...but there is no event-time knot to attach a Greenwood error to.
  Result<std::vector<KaplanMeierEstimator::KnotWithError>> band =
      km.FitWithStdError();
  ASSERT_FALSE(band.ok());
  EXPECT_EQ(band.status().code(), StatusCode::kFailedPrecondition);
}

TEST(KaplanMeierTest, FitWithStdErrorMatchesFitKnots) {
  Rng rng(151);
  KaplanMeierEstimator km;
  for (int i = 0; i < 400; ++i) {
    km.Add(rng.Exponential(0.2), rng.Bernoulli(0.8));
  }
  StepFunction cdf = km.Fit().value();
  std::vector<KaplanMeierEstimator::KnotWithError> knots =
      km.FitWithStdError().value();
  ASSERT_EQ(knots.size(), cdf.knots().size());
  for (std::size_t i = 0; i < knots.size(); ++i) {
    EXPECT_DOUBLE_EQ(knots[i].time, cdf.knots()[i].first);
    EXPECT_DOUBLE_EQ(knots[i].cdf, cdf.knots()[i].second);
    EXPECT_GE(knots[i].std_error, 0.0);
  }
}

TEST(KaplanMeierTest, GreenwoodKnownExample) {
  // Events at 1, 2 with 3 subjects (third censored at 3):
  // t=1: S=2/3, Var = S^2 * [1/(3*2)] -> se = (2/3) sqrt(1/6).
  KaplanMeierEstimator km;
  km.Add(1.0, true);
  km.Add(2.0, true);
  km.Add(3.0, false);
  std::vector<KaplanMeierEstimator::KnotWithError> knots =
      km.FitWithStdError().value();
  ASSERT_EQ(knots.size(), 2u);
  EXPECT_NEAR(knots[0].std_error,
              (2.0 / 3.0) * std::sqrt(1.0 / 6.0), 1e-12);
  // t=2: S = 2/3 * 1/2 = 1/3, Var = S^2 [1/6 + 1/(2*1)].
  EXPECT_NEAR(knots[1].std_error,
              (1.0 / 3.0) * std::sqrt(1.0 / 6.0 + 0.5), 1e-12);
}

TEST(KaplanMeierTest, StdErrorShrinksWithSampleSize) {
  auto band_at_median = [](int n) {
    Rng rng(157);
    KaplanMeierEstimator km;
    for (int i = 0; i < n; ++i) km.Add(rng.Exponential(1.0), true);
    std::vector<KaplanMeierEstimator::KnotWithError> knots =
        km.FitWithStdError().value();
    return knots[knots.size() / 2].std_error;
  };
  EXPECT_GT(band_at_median(50), band_at_median(5000));
}

TEST(KaplanMeierTest, FitIsMonotoneNonDecreasing) {
  Rng rng(149);
  KaplanMeierEstimator km;
  for (int i = 0; i < 500; ++i) {
    km.Add(rng.Exponential(0.3), rng.Bernoulli(0.7));
  }
  StepFunction f = km.Fit().value();
  double prev = -1.0;
  for (const auto& [x, y] : f.knots()) {
    EXPECT_GE(y, prev);
    prev = y;
  }
}

}  // namespace
}  // namespace freshsel::stats
