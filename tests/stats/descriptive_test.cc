#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace freshsel::stats {
namespace {

TEST(DescriptiveTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(DescriptiveTest, VarianceUnbiased) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({7.0}), 0.0);
  // Sample {1, 3}: mean 2, variance (1 + 1)/(2-1) = 2.
  EXPECT_DOUBLE_EQ(Variance({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0, 3.0}), std::sqrt(2.0));
}

TEST(DescriptiveTest, QuantileInterpolates) {
  std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
  // Out-of-range q is clamped.
  EXPECT_DOUBLE_EQ(Quantile(values, 2.0), 40.0);
}

TEST(DescriptiveTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 5.0), 0.0);
  // Zero actual: guarded by epsilon, stays finite.
  EXPECT_TRUE(std::isfinite(RelativeError(1.0, 0.0)));
}

TEST(RunningStatsTest, TracksMoments) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  for (double v : {2.0, 4.0, 6.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 6.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 12.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // ((2)^2+(0)^2+(2)^2)/2.
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  std::vector<double> values{1.5, -2.0, 3.25, 0.0, 7.75, -1.0};
  RunningStats stats;
  for (double v : values) stats.Add(v);
  EXPECT_NEAR(stats.mean(), Mean(values), 1e-12);
  EXPECT_NEAR(stats.variance(), Variance(values), 1e-12);
}

}  // namespace
}  // namespace freshsel::stats
