#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <numeric>

namespace freshsel::stats {
namespace {

TEST(HistogramTest, CreateValidatesArguments) {
  EXPECT_FALSE(Histogram::Create(1.0, 1.0, 10).ok());
  EXPECT_FALSE(Histogram::Create(2.0, 1.0, 10).ok());
  EXPECT_FALSE(Histogram::Create(0.0, 1.0, 0).ok());
  EXPECT_TRUE(Histogram::Create(0.0, 1.0, 4).ok());
}

TEST(HistogramTest, BinsValues) {
  Histogram h = Histogram::Create(0.0, 10.0, 5).value();
  h.Add(0.5);   // bin 0
  h.Add(2.0);   // bin 1
  h.Add(9.99);  // bin 4
  EXPECT_DOUBLE_EQ(h.BinWeight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinWeight(1), 1.0);
  EXPECT_DOUBLE_EQ(h.BinWeight(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.BinLowerEdge(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 1.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h = Histogram::Create(0.0, 10.0, 5).value();
  h.Add(-3.0);
  h.Add(42.0);
  EXPECT_DOUBLE_EQ(h.BinWeight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinWeight(4), 1.0);
}

TEST(HistogramTest, WeightsAccumulate) {
  Histogram h = Histogram::Create(0.0, 1.0, 1).value();
  h.Add(0.5, 2.5);
  h.Add(0.5, 0.5);
  EXPECT_DOUBLE_EQ(h.BinWeight(0), 3.0);
}

TEST(HistogramTest, NormalizedMassSumsToOne) {
  Histogram h = Histogram::Create(0.0, 4.0, 4).value();
  h.Add(0.1);
  h.Add(1.1);
  h.Add(1.2);
  h.Add(3.9);
  std::vector<double> mass = h.NormalizedMass();
  EXPECT_NEAR(std::accumulate(mass.begin(), mass.end(), 0.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(mass[1], 0.5);
}

TEST(HistogramTest, EmptyNormalizedMassIsZero) {
  Histogram h = Histogram::Create(0.0, 1.0, 3).value();
  for (double m : h.NormalizedMass()) EXPECT_DOUBLE_EQ(m, 0.0);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  Histogram h = Histogram::Create(0.0, 10.0, 5).value();
  for (int i = 0; i < 10; ++i) h.Add(static_cast<double>(i));
  std::vector<double> density = h.Density();
  double integral = 0.0;
  for (double d : density) integral += d * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(CountHistogramTest, CountsOutcomes) {
  CountHistogram h;
  h.Add(0);
  h.Add(2);
  h.Add(2);
  h.Add(5);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.max_value(), 5);
  EXPECT_EQ(h.CountOf(2), 2u);
  EXPECT_EQ(h.CountOf(1), 0u);
  EXPECT_EQ(h.CountOf(99), 0u);
  EXPECT_EQ(h.CountOf(-1), 0u);
}

TEST(CountHistogramTest, EmpiricalPmf) {
  CountHistogram h;
  h.Add(0);
  h.Add(0);
  h.Add(1);
  h.Add(3);
  std::vector<double> pmf = h.EmpiricalPmf();
  ASSERT_EQ(pmf.size(), 4u);
  EXPECT_DOUBLE_EQ(pmf[0], 0.5);
  EXPECT_DOUBLE_EQ(pmf[1], 0.25);
  EXPECT_DOUBLE_EQ(pmf[2], 0.0);
  EXPECT_DOUBLE_EQ(pmf[3], 0.25);
}

TEST(CountHistogramTest, NegativeClampsToZero) {
  CountHistogram h;
  h.Add(-5);
  EXPECT_EQ(h.CountOf(0), 1u);
}

}  // namespace
}  // namespace freshsel::stats
