#include "world/domain.h"

#include <cstdint>
#include <gtest/gtest.h>

namespace freshsel::world {
namespace {

TEST(DataDomainTest, CreateValidates) {
  EXPECT_FALSE(DataDomain::Create("a", 0, "b", 3).ok());
  EXPECT_FALSE(DataDomain::Create("a", 3, "b", 0).ok());
  EXPECT_TRUE(DataDomain::Create("a", 1, "b", 1).ok());
}

TEST(DataDomainTest, SubdomainMappingRoundTrips) {
  DataDomain d = DataDomain::Create("loc", 5, "cat", 7).value();
  EXPECT_EQ(d.subdomain_count(), 35u);
  for (std::uint32_t l = 0; l < 5; ++l) {
    for (std::uint32_t c = 0; c < 7; ++c) {
      const SubdomainId id = d.SubdomainOf(l, c);
      EXPECT_LT(id, d.subdomain_count());
      EXPECT_EQ(d.Dim1Of(id), l);
      EXPECT_EQ(d.Dim2Of(id), c);
    }
  }
}

TEST(DataDomainTest, SubdomainIdsAreDenseAndUnique) {
  DataDomain d = DataDomain::Create("loc", 3, "cat", 4).value();
  std::vector<bool> seen(d.subdomain_count(), false);
  for (std::uint32_t l = 0; l < 3; ++l) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      const SubdomainId id = d.SubdomainOf(l, c);
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
}

TEST(DataDomainTest, SubdomainsInDim1CoversAllCategories) {
  DataDomain d = DataDomain::Create("loc", 4, "cat", 3).value();
  std::vector<SubdomainId> subs = d.SubdomainsInDim1(2);
  ASSERT_EQ(subs.size(), 3u);
  for (SubdomainId sub : subs) EXPECT_EQ(d.Dim1Of(sub), 2u);
}

TEST(DataDomainTest, SubdomainsInDim2CoversAllLocations) {
  DataDomain d = DataDomain::Create("loc", 4, "cat", 3).value();
  std::vector<SubdomainId> subs = d.SubdomainsInDim2(1);
  ASSERT_EQ(subs.size(), 4u);
  for (SubdomainId sub : subs) EXPECT_EQ(d.Dim2Of(sub), 1u);
}

TEST(DataDomainTest, NamesPreserved) {
  DataDomain d = DataDomain::Create("state", 2, "type", 2).value();
  EXPECT_EQ(d.dim1_name(), "state");
  EXPECT_EQ(d.dim2_name(), "type");
}

}  // namespace
}  // namespace freshsel::world
