#include "world/world.h"

#include <cstdint>
#include <gtest/gtest.h>

#include "testing/test_world.h"

namespace freshsel::world {
namespace {

TEST(EntityRecordTest, ExistsAt) {
  EntityRecord rec;
  rec.birth = 10;
  rec.death = 20;
  EXPECT_FALSE(rec.ExistsAt(9));
  EXPECT_TRUE(rec.ExistsAt(10));
  EXPECT_TRUE(rec.ExistsAt(19));
  EXPECT_FALSE(rec.ExistsAt(20));  // Death day: gone.

  rec.death = kNever;
  EXPECT_TRUE(rec.ExistsAt(1000000));
}

TEST(EntityRecordTest, VersionAt) {
  EntityRecord rec;
  rec.birth = 0;
  rec.update_times = {10, 30};
  EXPECT_EQ(rec.VersionAt(5), 0u);
  EXPECT_EQ(rec.VersionAt(10), 1u);
  EXPECT_EQ(rec.VersionAt(29), 1u);
  EXPECT_EQ(rec.VersionAt(30), 2u);
  EXPECT_EQ(rec.VersionAt(100), 2u);
}

TEST(EntityRecordTest, LatestChangeAt) {
  EntityRecord rec;
  rec.birth = 5;
  rec.update_times = {10, 30};
  EXPECT_EQ(rec.LatestChangeAt(7), 5);
  EXPECT_EQ(rec.LatestChangeAt(10), 10);
  EXPECT_EQ(rec.LatestChangeAt(29), 10);
  EXPECT_EQ(rec.LatestChangeAt(50), 30);
}

TEST(WorldTest, AddEntityValidation) {
  DataDomain domain = DataDomain::Create("a", 1, "b", 1).value();
  World w(std::move(domain), 100);

  EntityRecord wrong_id;
  wrong_id.id = 5;  // Must be 0.
  EXPECT_FALSE(w.AddEntity(wrong_id).ok());

  EntityRecord bad_sub;
  bad_sub.id = 0;
  bad_sub.subdomain = 9;
  EXPECT_FALSE(w.AddEntity(bad_sub).ok());

  EntityRecord death_before_birth;
  death_before_birth.id = 0;
  death_before_birth.birth = 10;
  death_before_birth.death = 10;
  EXPECT_FALSE(w.AddEntity(death_before_birth).ok());

  EntityRecord update_before_birth;
  update_before_birth.id = 0;
  update_before_birth.birth = 10;
  update_before_birth.update_times = {10};
  EXPECT_FALSE(w.AddEntity(update_before_birth).ok());

  EntityRecord update_after_death;
  update_after_death.id = 0;
  update_after_death.birth = 0;
  update_after_death.death = 5;
  update_after_death.update_times = {5};
  EXPECT_FALSE(w.AddEntity(update_after_death).ok());

  EntityRecord non_monotone;
  non_monotone.id = 0;
  non_monotone.birth = 0;
  non_monotone.update_times = {5, 5};
  EXPECT_FALSE(w.AddEntity(non_monotone).ok());

  EntityRecord good;
  good.id = 0;
  good.birth = 0;
  good.death = 50;
  good.update_times = {10, 20};
  EXPECT_TRUE(w.AddEntity(good).ok());
}

TEST(WorldTest, AddAfterFinalizeFails) {
  DataDomain domain = DataDomain::Create("a", 1, "b", 1).value();
  World w(std::move(domain), 10);
  ASSERT_TRUE(w.Finalize().ok());
  EntityRecord rec;
  rec.id = 0;
  EXPECT_FALSE(w.AddEntity(rec).ok());
}

TEST(WorldTest, CountsMatchBruteForce) {
  World w = testing::MakeTestWorld();
  for (TimePoint t = 0; t <= 100; t += 5) {
    std::int64_t expected_total = 0;
    std::vector<std::int64_t> expected_sub(4, 0);
    for (const EntityRecord& e : w.entities()) {
      if (e.ExistsAt(t)) {
        ++expected_total;
        ++expected_sub[e.subdomain];
      }
    }
    EXPECT_EQ(w.TotalCountAt(t), expected_total) << "t=" << t;
    for (SubdomainId sub = 0; sub < 4; ++sub) {
      EXPECT_EQ(w.CountAt(sub, t), expected_sub[sub])
          << "t=" << t << " sub=" << sub;
    }
  }
}

TEST(WorldTest, CountAtInSumsSubdomains) {
  World w = testing::MakeTestWorld();
  EXPECT_EQ(w.CountAtIn({0, 1}, 10), w.CountAt(0, 10) + w.CountAt(1, 10));
  EXPECT_EQ(w.CountAtIn({0, 1, 2, 3}, 30), w.TotalCountAt(30));
}

TEST(WorldTest, CountQueriesClampOutsideHorizon) {
  World w = testing::MakeTestWorld();
  EXPECT_EQ(w.TotalCountAt(-5), w.TotalCountAt(0));
  EXPECT_EQ(w.TotalCountAt(1000), w.TotalCountAt(100));
}

TEST(WorldTest, ChangeLogIsSortedAndComplete) {
  World w = testing::MakeTestWorld();
  const auto& log = w.change_log();
  // 6 appearances + 7 updates + 3 deaths within horizon.
  std::size_t appears = 0;
  std::size_t updates = 0;
  std::size_t disappears = 0;
  TimePoint prev = -1;
  for (const ChangeEvent& ev : log) {
    EXPECT_GE(ev.time, prev);
    prev = ev.time;
    switch (ev.type) {
      case ChangeType::kAppear:
        ++appears;
        break;
      case ChangeType::kUpdate:
        ++updates;
        EXPECT_GE(ev.version, 1u);
        break;
      case ChangeType::kDisappear:
        ++disappears;
        break;
    }
  }
  EXPECT_EQ(appears, 6u);
  EXPECT_EQ(updates, 7u);
  EXPECT_EQ(disappears, 3u);
}

TEST(WorldTest, EntitiesInSubdomain) {
  World w = testing::MakeTestWorld();
  EXPECT_EQ(w.EntitiesInSubdomain(0),
            (std::vector<EntityId>{0, 1, 5}));
  EXPECT_EQ(w.EntitiesInSubdomain(1), (std::vector<EntityId>{2}));
  EXPECT_EQ(w.EntitiesInSubdomain(3), (std::vector<EntityId>{4}));
}

TEST(WorldTest, FinalizeIsIdempotent) {
  World w = testing::MakeTestWorld();
  const std::int64_t before = w.TotalCountAt(10);
  ASSERT_TRUE(w.Finalize().ok());
  EXPECT_EQ(w.TotalCountAt(10), before);
}

}  // namespace
}  // namespace freshsel::world
