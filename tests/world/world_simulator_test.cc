#include "world/world_simulator.h"

#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>

namespace freshsel::world {
namespace {

WorldSpec SimpleSpec(double appearance, double disappear, double update,
                     std::uint32_t initial, TimePoint horizon) {
  DataDomain domain = DataDomain::Create("a", 1, "b", 1).value();
  WorldSpec spec{std::move(domain), {}, horizon};
  spec.rates.push_back({appearance, disappear, update, initial});
  return spec;
}

TEST(WorldSimulatorTest, ValidatesSpec) {
  Rng rng(1);
  WorldSpec bad_rates = SimpleSpec(1.0, 0.0, 0.0, 1, 10);
  bad_rates.rates[0].appearance_rate = -1.0;
  EXPECT_FALSE(SimulateWorld(bad_rates, rng).ok());

  WorldSpec bad_horizon = SimpleSpec(1.0, 0.0, 0.0, 1, 0);
  EXPECT_FALSE(SimulateWorld(bad_horizon, rng).ok());

  WorldSpec missing_rates = SimpleSpec(1.0, 0.0, 0.0, 1, 10);
  missing_rates.rates.clear();
  EXPECT_FALSE(SimulateWorld(missing_rates, rng).ok());
}

TEST(WorldSimulatorTest, SeedsInitialPopulation) {
  Rng rng(2);
  World w = SimulateWorld(SimpleSpec(0.0, 0.0, 0.0, 25, 10), rng).value();
  EXPECT_EQ(w.entity_count(), 25u);
  EXPECT_EQ(w.TotalCountAt(0), 25);
  EXPECT_EQ(w.TotalCountAt(10), 25);  // No deaths.
  for (const EntityRecord& e : w.entities()) {
    EXPECT_EQ(e.birth, 0);
    EXPECT_EQ(e.death, kNever);
    EXPECT_TRUE(e.update_times.empty());
  }
}

TEST(WorldSimulatorTest, AppearanceRateMatchesPoisson) {
  Rng rng(3);
  const double lambda = 4.0;
  const TimePoint horizon = 2000;
  World w =
      SimulateWorld(SimpleSpec(lambda, 0.0, 0.0, 0, horizon), rng).value();
  const double per_day =
      static_cast<double>(w.entity_count()) / static_cast<double>(horizon);
  EXPECT_NEAR(per_day, lambda, 0.2);
  // Births only on days 1..horizon.
  for (const EntityRecord& e : w.entities()) {
    EXPECT_GE(e.birth, 1);
    EXPECT_LE(e.birth, horizon);
  }
}

TEST(WorldSimulatorTest, LifespanMeanMatchesExponential) {
  Rng rng(4);
  const double gamma = 0.02;  // Mean lifespan 50 days.
  World w =
      SimulateWorld(SimpleSpec(0.0, gamma, 0.0, 20000, 10000), rng).value();
  double total = 0.0;
  for (const EntityRecord& e : w.entities()) {
    ASSERT_NE(e.death, kNever);
    total += static_cast<double>(e.death - e.birth);
  }
  const double mean = total / static_cast<double>(w.entity_count());
  // Ceil rounding biases the mean up by ~0.5 day.
  EXPECT_NEAR(mean, 1.0 / gamma + 0.5, 2.0);
}

TEST(WorldSimulatorTest, UpdateGapsMatchRate) {
  Rng rng(5);
  const double gamma_u = 0.1;  // Mean gap 10 days.
  World w =
      SimulateWorld(SimpleSpec(0.0, 0.0, gamma_u, 2000, 500), rng).value();
  std::size_t updates = 0;
  for (const EntityRecord& e : w.entities()) {
    updates += e.update_times.size();
    TimePoint prev = e.birth;
    for (TimePoint u : e.update_times) {
      EXPECT_GT(u, prev);
      EXPECT_LE(u, 500);
      prev = u;
    }
  }
  const double updates_per_entity_day =
      static_cast<double>(updates) / (2000.0 * 500.0);
  EXPECT_NEAR(updates_per_entity_day, gamma_u, 0.01);
}

TEST(WorldSimulatorTest, UpdatesPrecedeDeath) {
  Rng rng(6);
  World w =
      SimulateWorld(SimpleSpec(1.0, 0.05, 0.1, 100, 300), rng).value();
  for (const EntityRecord& e : w.entities()) {
    for (TimePoint u : e.update_times) {
      EXPECT_GT(u, e.birth);
      if (e.death != kNever) {
        EXPECT_LT(u, e.death);
      }
    }
  }
}

TEST(WorldSimulatorTest, DeterministicForSeed) {
  Rng rng_a(77);
  Rng rng_b(77);
  World a = SimulateWorld(SimpleSpec(2.0, 0.01, 0.05, 50, 200), rng_a).value();
  World b = SimulateWorld(SimpleSpec(2.0, 0.01, 0.05, 50, 200), rng_b).value();
  ASSERT_EQ(a.entity_count(), b.entity_count());
  for (std::size_t i = 0; i < a.entity_count(); ++i) {
    EXPECT_EQ(a.entity(i).birth, b.entity(i).birth);
    EXPECT_EQ(a.entity(i).death, b.entity(i).death);
    EXPECT_EQ(a.entity(i).update_times, b.entity(i).update_times);
  }
}

TEST(WorldSimulatorTest, MultiSubdomainRatesIndependent) {
  DataDomain domain = DataDomain::Create("a", 2, "b", 1).value();
  WorldSpec spec{std::move(domain), {}, 500};
  spec.rates.push_back({5.0, 0.0, 0.0, 0});  // Busy subdomain.
  spec.rates.push_back({0.5, 0.0, 0.0, 0});  // Quiet subdomain.
  Rng rng(9);
  World w = SimulateWorld(spec, rng).value();
  const double busy = static_cast<double>(w.EntitiesInSubdomain(0).size());
  const double quiet = static_cast<double>(w.EntitiesInSubdomain(1).size());
  EXPECT_NEAR(busy / 500.0, 5.0, 0.5);
  EXPECT_NEAR(quiet / 500.0, 0.5, 0.15);
}

}  // namespace
}  // namespace freshsel::world
