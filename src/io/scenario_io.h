#ifndef FRESHSEL_IO_SCENARIO_IO_H_
#define FRESHSEL_IO_SCENARIO_IO_H_

#include <string>

#include "common/result.h"
#include "fault/retry.h"
#include "source/source_history.h"
#include "world/world.h"

namespace freshsel::io {

/// CSV persistence for worlds and source histories, so scenarios can be
/// exported for offline analysis / plotting and real snapshot corpora can
/// be loaded into the library.
///
/// World file format (one header block, then one line per entity):
///   #world,<dim1_name>,<dim1_size>,<dim2_name>,<dim2_size>,<horizon>
///   id,subdomain,birth,death,updates
///   0,3,0,512,10|40|200
/// `death` is empty for still-alive entities; `updates` is a '|'-separated
/// day list (possibly empty).
///
/// Source file format:
///   #source,<name>,<period>,<phase>,<world_entity_count>
///   #scope,<subdomain>|<subdomain>|...
///   entity,subdomain,inserted,deleted,captures
///   17,3,12,,0:12|1:40
/// `captures` holds version:day pairs; `deleted` is empty when the source
/// never removed the entity.

/// Writes `world` to `path`. Returns IoError on filesystem failure.
Status WriteWorldCsv(const world::World& world, const std::string& path);

/// Reads a world written by WriteWorldCsv. The returned world is
/// finalized. Returns IoError / InvalidArgument on malformed input.
Result<world::World> ReadWorldCsv(const std::string& path);

/// Writes `history` to `path` (spec capture parameters other than the
/// schedule are not persisted - they are simulator internals the
/// estimation layer never sees).
Status WriteSourceHistoryCsv(const source::SourceHistory& history,
                             const std::string& path);

/// Reads a source history written by WriteSourceHistoryCsv.
Result<source::SourceHistory> ReadSourceHistoryCsv(const std::string& path);

/// Retrying variants for flaky storage (see DESIGN.md §11): the plain
/// loaders above carry `io.read` / `io.write` failpoints at their entry,
/// and these wrappers drive them through `retry` — transient failures
/// (IoError, Unavailable) are reattempted under the policy's capped
/// exponential backoff, each retry bumping the obs counter `io.retry.attempts`.
Result<world::World> ReadWorldCsv(const std::string& path,
                                  const fault::RetryPolicy& retry);
Result<source::SourceHistory> ReadSourceHistoryCsv(
    const std::string& path, const fault::RetryPolicy& retry);
Status WriteWorldCsv(const world::World& world, const std::string& path,
                     const fault::RetryPolicy& retry);
Status WriteSourceHistoryCsv(const source::SourceHistory& history,
                             const std::string& path,
                             const fault::RetryPolicy& retry);

}  // namespace freshsel::io

#endif  // FRESHSEL_IO_SCENARIO_IO_H_
