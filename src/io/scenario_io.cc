#include "io/scenario_io.h"

#include <charconv>
#include <cstdint>
#include <fstream>

#include "common/check.h"
#include "common/string_util.h"
#include "fault/failpoint.h"
#include "obs/macros.h"

namespace freshsel::io {

namespace {

Status ParseInt(const std::string& text, std::int64_t* out) {
  if (text.empty()) {
    return Status::InvalidArgument("expected integer, got empty field");
  }
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("malformed integer: " + text);
  }
  return Status::OK();
}

std::string JoinTimes(const std::vector<TimePoint>& times) {
  std::vector<std::string> parts;
  parts.reserve(times.size());
  for (TimePoint t : times) parts.push_back(std::to_string(t));
  return Join(parts, "|");
}

Result<std::vector<TimePoint>> ParseTimes(const std::string& text) {
  std::vector<TimePoint> times;
  if (text.empty()) return times;
  for (const std::string& part : Split(text, '|')) {
    std::int64_t value = 0;
    FRESHSEL_RETURN_IF_ERROR(ParseInt(part, &value));
    times.push_back(value);
  }
  return times;
}

}  // namespace

Status WriteWorldCsv(const world::World& world, const std::string& path) {
  FRESHSEL_TRACE_SPAN("io/write_world_csv");
  FRESHSEL_OBS_SCOPED_LATENCY("io.write_world.seconds");
  FRESHSEL_FAILPOINT_RETURN(
      "io.write", Status::Unavailable("injected fault: io.write " + path));
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const world::DataDomain& domain = world.domain();
  out << "#world," << domain.dim1_name() << ',' << domain.dim1_size() << ','
      << domain.dim2_name() << ',' << domain.dim2_size() << ','
      << world.horizon() << '\n';
  out << "id,subdomain,birth,death,updates\n";
  for (const world::EntityRecord& entity : world.entities()) {
    // A record violating the lifespan invariant means the in-memory world is
    // corrupt; refuse to persist it rather than round-trip garbage.
    FRESHSEL_DCHECK(entity.death == world::kNever ||
                    entity.death >= entity.birth);
    out << entity.id << ',' << entity.subdomain << ',' << entity.birth
        << ',';
    if (entity.death != world::kNever) out << entity.death;
    out << ',' << JoinTimes(entity.update_times) << '\n';
    FRESHSEL_OBS_COUNT("io.world_rows.written", 1);
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<world::World> ReadWorldCsv(const std::string& path) {
  FRESHSEL_TRACE_SPAN("io/read_world_csv");
  FRESHSEL_OBS_SCOPED_LATENCY("io.read_world.seconds");
  FRESHSEL_FAILPOINT_RETURN(
      "io.read", Status::Unavailable("injected fault: io.read " + path));
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty world file: " + path);
  }
  std::vector<std::string> header = Split(line, ',');
  if (header.size() != 6 || header[0] != "#world") {
    return Status::InvalidArgument("bad world header: " + line);
  }
  std::int64_t dim1_size = 0;
  std::int64_t dim2_size = 0;
  std::int64_t horizon = 0;
  FRESHSEL_RETURN_IF_ERROR(ParseInt(header[2], &dim1_size));
  FRESHSEL_RETURN_IF_ERROR(ParseInt(header[4], &dim2_size));
  FRESHSEL_RETURN_IF_ERROR(ParseInt(header[5], &horizon));
  FRESHSEL_ASSIGN_OR_RETURN(
      world::DataDomain domain,
      world::DataDomain::Create(header[1],
                                static_cast<std::uint32_t>(dim1_size),
                                header[3],
                                static_cast<std::uint32_t>(dim2_size)));
  world::World world(std::move(domain), horizon);

  if (!std::getline(in, line) ||
      line != "id,subdomain,birth,death,updates") {
    return Status::InvalidArgument("bad world column header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 5) {
      return Status::InvalidArgument("bad world row: " + line);
    }
    world::EntityRecord record;
    std::int64_t value = 0;
    FRESHSEL_RETURN_IF_ERROR(ParseInt(fields[0], &value));
    record.id = static_cast<world::EntityId>(value);
    FRESHSEL_RETURN_IF_ERROR(ParseInt(fields[1], &value));
    record.subdomain = static_cast<world::SubdomainId>(value);
    FRESHSEL_RETURN_IF_ERROR(ParseInt(fields[2], &record.birth));
    if (fields[3].empty()) {
      record.death = world::kNever;
    } else {
      FRESHSEL_RETURN_IF_ERROR(ParseInt(fields[3], &record.death));
    }
    FRESHSEL_ASSIGN_OR_RETURN(record.update_times, ParseTimes(fields[4]));
    FRESHSEL_RETURN_IF_ERROR(world.AddEntity(std::move(record)));
    FRESHSEL_OBS_COUNT("io.world_rows.read", 1);
  }
  FRESHSEL_RETURN_IF_ERROR(world.Finalize());
  return world;
}

Status WriteSourceHistoryCsv(const source::SourceHistory& history,
                             const std::string& path) {
  FRESHSEL_TRACE_SPAN("io/write_source_csv");
  FRESHSEL_FAILPOINT_RETURN(
      "io.write", Status::Unavailable("injected fault: io.write " + path));
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const source::SourceSpec& spec = history.spec();
  out << "#source," << spec.name << ',' << spec.schedule.period << ','
      << spec.schedule.phase << ',' << history.world_entity_count() << '\n';
  {
    std::vector<std::string> scope;
    for (world::SubdomainId sub : spec.scope) {
      scope.push_back(std::to_string(sub));
    }
    out << "#scope," << Join(scope, "|") << '\n';
  }
  out << "entity,subdomain,inserted,deleted,captures\n";
  for (const source::CaptureRecord& rec : history.records()) {
    out << rec.entity << ',' << rec.subdomain << ',' << rec.inserted << ',';
    if (rec.deleted != world::kNever) out << rec.deleted;
    out << ',';
    std::vector<std::string> captures;
    captures.reserve(rec.version_captures.size());
    for (const auto& [version, day] : rec.version_captures) {
      captures.push_back(std::to_string(version) + ':' +
                         std::to_string(day));
    }
    out << Join(captures, "|") << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<source::SourceHistory> ReadSourceHistoryCsv(const std::string& path) {
  FRESHSEL_TRACE_SPAN("io/read_source_csv");
  FRESHSEL_FAILPOINT_RETURN(
      "io.read", Status::Unavailable("injected fault: io.read " + path));
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty source file: " + path);
  }
  std::vector<std::string> header = Split(line, ',');
  if (header.size() != 5 || header[0] != "#source") {
    return Status::InvalidArgument("bad source header: " + line);
  }
  source::SourceSpec spec;
  spec.name = header[1];
  FRESHSEL_RETURN_IF_ERROR(ParseInt(header[2], &spec.schedule.period));
  FRESHSEL_RETURN_IF_ERROR(ParseInt(header[3], &spec.schedule.phase));
  std::int64_t entity_count = 0;
  FRESHSEL_RETURN_IF_ERROR(ParseInt(header[4], &entity_count));

  if (!std::getline(in, line)) {
    return Status::InvalidArgument("missing scope line");
  }
  std::vector<std::string> scope_fields = Split(line, ',');
  if (scope_fields.size() != 2 || scope_fields[0] != "#scope") {
    return Status::InvalidArgument("bad scope line: " + line);
  }
  if (!scope_fields[1].empty()) {
    for (const std::string& part : Split(scope_fields[1], '|')) {
      std::int64_t sub = 0;
      FRESHSEL_RETURN_IF_ERROR(ParseInt(part, &sub));
      spec.scope.push_back(static_cast<world::SubdomainId>(sub));
    }
  }

  source::SourceHistory history(std::move(spec),
                                static_cast<std::size_t>(entity_count));
  if (!std::getline(in, line) ||
      line != "entity,subdomain,inserted,deleted,captures") {
    return Status::InvalidArgument("bad source column header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 5) {
      return Status::InvalidArgument("bad source row: " + line);
    }
    source::CaptureRecord record;
    std::int64_t value = 0;
    FRESHSEL_RETURN_IF_ERROR(ParseInt(fields[0], &value));
    record.entity = static_cast<world::EntityId>(value);
    FRESHSEL_RETURN_IF_ERROR(ParseInt(fields[1], &value));
    record.subdomain = static_cast<world::SubdomainId>(value);
    FRESHSEL_RETURN_IF_ERROR(ParseInt(fields[2], &record.inserted));
    if (fields[3].empty()) {
      record.deleted = world::kNever;
    } else {
      FRESHSEL_RETURN_IF_ERROR(ParseInt(fields[3], &record.deleted));
    }
    if (!fields[4].empty()) {
      for (const std::string& pair : Split(fields[4], '|')) {
        std::vector<std::string> parts = Split(pair, ':');
        if (parts.size() != 2) {
          return Status::InvalidArgument("bad capture pair: " + pair);
        }
        std::int64_t version = 0;
        std::int64_t day = 0;
        FRESHSEL_RETURN_IF_ERROR(ParseInt(parts[0], &version));
        FRESHSEL_RETURN_IF_ERROR(ParseInt(parts[1], &day));
        record.version_captures.emplace_back(
            static_cast<std::uint32_t>(version), day);
      }
    }
    FRESHSEL_RETURN_IF_ERROR(history.AddRecord(std::move(record)));
    FRESHSEL_OBS_COUNT("io.source_rows.read", 1);
  }
  return history;
}

Result<world::World> ReadWorldCsv(const std::string& path,
                                  const fault::RetryPolicy& retry) {
  return retry.RunResult<world::World>(
      "io.read_world", [&path]() { return ReadWorldCsv(path); });
}

Result<source::SourceHistory> ReadSourceHistoryCsv(
    const std::string& path, const fault::RetryPolicy& retry) {
  return retry.RunResult<source::SourceHistory>(
      "io.read_source", [&path]() { return ReadSourceHistoryCsv(path); });
}

Status WriteWorldCsv(const world::World& world, const std::string& path,
                     const fault::RetryPolicy& retry) {
  return retry.Run("io.write_world",
                   [&]() { return WriteWorldCsv(world, path); });
}

Status WriteSourceHistoryCsv(const source::SourceHistory& history,
                             const std::string& path,
                             const fault::RetryPolicy& retry) {
  return retry.Run("io.write_source",
                   [&]() { return WriteSourceHistoryCsv(history, path); });
}

}  // namespace freshsel::io
