#include "fault/failpoint.h"

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "obs/macros.h"

namespace freshsel::fault {

std::string_view TriggerModeName(TriggerMode mode) {
  switch (mode) {
    case TriggerMode::kDisarmed:
      return "disarmed";
    case TriggerMode::kAlways:
      return "always";
    case TriggerMode::kOneShot:
      return "once";
    case TriggerMode::kEveryNth:
      return "nth";
    case TriggerMode::kProbability:
      return "prob";
  }
  return "unknown";
}

Failpoint::Failpoint(std::string name) : name_(std::move(name)) {}

void Failpoint::Arm(const TriggerSpec& spec) {
  if (spec.mode == TriggerMode::kDisarmed) {
    Disarm();
    return;
  }
  FRESHSEL_CHECK(spec.mode != TriggerMode::kEveryNth || spec.every_nth >= 1)
      << "failpoint " << name_ << ": every_nth must be >= 1";
  FRESHSEL_CHECK_PROB(spec.probability);
  MutexLock lock(mutex_);
  spec_ = spec;
  hits_ = 0;
  fires_ = 0;
  rng_ = spec.mode == TriggerMode::kProbability
             ? std::make_unique<Rng>(spec.seed)
             : nullptr;
  armed_.store(true, std::memory_order_relaxed);
}

void Failpoint::Disarm() {
  MutexLock lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  spec_ = TriggerSpec{};
  rng_ = nullptr;
}

bool Failpoint::Evaluate() {
  MutexLock lock(mutex_);
  // Arming state may have changed between the fast-path load and here.
  if (!armed_.load(std::memory_order_relaxed)) return false;
  ++hits_;
  bool fire = false;
  switch (spec_.mode) {
    case TriggerMode::kDisarmed:
      break;
    case TriggerMode::kAlways:
      fire = true;
      break;
    case TriggerMode::kOneShot:
      fire = true;
      armed_.store(false, std::memory_order_relaxed);
      break;
    case TriggerMode::kEveryNth:
      fire = hits_ % spec_.every_nth == 0;
      break;
    case TriggerMode::kProbability:
      fire = rng_->Bernoulli(spec_.probability);
      break;
  }
  if (fire) {
    ++fires_;
    FRESHSEL_OBS_COUNT("fault.failpoints.injected", 1);
  }
  return fire;
}

Failpoint::State Failpoint::state() const {
  MutexLock lock(mutex_);
  return State{spec_, hits_, fires_};
}

std::uint64_t Failpoint::fires() const {
  MutexLock lock(mutex_);
  return fires_;
}

std::uint64_t Failpoint::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* instance = []() {
    auto* registry = new FailpointRegistry();
    const Status status = registry->ArmFromEnv();
    if (!status.ok()) {
      std::fprintf(stderr, "FRESHSEL_FAILPOINTS ignored: %s\n",
                   status.ToString().c_str());
    }
    return registry;
  }();
  return *instance;
}

Failpoint& FailpointRegistry::Get(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_
             .emplace(std::string(name),
                      std::make_unique<Failpoint>(std::string(name)))
             .first;
  }
  return *it->second;
}

Failpoint* FailpointRegistry::Lookup(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  return it == points_.end() ? nullptr : it->second.get();
}

namespace {

Status ParseOneSpec(const std::string& clause, std::string* name,
                    TriggerSpec* spec) {
  const std::size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size()) {
    return Status::InvalidArgument("failpoint clause must be name=mode: '" +
                                   clause + "'");
  }
  *name = clause.substr(0, eq);
  const std::vector<std::string> parts = Split(clause.substr(eq + 1), ':');
  const std::string& mode = parts[0];
  auto parse_u64 = [](const std::string& text,
                      std::uint64_t* out) -> Status {
    const char* begin = text.data();
    const char* end = begin + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr != end || text.empty()) {
      return Status::InvalidArgument("malformed integer: '" + text + "'");
    }
    return Status::OK();
  };
  if (mode == "off") {
    if (parts.size() != 1) {
      return Status::InvalidArgument("mode 'off' takes no argument: '" +
                                     clause + "'");
    }
    *spec = TriggerSpec{};
    return Status::OK();
  }
  if (mode == "always" || mode == "once") {
    if (parts.size() != 1) {
      return Status::InvalidArgument("mode '" + mode +
                                     "' takes no argument: '" + clause + "'");
    }
    *spec = mode == "always" ? TriggerSpec::Always() : TriggerSpec::OneShot();
    return Status::OK();
  }
  if (mode == "nth") {
    if (parts.size() != 2) {
      return Status::InvalidArgument("mode 'nth' needs nth:N: '" + clause +
                                     "'");
    }
    std::uint64_t n = 0;
    FRESHSEL_RETURN_IF_ERROR(parse_u64(parts[1], &n));
    if (n < 1) {
      return Status::InvalidArgument("nth:N needs N >= 1: '" + clause + "'");
    }
    *spec = TriggerSpec::EveryNth(n);
    return Status::OK();
  }
  if (mode == "prob") {
    if (parts.size() != 2 && parts.size() != 3) {
      return Status::InvalidArgument("mode 'prob' needs prob:P[:SEED]: '" +
                                     clause + "'");
    }
    char* parse_end = nullptr;
    const double p = std::strtod(parts[1].c_str(), &parse_end);
    if (parse_end != parts[1].c_str() + parts[1].size() || parts[1].empty() ||
        !(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument(
          "prob:P needs a probability in [0, 1]: '" + clause + "'");
    }
    std::uint64_t seed = 0;
    if (parts.size() == 3) {
      FRESHSEL_RETURN_IF_ERROR(parse_u64(parts[2], &seed));
    }
    *spec = TriggerSpec::Probability(p, seed);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown failpoint mode '" + mode +
      "' (expected off|always|once|nth:N|prob:P[:SEED])");
}

}  // namespace

Status FailpointRegistry::ArmFromSpec(std::string_view spec) {
  // Validate every clause before arming anything: a bad spec must not
  // leave the registry half-armed.
  std::string normalized(spec);
  for (char& c : normalized) {
    if (c == ',') c = ';';
  }
  std::vector<std::pair<std::string, TriggerSpec>> parsed;
  for (const std::string& raw : Split(normalized, ';')) {
    std::string clause;
    for (char c : raw) {
      if (c != ' ' && c != '\t') clause.push_back(c);
    }
    if (clause.empty()) continue;
    std::string name;
    TriggerSpec trigger;
    FRESHSEL_RETURN_IF_ERROR(ParseOneSpec(clause, &name, &trigger));
    parsed.emplace_back(std::move(name), trigger);
  }
  for (const auto& [name, trigger] : parsed) {
    Get(name).Arm(trigger);
  }
  return Status::OK();
}

Status FailpointRegistry::ArmFromEnv() {
  const char* env = std::getenv("FRESHSEL_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return Status::OK();
  return ArmFromSpec(env);
}

void FailpointRegistry::DisarmAll() {
  MutexLock lock(mutex_);
  for (auto& [name, point] : points_) point->Disarm();
}

std::vector<FailpointRegistry::Entry> FailpointRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  std::vector<Entry> entries;
  entries.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    entries.push_back(Entry{name, point->state()});
  }
  return entries;  // std::map iteration is already name-sorted.
}

std::uint64_t FailpointRegistry::TotalFires() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, point] : points_) total += point->fires();
  return total;
}

}  // namespace freshsel::fault
