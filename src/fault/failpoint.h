#ifndef FRESHSEL_FAULT_FAILPOINT_H_
#define FRESHSEL_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace freshsel::fault {

/// Deterministic fault injection (see DESIGN.md §11). A failpoint is a
/// named site in library code — `FRESHSEL_FAILPOINT_RETURN("io.read", ...)`
/// — that is inert by default and can be armed at runtime to fire on a
/// deterministic trigger:
///
///  * `kAlways`  — fires on every hit;
///  * `kOneShot` — fires on the first hit after arming, then disarms;
///  * `kEveryNth`— fires on every Nth hit (hits 1..N-1 pass, hit N fires);
///  * `kProbability` — fires with probability p per hit, drawn from a
///    seeded `freshsel::Rng` stream private to the failpoint, so a given
///    (seed, hit sequence) always produces the same fire pattern.
///
/// Arming happens programmatically (tests), via the CLI `--failpoints`
/// flag, or via the `FRESHSEL_FAILPOINTS` environment variable; all three
/// share the spec grammar parsed by `FailpointRegistry::ArmFromSpec`.
///
/// The unarmed fast path is one relaxed atomic load. Under
/// `-DFRESHSEL_FAULT=OFF` (or a per-TU `FRESHSEL_FAULT_FORCE_OFF`) the
/// macros compile to `static_cast<void>(0)` and call sites vanish
/// entirely; the library itself (registry, retry policy) is always built.
enum class TriggerMode {
  kDisarmed = 0,
  kAlways,
  kOneShot,
  kEveryNth,
  kProbability,
};

/// Human-readable mode name ("disarmed", "always", "once", "nth", "prob").
std::string_view TriggerModeName(TriggerMode mode);

/// Arming parameters for one failpoint.
struct TriggerSpec {
  TriggerMode mode = TriggerMode::kDisarmed;
  /// kEveryNth: the N (must be >= 1). Ignored otherwise.
  std::uint64_t every_nth = 1;
  /// kProbability: fire probability in [0, 1]. Ignored otherwise.
  double probability = 0.0;
  /// kProbability: seed of the failpoint-private Rng stream.
  std::uint64_t seed = 0;

  static TriggerSpec Always() { return {TriggerMode::kAlways, 1, 0.0, 0}; }
  static TriggerSpec OneShot() { return {TriggerMode::kOneShot, 1, 0.0, 0}; }
  static TriggerSpec EveryNth(std::uint64_t n) {
    return {TriggerMode::kEveryNth, n, 0.0, 0};
  }
  static TriggerSpec Probability(double p, std::uint64_t seed = 0) {
    return {TriggerMode::kProbability, 1, p, seed};
  }
};

/// One named injection site. Registered objects live for the process
/// lifetime (like obs metrics), so call sites may cache the reference in a
/// function-local static; Arm/Disarm only flip state.
class Failpoint {
 public:
  explicit Failpoint(std::string name);

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  /// Trigger evaluation: returns true when the armed trigger fires for
  /// this hit. Unarmed cost: one relaxed atomic load. Hits are only
  /// accounted while armed (the unarmed path must stay free).
  bool ShouldFail() {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return Evaluate();
  }

  /// Arms (or re-arms) with `spec`; hit and fire accounting restarts so an
  /// armed failpoint always replays the same deterministic pattern.
  /// Arming with mode kDisarmed is equivalent to Disarm().
  void Arm(const TriggerSpec& spec);
  void Disarm();

  /// Point-in-time state for reports and tests.
  struct State {
    TriggerSpec spec;
    std::uint64_t hits = 0;   ///< Evaluations while armed since Arm().
    std::uint64_t fires = 0;  ///< Hits that triggered since Arm().
  };
  State state() const;

  std::uint64_t fires() const;
  std::uint64_t hits() const;

 private:
  bool Evaluate();

  const std::string name_;
  std::atomic<bool> armed_{false};
  mutable Mutex mutex_;
  TriggerSpec spec_ FRESHSEL_GUARDED_BY(mutex_);
  std::uint64_t hits_ FRESHSEL_GUARDED_BY(mutex_) = 0;
  std::uint64_t fires_ FRESHSEL_GUARDED_BY(mutex_) = 0;
  /// kProbability only.
  std::unique_ptr<Rng> rng_ FRESHSEL_GUARDED_BY(mutex_);
};

/// Process-wide registry of failpoints, mirroring obs::MetricsRegistry:
/// `Get` creates on first use and returned references stay valid forever.
class FailpointRegistry {
 public:
  /// The process-wide instance every macro call site consults. On first
  /// construction, arms any failpoints named in the FRESHSEL_FAILPOINTS
  /// environment variable (spec errors are reported to stderr and
  /// skipped — a bad env var must not take the process down).
  static FailpointRegistry& Global();

  FailpointRegistry() = default;
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  /// Returns the named failpoint, creating it (disarmed) if absent.
  Failpoint& Get(std::string_view name);

  /// Returns the named failpoint or nullptr when it was never referenced.
  Failpoint* Lookup(std::string_view name);

  /// Arms failpoints from a spec string:
  ///   name=mode[:arg[:seed]] [; name=mode...]
  /// with modes `off`, `always`, `once`, `nth:N`, `prob:P[:SEED]`, e.g.
  ///   "io.read=nth:3;estimation.learn=prob:0.25:7"
  /// Separators ';' and ',' are interchangeable; blanks are ignored.
  /// Returns InvalidArgument on grammar errors (no partial arming: the
  /// whole spec is validated before any failpoint is touched).
  Status ArmFromSpec(std::string_view spec);

  /// ArmFromSpec(getenv("FRESHSEL_FAILPOINTS")); no-op when unset/empty.
  Status ArmFromEnv();

  /// Disarms every registered failpoint (registrations survive).
  void DisarmAll();

  /// Snapshot of every registered failpoint, sorted by name.
  struct Entry {
    std::string name;
    Failpoint::State state;
  };
  std::vector<Entry> Snapshot() const;

  /// Sum of fires across all registered failpoints.
  std::uint64_t TotalFires() const;

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Failpoint>, std::less<>> points_
      FRESHSEL_GUARDED_BY(mutex_);
};

}  // namespace freshsel::fault

/// Build-level gating, mirroring obs/macros.h:
///  - `cmake -DFRESHSEL_FAULT=OFF` -> defines FRESHSEL_FAULT_OFF globally;
///  - `#define FRESHSEL_FAULT_FORCE_OFF` before including this header ->
///    per-translation-unit off switch (twin-TU overhead bench, no-op test).
#if defined(FRESHSEL_FAULT_OFF) || defined(FRESHSEL_FAULT_FORCE_OFF)
#define FRESHSEL_FAULT_ACTIVE 0
#else
#define FRESHSEL_FAULT_ACTIVE 1
#endif

#if FRESHSEL_FAULT_ACTIVE

/// Evaluates the named failpoint's trigger and discards the outcome. Use
/// to mark reachability of a site whose failure is injected elsewhere, or
/// to drive hit-pattern assertions in tests. `name` must be a string
/// literal (the registry lookup is cached in a function-local static).
#define FRESHSEL_FAILPOINT(name)                                       \
  do {                                                                 \
    static ::freshsel::fault::Failpoint& fs_fault_point =              \
        ::freshsel::fault::FailpointRegistry::Global().Get(name);      \
    fs_fault_point.ShouldFail();                                       \
  } while (0)

/// Returns `expr` from the enclosing function when the named failpoint
/// fires. The canonical injection site:
///   FRESHSEL_FAILPOINT_RETURN("io.read",
///                             Status::Unavailable("injected: io.read"));
#define FRESHSEL_FAILPOINT_RETURN(name, expr)                          \
  do {                                                                 \
    static ::freshsel::fault::Failpoint& fs_fault_point =              \
        ::freshsel::fault::FailpointRegistry::Global().Get(name);      \
    if (fs_fault_point.ShouldFail()) {                                 \
      return (expr);                                                   \
    }                                                                  \
  } while (0)

#else  // !FRESHSEL_FAULT_ACTIVE

#define FRESHSEL_FAILPOINT(name) static_cast<void>(0)
#define FRESHSEL_FAILPOINT_RETURN(name, expr) static_cast<void>(0)

#endif  // FRESHSEL_FAULT_ACTIVE

#endif  // FRESHSEL_FAULT_FAILPOINT_H_
