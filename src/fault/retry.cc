#include "fault/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "obs/macros.h"

namespace freshsel::fault {

RetryPolicy::RetryPolicy(const RetryOptions& options) : options_(options) {
  FRESHSEL_CHECK(options_.max_attempts >= 1)
      << "max_attempts must be >= 1, got " << options_.max_attempts;
  FRESHSEL_CHECK_NONNEG(options_.initial_backoff_seconds);
  FRESHSEL_CHECK(options_.backoff_multiplier >= 1.0)
      << "backoff_multiplier must be >= 1, got "
      << options_.backoff_multiplier;
  FRESHSEL_CHECK_NONNEG(options_.max_backoff_seconds);
  FRESHSEL_CHECK_PROB(options_.jitter_fraction);
  sleep_fn_ = [](double seconds) {
    if (seconds <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  };
}

bool RetryPolicy::IsRetryable(const Status& status) const {
  switch (status.code()) {
    case StatusCode::kIoError:
      return options_.retry_io_error;
    case StatusCode::kUnavailable:
      return options_.retry_unavailable;
    default:
      return false;
  }
}

double RetryPolicy::BackoffSeconds(int retry) const {
  FRESHSEL_CHECK_NONNEG(retry);
  const double base = std::min(
      options_.initial_backoff_seconds *
          std::pow(options_.backoff_multiplier, static_cast<double>(retry)),
      options_.max_backoff_seconds);
  if (options_.jitter_fraction <= 0.0) return base;
  // One private Rng stream per Run(): skipping to draw `retry` keeps the
  // schedule a pure function of (options, retry) — no cross-call state.
  Rng rng(options_.jitter_seed);
  double u = 0.0;
  for (int i = 0; i <= retry; ++i) u = rng.NextDouble();
  return base * (1.0 + options_.jitter_fraction * (2.0 * u - 1.0));
}

Status RetryPolicy::Run(std::string_view op_name,
                        const std::function<Status()>& op) const {
  Status status = Status::OK();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      FRESHSEL_OBS_COUNT("io.retry.attempts", 1);
      if (on_retry_) on_retry_(op_name, attempt - 1, status);
      sleep_fn_(BackoffSeconds(attempt - 1));
    }
    status = op();
    if (status.ok() || !IsRetryable(status)) return status;
  }
  FRESHSEL_OBS_COUNT("io.retry.exhausted", 1);
  return status;
}

void RetryPolicy::set_sleep_fn(SleepFn sleep_fn) {
  FRESHSEL_CHECK(sleep_fn != nullptr) << "sleep_fn must be callable";
  sleep_fn_ = std::move(sleep_fn);
}

void RetryPolicy::set_on_retry(RetryHook hook) {
  on_retry_ = std::move(hook);
}

}  // namespace freshsel::fault
