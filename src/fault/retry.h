#ifndef FRESHSEL_FAULT_RETRY_H_
#define FRESHSEL_FAULT_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace freshsel::fault {

/// Capped exponential backoff with deterministic jitter (see DESIGN.md
/// §11). Attempt k (0-based) sleeps
///   min(initial * multiplier^k, cap) * (1 + jitter_fraction * (2u - 1))
/// where u is a uniform [0, 1) draw from a `freshsel::Rng` stream seeded
/// with `jitter_seed` — the same seed always yields the same backoff
/// sequence, so retried runs are reproducible end to end.
struct RetryOptions {
  /// Total attempts (first try included). 1 disables retrying.
  int max_attempts = 3;
  double initial_backoff_seconds = 0.01;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 1.0;
  /// Relative jitter amplitude in [0, 1]; 0 disables jitter.
  double jitter_fraction = 0.1;
  std::uint64_t jitter_seed = 0;
  /// Status codes treated as transient. Everything else fails fast.
  bool retry_io_error = true;
  bool retry_unavailable = true;
};

/// Retry driver wrapped around I/O operations (io/scenario_io loaders, CLI
/// scenario loading). Stateless between Run() calls: every Run replays the
/// same deterministic backoff schedule.
class RetryPolicy {
 public:
  RetryPolicy() : RetryPolicy(RetryOptions{}) {}
  explicit RetryPolicy(const RetryOptions& options);

  const RetryOptions& options() const { return options_; }

  /// True when `status` is transient under the configured codes.
  bool IsRetryable(const Status& status) const;

  /// Backoff before retry number `retry` (0-based), jitter included.
  /// Deterministic in (options, retry).
  double BackoffSeconds(int retry) const;

  /// Runs `op` up to max_attempts times, sleeping BackoffSeconds between
  /// attempts while the returned Status is retryable. Returns the first
  /// success or the last failure. Each retry invokes the `on_retry` hook
  /// (if any) and bumps the obs counter `io.retry.attempts`; exhaustion bumps
  /// `io.retry.exhausted`.
  Status Run(std::string_view op_name,
             const std::function<Status()>& op) const;

  /// Result-returning variant of Run().
  template <typename T>
  Result<T> RunResult(std::string_view op_name,
                      const std::function<Result<T>()>& op) const {
    Result<T> result = Status::Internal("retry loop never ran");
    const Status status =
        Run(op_name, [&]() -> Status {
          result = op();
          return result.status();
        });
    if (!status.ok()) return status;
    return result;
  }

  /// Replaces the sleep implementation (default:
  /// std::this_thread::sleep_for). Tests install a recorder so backoff
  /// schedules are observable without wall-clock waits.
  using SleepFn = std::function<void(double seconds)>;
  void set_sleep_fn(SleepFn sleep_fn);

  /// Called before each retry with (op_name, retry_index, last_status).
  using RetryHook =
      std::function<void(std::string_view, int, const Status&)>;
  void set_on_retry(RetryHook hook);

 private:
  RetryOptions options_;
  SleepFn sleep_fn_;
  RetryHook on_retry_;
};

}  // namespace freshsel::fault

#endif  // FRESHSEL_FAULT_RETRY_H_
