#ifndef FRESHSEL_WORLD_ENTITY_H_
#define FRESHSEL_WORLD_ENTITY_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/time_types.h"
#include "world/domain.h"

namespace freshsel::world {

/// Dense global entity identifier; doubles as the bit index in signature
/// BitVectors.
using EntityId = std::uint32_t;

/// Sentinel for "never happened / still alive".
inline constexpr TimePoint kNever = std::numeric_limits<TimePoint>::max();

/// The ground-truth evolution of one entity in the world.
///
/// The entity is present in the world on days [birth, death); `death` is
/// kNever while alive. `update_times` holds the days of its value changes,
/// strictly increasing, all within [birth, death). The entity's *version* at
/// time t is the number of updates at or before t (version 0 is the value it
/// appeared with).
struct EntityRecord {
  EntityId id = 0;
  SubdomainId subdomain = 0;
  TimePoint birth = 0;
  TimePoint death = kNever;
  std::vector<TimePoint> update_times;

  bool ExistsAt(TimePoint t) const { return t >= birth && t < death; }

  /// Number of updates with time <= t (0 before any update).
  std::uint32_t VersionAt(TimePoint t) const {
    std::uint32_t version = 0;
    for (TimePoint u : update_times) {
      if (u > t) break;
      ++version;
    }
    return version;
  }

  /// Time of the latest change (appearance or update) at or before t.
  /// Pre: t >= birth.
  TimePoint LatestChangeAt(TimePoint t) const {
    TimePoint latest = birth;
    for (TimePoint u : update_times) {
      if (u > t) break;
      latest = u;
    }
    return latest;
  }
};

/// Kinds of change events in the world (and, mirrored, in sources).
enum class ChangeType : std::uint8_t {
  kAppear = 0,
  kUpdate = 1,
  kDisappear = 2,
};

/// One world change event; the world change log is the time-ordered stream
/// of these (the paper's "evolution of the world").
struct ChangeEvent {
  TimePoint time = 0;
  ChangeType type = ChangeType::kAppear;
  EntityId entity = 0;
  SubdomainId subdomain = 0;
  /// For kUpdate: the version this update produced (1-based). 0 otherwise.
  std::uint32_t version = 0;
};

}  // namespace freshsel::world

#endif  // FRESHSEL_WORLD_ENTITY_H_
