#include "world/world_simulator.h"

#include <cmath>
#include <cstdint>

namespace freshsel::world {

namespace {

/// Weibull(shape, scale) variate via inversion; shape 1 degenerates to the
/// exponential.
double DrawLifespan(double rate, double shape, Rng& rng) {
  if (shape == 1.0) return rng.Exponential(rate);
  // Match the mean 1/rate: scale = mean / Gamma(1 + 1/shape).
  const double scale = (1.0 / rate) / std::tgamma(1.0 + 1.0 / shape);
  double u;
  do {
    u = rng.NextDouble();
  } while (u <= 0.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

}  // namespace

namespace {

/// Draws the update-day sequence for an entity born at `birth` that dies at
/// `death` (kNever handled by caller passing a large bound). Continuous
/// exponential gaps are accumulated and rounded up to whole days; ties are
/// collapsed.
std::vector<TimePoint> DrawUpdateTimes(TimePoint birth, TimePoint death,
                                       double update_rate, TimePoint horizon,
                                       Rng& rng) {
  std::vector<TimePoint> updates;
  if (update_rate <= 0.0) return updates;
  // Cap the update stream: nothing after death or far beyond the horizon
  // matters for any query.
  const TimePoint bound = std::min<TimePoint>(
      death == kNever ? horizon + 1 : death, horizon + 1);
  double clock = static_cast<double>(birth);
  while (true) {
    clock += rng.Exponential(update_rate);
    const TimePoint day = static_cast<TimePoint>(std::ceil(clock));
    if (day >= bound) break;
    if (!updates.empty() && updates.back() == day) continue;
    if (day <= birth) continue;
    updates.push_back(day);
  }
  return updates;
}

}  // namespace

Result<World> SimulateWorld(const WorldSpec& spec, Rng& rng) {
  if (spec.rates.size() != spec.domain.subdomain_count()) {
    return Status::InvalidArgument(
        "WorldSpec.rates must have one entry per subdomain");
  }
  if (spec.horizon <= 0) {
    return Status::InvalidArgument("horizon must be positive");
  }
  for (const SubdomainRates& r : spec.rates) {
    if (r.appearance_rate < 0.0 || r.disappearance_rate < 0.0 ||
        r.update_rate < 0.0) {
      return Status::InvalidArgument("rates must be non-negative");
    }
    if (!(r.lifespan_shape > 0.0)) {
      return Status::InvalidArgument("lifespan_shape must be positive");
    }
  }

  World world(spec.domain, spec.horizon);
  EntityId next_id = 0;

  auto spawn = [&](SubdomainId sub, TimePoint birth,
                   const SubdomainRates& rates) -> Status {
    EntityRecord record;
    record.id = next_id++;
    record.subdomain = sub;
    record.birth = birth;
    if (rates.disappearance_rate > 0.0) {
      const double lifespan =
          DrawLifespan(rates.disappearance_rate, rates.lifespan_shape, rng);
      // At least one full day of existence.
      record.death =
          birth + std::max<TimePoint>(1, static_cast<TimePoint>(
                                             std::ceil(lifespan)));
    } else {
      record.death = kNever;
    }
    record.update_times = DrawUpdateTimes(birth, record.death,
                                          rates.update_rate, spec.horizon,
                                          rng);
    return world.AddEntity(std::move(record));
  };

  for (SubdomainId sub = 0; sub < spec.domain.subdomain_count(); ++sub) {
    const SubdomainRates& rates = spec.rates[sub];
    for (std::uint32_t i = 0; i < rates.initial_count; ++i) {
      FRESHSEL_RETURN_IF_ERROR(spawn(sub, 0, rates));
    }
    if (rates.appearance_rate > 0.0) {
      for (TimePoint day = 1; day <= spec.horizon; ++day) {
        const std::int64_t arrivals = rng.Poisson(rates.appearance_rate);
        for (std::int64_t i = 0; i < arrivals; ++i) {
          FRESHSEL_RETURN_IF_ERROR(spawn(sub, day, rates));
        }
      }
    }
  }
  FRESHSEL_RETURN_IF_ERROR(world.Finalize());
  return world;
}

}  // namespace freshsel::world
