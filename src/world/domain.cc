#include "world/domain.h"

#include <cstdint>

namespace freshsel::world {

Result<DataDomain> DataDomain::Create(std::string dim1_name,
                                      std::uint32_t dim1_size,
                                      std::string dim2_name,
                                      std::uint32_t dim2_size) {
  if (dim1_size == 0 || dim2_size == 0) {
    return Status::InvalidArgument("domain dimensions must be positive");
  }
  return DataDomain(std::move(dim1_name), dim1_size, std::move(dim2_name),
                    dim2_size);
}

std::vector<SubdomainId> DataDomain::SubdomainsInDim1(
    std::uint32_t dim1_index) const {
  std::vector<SubdomainId> ids;
  ids.reserve(dim2_size_);
  for (std::uint32_t d2 = 0; d2 < dim2_size_; ++d2) {
    ids.push_back(SubdomainOf(dim1_index, d2));
  }
  return ids;
}

std::vector<SubdomainId> DataDomain::SubdomainsInDim2(
    std::uint32_t dim2_index) const {
  std::vector<SubdomainId> ids;
  ids.reserve(dim1_size_);
  for (std::uint32_t d1 = 0; d1 < dim1_size_; ++d1) {
    ids.push_back(SubdomainOf(d1, dim2_index));
  }
  return ids;
}

}  // namespace freshsel::world
