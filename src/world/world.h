#ifndef FRESHSEL_WORLD_WORLD_H_
#define FRESHSEL_WORLD_WORLD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/time_types.h"
#include "world/domain.h"
#include "world/entity.h"

namespace freshsel::world {

/// The evolving data domain Omega: every entity's ground-truth lifespan and
/// update history, with fast per-day population counts and a time-ordered
/// change log.
///
/// Two producers fill a `World`:
///  * `SimulateWorld` (world_simulator.h) — synthetic ground truth;
///  * `integration::ReconstructWorld` — the paper's history-integration
///    preprocessing, which rebuilds the world evolution from source streams.
///
/// Usage: construct, `AddEntity` records, then `Finalize()` once before any
/// query. Entity ids must be dense 0..n-1 (they double as signature bit
/// indices).
class World {
 public:
  /// `horizon` is the last simulated/observed day; per-day count queries are
  /// valid on [0, horizon].
  World(DataDomain domain, TimePoint horizon);

  World(const World&) = delete;
  World& operator=(const World&) = delete;
  World(World&&) noexcept = default;
  World& operator=(World&&) noexcept = default;

  const DataDomain& domain() const { return domain_; }
  TimePoint horizon() const { return horizon_; }

  /// Appends an entity record. Returns InvalidArgument when the id is not
  /// the next dense id, the subdomain is out of range, or the record's
  /// times are inconsistent. Must be called before Finalize().
  Status AddEntity(EntityRecord record);

  /// Builds count prefix arrays and the change log. Idempotent.
  Status Finalize();
  bool finalized() const { return finalized_; }

  std::size_t entity_count() const { return entities_.size(); }
  const EntityRecord& entity(EntityId id) const {
    FRESHSEL_DCHECK(id < entities_.size())
        << "entity " << id << " out of range (" << entities_.size() << ")";
    return entities_[id];
  }
  const std::vector<EntityRecord>& entities() const { return entities_; }

  /// Ids of entities whose subdomain is `sub` (any lifetime).
  const std::vector<EntityId>& EntitiesInSubdomain(SubdomainId sub) const;

  /// |Omega|_t restricted to one subdomain. Pre: Finalize()d, t clamped to
  /// [0, horizon].
  std::int64_t CountAt(SubdomainId sub, TimePoint t) const;

  /// |Omega|_t over a set of subdomains.
  std::int64_t CountAtIn(const std::vector<SubdomainId>& subs,
                         TimePoint t) const;

  /// |Omega|_t over the whole domain.
  std::int64_t TotalCountAt(TimePoint t) const;

  /// Time-ordered world change log (appearances, updates, disappearances
  /// with time <= horizon). Pre: Finalize()d.
  const std::vector<ChangeEvent>& change_log() const { return change_log_; }

 private:
  TimePoint ClampDay(TimePoint t) const;

  DataDomain domain_;
  TimePoint horizon_;
  bool finalized_ = false;
  std::vector<EntityRecord> entities_;
  std::vector<std::vector<EntityId>> by_subdomain_;
  // counts_[sub][d] = #entities of `sub` existing on day d, d in [0,horizon].
  std::vector<std::vector<std::int32_t>> counts_;
  std::vector<std::int64_t> total_counts_;
  std::vector<ChangeEvent> change_log_;
};

}  // namespace freshsel::world

#endif  // FRESHSEL_WORLD_WORLD_H_
