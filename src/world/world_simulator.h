#ifndef FRESHSEL_WORLD_WORLD_SIMULATOR_H_
#define FRESHSEL_WORLD_WORLD_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/time_types.h"
#include "world/world.h"

namespace freshsel::world {

/// Per-subdomain change-process parameters, matching the paper's world model
/// (Section 4.1.1): appearances are Poisson(appearance_rate) per day, entity
/// lifespan is Exponential(disappearance_rate), inter-update gaps are
/// Exponential(update_rate).
struct SubdomainRates {
  double appearance_rate = 0.0;     ///< lambda_i, expected appearances/day.
  double disappearance_rate = 0.0;  ///< gamma_d; 0 => entities never die.
  double update_rate = 0.0;         ///< gamma_u; 0 => values never change.
  std::uint32_t initial_count = 0;  ///< Population seeded at day 0.
  /// Weibull shape of the lifespan distribution; 1.0 (default) is the
  /// paper's exponential assumption. Other shapes keep the same *mean*
  /// lifespan 1/disappearance_rate but violate memorylessness - used by
  /// bench_model_robustness to stress the estimator's assumptions.
  double lifespan_shape = 1.0;
};

/// Full specification of a synthetic world.
struct WorldSpec {
  DataDomain domain;
  /// One entry per subdomain (index == SubdomainId).
  std::vector<SubdomainRates> rates;
  /// Simulated days are [0, horizon].
  TimePoint horizon = 0;
};

/// Simulates a world: seeds each subdomain's initial population at day 0,
/// then draws Poisson appearance counts per day, an exponential lifespan for
/// every entity (rounded up to whole days; deaths beyond the horizon are
/// kept, providing ground truth for future evaluation), and exponential
/// update gaps truncated at death.
///
/// Returns InvalidArgument on malformed specs (rates size mismatch, negative
/// rates, non-positive horizon).
Result<World> SimulateWorld(const WorldSpec& spec, Rng& rng);

}  // namespace freshsel::world

#endif  // FRESHSEL_WORLD_WORLD_SIMULATOR_H_
