#ifndef FRESHSEL_WORLD_DOMAIN_H_
#define FRESHSEL_WORLD_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace freshsel::world {

/// Index of a homogeneous subdomain (one cell of the cross product of the
/// domain's discrete dimensions, e.g. one (location, category) pair).
using SubdomainId = std::uint32_t;

/// A heterogeneous data domain Omega with two discrete dimensions, matching
/// the paper's running examples: business listings are location x category,
/// GDELT events are location x event type (Section 2.2, Figure 2).
///
/// Subdomains are the atomic slices: the world change models are learned per
/// subdomain and micro-sources cover subsets of subdomains.
class DataDomain {
 public:
  /// Returns InvalidArgument unless both dimension sizes are positive.
  static Result<DataDomain> Create(std::string dim1_name,
                                   std::uint32_t dim1_size,
                                   std::string dim2_name,
                                   std::uint32_t dim2_size);

  const std::string& dim1_name() const { return dim1_name_; }
  const std::string& dim2_name() const { return dim2_name_; }
  std::uint32_t dim1_size() const { return dim1_size_; }
  std::uint32_t dim2_size() const { return dim2_size_; }

  /// Total number of subdomains (dim1_size * dim2_size).
  std::uint32_t subdomain_count() const { return dim1_size_ * dim2_size_; }

  /// Pre: indices within the dimension sizes.
  SubdomainId SubdomainOf(std::uint32_t dim1_index,
                          std::uint32_t dim2_index) const {
    return dim1_index * dim2_size_ + dim2_index;
  }
  std::uint32_t Dim1Of(SubdomainId id) const { return id / dim2_size_; }
  std::uint32_t Dim2Of(SubdomainId id) const { return id % dim2_size_; }

  /// All subdomain ids sharing dimension-1 index `dim1_index` (e.g. every
  /// category in one location).
  std::vector<SubdomainId> SubdomainsInDim1(std::uint32_t dim1_index) const;
  /// All subdomain ids sharing dimension-2 index `dim2_index`.
  std::vector<SubdomainId> SubdomainsInDim2(std::uint32_t dim2_index) const;

 private:
  DataDomain(std::string dim1_name, std::uint32_t dim1_size,
             std::string dim2_name, std::uint32_t dim2_size)
      : dim1_name_(std::move(dim1_name)),
        dim2_name_(std::move(dim2_name)),
        dim1_size_(dim1_size),
        dim2_size_(dim2_size) {}

  std::string dim1_name_;
  std::string dim2_name_;
  std::uint32_t dim1_size_;
  std::uint32_t dim2_size_;
};

}  // namespace freshsel::world

#endif  // FRESHSEL_WORLD_DOMAIN_H_
