#include "world/world.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/string_util.h"

namespace freshsel::world {

World::World(DataDomain domain, TimePoint horizon)
    : domain_(std::move(domain)),
      horizon_(horizon),
      by_subdomain_(domain_.subdomain_count()) {}

Status World::AddEntity(EntityRecord record) {
  if (finalized_) {
    return Status::FailedPrecondition("World already finalized");
  }
  if (record.id != entities_.size()) {
    return Status::InvalidArgument(StringPrintf(
        "entity ids must be dense: expected %zu, got %u", entities_.size(),
        record.id));
  }
  if (record.subdomain >= domain_.subdomain_count()) {
    return Status::InvalidArgument("subdomain out of range");
  }
  if (record.death != kNever && record.death <= record.birth) {
    return Status::InvalidArgument("death must follow birth");
  }
  TimePoint prev = record.birth;
  for (TimePoint u : record.update_times) {
    if (u <= prev) {
      return Status::InvalidArgument(
          "updates must be strictly increasing and after birth");
    }
    if (record.death != kNever && u >= record.death) {
      return Status::InvalidArgument("updates must precede death");
    }
    prev = u;
  }
  by_subdomain_[record.subdomain].push_back(record.id);
  entities_.push_back(std::move(record));
  return Status::OK();
}

Status World::Finalize() {
  if (finalized_) return Status::OK();
  const std::size_t days = static_cast<std::size_t>(horizon_) + 1;
  counts_.assign(domain_.subdomain_count(), {});
  for (auto& per_day : counts_) per_day.assign(days + 1, 0);
  total_counts_.assign(days + 1, 0);

  change_log_.clear();
  for (const EntityRecord& e : entities_) {
    // Difference array for interval [birth, min(death, horizon+1)).
    const TimePoint lo = std::max<TimePoint>(e.birth, 0);
    const TimePoint hi =
        e.death == kNever ? horizon_ + 1 : std::min(e.death, horizon_ + 1);
    if (lo < hi && lo <= horizon_) {
      counts_[e.subdomain][static_cast<std::size_t>(lo)] += 1;
      counts_[e.subdomain][static_cast<std::size_t>(hi)] -= 1;
    }
    if (e.birth >= 0 && e.birth <= horizon_) {
      change_log_.push_back(
          {e.birth, ChangeType::kAppear, e.id, e.subdomain, 0});
    }
    std::uint32_t version = 0;
    for (TimePoint u : e.update_times) {
      ++version;
      if (u <= horizon_) {
        change_log_.push_back(
            {u, ChangeType::kUpdate, e.id, e.subdomain, version});
      }
    }
    if (e.death != kNever && e.death <= horizon_) {
      change_log_.push_back(
          {e.death, ChangeType::kDisappear, e.id, e.subdomain, 0});
    }
  }
  // Prefix-sum the difference arrays into per-day populations.
  for (std::uint32_t sub = 0; sub < domain_.subdomain_count(); ++sub) {
    std::int32_t running = 0;
    for (std::size_t d = 0; d <= days; ++d) {
      running += counts_[sub][d];
      counts_[sub][d] = running;
      if (d < days) total_counts_[d] += running;
    }
  }
  std::stable_sort(change_log_.begin(), change_log_.end(),
                   [](const ChangeEvent& a, const ChangeEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.type != b.type) return a.type < b.type;
                     return a.entity < b.entity;
                   });
  finalized_ = true;
  return Status::OK();
}

const std::vector<EntityId>& World::EntitiesInSubdomain(
    SubdomainId sub) const {
  FRESHSEL_CHECK(sub < by_subdomain_.size())
      << "subdomain " << sub << " out of range ("
      << by_subdomain_.size() << ")";
  return by_subdomain_[sub];
}

TimePoint World::ClampDay(TimePoint t) const {
  if (t < 0) return 0;
  if (t > horizon_) return horizon_;
  return t;
}

std::int64_t World::CountAt(SubdomainId sub, TimePoint t) const {
  FRESHSEL_CHECK(finalized_) << "CountAt before World::Finalize";
  FRESHSEL_CHECK(sub < counts_.size())
      << "subdomain " << sub << " out of range (" << counts_.size() << ")";
  return counts_[sub][static_cast<std::size_t>(ClampDay(t))];
}

std::int64_t World::CountAtIn(const std::vector<SubdomainId>& subs,
                              TimePoint t) const {
  std::int64_t total = 0;
  for (SubdomainId sub : subs) total += CountAt(sub, t);
  return total;
}

std::int64_t World::TotalCountAt(TimePoint t) const {
  return total_counts_[static_cast<std::size_t>(ClampDay(t))];
}

}  // namespace freshsel::world
