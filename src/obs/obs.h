#ifndef FRESHSEL_OBS_OBS_H_
#define FRESHSEL_OBS_OBS_H_

/// Umbrella header for the observability layer (DESIGN.md §9, §14):
/// metrics registry, trace spans, run reports, the per-run decision log,
/// JSON read/write, and the instrumentation macros.

#include "obs/clock.h"         // IWYU pragma: export
#include "obs/decision_log.h"  // IWYU pragma: export
#include "obs/json_reader.h"   // IWYU pragma: export
#include "obs/macros.h"        // IWYU pragma: export
#include "obs/metrics.h"       // IWYU pragma: export
#include "obs/report.h"        // IWYU pragma: export
#include "obs/timer.h"         // IWYU pragma: export
#include "obs/trace.h"         // IWYU pragma: export

#endif  // FRESHSEL_OBS_OBS_H_
