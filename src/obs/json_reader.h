#ifndef FRESHSEL_OBS_JSON_READER_H_
#define FRESHSEL_OBS_JSON_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace freshsel::obs {

/// One parsed JSON document node (the read-side counterpart of JsonWriter).
///
/// Objects keep their members in *document order* in a flat vector instead
/// of a hash map: iteration stays deterministic (the `nondeterminism` lint
/// rule bans unordered containers on obs output paths) and lookups on the
/// small objects the obs schemas produce are cheaper than hashing anyway.
///
/// Numbers are held as doubles; when the literal is a plain unsigned
/// integer the exact `uint64` is kept alongside, so counter values above
/// 2^53 survive a parse -> re-serialize round trip bit-identically.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Value accessors; calling the wrong one for the kind returns the
  /// neutral value (false / 0.0 / empty) rather than trapping, so readers
  /// can express "field absent or wrong type -> default" in one line.
  bool AsBool() const { return is_bool() && bool_; }
  double AsDouble() const { return is_number() ? number_ : 0.0; }
  /// Exact unsigned value when the literal was a plain non-negative
  /// integer; otherwise the double truncated toward zero (0 for negatives
  /// and non-numbers).
  std::uint64_t AsUint64() const;
  const std::string& AsString() const;

  /// Array elements (empty for non-arrays).
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in document order (empty for non-objects).
  const std::vector<Member>& members() const { return members_; }

  /// Object member lookup; nullptr when absent or not an object. Linear
  /// scan - obs documents have small objects and deterministic layouts.
  const JsonValue* Find(std::string_view key) const;

  /// Typed member shorthands: the member's value, or `fallback` when the
  /// member is absent or has a different kind.
  double NumberOr(std::string_view key, double fallback) const;
  std::uint64_t UintOr(std::string_view key, std::uint64_t fallback) const;
  std::string StringOr(std::string_view key, std::string_view fallback) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeUint(std::uint64_t value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::vector<Member> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::uint64_t uint_ = 0;
  bool exact_uint_ = false;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parses one JSON document (RFC 8259 subset: no duplicate-key policy -
/// later members shadow earlier ones in Find). Errors carry the byte
/// offset of the first offending character. Nesting deeper than an
/// internal limit (96 levels) is rejected rather than risking stack
/// overflow on adversarial input.
Result<JsonValue> ParseJson(std::string_view text);

/// Reads `path` and parses its contents.
Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace freshsel::obs

#endif  // FRESHSEL_OBS_JSON_READER_H_
