#ifndef FRESHSEL_OBS_CLOCK_H_
#define FRESHSEL_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace freshsel::obs {

/// The one place in the tree that reads the monotonic clock. Everything
/// else (timers, trace spans, histogram-recording scopes) goes through
/// `NowNs` so timing stays mockable-in-principle and the freshsel_lint
/// `obs-clock` rule can ban raw std::chrono::steady_clock reads outside
/// src/obs.
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Nanoseconds -> seconds.
inline double NsToSeconds(std::uint64_t ns) {
  return static_cast<double>(ns) * 1e-9;
}

}  // namespace freshsel::obs

#endif  // FRESHSEL_OBS_CLOCK_H_
