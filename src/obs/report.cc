#include "obs/report.h"

#include <fstream>
#include <iterator>
#include <utility>

#include "common/string_util.h"
#include "obs/json.h"
#include "obs/json_reader.h"

namespace freshsel::obs {

std::string RunReport::ToJson() const {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema_version");
  writer.Int(kSchemaVersion);
  writer.Field("name", std::string_view(name));
  writer.Key("labels");
  writer.BeginObject();
  for (const auto& [key, value] : labels) {
    writer.Field(key, std::string_view(value));
  }
  writer.EndObject();
  writer.Key("values");
  writer.BeginObject();
  for (const auto& [key, value] : values) {
    writer.Field(key, value);
  }
  writer.EndObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [key, value] : counters) {
    writer.Field(key, value);
  }
  writer.EndObject();
  writer.Key("stages");
  writer.BeginArray();
  for (const Stage& stage : stages) {
    writer.BeginObject();
    writer.Field("name", std::string_view(stage.name));
    writer.Field("seconds", deterministic ? 0.0 : stage.seconds);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("decision_log");
  decision_log.AppendJson(writer);
  writer.Key("metrics");
  if (deterministic) {
    MetricsSnapshot scrubbed = metrics;
    scrubbed.histograms.clear();
    scrubbed.AppendJson(writer);
  } else {
    metrics.AppendJson(writer);
  }
  writer.EndObject();
  return writer.TakeString();
}

namespace {

/// Parses the embedded MetricsSnapshot object; absent/mistyped members are
/// skipped (forward compatibility over strictness: a report with extra or
/// missing metric families is still a usable report).
MetricsSnapshot ParseMetrics(const JsonValue& value) {
  MetricsSnapshot snapshot;
  if (!value.is_object()) return snapshot;
  if (const JsonValue* counters = value.Find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, entry] : counters->members()) {
      if (entry.is_number()) snapshot.counters[name] = entry.AsUint64();
    }
  }
  if (const JsonValue* gauges = value.Find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, entry] : gauges->members()) {
      if (entry.is_number()) snapshot.gauges[name] = entry.AsDouble();
    }
  }
  if (const JsonValue* histograms = value.Find("histograms");
      histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, entry] : histograms->members()) {
      if (!entry.is_object()) continue;
      Histogram::Snapshot histogram;
      histogram.count = entry.UintOr("count", 0);
      histogram.sum = entry.NumberOr("sum", 0.0);
      // mean/p50/p95/p99 are derived fields; recomputed on write.
      if (const JsonValue* bounds = entry.Find("bounds");
          bounds != nullptr && bounds->is_array()) {
        for (const JsonValue& bound : bounds->items()) {
          histogram.bounds.push_back(bound.AsDouble());
        }
      }
      if (const JsonValue* counts = entry.Find("counts");
          counts != nullptr && counts->is_array()) {
        for (const JsonValue& count : counts->items()) {
          histogram.counts.push_back(count.AsUint64());
        }
      }
      snapshot.histograms[name] = std::move(histogram);
    }
  }
  return snapshot;
}

}  // namespace

Result<RunReport> RunReport::FromJson(std::string_view json) {
  JsonValue root;
  FRESHSEL_ASSIGN_OR_RETURN(root, ParseJson(json));
  if (!root.is_object()) {
    return Status::InvalidArgument("run report is not a JSON object");
  }
  const JsonValue* version = root.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return Status::InvalidArgument("run report lacks schema_version");
  }
  if (version->AsDouble() < 1.0) {
    return Status::InvalidArgument(StringPrintf(
        "unsupported run report schema_version %g", version->AsDouble()));
  }
  RunReport report;
  report.name = root.StringOr("name", "");
  if (const JsonValue* labels = root.Find("labels");
      labels != nullptr && labels->is_object()) {
    for (const auto& [key, entry] : labels->members()) {
      if (entry.is_string()) report.labels[key] = entry.AsString();
    }
  }
  if (const JsonValue* values = root.Find("values");
      values != nullptr && values->is_object()) {
    for (const auto& [key, entry] : values->members()) {
      if (entry.is_number()) report.values[key] = entry.AsDouble();
    }
  }
  if (const JsonValue* counters = root.Find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [key, entry] : counters->members()) {
      if (entry.is_number()) report.counters[key] = entry.AsUint64();
    }
  }
  if (const JsonValue* stages = root.Find("stages");
      stages != nullptr && stages->is_array()) {
    for (const JsonValue& entry : stages->items()) {
      if (!entry.is_object()) continue;
      report.AddStage(entry.StringOr("name", ""),
                      entry.NumberOr("seconds", 0.0));
    }
  }
  if (const JsonValue* decisions = root.Find("decision_log");
      decisions != nullptr) {
    // v1 documents have no decision_log; v2's is mandatory but an absent
    // one still parses (as empty) so hand-trimmed fixtures stay usable.
    FRESHSEL_ASSIGN_OR_RETURN(report.decision_log,
                              DecisionLog::FromJsonValue(*decisions));
  }
  if (const JsonValue* metrics = root.Find("metrics"); metrics != nullptr) {
    report.metrics = ParseMetrics(*metrics);
  }
  return report;
}

Result<RunReport> RunReport::ReadJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read metrics file: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("error reading metrics file: " + path);
  return FromJson(contents);
}

Status RunReport::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write metrics file: " + path);
  out << ToJson() << "\n";
  if (!out) return Status::IoError("error writing metrics file: " + path);
  return Status::OK();
}

}  // namespace freshsel::obs
