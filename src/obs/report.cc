#include "obs/report.h"

#include <fstream>

#include "obs/json.h"

namespace freshsel::obs {

std::string RunReport::ToJson() const {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema_version");
  writer.Int(kSchemaVersion);
  writer.Field("name", std::string_view(name));
  writer.Key("labels");
  writer.BeginObject();
  for (const auto& [key, value] : labels) {
    writer.Field(key, std::string_view(value));
  }
  writer.EndObject();
  writer.Key("values");
  writer.BeginObject();
  for (const auto& [key, value] : values) {
    writer.Field(key, value);
  }
  writer.EndObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [key, value] : counters) {
    writer.Field(key, value);
  }
  writer.EndObject();
  writer.Key("stages");
  writer.BeginArray();
  for (const Stage& stage : stages) {
    writer.BeginObject();
    writer.Field("name", std::string_view(stage.name));
    writer.Field("seconds", deterministic ? 0.0 : stage.seconds);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("metrics");
  if (deterministic) {
    MetricsSnapshot scrubbed = metrics;
    scrubbed.histograms.clear();
    scrubbed.AppendJson(writer);
  } else {
    metrics.AppendJson(writer);
  }
  writer.EndObject();
  return writer.TakeString();
}

Status RunReport::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write metrics file: " + path);
  out << ToJson() << "\n";
  if (!out) return Status::IoError("error writing metrics file: " + path);
  return Status::OK();
}

}  // namespace freshsel::obs
