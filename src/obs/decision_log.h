#ifndef FRESHSEL_OBS_DECISION_LOG_H_
#define FRESHSEL_OBS_DECISION_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace freshsel::obs {

class JsonValue;
class JsonWriter;

/// What kind of move a decision record captures.
enum class DecisionKind : std::uint8_t {
  kAdd = 0,        ///< Greedy/CELF/budgeted round accepting one element.
  kRemove = 1,     ///< Local-search removal move (GRASP).
  kSwap = 2,       ///< Local-search swap move (GRASP).
  kSingleton = 3,  ///< Budgeted Khuller-Moss-Naor singleton override.
};

/// Stable wire name ("add", "remove", "swap", "singleton").
std::string_view DecisionKindName(DecisionKind kind);

/// One accepted selection decision: which candidate won a round, by what
/// margin, and what the round cost in oracle work. The call-accounting
/// fields are deltas over the round, not running totals, so a record is
/// meaningful in isolation ("round 7 spent 3 evals and skipped 41").
struct DecisionRecord {
  std::uint32_t round = 0;    ///< 0-based round within one run / restart.
  std::uint32_t restart = 0;  ///< GRASP restart index; 0 elsewhere.
  DecisionKind kind = DecisionKind::kAdd;
  std::uint32_t chosen = 0;  ///< SourceHandle accepted by this decision.
  /// For kSwap: the element the chosen one replaced (unused otherwise).
  std::uint32_t partner = 0;
  double gain = 0.0;    ///< Marginal objective gain of the accepted move.
  double profit = 0.0;  ///< Objective value after accepting the move.
  /// Ranking score the round compared candidates by: the gain itself for
  /// plain greedy, the gain/cost ratio for budgeted rounds.
  double score = 0.0;
  bool has_runner_up = false;
  std::uint32_t runner_up = 0;  ///< Second-best candidate, when known.
  /// The runner-up's score. Exact for eager scans; for CELF it is the
  /// next queue entry's *stale upper bound* (the tightest information the
  /// lazy path has without spending the eval it just saved).
  double runner_up_score = 0.0;
  double margin = 0.0;  ///< score - runner_up_score; 0 without runner-up.
  /// Oracle evaluations spent during the round (cache misses when a
  /// CachedProfitOracle is in front).
  std::uint64_t oracle_calls = 0;
  /// Evaluations the round avoided versus an eager full scan of its
  /// candidate pool: CELF stale-bound skips, stochastic sample exclusions,
  /// minus what was actually spent.
  std::uint64_t calls_saved = 0;
  std::uint64_t cache_hits = 0;   ///< Memoized evals served this round.
  std::uint64_t sample_size = 0;  ///< Stochastic sampled pool; 0 = full.
  std::uint64_t pool_size = 0;    ///< Feasible candidates this round.
};

/// One degraded-source substitution carried into the run (a source whose
/// profile fell back to a coarser model; see estimation/degradation.h).
struct DecisionDegradation {
  std::string source;
  std::string reason;
};

/// Per-run audit trail behind RunReport schema_version 2: the sequence of
/// accepted decisions, in order, for one selection run.
///
/// Lock-free by construction rather than by synchronization: records are
/// appended only from the single thread driving the selection loop (the
/// algorithms parallelize candidate *scoring*, but move acceptance is
/// always a serial reduction), so appends are plain vector pushes - no
/// mutex, no atomics, nothing for the ≤5% instrumentation-overhead gate
/// to measure. The pointer threaded through the algorithms is non-owning;
/// recording compiles out entirely under -DFRESHSEL_OBS=OFF (see
/// selection/audit.h).
class DecisionLog {
 public:
  void set_algorithm(std::string algorithm) {
    algorithm_ = std::move(algorithm);
  }
  const std::string& algorithm() const { return algorithm_; }

  void Record(DecisionRecord record) { records_.push_back(record); }
  const std::vector<DecisionRecord>& records() const { return records_; }

  void AddDegradation(std::string source, std::string reason) {
    degraded_.push_back({std::move(source), std::move(reason)});
  }
  const std::vector<DecisionDegradation>& degraded() const {
    return degraded_;
  }

  bool empty() const {
    return records_.empty() && degraded_.empty() && algorithm_.empty();
  }

  void Clear() {
    algorithm_.clear();
    records_.clear();
    degraded_.clear();
  }

  /// Serializes as the RunReport v2 "decision_log" object.
  void AppendJson(JsonWriter& writer) const;

  /// Parses a "decision_log" object produced by AppendJson. Unknown fields
  /// are ignored (forward compatibility); missing fields default.
  static Result<DecisionLog> FromJsonValue(const JsonValue& value);

 private:
  std::string algorithm_;
  std::vector<DecisionRecord> records_;
  std::vector<DecisionDegradation> degraded_;
};

}  // namespace freshsel::obs

#endif  // FRESHSEL_OBS_DECISION_LOG_H_
