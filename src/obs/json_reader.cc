#include "obs/json_reader.h"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace freshsel::obs {

std::uint64_t JsonValue::AsUint64() const {
  if (!is_number()) return 0;
  if (exact_uint_) return uint_;
  if (number_ <= 0.0) return 0;
  // Doubles at or above 2^64 (e.g. a 20-digit wire integer that skipped
  // the exact-uint path) would make this cast undefined; saturate instead.
  if (number_ >= 18446744073709551616.0) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(number_);
}

const std::string& JsonValue::AsString() const {
  static const std::string* empty = new std::string();
  return is_string() ? string_ : *empty;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  const JsonValue* found = nullptr;
  for (const Member& member : members_) {
    if (member.first == key) found = &member.second;
  }
  return found;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* member = Find(key);
  return member != nullptr && member->is_number() ? member->AsDouble()
                                                  : fallback;
}

std::uint64_t JsonValue::UintOr(std::string_view key,
                                std::uint64_t fallback) const {
  const JsonValue* member = Find(key);
  return member != nullptr && member->is_number() ? member->AsUint64()
                                                  : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* member = Find(key);
  return member != nullptr && member->is_string()
             ? member->AsString()
             : std::string(fallback);
}

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeUint(std::uint64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = static_cast<double>(value);
  v.uint_ = value;
  v.exact_uint_ = true;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over a string_view. Single pass, no lookahead
/// beyond one character; depth-limited so pathological nesting cannot blow
/// the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    FRESHSEL_RETURN_IF_ERROR(ParseValue(&root));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 96;

  Status Error(std::string_view what) const {
    return Status::InvalidArgument(StringPrintf(
        "json parse error at offset %zu: %.*s", pos_,
        static_cast<int>(what.size()), what.data()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out) {
    if (depth_ >= kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        return ParseString(out);
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        *out = JsonValue::MakeBool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        *out = JsonValue::MakeBool(false);
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        *out = JsonValue::MakeNull();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    ++depth_;
    std::vector<JsonValue::Member> members;
    SkipWhitespace();
    if (!Consume('}')) {
      while (true) {
        SkipWhitespace();
        JsonValue key;
        FRESHSEL_RETURN_IF_ERROR(ParseString(&key));
        SkipWhitespace();
        if (!Consume(':')) return Error("expected ':' after object key");
        JsonValue value;
        FRESHSEL_RETURN_IF_ERROR(ParseValue(&value));
        members.emplace_back(key.AsString(), std::move(value));
        SkipWhitespace();
        if (Consume(',')) continue;
        if (Consume('}')) break;
        return Error("expected ',' or '}' in object");
      }
    }
    --depth_;
    *out = JsonValue::MakeObject(std::move(members));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out) {
    ++pos_;  // '['
    ++depth_;
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (!Consume(']')) {
      while (true) {
        JsonValue item;
        FRESHSEL_RETURN_IF_ERROR(ParseValue(&item));
        items.push_back(std::move(item));
        SkipWhitespace();
        if (Consume(',')) continue;
        if (Consume(']')) break;
        return Error("expected ',' or ']' in array");
      }
    }
    --depth_;
    *out = JsonValue::MakeArray(std::move(items));
    return Status::OK();
  }

  static void AppendUtf8(std::uint32_t code_point, std::string* out) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  Status ParseHex4(std::uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    if (!Consume('"')) return Error("expected string");
    std::string value;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': value.push_back('"'); break;
        case '\\': value.push_back('\\'); break;
        case '/': value.push_back('/'); break;
        case 'b': value.push_back('\b'); break;
        case 'f': value.push_back('\f'); break;
        case 'n': value.push_back('\n'); break;
        case 'r': value.push_back('\r'); break;
        case 't': value.push_back('\t'); break;
        case 'u': {
          std::uint32_t code_point = 0;
          FRESHSEL_RETURN_IF_ERROR(ParseHex4(&code_point));
          if (code_point >= 0xD800 && code_point <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            // Surrogate pair: combine with the low half when present.
            pos_ += 2;
            std::uint32_t low = 0;
            FRESHSEL_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(code_point, &value);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    *out = JsonValue::MakeString(std::move(value));
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    static_cast<void>(Consume('-'));
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = pos_ > start && text_[start] != '-';
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return Error("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral && token.size() <= 19) {
      // Plain unsigned integers keep their exact value (counters can
      // exceed the 2^53 double-exact range); 19 digits always fits uint64
      // modulo the top of the range, which strtoull saturates - fall back
      // to the double path on overflow.
      char* end = nullptr;
      errno = 0;
      const unsigned long long exact = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::MakeUint(static_cast<std::uint64_t>(exact));
        return Status::OK();
      }
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    *out = JsonValue::MakeNumber(value);
    return Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read json file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("error reading json file: " + path);
  return ParseJson(buffer.str());
}

}  // namespace freshsel::obs
