#ifndef FRESHSEL_OBS_JSON_H_
#define FRESHSEL_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace freshsel::obs {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// added).
std::string JsonEscape(std::string_view text);

/// Minimal streaming JSON writer for the obs serializers (metrics
/// snapshots, trace events, run reports). Emits compact one-line JSON;
/// commas and quoting are handled by the writer, nesting correctness is on
/// the caller (unbalanced Begin/End pairs are a bug, checked in debug
/// builds by the matching End* asserts).
///
/// Doubles are written with enough digits to round-trip; non-finite values
/// become null (JSON has no inf/nan).
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object key; must be followed by exactly one value (or Begin*).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Double(double value);
  void Uint(std::uint64_t value);
  void Int(std::int64_t value);
  void Bool(bool value);
  void Null();

  /// Splices `json` verbatim as one value (comma/key handling still
  /// applies). `json` must itself be a complete, valid JSON value - the
  /// writer does not re-validate it. Used to embed an already-serialized
  /// document (e.g. a RunReport) inside a larger one without re-parsing.
  void RawValue(std::string_view json);

  /// Shorthand: Key(key) + value.
  void Field(std::string_view key, std::string_view value);
  void Field(std::string_view key, double value);
  void Field(std::string_view key, std::uint64_t value);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  /// Writes the separating comma when a value follows a previous sibling.
  void BeforeValue();

  std::string out_;
  /// One entry per open scope: true once the scope has at least one child.
  std::vector<bool> has_child_;
  bool after_key_ = false;
};

}  // namespace freshsel::obs

#endif  // FRESHSEL_OBS_JSON_H_
