#include "obs/decision_log.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/json_reader.h"

namespace freshsel::obs {

std::string_view DecisionKindName(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::kAdd:
      return "add";
    case DecisionKind::kRemove:
      return "remove";
    case DecisionKind::kSwap:
      return "swap";
    case DecisionKind::kSingleton:
      return "singleton";
  }
  return "add";
}

namespace {

DecisionKind KindFromName(std::string_view name) {
  if (name == "remove") return DecisionKind::kRemove;
  if (name == "swap") return DecisionKind::kSwap;
  if (name == "singleton") return DecisionKind::kSingleton;
  return DecisionKind::kAdd;
}

}  // namespace

void DecisionLog::AppendJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.Field("algorithm", std::string_view(algorithm_));
  writer.Key("decisions");
  writer.BeginArray();
  for (const DecisionRecord& record : records_) {
    writer.BeginObject();
    writer.Field("round", static_cast<std::uint64_t>(record.round));
    if (record.restart != 0) {
      writer.Field("restart", static_cast<std::uint64_t>(record.restart));
    }
    writer.Field("kind", DecisionKindName(record.kind));
    writer.Field("chosen", static_cast<std::uint64_t>(record.chosen));
    if (record.kind == DecisionKind::kSwap) {
      writer.Field("partner", static_cast<std::uint64_t>(record.partner));
    }
    writer.Field("gain", record.gain);
    writer.Field("profit", record.profit);
    writer.Field("score", record.score);
    if (record.has_runner_up) {
      writer.Field("runner_up", static_cast<std::uint64_t>(record.runner_up));
      writer.Field("runner_up_score", record.runner_up_score);
      writer.Field("margin", record.margin);
    }
    writer.Field("oracle_calls", record.oracle_calls);
    writer.Field("calls_saved", record.calls_saved);
    if (record.cache_hits != 0) {
      writer.Field("cache_hits", record.cache_hits);
    }
    if (record.sample_size != 0) {
      writer.Field("sample_size", record.sample_size);
    }
    writer.Field("pool_size", record.pool_size);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("degraded");
  writer.BeginArray();
  for (const DecisionDegradation& entry : degraded_) {
    writer.BeginObject();
    writer.Field("source", std::string_view(entry.source));
    writer.Field("reason", std::string_view(entry.reason));
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

Result<DecisionLog> DecisionLog::FromJsonValue(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("decision_log is not a JSON object");
  }
  DecisionLog log;
  log.set_algorithm(value.StringOr("algorithm", ""));
  if (const JsonValue* decisions = value.Find("decisions");
      decisions != nullptr && decisions->is_array()) {
    for (const JsonValue& entry : decisions->items()) {
      if (!entry.is_object()) {
        return Status::InvalidArgument("decision entry is not an object");
      }
      DecisionRecord record;
      record.round = static_cast<std::uint32_t>(entry.UintOr("round", 0));
      record.restart =
          static_cast<std::uint32_t>(entry.UintOr("restart", 0));
      record.kind = KindFromName(entry.StringOr("kind", "add"));
      record.chosen = static_cast<std::uint32_t>(entry.UintOr("chosen", 0));
      record.partner =
          static_cast<std::uint32_t>(entry.UintOr("partner", 0));
      record.gain = entry.NumberOr("gain", 0.0);
      record.profit = entry.NumberOr("profit", 0.0);
      record.score = entry.NumberOr("score", 0.0);
      record.has_runner_up = entry.Find("runner_up") != nullptr;
      record.runner_up =
          static_cast<std::uint32_t>(entry.UintOr("runner_up", 0));
      record.runner_up_score = entry.NumberOr("runner_up_score", 0.0);
      record.margin = entry.NumberOr("margin", 0.0);
      record.oracle_calls = entry.UintOr("oracle_calls", 0);
      record.calls_saved = entry.UintOr("calls_saved", 0);
      record.cache_hits = entry.UintOr("cache_hits", 0);
      record.sample_size = entry.UintOr("sample_size", 0);
      record.pool_size = entry.UintOr("pool_size", 0);
      log.Record(record);
    }
  }
  if (const JsonValue* degraded = value.Find("degraded");
      degraded != nullptr && degraded->is_array()) {
    for (const JsonValue& entry : degraded->items()) {
      if (!entry.is_object()) {
        return Status::InvalidArgument("degraded entry is not an object");
      }
      log.AddDegradation(entry.StringOr("source", ""),
                         entry.StringOr("reason", ""));
    }
  }
  return log;
}

}  // namespace freshsel::obs
