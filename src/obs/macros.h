#ifndef FRESHSEL_OBS_MACROS_H_
#define FRESHSEL_OBS_MACROS_H_

/// Zero-overhead-when-off instrumentation macros. The whole obs library
/// (registry, spans, reports) is always built and always callable - these
/// macros are the *instrumentation* layer sprinkled through hot paths, and
/// they compile to nothing when observability is disabled:
///
///  - `cmake -DFRESHSEL_OBS=OFF`   -> defines FRESHSEL_OBS_OFF globally.
///  - `#define FRESHSEL_OBS_FORCE_OFF` before including this header
///    -> per-translation-unit off switch (used by the no-op compile test).
///
/// FRESHSEL_OBS_ACTIVE is 1 or 0 accordingly and may be used with #if for
/// larger instrumentation blocks.

#if defined(FRESHSEL_OBS_OFF) || defined(FRESHSEL_OBS_FORCE_OFF)
#define FRESHSEL_OBS_ACTIVE 0
#else
#define FRESHSEL_OBS_ACTIVE 1
#endif

#if FRESHSEL_OBS_ACTIVE
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"
#endif

#define FRESHSEL_OBS_CONCAT_INNER(a, b) a##b
#define FRESHSEL_OBS_CONCAT(a, b) FRESHSEL_OBS_CONCAT_INNER(a, b)

#if FRESHSEL_OBS_ACTIVE

/// Opens an RAII trace span for the rest of the enclosing scope. `name`
/// must be a string literal (spans keep the pointer, not a copy). Costs
/// one relaxed atomic load when tracing is disabled at runtime.
#define FRESHSEL_TRACE_SPAN(name) \
  const ::freshsel::obs::TraceSpan FRESHSEL_OBS_CONCAT(fs_obs_span_, \
                                                       __LINE__)(name)

/// Bumps the named process-wide counter. The registry lookup happens once
/// per call site (function-local static); the increment is lock-free.
#define FRESHSEL_OBS_COUNT(name, delta)                                  \
  do {                                                                   \
    static ::freshsel::obs::Counter& fs_obs_counter =                    \
        ::freshsel::obs::MetricsRegistry::Global().GetCounter(name);     \
    fs_obs_counter.Add(static_cast<std::uint64_t>(delta));               \
  } while (0)

/// Sets the named process-wide gauge.
#define FRESHSEL_OBS_GAUGE_SET(name, value)                              \
  do {                                                                   \
    static ::freshsel::obs::Gauge& fs_obs_gauge =                        \
        ::freshsel::obs::MetricsRegistry::Global().GetGauge(name);       \
    fs_obs_gauge.Set(static_cast<double>(value));                        \
  } while (0)

/// Records `value` into the named histogram (default latency bounds).
#define FRESHSEL_OBS_HISTOGRAM_RECORD(name, value)                       \
  do {                                                                   \
    static ::freshsel::obs::Histogram& fs_obs_histogram =                \
        ::freshsel::obs::MetricsRegistry::Global().GetHistogram(name);   \
    fs_obs_histogram.Record(static_cast<double>(value));                 \
  } while (0)

/// Times the rest of the enclosing scope into the named latency histogram
/// (seconds, default bounds).
#define FRESHSEL_OBS_SCOPED_LATENCY(name)                                \
  static ::freshsel::obs::Histogram& FRESHSEL_OBS_CONCAT(                \
      fs_obs_scoped_hist_, __LINE__) =                                   \
      ::freshsel::obs::MetricsRegistry::Global().GetHistogram(name);     \
  const ::freshsel::obs::ScopedLatencyTimer FRESHSEL_OBS_CONCAT(         \
      fs_obs_scoped_timer_, __LINE__)(                                   \
      FRESHSEL_OBS_CONCAT(fs_obs_scoped_hist_, __LINE__))

#else  // !FRESHSEL_OBS_ACTIVE

#define FRESHSEL_TRACE_SPAN(name) static_cast<void>(0)
#define FRESHSEL_OBS_COUNT(name, delta) static_cast<void>(0)
#define FRESHSEL_OBS_GAUGE_SET(name, value) static_cast<void>(0)
#define FRESHSEL_OBS_HISTOGRAM_RECORD(name, value) static_cast<void>(0)
#define FRESHSEL_OBS_SCOPED_LATENCY(name) static_cast<void>(0)

#endif  // FRESHSEL_OBS_ACTIVE

#endif  // FRESHSEL_OBS_MACROS_H_
