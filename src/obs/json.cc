#include "obs/json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

#include "common/check.h"

namespace freshsel::obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_child_.empty()) {
    if (has_child_.back()) out_.push_back(',');
    has_child_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  has_child_.push_back(false);
}

void JsonWriter::EndObject() {
  FRESHSEL_DCHECK(!has_child_.empty()) << "EndObject without BeginObject";
  has_child_.pop_back();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  has_child_.push_back(false);
}

void JsonWriter::EndArray() {
  FRESHSEL_DCHECK(!has_child_.empty()) << "EndArray without BeginArray";
  has_child_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  FRESHSEL_DCHECK(!after_key_) << "two Keys in a row";
  if (!has_child_.empty()) {
    if (has_child_.back()) out_.push_back(',');
    has_child_.back() = true;
  }
  out_.push_back('"');
  out_ += JsonEscape(key);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  out_ += JsonEscape(value);
  out_.push_back('"');
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
}

void JsonWriter::Uint(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_ += json;
}

void JsonWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  String(value);
}

void JsonWriter::Field(std::string_view key, double value) {
  Key(key);
  Double(value);
}

void JsonWriter::Field(std::string_view key, std::uint64_t value) {
  Key(key);
  Uint(value);
}

}  // namespace freshsel::obs
