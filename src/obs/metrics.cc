#include "obs/metrics.h"

#include <algorithm>
#include <cstdint>

#include "common/string_util.h"
#include "obs/json.h"

namespace freshsel::obs {

std::size_t Counter::ShardIndex() {
  static std::atomic<std::size_t> next_stripe{0};
  thread_local const std::size_t stripe =
      next_stripe.fetch_add(1, std::memory_order_relaxed);
  return stripe % kShards;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index =
      static_cast<std::size_t>(it - bounds_.begin());  // == size: overflow.
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  // Half-decade steps: 1us, 3.16us, 10us, ..., 10s, 31.6s.
  std::vector<double> bounds;
  double decade = 1e-6;
  for (int i = 0; i < 8; ++i) {
    bounds.push_back(decade);
    bounds.push_back(decade * 3.1622776601683795);
    decade *= 10.0;
  }
  return bounds;
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th record, 1-based; q=0 targets the first record.
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const double bucket_start = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) return bounds.back();  // Overflow bucket.
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double fraction =
        (rank - bucket_start) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * (fraction < 0.0 ? 0.0 : fraction);
  }
  return bounds.back();
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void MetricsSnapshot::AppendJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, value] : counters) {
    writer.Field(name, value);
  }
  writer.EndObject();
  writer.Key("gauges");
  writer.BeginObject();
  for (const auto& [name, value] : gauges) {
    writer.Field(name, value);
  }
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginObject();
  for (const auto& [name, histogram] : histograms) {
    writer.Key(name);
    writer.BeginObject();
    writer.Field("count", histogram.count);
    writer.Field("sum", histogram.sum);
    writer.Field("mean", histogram.Mean());
    writer.Field("p50", histogram.Percentile(0.50));
    writer.Field("p95", histogram.Percentile(0.95));
    writer.Field("p99", histogram.Percentile(0.99));
    writer.Key("bounds");
    writer.BeginArray();
    for (double bound : histogram.bounds) writer.Double(bound);
    writer.EndArray();
    writer.Key("counts");
    writer.BeginArray();
    for (std::uint64_t count : histogram.counts) writer.Uint(count);
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter writer;
  AppendJson(writer);
  return writer.TakeString();
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += StringPrintf("counter   %-40s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    out += StringPrintf("gauge     %-40s %g\n", name.c_str(), value);
  }
  for (const auto& [name, histogram] : histograms) {
    out += StringPrintf(
        "histogram %-40s count=%llu mean=%g p50=%g p95=%g p99=%g\n",
        name.c_str(), static_cast<unsigned long long>(histogram.count),
        histogram.Mean(), histogram.Percentile(0.50),
        histogram.Percentile(0.95), histogram.Percentile(0.99));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  return GetHistogram(name, Histogram::DefaultLatencyBounds());
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->TakeSnapshot();
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace freshsel::obs
