#ifndef FRESHSEL_OBS_REPORT_H_
#define FRESHSEL_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace freshsel::obs {

/// Machine-readable summary of one run (a `freshsel select` invocation, a
/// harness comparison, a bench binary). This is the schema behind
/// `--metrics-out` and the committed BENCH_*.json trajectory files:
///
///   {
///     "schema_version": 1,
///     "name":   "freshsel/select",
///     "labels":   {"algorithm": "GRASP-(5,20)", ...},   // strings
///     "values":   {"profit": 1.92, ...},                // scalars
///     "counters": {"oracle_calls": 812, ...},           // integers
///     "stages": [{"name": "learn_models", "seconds": 0.12}, ...],
///     "metrics": { "counters": ..., "gauges": ..., "histograms": ... }
///   }
///
/// `labels`/`values`/`counters` carry run-level results folded in by the
/// producing layer (selector, estimator fit, harness); `stages` are coarse
/// per-phase wall times in execution order; `metrics` embeds a
/// MetricsSnapshot of the process-wide registry (per-stage latency
/// histograms, cache tallies, ...).
struct RunReport {
  static constexpr int kSchemaVersion = 1;

  std::string name;
  std::map<std::string, std::string> labels;
  std::map<std::string, double> values;
  std::map<std::string, std::uint64_t> counters;

  struct Stage {
    std::string name;
    double seconds = 0.0;
  };
  std::vector<Stage> stages;

  MetricsSnapshot metrics;

  /// When true, ToJson emits a byte-reproducible document for golden-file
  /// tests (`--deterministic-metrics`): stage wall times are written as 0
  /// and latency histograms are omitted from the embedded snapshot.
  /// Counters and gauges stay — for a fixed seed they must already be
  /// deterministic.
  bool deterministic = false;

  void AddStage(std::string stage_name, double seconds) {
    stages.push_back(Stage{std::move(stage_name), seconds});
  }

  /// Folds the process-wide registry into `metrics`.
  void CaptureGlobalMetrics() {
    metrics = MetricsRegistry::Global().TakeSnapshot();
  }

  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;
};

}  // namespace freshsel::obs

#endif  // FRESHSEL_OBS_REPORT_H_
