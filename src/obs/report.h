#ifndef FRESHSEL_OBS_REPORT_H_
#define FRESHSEL_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"

namespace freshsel::obs {

/// Machine-readable summary of one run (a `freshsel select` invocation, a
/// harness comparison, a bench binary). This is the schema behind
/// `--metrics-out` and the committed BENCH_*.json trajectory files:
///
///   {
///     "schema_version": 2,
///     "name":   "freshsel/select",
///     "labels":   {"algorithm": "GRASP-(5,20)", ...},   // strings
///     "values":   {"profit": 1.92, ...},                // scalars
///     "counters": {"oracle_calls": 812, ...},           // integers
///     "stages": [{"name": "learn_models", "seconds": 0.12}, ...],
///     "decision_log": {"algorithm": ..., "decisions": [...], ...},
///     "metrics": { "counters": ..., "gauges": ..., "histograms": ... }
///   }
///
/// `labels`/`values`/`counters` carry run-level results folded in by the
/// producing layer (selector, estimator fit, harness); `stages` are coarse
/// per-phase wall times in execution order; `decision_log` is the per-round
/// selection audit trail (schema_version 2, see obs/decision_log.h);
/// `metrics` embeds a MetricsSnapshot of the process-wide registry
/// (per-stage latency histograms with p50/p95/p99 summaries, cache
/// tallies, ...).
///
/// Version history: v1 had no `decision_log` and no histogram percentile
/// fields. `FromJson` reads any version >= 1, tolerating unknown fields,
/// so committed v1 BENCH_*.json baselines stay loadable.
struct RunReport {
  static constexpr int kSchemaVersion = 2;

  std::string name;
  std::map<std::string, std::string> labels;
  std::map<std::string, double> values;
  std::map<std::string, std::uint64_t> counters;

  struct Stage {
    std::string name;
    double seconds = 0.0;
  };
  std::vector<Stage> stages;

  /// Selection audit trail (empty unless a selection run wired it up; the
  /// CLI points SelectorConfig::decision_log here).
  DecisionLog decision_log;

  MetricsSnapshot metrics;

  /// When true, ToJson emits a byte-reproducible document for golden-file
  /// tests (`--deterministic-metrics`): stage wall times are written as 0
  /// and latency histograms are omitted from the embedded snapshot.
  /// Counters and gauges stay — for a fixed seed they must already be
  /// deterministic.
  bool deterministic = false;

  void AddStage(std::string stage_name, double seconds) {
    stages.push_back(Stage{std::move(stage_name), seconds});
  }

  /// Folds the process-wide registry into `metrics`.
  void CaptureGlobalMetrics() {
    metrics = MetricsRegistry::Global().TakeSnapshot();
  }

  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

  /// Parses a report document of any schema_version >= 1. Unknown fields
  /// (future versions) are ignored; fields this version knows but the
  /// document lacks (e.g. v1's missing decision_log) default to empty.
  /// Re-serializing a parsed v2 document reproduces it byte-identically
  /// (the JSON writer's %.17g doubles round-trip exactly).
  static Result<RunReport> FromJson(std::string_view json);
  static Result<RunReport> ReadJsonFile(const std::string& path);
};

}  // namespace freshsel::obs

#endif  // FRESHSEL_OBS_REPORT_H_
