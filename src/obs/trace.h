#ifndef FRESHSEL_OBS_TRACE_H_
#define FRESHSEL_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace freshsel::obs {

/// One completed span: a named [begin, end) interval on one thread.
/// `name` points at a string literal (the FRESHSEL_TRACE_SPAN argument) and
/// is never owned.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;     ///< Small sequential obs thread id.
  std::uint64_t id = 0;      ///< Span id, unique within the process.
  std::uint64_t parent = 0;  ///< Enclosing span id (0 = root). Crosses
                             ///< threads via the ThreadPool task context.
};

/// Tracing is off by default: a disabled FRESHSEL_TRACE_SPAN costs one
/// relaxed atomic load. Spans record into fixed-capacity per-thread ring
/// buffers (oldest events are overwritten; the drop count is reported), so
/// enabling tracing never allocates on the hot path after a thread's first
/// span.
void SetTraceEnabled(bool enabled);
bool TraceEnabled();

/// Discards all buffered events (typically paired with SetTraceEnabled
/// before a traced run).
void ClearTrace();

/// Snapshot of every thread's buffered events, ordered by begin time.
/// Safe to call while spans are being recorded (per-buffer locking), but
/// for a consistent picture disable tracing first.
std::vector<TraceEvent> CollectTrace();

/// Events dropped to ring-buffer overwrite since the last ClearTrace.
std::uint64_t TraceDroppedCount();

/// Per-thread share of TraceDroppedCount, ordered by tid; threads that
/// dropped nothing are omitted. A truncated trace names the exact threads
/// whose history is incomplete instead of one opaque aggregate.
struct TraceDrop {
  std::uint32_t tid = 0;
  std::uint64_t dropped = 0;
};
std::vector<TraceDrop> TraceDroppedByThread();

/// Serializes events as Chrome trace-event JSON (the format
/// chrome://tracing and Perfetto load): one complete ("ph":"X") event per
/// span with microsecond timestamps, the obs thread id as "tid", and the
/// parent span id under "args". Timestamps are rebased to the earliest
/// event so traces start near zero. `drops` (typically
/// TraceDroppedByThread()) is embedded under "otherData" so a truncated
/// trace is self-describing: total dropped events plus the per-thread
/// breakdown.
std::string TraceToChromeJson(const std::vector<TraceEvent>& events,
                              const std::vector<TraceDrop>& drops);
/// Same, with no drop metadata (drop-free callers and tests).
std::string TraceToChromeJson(const std::vector<TraceEvent>& events);

/// CollectTrace + TraceToChromeJson + write to `path`.
Status WriteTraceFile(const std::string& path);

/// RAII span. Prefer the FRESHSEL_TRACE_SPAN macro (obs/macros.h), which
/// compiles to nothing in FRESHSEL_OBS=OFF builds. While the span is open
/// it publishes its id as the thread's task context, so spans opened in
/// pool workers (or nested on the same thread) attribute to it.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< Null when tracing was disabled.
  std::uint64_t begin_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
};

}  // namespace freshsel::obs

#endif  // FRESHSEL_OBS_TRACE_H_
