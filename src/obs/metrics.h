#ifndef FRESHSEL_OBS_METRICS_H_
#define FRESHSEL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/timer.h"

namespace freshsel::obs {

/// Monotonic event counter with a lock-free, mostly contention-free fast
/// path: increments land on one of a small set of cache-line-padded shards
/// chosen per thread, and reads sum the shards. `Value()`/`Reset()` are
/// intended for snapshot time, not hot loops.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  /// Threads are striped round-robin across shards; a thread keeps its
  /// stripe for life, so two pool workers never share a hot cache line
  /// (until more than kShards threads exist, which only costs throughput).
  static std::size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

/// Last-written-value metric (e.g. universe size, pool width).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are upper-inclusive bucket edges in
/// ascending order, plus one implicit overflow bucket, so a recorded value
/// lands in the first bucket whose bound is >= value. Records are a binary
/// search plus one relaxed atomic increment; sum/count keep enough to
/// report a mean.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  /// Default edges for latency-in-seconds histograms: half-decade steps
  /// from 1us to 31.6s (16 bounds + overflow).
  static std::vector<double> DefaultLatencyBounds();

  struct Snapshot {
    std::vector<double> bounds;          ///< Upper-inclusive edges.
    std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 buckets.
    std::uint64_t count = 0;
    double sum = 0.0;
    double Mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
    /// bucket holding the q-th record: walk the cumulative counts to the
    /// target rank, then interpolate between the bucket's lower and upper
    /// edges by the rank's position within the bucket. The first bucket's
    /// lower edge is 0 (latency histograms never see negatives); records
    /// in the overflow bucket report the last finite edge (the estimate
    /// is a floor, not an extrapolation). Empty histograms report 0.
    double Percentile(double q) const;
  };
  Snapshot TakeSnapshot() const;

  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 slots.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered metric, serializable as
/// machine-readable JSON (the `metrics` object of a RunReport / the
/// BENCH_*.json schema) or a human-readable text block.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  std::string ToJson() const;
  /// Appends this snapshot as a JSON object to an in-progress writer (used
  /// by RunReport to embed the snapshot).
  void AppendJson(class JsonWriter& writer) const;
  std::string ToText() const;
  /// OpenMetrics text exposition (the Prometheus scrape format): one
  /// `# TYPE`/`# HELP` pair per metric, counters as `<name>_total`,
  /// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
  /// `_count`, terminated by `# EOF`. Metric names are sanitized
  /// (`.` -> `_`, prefix `freshsel_`); the original dotted id is kept in
  /// the HELP line. Defined in openmetrics.cc.
  std::string ToOpenMetrics() const;
};

/// Process-wide registry of named metrics. Lookup takes a mutex once per
/// call site (call sites cache the returned reference, see
/// FRESHSEL_OBS_COUNT in obs/macros.h); the metric fast paths are
/// lock-free. Returned references stay valid for the process lifetime -
/// metrics are never unregistered, and Reset only zeroes values.
class MetricsRegistry {
 public:
  /// The process-wide instance every macro call site records into.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// Histogram with the default latency bounds. When the name already
  /// exists the existing instance is returned regardless of bounds.
  Histogram& GetHistogram(std::string_view name);
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot TakeSnapshot() const;

  /// Zeroes every registered metric (registrations survive, so cached
  /// references at call sites stay valid).
  void ResetAll();

 private:
  mutable Mutex mutex_;
  /// Name -> metric maps are guarded; the metric objects themselves are
  /// lock-free and returned by reference past the lock (never destroyed,
  /// see class comment), so only registration takes the mutex.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      FRESHSEL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      FRESHSEL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      FRESHSEL_GUARDED_BY(mutex_);
};

/// RAII timer that records its lifetime (in seconds) into a histogram on
/// destruction; `Elapsed*` readers let the scope double as the measurement
/// for result tables (Table 2/3 runtimes) without a second clock read
/// site.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram& histogram)
      : histogram_(&histogram) {}
  ~ScopedLatencyTimer() { histogram_->Record(timer_.ElapsedSeconds()); }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }
  double ElapsedMillis() const { return timer_.ElapsedMillis(); }

 private:
  Histogram* histogram_;
  WallTimer timer_;
};

}  // namespace freshsel::obs

#endif  // FRESHSEL_OBS_METRICS_H_
