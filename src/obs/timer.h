#ifndef FRESHSEL_OBS_TIMER_H_
#define FRESHSEL_OBS_TIMER_H_

#include <cstdint>

#include "obs/clock.h"

namespace freshsel::obs {

/// Monotonic wall-clock stopwatch (Table 2/3, Figure 13 runtime
/// measurements). Lives in the obs layer so that all timing flows through
/// `obs::NowNs`; `common/timer.h` keeps the historical `freshsel::WallTimer`
/// alias for existing call sites.
class WallTimer {
 public:
  WallTimer() : start_ns_(NowNs()) {}

  void Restart() { start_ns_ = NowNs(); }

  std::uint64_t ElapsedNs() const { return NowNs() - start_ns_; }

  double ElapsedSeconds() const { return NsToSeconds(ElapsedNs()); }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::uint64_t start_ns_;
};

}  // namespace freshsel::obs

#endif  // FRESHSEL_OBS_TIMER_H_
