#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>

#include "common/mutex.h"
#include "common/task_context.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/json.h"

namespace freshsel::obs {

namespace {

constexpr std::size_t kRingCapacity = 1 << 14;  // 16384 events per thread.

/// Per-thread event ring. Buffers are registered once and never destroyed
/// (threads may outlive or predate collection), so CollectTrace after a
/// recording thread exited is safe. The mutex guards the ring slots; the
/// recording fast path takes it uncontended.
struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t tid_in) : tid(tid_in) {
    events.resize(kRingCapacity);
  }

  Mutex mutex;
  std::uint32_t tid;
  std::vector<TraceEvent> events FRESHSEL_GUARDED_BY(mutex);
  std::size_t size FRESHSEL_GUARDED_BY(mutex) = 0;   ///< Valid events.
  std::size_t next FRESHSEL_GUARDED_BY(mutex) = 0;   ///< Ring write cursor.
  std::uint64_t dropped FRESHSEL_GUARDED_BY(mutex) = 0;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> next_span_id{1};
  Mutex registry_mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers
      FRESHSEL_GUARDED_BY(registry_mutex);
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    TraceState& state = State();
    MutexLock lock(state.registry_mutex);
    state.buffers.push_back(std::make_unique<ThreadBuffer>(
        static_cast<std::uint32_t>(state.buffers.size())));
    return state.buffers.back().get();
  }();
  return *buffer;
}

void RecordEvent(ThreadBuffer& buffer, const TraceEvent& event) {
  MutexLock lock(buffer.mutex);
  if (buffer.size == kRingCapacity) ++buffer.dropped;
  buffer.events[buffer.next] = event;
  buffer.next = (buffer.next + 1) % kRingCapacity;
  buffer.size = std::min(buffer.size + 1, kRingCapacity);
}

}  // namespace

void SetTraceEnabled(bool enabled) {
  State().enabled.store(enabled, std::memory_order_release);
}

bool TraceEnabled() {
  return State().enabled.load(std::memory_order_relaxed);
}

void ClearTrace() {
  TraceState& state = State();
  MutexLock registry_lock(state.registry_mutex);
  for (const auto& buffer : state.buffers) {
    MutexLock lock(buffer->mutex);
    buffer->size = 0;
    buffer->next = 0;
    buffer->dropped = 0;
  }
}

std::vector<TraceEvent> CollectTrace() {
  TraceState& state = State();
  std::vector<TraceEvent> events;
  MutexLock registry_lock(state.registry_mutex);
  for (const auto& buffer : state.buffers) {
    MutexLock lock(buffer->mutex);
    // Oldest-first: the ring is [next - size, next).
    for (std::size_t i = 0; i < buffer->size; ++i) {
      const std::size_t index =
          (buffer->next + kRingCapacity - buffer->size + i) % kRingCapacity;
      events.push_back(buffer->events[index]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              return a.id < b.id;
            });
  return events;
}

std::uint64_t TraceDroppedCount() {
  TraceState& state = State();
  std::uint64_t dropped = 0;
  MutexLock registry_lock(state.registry_mutex);
  for (const auto& buffer : state.buffers) {
    MutexLock lock(buffer->mutex);
    dropped += buffer->dropped;
  }
  return dropped;
}

std::vector<TraceDrop> TraceDroppedByThread() {
  TraceState& state = State();
  std::vector<TraceDrop> drops;
  MutexLock registry_lock(state.registry_mutex);
  for (const auto& buffer : state.buffers) {
    MutexLock lock(buffer->mutex);
    if (buffer->dropped != 0) {
      drops.push_back(TraceDrop{buffer->tid, buffer->dropped});
    }
  }
  // Tids are assigned in registration order, so this is already sorted;
  // the sort pins the ordering contract rather than an implementation
  // detail of the registry.
  std::sort(drops.begin(), drops.end(),
            [](const TraceDrop& a, const TraceDrop& b) {
              return a.tid < b.tid;
            });
  return drops;
}

std::string TraceToChromeJson(const std::vector<TraceEvent>& events,
                              const std::vector<TraceDrop>& drops) {
  std::uint64_t base_ns = 0;
  for (const TraceEvent& event : events) {
    if (base_ns == 0 || event.begin_ns < base_ns) base_ns = event.begin_ns;
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("traceEvents");
  writer.BeginArray();
  for (const TraceEvent& event : events) {
    writer.BeginObject();
    writer.Field("name", std::string_view(event.name));
    writer.Field("ph", std::string_view("X"));
    writer.Field("ts", static_cast<double>(event.begin_ns - base_ns) * 1e-3);
    writer.Field("dur",
                 static_cast<double>(event.end_ns - event.begin_ns) * 1e-3);
    writer.Key("pid");
    writer.Uint(1);
    writer.Key("tid");
    writer.Uint(event.tid);
    writer.Key("args");
    writer.BeginObject();
    writer.Field("span_id", event.id);
    writer.Field("parent_span_id", event.parent);
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
  writer.Field("displayTimeUnit", std::string_view("ms"));
  if (!drops.empty()) {
    std::uint64_t total = 0;
    for (const TraceDrop& drop : drops) total += drop.dropped;
    writer.Key("otherData");
    writer.BeginObject();
    writer.Field("dropped_events", total);
    writer.Key("dropped_by_thread");
    writer.BeginArray();
    for (const TraceDrop& drop : drops) {
      writer.BeginObject();
      writer.Key("tid");
      writer.Uint(drop.tid);
      writer.Field("dropped", drop.dropped);
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndObject();
  return writer.TakeString();
}

std::string TraceToChromeJson(const std::vector<TraceEvent>& events) {
  return TraceToChromeJson(events, {});
}

Status WriteTraceFile(const std::string& path) {
  const std::string json =
      TraceToChromeJson(CollectTrace(), TraceDroppedByThread());
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write trace file: " + path);
  out << json << "\n";
  if (!out) return Status::IoError("error writing trace file: " + path);
  return Status::OK();
}

TraceSpan::TraceSpan(const char* name) {
  if (!TraceEnabled()) return;
  name_ = name;
  begin_ns_ = NowNs();
  id_ = State().next_span_id.fetch_add(1, std::memory_order_relaxed);
  // The enclosing context is either a span on this thread or, in a pool
  // worker, the span that called ParallelFor (propagated by the pool).
  parent_ = CurrentTaskContext();
  SetCurrentTaskContext(id_);
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  SetCurrentTaskContext(parent_);
  TraceEvent event;
  event.name = name_;
  event.begin_ns = begin_ns_;
  event.end_ns = NowNs();
  event.id = id_;
  event.parent = parent_;
  ThreadBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  RecordEvent(buffer, event);
}

}  // namespace freshsel::obs
