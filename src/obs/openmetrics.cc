// OpenMetrics text exposition for MetricsSnapshot (the scrape surface for
// the future selection-as-a-service daemon, ROADMAP item 1). Kept out of
// metrics.cc so the hot-path metric code and the wire format evolve
// independently.
//
// Format per the OpenMetrics spec (the Prometheus text format, v1.0.0):
//   - `# TYPE <name> counter|gauge|histogram` and `# HELP <name> <text>`
//     precede each metric family, HELP text with `\\` and `\n` escaped;
//   - counter samples get the `_total` suffix;
//   - histograms expose cumulative `_bucket{le="<edge>"}` samples ending
//     in `le="+Inf"`, plus `_sum` and `_count`;
//   - the exposition ends with `# EOF`.
// Dotted freshsel metric ids (`selection.cache.hits`) are sanitized to
// `freshsel_selection_cache_hits`; the original id is preserved verbatim
// in the HELP line so dashboards can map back.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace freshsel::obs {

namespace {

/// Sanitizes a dotted metric id into an OpenMetrics metric name:
/// `[a-zA-Z_][a-zA-Z0-9_]*`, `freshsel_` prefixed.
std::string MetricName(std::string_view id) {
  std::string name = "freshsel_";
  for (char c : id) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    name.push_back(keep ? c : '_');
  }
  return name;
}

/// Escapes a HELP text: only `\` and newline need escaping there.
std::string EscapeHelp(std::string_view text) {
  std::string out;
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendFamilyHeader(const std::string& name, std::string_view type,
                        std::string_view id, std::string* out) {
  *out += "# TYPE " + name + " " + std::string(type) + "\n";
  *out += "# HELP " + name + " freshsel " + std::string(type) + " " +
          EscapeHelp(id) + "\n";
}

std::string FormatDouble(double value) {
  // %.17g round-trips doubles exactly, matching the JSON serializer so
  // the two export formats never disagree on a value.
  return StringPrintf("%.17g", value);
}

}  // namespace

std::string MetricsSnapshot::ToOpenMetrics() const {
  std::string out;
  for (const auto& [id, value] : counters) {
    const std::string name = MetricName(id);
    AppendFamilyHeader(name, "counter", id, &out);
    out += name + "_total " +
           StringPrintf("%llu", static_cast<unsigned long long>(value)) +
           "\n";
  }
  for (const auto& [id, value] : gauges) {
    const std::string name = MetricName(id);
    AppendFamilyHeader(name, "gauge", id, &out);
    out += name + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [id, histogram] : histograms) {
    const std::string name = MetricName(id);
    AppendFamilyHeader(name, "histogram", id, &out);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
      cumulative += histogram.counts[i];
      const std::string le = i < histogram.bounds.size()
                                 ? FormatDouble(histogram.bounds[i])
                                 : std::string("+Inf");
      out += name + "_bucket{le=\"" + le + "\"} " +
             StringPrintf("%llu",
                          static_cast<unsigned long long>(cumulative)) +
             "\n";
    }
    out += name + "_sum " + FormatDouble(histogram.sum) + "\n";
    out += name + "_count " +
           StringPrintf("%llu",
                        static_cast<unsigned long long>(histogram.count)) +
           "\n";
  }
  out += "# EOF\n";
  return out;
}

}  // namespace freshsel::obs
