#ifndef FRESHSEL_SOURCE_SOURCE_HISTORY_H_
#define FRESHSEL_SOURCE_SOURCE_HISTORY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time_types.h"
#include "source/source_spec.h"
#include "world/entity.h"

namespace freshsel::source {

/// The full observed stream of one source: when each world change was
/// captured and published by the source. This is the "daily snapshots"
/// substrate of the paper — the source's content at any day t is derivable
/// from these capture times.
struct CaptureRecord {
  world::EntityId entity = 0;
  /// Subdomain of the entity (an observable attribute of the data item,
  /// e.g. a listing's (location, category) pair).
  world::SubdomainId subdomain = 0;
  /// Day the entity first appeared in the source's content; world::kNever if
  /// the source never picked it up.
  TimePoint inserted = world::kNever;
  /// Day the source removed the entity; world::kNever if never removed.
  TimePoint deleted = world::kNever;
  /// (world version, capture day) pairs for the value versions the source
  /// captured. Version 0 is the appearance value. Sorted by capture day.
  std::vector<std::pair<std::uint32_t, TimePoint>> version_captures;

  bool ContainsAt(TimePoint t) const { return inserted <= t && t < deleted; }

  /// Highest world version the source knows at t (the version it displays).
  /// Pre: ContainsAt(t).
  std::uint32_t KnownVersionAt(TimePoint t) const {
    std::uint32_t version = 0;
    for (const auto& [v, day] : version_captures) {
      if (day > t) break;
      if (v > version) version = v;
    }
    return version;
  }
};

/// A source's complete simulated (or replayed) history plus its ground-truth
/// spec. Entity lookups are O(1) via a dense index over world entity ids.
class SourceHistory {
 public:
  /// `world_entity_count` sizes the entity -> record index.
  SourceHistory(SourceSpec spec, std::size_t world_entity_count);

  const SourceSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  const UpdateSchedule& schedule() const { return spec_.schedule; }

  /// Adds a capture record; entries with inserted == kNever are skipped
  /// (entity never made it into the source). Returns InvalidArgument on a
  /// duplicate entity.
  Status AddRecord(CaptureRecord record);

  const std::vector<CaptureRecord>& records() const { return records_; }

  /// nullptr when the source never carried `entity`.
  const CaptureRecord* Find(world::EntityId entity) const;

  bool ContainsAt(world::EntityId entity, TimePoint t) const {
    const CaptureRecord* rec = Find(entity);
    return rec != nullptr && rec->ContainsAt(t);
  }

  /// Number of entities in the source's content at day t.
  std::int64_t ContentCountAt(TimePoint t) const;

  /// The micro-source covering only `subdomains` (the slice decomposition
  /// of Definition 5 / the BL+ datasets): keeps the records whose entity
  /// lies in the given subdomains, with the scope restricted accordingly
  /// and `suffix` appended to the name.
  SourceHistory RestrictedTo(const std::vector<world::SubdomainId>& subdomains,
                             const std::string& suffix) const;

  /// Re-aligns every capture day to the coarser acquisition schedule of
  /// taking only every `divisor`-th source update: the history an integrator
  /// sees when it deliberately acquires the source at frequency f_S/divisor
  /// (Example 4 / Definition 4). Pre: divisor >= 1.
  SourceHistory WithAcquisitionDivisor(std::int64_t divisor) const;

  std::size_t world_entity_count() const { return entity_index_.size(); }

 private:
  SourceSpec spec_;
  std::vector<CaptureRecord> records_;
  std::vector<std::int32_t> entity_index_;  // entity id -> records_ index.
};

}  // namespace freshsel::source

#endif  // FRESHSEL_SOURCE_SOURCE_HISTORY_H_
