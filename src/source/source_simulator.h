#ifndef FRESHSEL_SOURCE_SOURCE_SIMULATOR_H_
#define FRESHSEL_SOURCE_SOURCE_SIMULATOR_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "source/source_history.h"
#include "world/world.h"

namespace freshsel::world {
class World;
}

namespace freshsel::source {

/// Plays the world's ground-truth change stream through a source
/// specification, producing the source's observed history:
///
///  * every world change to an entity in the source's scope is either missed
///    (with the spec's per-change-type miss probability) or noticed after an
///    exponential delay and *published at the source's next update day* —
///    capture times are therefore always aligned to the source schedule,
///    exactly the structure the paper's T_S(t) operator models;
///  * entities alive at day 0 are seeded into the source with probability
///    `initial_awareness`;
///  * an update capture also inserts the entity if the appearance itself was
///    missed; captures that would land at or after the source's deletion of
///    the entity are dropped;
///  * captures falling beyond `world.horizon()` are treated as never
///    happening (right-censored, as in the paper's fixed observation
///    window).
///
/// Returns InvalidArgument on malformed specs (empty scope, bad
/// probabilities, period < 1).
Result<SourceHistory> SimulateSource(const world::World& world,
                                     const SourceSpec& spec, Rng& rng);

/// Simulates a whole roster of sources, forking an independent RNG stream
/// per source.
Result<std::vector<SourceHistory>> SimulateSources(
    const world::World& world, const std::vector<SourceSpec>& specs,
    Rng& rng);

}  // namespace freshsel::source

#endif  // FRESHSEL_SOURCE_SOURCE_SIMULATOR_H_
