#include "source/source_history.h"

#include <algorithm>
#include <cstdint>

namespace freshsel::source {

SourceHistory::SourceHistory(SourceSpec spec, std::size_t world_entity_count)
    : spec_(std::move(spec)), entity_index_(world_entity_count, -1) {}

Status SourceHistory::AddRecord(CaptureRecord record) {
  if (record.inserted == world::kNever) return Status::OK();
  if (record.entity >= entity_index_.size()) {
    return Status::InvalidArgument("entity id out of range");
  }
  if (entity_index_[record.entity] >= 0) {
    return Status::InvalidArgument("duplicate capture record for entity");
  }
  entity_index_[record.entity] = static_cast<std::int32_t>(records_.size());
  records_.push_back(std::move(record));
  return Status::OK();
}

const CaptureRecord* SourceHistory::Find(world::EntityId entity) const {
  if (entity >= entity_index_.size()) return nullptr;
  const std::int32_t index = entity_index_[entity];
  return index < 0 ? nullptr : &records_[static_cast<std::size_t>(index)];
}

std::int64_t SourceHistory::ContentCountAt(TimePoint t) const {
  std::int64_t count = 0;
  for (const CaptureRecord& rec : records_) {
    if (rec.ContainsAt(t)) ++count;
  }
  return count;
}

SourceHistory SourceHistory::RestrictedTo(
    const std::vector<world::SubdomainId>& subdomains,
    const std::string& suffix) const {
  SourceSpec new_spec = spec_;
  new_spec.name += suffix;
  new_spec.scope.clear();
  for (world::SubdomainId sub : spec_.scope) {
    if (std::find(subdomains.begin(), subdomains.end(), sub) !=
        subdomains.end()) {
      new_spec.scope.push_back(sub);
    }
  }
  SourceHistory out(std::move(new_spec), entity_index_.size());
  for (const CaptureRecord& rec : records_) {
    if (std::find(subdomains.begin(), subdomains.end(), rec.subdomain) ==
        subdomains.end()) {
      continue;
    }
    Status status = out.AddRecord(rec);
    (void)status;  // Ids are unique by construction.
  }
  return out;
}

SourceHistory SourceHistory::WithAcquisitionDivisor(
    std::int64_t divisor) const {
  SourceSpec new_spec = spec_;
  new_spec.schedule = spec_.schedule.WithDivisor(divisor);
  SourceHistory out(new_spec, entity_index_.size());
  const UpdateSchedule& acq = new_spec.schedule;
  auto realign = [&](TimePoint day) {
    if (day == world::kNever) return world::kNever;
    return acq.NextUpdateAtOrAfter(day);
  };
  for (const CaptureRecord& rec : records_) {
    CaptureRecord aligned;
    aligned.entity = rec.entity;
    aligned.subdomain = rec.subdomain;
    aligned.deleted = realign(rec.deleted);
    TimePoint earliest = world::kNever;
    for (const auto& [version, day] : rec.version_captures) {
      const TimePoint new_day = realign(day);
      if (new_day >= aligned.deleted) continue;  // Deleted before acquired.
      aligned.version_captures.emplace_back(version, new_day);
      earliest = std::min(earliest, new_day);
    }
    std::sort(aligned.version_captures.begin(),
              aligned.version_captures.end(),
              [](const auto& a, const auto& b) {
                return a.second < b.second;
              });
    aligned.inserted = earliest;
    if (aligned.inserted == world::kNever) continue;  // Never acquired.
    // AddRecord cannot fail here: ids are in range and unique by
    // construction.
    Status status = out.AddRecord(std::move(aligned));
    (void)status;
  }
  return out;
}

}  // namespace freshsel::source
