#include "source/source_simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace freshsel::source {

namespace {

Status ValidateSpec(const SourceSpec& spec, const world::World& world) {
  if (spec.scope.empty()) {
    return Status::InvalidArgument("source scope must be non-empty");
  }
  for (world::SubdomainId sub : spec.scope) {
    if (sub >= world.domain().subdomain_count()) {
      return Status::InvalidArgument("scope subdomain out of range");
    }
  }
  if (spec.schedule.period < 1) {
    return Status::InvalidArgument("schedule period must be >= 1");
  }
  if (spec.schedule.phase < 0 || spec.schedule.phase >= spec.schedule.period) {
    return Status::InvalidArgument("schedule phase must be in [0, period)");
  }
  for (const CaptureSpec* cap :
       {&spec.insert_capture, &spec.update_capture, &spec.delete_capture}) {
    if (cap->miss_prob < 0.0 || cap->miss_prob > 1.0) {
      return Status::InvalidArgument("miss_prob must be in [0, 1]");
    }
    if (cap->delay_mean_days < 0.0) {
      return Status::InvalidArgument("delay_mean_days must be >= 0");
    }
  }
  if (spec.initial_awareness < 0.0 || spec.initial_awareness > 1.0) {
    return Status::InvalidArgument("initial_awareness must be in [0, 1]");
  }
  if (spec.visibility < 0.0 || spec.visibility > 1.0) {
    return Status::InvalidArgument("visibility must be in [0, 1]");
  }
  return Status::OK();
}

/// The entity's fixed obscurity in [0, 1): a SplitMix64 hash of the id, so
/// every source agrees on which entities are hard to find.
double Obscurity(world::EntityId id) {
  std::uint64_t x = static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

Result<SourceHistory> SimulateSource(const world::World& world,
                                     const SourceSpec& spec, Rng& rng) {
  FRESHSEL_RETURN_IF_ERROR(ValidateSpec(spec, world));

  SourceHistory history(spec, world.entity_count());
  const UpdateSchedule& schedule = spec.schedule;
  const TimePoint horizon = world.horizon();

  // Returns the publication day for a change occurring at `event_time`, or
  // kNever when missed / beyond the horizon.
  auto capture_day = [&](TimePoint event_time,
                         const CaptureSpec& cap) -> TimePoint {
    if (rng.Bernoulli(cap.miss_prob)) return world::kNever;
    double delay = cap.delay_mean_days > 0.0
                       ? rng.Exponential(1.0 / cap.delay_mean_days)
                       : 0.0;
    const double notice = static_cast<double>(event_time) + delay;
    const TimePoint day =
        schedule.NextUpdateAtOrAfter(static_cast<TimePoint>(std::ceil(notice)));
    return day > horizon ? world::kNever : day;
  };

  for (world::SubdomainId sub : spec.scope) {
    for (world::EntityId id : world.EntitiesInSubdomain(sub)) {
      if (Obscurity(id) >= spec.visibility) continue;  // Too hard to find.
      const world::EntityRecord& entity = world.entity(id);
      CaptureRecord record;
      record.entity = id;
      record.subdomain = sub;

      // Appearance (version 0).
      TimePoint appear_capture;
      if (entity.birth <= 0 && rng.Bernoulli(spec.initial_awareness)) {
        appear_capture = 0;  // Seeded content at the start of observation.
      } else {
        appear_capture = capture_day(entity.birth, spec.insert_capture);
      }

      // Deletion.
      if (entity.death != world::kNever) {
        record.deleted = capture_day(entity.death, spec.delete_capture);
      }

      // Value updates.
      if (appear_capture != world::kNever &&
          appear_capture < record.deleted) {
        record.version_captures.emplace_back(0, appear_capture);
      }
      std::uint32_t version = 0;
      for (TimePoint update_time : entity.update_times) {
        ++version;
        const TimePoint day = capture_day(update_time, spec.update_capture);
        if (day == world::kNever || day >= record.deleted) continue;
        record.version_captures.emplace_back(version, day);
      }
      if (record.version_captures.empty()) continue;  // Never in the source.

      std::sort(record.version_captures.begin(),
                record.version_captures.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second < b.second;
                  return a.first < b.first;
                });
      record.inserted = record.version_captures.front().second;
      FRESHSEL_RETURN_IF_ERROR(history.AddRecord(std::move(record)));
    }
  }
  return history;
}

Result<std::vector<SourceHistory>> SimulateSources(
    const world::World& world, const std::vector<SourceSpec>& specs,
    Rng& rng) {
  std::vector<SourceHistory> histories;
  histories.reserve(specs.size());
  for (const SourceSpec& spec : specs) {
    Rng child = rng.Fork();
    FRESHSEL_ASSIGN_OR_RETURN(SourceHistory history,
                              SimulateSource(world, spec, child));
    histories.push_back(std::move(history));
  }
  return histories;
}

}  // namespace freshsel::source
