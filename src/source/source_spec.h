#ifndef FRESHSEL_SOURCE_SOURCE_SPEC_H_
#define FRESHSEL_SOURCE_SOURCE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "source/schedule.h"
#include "world/domain.h"

namespace freshsel::source {

/// How effectively a source captures one type of world change: with
/// probability `miss_prob` the change is never captured; otherwise it is
/// noticed after an Exponential(1/delay_mean_days) delay and published at the
/// source's next update day.
///
/// This parametric ground truth generates the delay observations from which
/// the estimation layer learns the *nonparametric* Kaplan-Meier
/// effectiveness distributions G_i, G_d, G_u — the library never hands the
/// true parameters to the estimator.
struct CaptureSpec {
  double miss_prob = 0.0;        ///< In [0, 1].
  double delay_mean_days = 1.0;  ///< Mean of the exponential delay; >= 0.
};

/// Full ground-truth specification of one dynamic data source.
struct SourceSpec {
  std::string name;
  /// Subdomains this source observes (its slice of Omega, cf. Figure 2).
  std::vector<world::SubdomainId> scope;
  UpdateSchedule schedule;
  CaptureSpec insert_capture;
  CaptureSpec update_capture;
  CaptureSpec delete_capture;
  /// Probability that an entity alive at day 0 in scope is already in the
  /// source (up to date) at day 0.
  double initial_awareness = 1.0;
  /// Correlated-coverage knob: every entity has a fixed "obscurity" in
  /// [0, 1) (a deterministic hash of its id, identical for all sources),
  /// and this source can only ever capture entities with obscurity below
  /// `visibility`. Obscure entities are thus hard for *every* mainstream
  /// source - the correlated coverage gaps real corpora exhibit (the
  /// paper's union coverage climbs slowly from 0.80 to 0.97 across 43
  /// sources precisely because source misses are not independent).
  double visibility = 1.0;
};

}  // namespace freshsel::source

#endif  // FRESHSEL_SOURCE_SOURCE_SPEC_H_
