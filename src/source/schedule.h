#ifndef FRESHSEL_SOURCE_SCHEDULE_H_
#define FRESHSEL_SOURCE_SCHEDULE_H_

#include <cstdint>

#include "common/check.h"
#include "common/time_types.h"

namespace freshsel::source {

/// A source's fixed update schedule: the source refreshes its content on days
/// phase, phase + period, phase + 2*period, ...
///
/// `LatestUpdateAt` is the paper's T_S(t) operator (Equation 8): the latest
/// update day at or before t. `WithDivisor(m)` models acquiring only every
/// m-th update (the varying-frequency selection of Definition 4): the
/// acquisition schedule has period m * period and the same phase.
struct UpdateSchedule {
  std::int64_t period = 1;  ///< Days between updates; >= 1.
  TimePoint phase = 0;      ///< First update day; in [0, period).

  double frequency() const {
    FRESHSEL_DCHECK(period >= 1);
    return 1.0 / static_cast<double>(period);
  }

  /// Latest update day <= t; may be negative (phase - period) when the
  /// source has not updated yet by t.
  TimePoint LatestUpdateAt(TimePoint t) const {
    FRESHSEL_DCHECK(period >= 1);
    // Floor division that is correct for t < phase.
    TimePoint diff = t - phase;
    TimePoint q = diff >= 0 ? diff / period : -((-diff + period - 1) / period);
    return phase + q * period;
  }

  /// Earliest update day >= t.
  TimePoint NextUpdateAtOrAfter(TimePoint t) const {
    TimePoint latest = LatestUpdateAt(t);
    return latest >= t ? latest : latest + period;
  }

  bool IsUpdateDay(TimePoint t) const { return LatestUpdateAt(t) == t; }

  /// Schedule of acquiring every `divisor`-th update. Pre: divisor >= 1.
  UpdateSchedule WithDivisor(std::int64_t divisor) const {
    FRESHSEL_CHECK(divisor >= 1) << "divisor=" << divisor;
    return UpdateSchedule{period * divisor, phase};
  }
};

}  // namespace freshsel::source

#endif  // FRESHSEL_SOURCE_SCHEDULE_H_
