#include "stats/weibull.h"

#include <cmath>
#include <limits>

namespace freshsel::stats {

namespace {

constexpr double kMinDuration = 1e-9;

/// Profile-likelihood score in the shape parameter k: the MLE shape is the
/// root of
///   1/k + mean_{events}(ln x) - sum(x^k ln x) / sum(x^k) = 0,
/// with censored observations contributing to the power sums only.
double ShapeScore(const std::vector<CensoredObservation>& obs, double k,
                  double event_log_mean) {
  double power_sum = 0.0;
  double power_log_sum = 0.0;
  for (const CensoredObservation& o : obs) {
    const double x = std::max(o.duration, kMinDuration);
    const double xk = std::pow(x, k);
    power_sum += xk;
    power_log_sum += xk * std::log(x);
  }
  return 1.0 / k + event_log_mean - power_log_sum / power_sum;
}

}  // namespace

Result<WeibullDistribution> WeibullDistribution::Create(double shape,
                                                        double scale) {
  if (!(shape > 0.0) || !std::isfinite(shape)) {
    return Status::InvalidArgument("Weibull shape must be finite and > 0");
  }
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    return Status::InvalidArgument("Weibull scale must be finite and > 0");
  }
  return WeibullDistribution(shape, scale);
}

double WeibullDistribution::Mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double WeibullDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  x = std::max(x, kMinDuration);
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double WeibullDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double WeibullDistribution::Survival(double x) const {
  return 1.0 - Cdf(x);
}

Result<WeibullDistribution> FitWeibullCensoredMle(
    const std::vector<CensoredObservation>& observations) {
  std::size_t events = 0;
  double event_log_sum = 0.0;
  double duration_sum = 0.0;
  for (const CensoredObservation& obs : observations) {
    if (obs.duration < 0.0) {
      return Status::InvalidArgument("durations must be non-negative");
    }
    duration_sum += obs.duration;
    if (obs.observed) {
      ++events;
      event_log_sum += std::log(std::max(obs.duration, kMinDuration));
    }
  }
  if (events == 0) {
    return Status::FailedPrecondition(
        "Weibull MLE needs at least one observed event");
  }
  if (duration_sum <= 0.0) {
    return Status::FailedPrecondition(
        "Weibull MLE needs positive total duration");
  }
  const double event_log_mean =
      event_log_sum / static_cast<double>(events);

  // Bisection on the monotone-decreasing shape score over [lo, hi].
  double lo = 1e-2;
  double hi = 1e2;
  double score_lo = ShapeScore(observations, lo, event_log_mean);
  double score_hi = ShapeScore(observations, hi, event_log_mean);
  if (score_lo < 0.0 || score_hi > 0.0) {
    // Degenerate sample (e.g. all equal durations); fall back to the
    // nearest bracket end.
    const double k = score_lo < 0.0 ? lo : hi;
    const double scale = std::pow(
        [&] {
          double power_sum = 0.0;
          for (const CensoredObservation& o : observations) {
            power_sum += std::pow(std::max(o.duration, kMinDuration), k);
          }
          return power_sum / static_cast<double>(events);
        }(),
        1.0 / k);
    return WeibullDistribution::Create(k, scale);
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ShapeScore(observations, mid, event_log_mean) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double shape = 0.5 * (lo + hi);

  // lambda^k = sum(x^k) / r.
  double power_sum = 0.0;
  for (const CensoredObservation& obs : observations) {
    power_sum += std::pow(std::max(obs.duration, kMinDuration), shape);
  }
  const double scale =
      std::pow(power_sum / static_cast<double>(events), 1.0 / shape);
  return WeibullDistribution::Create(shape, scale);
}

double WeibullCensoredLogLikelihood(
    const std::vector<CensoredObservation>& observations, double shape,
    double scale) {
  Result<WeibullDistribution> model =
      WeibullDistribution::Create(shape, scale);
  if (!model.ok()) return -std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (const CensoredObservation& obs : observations) {
    const double x = std::max(obs.duration, kMinDuration);
    if (obs.observed) {
      total += std::log(std::max(model->Pdf(x), 1e-300));
    } else {
      total += std::log(std::max(model->Survival(x), 1e-300));
    }
  }
  return total;
}

}  // namespace freshsel::stats
