#ifndef FRESHSEL_STATS_EXPONENTIAL_H_
#define FRESHSEL_STATS_EXPONENTIAL_H_

#include <vector>

#include "common/result.h"

namespace freshsel::stats {

/// Exponential(rate) distribution: the paper's model for entity lifespans and
/// inter-update gaps (Section 4.1.1).
class ExponentialDistribution {
 public:
  /// Returns InvalidArgument unless rate > 0.
  static Result<ExponentialDistribution> Create(double rate);

  double rate() const { return rate_; }
  double mean() const { return 1.0 / rate_; }

  /// f(x) = rate * exp(-rate x) for x >= 0, else 0.
  double Pdf(double x) const;
  /// F(x) = 1 - exp(-rate x) for x >= 0, else 0.
  double Cdf(double x) const;
  /// S(x) = 1 - F(x).
  double Survival(double x) const;

 private:
  explicit ExponentialDistribution(double rate) : rate_(rate) {}
  double rate_;
};

/// One duration observation for censored fitting: `duration` is either the
/// full lifespan (event observed) or a lower bound (right-censored at the end
/// of the historical window T).
struct CensoredObservation {
  double duration = 0.0;
  bool observed = true;  ///< false => right-censored.
};

/// MLE of the exponential rate under right censoring (the paper's
/// Equation 7):
///   rate^-1 = (total duration of all observations) / (#observed events).
/// Returns FailedPrecondition when no event was observed or total duration is
/// zero (the rate would be degenerate).
Result<double> FitExponentialCensoredMle(
    const std::vector<CensoredObservation>& observations);

/// Convenience overload for fully observed samples.
Result<double> FitExponentialMle(const std::vector<double>& durations);

/// Kolmogorov-Smirnov distance between the empirical CDF of the *observed*
/// durations and Exponential(rate); a cheap goodness-of-fit signal for the
/// Figure 5(b) experiment.
Result<double> ExponentialKsDistance(const std::vector<double>& durations,
                                     double rate);

}  // namespace freshsel::stats

#endif  // FRESHSEL_STATS_EXPONENTIAL_H_
