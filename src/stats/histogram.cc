#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace freshsel::stats {

Result<Histogram> Histogram::Create(double lo, double hi,
                                    std::size_t bin_count) {
  if (!(lo < hi)) {
    return Status::InvalidArgument("Histogram range must satisfy lo < hi");
  }
  if (bin_count == 0) {
    return Status::InvalidArgument("Histogram needs at least one bin");
  }
  return Histogram(lo, hi, bin_count);
}

Histogram::Histogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(bin_count)),
      counts_(bin_count, 0.0) {}

void Histogram::Add(double value, double weight) {
  double offset = (value - lo_) / width_;
  std::int64_t index = static_cast<std::int64_t>(std::floor(offset));
  index = std::clamp<std::int64_t>(
      index, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(index)] += weight;
  total_ += weight;
}

std::vector<double> Histogram::NormalizedMass() const {
  std::vector<double> mass(counts_.size(), 0.0);
  if (total_ <= 0.0) return mass;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    mass[i] = counts_[i] / total_;
  }
  return mass;
}

std::vector<double> Histogram::Density() const {
  std::vector<double> density = NormalizedMass();
  for (double& d : density) d /= width_;
  return density;
}

void CountHistogram::Add(std::int64_t value) {
  if (value < 0) value = 0;
  const std::size_t index = static_cast<std::size_t>(value);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  ++counts_[index];
  ++total_;
}

std::int64_t CountHistogram::max_value() const {
  return counts_.empty() ? 0 : static_cast<std::int64_t>(counts_.size()) - 1;
}

std::size_t CountHistogram::CountOf(std::int64_t value) const {
  if (value < 0 || static_cast<std::size_t>(value) >= counts_.size()) return 0;
  return counts_[static_cast<std::size_t>(value)];
}

std::vector<double> CountHistogram::EmpiricalPmf() const {
  std::vector<double> pmf(counts_.size(), 0.0);
  if (total_ == 0) return pmf;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    pmf[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return pmf;
}

}  // namespace freshsel::stats
