#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace freshsel::stats {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - mean) * (v - mean);
  return accum / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double RelativeError(double predicted, double actual, double epsilon) {
  // With epsilon <= 0 and actual == 0 this would divide 0 by 0; the floor
  // exists precisely to keep the paper's error metric finite.
  FRESHSEL_CHECK(epsilon > 0.0) << "epsilon must be positive, got " << epsilon;
  const double denom = std::max(std::fabs(actual), epsilon);
  return std::fabs(predicted - actual) / denom;
}

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  // Welford update.
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

}  // namespace freshsel::stats
