#include "stats/poisson.h"

#include <cmath>
#include <cstdint>

namespace freshsel::stats {

Result<PoissonDistribution> PoissonDistribution::Create(double lambda) {
  if (lambda < 0.0 || !std::isfinite(lambda)) {
    return Status::InvalidArgument("Poisson intensity must be finite and >= 0");
  }
  return PoissonDistribution(lambda);
}

double PoissonDistribution::Pmf(std::int64_t k) const {
  if (k < 0) return 0.0;
  if (lambda_ == 0.0) return k == 0 ? 1.0 : 0.0;
  const double kd = static_cast<double>(k);
  return std::exp(kd * std::log(lambda_) - lambda_ - std::lgamma(kd + 1.0));
}

double PoissonDistribution::Cdf(std::int64_t k) const {
  if (k < 0) return 0.0;
  double total = 0.0;
  for (std::int64_t i = 0; i <= k; ++i) total += Pmf(i);
  return total > 1.0 ? 1.0 : total;
}

Result<double> FitPoissonMle(const std::vector<std::int64_t>& counts) {
  if (counts.empty()) {
    return Status::InvalidArgument("Poisson MLE needs at least one count");
  }
  double total = 0.0;
  for (std::int64_t c : counts) {
    if (c < 0) {
      return Status::InvalidArgument("Poisson counts must be non-negative");
    }
    total += static_cast<double>(c);
  }
  return total / static_cast<double>(counts.size());
}

Result<ChiSquareResult> PoissonChiSquare(const CountHistogram& observed,
                                         double lambda, double min_expected,
                                         int fitted_params) {
  if (observed.total() == 0) {
    return Status::InvalidArgument("empty observation histogram");
  }
  FRESHSEL_ASSIGN_OR_RETURN(PoissonDistribution model,
                            PoissonDistribution::Create(lambda));
  const double n = static_cast<double>(observed.total());
  const std::int64_t max_outcome = observed.max_value();

  // Build merged cells left-to-right so each expected count >= min_expected;
  // the final cell absorbs the upper tail P[N > max_outcome].
  struct Cell {
    double observed = 0.0;
    double expected = 0.0;
  };
  std::vector<Cell> cells;
  Cell current;
  for (std::int64_t k = 0; k <= max_outcome; ++k) {
    current.observed += static_cast<double>(observed.CountOf(k));
    current.expected += n * model.Pmf(k);
    if (current.expected >= min_expected) {
      cells.push_back(current);
      current = Cell{};
    }
  }
  // Upper tail beyond the largest observed outcome.
  current.expected += n * (1.0 - model.Cdf(max_outcome));
  if (!cells.empty()) {
    cells.back().observed += current.observed;
    cells.back().expected += current.expected;
  } else {
    cells.push_back(current);
  }

  if (cells.size() < 3) {
    return Status::FailedPrecondition(
        "too few cells for a chi-square test after merging");
  }
  ChiSquareResult result;
  result.cells = cells.size();
  for (const Cell& cell : cells) {
    if (cell.expected > 0.0) {
      const double diff = cell.observed - cell.expected;
      result.statistic += diff * diff / cell.expected;
    }
  }
  result.dof = static_cast<std::int64_t>(cells.size()) - 1 - fitted_params;
  if (result.dof < 1) result.dof = 1;
  result.reduced = result.statistic / static_cast<double>(result.dof);
  return result;
}

}  // namespace freshsel::stats
