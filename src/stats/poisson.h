#ifndef FRESHSEL_STATS_POISSON_H_
#define FRESHSEL_STATS_POISSON_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "stats/histogram.h"

namespace freshsel::stats {

/// Poisson(lambda) distribution: the paper's model for the number of entity
/// appearances / disappearances / value changes per time unit (Section 4.1.1,
/// Equation 6).
class PoissonDistribution {
 public:
  /// Returns InvalidArgument when lambda < 0.
  static Result<PoissonDistribution> Create(double lambda);

  double lambda() const { return lambda_; }
  double mean() const { return lambda_; }
  double variance() const { return lambda_; }

  /// P[N = k]; 0 for negative k. Computed in log space for stability.
  double Pmf(std::int64_t k) const;

  /// P[N <= k]; 0 for negative k.
  double Cdf(std::int64_t k) const;

 private:
  explicit PoissonDistribution(double lambda) : lambda_(lambda) {}
  double lambda_;
};

/// Maximum-likelihood estimate of the Poisson intensity: the sample mean of
/// per-interval counts (the paper's "average rate of data appearances").
/// Returns InvalidArgument for an empty sample.
Result<double> FitPoissonMle(const std::vector<std::int64_t>& counts);

/// Result of a chi-square goodness-of-fit test of observed counts against a
/// Poisson model.
struct ChiSquareResult {
  double statistic = 0.0;       ///< Sum of (obs-exp)^2/exp over merged cells.
  std::int64_t dof = 0;         ///< Cells - 1 - #fitted params.
  double reduced = 0.0;         ///< statistic / dof (1 ~= good fit).
  std::size_t cells = 0;        ///< Number of (merged) cells used.
};

/// Chi-square GoF of `observed` per-outcome frequencies against
/// Poisson(`lambda`); adjacent outcomes are merged until each expected cell
/// count is at least `min_expected`. `fitted_params` is subtracted from the
/// degrees of freedom (1 when lambda was estimated from the same data).
/// Returns FailedPrecondition when fewer than 3 cells survive merging.
Result<ChiSquareResult> PoissonChiSquare(const CountHistogram& observed,
                                         double lambda,
                                         double min_expected = 5.0,
                                         int fitted_params = 1);

}  // namespace freshsel::stats

#endif  // FRESHSEL_STATS_POISSON_H_
