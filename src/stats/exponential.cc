#include "stats/exponential.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace freshsel::stats {

Result<ExponentialDistribution> ExponentialDistribution::Create(double rate) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    return Status::InvalidArgument("exponential rate must be finite and > 0");
  }
  return ExponentialDistribution(rate);
}

double ExponentialDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  return rate_ * std::exp(-rate_ * x);
}

double ExponentialDistribution::Cdf(double x) const {
  if (x < 0.0) return 0.0;
  const double cdf = 1.0 - std::exp(-rate_ * x);
  FRESHSEL_DCHECK_PROB(cdf);
  return cdf;
}

double ExponentialDistribution::Survival(double x) const {
  if (x < 0.0) return 1.0;
  return std::exp(-rate_ * x);
}

Result<double> FitExponentialCensoredMle(
    const std::vector<CensoredObservation>& observations) {
  double total_duration = 0.0;
  std::size_t events = 0;
  for (const CensoredObservation& obs : observations) {
    if (obs.duration < 0.0) {
      return Status::InvalidArgument("durations must be non-negative");
    }
    total_duration += obs.duration;
    if (obs.observed) ++events;
  }
  if (events == 0) {
    return Status::FailedPrecondition(
        "censored exponential MLE needs at least one observed event");
  }
  if (total_duration <= 0.0) {
    return Status::FailedPrecondition(
        "censored exponential MLE needs positive total duration");
  }
  return static_cast<double>(events) / total_duration;
}

Result<double> FitExponentialMle(const std::vector<double>& durations) {
  std::vector<CensoredObservation> observations;
  observations.reserve(durations.size());
  for (double d : durations) observations.push_back({d, true});
  return FitExponentialCensoredMle(observations);
}

Result<double> ExponentialKsDistance(const std::vector<double>& durations,
                                     double rate) {
  if (durations.empty()) {
    return Status::InvalidArgument("empty sample");
  }
  FRESHSEL_ASSIGN_OR_RETURN(ExponentialDistribution model,
                            ExponentialDistribution::Create(rate));
  std::vector<double> sorted = durations;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double distance = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double model_cdf = model.Cdf(sorted[i]);
    const double ecdf_hi = static_cast<double>(i + 1) / n;
    const double ecdf_lo = static_cast<double>(i) / n;
    distance = std::max(distance, std::fabs(model_cdf - ecdf_hi));
    distance = std::max(distance, std::fabs(model_cdf - ecdf_lo));
  }
  return distance;
}

}  // namespace freshsel::stats
