#ifndef FRESHSEL_STATS_STEP_FUNCTION_H_
#define FRESHSEL_STATS_STEP_FUNCTION_H_

#include <utility>
#include <vector>

#include "common/result.h"

namespace freshsel::stats {

/// A right-continuous non-decreasing step function on [0, +inf), used for
/// empirical CDFs: the Kaplan-Meier effectiveness distributions G_i, G_d,
/// G_u of Section 4.1.2 are StepFunctions.
///
/// Value is `initial` on [0, x_0), then jumps to y_k at each knot x_k.
/// Evaluate(x) for x < 0 returns 0 (nothing is captured before it happens).
class StepFunction {
 public:
  /// The identically-`value` function (clamped to [0, 1]).
  static StepFunction Constant(double value);

  /// Builds from knots (x_k, y_k). Returns InvalidArgument unless the x_k
  /// are strictly increasing and non-negative and the y_k are non-decreasing
  /// within [0, 1].
  static Result<StepFunction> FromKnots(
      std::vector<std::pair<double, double>> knots, double initial = 0.0);

  /// f(x): 0 for x < 0; `initial` on [0, x_0); y_k on [x_k, x_{k+1}).
  double Evaluate(double x) const;

  /// Limit value as x -> +inf (the plateau; < 1 when some events are never
  /// captured).
  double FinalValue() const;

  const std::vector<std::pair<double, double>>& knots() const {
    return knots_;
  }
  double initial() const { return initial_; }

 private:
  StepFunction(std::vector<std::pair<double, double>> knots, double initial)
      : knots_(std::move(knots)), initial_(initial) {}

  std::vector<std::pair<double, double>> knots_;
  double initial_ = 0.0;
};

}  // namespace freshsel::stats

#endif  // FRESHSEL_STATS_STEP_FUNCTION_H_
