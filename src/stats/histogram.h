#ifndef FRESHSEL_STATS_HISTOGRAM_H_
#define FRESHSEL_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace freshsel::stats {

/// Fixed-width-bin histogram over [lo, hi); values outside the range are
/// clamped into the first/last bin. Used for the paper's delay histograms
/// (Figure 7) and the appearance-count fits (Figures 5, 6).
class Histogram {
 public:
  /// Returns InvalidArgument unless lo < hi and bin_count > 0.
  static Result<Histogram> Create(double lo, double hi,
                                  std::size_t bin_count);

  void Add(double value, double weight = 1.0);

  std::size_t bin_count() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }
  double total_weight() const { return total_; }

  /// Raw weight in bin `index`.
  double BinWeight(std::size_t index) const { return counts_[index]; }
  /// Inclusive lower edge of bin `index`.
  double BinLowerEdge(std::size_t index) const {
    return lo_ + static_cast<double>(index) * width_;
  }
  /// Midpoint of bin `index`.
  double BinCenter(std::size_t index) const {
    return BinLowerEdge(index) + width_ / 2.0;
  }

  /// Probability mass per bin (weights normalized to sum 1); all zeros when
  /// the histogram is empty.
  std::vector<double> NormalizedMass() const;

  /// Probability density per bin (mass / bin width).
  std::vector<double> Density() const;

 private:
  Histogram(double lo, double hi, std::size_t bin_count);

  double lo_;
  double hi_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

/// Histogram over non-negative integer outcomes (counts per day); convenient
/// for Poisson goodness-of-fit.
class CountHistogram {
 public:
  void Add(std::int64_t value);

  /// Largest value observed (0 when empty).
  std::int64_t max_value() const;
  std::size_t total() const { return total_; }

  /// Observed frequency of outcome `value` (0 when unobserved).
  std::size_t CountOf(std::int64_t value) const;

  /// Empirical probability of each outcome in [0, max_value()].
  std::vector<double> EmpiricalPmf() const;

 private:
  std::vector<std::size_t> counts_;  // counts_[v] = #observations equal to v.
  std::size_t total_ = 0;
};

}  // namespace freshsel::stats

#endif  // FRESHSEL_STATS_HISTOGRAM_H_
