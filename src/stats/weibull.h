#ifndef FRESHSEL_STATS_WEIBULL_H_
#define FRESHSEL_STATS_WEIBULL_H_

#include <vector>

#include "common/result.h"
#include "stats/exponential.h"

namespace freshsel::stats {

/// Weibull(shape k, scale lambda) distribution. The paper *assumes*
/// exponential lifespans (Weibull with k = 1); this class exists to test
/// that assumption on data and to stress the estimator with worlds that
/// violate it (see bench_model_robustness).
class WeibullDistribution {
 public:
  /// Returns InvalidArgument unless shape > 0 and scale > 0.
  static Result<WeibullDistribution> Create(double shape, double scale);

  double shape() const { return shape_; }
  double scale() const { return scale_; }
  /// scale * Gamma(1 + 1/shape).
  double Mean() const;

  double Pdf(double x) const;
  double Cdf(double x) const;
  double Survival(double x) const;

 private:
  WeibullDistribution(double shape, double scale)
      : shape_(shape), scale_(scale) {}
  double shape_;
  double scale_;
};

/// Maximum-likelihood Weibull fit under right censoring, solved by
/// bisection on the shape's profile-likelihood score. Returns
/// FailedPrecondition when no event was observed or all durations are
/// zero, InvalidArgument on negative durations.
Result<WeibullDistribution> FitWeibullCensoredMle(
    const std::vector<CensoredObservation>& observations);

/// Censored log-likelihood of `observations` under Weibull(shape, scale);
/// pass shape = 1 to score the exponential fit on the same footing.
/// Durations of zero are clamped to a small epsilon.
double WeibullCensoredLogLikelihood(
    const std::vector<CensoredObservation>& observations, double shape,
    double scale);

}  // namespace freshsel::stats

#endif  // FRESHSEL_STATS_WEIBULL_H_
