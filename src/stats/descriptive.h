#ifndef FRESHSEL_STATS_DESCRIPTIVE_H_
#define FRESHSEL_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace freshsel::stats {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator); 0 when n < 2.
double Variance(const std::vector<double>& values);

/// Population standard deviation of `values` around their mean.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0, 1]; 0 for an empty input.
double Quantile(std::vector<double> values, double q);

/// |predicted - actual| / max(|actual|, epsilon): the paper's relative
/// prediction error (Figures 9-11).
double RelativeError(double predicted, double actual,
                     double epsilon = 1e-12);

/// Streaming accumulator for mean/min/max/variance without storing samples.
class RunningStats {
 public:
  void Add(double value);

  /// Pools another accumulator into this one (parallel-merge of Welford
  /// state).
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// Unbiased sample variance; 0 when count < 2.
  double variance() const;
  double sum() const { return count_ > 0 ? mean_ * count_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace freshsel::stats

#endif  // FRESHSEL_STATS_DESCRIPTIVE_H_
