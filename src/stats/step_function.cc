#include "stats/step_function.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace freshsel::stats {

StepFunction StepFunction::Constant(double value) {
  value = std::clamp(value, 0.0, 1.0);
  return StepFunction({}, value);
}

Result<StepFunction> StepFunction::FromKnots(
    std::vector<std::pair<double, double>> knots, double initial) {
  if (initial < 0.0 || initial > 1.0) {
    return Status::InvalidArgument("initial value must be in [0, 1]");
  }
  double prev_x = -1.0;
  double prev_y = initial;
  for (const auto& [x, y] : knots) {
    if (!(x >= 0.0) || !std::isfinite(x)) {
      return Status::InvalidArgument("knot x must be finite and >= 0");
    }
    if (x <= prev_x) {
      return Status::InvalidArgument("knot x must be strictly increasing");
    }
    if (y < prev_y - 1e-12 || y > 1.0 + 1e-12) {
      return Status::InvalidArgument(
          "knot y must be non-decreasing within [0, 1]");
    }
    prev_x = x;
    prev_y = y;
  }
  for (auto& [x, y] : knots) y = std::clamp(y, 0.0, 1.0);
  return StepFunction(std::move(knots), initial);
}

double StepFunction::Evaluate(double x) const {
  FRESHSEL_DCHECK(!std::isnan(x)) << "StepFunction::Evaluate(NaN)";
  if (x < 0.0) return 0.0;
  // First knot with knot.x > x; the value is carried by the previous knot.
  auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](double value, const std::pair<double, double>& knot) {
        return value < knot.first;
      });
  if (it == knots_.begin()) return initial_;
  return std::prev(it)->second;
}

double StepFunction::FinalValue() const {
  return knots_.empty() ? initial_ : knots_.back().second;
}

}  // namespace freshsel::stats
