#include "stats/kaplan_meier.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace freshsel::stats {

void KaplanMeierEstimator::Add(double duration, bool observed) {
  FRESHSEL_CHECK_FINITE(duration);
  if (duration < 0.0) duration = 0.0;
  observations_.push_back({duration, observed});
  if (observed) ++observed_events_;
}

Result<std::vector<KaplanMeierEstimator::KnotWithError>>
KaplanMeierEstimator::FitWithStdError() const {
  if (observations_.empty()) {
    return Status::FailedPrecondition("Kaplan-Meier fit needs observations");
  }
  if (observed_events_ == 0) {
    // Fully right-censored sample: there is no event-time knot to attach a
    // Greenwood error to, so report that instead of an empty band.
    return Status::FailedPrecondition(
        "Kaplan-Meier standard errors need at least one observed event");
  }
  std::vector<CensoredObservation> sorted = observations_;
  std::sort(sorted.begin(), sorted.end(),
            [](const CensoredObservation& a, const CensoredObservation& b) {
              if (a.duration != b.duration) return a.duration < b.duration;
              return a.observed && !b.observed;
            });
  std::vector<KnotWithError> knots;
  double survival = 1.0;
  double greenwood = 0.0;  // Running sum d_i / (n_i (n_i - d_i)).
  std::size_t at_risk = sorted.size();
  std::size_t i = 0;
  while (i < sorted.size()) {
    const double t = sorted[i].duration;
    std::size_t events = 0;
    std::size_t censored = 0;
    while (i < sorted.size() && sorted[i].duration == t) {
      if (sorted[i].observed) {
        ++events;
      } else {
        ++censored;
      }
      ++i;
    }
    if (events > 0) {
      const double n = static_cast<double>(at_risk);
      const double d = static_cast<double>(events);
      survival *= 1.0 - d / n;
      if (n > d) greenwood += d / (n * (n - d));
      FRESHSEL_DCHECK_PROB(survival);
      const double variance =
          survival * survival * greenwood;  // Greenwood's formula.
      knots.push_back({t, 1.0 - survival, std::sqrt(variance)});
    }
    at_risk -= events + censored;
  }
  return knots;
}

Result<StepFunction> KaplanMeierEstimator::Fit() const {
  if (observations_.empty()) {
    return Status::FailedPrecondition("Kaplan-Meier fit needs observations");
  }
  if (observed_events_ == 0) {
    return StepFunction::Constant(0.0);
  }

  // Sort by duration; at equal durations process events before censorings
  // (the censored subject is considered at risk at that time).
  std::vector<CensoredObservation> sorted = observations_;
  std::sort(sorted.begin(), sorted.end(),
            [](const CensoredObservation& a, const CensoredObservation& b) {
              if (a.duration != b.duration) return a.duration < b.duration;
              return a.observed && !b.observed;
            });

  std::vector<std::pair<double, double>> knots;
  double survival = 1.0;
  std::size_t at_risk = sorted.size();
  std::size_t i = 0;
  while (i < sorted.size()) {
    const double t = sorted[i].duration;
    std::size_t events = 0;
    std::size_t censored = 0;
    while (i < sorted.size() && sorted[i].duration == t) {
      if (sorted[i].observed) {
        ++events;
      } else {
        ++censored;
      }
      ++i;
    }
    if (events > 0) {
      survival *= 1.0 - static_cast<double>(events) /
                            static_cast<double>(at_risk);
      // The KM estimate must stay a monotone step function in [0, 1]
      // (Section 4.1.2): each factor is in [0, 1), so survival only falls.
      FRESHSEL_DCHECK_PROB(survival);
      FRESHSEL_DCHECK(knots.empty() || 1.0 - survival >= knots.back().second)
          << "Kaplan-Meier CDF must be non-decreasing";
      knots.emplace_back(t, 1.0 - survival);
    }
    at_risk -= events + censored;
  }
  return StepFunction::FromKnots(std::move(knots), /*initial=*/0.0);
}

}  // namespace freshsel::stats
