#ifndef FRESHSEL_STATS_KAPLAN_MEIER_H_
#define FRESHSEL_STATS_KAPLAN_MEIER_H_

#include <vector>

#include "common/result.h"
#include "stats/exponential.h"
#include "stats/step_function.h"

namespace freshsel::stats {

/// Kaplan-Meier product-limit estimator over exact and right-censored
/// duration observations (Kaplan & Meier 1958), used by the paper to learn
/// the source-effectiveness distributions G_i, G_d, G_u from the exact and
/// right-censored delay histograms of Section 4.1.2 / Figure 7.
///
/// The estimated CDF F(t) = 1 - S(t) where
///   S(t) = prod_{t_i <= t} (1 - d_i / n_i),
/// d_i = #events at distinct event time t_i and n_i = #subjects still at
/// risk just before t_i. Censoring ties at an event time are conventionally
/// treated as still at risk at that time (censored after the event).
class KaplanMeierEstimator {
 public:
  /// Adds one duration; `observed` == false marks a right-censored
  /// observation (the event had not happened by the end of the window).
  void Add(double duration, bool observed);
  void Add(const CensoredObservation& obs) { Add(obs.duration, obs.observed); }

  std::size_t sample_size() const { return observations_.size(); }
  std::size_t observed_events() const { return observed_events_; }

  /// Fits the product-limit CDF. Returns FailedPrecondition when there is no
  /// observation at all; with zero *observed* events it returns the constant
  /// zero function (nothing is ever captured, matching the paper's G = 0
  /// fallback for sources that never pick up a change type).
  Result<StepFunction> Fit() const;

  /// One knot of the product-limit estimate with its Greenwood standard
  /// error: Var[S(t)] = S(t)^2 * sum_{t_i <= t} d_i / (n_i (n_i - d_i)).
  struct KnotWithError {
    double time = 0.0;
    double cdf = 0.0;
    double std_error = 0.0;
  };

  /// Fit() plus Greenwood standard errors per event-time knot - the
  /// uncertainty band around a learned effectiveness distribution. Returns
  /// FailedPrecondition when there is no observation or when every
  /// observation is right-censored (no event-time knot exists).
  Result<std::vector<KnotWithError>> FitWithStdError() const;

 private:
  std::vector<CensoredObservation> observations_;
  std::size_t observed_events_ = 0;
};

}  // namespace freshsel::stats

#endif  // FRESHSEL_STATS_KAPLAN_MEIER_H_
