#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cli/commands.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "obs/decision_log.h"
#include "obs/report.h"

namespace freshsel::cli {

namespace {

std::string FormatCount(std::uint64_t value) { return std::to_string(value); }

/// `freshsel report show RUN.json [--rounds N] [--top N]`: renders one run
/// report for humans - stages, run-level results, the hottest registry
/// counters, histogram percentiles, and the per-round decision table.
Status ShowReport(const ArgMap& args, const std::string& path,
                  std::ostream& out) {
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t max_rounds,
                            args.GetInt("rounds", 0));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t top, args.GetInt("top", 10));
  FRESHSEL_RETURN_IF_ERROR(CheckUnreadFlags(args));
  if (max_rounds < 0 || top < 0) {
    return Status::InvalidArgument("--rounds/--top must be >= 0");
  }
  FRESHSEL_ASSIGN_OR_RETURN(obs::RunReport report,
                            obs::RunReport::ReadJsonFile(path));

  out << "run: " << report.name << "\n";
  for (const auto& [key, value] : report.labels) {
    out << "  " << key << " = " << value << "\n";
  }

  if (!report.stages.empty()) {
    double total = 0.0;
    for (const obs::RunReport::Stage& stage : report.stages) {
      total += stage.seconds;
    }
    TablePrinter stages("Stages", {"stage", "seconds", "share"});
    for (const obs::RunReport::Stage& stage : report.stages) {
      stages.AddRow({stage.name, FormatDouble(stage.seconds, 6),
                     total > 0.0
                         ? FormatDouble(stage.seconds / total * 100.0, 1) + "%"
                         : "-"});
    }
    stages.Print(out);
  }

  if (!report.counters.empty() || !report.values.empty()) {
    TablePrinter results("Run results", {"key", "value"});
    for (const auto& [key, value] : report.counters) {
      results.AddRow({key, FormatCount(value)});
    }
    for (const auto& [key, value] : report.values) {
      results.AddRow({key, FormatDouble(value, 6)});
    }
    results.Print(out);
  }

  if (!report.metrics.counters.empty()) {
    // Hottest counters first: the interesting signal in a fat registry
    // snapshot is which code paths dominated, not the alphabet.
    std::vector<std::pair<std::string, std::uint64_t>> hot(
        report.metrics.counters.begin(), report.metrics.counters.end());
    std::stable_sort(hot.begin(), hot.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    const std::size_t limit =
        top == 0 ? hot.size()
                 : std::min(hot.size(), static_cast<std::size_t>(top));
    TablePrinter counters(
        StringPrintf("Hot counters (top %zu of %zu)", limit, hot.size()),
        {"counter", "count"});
    for (std::size_t i = 0; i < limit; ++i) {
      counters.AddRow({hot[i].first, FormatCount(hot[i].second)});
    }
    counters.Print(out);
  }

  if (!report.metrics.histograms.empty()) {
    TablePrinter histograms(
        "Histograms", {"histogram", "count", "mean", "p50", "p95", "p99"});
    for (const auto& [name, snapshot] : report.metrics.histograms) {
      histograms.AddRow({name, FormatCount(snapshot.count),
                         FormatDouble(snapshot.Mean(), 6),
                         FormatDouble(snapshot.Percentile(0.50), 6),
                         FormatDouble(snapshot.Percentile(0.95), 6),
                         FormatDouble(snapshot.Percentile(0.99), 6)});
    }
    histograms.Print(out);
  }

  const obs::DecisionLog& log = report.decision_log;
  for (const obs::DecisionDegradation& degraded : log.degraded()) {
    out << "degraded: " << degraded.source << " - " << degraded.reason
        << "\n";
  }
  if (!log.records().empty()) {
    const std::size_t limit =
        max_rounds == 0
            ? log.records().size()
            : std::min(log.records().size(),
                       static_cast<std::size_t>(max_rounds));
    TablePrinter decisions(
        "Decision log (" +
            (log.algorithm().empty() ? std::string("unknown")
                                     : log.algorithm()) +
            ")",
        {"round", "restart", "kind", "chosen", "gain", "score", "margin",
         "runner_up", "calls", "saved", "hits", "sample", "pool"});
    for (std::size_t i = 0; i < limit; ++i) {
      const obs::DecisionRecord& r = log.records()[i];
      decisions.AddRow(
          {FormatCount(r.round), FormatCount(r.restart),
           std::string(obs::DecisionKindName(r.kind)),
           r.kind == obs::DecisionKind::kSwap
               ? FormatCount(r.chosen) + "<-" + FormatCount(r.partner)
               : FormatCount(r.chosen),
           FormatDouble(r.gain, 6), FormatDouble(r.score, 6),
           r.has_runner_up ? FormatDouble(r.margin, 6) : "-",
           r.has_runner_up ? FormatCount(r.runner_up) : "-",
           FormatCount(r.oracle_calls), FormatCount(r.calls_saved),
           FormatCount(r.cache_hits),
           r.sample_size > 0 ? FormatCount(r.sample_size) : "-",
           FormatCount(r.pool_size)});
    }
    decisions.Print(out);
    if (limit < log.records().size()) {
      out << "... " << log.records().size() - limit
          << " more decisions (raise --rounds)\n";
    }
  }
  return Status::OK();
}

/// First decision index where two logs stop agreeing on (kind, chosen),
/// or the shorter length when one is a prefix of the other; SIZE_MAX when
/// the logs match exactly.
std::size_t DivergencePoint(const obs::DecisionLog& a,
                            const obs::DecisionLog& b) {
  const std::size_t common = std::min(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < common; ++i) {
    const obs::DecisionRecord& ra = a.records()[i];
    const obs::DecisionRecord& rb = b.records()[i];
    if (ra.kind != rb.kind || ra.chosen != rb.chosen ||
        ra.restart != rb.restart) {
      return i;
    }
  }
  if (a.records().size() != b.records().size()) return common;
  return static_cast<std::size_t>(-1);
}

std::string DescribeDecision(const obs::DecisionLog& log, std::size_t i) {
  if (i >= log.records().size()) return "(no decision)";
  const obs::DecisionRecord& r = log.records()[i];
  return StringPrintf("%s %u (gain %g)",
                      std::string(obs::DecisionKindName(r.kind)).c_str(),
                      r.chosen, r.gain);
}

/// `freshsel report diff A.json B.json`: counter / value / histogram
/// deltas between two runs, plus the first decision where the two
/// selection traces diverge.
Status DiffReports(const ArgMap& args, const std::string& path_a,
                   const std::string& path_b, std::ostream& out) {
  FRESHSEL_RETURN_IF_ERROR(CheckUnreadFlags(args));
  FRESHSEL_ASSIGN_OR_RETURN(obs::RunReport a,
                            obs::RunReport::ReadJsonFile(path_a));
  FRESHSEL_ASSIGN_OR_RETURN(obs::RunReport b,
                            obs::RunReport::ReadJsonFile(path_b));
  out << "A: " << path_a << " (" << a.name << ")\n"
      << "B: " << path_b << " (" << b.name << ")\n";

  TablePrinter counters("Counter deltas (A vs B)",
                        {"counter", "a", "b", "delta"});
  bool any_counter = false;
  auto diff_counters =
      [&](const std::map<std::string, std::uint64_t>& ca,
          const std::map<std::string, std::uint64_t>& cb) {
        std::vector<std::string> keys;
        for (const auto& [key, value] : ca) keys.push_back(key);
        for (const auto& [key, value] : cb) {
          if (!ca.count(key)) keys.push_back(key);
        }
        std::sort(keys.begin(), keys.end());
        for (const std::string& key : keys) {
          const auto ita = ca.find(key);
          const auto itb = cb.find(key);
          const std::int64_t va =
              ita == ca.end() ? 0 : static_cast<std::int64_t>(ita->second);
          const std::int64_t vb =
              itb == cb.end() ? 0 : static_cast<std::int64_t>(itb->second);
          if (va == vb) continue;
          any_counter = true;
          counters.AddRow({key, ita == ca.end() ? "-" : FormatCount(ita->second),
                           itb == cb.end() ? "-" : FormatCount(itb->second),
                           StringPrintf("%+lld",
                                        static_cast<long long>(vb - va))});
        }
      };
  diff_counters(a.counters, b.counters);
  diff_counters(a.metrics.counters, b.metrics.counters);
  if (any_counter) {
    counters.Print(out);
  } else {
    out << "counters: identical\n";
  }

  TablePrinter values("Value deltas (A vs B)", {"value", "a", "b", "delta"});
  bool any_value = false;
  for (const auto& [key, va] : a.values) {
    const auto itb = b.values.find(key);
    if (itb == b.values.end() || itb->second == va) continue;
    any_value = true;
    values.AddRow({key, FormatDouble(va, 6), FormatDouble(itb->second, 6),
                   FormatDouble(itb->second - va, 6)});
  }
  if (any_value) values.Print(out);

  TablePrinter histograms("Histogram deltas (A vs B)",
                          {"histogram", "count a", "count b", "p95 a",
                           "p95 b"});
  bool any_histogram = false;
  for (const auto& [name, ha] : a.metrics.histograms) {
    const auto itb = b.metrics.histograms.find(name);
    if (itb == b.metrics.histograms.end()) continue;
    if (ha.count == itb->second.count &&
        ha.Percentile(0.95) == itb->second.Percentile(0.95)) {
      continue;
    }
    any_histogram = true;
    histograms.AddRow({name, FormatCount(ha.count),
                       FormatCount(itb->second.count),
                       FormatDouble(ha.Percentile(0.95), 6),
                       FormatDouble(itb->second.Percentile(0.95), 6)});
  }
  if (any_histogram) histograms.Print(out);

  const std::size_t divergence =
      DivergencePoint(a.decision_log, b.decision_log);
  if (a.decision_log.records().empty() &&
      b.decision_log.records().empty()) {
    out << "decision logs: both empty\n";
  } else if (divergence == static_cast<std::size_t>(-1)) {
    out << "decision logs: identical selection order ("
        << a.decision_log.records().size() << " decisions)\n";
  } else {
    out << "decision logs diverge at decision " << divergence << ": A "
        << DescribeDecision(a.decision_log, divergence) << " vs B "
        << DescribeDecision(b.decision_log, divergence) << "\n";
  }
  return Status::OK();
}

/// True for metric keys that measure wall time or derived wall-time
/// ratios - machine-dependent by nature, excluded from regression bands.
bool IsTimingKey(const std::string& key) {
  return key.find("seconds") != std::string::npos ||
         key.find("speedup") != std::string::npos;
}

/// `freshsel report check-regression FRESH.json --baseline BASE.json
/// [--tolerance X] [--keys-only]`: every numeric key of the committed
/// baseline must exist in the fresh report and (unless --keys-only) stay
/// within the relative tolerance band; timing keys and gauges are skipped
/// (wall times and thread counts are machine-dependent). Extra fresh keys
/// are fine - new instrumentation is not a regression. Returns
/// FailedPrecondition (non-zero exit) when any key regresses.
Status CheckRegression(const ArgMap& args, const std::string& fresh_path,
                       std::ostream& out) {
  const std::string baseline_path = args.GetString("baseline", "");
  FRESHSEL_ASSIGN_OR_RETURN(double tolerance,
                            args.GetDouble("tolerance", 0.0));
  FRESHSEL_ASSIGN_OR_RETURN(bool keys_only, args.GetBool("keys-only", false));
  FRESHSEL_RETURN_IF_ERROR(CheckUnreadFlags(args));
  if (baseline_path.empty()) {
    return Status::InvalidArgument(
        "check-regression requires --baseline FILE");
  }
  if (tolerance < 0.0) {
    return Status::InvalidArgument("--tolerance must be >= 0");
  }
  FRESHSEL_ASSIGN_OR_RETURN(obs::RunReport fresh,
                            obs::RunReport::ReadJsonFile(fresh_path));
  FRESHSEL_ASSIGN_OR_RETURN(obs::RunReport baseline,
                            obs::RunReport::ReadJsonFile(baseline_path));

  std::size_t compared = 0;
  std::size_t skipped = 0;
  TablePrinter failures("Regressions",
                        {"key", "baseline", "fresh", "allowed"});
  std::size_t failed = 0;

  auto check = [&](const std::string& key, double base, const double* value) {
    if (IsTimingKey(key)) {
      ++skipped;
      return;
    }
    ++compared;
    if (value == nullptr) {
      ++failed;
      failures.AddRow({key, FormatDouble(base, 6), "(missing)", "-"});
      return;
    }
    if (keys_only) return;
    const double band = tolerance * std::fabs(base);
    if (std::fabs(*value - base) > band) {
      ++failed;
      failures.AddRow({key, FormatDouble(base, 6), FormatDouble(*value, 6),
                       StringPrintf("+/-%s", FormatDouble(band, 6).c_str())});
    }
  };
  auto check_counters =
      [&](const std::map<std::string, std::uint64_t>& base,
          const std::map<std::string, std::uint64_t>& value) {
        for (const auto& [key, base_count] : base) {
          const auto it = value.find(key);
          const double fresh_count =
              it == value.end() ? 0.0 : static_cast<double>(it->second);
          check(key, static_cast<double>(base_count),
                it == value.end() ? nullptr : &fresh_count);
        }
      };
  check_counters(baseline.counters, fresh.counters);
  check_counters(baseline.metrics.counters, fresh.metrics.counters);
  for (const auto& [key, base_value] : baseline.values) {
    const auto it = fresh.values.find(key);
    check(key, base_value, it == fresh.values.end() ? nullptr : &it->second);
  }
  // Gauges are skipped wholesale: pool_threads and friends describe the
  // machine, not the workload.
  skipped += baseline.metrics.gauges.size();

  if (failed > 0) {
    failures.Print(out);
    return Status::FailedPrecondition(StringPrintf(
        "%zu of %zu checked metrics regressed vs %s", failed, compared,
        baseline_path.c_str()));
  }
  out << "OK: " << compared << " metrics within "
      << (keys_only ? std::string("key-presence check")
                    : StringPrintf("%.3g relative tolerance", tolerance))
      << " of " << baseline_path << " (" << skipped
      << " timing/gauge keys skipped)\n";
  return Status::OK();
}

}  // namespace

Status RunReportCommand(const ArgMap& args, std::ostream& out) {
  const std::vector<std::string>& positionals = args.positionals();
  if (positionals.empty()) {
    return Status::InvalidArgument(
        "report requires a subcommand: show | diff | check-regression");
  }
  const std::string& subcommand = positionals[0];
  if (subcommand == "show") {
    if (positionals.size() != 2) {
      return Status::InvalidArgument("usage: report show RUN.json");
    }
    return ShowReport(args, positionals[1], out);
  }
  if (subcommand == "diff") {
    if (positionals.size() != 3) {
      return Status::InvalidArgument("usage: report diff A.json B.json");
    }
    return DiffReports(args, positionals[1], positionals[2], out);
  }
  if (subcommand == "check-regression") {
    if (positionals.size() != 2) {
      return Status::InvalidArgument(
          "usage: report check-regression FRESH.json --baseline BASE.json");
    }
    return CheckRegression(args, positionals[1], out);
  }
  return Status::InvalidArgument("unknown report subcommand: " + subcommand);
}

}  // namespace freshsel::cli
