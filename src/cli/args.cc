#include "cli/args.h"

#include <charconv>
#include <cstdint>

namespace freshsel::cli {

Result<ArgMap> ArgMap::Parse(int argc, const char* const* argv) {
  ArgMap args;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::size_t eq = token.find('=');
      if (eq != std::string::npos) {
        args.flags_[token.substr(2, eq - 2)] = token.substr(eq + 1);
      } else if (i + 1 >= argc ||
                 std::string(argv[i + 1]).rfind("--", 0) == 0) {
        // Bare boolean-style flag: `--strict` at end of line or followed
        // by the next flag.
        args.flags_[token.substr(2)] = "true";
      } else {
        args.flags_[token.substr(2)] = argv[++i];
      }
    } else if (args.command_.empty()) {
      args.command_ = token;
    } else {
      args.positionals_.push_back(token);
    }
  }
  return args;
}

std::string ArgMap::GetString(const std::string& key,
                              const std::string& fallback) const {
  read_[key] = true;
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

Result<std::int64_t> ArgMap::GetInt(const std::string& key,
                                    std::int64_t fallback) const {
  read_[key] = true;
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  std::int64_t value = 0;
  const char* begin = it->second.data();
  const char* end = begin + it->second.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("--" + key +
                                   " expects an integer, got: " +
                                   it->second);
  }
  return value;
}

Result<double> ArgMap::GetDouble(const std::string& key,
                                 double fallback) const {
  read_[key] = true;
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  // std::from_chars<double> is not available everywhere; strtod suffices.
  char* parse_end = nullptr;
  const double value = std::strtod(it->second.c_str(), &parse_end);
  if (parse_end == it->second.c_str() ||
      parse_end != it->second.c_str() + it->second.size()) {
    return Status::InvalidArgument("--" + key + " expects a number, got: " +
                                   it->second);
  }
  return value;
}

Result<bool> ArgMap::GetBool(const std::string& key, bool fallback) const {
  read_[key] = true;
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  return Status::InvalidArgument("--" + key + " expects true/false, got: " +
                                 it->second);
}

std::vector<std::string> ArgMap::UnreadFlags() const {
  std::vector<std::string> unread;
  for (const auto& [key, value] : flags_) {
    if (!read_.count(key)) unread.push_back(key);
  }
  return unread;
}

}  // namespace freshsel::cli
