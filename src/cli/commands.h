#ifndef FRESHSEL_CLI_COMMANDS_H_
#define FRESHSEL_CLI_COMMANDS_H_

#include <ostream>

#include "cli/args.h"
#include "serve/protocol.h"

namespace freshsel::cli {

/// The freshsel command-line interface. Three subcommands cover the
/// library's workflow on disk-resident data:
///
///   freshsel simulate --workload bl|gdelt --out DIR
///       [--seed N --scale X --locations N --categories N]
///     Generates a scenario and writes world.csv + source_NNN.csv +
///     manifest.csv into DIR.
///
///   freshsel characterize --dir DIR --t0 N
///     Loads a scenario directory, learns the change models and prints the
///     per-source characterization table (size, coverage, learned update
///     interval, capture-effectiveness plateaus).
///
///   freshsel select --dir DIR --t0 N
///       [--metric coverage|accuracy|freshness|mix --gain
///        linear|quad|step|data --algorithm greedy|maxsub|grasp|budgeted
///        --points N --stride N --budget X --max-divisor M --kappa K
///        --restarts R --seed S]
///     Learns models and runs time-aware source selection, printing the
///     chosen sources (with frequency divisors when --max-divisor > 1) and
///     the expected integration quality.
///
///   freshsel report show RUN.json | diff A.json B.json |
///       check-regression FRESH.json --baseline BASE.json
///     Inspects --metrics-out / --report-out run reports: `show` renders
///     the stages, hot counters, histogram percentiles and the per-round
///     selection decision table; `diff` prints counter/value deltas and
///     the first decision where two runs diverge; `check-regression`
///     compares a fresh bench report against a committed baseline with
///     per-metric tolerance bands and fails (non-zero exit) on regression.
///
/// All commands write human-readable tables to `out` and return a Status;
/// `RunMain` wraps them with error reporting for main().
Status RunSimulate(const ArgMap& args, std::ostream& out);
Status RunCharacterize(const ArgMap& args, std::ostream& out);
Status RunSelect(const ArgMap& args, std::ostream& out);
Status RunReportCommand(const ArgMap& args, std::ostream& out);

/// The selection daemon (`freshsel serve`, serve_command.cc): ingests
/// --dir once, then answers concurrent NDJSON queries on a unix socket or
/// loopback TCP until SIGTERM/SIGINT, draining in-flight work before
/// returning. `freshsel query` is the matching one-shot client; with the
/// default --op query it prints the response's `text` payload, which is
/// byte-identical to the equivalent batch `freshsel select` run.
Status RunServe(const ArgMap& args, std::ostream& out);
Status RunQuery(const ArgMap& args, std::ostream& out);

/// Shared argument hygiene: flags that were provided but never read are
/// typos; commands that take no positionals reject stray tokens.
Status CheckUnreadFlags(const ArgMap& args);
Status CheckNoPositionals(const ArgMap& args);

/// Reads the selection-query knobs shared by `select` (batch) and `query`
/// (daemon client) into wire QueryParams - one reader, so a flag added for
/// one command cannot silently diverge from the other.
Result<serve::QueryParams> ReadQueryParams(const ArgMap& args);

/// Dispatches on args.command(); prints usage on unknown commands.
int RunMain(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace freshsel::cli

#endif  // FRESHSEL_CLI_COMMANDS_H_
