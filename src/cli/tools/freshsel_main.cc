// The freshsel command-line tool. See cli/commands.h for usage.

#include <iostream>

#include "cli/commands.h"

int main(int argc, char** argv) {
  return freshsel::cli::RunMain(argc, argv, std::cout, std::cerr);
}
