#ifndef FRESHSEL_CLI_TOOLS_LINT_LIB_H_
#define FRESHSEL_CLI_TOOLS_LINT_LIB_H_

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

/// Core of the `freshsel_lint` tool: repo-specific static checks enforced
/// as a ctest (see DESIGN.md, "Analysis builds"). Split from the CLI main
/// so the rules are unit-testable on fixture files.
namespace freshsel::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;     ///< e.g. "no-rand", "include-guard".
  std::string message;
};

struct LintOptions {
  /// Enforce the no-bare-assert rule (off for test trees, where gtest
  /// helpers legitimately assert).
  bool assert_rule = true;
  /// Ban std::chrono::steady_clock outside the obs/ subtree: timing must
  /// go through the obs layer (obs/clock.h, obs/timer.h, or the
  /// FRESHSEL_OBS_* macros) so it is histogram-recordable and compiles out
  /// with FRESHSEL_OBS=OFF.
  bool obs_clock_rule = true;
  /// Include guards must read PREFIX + RELATIVE_PATH, uppercased.
  std::string guard_prefix = "FRESHSEL_";
};

/// Replaces comments and string/char literal contents with spaces so pattern
/// rules never fire on prose or quoted text; newlines are preserved.
std::string StripCommentsAndStrings(const std::string& src);

/// "common/bit_vector.h" -> "FRESHSEL_COMMON_BIT_VECTOR_H_".
std::string ExpectedGuard(const std::filesystem::path& relative,
                          const std::string& prefix);

/// Lints one file; `relative` (to the scan root) names the expected include
/// guard. Appends findings.
void LintFile(const std::filesystem::path& file,
              const std::filesystem::path& relative, const LintOptions& options,
              std::vector<Finding>* findings);

/// Scans files/directories (recursively; .h/.cc/.cpp). Returns all findings,
/// deterministically ordered. Unreadable paths produce an "io" finding.
std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintOptions& options,
                               std::size_t* files_scanned);

}  // namespace freshsel::lint

#endif  // FRESHSEL_CLI_TOOLS_LINT_LIB_H_
