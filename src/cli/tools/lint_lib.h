#ifndef FRESHSEL_CLI_TOOLS_LINT_LIB_H_
#define FRESHSEL_CLI_TOOLS_LINT_LIB_H_

#include <cstddef>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

/// Core of the `freshsel_lint` tool: a repo-specific rule engine enforced
/// as a ctest and a CI SARIF upload (see DESIGN.md §12). Split from the
/// CLI main so the rules are unit-testable on fixture files.
///
/// Every check is a registered rule with a stable kebab-case id
/// (`RuleCatalog`). Findings can be suppressed inline, one site at a time,
/// with a reason:
///
///   ignorable_call();  // FRESHSEL_LINT_ALLOW(<rule-id>): why it is fine
///
/// The marker suppresses the named rule on its own line and on the line
/// directly below (so it can sit above a long statement). A marker without
/// a `: reason` tail, naming an unknown rule, or matching no finding is
/// itself reported (rule `lint-allow`), keeping the suppression inventory
/// honest.
namespace freshsel::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;     ///< Rule id, e.g. "no-rand", "status-must-use".
  std::string message;
};

/// One engine rule. `fixable` marks rules `freshsel_lint --fix` can repair
/// mechanically (see ApplyFixes).
struct RuleInfo {
  std::string id;
  std::string summary;
  bool fixable = false;
};

/// Every registered rule, deterministically ordered by id. The catalog is
/// what `--list-rules` prints and what the SARIF `rules` array carries.
const std::vector<RuleInfo>& RuleCatalog();

/// True when `id` names a registered rule (including the engine's own
/// "io" and "lint-allow" reporting pseudo-rules).
bool IsKnownRule(const std::string& id);

struct LintOptions {
  /// Enforce the no-bare-assert rule (off for test trees, where gtest
  /// helpers legitimately assert).
  bool assert_rule = true;
  /// Ban std::chrono::steady_clock outside the obs/ subtree: timing must
  /// go through the obs layer (obs/clock.h, obs/timer.h, or the
  /// FRESHSEL_OBS_* macros) so it is histogram-recordable and compiles out
  /// with FRESHSEL_OBS=OFF.
  bool obs_clock_rule = true;
  /// Include guards must read PREFIX + RELATIVE_PATH, uppercased.
  std::string guard_prefix = "FRESHSEL_";
  /// Rule ids to skip entirely (e.g. {"status-must-use"}).
  std::set<std::string> disabled_rules;
};

/// Replaces comments and string/char literal contents with spaces so pattern
/// rules never fire on prose or quoted text; newlines are preserved.
std::string StripCommentsAndStrings(const std::string& src);

/// "common/bit_vector.h" -> "FRESHSEL_COMMON_BIT_VECTOR_H_".
std::string ExpectedGuard(const std::filesystem::path& relative,
                          const std::string& prefix);

/// One parsed FRESHSEL_LINT_ALLOW marker.
struct Suppression {
  std::size_t line = 0;      ///< Line the marker sits on.
  std::string rule;          ///< Rule id inside the parentheses.
  bool has_reason = false;   ///< Marker carries a ": reason" tail.
  bool used = false;         ///< Set by the engine when it eats a finding.
};

/// Extracts FRESHSEL_LINT_ALLOW(<rule-id>)[: reason] markers from raw file
/// text. String literals are ignored (markers live in comments), and a
/// parenthesized id that is not lowercase kebab/underscore - like the
/// literal placeholder above - is documentation, not a marker.
std::vector<Suppression> ParseSuppressions(const std::string& raw);

/// Function names declared in scanned files with a `Status` or `Result<T>`
/// return type; the status-must-use rule flags bare discarded calls to
/// them. Collected tree-wide first so cross-file calls are covered.
using StatusFunctions = std::set<std::string>;

/// Scans one file's stripped lines for Status/Result-returning function
/// declarations and definitions, adding the function names to `out`.
void CollectStatusFunctions(const std::string& stripped, StatusFunctions* out);

/// Lints one file; `relative` (to the scan root) names the expected include
/// guard and the path-scoped rule subtree (first component). Appends
/// unsuppressed findings. `status_functions` may be null to skip the
/// status-must-use rule (single-file mode without a collection pass).
void LintFile(const std::filesystem::path& file,
              const std::filesystem::path& relative, const LintOptions& options,
              const StatusFunctions* status_functions,
              std::vector<Finding>* findings);

/// Scans files/directories (recursively; .h/.cc/.cpp). Two passes: first
/// collects Status-returning function names across every file, then runs
/// all rules. Returns all findings, deterministically ordered. Unreadable
/// paths produce an "io" finding.
std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintOptions& options,
                               std::size_t* files_scanned);

/// Renders findings as the classic "file:line: [rule] message" text block.
std::string FindingsToText(const std::vector<Finding>& findings,
                           std::size_t files_scanned);

/// Renders findings as a machine-readable JSON object
/// ({"files_scanned": N, "findings": [...]}).
std::string FindingsToJson(const std::vector<Finding>& findings,
                           std::size_t files_scanned);

/// Renders findings as a SARIF 2.1.0 log (one run, driver "freshsel_lint",
/// the full RuleCatalog in tool.driver.rules, one result per finding) for
/// CI code-scanning upload.
std::string FindingsToSarif(const std::vector<Finding>& findings);

/// One mechanical repair `--fix` would perform.
struct FixEdit {
  std::string file;
  std::size_t line = 0;     ///< 1-based line the edit touches (inserts: the
                            ///< line the new text lands on).
  std::string rule;
  std::string before;       ///< Empty for pure insertions.
  std::string after;
};

/// Computes mechanical fixes for the fixable rules among `findings`
/// (iwyu-spot include insertion, failpoint-name rewrites). When `apply` is
/// true the files are rewritten in place; otherwise this is the dry run.
/// Returns the edits (for diff printing), deterministically ordered.
std::vector<FixEdit> ApplyFixes(const std::vector<Finding>& findings,
                                bool apply);

/// Unified-diff-style rendering of `edits` for `--fix-dry-run` output.
std::string EditsToDiff(const std::vector<FixEdit>& edits);

}  // namespace freshsel::lint

#endif  // FRESHSEL_CLI_TOOLS_LINT_LIB_H_
