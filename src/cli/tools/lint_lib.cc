#include "cli/tools/lint_lib.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>
#include <utility>

namespace freshsel::lint {
namespace {

namespace fs = std::filesystem;

// The engine's own sources mention the marker and macro spellings inside
// string literals; the needles are spelled split so a self-scan never
// mistakes the parser for a marker site.
const std::string kAllowMarker = std::string("FRESHSEL_LINT") + "_ALLOW(";
const std::string kFailpointMacro = std::string("FRESHSEL_") + "FAILPOINT";
const std::string kObsMacroPrefix = std::string("FRESHSEL_") + "OBS_";

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

/// True when `line` calls `name` as a function: the identifier appears with
/// a word boundary on the left and is followed (modulo spaces) by '('.
bool CallsFunction(const std::string& line, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    std::size_t after = pos + name.size();
    while (after < line.size() &&
           std::isspace(static_cast<unsigned char>(line[after])) != 0) {
      ++after;
    }
    if (left_ok && after < line.size() && line[after] == '(') return true;
    pos += name.size();
  }
  return false;
}

/// True when `line` uses `name` as a complete token (word boundaries on
/// both sides; ':' counts as part of a qualified name on the left so
/// "mystd::numeric_limits" never matches "std::numeric_limits").
bool UsesToken(const std::string& line, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || (!IsIdentChar(line[pos - 1]) && line[pos - 1] != ':');
    const std::size_t after = pos + name.size();
    const bool right_ok = after >= line.size() || !IsIdentChar(line[after]);
    if (left_ok && right_ok) return true;
    pos += name.size();
  }
  return false;
}

/// True when `line` mentions the identifier `name`, qualified or not
/// (word-bounded, but a ':' on the left is accepted).
bool MentionsIdentifier(const std::string& line, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const std::size_t after = pos + name.size();
    const bool right_ok = after >= line.size() || !IsIdentChar(line[after]);
    if (left_ok && right_ok) return true;
    pos += name.size();
  }
  return false;
}

/// True when the file has a direct `#include <header>` line.
bool HasDirectInclude(const std::vector<std::string>& lines,
                      std::string_view header) {
  std::string needle;
  needle.reserve(header.size() + 2);
  needle.push_back('<');
  needle.append(header);
  needle.push_back('>');
  for (const std::string& line : lines) {
    const std::size_t hash = line.find_first_not_of(" \t");
    if (hash == std::string::npos || line[hash] != '#') continue;
    std::size_t directive = hash + 1;
    while (directive < line.size() &&
           std::isspace(static_cast<unsigned char>(line[directive])) != 0) {
      ++directive;
    }
    if (line.compare(directive, 7, "include") != 0) continue;
    if (line.find(needle, directive) != std::string::npos) return true;
  }
  return false;
}

bool IsHeader(const fs::path& path) { return path.extension() == ".h"; }

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::string FirstToken(const std::string& line, std::size_t from) {
  std::size_t start = from;
  while (start < line.size() &&
         std::isspace(static_cast<unsigned char>(line[start])) != 0) {
    ++start;
  }
  std::size_t end = start;
  while (end < line.size() && IsIdentChar(line[end])) ++end;
  return line.substr(start, end - start);
}

/// Comment/string blanking with independent switches, so each consumer can
/// see exactly the text class it needs (pattern rules: neither; suppression
/// parsing: comments only; failpoint-name: strings only).
std::string StripImpl(const std::string& src, bool blank_comments,
                      bool blank_strings) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          if (blank_comments) out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          if (blank_comments) out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else if (blank_comments) {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          if (blank_comments) {
            out[i] = ' ';
            out[i + 1] = ' ';
          }
          ++i;
          state = State::kCode;
        } else if (c != '\n' && blank_comments) {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          if (blank_strings) {
            out[i] = ' ';
            if (i + 1 < src.size() && next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n' && blank_strings) {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

/// Everything the per-rule checks need about one file, computed once.
struct FileCtx {
  std::string file;                  ///< Path string for findings.
  fs::path relative;                 ///< Relative to the scan root.
  std::string subtree;               ///< First relative component ("io"...).
  bool header = false;
  const LintOptions* options = nullptr;
  std::vector<std::string> raw;      ///< Verbatim lines.
  std::vector<std::string> code;     ///< Comments and strings blanked.
  std::vector<std::string> with_strings;  ///< Comments blanked only.
};

bool RuleEnabled(const FileCtx& ctx, const char* id) {
  return ctx.options->disabled_rules.count(id) == 0;
}

// ---------------------------------------------------------------------------
// Pattern rules (line-oriented, over comment/string-blanked text).

void CheckNoRand(const FileCtx& ctx, std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (CallsFunction(line, "rand") || CallsFunction(line, "srand") ||
        CallsFunction(line, "std::rand") ||
        CallsFunction(line, "std::srand")) {
      findings->push_back(
          {ctx.file, i + 1, "no-rand",
           "rand()/srand() are banned; use freshsel::Rng for reproducible "
           "randomness"});
    }
  }
}

void CheckNoBareAssert(const FileCtx& ctx, std::vector<Finding>* findings) {
  if (!ctx.options->assert_rule) return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (CallsFunction(ctx.code[i], "assert")) {
      findings->push_back(
          {ctx.file, i + 1, "no-bare-assert",
           "bare assert() is banned in library code; use FRESHSEL_CHECK / "
           "FRESHSEL_DCHECK (common/check.h)"});
    }
  }
}

void CheckObsClock(const FileCtx& ctx, std::vector<Finding>* findings) {
  if (!ctx.options->obs_clock_rule) return;
  // The obs subtree owns the process clock (obs/clock.h); everything else
  // must time through it.
  if (ctx.subtree == "obs") return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (MentionsIdentifier(ctx.code[i], "steady_clock")) {
      findings->push_back(
          {ctx.file, i + 1, "obs-clock",
           "std::chrono::steady_clock outside obs/; time through the obs "
           "layer instead (obs::NowNs, obs::WallTimer, or the "
           "FRESHSEL_OBS_* macros) so timings are recordable and compile "
           "out with FRESHSEL_OBS=OFF"});
    }
  }
}

void CheckNoUsingNamespace(const FileCtx& ctx,
                           std::vector<Finding>* findings) {
  if (!ctx.header) return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (ctx.code[i].find("using namespace") != std::string::npos) {
      findings->push_back(
          {ctx.file, i + 1, "no-using-namespace",
           "'using namespace' in a header leaks into every includer"});
    }
  }
}

/// Spot include-what-you-use rule for the two headers most often pulled in
/// transitively and silently lost in refactors: <limits> (for
/// std::numeric_limits) and <cstdint> (for the std::[u]intN_t aliases).
/// Flags the first use per header when the direct #include is missing.
void CheckIwyuSpot(const FileCtx& ctx, std::vector<Finding>* findings) {
  struct SpotHeader {
    const char* header;
    std::vector<std::string_view> tokens;
  };
  static const std::vector<SpotHeader>& kSpots = *new std::vector<SpotHeader>{
      {"limits", {"std::numeric_limits"}},
      {"cstdint",
       {"std::int8_t", "std::int16_t", "std::int32_t", "std::int64_t",
        "std::uint8_t", "std::uint16_t", "std::uint32_t",
        "std::uint64_t"}},
  };
  for (const SpotHeader& spot : kSpots) {
    if (HasDirectInclude(ctx.code, spot.header)) continue;
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
      std::string_view used;
      for (std::string_view token : spot.tokens) {
        if (UsesToken(ctx.code[i], token)) {
          used = token;
          break;
        }
      }
      if (used.empty()) continue;
      findings->push_back(
          {ctx.file, i + 1, "iwyu-spot",
           std::string(used) + " used without a direct #include <" +
               spot.header + ">"});
      break;  // One finding per missing header is enough.
    }
  }
}

void CheckIncludeGuard(const FileCtx& ctx, std::vector<Finding>* findings) {
  if (!ctx.header) return;
  const std::string expected =
      ExpectedGuard(ctx.relative, ctx.options->guard_prefix);
  std::size_t ifndef_line = 0;
  std::string seen_guard;
  for (std::size_t i = 0; i < ctx.raw.size(); ++i) {
    const std::string& line = ctx.raw[i];
    const std::size_t hash = line.find_first_not_of(" \t");
    if (hash == std::string::npos) continue;
    if (line[hash] != '#') continue;
    const std::string directive = FirstToken(line, hash + 1);
    if (directive == "pragma" &&
        line.find("once", hash) != std::string::npos) {
      return;  // #pragma once is acceptable hygiene.
    }
    if (directive == "ifndef" && seen_guard.empty()) {
      seen_guard = FirstToken(line, line.find("ifndef", hash) + 6);
      ifndef_line = i + 1;
      continue;
    }
    if (directive == "define" && !seen_guard.empty()) {
      const std::string defined = FirstToken(line, line.find("define") + 6);
      if (defined != seen_guard) {
        findings->push_back(
            {ctx.file, i + 1, "include-guard",
             "#define '" + defined + "' does not match #ifndef '" +
                 seen_guard + "'"});
      } else if (seen_guard != expected) {
        findings->push_back(
            {ctx.file, ifndef_line, "include-guard",
             "guard '" + seen_guard + "' should be '" + expected + "'"});
      }
      return;
    }
    // Any other directive before the #ifndef/#define pair means the guard
    // does not wrap the whole header.
    break;
  }
  findings->push_back({ctx.file, 1, "include-guard",
                       "header lacks an include guard (expected '" +
                           expected + "' or #pragma once)"});
}

// ---------------------------------------------------------------------------
// nondeterminism: wall-clock seeds, OS entropy, and unordered iteration in
// output paths - the mechanisms that break byte-identity guarantees.

/// Subtrees whose output must be byte-stable (serialized files, reports,
/// selection results printed by the CLI and harness).
bool InOutputSubtree(const FileCtx& ctx) {
  return ctx.subtree == "io" || ctx.subtree == "cli" ||
         ctx.subtree == "harness" || ctx.subtree == "obs";
}

void CheckNondeterminism(const FileCtx& ctx, std::vector<Finding>* findings) {
  const bool output_path = InOutputSubtree(ctx);
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (CallsFunction(line, "time") || CallsFunction(line, "std::time")) {
      findings->push_back(
          {ctx.file, i + 1, "nondeterminism",
           "time(nullptr)-style wall-clock reads are nondeterministic; "
           "thread an explicit seed / TimePoint instead"});
    }
    if (MentionsIdentifier(line, "random_device")) {
      findings->push_back(
          {ctx.file, i + 1, "nondeterminism",
           "std::random_device draws OS entropy, breaking reproducible "
           "runs; construct a seeded freshsel::Rng instead"});
    }
    // Raw <random> engines bypass the seeded, forkable common/random.h
    // streams (the stochastic-greedy sampler contract): their draw
    // sequences are not covered by the Rng stability tests. srand()/rand()
    // are the no-rand rule's job.
    if (MentionsIdentifier(line, "mt19937") ||
        MentionsIdentifier(line, "mt19937_64") ||
        MentionsIdentifier(line, "minstd_rand")) {
      findings->push_back(
          {ctx.file, i + 1, "nondeterminism",
           "raw std::random engines bypass the seeded freshsel::Rng "
           "streams; draw from a forked Rng so sequences stay covered by "
           "the reproducibility tests"});
    }
    if (output_path && (line.find("unordered_map") != std::string::npos ||
                        line.find("unordered_set") != std::string::npos)) {
      findings->push_back(
          {ctx.file, i + 1, "nondeterminism",
           "unordered containers have platform-dependent iteration order; "
           "serialization/report/output paths must use std::map/std::set "
           "or sort before emitting (byte-identity guarantee)"});
    }
  }
}

// ---------------------------------------------------------------------------
// raw-mutex: concurrency primitives outside src/common/ bypass the
// annotated freshsel::Mutex wrapper and with it the thread-safety analysis.

void CheckRawMutex(const FileCtx& ctx, std::vector<Finding>* findings) {
  if (ctx.subtree == "common") return;
  static const std::vector<std::string_view>& kBanned =
      *new std::vector<std::string_view>{
          "std::mutex",          "std::recursive_mutex",
          "std::timed_mutex",    "std::shared_mutex",
          "std::lock_guard",     "std::unique_lock",
          "std::scoped_lock",    "std::shared_lock",
          "std::condition_variable", "std::condition_variable_any",
      };
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    for (std::string_view token : kBanned) {
      if (UsesToken(line, token)) {
        findings->push_back(
            {ctx.file, i + 1, "raw-mutex",
             std::string(token) +
                 " outside src/common/; use the annotated freshsel::Mutex "
                 "/ MutexLock / CondVar (common/mutex.h) so the "
                 "thread-safety analysis sees the lock"});
        break;  // One finding per line is enough.
      }
    }
    if (line.find("#include") != std::string::npos &&
        (line.find("<mutex>") != std::string::npos ||
         line.find("<condition_variable>") != std::string::npos ||
         line.find("<shared_mutex>") != std::string::npos)) {
      findings->push_back(
          {ctx.file, i + 1, "raw-mutex",
           "direct mutex header include outside src/common/; include "
           "\"common/mutex.h\" instead"});
    }
  }
}

// ---------------------------------------------------------------------------
// failpoint-name: FRESHSEL_FAILPOINT ids follow `subsystem.site` so specs,
// reports and docs can group injection sites by layer.

bool IsValidFailpointName(std::string_view name) {
  bool saw_dot = false;
  bool segment_empty = true;
  for (char c : name) {
    if (c == '.') {
      if (segment_empty) return false;
      saw_dot = true;
      segment_empty = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
               c == '_') {
      segment_empty = false;
    } else {
      return false;
    }
  }
  return saw_dot && !segment_empty;
}

/// Finds the string literal opening the macro's first argument, scanning
/// from just past the macro's '(' across line breaks. Returns false when
/// the first argument is not a string literal (e.g. the macro definition).
bool FindFailpointLiteral(const std::vector<std::string>& lines,
                          std::size_t line_index, std::size_t column,
                          std::string* literal) {
  std::size_t i = line_index;
  std::size_t pos = column;
  for (; i < lines.size() && i < line_index + 3; ++i) {
    const std::string& line = lines[i];
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
      ++pos;
    }
    if (pos < line.size()) {
      if (line[pos] != '"') return false;
      const std::size_t close = line.find('"', pos + 1);
      if (close == std::string::npos) return false;
      *literal = line.substr(pos + 1, close - pos - 1);
      return true;
    }
    pos = 0;
  }
  return false;
}

void CheckFailpointName(const FileCtx& ctx, std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < ctx.with_strings.size(); ++i) {
    const std::string& line = ctx.with_strings[i];
    std::size_t pos = 0;
    while ((pos = line.find(kFailpointMacro, pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
      std::size_t after = pos + kFailpointMacro.size();
      // Accept the _RETURN variant.
      if (line.compare(after, 7, "_RETURN") == 0) after += 7;
      if (!left_ok || after >= line.size() || line[after] != '(') {
        pos += kFailpointMacro.size();
        continue;
      }
      std::string literal;
      if (FindFailpointLiteral(ctx.with_strings, i, after + 1, &literal) &&
          !IsValidFailpointName(literal)) {
        findings->push_back(
            {ctx.file, i + 1, "failpoint-name",
             "failpoint id '" + literal +
                 "' must follow subsystem.site naming "
                 "([a-z0-9_]+(.[a-z0-9_]+)+, e.g. \"io.read\")"});
      }
      pos = after;
    }
  }
}

// ---------------------------------------------------------------------------
// obs-counter-name: FRESHSEL_OBS metric ids follow `subsystem.noun.verb`
// (three or more lowercase dot-separated segments) so dashboards, the
// report diff tool, and the OpenMetrics exposition can group series by
// layer and entity without a hand-maintained mapping.

bool IsValidMetricName(std::string_view name) {
  std::size_t segments = 0;
  bool segment_empty = true;
  for (char c : name) {
    if (c == '.') {
      if (segment_empty) return false;
      ++segments;
      segment_empty = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
               c == '_') {
      segment_empty = false;
    } else {
      return false;
    }
  }
  if (segment_empty) return false;
  ++segments;
  return segments >= 3;
}

void CheckObsCounterName(const FileCtx& ctx,
                         std::vector<Finding>* findings) {
  // Macros whose first argument is a metric id. The definitions themselves
  // (first argument a parameter name, not a string literal) are skipped by
  // the literal scan, as are call-through wrappers.
  static const std::vector<std::string_view>& kMetricMacros =
      *new std::vector<std::string_view>{
          "COUNT", "GAUGE_SET", "HISTOGRAM_RECORD", "SCOPED_LATENCY"};
  for (std::size_t i = 0; i < ctx.with_strings.size(); ++i) {
    const std::string& line = ctx.with_strings[i];
    std::size_t pos = 0;
    while ((pos = line.find(kObsMacroPrefix, pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
      std::size_t after = pos + kObsMacroPrefix.size();
      pos = after;
      if (!left_ok) continue;
      bool known = false;
      for (std::string_view suffix : kMetricMacros) {
        if (line.compare(after, suffix.size(), suffix) == 0 &&
            after + suffix.size() < line.size() &&
            line[after + suffix.size()] == '(') {
          after += suffix.size();
          known = true;
          break;
        }
      }
      if (!known) continue;
      std::string literal;
      if (FindFailpointLiteral(ctx.with_strings, i, after + 1, &literal) &&
          !IsValidMetricName(literal)) {
        findings->push_back(
            {ctx.file, i + 1, "obs-counter-name",
             "metric id '" + literal +
                 "' must follow subsystem.noun.verb naming "
                 "([a-z0-9_]+(.[a-z0-9_]+){2,}, e.g. "
                 "\"selection.oracle.calls\")"});
      }
      pos = after;
    }
  }
}

// ---------------------------------------------------------------------------
// status-must-use: a bare statement calling a Status/Result-returning
// function silently drops the error. Paired with [[nodiscard]] on the
// types themselves (compiler-enforced); the lint rule is the portable
// cross-check that also covers pre-C++17 style discards.

const std::set<std::string>& StatementKeywords() {
  static const std::set<std::string>& keywords = *new std::set<std::string>{
      "return",  "if",     "while",  "for",   "switch", "case",
      "delete",  "new",    "goto",   "else",  "do",     "break",
      "continue", "throw", "sizeof", "co_return", "co_await", "using",
      "static_cast", "const_cast", "reinterpret_cast", "typedef",
  };
  return keywords;
}

/// Parses an identifier starting at `pos`; returns empty when none.
std::string ParseIdent(const std::string& line, std::size_t* pos) {
  std::size_t p = *pos;
  if (p >= line.size() ||
      (std::isalpha(static_cast<unsigned char>(line[p])) == 0 &&
       line[p] != '_')) {
    return std::string();
  }
  std::size_t end = p;
  while (end < line.size() && IsIdentChar(line[end])) ++end;
  std::string ident = line.substr(p, end - p);
  *pos = end;
  return ident;
}

/// From `(line_index, column)` pointing just past an opening '(' in
/// `lines`, finds the matching ')' and reports whether the next
/// non-whitespace character after it is ';' (a discarded-result statement).
bool CallEndsAsStatement(const std::vector<std::string>& lines,
                         std::size_t line_index, std::size_t column) {
  int depth = 1;
  for (std::size_t i = line_index; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    for (std::size_t p = i == line_index ? column : 0; p < line.size(); ++p) {
      const char c = line[p];
      if (c == '(') {
        ++depth;
      } else if (c == ')') {
        if (--depth == 0) {
          // Matched; look for ';' next (same line or following lines).
          std::size_t q = p + 1;
          for (std::size_t j = i; j < lines.size() && j < i + 2; ++j) {
            const std::string& tail = lines[j];
            for (std::size_t k = j == i ? q : 0; k < tail.size(); ++k) {
              if (std::isspace(static_cast<unsigned char>(tail[k])) != 0) {
                continue;
              }
              return tail[k] == ';';
            }
          }
          return false;
        }
      }
    }
  }
  return false;
}

/// Collects names of functions this file declares with a plain `void`
/// return. The status-must-use set matches by bare name across the whole
/// tree, so an unrelated local `void PanelA(...)` must not inherit Status
/// semantics from a same-named function in another file.
void CollectVoidFunctions(const std::vector<std::string>& lines,
                          std::set<std::string>* out) {
  for (const std::string& line : lines) {
    std::size_t pos = 0;
    while ((pos = line.find("void", pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
      std::size_t after = pos + 4;
      pos = after;
      if (!left_ok) continue;
      if (after < line.size() && IsIdentChar(line[after])) continue;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0) {
        ++after;
      }
      std::string name = ParseIdent(line, &after);
      if (name.empty()) continue;
      while (line.compare(after, 2, "::") == 0) {
        after += 2;
        const std::string next = ParseIdent(line, &after);
        if (next.empty()) {
          name.clear();
          break;
        }
        name = next;
      }
      if (name.empty()) continue;
      if (after >= line.size() || line[after] != '(') continue;
      out->insert(std::move(name));
    }
  }
}

void CheckStatusMustUse(const FileCtx& ctx,
                        const StatusFunctions& status_functions,
                        std::vector<Finding>* findings) {
  if (status_functions.empty()) return;
  std::set<std::string> local_void;
  CollectVoidFunctions(ctx.code, &local_void);
  std::size_t prev_nonblank = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const std::size_t remember_prev = prev_nonblank;
    prev_nonblank = i;

    // Statement start heuristic: the previous non-blank code line ended a
    // statement or opened a block; otherwise this line continues an
    // expression (e.g. the RHS of an assignment) and the result is used.
    if (remember_prev != static_cast<std::size_t>(-1)) {
      const std::string& prev = ctx.code[remember_prev];
      const std::size_t last = prev.find_last_not_of(" \t");
      if (last == std::string::npos) continue;
      const char end = prev[last];
      if (end != ';' && end != '{' && end != '}' && end != ')' &&
          end != ':') {
        continue;
      }
      // A backslash continuation means we are inside a macro definition.
      if (end == '\\') continue;
    }
    if (line.back() == '\\') continue;  // Macro definition body.

    // Parse a callee path: ident (:: . ->)* ident, immediately followed by
    // an opening parenthesis. Anything else is not a bare call statement.
    std::size_t pos = first;
    std::string ident = ParseIdent(line, &pos);
    if (ident.empty()) continue;
    if (StatementKeywords().count(ident) != 0) continue;
    std::string last_ident = ident;
    while (true) {
      std::size_t p = pos;
      while (p < line.size() &&
             std::isspace(static_cast<unsigned char>(line[p])) != 0) {
        ++p;
      }
      if (line.compare(p, 2, "::") == 0 || line.compare(p, 2, "->") == 0) {
        p += 2;
      } else if (p < line.size() && line[p] == '.' &&
                 (p + 1 >= line.size() || line[p + 1] != '.')) {
        p += 1;
      } else {
        pos = p;
        break;
      }
      while (p < line.size() &&
             std::isspace(static_cast<unsigned char>(line[p])) != 0) {
        ++p;
      }
      const std::string next = ParseIdent(line, &p);
      if (next.empty()) {
        pos = p;
        last_ident.clear();  // Trailing separator: not a plain call path.
        break;
      }
      last_ident = next;
      pos = p;
    }
    if (last_ident.empty()) continue;
    if (pos >= line.size() || line[pos] != '(') continue;
    if (status_functions.count(last_ident) == 0) continue;
    if (local_void.count(last_ident) != 0) continue;
    if (!CallEndsAsStatement(ctx.code, i, pos + 1)) continue;
    findings->push_back(
        {ctx.file, i + 1, "status-must-use",
         "result of Status/Result-returning '" + last_ident +
             "' is discarded; check it, FRESHSEL_RETURN_IF_ERROR it, or "
             "suppress with a reason"});
  }
}

// ---------------------------------------------------------------------------
// Suppressions.

void ApplySuppressions(std::vector<Suppression>& suppressions,
                       const std::string& file,
                       std::vector<Finding>* findings) {
  std::vector<Finding> kept;
  kept.reserve(findings->size());
  for (Finding& finding : *findings) {
    bool suppressed = false;
    for (Suppression& suppression : suppressions) {
      if (suppression.rule != finding.rule) continue;
      if (suppression.line != finding.line &&
          suppression.line + 1 != finding.line) {
        continue;
      }
      suppression.used = true;
      suppressed = true;
      break;
    }
    if (!suppressed) kept.push_back(std::move(finding));
  }
  *findings = std::move(kept);
  for (const Suppression& suppression : suppressions) {
    if (!IsKnownRule(suppression.rule)) {
      findings->push_back(
          {file, suppression.line, "lint-allow",
           "suppression names unknown rule '" + suppression.rule + "'"});
      continue;
    }
    if (!suppression.has_reason) {
      findings->push_back(
          {file, suppression.line, "lint-allow",
           "suppression of '" + suppression.rule +
               "' lacks a reason; write FRESHSEL_LINT" +
               "_ALLOW(rule): why this site is intentional"});
    }
    if (!suppression.used) {
      findings->push_back(
          {file, suppression.line, "lint-allow",
           "suppression of '" + suppression.rule +
               "' matches no finding; remove the stale marker"});
    }
  }
}

// ---------------------------------------------------------------------------
// JSON helpers (the lint library stays dependency-free of obs/).

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo>& catalog = *new std::vector<RuleInfo>{
      {"failpoint-name",
       "FRESHSEL_FAILPOINT ids follow subsystem.site naming", true},
      {"include-guard",
       "headers carry the canonical FRESHSEL_<PATH>_H_ include guard",
       false},
      {"io", "file or directory could not be read", false},
      {"iwyu-spot",
       "spot include-what-you-use: <limits> and <cstdint> must be direct",
       true},
      {"lint-allow",
       "suppression hygiene: markers need a reason and must match a finding",
       false},
      {"no-bare-assert",
       "library code uses FRESHSEL_CHECK/DCHECK instead of assert()", false},
      {"no-rand", "rand()/srand() banned in favor of seeded freshsel::Rng",
       false},
      {"no-using-namespace", "'using namespace' banned in headers", false},
      {"nondeterminism",
       "wall-clock reads, OS entropy, and unordered iteration in output "
       "paths break byte-identity",
       false},
      {"obs-clock",
       "steady_clock outside obs/; time through the obs layer", false},
      {"obs-counter-name",
       "FRESHSEL_OBS metric ids follow subsystem.noun.verb naming", false},
      {"raw-mutex",
       "std::mutex family outside src/common/; use annotated "
       "freshsel::Mutex",
       false},
      {"status-must-use",
       "Status/Result return values must not be silently discarded", false},
  };
  return catalog;
}

bool IsKnownRule(const std::string& id) {
  const std::vector<RuleInfo>& catalog = RuleCatalog();
  return std::any_of(catalog.begin(), catalog.end(),
                     [&](const RuleInfo& rule) { return rule.id == id; });
}

std::string StripCommentsAndStrings(const std::string& src) {
  return StripImpl(src, /*blank_comments=*/true, /*blank_strings=*/true);
}

std::string ExpectedGuard(const fs::path& relative,
                          const std::string& prefix) {
  std::string guard = prefix;
  for (const fs::path& part : relative) {
    for (char c : part.string()) {
      if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
        guard.push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(c))));
      } else {
        guard.push_back('_');
      }
    }
    guard.push_back('_');
  }
  // ".../NAME_H_" is already complete: the extension's dot became '_'.
  return guard;
}

std::vector<Suppression> ParseSuppressions(const std::string& raw) {
  // Strings are blanked first so a marker quoted in test fixture text (or
  // in this very file) is not a live suppression; markers live in comments.
  const std::vector<std::string> lines =
      SplitLines(StripImpl(raw, /*blank_comments=*/false,
                           /*blank_strings=*/true));
  std::vector<Suppression> suppressions;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    std::size_t pos = 0;
    while ((pos = line.find(kAllowMarker, pos)) != std::string::npos) {
      const std::size_t open = pos + kAllowMarker.size();
      const std::size_t close = line.find(')', open);
      pos = open;
      if (close == std::string::npos) continue;
      const std::string rule = line.substr(open, close - open);
      // Placeholder spellings like <rule-id> are documentation, not
      // markers; a real rule id is lowercase kebab/underscore.
      const bool id_like =
          !rule.empty() &&
          std::all_of(rule.begin(), rule.end(), [](char c) {
            return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                   c == '-' || c == '_';
          });
      if (!id_like) continue;
      Suppression suppression;
      suppression.line = i + 1;
      suppression.rule = rule;
      std::size_t tail = close + 1;
      while (tail < line.size() &&
             std::isspace(static_cast<unsigned char>(line[tail])) != 0) {
        ++tail;
      }
      suppression.has_reason =
          tail < line.size() && line[tail] == ':' &&
          line.find_first_not_of(" \t", tail + 1) != std::string::npos;
      suppressions.push_back(std::move(suppression));
    }
  }
  return suppressions;
}

void CollectStatusFunctions(const std::string& stripped,
                            StatusFunctions* out) {
  const std::vector<std::string> lines = SplitLines(stripped);
  for (const std::string& line : lines) {
    for (std::string_view type : {std::string_view("Status"),
                                  std::string_view("Result")}) {
      std::size_t pos = 0;
      while ((pos = line.find(type, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || (!IsIdentChar(line[pos - 1]));
        std::size_t after = pos + type.size();
        pos = after;
        if (!left_ok) continue;
        if (type == "Result") {
          // Require and skip the template argument list.
          if (after >= line.size() || line[after] != '<') continue;
          int depth = 0;
          while (after < line.size()) {
            if (line[after] == '<') ++depth;
            if (line[after] == '>' && --depth == 0) {
              ++after;
              break;
            }
            ++after;
          }
          if (depth != 0) continue;
        } else {
          if (after < line.size() && IsIdentChar(line[after])) continue;
        }
        // Parse `name(` or `Class::name(` after the return type.
        while (after < line.size() &&
               std::isspace(static_cast<unsigned char>(line[after])) != 0) {
          ++after;
        }
        std::string name = ParseIdent(line, &after);
        if (name.empty()) continue;
        while (line.compare(after, 2, "::") == 0) {
          after += 2;
          const std::string next = ParseIdent(line, &after);
          if (next.empty()) {
            name.clear();
            break;
          }
          name = next;
        }
        if (name.empty()) continue;
        if (after >= line.size() || line[after] != '(') continue;
        out->insert(std::move(name));
      }
    }
  }
}

void LintFile(const fs::path& file, const fs::path& relative,
              const LintOptions& options,
              const StatusFunctions* status_functions,
              std::vector<Finding>* findings) {
  std::ifstream in(file);
  if (!in) {
    findings->push_back({file.string(), 0, "io", "cannot open file"});
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();

  FileCtx ctx;
  ctx.file = file.string();
  ctx.relative = relative;
  ctx.subtree = relative.begin() != relative.end()
                    ? relative.begin()->string()
                    : std::string();
  ctx.header = IsHeader(file);
  ctx.options = &options;
  ctx.raw = SplitLines(raw);
  ctx.code = SplitLines(StripCommentsAndStrings(raw));
  ctx.with_strings = SplitLines(
      StripImpl(raw, /*blank_comments=*/true, /*blank_strings=*/false));

  std::vector<Finding> file_findings;
  if (RuleEnabled(ctx, "no-rand")) CheckNoRand(ctx, &file_findings);
  if (RuleEnabled(ctx, "no-bare-assert")) {
    CheckNoBareAssert(ctx, &file_findings);
  }
  if (RuleEnabled(ctx, "obs-clock")) CheckObsClock(ctx, &file_findings);
  if (RuleEnabled(ctx, "no-using-namespace")) {
    CheckNoUsingNamespace(ctx, &file_findings);
  }
  if (RuleEnabled(ctx, "iwyu-spot")) CheckIwyuSpot(ctx, &file_findings);
  if (RuleEnabled(ctx, "nondeterminism")) {
    CheckNondeterminism(ctx, &file_findings);
  }
  if (RuleEnabled(ctx, "raw-mutex")) CheckRawMutex(ctx, &file_findings);
  if (RuleEnabled(ctx, "failpoint-name")) {
    CheckFailpointName(ctx, &file_findings);
  }
  if (RuleEnabled(ctx, "obs-counter-name")) {
    CheckObsCounterName(ctx, &file_findings);
  }
  if (status_functions != nullptr &&
      RuleEnabled(ctx, "status-must-use")) {
    CheckStatusMustUse(ctx, *status_functions, &file_findings);
  }
  if (RuleEnabled(ctx, "include-guard")) {
    CheckIncludeGuard(ctx, &file_findings);
  }

  // Stable order: by line, then rule, so multi-rule lines render
  // deterministically regardless of check order.
  std::stable_sort(file_findings.begin(), file_findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  std::vector<Suppression> suppressions = ParseSuppressions(raw);
  ApplySuppressions(suppressions, ctx.file, &file_findings);
  findings->insert(findings->end(),
                   std::make_move_iterator(file_findings.begin()),
                   std::make_move_iterator(file_findings.end()));
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintOptions& options,
                               std::size_t* files_scanned) {
  // Pass 1: enumerate files and collect Status-returning function names
  // tree-wide, so cross-file discarded calls are caught.
  std::vector<std::pair<fs::path, fs::path>> files;  // (file, relative)
  std::vector<Finding> findings;
  for (const std::string& arg : paths) {
    const fs::path root(arg);
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      std::vector<fs::path> dir_files;
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          dir_files.push_back(entry.path());
        }
      }
      std::sort(dir_files.begin(), dir_files.end());
      for (const fs::path& file : dir_files) {
        files.emplace_back(file, fs::relative(file, root));
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.emplace_back(root, root.filename());
    } else {
      findings.push_back({arg, 0, "io", "no such file or directory"});
    }
  }

  StatusFunctions status_functions;
  const bool collect = options.disabled_rules.count("status-must-use") == 0;
  if (collect) {
    for (const auto& [file, relative] : files) {
      std::ifstream in(file);
      if (!in) continue;  // Pass 2 reports the io finding.
      std::ostringstream buffer;
      buffer << in.rdbuf();
      CollectStatusFunctions(StripCommentsAndStrings(buffer.str()),
                             &status_functions);
    }
  }

  // Pass 2: run the rules.
  for (const auto& [file, relative] : files) {
    LintFile(file, relative, options,
             collect ? &status_functions : nullptr, &findings);
  }
  if (files_scanned != nullptr) *files_scanned = files.size();
  return findings;
}

std::string FindingsToText(const std::vector<Finding>& findings,
                           std::size_t files_scanned) {
  std::string out;
  for (const Finding& finding : findings) {
    out += finding.file + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message + "\n";
  }
  out += "freshsel_lint: " + std::to_string(files_scanned) + " file(s), " +
         std::to_string(findings.size()) + " finding(s)\n";
  return out;
}

std::string FindingsToJson(const std::vector<Finding>& findings,
                           std::size_t files_scanned) {
  std::string out = "{\n  \"files_scanned\": " +
                    std::to_string(files_scanned) + ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& finding = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"" + JsonEscape(finding.file) +
           "\", \"line\": " + std::to_string(finding.line) +
           ", \"rule\": \"" + JsonEscape(finding.rule) +
           "\", \"message\": \"" + JsonEscape(finding.message) + "\"}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string FindingsToSarif(const std::vector<Finding>& findings) {
  const std::vector<RuleInfo>& catalog = RuleCatalog();
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    rule_index[catalog[i].id] = i;
  }
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"freshsel_lint\",\n"
      "          \"informationUri\": "
      "\"https://github.com/freshsel/freshsel\",\n"
      "          \"rules\": [";
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "            {\"id\": \"" + JsonEscape(catalog[i].id) +
           "\", \"shortDescription\": {\"text\": \"" +
           JsonEscape(catalog[i].summary) + "\"}}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& finding = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "        {\"ruleId\": \"" + JsonEscape(finding.rule) + "\"";
    auto it = rule_index.find(finding.rule);
    if (it != rule_index.end()) {
      out += ", \"ruleIndex\": " + std::to_string(it->second);
    }
    out += ", \"level\": \"error\", \"message\": {\"text\": \"" +
           JsonEscape(finding.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           JsonEscape(finding.file) +
           "\"}, \"region\": {\"startLine\": " +
           std::to_string(finding.line == 0 ? 1 : finding.line) + "}}}]}";
  }
  out += findings.empty() ? "]\n" : "\n      ]\n";
  out +=
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

namespace {

/// Loads `file` into lines (keeping no trailing-newline bookkeeping simple:
/// files are rewritten with a trailing newline, which the tree style
/// mandates anyway).
bool ReadLines(const std::string& file, std::vector<std::string>* lines) {
  std::ifstream in(file);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *lines = SplitLines(buffer.str());
  if (!lines->empty() && lines->back().empty()) lines->pop_back();
  return true;
}

bool WriteLines(const std::string& file,
                const std::vector<std::string>& lines) {
  std::ofstream out(file);
  if (!out) return false;
  for (const std::string& line : lines) out << line << "\n";
  return static_cast<bool>(out);
}

/// The header name ("limits", "cstdint") an iwyu-spot message names.
std::string IwyuHeaderFromMessage(const std::string& message) {
  const std::size_t open = message.rfind('<');
  const std::size_t close = message.rfind('>');
  if (open == std::string::npos || close == std::string::npos ||
      close <= open) {
    return std::string();
  }
  return message.substr(open + 1, close - open - 1);
}

/// Inserts `#include <header>` into the (sorted) system-include block, or
/// after the last include, or after the include-guard prologue. Returns
/// the 1-based insertion line.
std::size_t InsertSystemInclude(std::vector<std::string>* lines,
                                const std::string& header) {
  const std::string include_line = "#include <" + header + ">";
  std::size_t block_begin = static_cast<std::size_t>(-1);
  std::size_t block_end = 0;
  std::size_t last_include = static_cast<std::size_t>(-1);
  std::size_t guard_define = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < lines->size(); ++i) {
    const std::string& line = (*lines)[i];
    if (line.rfind("#include <", 0) == 0) {
      if (block_begin == static_cast<std::size_t>(-1)) block_begin = i;
      block_end = i;
      last_include = i;
    } else if (line.rfind("#include", 0) == 0) {
      last_include = i;
    } else if (guard_define == static_cast<std::size_t>(-1) &&
               line.rfind("#define", 0) == 0) {
      guard_define = i;
    }
  }
  std::size_t insert_at;
  if (block_begin != static_cast<std::size_t>(-1)) {
    insert_at = block_end + 1;  // Default: after the block.
    for (std::size_t i = block_begin; i <= block_end; ++i) {
      if ((*lines)[i].rfind("#include <", 0) == 0 &&
          include_line < (*lines)[i]) {
        insert_at = i;
        break;
      }
    }
  } else if (last_include != static_cast<std::size_t>(-1)) {
    insert_at = last_include + 1;
  } else if (guard_define != static_cast<std::size_t>(-1)) {
    insert_at = guard_define + 1;
    // Keep the conventional blank line after the guard prologue.
    if (insert_at < lines->size() && (*lines)[insert_at].empty()) {
      ++insert_at;
    }
  } else {
    insert_at = 0;
  }
  lines->insert(lines->begin() + static_cast<std::ptrdiff_t>(insert_at),
                include_line);
  return insert_at + 1;
}

/// Mechanical failpoint-name repair: lowercase, squash invalid characters
/// to '_', and prefix a best-guess subsystem (the file's directory name)
/// when no '.' separates subsystem from site.
std::string CanonicalFailpointName(const std::string& literal,
                                   const std::string& file) {
  std::string fixed;
  fixed.reserve(literal.size());
  for (char c : literal) {
    const char lower = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
    if ((lower >= 'a' && lower <= 'z') || (lower >= '0' && lower <= '9') ||
        lower == '_' || lower == '.') {
      fixed.push_back(lower);
    } else {
      fixed.push_back('_');
    }
  }
  // Collapse degenerate dot runs and trim dot ends.
  std::string clean;
  for (char c : fixed) {
    if (c == '.' && (clean.empty() || clean.back() == '.')) continue;
    clean.push_back(c);
  }
  while (!clean.empty() && clean.back() == '.') clean.pop_back();
  if (clean.find('.') == std::string::npos) {
    const fs::path parent = fs::path(file).parent_path().filename();
    std::string subsystem = parent.string();
    if (subsystem.empty()) subsystem = "app";
    clean = subsystem + "." + (clean.empty() ? "site" : clean);
  }
  return clean;
}

}  // namespace

std::vector<FixEdit> ApplyFixes(const std::vector<Finding>& findings,
                                bool apply) {
  // Group fixable findings per file, applying top-to-bottom so later line
  // numbers stay valid (insertions only shift lines below them; we
  // re-derive offsets by applying edits bottom-up).
  std::map<std::string, std::vector<const Finding*>> by_file;
  for (const Finding& finding : findings) {
    if (finding.rule == "iwyu-spot" || finding.rule == "failpoint-name") {
      by_file[finding.file].push_back(&finding);
    }
  }
  std::vector<FixEdit> edits;
  for (auto& [file, file_findings] : by_file) {
    std::vector<std::string> lines;
    if (!ReadLines(file, &lines)) continue;
    bool changed = false;
    // failpoint-name first (in-place rewrites keep line numbers stable),
    // then iwyu insertions bottom-up.
    for (const Finding* finding : file_findings) {
      if (finding->rule != "failpoint-name") continue;
      const std::size_t open = finding->message.find('\'');
      const std::size_t close =
          open == std::string::npos
              ? std::string::npos
              : finding->message.find('\'', open + 1);
      if (close == std::string::npos || finding->line == 0 ||
          finding->line > lines.size()) {
        continue;
      }
      const std::string literal =
          finding->message.substr(open + 1, close - open - 1);
      const std::string fixed = CanonicalFailpointName(literal, file);
      // The literal may sit on the macro line or on the next (wrapped
      // argument); rewrite the first occurrence found.
      for (std::size_t i = finding->line - 1;
           i < std::min(finding->line + 2, lines.size()); ++i) {
        const std::string quoted = "\"" + literal + "\"";
        const std::size_t at = lines[i].find(quoted);
        if (at == std::string::npos) continue;
        FixEdit edit;
        edit.file = file;
        edit.line = i + 1;
        edit.rule = "failpoint-name";
        edit.before = lines[i];
        lines[i].replace(at, quoted.size(), "\"" + fixed + "\"");
        edit.after = lines[i];
        edits.push_back(std::move(edit));
        changed = true;
        break;
      }
    }
    for (const Finding* finding : file_findings) {
      if (finding->rule != "iwyu-spot") continue;
      const std::string header = IwyuHeaderFromMessage(finding->message);
      if (header.empty()) continue;
      FixEdit edit;
      edit.file = file;
      edit.rule = "iwyu-spot";
      edit.after = "#include <" + header + ">";
      edit.line = InsertSystemInclude(&lines, header);
      edits.push_back(std::move(edit));
      changed = true;
    }
    if (apply && changed) WriteLines(file, lines);
  }
  std::sort(edits.begin(), edits.end(),
            [](const FixEdit& a, const FixEdit& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return edits;
}

std::string EditsToDiff(const std::vector<FixEdit>& edits) {
  std::string out;
  std::string current_file;
  for (const FixEdit& edit : edits) {
    if (edit.file != current_file) {
      current_file = edit.file;
      out += "--- " + edit.file + "\n+++ " + edit.file + "\n";
    }
    out += "@@ line " + std::to_string(edit.line) + " [" + edit.rule +
           "] @@\n";
    if (!edit.before.empty()) out += "-" + edit.before + "\n";
    out += "+" + edit.after + "\n";
  }
  return out;
}

}  // namespace freshsel::lint
