#include "cli/tools/lint_lib.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string_view>

namespace freshsel::lint {
namespace {

namespace fs = std::filesystem;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

/// True when `line` calls `name` as a function: the identifier appears with
/// a word boundary on the left and is followed (modulo spaces) by '('.
bool CallsFunction(const std::string& line, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    std::size_t after = pos + name.size();
    while (after < line.size() &&
           std::isspace(static_cast<unsigned char>(line[after])) != 0) {
      ++after;
    }
    if (left_ok && after < line.size() && line[after] == '(') return true;
    pos += name.size();
  }
  return false;
}

/// True when `line` uses `name` as a complete token (word boundaries on
/// both sides; ':' counts as part of a qualified name on the left so
/// "mystd::numeric_limits" never matches "std::numeric_limits").
bool UsesToken(const std::string& line, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || (!IsIdentChar(line[pos - 1]) && line[pos - 1] != ':');
    const std::size_t after = pos + name.size();
    const bool right_ok = after >= line.size() || !IsIdentChar(line[after]);
    if (left_ok && right_ok) return true;
    pos += name.size();
  }
  return false;
}

/// True when `line` mentions the `steady_clock` identifier, qualified
/// (std::chrono::steady_clock) or not.
bool MentionsSteadyClock(const std::string& line) {
  constexpr std::string_view kName = "steady_clock";
  std::size_t pos = 0;
  while ((pos = line.find(kName, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const std::size_t after = pos + kName.size();
    const bool right_ok = after >= line.size() || !IsIdentChar(line[after]);
    if (left_ok && right_ok) return true;
    pos += kName.size();
  }
  return false;
}

/// True when the file has a direct `#include <header>` line.
bool HasDirectInclude(const std::vector<std::string>& lines,
                      std::string_view header) {
  std::string needle;
  needle.reserve(header.size() + 2);
  needle.push_back('<');
  needle.append(header);
  needle.push_back('>');
  for (const std::string& line : lines) {
    const std::size_t hash = line.find_first_not_of(" \t");
    if (hash == std::string::npos || line[hash] != '#') continue;
    std::size_t directive = hash + 1;
    while (directive < line.size() &&
           std::isspace(static_cast<unsigned char>(line[directive])) != 0) {
      ++directive;
    }
    if (line.compare(directive, 7, "include") != 0) continue;
    if (line.find(needle, directive) != std::string::npos) return true;
  }
  return false;
}

/// Spot include-what-you-use rule for the two headers most often pulled in
/// transitively and silently lost in refactors: <limits> (for
/// std::numeric_limits) and <cstdint> (for the std::[u]intN_t aliases).
/// Flags the first use per header when the direct #include is missing.
void CheckIwyuSpot(const fs::path& file,
                   const std::vector<std::string>& lines,
                   std::vector<Finding>* findings) {
  struct SpotHeader {
    const char* header;
    std::vector<std::string_view> tokens;
  };
  static const std::vector<SpotHeader>& kSpots = *new std::vector<SpotHeader>{
      {"limits", {"std::numeric_limits"}},
      {"cstdint",
       {"std::int8_t", "std::int16_t", "std::int32_t", "std::int64_t",
        "std::uint8_t", "std::uint16_t", "std::uint32_t",
        "std::uint64_t"}},
  };
  for (const SpotHeader& spot : kSpots) {
    if (HasDirectInclude(lines, spot.header)) continue;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::string_view used;
      for (std::string_view token : spot.tokens) {
        if (UsesToken(lines[i], token)) {
          used = token;
          break;
        }
      }
      if (used.empty()) continue;
      findings->push_back(
          {file.string(), i + 1, "iwyu-spot",
           std::string(used) + " used without a direct #include <" +
               spot.header + ">"});
      break;  // One finding per missing header is enough.
    }
  }
}

bool IsHeader(const fs::path& path) { return path.extension() == ".h"; }

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::string FirstToken(const std::string& line, std::size_t from) {
  std::size_t start = from;
  while (start < line.size() &&
         std::isspace(static_cast<unsigned char>(line[start])) != 0) {
    ++start;
  }
  std::size_t end = start;
  while (end < line.size() && IsIdentChar(line[end])) ++end;
  return line.substr(start, end - start);
}

void CheckIncludeGuard(const fs::path& file, const fs::path& relative,
                       const std::vector<std::string>& lines,
                       const LintOptions& options,
                       std::vector<Finding>* findings) {
  const std::string expected = ExpectedGuard(relative, options.guard_prefix);
  std::size_t ifndef_line = 0;
  std::string seen_guard;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t hash = line.find_first_not_of(" \t");
    if (hash == std::string::npos) continue;
    if (line[hash] != '#') continue;
    const std::string directive = FirstToken(line, hash + 1);
    if (directive == "pragma" &&
        line.find("once", hash) != std::string::npos) {
      return;  // #pragma once is acceptable hygiene.
    }
    if (directive == "ifndef" && seen_guard.empty()) {
      seen_guard = FirstToken(line, line.find("ifndef", hash) + 6);
      ifndef_line = i + 1;
      continue;
    }
    if (directive == "define" && !seen_guard.empty()) {
      const std::string defined = FirstToken(line, line.find("define") + 6);
      if (defined != seen_guard) {
        findings->push_back(
            {file.string(), i + 1, "include-guard",
             "#define '" + defined + "' does not match #ifndef '" +
                 seen_guard + "'"});
      } else if (seen_guard != expected) {
        findings->push_back(
            {file.string(), ifndef_line, "include-guard",
             "guard '" + seen_guard + "' should be '" + expected + "'"});
      }
      return;
    }
    // Any other directive before the #ifndef/#define pair means the guard
    // does not wrap the whole header.
    break;
  }
  findings->push_back({file.string(), 1, "include-guard",
                       "header lacks an include guard (expected '" +
                           expected + "' or #pragma once)"});
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::string ExpectedGuard(const fs::path& relative,
                          const std::string& prefix) {
  std::string guard = prefix;
  for (const fs::path& part : relative) {
    for (char c : part.string()) {
      if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
        guard.push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(c))));
      } else {
        guard.push_back('_');
      }
    }
    guard.push_back('_');
  }
  // ".../NAME_H_" is already complete: the extension's dot became '_'.
  return guard;
}

void LintFile(const fs::path& file, const fs::path& relative,
              const LintOptions& options, std::vector<Finding>* findings) {
  std::ifstream in(file);
  if (!in) {
    findings->push_back({file.string(), 0, "io", "cannot open file"});
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();
  const std::vector<std::string> lines =
      SplitLines(StripCommentsAndStrings(raw));
  const bool header = IsHeader(file);
  // The obs subtree owns the process clock (obs/clock.h); everything else
  // must time through it.
  const bool in_obs_tree =
      relative.begin() != relative.end() && *relative.begin() == "obs";

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (CallsFunction(line, "rand") || CallsFunction(line, "srand") ||
        CallsFunction(line, "std::rand") ||
        CallsFunction(line, "std::srand")) {
      findings->push_back(
          {file.string(), i + 1, "no-rand",
           "rand()/srand() are banned; use freshsel::Rng for reproducible "
           "randomness"});
    }
    if (options.assert_rule && CallsFunction(line, "assert")) {
      findings->push_back(
          {file.string(), i + 1, "no-bare-assert",
           "bare assert() is banned in library code; use FRESHSEL_CHECK / "
           "FRESHSEL_DCHECK (common/check.h)"});
    }
    if (options.obs_clock_rule && !in_obs_tree &&
        MentionsSteadyClock(line)) {
      findings->push_back(
          {file.string(), i + 1, "obs-clock",
           "std::chrono::steady_clock outside obs/; time through the obs "
           "layer instead (obs::NowNs, obs::WallTimer, or the "
           "FRESHSEL_OBS_* macros) so timings are recordable and compile "
           "out with FRESHSEL_OBS=OFF"});
    }
    if (header && line.find("using namespace") != std::string::npos) {
      findings->push_back(
          {file.string(), i + 1, "no-using-namespace",
           "'using namespace' in a header leaks into every includer"});
    }
  }
  CheckIwyuSpot(file, lines, findings);
  if (header) {
    CheckIncludeGuard(file, relative, SplitLines(raw), options, findings);
  }
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintOptions& options,
                               std::size_t* files_scanned) {
  std::vector<Finding> findings;
  std::size_t scanned = 0;
  for (const std::string& arg : paths) {
    const fs::path root(arg);
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());
      for (const fs::path& file : files) {
        LintFile(file, fs::relative(file, root), options, &findings);
        ++scanned;
      }
    } else if (fs::is_regular_file(root, ec)) {
      LintFile(root, root.filename(), options, &findings);
      ++scanned;
    } else {
      findings.push_back(
          {arg, 0, "io", "no such file or directory"});
    }
  }
  if (files_scanned != nullptr) *files_scanned = scanned;
  return findings;
}

}  // namespace freshsel::lint
