// freshsel_lint: the repo-specific static-analysis rule engine for the
// freshsel tree (see DESIGN.md §12 and cli/tools/lint_lib.h for the rule
// catalog and the inline suppression syntax).
//
// Usage:
//   freshsel_lint [FLAGS] PATH...
//
// Each PATH is a file or a directory scanned recursively for .h/.cc/.cpp.
//
// Flags:
//   --format text|json|sarif   Output format (default: text). SARIF 2.1.0
//                              is what CI uploads to code scanning.
//   --output FILE              Write the report to FILE instead of stdout.
//   --list-rules               Print the rule catalog and exit.
//   --disable RULE             Skip a rule (repeatable).
//   --fix                      Apply mechanical fixes for fixable rules
//                              (iwyu-spot, failpoint-name), then re-lint.
//   --fix-dry-run              Print the fixes as a diff without applying.
//   --no-assert-rule           Allow bare assert() (test trees).
//   --guard-prefix PREFIX      Include-guard prefix (default FRESHSEL_).
//
// Exits 0 when clean, 1 when any finding is reported, 2 on usage errors.

#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "cli/tools/lint_lib.h"

namespace {

constexpr std::string_view kUsage =
    "usage: freshsel_lint [--format text|json|sarif] [--output FILE]\n"
    "                     [--list-rules] [--disable RULE]... [--fix]\n"
    "                     [--fix-dry-run] [--no-assert-rule]\n"
    "                     [--guard-prefix PREFIX] PATH...\n";

int ListRules() {
  for (const freshsel::lint::RuleInfo& rule :
       freshsel::lint::RuleCatalog()) {
    std::cout << rule.id << (rule.fixable ? "  [fixable]" : "") << "\n    "
              << rule.summary << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  freshsel::lint::LintOptions options;
  std::vector<std::string> paths;
  std::string format = "text";
  std::string output_file;
  bool fix = false;
  bool fix_dry_run = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--no-assert-rule") {
      options.assert_rule = false;
    } else if (arg == "--guard-prefix") {
      if (i + 1 >= argc) {
        std::cerr << "freshsel_lint: --guard-prefix needs a value\n";
        return 2;
      }
      options.guard_prefix = argv[++i];
    } else if (arg == "--format") {
      if (i + 1 >= argc) {
        std::cerr << "freshsel_lint: --format needs a value\n";
        return 2;
      }
      format = argv[++i];
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "freshsel_lint: unknown format '" << format
                  << "' (want text, json, or sarif)\n";
        return 2;
      }
    } else if (arg == "--output") {
      if (i + 1 >= argc) {
        std::cerr << "freshsel_lint: --output needs a value\n";
        return 2;
      }
      output_file = argv[++i];
    } else if (arg == "--disable") {
      if (i + 1 >= argc) {
        std::cerr << "freshsel_lint: --disable needs a rule id\n";
        return 2;
      }
      const std::string rule = argv[++i];
      if (!freshsel::lint::IsKnownRule(rule)) {
        std::cerr << "freshsel_lint: --disable: unknown rule '" << rule
                  << "' (see --list-rules)\n";
        return 2;
      }
      options.disabled_rules.insert(rule);
    } else if (arg == "--list-rules") {
      return ListRules();
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--fix-dry-run") {
      fix_dry_run = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "freshsel_lint: unknown flag: " << arg << "\n";
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  if (fix && fix_dry_run) {
    std::cerr << "freshsel_lint: --fix and --fix-dry-run are exclusive\n";
    return 2;
  }

  std::size_t files_scanned = 0;
  std::vector<freshsel::lint::Finding> findings =
      freshsel::lint::LintPaths(paths, options, &files_scanned);

  if (fix || fix_dry_run) {
    const std::vector<freshsel::lint::FixEdit> edits =
        freshsel::lint::ApplyFixes(findings, /*apply=*/fix);
    std::cerr << freshsel::lint::EditsToDiff(edits);
    std::cerr << "freshsel_lint: " << edits.size() << " fix(es) "
              << (fix ? "applied" : "available (dry run)") << "\n";
    if (fix) {
      // Re-lint so the report reflects the repaired tree.
      findings = freshsel::lint::LintPaths(paths, options, &files_scanned);
    }
  }

  std::string report;
  if (format == "json") {
    report = freshsel::lint::FindingsToJson(findings, files_scanned);
  } else if (format == "sarif") {
    report = freshsel::lint::FindingsToSarif(findings);
  }

  if (!output_file.empty()) {
    std::ofstream out(output_file);
    if (!out) {
      std::cerr << "freshsel_lint: cannot write " << output_file << "\n";
      return 2;
    }
    out << (format == "text"
                ? freshsel::lint::FindingsToText(findings, files_scanned)
                : report);
  }

  if (format == "text") {
    for (const freshsel::lint::Finding& f : findings) {
      std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    std::cout << "freshsel_lint: " << files_scanned << " file(s), "
              << findings.size() << " finding(s)\n";
  } else if (output_file.empty()) {
    std::cout << report;
  }
  return findings.empty() ? 0 : 1;
}
