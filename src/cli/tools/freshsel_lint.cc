// freshsel_lint: repo-specific static checks for the freshsel library tree.
//
// Rules (see DESIGN.md, "Analysis builds"):
//   no-rand               rand()/srand() are banned everywhere; use
//                         freshsel::Rng so experiments stay reproducible.
//   no-using-namespace    `using namespace` in a header leaks into every
//                         includer; banned in .h files.
//   no-bare-assert        library code must use FRESHSEL_CHECK*/DCHECK*
//                         (always-on, formatted, testable) instead of
//                         assert(); static_assert is fine.
//   include-guard         every header carries the canonical include guard
//                         FRESHSEL_<RELATIVE_PATH>_H_ (or #pragma once).
//   iwyu-spot             spot include-what-you-use checks for the two
//                         headers most often picked up transitively:
//                         std::numeric_limits needs a direct
//                         #include <limits>, and the std::[u]intN_t
//                         aliases need a direct #include <cstdint>.
//
// Usage: freshsel_lint [--no-assert-rule] [--guard-prefix PREFIX] PATH...
// Each PATH is a file or a directory scanned recursively for .h/.cc/.cpp.
// Exits 0 when clean, 1 when any finding is reported, 2 on usage errors.

#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "cli/tools/lint_lib.h"

int main(int argc, char** argv) {
  freshsel::lint::LintOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--no-assert-rule") {
      options.assert_rule = false;
    } else if (arg == "--guard-prefix") {
      if (i + 1 >= argc) {
        std::cerr << "freshsel_lint: --guard-prefix needs a value\n";
        return 2;
      }
      options.guard_prefix = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: freshsel_lint [--no-assert-rule] "
                   "[--guard-prefix PREFIX] PATH...\n";
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "freshsel_lint: unknown flag: " << arg << "\n";
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: freshsel_lint [--no-assert-rule] "
                 "[--guard-prefix PREFIX] PATH...\n";
    return 2;
  }
  std::size_t files_scanned = 0;
  const std::vector<freshsel::lint::Finding> findings =
      freshsel::lint::LintPaths(paths, options, &files_scanned);
  for (const freshsel::lint::Finding& f : findings) {
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "freshsel_lint: " << files_scanned << " file(s), "
            << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
