#ifndef FRESHSEL_CLI_ARGS_H_
#define FRESHSEL_CLI_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace freshsel::cli {

/// Minimal command-line argument map for the freshsel CLI:
/// `command --flag value --other=value`. The first non-flag token is the
/// command; flags may appear in either `--k v` or `--k=v` form. A flag
/// followed by another flag (or by the end of the line) is boolean-style
/// and stores "true": `select --strict --seed 7`.
class ArgMap {
 public:
  /// Parses argv[1..argc). Returns InvalidArgument on a token that is
  /// neither the command nor a flag.
  static Result<ArgMap> Parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  /// String flag with a default.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Integer flag; InvalidArgument when present but malformed.
  Result<std::int64_t> GetInt(const std::string& key,
                              std::int64_t fallback) const;

  /// Double flag; InvalidArgument when present but malformed.
  Result<double> GetDouble(const std::string& key, double fallback) const;

  /// Boolean flag: absent -> fallback; bare `--flag`, "true" or "1" ->
  /// true; "false" or "0" -> false; anything else is InvalidArgument.
  Result<bool> GetBool(const std::string& key, bool fallback) const;

  /// Flags that were provided but never read (typo detection).
  std::vector<std::string> UnreadFlags() const;

 private:
  std::string command_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace freshsel::cli

#endif  // FRESHSEL_CLI_ARGS_H_
