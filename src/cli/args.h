#ifndef FRESHSEL_CLI_ARGS_H_
#define FRESHSEL_CLI_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace freshsel::cli {

/// Minimal command-line argument map for the freshsel CLI:
/// `command [positional...] --flag value --other=value`. The first
/// non-flag token is the command; later non-flag tokens are positionals
/// (subcommand words, file paths - `report show run.json`). Flags may
/// appear in either `--k v` or `--k=v` form. A flag followed by another
/// flag (or by the end of the line) is boolean-style and stores "true":
/// `select --strict --seed 7`.
class ArgMap {
 public:
  /// Parses argv[1..argc).
  static Result<ArgMap> Parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  /// Non-flag tokens after the command, in order. Commands that take no
  /// positionals reject a non-empty list themselves (alongside their
  /// unread-flag check), so a stray token still fails loudly.
  const std::vector<std::string>& positionals() const { return positionals_; }
  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  /// String flag with a default.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Integer flag; InvalidArgument when present but malformed.
  Result<std::int64_t> GetInt(const std::string& key,
                              std::int64_t fallback) const;

  /// Double flag; InvalidArgument when present but malformed.
  Result<double> GetDouble(const std::string& key, double fallback) const;

  /// Boolean flag: absent -> fallback; bare `--flag`, "true" or "1" ->
  /// true; "false" or "0" -> false; anything else is InvalidArgument.
  Result<bool> GetBool(const std::string& key, bool fallback) const;

  /// Flags that were provided but never read (typo detection).
  std::vector<std::string> UnreadFlags() const;

 private:
  std::string command_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace freshsel::cli

#endif  // FRESHSEL_CLI_ARGS_H_
