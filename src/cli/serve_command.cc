#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "cli/commands.h"
#include "fault/failpoint.h"
#include "fault/retry.h"
#include "obs/json_reader.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/ingest.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace freshsel::cli {

namespace {

/// The server the signal handler forwards SIGTERM/SIGINT to. An atomic
/// pointer because the handler runs on an arbitrary thread's signal
/// context; RequestShutdown itself is async-signal-safe (one write to a
/// self-pipe).
std::atomic<serve::Server*> g_signal_server{nullptr};

void HandleShutdownSignal(int /*signal*/) {
  serve::Server* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->RequestShutdown();
}

/// Mirror of commands.cc ReadRobustnessFlags for the daemon commands
/// (kept local: serve has no --deterministic-metrics, and arms failpoints
/// for the daemon's whole lifetime).
Result<fault::RetryPolicy> ReadRetryFlags(const ArgMap& args) {
  const std::string failpoints = args.GetString("failpoints", "");
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t retry_max,
                            args.GetInt("retry-max", 3));
  FRESHSEL_ASSIGN_OR_RETURN(double retry_backoff,
                            args.GetDouble("retry-backoff", 0.01));
  if (retry_max < 1) {
    return Status::InvalidArgument("--retry-max must be >= 1");
  }
  if (retry_backoff < 0.0) {
    return Status::InvalidArgument("--retry-backoff must be >= 0");
  }
  if (!failpoints.empty()) {
    if (!FRESHSEL_FAULT_ACTIVE) {
      return Status::InvalidArgument(
          "--failpoints given, but this build compiled failpoints out "
          "(FRESHSEL_FAULT=OFF); rebuild with FRESHSEL_FAULT=ON");
    }
    fault::FailpointRegistry::Global().DisarmAll();
    FRESHSEL_RETURN_IF_ERROR(
        fault::FailpointRegistry::Global().ArmFromSpec(failpoints));
  }
  fault::RetryOptions retry_options;
  retry_options.max_attempts = static_cast<int>(retry_max);
  retry_options.initial_backoff_seconds = retry_backoff;
  retry_options.max_backoff_seconds =
      std::max(retry_backoff, retry_options.max_backoff_seconds);
  return fault::RetryPolicy(retry_options);
}

Result<estimation::DegradationMode> ReadDegradation(const ArgMap& args) {
  FRESHSEL_ASSIGN_OR_RETURN(bool strict, args.GetBool("strict", false));
  FRESHSEL_ASSIGN_OR_RETURN(bool degrade, args.GetBool("degrade", !strict));
  if (strict && degrade) {
    return Status::InvalidArgument("--strict and --degrade are exclusive");
  }
  return strict ? estimation::DegradationMode::kStrict
                : estimation::DegradationMode::kDegrade;
}

}  // namespace

Status RunServe(const ArgMap& args, std::ostream& out) {
  const std::string dir = args.GetString("dir", "");
  const std::string scenario_name = args.GetString("scenario", "default");
  const std::string socket_path = args.GetString("socket", "");
  const std::string host = args.GetString("host", "127.0.0.1");
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t port, args.GetInt("port", 0));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t t0, args.GetInt("t0", 0));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t max_inflight,
                            args.GetInt("max-inflight", 8));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t max_queue,
                            args.GetInt("max-queue", 32));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t prepared_cache,
                            args.GetInt("prepared-cache", 32));
  FRESHSEL_ASSIGN_OR_RETURN(fault::RetryPolicy retry, ReadRetryFlags(args));
  FRESHSEL_ASSIGN_OR_RETURN(estimation::DegradationMode degradation_mode,
                            ReadDegradation(args));
  FRESHSEL_RETURN_IF_ERROR(CheckUnreadFlags(args));
  FRESHSEL_RETURN_IF_ERROR(CheckNoPositionals(args));
  if (max_inflight < 1) {
    return Status::InvalidArgument("--max-inflight must be >= 1");
  }
  if (max_queue < 0) {
    return Status::InvalidArgument("--max-queue must be >= 0");
  }
  if (prepared_cache < 1) {
    return Status::InvalidArgument("--prepared-cache must be >= 1");
  }
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("--port must be in [0, 65535]");
  }

  serve::ScenarioRegistry registry;
  serve::Engine::Options engine_options;
  engine_options.prepared_capacity =
      static_cast<std::size_t>(prepared_cache);
  engine_options.ingest.retry = retry;
  engine_options.ingest.degradation_mode = degradation_mode;
  engine_options.ingest.t0 = t0;
  serve::Engine engine(&registry, engine_options);
  if (!dir.empty()) {
    FRESHSEL_ASSIGN_OR_RETURN(
        const serve::ScenarioInfo info,
        registry.Load(scenario_name, dir, engine_options.ingest));
    out << "loaded scenario '" << info.name << "' (" << info.sources
        << " sources, " << info.entities << " entities, t0 " << info.t0
        << ")\n";
  }

  serve::EngineHandler handler(&engine);
  serve::Server::Options server_options;
  server_options.unix_socket = socket_path;
  server_options.host = host;
  server_options.port = static_cast<int>(port);
  server_options.max_inflight = static_cast<std::size_t>(max_inflight);
  server_options.max_queue = static_cast<std::size_t>(max_queue);
  serve::Server server(&handler, server_options);
  // Handlers go in before Start: the server's self-pipe already exists, so
  // a SIGTERM delivered the instant the socket becomes connectable is a
  // clean early drain, not a process kill.
  g_signal_server.store(&server, std::memory_order_relaxed);
  using SignalHandler = void (*)(int);
  const SignalHandler previous_term =
      std::signal(SIGTERM, HandleShutdownSignal);
  const SignalHandler previous_int =
      std::signal(SIGINT, HandleShutdownSignal);
  const Status start_status = server.Start();
  if (!start_status.ok()) {
    std::signal(SIGTERM, previous_term);
    std::signal(SIGINT, previous_int);
    g_signal_server.store(nullptr, std::memory_order_relaxed);
    return start_status;
  }
  if (!socket_path.empty()) {
    out << "listening on unix:" << socket_path << "\n";
  } else {
    out << "listening on " << host << ":" << server.port() << "\n";
  }
  out.flush();
  server.Wait();
  std::signal(SIGTERM, previous_term);
  std::signal(SIGINT, previous_int);
  g_signal_server.store(nullptr, std::memory_order_relaxed);
  out << "drained\n";
  return Status::OK();
}

Status RunQuery(const ArgMap& args, std::ostream& out) {
  const std::string socket_path = args.GetString("socket", "");
  const std::string host = args.GetString("host", "127.0.0.1");
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t port, args.GetInt("port", 0));
  const std::string op = args.GetString("op", "query");
  FRESHSEL_ASSIGN_OR_RETURN(bool raw, args.GetBool("raw", false));
  FRESHSEL_ASSIGN_OR_RETURN(bool include_report,
                            args.GetBool("report", false));
  const std::string scenario_name = args.GetString("scenario", "default");
  const std::string load_dir = args.GetString("load-dir", "");

  std::string request;
  if (op == "query") {
    FRESHSEL_ASSIGN_OR_RETURN(serve::QueryParams params,
                              ReadQueryParams(args));
    params.scenario = scenario_name;
    params.include_report = include_report;
    request = serve::SerializeQueryRequest(true, 1, params);
  } else if (op == "load") {
    serve::LoadParams params;
    params.scenario = scenario_name;
    params.dir = load_dir;
    if (params.dir.empty()) {
      return Status::InvalidArgument("--op load requires --load-dir DIR");
    }
    request = serve::SerializeLoadRequest(true, 1, params);
  } else if (op == "ping") {
    request = serve::SerializeControlRequest(true, 1, serve::RequestOp::kPing);
  } else if (op == "list") {
    request = serve::SerializeControlRequest(true, 1,
                                             serve::RequestOp::kListScenarios);
  } else if (op == "metrics") {
    request =
        serve::SerializeControlRequest(true, 1, serve::RequestOp::kMetrics);
  } else {
    return Status::InvalidArgument(
        "unknown --op: " + op + " (expected query|load|ping|list|metrics)");
  }
  FRESHSEL_RETURN_IF_ERROR(CheckUnreadFlags(args));
  FRESHSEL_RETURN_IF_ERROR(CheckNoPositionals(args));
  if (socket_path.empty() && port == 0) {
    return Status::InvalidArgument(
        "query requires --socket PATH or --port N");
  }

  FRESHSEL_ASSIGN_OR_RETURN(
      serve::Client client,
      socket_path.empty()
          ? serve::Client::ConnectTcp(host, static_cast<int>(port))
          : serve::Client::ConnectUnix(socket_path));
  FRESHSEL_ASSIGN_OR_RETURN(const std::string response,
                            client.Call(request));
  if (raw) {
    out << response << "\n";
    return Status::OK();
  }
  FRESHSEL_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::ParseJson(response));
  if (!doc.is_object()) {
    return Status::Internal("malformed daemon response: " + response);
  }
  const obs::JsonValue* ok = doc.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::Internal("malformed daemon response: " + response);
  }
  if (!ok->AsBool()) {
    std::string code = "internal";
    std::string message = "unknown error";
    const obs::JsonValue* error = doc.Find("error");
    if (error != nullptr && error->is_object()) {
      const obs::JsonValue* code_value = error->Find("code");
      if (code_value != nullptr && code_value->is_string()) {
        code = code_value->AsString();
      }
      const obs::JsonValue* message_value = error->Find("message");
      if (message_value != nullptr && message_value->is_string()) {
        message = message_value->AsString();
      }
    }
    return serve::StatusFromWire(code,
                                 "daemon error (" + code + "): " + message);
  }
  const obs::JsonValue* result = doc.Find("result");
  if (result == nullptr || !result->is_object()) {
    return Status::Internal("malformed daemon response: " + response);
  }
  // Human-facing payloads print as their natural text; everything else
  // stays raw JSON (use --raw for scripting either way).
  const obs::JsonValue* text = result->Find("text");
  if (op == "query" && text != nullptr && text->is_string()) {
    out << text->AsString();
    return Status::OK();
  }
  const obs::JsonValue* exposition = result->Find("openmetrics");
  if (op == "metrics" && exposition != nullptr && exposition->is_string()) {
    out << exposition->AsString();
    return Status::OK();
  }
  out << response << "\n";
  return Status::OK();
}

}  // namespace freshsel::cli
