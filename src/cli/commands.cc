#include "cli/commands.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "estimation/degradation.h"
#include "fault/failpoint.h"
#include "fault/retry.h"
#include "harness/characterization.h"
#include "harness/learned_scenario.h"
#include "io/scenario_io.h"
#include "metrics/quality.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "serve/ingest.h"
#include "workloads/bl_generator.h"
#include "workloads/gdelt_generator.h"

namespace freshsel::cli {

namespace {

namespace fs = std::filesystem;

/// Shared --metrics-out / --trace-out plumbing for every command. A
/// metrics path resets the global registry so the emitted report captures
/// only this run; a trace path clears and enables span collection. The
/// command fills `report()` as it goes (labels, counters, stages) and
/// calls Finish() once, which folds the registry snapshot into the report
/// and writes both files. `--report-out` is an alias for `--metrics-out`
/// (the file is a full run report, not just metrics); `--metrics-format
/// openmetrics` swaps the JSON document for Prometheus/OpenMetrics text
/// exposition of the registry snapshot.
class ObsSession {
 public:
  ObsSession(std::string command, const ArgMap& args)
      : trace_path_(args.GetString("trace-out", "")),
        format_(args.GetString("metrics-format", "json")) {
    const std::string metrics = args.GetString("metrics-out", "");
    const std::string report_out = args.GetString("report-out", "");
    metrics_path_ = metrics.empty() ? report_out : metrics;
    report_.name = std::move(command);
    if (!metrics_path_.empty()) {
      obs::MetricsRegistry::Global().ResetAll();
    }
    if (!trace_path_.empty()) {
      obs::ClearTrace();
      obs::SetTraceEnabled(true);
    }
  }

  obs::RunReport* report() { return &report_; }

  Status Finish() {
    if (format_ != "json" && format_ != "openmetrics") {
      return Status::InvalidArgument(
          "unknown --metrics-format: " + format_ +
          " (expected json or openmetrics)");
    }
    if (!trace_path_.empty()) {
      obs::SetTraceEnabled(false);
      FRESHSEL_RETURN_IF_ERROR(obs::WriteTraceFile(trace_path_));
    }
    if (!metrics_path_.empty()) {
      report_.CaptureGlobalMetrics();
      if (format_ == "openmetrics") {
        std::ofstream file(metrics_path_);
        if (!file) {
          return Status::IoError("cannot write " + metrics_path_);
        }
        file << report_.metrics.ToOpenMetrics();
        if (!file.good()) {
          return Status::IoError("failed writing " + metrics_path_);
        }
      } else {
        FRESHSEL_RETURN_IF_ERROR(report_.WriteJsonFile(metrics_path_));
      }
    }
    return Status::OK();
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string format_;
  obs::RunReport report_;
};

/// Shared robustness plumbing (DESIGN.md §11): `--failpoints SPEC` arms
/// the global registry for this run (previous arms are cleared so repeated
/// in-process runs replay identically), `--retry-max` / `--retry-backoff`
/// shape the RetryPolicy driving scenario I/O, and
/// `--deterministic-metrics` makes the run report byte-reproducible.
struct RobustnessOptions {
  fault::RetryPolicy retry;
  bool deterministic_metrics = false;
};

Result<RobustnessOptions> ReadRobustnessFlags(const ArgMap& args) {
  const std::string failpoints = args.GetString("failpoints", "");
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t retry_max,
                            args.GetInt("retry-max", 3));
  FRESHSEL_ASSIGN_OR_RETURN(double retry_backoff,
                            args.GetDouble("retry-backoff", 0.01));
  RobustnessOptions options;
  FRESHSEL_ASSIGN_OR_RETURN(options.deterministic_metrics,
                            args.GetBool("deterministic-metrics", false));
  if (retry_max < 1) {
    return Status::InvalidArgument("--retry-max must be >= 1");
  }
  if (retry_backoff < 0.0) {
    return Status::InvalidArgument("--retry-backoff must be >= 0");
  }
  if (!failpoints.empty()) {
    if (!FRESHSEL_FAULT_ACTIVE) {
      return Status::InvalidArgument(
          "--failpoints given, but this build compiled failpoints out "
          "(FRESHSEL_FAULT=OFF); rebuild with FRESHSEL_FAULT=ON");
    }
    fault::FailpointRegistry::Global().DisarmAll();
    FRESHSEL_RETURN_IF_ERROR(
        fault::FailpointRegistry::Global().ArmFromSpec(failpoints));
  }
  fault::RetryOptions retry_options;
  retry_options.max_attempts = static_cast<int>(retry_max);
  retry_options.initial_backoff_seconds = retry_backoff;
  retry_options.max_backoff_seconds =
      std::max(retry_backoff, retry_options.max_backoff_seconds);
  options.retry = fault::RetryPolicy(retry_options);
  return options;
}

/// `--strict` aborts on unfittable sources; `--degrade` (the default)
/// substitutes subdomain priors and reports them.
Result<estimation::DegradationMode> ReadDegradationMode(const ArgMap& args) {
  FRESHSEL_ASSIGN_OR_RETURN(bool strict, args.GetBool("strict", false));
  FRESHSEL_ASSIGN_OR_RETURN(bool degrade, args.GetBool("degrade", !strict));
  if (strict && degrade) {
    return Status::InvalidArgument("--strict and --degrade are exclusive");
  }
  return strict ? estimation::DegradationMode::kStrict
                : estimation::DegradationMode::kDegrade;
}

void ReportDegradation(const estimation::DegradationReport& degradation,
                       obs::RunReport* report, std::ostream& out) {
  report->counters["degraded_sources"] = degradation.degraded.size();
  for (const estimation::DegradedSource& source : degradation.degraded) {
    report->decision_log.AddDegradation(source.name, source.reason);
    out << "degraded: " << source.name << " - " << source.reason << "\n";
  }
}

}  // namespace

Status CheckUnreadFlags(const ArgMap& args) {
  const std::vector<std::string> unread = args.UnreadFlags();
  if (!unread.empty()) {
    return Status::InvalidArgument("unknown flag(s): --" +
                                   Join(unread, ", --"));
  }
  return Status::OK();
}

Status CheckNoPositionals(const ArgMap& args) {
  if (!args.positionals().empty()) {
    return Status::InvalidArgument("unexpected argument: " +
                                   args.positionals().front());
  }
  return Status::OK();
}

Status RunSimulate(const ArgMap& args, std::ostream& out) {
  const std::string workload = args.GetString("workload", "bl");
  const std::string out_dir = args.GetString("out", "");
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t seed, args.GetInt("seed", 7));
  FRESHSEL_ASSIGN_OR_RETURN(double scale, args.GetDouble("scale", 0.5));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t locations,
                            args.GetInt("locations", 0));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t categories,
                            args.GetInt("categories", 0));
  ObsSession obs_session("simulate", args);
  FRESHSEL_ASSIGN_OR_RETURN(RobustnessOptions robust,
                            ReadRobustnessFlags(args));
  obs_session.report()->deterministic = robust.deterministic_metrics;
  FRESHSEL_RETURN_IF_ERROR(CheckUnreadFlags(args));
  FRESHSEL_RETURN_IF_ERROR(CheckNoPositionals(args));
  if (out_dir.empty()) {
    return Status::InvalidArgument("simulate requires --out DIR");
  }
  obs::RunReport& report = *obs_session.report();
  report.labels["workload"] = workload;
  obs::WallTimer stage_timer;

  Result<workloads::Scenario> scenario = [&]() -> Result<workloads::Scenario> {
    if (workload == "bl") {
      workloads::BlConfig config;
      config.seed = static_cast<std::uint64_t>(seed);
      config.scale = scale;
      if (locations > 0) {
        config.locations = static_cast<std::uint32_t>(locations);
      }
      if (categories > 0) {
        config.categories = static_cast<std::uint32_t>(categories);
      }
      return workloads::GenerateBlScenario(config);
    }
    if (workload == "gdelt") {
      workloads::GdeltConfig config;
      config.seed = static_cast<std::uint64_t>(seed);
      config.scale = scale;
      if (locations > 0) {
        config.locations = static_cast<std::uint32_t>(locations);
      }
      if (categories > 0) {
        config.event_types = static_cast<std::uint32_t>(categories);
      }
      return workloads::GenerateGdeltScenario(config);
    }
    return Status::InvalidArgument("unknown --workload: " + workload +
                                   " (expected bl or gdelt)");
  }();
  FRESHSEL_RETURN_IF_ERROR(scenario.status().ok() ? Status::OK()
                                                  : scenario.status());
  report.AddStage("generate", stage_timer.ElapsedSeconds());
  report.counters["entities"] = scenario->world.entity_count();
  report.counters["sources"] = scenario->sources.size();
  stage_timer.Restart();

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  FRESHSEL_RETURN_IF_ERROR(io::WriteWorldCsv(
      scenario->world, out_dir + "/world.csv", robust.retry));
  for (std::size_t i = 0; i < scenario->sources.size(); ++i) {
    FRESHSEL_RETURN_IF_ERROR(io::WriteSourceHistoryCsv(
        scenario->sources[i],
        out_dir + "/" + StringPrintf("source_%03zu.csv", i), robust.retry));
  }
  // Manifest: the training cutoff and class labels.
  std::ofstream manifest(out_dir + "/manifest.csv");
  if (!manifest) return Status::IoError("cannot write manifest");
  manifest << "t0," << scenario->t0 << "\n";
  for (std::size_t i = 0; i < scenario->sources.size(); ++i) {
    manifest << StringPrintf("source_%03zu", i) << ','
             << scenario->sources[i].name() << ','
             << workloads::SourceClassName(scenario->classes[i]) << "\n";
  }
  report.AddStage("write", stage_timer.ElapsedSeconds());
  out << "wrote " << scenario->sources.size() << " sources + world ("
      << scenario->world.entity_count() << " entities, horizon "
      << scenario->world.horizon() << ", t0 " << scenario->t0 << ") to "
      << out_dir << "\n";
  return obs_session.Finish();
}

Status RunCharacterize(const ArgMap& args, std::ostream& out) {
  const std::string dir = args.GetString("dir", "");
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t t0, args.GetInt("t0", 0));
  ObsSession obs_session("characterize", args);
  FRESHSEL_ASSIGN_OR_RETURN(RobustnessOptions robust,
                            ReadRobustnessFlags(args));
  obs_session.report()->deterministic = robust.deterministic_metrics;
  FRESHSEL_ASSIGN_OR_RETURN(estimation::DegradationMode degradation_mode,
                            ReadDegradationMode(args));
  FRESHSEL_RETURN_IF_ERROR(CheckUnreadFlags(args));
  FRESHSEL_RETURN_IF_ERROR(CheckNoPositionals(args));
  if (dir.empty()) {
    return Status::InvalidArgument("characterize requires --dir DIR");
  }
  obs::RunReport& report = *obs_session.report();
  obs::WallTimer stage_timer;
  FRESHSEL_ASSIGN_OR_RETURN(serve::ScenarioDirData scenario,
                            serve::ReadScenarioDir(dir, robust.retry));
  if (t0 <= 0) t0 = scenario.manifest_t0;  // Fall back to the manifest.
  if (t0 <= 0) {
    return Status::InvalidArgument(
        "no --t0 given and the directory has no manifest t0");
  }

  // Wrap the loaded data as a Scenario so the shared characterization
  // harness can run on it (classes unknown for external data).
  workloads::Scenario wrapped{std::move(scenario.world),
                              std::move(scenario.sources),
                              {},
                              t0};
  wrapped.classes.assign(wrapped.sources.size(),
                         workloads::SourceClass::kMedium);
  report.AddStage("load", stage_timer.ElapsedSeconds());
  report.counters["sources"] = wrapped.sources.size();
  stage_timer.Restart();
  FRESHSEL_ASSIGN_OR_RETURN(
      harness::LearnedScenario learned,
      harness::LearnScenarioRobust(wrapped, degradation_mode));
  report.AddStage("learn", stage_timer.ElapsedSeconds());
  ReportDegradation(learned.degradation, &report, out);
  stage_timer.Restart();
  const std::vector<harness::SourceCharacterization> rows =
      harness::CharacterizeSources(learned, wrapped.classes);
  report.AddStage("characterize", stage_timer.ElapsedSeconds());

  TablePrinter table("Source characterization at t0=" + std::to_string(t0),
                     {"source", "items", "coverage", "freshness",
                      "upd_interval", "Gi(7d)", "Gi(inf)", "Gd(inf)"});
  for (const harness::SourceCharacterization& row : rows) {
    table.AddRow({row.name, std::to_string(row.items_at_t0),
                  FormatDouble(row.coverage, 3),
                  FormatDouble(row.local_freshness, 3),
                  FormatDouble(row.update_interval, 2),
                  FormatDouble(row.insert_g_week, 3),
                  FormatDouble(row.insert_g_plateau, 3),
                  FormatDouble(row.delete_g_plateau, 3)});
  }
  table.Print(out);
  return obs_session.Finish();
}

Result<serve::QueryParams> ReadQueryParams(const ArgMap& args) {
  serve::QueryParams params;
  FRESHSEL_ASSIGN_OR_RETURN(params.t0, args.GetInt("t0", 0));
  params.metric = args.GetString("metric", "coverage");
  params.gain = args.GetString("gain", "linear");
  params.algorithm = args.GetString("algorithm", "maxsub");
  FRESHSEL_ASSIGN_OR_RETURN(params.points, args.GetInt("points", 10));
  FRESHSEL_ASSIGN_OR_RETURN(params.stride, args.GetInt("stride", 7));
  FRESHSEL_ASSIGN_OR_RETURN(
      params.budget,
      args.GetDouble("budget", std::numeric_limits<double>::infinity()));
  FRESHSEL_ASSIGN_OR_RETURN(params.max_divisor,
                            args.GetInt("max-divisor", 1));
  FRESHSEL_ASSIGN_OR_RETURN(params.kappa, args.GetInt("kappa", 5));
  FRESHSEL_ASSIGN_OR_RETURN(params.restarts, args.GetInt("restarts", 20));
  FRESHSEL_ASSIGN_OR_RETURN(params.seed, args.GetInt("seed", 42));
  FRESHSEL_ASSIGN_OR_RETURN(params.threads, args.GetInt("threads", 1));
  FRESHSEL_ASSIGN_OR_RETURN(params.stochastic,
                            args.GetBool("stochastic", false));
  FRESHSEL_ASSIGN_OR_RETURN(params.stochastic_epsilon,
                            args.GetDouble("stochastic-epsilon", 0.1));
  if (params.stochastic_epsilon <= 0.0 || params.stochastic_epsilon >= 1.0) {
    return Status::InvalidArgument(
        "--stochastic-epsilon must be in (0, 1)");
  }
  FRESHSEL_ASSIGN_OR_RETURN(params.fast_math,
                            args.GetBool("fast-math-kernels", false));
  FRESHSEL_ASSIGN_OR_RETURN(params.lazy, args.GetBool("lazy", true));
  FRESHSEL_ASSIGN_OR_RETURN(params.incremental,
                            args.GetBool("incremental", true));
  const std::string roster_flag = args.GetString("roster", "");
  if (!roster_flag.empty()) {
    params.roster = Split(roster_flag, ',');
  }
  return params;
}

Status RunSelect(const ArgMap& args, std::ostream& out) {
  const std::string dir = args.GetString("dir", "");
  FRESHSEL_ASSIGN_OR_RETURN(serve::QueryParams params,
                            ReadQueryParams(args));
  ObsSession obs_session("select", args);
  FRESHSEL_ASSIGN_OR_RETURN(RobustnessOptions robust,
                            ReadRobustnessFlags(args));
  obs_session.report()->deterministic = robust.deterministic_metrics;
  FRESHSEL_ASSIGN_OR_RETURN(estimation::DegradationMode degradation_mode,
                            ReadDegradationMode(args));
  FRESHSEL_RETURN_IF_ERROR(CheckUnreadFlags(args));
  FRESHSEL_RETURN_IF_ERROR(CheckNoPositionals(args));
  if (dir.empty()) {
    return Status::InvalidArgument("select requires --dir DIR");
  }
  obs::RunReport& report = *obs_session.report();
  report.labels["metric"] = params.metric;
  report.labels["gain"] = params.gain;
  obs::WallTimer stage_timer;

  FRESHSEL_ASSIGN_OR_RETURN(serve::ScenarioDirData data,
                            serve::ReadScenarioDir(dir, robust.retry));
  report.AddStage("load", stage_timer.ElapsedSeconds());
  stage_timer.Restart();
  serve::IngestOptions ingest;
  ingest.retry = robust.retry;
  ingest.degradation_mode = degradation_mode;
  ingest.t0 = params.t0;  // --t0 overrides the manifest cutoff.
  FRESHSEL_ASSIGN_OR_RETURN(
      serve::ResidentScenario resident,
      serve::LearnScenario("batch", std::move(data), ingest));
  report.AddStage("learn", stage_timer.ElapsedSeconds());
  ReportDegradation(resident.degradation, &report, out);

  // The same core the daemon answers queries with (serve/engine.h): batch
  // output and daemon responses are byte-identical by construction.
  auto scenario =
      std::make_shared<const serve::ResidentScenario>(std::move(resident));
  FRESHSEL_RETURN_IF_ERROR(
      serve::ExecuteSelect(std::move(scenario), params, out, &report));
  return obs_session.Finish();
}

int RunMain(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  Result<ArgMap> args = ArgMap::Parse(argc, argv);
  if (!args.ok()) {
    err << args.status().ToString() << "\n";
    return 2;
  }
  Status status;
  if (args->command() == "simulate") {
    status = RunSimulate(*args, out);
  } else if (args->command() == "characterize") {
    status = RunCharacterize(*args, out);
  } else if (args->command() == "select") {
    status = RunSelect(*args, out);
  } else if (args->command() == "report") {
    status = RunReportCommand(*args, out);
  } else if (args->command() == "serve") {
    status = RunServe(*args, out);
  } else if (args->command() == "query") {
    status = RunQuery(*args, out);
  } else {
    err << "usage: freshsel <simulate|characterize|select|report|serve|"
           "query> [--flags]\n"
        << "  simulate     --workload bl|gdelt --out DIR [--seed N "
           "--scale X --locations N --categories N]\n"
        << "  characterize --dir DIR --t0 N\n"
        << "  select       --dir DIR --t0 N [--metric coverage|accuracy|"
           "freshness|mix --gain linear|quad|step|data\n"
        << "                --algorithm greedy|maxsub|grasp|budgeted "
           "--points N --stride N --budget X\n"
        << "                --max-divisor M --kappa K --restarts R "
           "--seed S --threads T\n"
        << "                --stochastic (sampled greedy rounds, "
           "--stochastic-epsilon E, seeded by --seed)\n"
        << "                --fast-math-kernels (SIMD reductions in the "
           "estimator; small bounded deviation)]\n"
        << "                --lazy=false (plain greedy scans) "
           "--incremental=false (full re-evaluation)\n"
        << "                --roster s1,s2,... (restrict selection to named "
           "sources)]\n"
        << "  serve        --dir DIR [--socket PATH | --host H --port N] "
           "[--scenario NAME --max-inflight N\n"
        << "                --max-queue N --prepared-cache N] - selection "
           "daemon (NDJSON; GET /metrics scrapes)\n"
        << "  query        [--socket PATH | --host H --port N] [--op "
           "ping|list|metrics|query --raw\n"
        << "                + the select knobs] - one request against a "
           "running daemon\n"
        << "  report       show RUN.json [--rounds N --top N] | diff A.json "
           "B.json |\n"
        << "               check-regression FRESH.json --baseline BASE.json "
           "[--tolerance X --keys-only]\n"
        << "  every command also accepts --metrics-out FILE (JSON run "
           "report; --report-out is an alias,\n"
        << "                          --metrics-format json|openmetrics "
           "picks the encoding)\n"
        << "                          and --trace-out FILE (chrome://tracing "
           "JSON)\n"
        << "  robustness flags: --failpoints 'name=once|always|nth:N|"
           "prob:P[:SEED]' --retry-max N --retry-backoff SECONDS\n"
        << "                    --deterministic-metrics (byte-stable "
           "--metrics-out), and for characterize/select:\n"
        << "                    --strict (abort on unfittable sources) | "
           "--degrade (substitute subdomain priors; default)\n";
    return args->command().empty() ? 2 : 2;
  }
  if (!status.ok()) {
    err << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace freshsel::cli
