#include "cli/commands.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "estimation/degradation.h"
#include "estimation/quality_estimator.h"
#include "estimation/source_profile.h"
#include "estimation/world_change_model.h"
#include "fault/failpoint.h"
#include "fault/retry.h"
#include "harness/characterization.h"
#include "harness/learned_scenario.h"
#include "io/scenario_io.h"
#include "metrics/quality.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "selection/budgeted_greedy.h"
#include "selection/cached_oracle.h"
#include "selection/cost.h"
#include "selection/frequency_selection.h"
#include "selection/selector.h"
#include "workloads/bl_generator.h"
#include "workloads/gdelt_generator.h"

namespace freshsel::cli {

namespace {

namespace fs = std::filesystem;

/// A scenario loaded from a directory written by `simulate`.
struct LoadedScenario {
  world::World world;
  std::vector<source::SourceHistory> sources;
  TimePoint manifest_t0 = 0;  ///< 0 when no manifest was found.
};

Result<LoadedScenario> LoadScenarioDir(const std::string& dir,
                                       const fault::RetryPolicy& retry) {
  const fs::path root(dir);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status::NotFound("not a directory: " + dir);
  }
  FRESHSEL_ASSIGN_OR_RETURN(
      world::World world,
      io::ReadWorldCsv((root / "world.csv").string(), retry));
  std::vector<std::string> source_files;
  for (const fs::directory_entry& entry : fs::directory_iterator(root)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("source_", 0) == 0) {
      source_files.push_back(entry.path().string());
    }
  }
  std::sort(source_files.begin(), source_files.end());
  if (source_files.empty()) {
    return Status::NotFound("no source_*.csv files in " + dir);
  }
  std::vector<source::SourceHistory> sources;
  sources.reserve(source_files.size());
  for (const std::string& file : source_files) {
    FRESHSEL_ASSIGN_OR_RETURN(source::SourceHistory history,
                              io::ReadSourceHistoryCsv(file, retry));
    sources.push_back(std::move(history));
  }
  // Optional manifest: its first line is "t0,<value>".
  TimePoint manifest_t0 = 0;
  std::ifstream manifest(root / "manifest.csv");
  std::string first_line;
  if (manifest && std::getline(manifest, first_line)) {
    const std::vector<std::string> fields = Split(first_line, ',');
    if (fields.size() == 2 && fields[0] == "t0") {
      const char* begin = fields[1].data();
      const char* end = begin + fields[1].size();
      std::int64_t value = 0;
      auto [ptr, errc] = std::from_chars(begin, end, value);
      if (errc == std::errc() && ptr == end) manifest_t0 = value;
    }
  }
  return LoadedScenario{std::move(world), std::move(sources), manifest_t0};
}

/// Shared --metrics-out / --trace-out plumbing for every command. A
/// metrics path resets the global registry so the emitted report captures
/// only this run; a trace path clears and enables span collection. The
/// command fills `report()` as it goes (labels, counters, stages) and
/// calls Finish() once, which folds the registry snapshot into the report
/// and writes both files. `--report-out` is an alias for `--metrics-out`
/// (the file is a full run report, not just metrics); `--metrics-format
/// openmetrics` swaps the JSON document for Prometheus/OpenMetrics text
/// exposition of the registry snapshot.
class ObsSession {
 public:
  ObsSession(std::string command, const ArgMap& args)
      : trace_path_(args.GetString("trace-out", "")),
        format_(args.GetString("metrics-format", "json")) {
    const std::string metrics = args.GetString("metrics-out", "");
    const std::string report_out = args.GetString("report-out", "");
    metrics_path_ = metrics.empty() ? report_out : metrics;
    report_.name = std::move(command);
    if (!metrics_path_.empty()) {
      obs::MetricsRegistry::Global().ResetAll();
    }
    if (!trace_path_.empty()) {
      obs::ClearTrace();
      obs::SetTraceEnabled(true);
    }
  }

  obs::RunReport* report() { return &report_; }

  Status Finish() {
    if (format_ != "json" && format_ != "openmetrics") {
      return Status::InvalidArgument(
          "unknown --metrics-format: " + format_ +
          " (expected json or openmetrics)");
    }
    if (!trace_path_.empty()) {
      obs::SetTraceEnabled(false);
      FRESHSEL_RETURN_IF_ERROR(obs::WriteTraceFile(trace_path_));
    }
    if (!metrics_path_.empty()) {
      report_.CaptureGlobalMetrics();
      if (format_ == "openmetrics") {
        std::ofstream file(metrics_path_);
        if (!file) {
          return Status::IoError("cannot write " + metrics_path_);
        }
        file << report_.metrics.ToOpenMetrics();
        if (!file.good()) {
          return Status::IoError("failed writing " + metrics_path_);
        }
      } else {
        FRESHSEL_RETURN_IF_ERROR(report_.WriteJsonFile(metrics_path_));
      }
    }
    return Status::OK();
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string format_;
  obs::RunReport report_;
};

struct LearnedModels {
  estimation::WorldChangeModel world_model;
  std::vector<estimation::SourceProfile> profiles;
  estimation::DegradationReport degradation;
};

Result<LearnedModels> LearnModels(const LoadedScenario& scenario,
                                  TimePoint t0,
                                  estimation::DegradationMode mode) {
  FRESHSEL_ASSIGN_OR_RETURN(
      estimation::WorldChangeModel world_model,
      estimation::WorldChangeModel::Learn(scenario.world, t0));
  FRESHSEL_ASSIGN_OR_RETURN(
      estimation::RobustProfiles robust,
      estimation::LearnSourceProfilesRobust(scenario.world, scenario.sources,
                                            t0, mode));
  return LearnedModels{std::move(world_model), std::move(robust.profiles),
                       std::move(robust.report)};
}

/// Shared robustness plumbing (DESIGN.md §11): `--failpoints SPEC` arms
/// the global registry for this run (previous arms are cleared so repeated
/// in-process runs replay identically), `--retry-max` / `--retry-backoff`
/// shape the RetryPolicy driving scenario I/O, and
/// `--deterministic-metrics` makes the run report byte-reproducible.
struct RobustnessOptions {
  fault::RetryPolicy retry;
  bool deterministic_metrics = false;
};

Result<RobustnessOptions> ReadRobustnessFlags(const ArgMap& args) {
  const std::string failpoints = args.GetString("failpoints", "");
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t retry_max,
                            args.GetInt("retry-max", 3));
  FRESHSEL_ASSIGN_OR_RETURN(double retry_backoff,
                            args.GetDouble("retry-backoff", 0.01));
  RobustnessOptions options;
  FRESHSEL_ASSIGN_OR_RETURN(options.deterministic_metrics,
                            args.GetBool("deterministic-metrics", false));
  if (retry_max < 1) {
    return Status::InvalidArgument("--retry-max must be >= 1");
  }
  if (retry_backoff < 0.0) {
    return Status::InvalidArgument("--retry-backoff must be >= 0");
  }
  if (!failpoints.empty()) {
    if (!FRESHSEL_FAULT_ACTIVE) {
      return Status::InvalidArgument(
          "--failpoints given, but this build compiled failpoints out "
          "(FRESHSEL_FAULT=OFF); rebuild with FRESHSEL_FAULT=ON");
    }
    fault::FailpointRegistry::Global().DisarmAll();
    FRESHSEL_RETURN_IF_ERROR(
        fault::FailpointRegistry::Global().ArmFromSpec(failpoints));
  }
  fault::RetryOptions retry_options;
  retry_options.max_attempts = static_cast<int>(retry_max);
  retry_options.initial_backoff_seconds = retry_backoff;
  retry_options.max_backoff_seconds =
      std::max(retry_backoff, retry_options.max_backoff_seconds);
  options.retry = fault::RetryPolicy(retry_options);
  return options;
}

/// `--strict` aborts on unfittable sources; `--degrade` (the default)
/// substitutes subdomain priors and reports them.
Result<estimation::DegradationMode> ReadDegradationMode(const ArgMap& args) {
  FRESHSEL_ASSIGN_OR_RETURN(bool strict, args.GetBool("strict", false));
  FRESHSEL_ASSIGN_OR_RETURN(bool degrade, args.GetBool("degrade", !strict));
  if (strict && degrade) {
    return Status::InvalidArgument("--strict and --degrade are exclusive");
  }
  return strict ? estimation::DegradationMode::kStrict
                : estimation::DegradationMode::kDegrade;
}

void ReportDegradation(const estimation::DegradationReport& degradation,
                       obs::RunReport* report, std::ostream& out) {
  report->counters["degraded_sources"] = degradation.degraded.size();
  for (const estimation::DegradedSource& source : degradation.degraded) {
    report->decision_log.AddDegradation(source.name, source.reason);
    out << "degraded: " << source.name << " - " << source.reason << "\n";
  }
}

}  // namespace

Status CheckUnreadFlags(const ArgMap& args) {
  const std::vector<std::string> unread = args.UnreadFlags();
  if (!unread.empty()) {
    return Status::InvalidArgument("unknown flag(s): --" +
                                   Join(unread, ", --"));
  }
  return Status::OK();
}

Status CheckNoPositionals(const ArgMap& args) {
  if (!args.positionals().empty()) {
    return Status::InvalidArgument("unexpected argument: " +
                                   args.positionals().front());
  }
  return Status::OK();
}

Status RunSimulate(const ArgMap& args, std::ostream& out) {
  const std::string workload = args.GetString("workload", "bl");
  const std::string out_dir = args.GetString("out", "");
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t seed, args.GetInt("seed", 7));
  FRESHSEL_ASSIGN_OR_RETURN(double scale, args.GetDouble("scale", 0.5));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t locations,
                            args.GetInt("locations", 0));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t categories,
                            args.GetInt("categories", 0));
  ObsSession obs_session("simulate", args);
  FRESHSEL_ASSIGN_OR_RETURN(RobustnessOptions robust,
                            ReadRobustnessFlags(args));
  obs_session.report()->deterministic = robust.deterministic_metrics;
  FRESHSEL_RETURN_IF_ERROR(CheckUnreadFlags(args));
  FRESHSEL_RETURN_IF_ERROR(CheckNoPositionals(args));
  if (out_dir.empty()) {
    return Status::InvalidArgument("simulate requires --out DIR");
  }
  obs::RunReport& report = *obs_session.report();
  report.labels["workload"] = workload;
  obs::WallTimer stage_timer;

  Result<workloads::Scenario> scenario = [&]() -> Result<workloads::Scenario> {
    if (workload == "bl") {
      workloads::BlConfig config;
      config.seed = static_cast<std::uint64_t>(seed);
      config.scale = scale;
      if (locations > 0) {
        config.locations = static_cast<std::uint32_t>(locations);
      }
      if (categories > 0) {
        config.categories = static_cast<std::uint32_t>(categories);
      }
      return workloads::GenerateBlScenario(config);
    }
    if (workload == "gdelt") {
      workloads::GdeltConfig config;
      config.seed = static_cast<std::uint64_t>(seed);
      config.scale = scale;
      if (locations > 0) {
        config.locations = static_cast<std::uint32_t>(locations);
      }
      if (categories > 0) {
        config.event_types = static_cast<std::uint32_t>(categories);
      }
      return workloads::GenerateGdeltScenario(config);
    }
    return Status::InvalidArgument("unknown --workload: " + workload +
                                   " (expected bl or gdelt)");
  }();
  FRESHSEL_RETURN_IF_ERROR(scenario.status().ok() ? Status::OK()
                                                  : scenario.status());
  report.AddStage("generate", stage_timer.ElapsedSeconds());
  report.counters["entities"] = scenario->world.entity_count();
  report.counters["sources"] = scenario->sources.size();
  stage_timer.Restart();

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  FRESHSEL_RETURN_IF_ERROR(io::WriteWorldCsv(
      scenario->world, out_dir + "/world.csv", robust.retry));
  for (std::size_t i = 0; i < scenario->sources.size(); ++i) {
    FRESHSEL_RETURN_IF_ERROR(io::WriteSourceHistoryCsv(
        scenario->sources[i],
        out_dir + "/" + StringPrintf("source_%03zu.csv", i), robust.retry));
  }
  // Manifest: the training cutoff and class labels.
  std::ofstream manifest(out_dir + "/manifest.csv");
  if (!manifest) return Status::IoError("cannot write manifest");
  manifest << "t0," << scenario->t0 << "\n";
  for (std::size_t i = 0; i < scenario->sources.size(); ++i) {
    manifest << StringPrintf("source_%03zu", i) << ','
             << scenario->sources[i].name() << ','
             << workloads::SourceClassName(scenario->classes[i]) << "\n";
  }
  report.AddStage("write", stage_timer.ElapsedSeconds());
  out << "wrote " << scenario->sources.size() << " sources + world ("
      << scenario->world.entity_count() << " entities, horizon "
      << scenario->world.horizon() << ", t0 " << scenario->t0 << ") to "
      << out_dir << "\n";
  return obs_session.Finish();
}

Status RunCharacterize(const ArgMap& args, std::ostream& out) {
  const std::string dir = args.GetString("dir", "");
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t t0, args.GetInt("t0", 0));
  ObsSession obs_session("characterize", args);
  FRESHSEL_ASSIGN_OR_RETURN(RobustnessOptions robust,
                            ReadRobustnessFlags(args));
  obs_session.report()->deterministic = robust.deterministic_metrics;
  FRESHSEL_ASSIGN_OR_RETURN(estimation::DegradationMode degradation_mode,
                            ReadDegradationMode(args));
  FRESHSEL_RETURN_IF_ERROR(CheckUnreadFlags(args));
  FRESHSEL_RETURN_IF_ERROR(CheckNoPositionals(args));
  if (dir.empty()) {
    return Status::InvalidArgument("characterize requires --dir DIR");
  }
  obs::RunReport& report = *obs_session.report();
  obs::WallTimer stage_timer;
  FRESHSEL_ASSIGN_OR_RETURN(LoadedScenario scenario,
                            LoadScenarioDir(dir, robust.retry));
  if (t0 <= 0) t0 = scenario.manifest_t0;  // Fall back to the manifest.
  if (t0 <= 0) {
    return Status::InvalidArgument(
        "no --t0 given and the directory has no manifest t0");
  }

  // Wrap the loaded data as a Scenario so the shared characterization
  // harness can run on it (classes unknown for external data).
  workloads::Scenario wrapped{std::move(scenario.world),
                              std::move(scenario.sources),
                              {},
                              t0};
  wrapped.classes.assign(wrapped.sources.size(),
                         workloads::SourceClass::kMedium);
  report.AddStage("load", stage_timer.ElapsedSeconds());
  report.counters["sources"] = wrapped.sources.size();
  stage_timer.Restart();
  FRESHSEL_ASSIGN_OR_RETURN(
      harness::LearnedScenario learned,
      harness::LearnScenarioRobust(wrapped, degradation_mode));
  report.AddStage("learn", stage_timer.ElapsedSeconds());
  ReportDegradation(learned.degradation, &report, out);
  stage_timer.Restart();
  const std::vector<harness::SourceCharacterization> rows =
      harness::CharacterizeSources(learned, wrapped.classes);
  report.AddStage("characterize", stage_timer.ElapsedSeconds());

  TablePrinter table("Source characterization at t0=" + std::to_string(t0),
                     {"source", "items", "coverage", "freshness",
                      "upd_interval", "Gi(7d)", "Gi(inf)", "Gd(inf)"});
  for (const harness::SourceCharacterization& row : rows) {
    table.AddRow({row.name, std::to_string(row.items_at_t0),
                  FormatDouble(row.coverage, 3),
                  FormatDouble(row.local_freshness, 3),
                  FormatDouble(row.update_interval, 2),
                  FormatDouble(row.insert_g_week, 3),
                  FormatDouble(row.insert_g_plateau, 3),
                  FormatDouble(row.delete_g_plateau, 3)});
  }
  table.Print(out);
  return obs_session.Finish();
}

Status RunSelect(const ArgMap& args, std::ostream& out) {
  const std::string dir = args.GetString("dir", "");
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t t0, args.GetInt("t0", 0));
  const std::string metric_name = args.GetString("metric", "coverage");
  const std::string gain_name = args.GetString("gain", "linear");
  const std::string algorithm_name =
      args.GetString("algorithm", "maxsub");
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t points, args.GetInt("points", 10));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t stride, args.GetInt("stride", 7));
  FRESHSEL_ASSIGN_OR_RETURN(
      double budget,
      args.GetDouble("budget", std::numeric_limits<double>::infinity()));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t max_divisor,
                            args.GetInt("max-divisor", 1));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t kappa, args.GetInt("kappa", 5));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t restarts,
                            args.GetInt("restarts", 20));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t seed, args.GetInt("seed", 42));
  FRESHSEL_ASSIGN_OR_RETURN(std::int64_t threads, args.GetInt("threads", 1));
  FRESHSEL_ASSIGN_OR_RETURN(bool stochastic,
                            args.GetBool("stochastic", false));
  FRESHSEL_ASSIGN_OR_RETURN(double stochastic_epsilon,
                            args.GetDouble("stochastic-epsilon", 0.1));
  if (stochastic_epsilon <= 0.0 || stochastic_epsilon >= 1.0) {
    return Status::InvalidArgument(
        "--stochastic-epsilon must be in (0, 1)");
  }
  FRESHSEL_ASSIGN_OR_RETURN(bool fast_math,
                            args.GetBool("fast-math-kernels", false));
  ObsSession obs_session("select", args);
  FRESHSEL_ASSIGN_OR_RETURN(RobustnessOptions robust,
                            ReadRobustnessFlags(args));
  obs_session.report()->deterministic = robust.deterministic_metrics;
  FRESHSEL_ASSIGN_OR_RETURN(estimation::DegradationMode degradation_mode,
                            ReadDegradationMode(args));
  FRESHSEL_RETURN_IF_ERROR(CheckUnreadFlags(args));
  FRESHSEL_RETURN_IF_ERROR(CheckNoPositionals(args));
  if (dir.empty()) {
    return Status::InvalidArgument("select requires --dir DIR");
  }
  obs::RunReport& report = *obs_session.report();
  report.labels["metric"] = metric_name;
  report.labels["gain"] = gain_name;
  obs::WallTimer stage_timer;

  selection::QualityMetric metric;
  if (metric_name == "coverage") {
    metric = selection::QualityMetric::kCoverage;
  } else if (metric_name == "accuracy") {
    metric = selection::QualityMetric::kAccuracy;
  } else if (metric_name == "freshness") {
    metric = selection::QualityMetric::kGlobalFreshness;
  } else if (metric_name == "mix") {
    metric = selection::QualityMetric::kCoverageFreshnessMix;
  } else {
    return Status::InvalidArgument("unknown --metric: " + metric_name);
  }
  selection::GainFamily family;
  if (gain_name == "linear") {
    family = selection::GainFamily::kLinear;
  } else if (gain_name == "quad") {
    family = selection::GainFamily::kQuadratic;
  } else if (gain_name == "step") {
    family = selection::GainFamily::kStep;
  } else if (gain_name == "data") {
    family = selection::GainFamily::kData;
  } else {
    return Status::InvalidArgument("unknown --gain: " + gain_name);
  }

  FRESHSEL_ASSIGN_OR_RETURN(LoadedScenario scenario,
                            LoadScenarioDir(dir, robust.retry));
  if (t0 <= 0) t0 = scenario.manifest_t0;  // Fall back to the manifest.
  if (t0 <= 0) {
    return Status::InvalidArgument(
        "no --t0 given and the directory has no manifest t0");
  }
  if (t0 > scenario.world.horizon()) {
    return Status::InvalidArgument("--t0 beyond the scenario horizon");
  }
  report.AddStage("load", stage_timer.ElapsedSeconds());
  stage_timer.Restart();
  FRESHSEL_ASSIGN_OR_RETURN(LearnedModels learned,
                            LearnModels(scenario, t0, degradation_mode));
  report.AddStage("learn", stage_timer.ElapsedSeconds());
  ReportDegradation(learned.degradation, &report, out);
  stage_timer.Restart();

  estimation::QualityEstimator::Options estimator_options;
  estimator_options.fast_math_kernels = fast_math;
  FRESHSEL_ASSIGN_OR_RETURN(
      estimation::QualityEstimator estimator,
      estimation::QualityEstimator::Create(
          scenario.world, learned.world_model, {},
          MakeTimePoints(t0 + stride, points, stride), estimator_options));
  std::vector<const estimation::SourceProfile*> profiles;
  for (const auto& profile : learned.profiles) {
    profiles.push_back(&profile);
  }
  std::vector<double> base_costs =
      selection::CostModel::ItemShareCosts(profiles);

  // Universe: plain sources, or frequency-augmented when requested.
  std::vector<std::uint32_t> source_of;
  std::vector<std::int64_t> divisor_of;
  std::vector<double> costs;
  std::optional<selection::PartitionMatroid> matroid;
  if (max_divisor > 1) {
    FRESHSEL_ASSIGN_OR_RETURN(
        selection::AugmentedUniverse universe,
        selection::BuildAugmentedUniverse(estimator, profiles, base_costs,
                                          max_divisor));
    source_of = std::move(universe.source_of);
    divisor_of = std::move(universe.divisor_of);
    costs = std::move(universe.costs);
    matroid = std::move(universe.matroid);
  } else {
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      FRESHSEL_ASSIGN_OR_RETURN(auto handle,
                                estimator.AddSource(profiles[i], 1));
      (void)handle;
      source_of.push_back(static_cast<std::uint32_t>(i));
      divisor_of.push_back(1);
      costs.push_back(base_costs[i]);
    }
  }

  selection::ProfitOracle::Config oracle_config;
  oracle_config.gain = selection::GainModel(family, metric);
  oracle_config.budget = budget;
  FRESHSEL_ASSIGN_OR_RETURN(
      selection::ProfitOracle oracle,
      selection::ProfitOracle::Create(&estimator, costs, oracle_config));
  // Memoize the estimator-backed oracle: GRASP restarts and MaxSub local
  // search revisit sets constantly, and the cache's hit/miss tallies feed
  // the run report below.
  selection::CachedProfitOracle cached(oracle);

  selection::SelectionResult result;
  if (algorithm_name == "budgeted") {
    selection::BudgetedGreedyOptions budgeted_options;
    budgeted_options.stochastic = stochastic;
    budgeted_options.stochastic_epsilon = stochastic_epsilon;
    budgeted_options.stochastic_seed = static_cast<std::uint64_t>(seed);
    budgeted_options.decision_log = &report.decision_log;
    result = selection::BudgetedGreedy(cached, budgeted_options);
    report.labels["algorithm"] = "BudgetedGreedy";
    report.counters["oracle_calls"] += result.oracle_calls;
    report.counters["oracle_calls_saved"] += result.oracle_calls_saved;
    report.counters["selected_sources"] += result.selected.size();
    report.values["profit"] = result.profit;
    report.AddStage("select/BudgetedGreedy", stage_timer.ElapsedSeconds());
  } else {
    selection::SelectorConfig config;
    if (algorithm_name == "greedy") {
      config.algorithm = selection::Algorithm::kGreedy;
    } else if (algorithm_name == "maxsub") {
      config.algorithm = selection::Algorithm::kMaxSub;
    } else if (algorithm_name == "grasp") {
      config.algorithm = selection::Algorithm::kGrasp;
    } else {
      return Status::InvalidArgument("unknown --algorithm: " +
                                     algorithm_name);
    }
    config.grasp_kappa = static_cast<int>(kappa);
    config.grasp_restarts = static_cast<int>(restarts);
    config.seed = static_cast<std::uint64_t>(seed);
    config.stochastic_greedy = stochastic;
    config.stochastic_epsilon = stochastic_epsilon;
    config.report = &report;
    // Explicit wiring (never automatic inside SelectSources): bench loops
    // reuse one report across many SelectSources calls and must not
    // accumulate per-round records.
    config.decision_log = &report.decision_log;
    // GRASP fans candidate scoring out over the pool when --threads > 1
    // (the trace then shows score chunks attributed across worker tids).
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
      config.pool = pool.get();
    }
    FRESHSEL_ASSIGN_OR_RETURN(
        result, selection::SelectSources(
                    cached, config,
                    matroid.has_value() ? &*matroid : nullptr));
  }
  const selection::CachedProfitOracle::Stats cache_stats = cached.stats();
  report.counters["cache_hits"] = cache_stats.hits;
  report.counters["cache_misses"] = cache_stats.misses;
  report.values["cache_hit_rate"] = cache_stats.hit_rate();

  TablePrinter table("Selected sources",
                     {"source", "divisor", "cost_share"});
  for (selection::SourceHandle h : result.selected) {
    table.AddRow({profiles[source_of[h]]->name,
                  std::to_string(divisor_of[h]),
                  FormatDouble(cached.Cost({h}), 4)});
  }
  table.Print(out);
  const estimation::EstimatedQuality quality =
      estimator.EstimateAverage(result.selected);
  out << "profit " << FormatDouble(result.profit, 4) << ", cost "
      << FormatDouble(cached.Cost(result.selected), 4)
      << ", expected coverage " << FormatDouble(quality.coverage, 3)
      << ", freshness " << FormatDouble(quality.local_freshness, 3)
      << ", accuracy " << FormatDouble(quality.accuracy, 3) << " ("
      << result.oracle_calls << " oracle calls, cache hit rate "
      << FormatDouble(cache_stats.hit_rate(), 3) << ")\n";
  return obs_session.Finish();
}

int RunMain(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  Result<ArgMap> args = ArgMap::Parse(argc, argv);
  if (!args.ok()) {
    err << args.status().ToString() << "\n";
    return 2;
  }
  Status status;
  if (args->command() == "simulate") {
    status = RunSimulate(*args, out);
  } else if (args->command() == "characterize") {
    status = RunCharacterize(*args, out);
  } else if (args->command() == "select") {
    status = RunSelect(*args, out);
  } else if (args->command() == "report") {
    status = RunReportCommand(*args, out);
  } else {
    err << "usage: freshsel <simulate|characterize|select|report> "
           "[--flags]\n"
        << "  simulate     --workload bl|gdelt --out DIR [--seed N "
           "--scale X --locations N --categories N]\n"
        << "  characterize --dir DIR --t0 N\n"
        << "  select       --dir DIR --t0 N [--metric coverage|accuracy|"
           "freshness|mix --gain linear|quad|step|data\n"
        << "                --algorithm greedy|maxsub|grasp|budgeted "
           "--points N --stride N --budget X\n"
        << "                --max-divisor M --kappa K --restarts R "
           "--seed S --threads T\n"
        << "                --stochastic (sampled greedy rounds, "
           "--stochastic-epsilon E, seeded by --seed)\n"
        << "                --fast-math-kernels (SIMD reductions in the "
           "estimator; small bounded deviation)]\n"
        << "  report       show RUN.json [--rounds N --top N] | diff A.json "
           "B.json |\n"
        << "               check-regression FRESH.json --baseline BASE.json "
           "[--tolerance X --keys-only]\n"
        << "  every command also accepts --metrics-out FILE (JSON run "
           "report; --report-out is an alias,\n"
        << "                          --metrics-format json|openmetrics "
           "picks the encoding)\n"
        << "                          and --trace-out FILE (chrome://tracing "
           "JSON)\n"
        << "  robustness flags: --failpoints 'name=once|always|nth:N|"
           "prob:P[:SEED]' --retry-max N --retry-backoff SECONDS\n"
        << "                    --deterministic-metrics (byte-stable "
           "--metrics-out), and for characterize/select:\n"
        << "                    --strict (abort on unfittable sources) | "
           "--degrade (substitute subdomain priors; default)\n";
    return args->command().empty() ? 2 : 2;
  }
  if (!status.ok()) {
    err << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace freshsel::cli
