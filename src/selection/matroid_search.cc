#include <cmath>
#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>

#include "selection/algorithms.h"
#include "selection/set_util.h"

namespace freshsel::selection {

namespace {

/// Enumerates, for one exchange candidate `d`, every minimal removal set
/// {e_1..e_k} (one optional element per matroid) that restores independence
/// in all matroids, invoking `visit` on each resulting set. Returns after
/// the first visit that reports success.
bool TryExchanges(const std::vector<const PartitionMatroid*>& matroids,
                  const std::vector<SourceHandle>& selected, SourceHandle d,
                  const std::function<bool(
                      const std::vector<SourceHandle>&)>& visit) {
  // Per matroid: the candidate removals (empty entry = no removal needed).
  std::vector<std::vector<SourceHandle>> options;
  options.reserve(matroids.size());
  for (const PartitionMatroid* matroid : matroids) {
    if (matroid->CanAdd(selected, d)) {
      options.push_back({});  // e_i = emptyset allowed.
    } else {
      std::vector<SourceHandle> conflicts =
          matroid->ConflictsWith(selected, d);
      if (conflicts.empty()) return false;  // Cannot be fixed.
      options.push_back(std::move(conflicts));
    }
  }
  // Depth-first product over the per-matroid removal choices.
  std::vector<SourceHandle> removals;
  std::function<bool(std::size_t)> recurse = [&](std::size_t i) -> bool {
    if (i == options.size()) {
      std::vector<SourceHandle> next =
          internal::WithRemovedAll(selected, removals);
      next.insert(std::upper_bound(next.begin(), next.end(), d), d);
      // Guard: verify independence in every matroid (a removal chosen for
      // matroid i might not fix matroid j).
      for (const PartitionMatroid* matroid : matroids) {
        if (!matroid->IsIndependent(next)) return false;
      }
      return visit(next);
    }
    if (options[i].empty()) return recurse(i + 1);
    for (SourceHandle e : options[i]) {
      removals.push_back(e);
      if (recurse(i + 1)) return true;
      removals.pop_back();
    }
    // Also try "no removal" for this matroid when a previous removal may
    // already have fixed it.
    return recurse(i + 1);
  };
  return recurse(0);
}

}  // namespace

SelectionResult MatroidLocalSearch(
    const ProfitFunction& oracle,
    const std::vector<const PartitionMatroid*>& matroids,
    const std::vector<SourceHandle>& ground, double epsilon) {
  const std::uint64_t calls_before = oracle.call_count();
  SelectionResult result;
  if (ground.empty()) {
    result.profit = oracle.Profit({});
    result.oracle_calls = oracle.call_count() - calls_before;
    return result;
  }
  const double n = static_cast<double>(oracle.universe_size());
  const double slack = epsilon / (n * n * n * n);  // (1 + eps / n^4).

  // Line 3: best feasible singleton.
  std::vector<SourceHandle> selected;
  double current = -std::numeric_limits<double>::infinity();
  for (SourceHandle e : ground) {
    bool feasible = true;
    for (const PartitionMatroid* matroid : matroids) {
      if (!matroid->IsIndependent({e})) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    const double profit = oracle.Profit({e});
    if (profit > current) {
      current = profit;
      selected = {e};
    }
  }
  if (!std::isfinite(current)) {
    selected.clear();
    current = oracle.Profit(selected);
  }

  // Lines 4-10: delete / exchange until a local optimum.
  bool changed = true;
  while (changed) {
    changed = false;
    // Delete operation.
    for (SourceHandle e : selected) {
      const double profit =
          oracle.Profit(internal::WithRemoved(selected, e));
      if (internal::ImprovesBy(profit, current, slack)) {
        selected = internal::WithRemoved(selected, e);
        current = profit;
        changed = true;
        break;
      }
    }
    if (changed) continue;
    // Exchange operation.
    for (SourceHandle d : ground) {
      if (internal::Contains(selected, d)) continue;
      const bool applied = TryExchanges(
          matroids, selected, d,
          [&](const std::vector<SourceHandle>& candidate) {
            const double profit = oracle.Profit(candidate);
            if (internal::ImprovesBy(profit, current, slack)) {
              selected = candidate;
              current = profit;
              return true;
            }
            return false;
          });
      if (applied) {
        changed = true;
        break;
      }
    }
  }
  result.selected = std::move(selected);
  result.profit = current;
  result.oracle_calls = oracle.call_count() - calls_before;
  return result;
}

SelectionResult MaxSubMatroid(
    const ProfitFunction& oracle,
    const std::vector<const PartitionMatroid*>& matroids, double epsilon) {
  const std::uint64_t calls_before = oracle.call_count();
  const std::size_t k = matroids.size();
  std::vector<SourceHandle> ground =
      internal::FullUniverse(oracle.universe_size());

  SelectionResult best;
  best.profit = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < k + 1 && !ground.empty(); ++i) {
    SelectionResult local =
        MatroidLocalSearch(oracle, matroids, ground, epsilon);
    // V_{i+1} = V_i \ S_i.
    ground = internal::WithRemovedAll(ground, local.selected);
    if (local.profit > best.profit) {
      best.selected = local.selected;
      best.profit = local.profit;
    }
    if (local.selected.empty()) break;  // Nothing further to exclude.
  }
  if (!std::isfinite(best.profit)) {
    best.selected.clear();
    best.profit = oracle.Profit({});
  }
  best.oracle_calls = oracle.call_count() - calls_before;
  return best;
}

}  // namespace freshsel::selection
