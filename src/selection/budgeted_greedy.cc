#include "selection/budgeted_greedy.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "common/random.h"
#include "obs/macros.h"
#include "selection/set_util.h"

namespace freshsel::selection {

namespace {

constexpr double kBudgetSlack = 1e-12;

/// Ratio of a marginal gain to an element cost; zero-cost elements with
/// positive gain are always worth taking.
double Ratio(double marginal, double cost) {
  return cost > internal::kImprovementEps
             ? marginal / cost
             : std::numeric_limits<double>::infinity();
}

std::uint64_t CountAffordable(const std::vector<double>& singleton_costs,
                              const std::vector<SourceHandle>& selected,
                              double current_cost, double budget) {
  std::uint64_t affordable = 0;
  for (std::size_t e = 0; e < singleton_costs.size(); ++e) {
    const SourceHandle handle = static_cast<SourceHandle>(e);
    if (internal::Contains(selected, handle)) continue;
    if (current_cost + singleton_costs[e] > budget + kBudgetSlack) continue;
    ++affordable;
  }
  return affordable;
}

struct Phase1Result {
  std::vector<SourceHandle> selected;
  double gain = 0.0;
  std::uint64_t saved = 0;
};

/// Eager cost-benefit greedy: re-score every affordable candidate's
/// marginal each round and take the best ratio (strict >, ties keep the
/// lowest handle).
Phase1Result EagerPhase1(const GainCostFunction& oracle,
                         const std::vector<double>& singleton_costs,
                         double budget, MarginalEvalContext* ctx) {
  const std::size_t n = oracle.universe_size();
  Phase1Result out;
  if (ctx != nullptr) ctx->Reset(out.selected);
  out.gain = ctx != nullptr ? ctx->CurrentGain() : oracle.Gain(out.selected);
  double current_cost = 0.0;
  while (true) {
    double best_ratio = 0.0;
    SourceHandle best_element = 0;
    double best_gain = out.gain;
    bool found = false;
    for (std::size_t e = 0; e < n; ++e) {
      const SourceHandle handle = static_cast<SourceHandle>(e);
      if (internal::Contains(out.selected, handle)) continue;
      if (current_cost + singleton_costs[e] > budget + kBudgetSlack) {
        continue;
      }
      const double gain =
          ctx != nullptr
              ? ctx->GainWith(handle)
              : oracle.Gain(internal::WithAdded(out.selected, handle));
      const double marginal = gain - out.gain;
      if (marginal <= internal::kImprovementEps) continue;
      const double ratio = Ratio(marginal, singleton_costs[e]);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_element = handle;
        best_gain = gain;
        found = true;
      }
    }
    if (!found) break;
    current_cost += singleton_costs[best_element];
    out.selected = internal::WithAdded(out.selected, best_element);
    if (ctx != nullptr) ctx->Reset(out.selected);
    out.gain = best_gain;
  }
  return out;
}

/// Lazy (CELF) cost-benefit greedy: stale marginal/cost ratios are upper
/// bounds for submodular gains (the cost is fixed per element), so only
/// queue tops need re-scoring. Selections match EagerPhase1 bit for bit on
/// submodular gains (same ratio values, same lowest-handle tie-break).
Phase1Result LazyPhase1(const GainCostFunction& oracle,
                        const std::vector<double>& singleton_costs,
                        double budget, MarginalEvalContext* ctx) {
  const std::size_t n = oracle.universe_size();
  Phase1Result out;
  if (ctx != nullptr) ctx->Reset(out.selected);
  out.gain = ctx != nullptr ? ctx->CurrentGain() : oracle.Gain(out.selected);
  double current_cost = 0.0;

  struct Entry {
    double ratio;
    double marginal;
    double gain;          // Gain of selected + {handle} at evaluation time.
    SourceHandle handle;
    std::uint32_t round;
  };
  struct StalerFirst {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.ratio != b.ratio) return a.ratio < b.ratio;
      return a.handle > b.handle;  // Ties pop the lowest handle first.
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, StalerFirst> queue;

  for (std::size_t e = 0; e < n; ++e) {
    const SourceHandle handle = static_cast<SourceHandle>(e);
    if (singleton_costs[e] > budget + kBudgetSlack) continue;
    const double gain =
        ctx != nullptr ? ctx->GainWith(handle) : oracle.Gain({handle});
    const double marginal = gain - out.gain;
    // Submodularity: a marginal below the improvement threshold never
    // recovers, so such elements are dropped for good.
    if (marginal <= internal::kImprovementEps) continue;
    queue.push({Ratio(marginal, singleton_costs[e]), marginal, gain, handle,
                0});
  }

  for (std::uint32_t round = 0; !queue.empty();) {
    const Entry top = queue.top();
    queue.pop();
    // Spent budget only grows: once unaffordable, always unaffordable.
    if (current_cost + singleton_costs[top.handle] > budget + kBudgetSlack) {
      continue;
    }
    if (top.round == round) {
      current_cost += singleton_costs[top.handle];
      out.selected = internal::WithAdded(out.selected, top.handle);
      if (ctx != nullptr) ctx->Reset(out.selected);
      out.gain = top.gain;
      ++round;
      out.saved += CountAffordable(singleton_costs, out.selected,
                                   current_cost, budget);
      continue;
    }
    const double gain =
        ctx != nullptr
            ? ctx->GainWith(top.handle)
            : oracle.Gain(internal::WithAdded(out.selected, top.handle));
    --out.saved;  // One of this round's budgeted re-scores actually ran.
    const double marginal = gain - out.gain;
    if (marginal <= internal::kImprovementEps) continue;
    queue.push({Ratio(marginal, singleton_costs[top.handle]), marginal, gain,
                top.handle, round});
  }
  return out;
}

/// Stochastic cost-benefit greedy (see GreedyOptions::stochastic): each
/// round samples the affordable unselected candidates uniformly and adds
/// the sample's best marginal/cost ratio. The sampling stream is consumed
/// identically regardless of `lazy` / `incremental`, and the accepted
/// element is always freshly scored, so selections depend on the seed
/// alone. With `lazy`, stale ratios persist across rounds (submodular
/// marginals shrink, costs are fixed, so a stale ratio is an upper bound)
/// and candidates whose bound cannot beat the round's best fresh ratio
/// are skipped, with the same tie-break guard as StochasticGreedy.
Phase1Result StochasticPhase1(const GainCostFunction& oracle,
                              const std::vector<double>& singleton_costs,
                              double budget, MarginalEvalContext* ctx,
                              const BudgetedGreedyOptions& options) {
  const std::size_t n = oracle.universe_size();
  Phase1Result out;
  if (ctx != nullptr) ctx->Reset(out.selected);
  out.gain = ctx != nullptr ? ctx->CurrentGain() : oracle.Gain(out.selected);
  double current_cost = 0.0;

  const std::size_t k =
      options.stochastic_k > 0 ? options.stochastic_k
                               : std::max<std::size_t>(n, 1);
  const std::size_t sample_size =
      internal::StochasticSampleSize(n, k, options.stochastic_epsilon);
  Rng rng(options.stochastic_seed);

  std::vector<double> stale_ratio;
  if (options.lazy) {
    stale_ratio.assign(n, std::numeric_limits<double>::infinity());
  }

  std::vector<SourceHandle> affordable;
  std::vector<SourceHandle> sampled;
  while (true) {
    affordable.clear();
    for (std::size_t e = 0; e < n; ++e) {
      const SourceHandle handle = static_cast<SourceHandle>(e);
      if (internal::Contains(out.selected, handle)) continue;
      if (current_cost + singleton_costs[e] > budget + kBudgetSlack) continue;
      affordable.push_back(handle);
    }
    if (affordable.empty()) break;

    sampled.clear();
    if (sample_size >= affordable.size()) {
      sampled = affordable;
    } else {
      std::vector<std::size_t> idx =
          rng.SampleWithoutReplacement(affordable.size(), sample_size);
      std::sort(idx.begin(), idx.end());
      for (std::size_t i : idx) sampled.push_back(affordable[i]);
    }
    if (options.lazy) {
      std::sort(sampled.begin(), sampled.end(),
                [&stale_ratio](SourceHandle a, SourceHandle b) {
                  if (stale_ratio[a] != stale_ratio[b]) {
                    return stale_ratio[a] > stale_ratio[b];
                  }
                  return a < b;
                });
    }

    double best_ratio = 0.0;
    double best_gain = out.gain;
    SourceHandle best_element = 0;
    bool found = false;
    for (SourceHandle handle : sampled) {
      if (options.lazy && found &&
          (stale_ratio[handle] < best_ratio ||
           (stale_ratio[handle] == best_ratio && handle > best_element))) {
        ++out.saved;
        continue;
      }
      const double gain =
          ctx != nullptr
              ? ctx->GainWith(handle)
              : oracle.Gain(internal::WithAdded(out.selected, handle));
      const double marginal = gain - out.gain;
      const double ratio = Ratio(marginal, singleton_costs[handle]);
      if (options.lazy) stale_ratio[handle] = ratio;
      if (marginal <= internal::kImprovementEps) continue;
      if (!found || ratio > best_ratio ||
          (ratio == best_ratio && handle < best_element)) {
        best_ratio = ratio;
        best_gain = gain;
        best_element = handle;
        found = true;
      }
    }
    if (!found) break;
    current_cost += singleton_costs[best_element];
    out.selected = internal::WithAdded(out.selected, best_element);
    if (ctx != nullptr) ctx->Reset(out.selected);
    out.gain = best_gain;
  }
  return out;
}

}  // namespace

SelectionResult BudgetedGreedy(const GainCostFunction& oracle,
                               const BudgetedGreedyOptions& options) {
  FRESHSEL_TRACE_SPAN("selection/budgeted_greedy");
  const std::size_t n = oracle.universe_size();
  const double budget = oracle.budget();
  const std::uint64_t calls_before = oracle.call_count();

  // Singleton costs, evaluated once: O(n) cost-oracle calls total instead
  // of several per element per greedy round.
  std::vector<double> singleton_costs(n);
  for (std::size_t e = 0; e < n; ++e) {
    singleton_costs[e] = oracle.Cost({static_cast<SourceHandle>(e)});
  }

  std::unique_ptr<MarginalEvalContext> ctx;
  if (options.incremental && oracle.supports_incremental()) {
    ctx = oracle.MakeContext();
  }

  // Phase 1: cost-benefit greedy.
  Phase1Result phase1 =
      options.stochastic
          ? StochasticPhase1(oracle, singleton_costs, budget, ctx.get(),
                             options)
          : (options.lazy
                 ? LazyPhase1(oracle, singleton_costs, budget, ctx.get())
                 : EagerPhase1(oracle, singleton_costs, budget, ctx.get()));
  FRESHSEL_OBS_COUNT("selection.budgeted.phase1_selected",
                     phase1.selected.size());

  // Phase 2: the best affordable singleton can beat the ratio greedy when
  // one expensive element dominates. Singleton gains are delta
  // evaluations from the empty set when the context is available.
  if (ctx != nullptr) ctx->Reset({});
  double best_single_gain = -1.0;
  SourceHandle best_single = 0;
  for (std::size_t e = 0; e < n; ++e) {
    const SourceHandle handle = static_cast<SourceHandle>(e);
    if (singleton_costs[e] > budget + kBudgetSlack) continue;
    const double gain =
        ctx != nullptr ? ctx->GainWith(handle) : oracle.Gain({handle});
    if (gain > best_single_gain) {
      best_single_gain = gain;
      best_single = handle;
    }
  }

  SelectionResult result;
  if (best_single_gain > phase1.gain) {
    FRESHSEL_OBS_COUNT("selection.budgeted.singleton_wins", 1);
    result.selected = {best_single};
  } else {
    result.selected = std::move(phase1.selected);
  }
  result.profit = oracle.Profit(result.selected);
  result.oracle_calls = oracle.call_count() - calls_before;
  result.oracle_calls_saved = phase1.saved;
  return result;
}

}  // namespace freshsel::selection
