#include "selection/budgeted_greedy.h"

#include <limits>

#include "selection/set_util.h"

namespace freshsel::selection {

SelectionResult BudgetedGreedy(const ProfitOracle& oracle) {
  const std::size_t n = oracle.universe_size();
  const double budget = oracle.config().budget;
  const std::uint64_t calls_before = oracle.call_count();

  // Phase 1: cost-benefit greedy.
  std::vector<SourceHandle> selected;
  double current_gain = oracle.Gain(selected);
  double current_cost = 0.0;
  while (true) {
    double best_ratio = 0.0;
    SourceHandle best_element = 0;
    double best_gain = current_gain;
    bool found = false;
    for (std::size_t e = 0; e < n; ++e) {
      const SourceHandle handle = static_cast<SourceHandle>(e);
      if (internal::Contains(selected, handle)) continue;
      const double added_cost = oracle.Cost({handle});
      if (current_cost + added_cost > budget + 1e-12) continue;
      const double gain =
          oracle.Gain(internal::WithAdded(selected, handle));
      const double marginal = gain - current_gain;
      if (marginal <= 1e-12) continue;
      // Zero-cost elements with positive gain are always worth taking.
      const double ratio = added_cost > 1e-12
                               ? marginal / added_cost
                               : std::numeric_limits<double>::infinity();
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_element = handle;
        best_gain = gain;
        found = true;
      }
    }
    if (!found) break;
    current_cost += oracle.Cost({best_element});
    selected = internal::WithAdded(selected, best_element);
    current_gain = best_gain;
  }

  // Phase 2: the best affordable singleton can beat the ratio greedy when
  // one expensive element dominates.
  double best_single_gain = -1.0;
  SourceHandle best_single = 0;
  for (std::size_t e = 0; e < n; ++e) {
    const SourceHandle handle = static_cast<SourceHandle>(e);
    if (oracle.Cost({handle}) > budget + 1e-12) continue;
    const double gain = oracle.Gain({handle});
    if (gain > best_single_gain) {
      best_single_gain = gain;
      best_single = handle;
    }
  }

  SelectionResult result;
  if (best_single_gain > current_gain) {
    result.selected = {best_single};
    result.profit = oracle.Profit(result.selected);
  } else {
    result.selected = std::move(selected);
    result.profit = oracle.Profit(result.selected);
  }
  result.oracle_calls = oracle.call_count() - calls_before;
  return result;
}

}  // namespace freshsel::selection
