#include "selection/budgeted_greedy.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/random.h"
#include "obs/decision_log.h"
#include "obs/macros.h"
#include "selection/audit.h"
#include "selection/set_util.h"

namespace freshsel::selection {

namespace {

constexpr double kBudgetSlack = 1e-12;

/// Ratio of a marginal gain to an element cost; zero-cost elements with
/// positive gain are always worth taking.
double Ratio(double marginal, double cost) {
  return cost > internal::kImprovementEps
             ? marginal / cost
             : std::numeric_limits<double>::infinity();
}

std::uint64_t CountAffordable(const std::vector<double>& singleton_costs,
                              const std::vector<SourceHandle>& selected,
                              double current_cost, double budget) {
  std::uint64_t affordable = 0;
  for (std::size_t e = 0; e < singleton_costs.size(); ++e) {
    const SourceHandle handle = static_cast<SourceHandle>(e);
    if (internal::Contains(selected, handle)) continue;
    if (current_cost + singleton_costs[e] > budget + kBudgetSlack) continue;
    ++affordable;
  }
  return affordable;
}

struct Phase1Result {
  std::vector<SourceHandle> selected;
  double gain = 0.0;
  std::uint64_t saved = 0;
};

/// Eager cost-benefit greedy: re-score every affordable candidate's
/// marginal each round and take the best ratio (strict >, ties keep the
/// lowest handle).
Phase1Result EagerPhase1(const GainCostFunction& oracle,
                         const std::vector<double>& singleton_costs,
                         double budget, MarginalEvalContext* ctx,
                         obs::DecisionLog* log) {
  const std::size_t n = oracle.universe_size();
  RoundAudit audit(log, oracle);
  Phase1Result out;
  if (ctx != nullptr) ctx->Reset(out.selected);
  out.gain = ctx != nullptr ? ctx->CurrentGain() : oracle.Gain(out.selected);
  double current_cost = 0.0;
  std::uint32_t round = 0;
  while (true) {
    audit.BeginRound();
    double best_ratio = 0.0;
    SourceHandle best_element = 0;
    double best_gain = out.gain;
    bool found = false;
    std::uint64_t pool = 0;
    RunnerUpTracker tracker;
    for (std::size_t e = 0; e < n; ++e) {
      const SourceHandle handle = static_cast<SourceHandle>(e);
      if (internal::Contains(out.selected, handle)) continue;
      if (current_cost + singleton_costs[e] > budget + kBudgetSlack) {
        continue;
      }
      ++pool;
      const double gain =
          ctx != nullptr
              ? ctx->GainWith(handle)
              : oracle.Gain(internal::WithAdded(out.selected, handle));
      const double marginal = gain - out.gain;
      if (marginal <= internal::kImprovementEps) continue;
      const double ratio = Ratio(marginal, singleton_costs[e]);
      if (audit.active()) tracker.Observe(handle, ratio);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_element = handle;
        best_gain = gain;
        found = true;
      }
    }
    if (!found) break;
    if (audit.active()) {
      obs::DecisionRecord record;
      record.round = round;
      record.kind = obs::DecisionKind::kAdd;
      record.chosen = best_element;
      record.gain = best_gain - out.gain;
      record.profit = best_gain;
      record.score = best_ratio;
      record.pool_size = pool;
      tracker.FillRunnerUp(best_ratio, &record);
      audit.Commit(record);
    }
    current_cost += singleton_costs[best_element];
    out.selected = internal::WithAdded(out.selected, best_element);
    if (ctx != nullptr) ctx->Reset(out.selected);
    out.gain = best_gain;
    ++round;
  }
  return out;
}

/// Lazy (CELF) cost-benefit greedy: stale marginal/cost ratios are upper
/// bounds for submodular gains (the cost is fixed per element), so only
/// queue tops need re-scoring. Selections match EagerPhase1 bit for bit on
/// submodular gains (same ratio values, same lowest-handle tie-break).
Phase1Result LazyPhase1(const GainCostFunction& oracle,
                        const std::vector<double>& singleton_costs,
                        double budget, MarginalEvalContext* ctx,
                        obs::DecisionLog* log) {
  const std::size_t n = oracle.universe_size();
  RoundAudit audit(log, oracle);
  Phase1Result out;
  if (ctx != nullptr) ctx->Reset(out.selected);
  out.gain = ctx != nullptr ? ctx->CurrentGain() : oracle.Gain(out.selected);
  double current_cost = 0.0;
  // Round 0 owns the seeding evaluations, mirroring LazyGreedy.
  audit.BeginRound();

  struct Entry {
    double ratio;
    double marginal;
    double gain;          // Gain of selected + {handle} at evaluation time.
    SourceHandle handle;
    std::uint32_t round;
  };
  struct StalerFirst {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.ratio != b.ratio) return a.ratio < b.ratio;
      return a.handle > b.handle;  // Ties pop the lowest handle first.
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, StalerFirst> queue;

  for (std::size_t e = 0; e < n; ++e) {
    const SourceHandle handle = static_cast<SourceHandle>(e);
    if (singleton_costs[e] > budget + kBudgetSlack) continue;
    const double gain =
        ctx != nullptr ? ctx->GainWith(handle) : oracle.Gain({handle});
    const double marginal = gain - out.gain;
    // Submodularity: a marginal below the improvement threshold never
    // recovers, so such elements are dropped for good.
    if (marginal <= internal::kImprovementEps) continue;
    queue.push({Ratio(marginal, singleton_costs[e]), marginal, gain, handle,
                0});
  }

  for (std::uint32_t round = 0; !queue.empty();) {
    const Entry top = queue.top();
    queue.pop();
    // Spent budget only grows: once unaffordable, always unaffordable.
    if (current_cost + singleton_costs[top.handle] > budget + kBudgetSlack) {
      continue;
    }
    if (top.round == round) {
      if (audit.active()) {
        obs::DecisionRecord record;
        record.round = round;
        record.kind = obs::DecisionKind::kAdd;
        record.chosen = top.handle;
        record.gain = top.marginal;
        record.profit = top.gain;
        record.score = top.ratio;
        // The pool still contains the winner (not yet selected).
        record.pool_size = CountAffordable(singleton_costs, out.selected,
                                           current_cost, budget);
        if (!queue.empty()) {
          // The next entry's stale ratio is an upper bound - the tightest
          // runner-up information the lazy path has without spending the
          // eval it just saved.
          const Entry& next = queue.top();
          record.has_runner_up = true;
          record.runner_up = next.handle;
          record.runner_up_score = next.ratio;
          record.margin = top.ratio - next.ratio;
        }
        audit.Commit(record);
        audit.BeginRound();
      }
      current_cost += singleton_costs[top.handle];
      out.selected = internal::WithAdded(out.selected, top.handle);
      if (ctx != nullptr) ctx->Reset(out.selected);
      out.gain = top.gain;
      ++round;
      out.saved += CountAffordable(singleton_costs, out.selected,
                                   current_cost, budget);
      continue;
    }
    const double gain =
        ctx != nullptr
            ? ctx->GainWith(top.handle)
            : oracle.Gain(internal::WithAdded(out.selected, top.handle));
    --out.saved;  // One of this round's budgeted re-scores actually ran.
    const double marginal = gain - out.gain;
    if (marginal <= internal::kImprovementEps) continue;
    queue.push({Ratio(marginal, singleton_costs[top.handle]), marginal, gain,
                top.handle, round});
  }
  return out;
}

/// Stochastic cost-benefit greedy (see GreedyOptions::stochastic): each
/// round samples the affordable unselected candidates uniformly and adds
/// the sample's best marginal/cost ratio. The sampling stream is consumed
/// identically regardless of `lazy` / `incremental`, and the accepted
/// element is always freshly scored, so selections depend on the seed
/// alone. With `lazy`, stale ratios persist across rounds (submodular
/// marginals shrink, costs are fixed, so a stale ratio is an upper bound)
/// and candidates whose bound cannot beat the round's best fresh ratio
/// are skipped, with the same tie-break guard as StochasticGreedy.
Phase1Result StochasticPhase1(const GainCostFunction& oracle,
                              const std::vector<double>& singleton_costs,
                              double budget, MarginalEvalContext* ctx,
                              const BudgetedGreedyOptions& options,
                              obs::DecisionLog* log) {
  const std::size_t n = oracle.universe_size();
  RoundAudit audit(log, oracle);
  Phase1Result out;
  if (ctx != nullptr) ctx->Reset(out.selected);
  out.gain = ctx != nullptr ? ctx->CurrentGain() : oracle.Gain(out.selected);
  double current_cost = 0.0;
  std::uint32_t round = 0;

  const std::size_t k =
      options.stochastic_k > 0 ? options.stochastic_k
                               : std::max<std::size_t>(n, 1);
  const std::size_t sample_size =
      internal::StochasticSampleSize(n, k, options.stochastic_epsilon);
  Rng rng(options.stochastic_seed);

  std::vector<double> stale_ratio;
  if (options.lazy) {
    stale_ratio.assign(n, std::numeric_limits<double>::infinity());
  }

  std::vector<SourceHandle> affordable;
  std::vector<SourceHandle> sampled;
  // (handle, ratio) pairs actually scored this round, audit only: the
  // runner-up is re-derived with the acceptance loop's own tie preference
  // (highest ratio, then lowest handle) rather than first-seen order.
  std::vector<std::pair<SourceHandle, double>> scored;
  while (true) {
    audit.BeginRound();
    affordable.clear();
    for (std::size_t e = 0; e < n; ++e) {
      const SourceHandle handle = static_cast<SourceHandle>(e);
      if (internal::Contains(out.selected, handle)) continue;
      if (current_cost + singleton_costs[e] > budget + kBudgetSlack) continue;
      affordable.push_back(handle);
    }
    if (affordable.empty()) break;

    sampled.clear();
    if (sample_size >= affordable.size()) {
      sampled = affordable;
    } else {
      std::vector<std::size_t> idx =
          rng.SampleWithoutReplacement(affordable.size(), sample_size);
      std::sort(idx.begin(), idx.end());
      for (std::size_t i : idx) sampled.push_back(affordable[i]);
    }
    if (options.lazy) {
      std::sort(sampled.begin(), sampled.end(),
                [&stale_ratio](SourceHandle a, SourceHandle b) {
                  if (stale_ratio[a] != stale_ratio[b]) {
                    return stale_ratio[a] > stale_ratio[b];
                  }
                  return a < b;
                });
    }

    double best_ratio = 0.0;
    double best_gain = out.gain;
    SourceHandle best_element = 0;
    bool found = false;
    scored.clear();
    for (SourceHandle handle : sampled) {
      if (options.lazy && found &&
          (stale_ratio[handle] < best_ratio ||
           (stale_ratio[handle] == best_ratio && handle > best_element))) {
        ++out.saved;
        continue;
      }
      const double gain =
          ctx != nullptr
              ? ctx->GainWith(handle)
              : oracle.Gain(internal::WithAdded(out.selected, handle));
      const double marginal = gain - out.gain;
      const double ratio = Ratio(marginal, singleton_costs[handle]);
      if (options.lazy) stale_ratio[handle] = ratio;
      if (marginal <= internal::kImprovementEps) continue;
      if (audit.active()) scored.emplace_back(handle, ratio);
      if (!found || ratio > best_ratio ||
          (ratio == best_ratio && handle < best_element)) {
        best_ratio = ratio;
        best_gain = gain;
        best_element = handle;
        found = true;
      }
    }
    if (!found) break;
    if (audit.active()) {
      obs::DecisionRecord record;
      record.round = round;
      record.kind = obs::DecisionKind::kAdd;
      record.chosen = best_element;
      record.gain = best_gain - out.gain;
      record.profit = best_gain;
      record.score = best_ratio;
      record.pool_size = affordable.size();
      record.sample_size = sampled.size();
      bool has_runner = false;
      SourceHandle runner = 0;
      double runner_ratio = 0.0;
      for (const auto& [handle, ratio] : scored) {
        if (handle == best_element) continue;
        if (!has_runner || ratio > runner_ratio ||
            (ratio == runner_ratio && handle < runner)) {
          has_runner = true;
          runner = handle;
          runner_ratio = ratio;
        }
      }
      if (has_runner) {
        record.has_runner_up = true;
        record.runner_up = runner;
        record.runner_up_score = runner_ratio;
        record.margin = best_ratio - runner_ratio;
      }
      audit.Commit(record);
    }
    current_cost += singleton_costs[best_element];
    out.selected = internal::WithAdded(out.selected, best_element);
    if (ctx != nullptr) ctx->Reset(out.selected);
    out.gain = best_gain;
    ++round;
  }
  return out;
}

}  // namespace

SelectionResult BudgetedGreedy(const GainCostFunction& oracle,
                               const BudgetedGreedyOptions& options) {
  FRESHSEL_TRACE_SPAN("selection/budgeted_greedy");
  const std::size_t n = oracle.universe_size();
  const double budget = oracle.budget();
  const std::uint64_t calls_before = oracle.call_count();

  // Singleton costs, evaluated once: O(n) cost-oracle calls total instead
  // of several per element per greedy round.
  std::vector<double> singleton_costs(n);
  for (std::size_t e = 0; e < n; ++e) {
    singleton_costs[e] = oracle.Cost({static_cast<SourceHandle>(e)});
  }

  std::unique_ptr<MarginalEvalContext> ctx;
  if (options.incremental && oracle.supports_incremental()) {
    ctx = oracle.MakeContext();
  }

  RoundAudit audit(options.decision_log, oracle);
  if (audit.active() && options.decision_log->algorithm().empty()) {
    options.decision_log->set_algorithm(
        options.stochastic ? "budgeted/stochastic"
                           : (options.lazy ? "budgeted/lazy"
                                           : "budgeted/eager"));
  }

  // Phase 1: cost-benefit greedy.
  Phase1Result phase1 =
      options.stochastic
          ? StochasticPhase1(oracle, singleton_costs, budget, ctx.get(),
                             options, options.decision_log)
          : (options.lazy
                 ? LazyPhase1(oracle, singleton_costs, budget, ctx.get(),
                              options.decision_log)
                 : EagerPhase1(oracle, singleton_costs, budget, ctx.get(),
                               options.decision_log));
  FRESHSEL_OBS_COUNT("selection.budgeted.phase1_selected",
                     phase1.selected.size());

  // Phase 2: the best affordable singleton can beat the ratio greedy when
  // one expensive element dominates. Singleton gains are delta
  // evaluations from the empty set when the context is available.
  audit.BeginRound();
  if (ctx != nullptr) ctx->Reset({});
  double best_single_gain = -1.0;
  SourceHandle best_single = 0;
  std::uint64_t affordable_singletons = 0;
  RunnerUpTracker tracker;
  for (std::size_t e = 0; e < n; ++e) {
    const SourceHandle handle = static_cast<SourceHandle>(e);
    if (singleton_costs[e] > budget + kBudgetSlack) continue;
    ++affordable_singletons;
    const double gain =
        ctx != nullptr ? ctx->GainWith(handle) : oracle.Gain({handle});
    if (audit.active()) tracker.Observe(handle, gain);
    if (gain > best_single_gain) {
      best_single_gain = gain;
      best_single = handle;
    }
  }

  SelectionResult result;
  if (best_single_gain > phase1.gain) {
    FRESHSEL_OBS_COUNT("selection.budgeted.singleton_wins", 1);
    if (audit.active()) {
      // The Khuller-Moss-Naor override replaces the whole phase-1 run, so
      // its record follows the phase-1 rounds and scores the singleton's
      // gain from the empty set.
      obs::DecisionRecord record;
      record.round = static_cast<std::uint32_t>(phase1.selected.size());
      record.kind = obs::DecisionKind::kSingleton;
      record.chosen = best_single;
      record.gain = best_single_gain;
      record.profit = best_single_gain;
      record.score = best_single_gain;
      record.pool_size = affordable_singletons;
      tracker.FillRunnerUp(best_single_gain, &record);
      audit.Commit(record);
    }
    result.selected = {best_single};
  } else {
    result.selected = std::move(phase1.selected);
  }
  result.profit = oracle.Profit(result.selected);
  result.oracle_calls = oracle.call_count() - calls_before;
  result.oracle_calls_saved = phase1.saved;
  result.cache_hit_rate = CacheHitRateOf(oracle);
  return result;
}

}  // namespace freshsel::selection
