#ifndef FRESHSEL_SELECTION_FREQUENCY_SELECTION_H_
#define FRESHSEL_SELECTION_FREQUENCY_SELECTION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "estimation/quality_estimator.h"
#include "selection/cost.h"
#include "selection/matroid.h"

namespace freshsel::selection {

/// The augmented ground set S_aug of Section 5: every source S_i expands
/// into versions S_i^1 .. S_i^{max_divisor}, version j acquiring only every
/// j-th source update at cost c_i / (1 + j/10). "Select at most one version
/// per source" is the rank-1 partition matroid the varying-frequency
/// selection optimizes under.
struct AugmentedUniverse {
  /// Estimator handle of each augmented element (dense, 0..n-1).
  std::vector<estimation::QualityEstimator::SourceHandle> handles;
  /// Original source index of each element.
  std::vector<std::uint32_t> source_of;
  /// Frequency divisor of each element.
  std::vector<std::int64_t> divisor_of;
  /// Divisor-discounted cost of each element (unnormalized).
  std::vector<double> costs;
  /// One group per original source, capacity 1.
  PartitionMatroid matroid;
};

/// Registers every (source, divisor) version into `estimator` and builds
/// the augmented universe. `base_costs[i]` is the base cost of source i
/// (e.g. from CostModel::ItemShareCosts). Returns InvalidArgument on size
/// mismatches or max_divisor < 1.
Result<AugmentedUniverse> BuildAugmentedUniverse(
    estimation::QualityEstimator& estimator,
    const std::vector<const estimation::SourceProfile*>& profiles,
    const std::vector<double>& base_costs, std::int64_t max_divisor);

}  // namespace freshsel::selection

#endif  // FRESHSEL_SELECTION_FREQUENCY_SELECTION_H_
