#ifndef FRESHSEL_SELECTION_PROFIT_H_
#define FRESHSEL_SELECTION_PROFIT_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/result.h"
#include "estimation/quality_estimator.h"
#include "selection/gain.h"

namespace freshsel::selection {

using SourceHandle = estimation::QualityEstimator::SourceHandle;

/// Incremental marginal-evaluation protocol over a profit oracle: the
/// context carries the evaluation state of a *current* set S so that
/// scoring S + {x} costs O(1) oracle-internal work per candidate instead
/// of re-evaluating the whole set (for the estimator-backed oracle:
/// O(steps * |T_f|) instead of O(|S| * steps * |T_f|)). The greedy family
/// re-roots the context with `Reset` after each accepted move, turning a
/// selection run from O(k^2 n) into O(k n) estimator work.
///
/// Calling conventions mirror the plain oracle: `CurrentProfit`/`GainWith`
/// etc. count one oracle call each (infeasible `ProfitWith`/`CurrentProfit`
/// return -infinity without counting, exactly like `Profit`), so call
/// accounting is identical between the incremental and plain paths.
/// Evaluated values agree with the plain oracle to ulp precision - the
/// factor products are associated in context order rather than set order -
/// and are bit-identical whenever the context was `Reset` to the canonical
/// sorted set and the candidate sorts last.
///
/// Contexts are single-threaded; parallel evaluation paths create one per
/// worker chunk (`MakeContext` itself is safe to call concurrently on a
/// thread-safe oracle).
class MarginalEvalContext {
 public:
  virtual ~MarginalEvalContext() = default;

  /// Rebuilds the context over `set`, which must be canonically sorted
  /// (the representation the selection layer maintains, see set_util.h).
  virtual void Reset(const std::vector<SourceHandle>& set) = 0;
  /// Extends the current set by `handle`.
  virtual void Push(SourceHandle handle) = 0;
  /// Undoes the most recent `Push` exactly. Pre: the set is non-empty.
  virtual void Pop() = 0;
  /// The current set, canonically sorted.
  virtual const std::vector<SourceHandle>& set() const = 0;

  /// Value of the current set S (counts one oracle call, -infinity when S
  /// is over budget).
  virtual double CurrentProfit() = 0;
  /// Gain component of S (counts one oracle call).
  virtual double CurrentGain() = 0;
  /// Value of S + {handle} without mutating the context; cost independent
  /// of |S|.
  virtual double ProfitWith(SourceHandle handle) = 0;
  /// Gain of S + {handle} without mutating the context.
  virtual double GainWith(SourceHandle handle) = 0;
};

/// Abstract set-function oracle the selection algorithms maximize. Concrete
/// instances: `ProfitOracle` (the real estimator-backed profit) and the
/// synthetic submodular functions used by the tests and microbenches.
/// Implementations count their oracle calls for the runtime experiments;
/// the counter is atomic so one oracle can be shared by the parallel
/// candidate-evaluation paths without losing counts.
class ProfitFunction {
 public:
  virtual ~ProfitFunction() = default;

  /// Number of selectable elements (handles are 0..n-1).
  virtual std::size_t universe_size() const = 0;

  /// Value of a set; -infinity marks an infeasible set.
  virtual double Profit(const std::vector<SourceHandle>& set) const = 0;

  /// True when `Profit` (and `Gain`/`Cost` where present) may be called
  /// concurrently from several threads. The parallel evaluation paths
  /// consult this before fanning out; implementations with unguarded
  /// mutable scratch state must leave it false.
  virtual bool thread_safe() const { return false; }

  /// True when `MakeContext` returns a working incremental context. The
  /// algorithms fall back to plain `Profit`/`Gain` calls otherwise, so
  /// synthetic test oracles need not implement the protocol.
  virtual bool supports_incremental() const { return false; }

  /// A fresh incremental context over the empty set, or null when the
  /// protocol is unsupported (see `supports_incremental`).
  virtual std::unique_ptr<MarginalEvalContext> MakeContext() const {
    return nullptr;
  }

  std::uint64_t call_count() const {
    return calls_.load(std::memory_order_relaxed);
  }
  void ResetCallCount() const {
    calls_.store(0, std::memory_order_relaxed);
  }

 protected:
  ProfitFunction() = default;
  // std::atomic is neither copyable nor movable; oracles are moved through
  // Result<T>, so transfer the counter value by hand.
  ProfitFunction(const ProfitFunction& other)
      : calls_(other.call_count()) {}
  ProfitFunction& operator=(const ProfitFunction& other) {
    calls_.store(other.call_count(), std::memory_order_relaxed);
    return *this;
  }

  mutable std::atomic<std::uint64_t> calls_{0};
};

/// Profit oracles that additionally expose the gain/cost decomposition
/// profit = gain - weight * cost and a cost budget. `BudgetedGreedy` and
/// the cached decorator operate on this interface so they work with both
/// the estimator-backed `ProfitOracle` and synthetic test functions.
class GainCostFunction : public ProfitFunction {
 public:
  /// Gain component of a set (monotone submodular for the paper's
  /// coverage / global-freshness metrics).
  virtual double Gain(const std::vector<SourceHandle>& set) const = 0;

  /// Additive cost of a set.
  virtual double Cost(const std::vector<SourceHandle>& set) const = 0;

  /// Budget on `Cost`; +infinity when unconstrained.
  virtual double budget() const = 0;
};

/// How per-time-point gains are aggregated over T_f (the paper's A in
/// Section 2.2, "e.g., average or max"). Only kAverage preserves
/// submodularity (Section 5's condition); with kMax or kMin use GRASP.
enum class AggregateMode {
  kAverage,
  kMax,
  kMin,
};

/// The value oracle the selection algorithms maximize:
///   profit(S) = gain(S) - cost_weight * cost(S),
/// with gain(S) the aggregate over the eval times T_f of the gain model
/// applied to the estimated quality (the paper's A; average by default),
/// and cost(S) the sum of the selected sources' costs. Gain and cost are
/// both rescaled to [0, 1] as in Section 6.1: gain by its maximum
/// attainable value, cost by the total cost of the whole universe.
///
/// Sets over the cost budget evaluate to -infinity (infeasible).
///
/// Oracle calls are counted for the runtime/telemetry experiments.
///
/// Thread-safe once construction finishes: `Profit`/`Gain`/`Cost` only
/// read oracle state and the estimator's evaluation path is internally
/// synchronized, so the parallel selection paths may share one oracle.
class ProfitOracle : public GainCostFunction {
 public:
  struct Config {
    GainModel gain{GainFamily::kLinear, QualityMetric::kCoverage};
    /// Budget on *normalized* cost (1.0 = cost of acquiring everything).
    double budget = std::numeric_limits<double>::infinity();
    double cost_weight = 1.0;
    AggregateMode aggregate = AggregateMode::kAverage;
  };

  /// `costs[h]` is the (already divisor-discounted) cost of the estimator's
  /// source handle h; must cover every registered handle. Returns
  /// InvalidArgument on size mismatch.
  static Result<ProfitOracle> Create(
      const estimation::QualityEstimator* estimator,
      std::vector<double> costs, Config config);

  /// Number of selectable sources (== estimator handles).
  std::size_t universe_size() const override { return costs_.size(); }

  /// Normalized cost of a set.
  double Cost(const std::vector<SourceHandle>& set) const override;

  /// Normalized average gain of a set over the eval times.
  double Gain(const std::vector<SourceHandle>& set) const override;

  /// profit = Gain - cost_weight * Cost, or -infinity over budget.
  double Profit(const std::vector<SourceHandle>& set) const override;

  bool thread_safe() const override { return true; }

  /// True when the estimator supports delta evaluation (effectiveness
  /// caching on, at least one eval time).
  bool supports_incremental() const override;

  /// An incremental context backed by the estimator's `EvalContext`:
  /// `ProfitWith`/`GainWith` score S + {x} in O(steps * |T_f|),
  /// independent of |S|. Null when `supports_incremental()` is false.
  std::unique_ptr<MarginalEvalContext> MakeContext() const override;

  /// Budget on normalized cost (from the config; +infinity by default).
  double budget() const override { return config_.budget; }

  bool WithinBudget(const std::vector<SourceHandle>& set) const {
    return Cost(set) <= config_.budget + 1e-12;
  }

  const estimation::QualityEstimator& estimator() const {
    return *estimator_;
  }
  const Config& config() const { return config_; }

 private:
  class IncrementalContext;

  ProfitOracle() = default;

  /// Folds per-eval-time qualities into the configured aggregate with the
  /// exact arithmetic of `Gain` (shared by the plain and delta paths).
  double AggregateGain(
      const std::vector<estimation::EstimatedQuality>& qualities) const;

  const estimation::QualityEstimator* estimator_ = nullptr;
  std::vector<double> costs_;      // Normalized per-handle costs.
  Config config_;
  double gain_scale_ = 1.0;        // 1 / max raw gain.
};

}  // namespace freshsel::selection

#endif  // FRESHSEL_SELECTION_PROFIT_H_
