#ifndef FRESHSEL_SELECTION_AUDIT_H_
#define FRESHSEL_SELECTION_AUDIT_H_

#include <cstdint>
#include <utility>

#include "obs/decision_log.h"
#include "obs/macros.h"
#include "selection/cached_oracle.h"
#include "selection/profit.h"

namespace freshsel::selection {

/// Per-round bookkeeping for the selection decision log (obs v2): snapshots
/// the oracle-call and cache-hit tallies when a round begins so each
/// committed DecisionRecord carries the round's *deltas*, and derives the
/// uniform calls-saved accounting
///
///   calls_saved = pool_size - (oracle_calls + cache_hits), floored at 0,
///
/// i.e. the evaluations an eager full scan of the round's candidate pool
/// would have made minus what the round actually spent (misses) or served
/// from memo (hits). For the eager scan itself this is 0; for CELF it is
/// the stale-bound skips; for stochastic greedy it is the unsampled pool
/// plus the within-sample skips.
///
/// The cache-hit sampling goes through CachedProfitOracle::hit_count()
/// (lock-free) when the oracle is the memoizing decorator, discovered with
/// one dynamic_cast at construction - the same idiom the decorator itself
/// uses to discover a GainCostFunction base.
///
/// Under -DFRESHSEL_OBS=OFF (or a per-TU FRESHSEL_OBS_FORCE_OFF) the class
/// collapses to a no-op whose active() is compile-time false, so every
/// `if (audit.active()) { ... }` recording block is dead-code-eliminated:
/// the audit trail costs nothing when observability is off. The *type*
/// DecisionLog always exists (the obs library is always built), so option
/// structs keep their pointer fields in every configuration and no ODR
/// hazard arises from mixing per-TU settings.
#if FRESHSEL_OBS_ACTIVE

class RoundAudit {
 public:
  RoundAudit(obs::DecisionLog* log, const ProfitFunction& oracle)
      : log_(log),
        oracle_(&oracle),
        cache_(log != nullptr
                   ? dynamic_cast<const CachedProfitOracle*>(&oracle)
                   : nullptr) {}

  bool active() const { return log_ != nullptr; }

  /// Marks the start of a round: subsequent oracle calls and cache hits
  /// are attributed to the next Commit.
  void BeginRound() {
    if (log_ == nullptr) return;
    calls_start_ = oracle_->call_count();
    hits_start_ = CacheHits();
  }

  /// Fills the call-accounting fields of `record` with the deltas since
  /// BeginRound and appends it to the log.
  void Commit(obs::DecisionRecord record) {
    if (log_ == nullptr) return;
    record.oracle_calls = oracle_->call_count() - calls_start_;
    record.cache_hits = CacheHits() - hits_start_;
    const std::uint64_t spent = record.oracle_calls + record.cache_hits;
    record.calls_saved =
        record.pool_size > spent ? record.pool_size - spent : 0;
    log_->Record(record);
  }

 private:
  std::uint64_t CacheHits() const {
    return cache_ != nullptr ? cache_->hit_count() : 0;
  }

  obs::DecisionLog* log_;
  const ProfitFunction* oracle_;
  const CachedProfitOracle* cache_;
  std::uint64_t calls_start_ = 0;
  std::uint64_t hits_start_ = 0;
};

#else  // !FRESHSEL_OBS_ACTIVE

class RoundAudit {
 public:
  RoundAudit(obs::DecisionLog* /*log*/, const ProfitFunction& /*oracle*/) {}
  bool active() const { return false; }
  void BeginRound() {}
  void Commit(obs::DecisionRecord /*record*/) {}
};

#endif  // FRESHSEL_OBS_ACTIVE

/// Process-lifetime hit rate of the memoizing decorator in front of the
/// oracle, 0 for uncached oracles. The algorithms fold this into
/// SelectionResult::cache_hit_rate; independent of the obs flag (the field
/// is part of the result contract, not instrumentation).
inline double CacheHitRateOf(const ProfitFunction& oracle) {
  const auto* cached = dynamic_cast<const CachedProfitOracle*>(&oracle);
  return cached != nullptr ? cached->stats().hit_rate() : 0.0;
}

/// Tracks the best and second-best scored candidate of one eager scan
/// (ties keep the first seen, matching the algorithms' lowest-handle
/// tie-breaks when candidates are visited in ascending handle order).
/// Plain data - cheap enough to run unconditionally, but callers guard
/// updates behind audit.active() to keep unaudited hot paths untouched.
struct RunnerUpTracker {
  bool has_best = false;
  SourceHandle best = 0;
  double best_score = 0.0;
  bool has_second = false;
  SourceHandle second = 0;
  double second_score = 0.0;

  void Observe(SourceHandle handle, double score) {
    if (!has_best || score > best_score) {
      if (has_best) {
        has_second = true;
        second = best;
        second_score = best_score;
      }
      has_best = true;
      best = handle;
      best_score = score;
    } else if (!has_second || score > second_score) {
      has_second = true;
      second = handle;
      second_score = score;
    }
  }

  /// Copies the runner-up fields into `record` (margin relative to
  /// `winning_score`, the score of the accepted candidate).
  void FillRunnerUp(double winning_score, obs::DecisionRecord* record) const {
    record->has_runner_up = has_second;
    if (has_second) {
      record->runner_up = second;
      record->runner_up_score = second_score;
      record->margin = winning_score - second_score;
    }
  }
};

}  // namespace freshsel::selection

#endif  // FRESHSEL_SELECTION_AUDIT_H_
