#include "selection/cost.h"

#include <cstdint>

#include "common/check.h"

namespace freshsel::selection {

std::vector<double> CostModel::ItemShareCosts(
    const std::vector<const estimation::SourceProfile*>& profiles,
    double item_price) {
  FRESHSEL_CHECK_NONNEG(item_price);
  std::vector<double> costs(profiles.size(), 0.0);
  if (profiles.empty()) return costs;
  const std::size_t width = profiles[0]->sig_t0.all.size();
  // mentions[e] = number of sources carrying item e at t0. Word-level bit
  // iteration keeps this O(total items across sources) rather than
  // O(sources * width) - the BL+ scalability experiments register
  // thousands of sources.
  std::vector<std::uint32_t> mentions(width, 0);
  for (const estimation::SourceProfile* profile : profiles) {
    profile->sig_t0.all.VisitSetBits(
        [&](std::size_t e) { ++mentions[e]; });
  }
  for (std::size_t s = 0; s < profiles.size(); ++s) {
    double total = 0.0;
    profiles[s]->sig_t0.all.VisitSetBits([&](std::size_t e) {
      total += item_price / static_cast<double>(mentions[e]);
    });
    costs[s] = total;
  }
  return costs;
}

double CostModel::DiscountForDivisor(double base_cost, std::int64_t divisor) {
  FRESHSEL_CHECK(divisor >= 1) << "acquisition divisor must be >= 1, got "
                               << divisor;
  return base_cost / (1.0 + static_cast<double>(divisor) / 10.0);
}

}  // namespace freshsel::selection
