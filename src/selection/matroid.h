#ifndef FRESHSEL_SELECTION_MATROID_H_
#define FRESHSEL_SELECTION_MATROID_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "selection/profit.h"

namespace freshsel::selection {

/// A partition matroid over the source universe: elements are partitioned
/// into groups and an independent set contains at most `capacity[g]`
/// elements of group g. The varying-frequency selection of Section 5 uses
/// rank-1 groups ("pick at most one frequency version per source"), each a
/// uniform matroid U^1.
class PartitionMatroid {
 public:
  /// `group_of[e]` is the group of element e; `capacities[g]` its rank.
  /// Returns InvalidArgument when a group index is out of range or a
  /// capacity is zero.
  static Result<PartitionMatroid> Create(std::vector<std::uint32_t> group_of,
                                         std::vector<std::uint32_t> capacities);

  std::size_t element_count() const { return group_of_.size(); }
  std::size_t group_count() const { return capacities_.size(); }
  std::uint32_t GroupOf(SourceHandle e) const { return group_of_[e]; }
  std::uint32_t CapacityOf(std::uint32_t group) const {
    return capacities_[group];
  }

  /// True when `set` is independent.
  bool IsIndependent(const std::vector<SourceHandle>& set) const;

  /// True when `set` (assumed independent) stays independent after adding
  /// `element`.
  bool CanAdd(const std::vector<SourceHandle>& set,
              SourceHandle element) const;

  /// Elements of `set` sharing `element`'s group (the candidates that an
  /// exchange must remove to restore independence).
  std::vector<SourceHandle> ConflictsWith(
      const std::vector<SourceHandle>& set, SourceHandle element) const;

 private:
  PartitionMatroid(std::vector<std::uint32_t> group_of,
                   std::vector<std::uint32_t> capacities)
      : group_of_(std::move(group_of)), capacities_(std::move(capacities)) {}

  std::vector<std::uint32_t> group_of_;
  std::vector<std::uint32_t> capacities_;
};

}  // namespace freshsel::selection

#endif  // FRESHSEL_SELECTION_MATROID_H_
