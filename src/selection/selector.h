#ifndef FRESHSEL_SELECTION_SELECTOR_H_
#define FRESHSEL_SELECTION_SELECTOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "selection/algorithms.h"

namespace freshsel::obs {
struct RunReport;
}  // namespace freshsel::obs

namespace freshsel::selection {

/// Which selection algorithm the facade dispatches to.
enum class Algorithm {
  kGreedy,     ///< Dong et al. greedy baseline.
  kMaxSub,     ///< Algorithm 1, or Algorithm 2 when a matroid is given.
  kGrasp,      ///< GRASP(kappa, r).
  kHillClimb,  ///< GRASP(1, 1).
};

/// Human-readable algorithm label ("Greedy", "MaxSub", "GRASP-(5,20)", ...).
std::string AlgorithmName(Algorithm algorithm, int kappa = 1, int r = 1);

/// Facade configuration for `SelectSources`.
struct SelectorConfig {
  Algorithm algorithm = Algorithm::kMaxSub;
  double epsilon = 0.5;  ///< Local-search threshold parameter.
  int grasp_kappa = 1;
  int grasp_restarts = 1;
  std::uint64_t seed = 42;
  /// Lazy (CELF) candidate evaluation for the greedy baseline; selections
  /// are identical either way (see GreedyOptions::lazy), false forces the
  /// eager full re-scan.
  bool lazy_greedy = true;
  /// Delta evaluation through the oracle's incremental context for the
  /// greedy and GRASP paths when the oracle supports it (see
  /// GreedyOptions::incremental); false forces plain full-set oracle
  /// calls everywhere.
  bool incremental_oracle = true;
  /// Stochastic greedy for the kGreedy path (see
  /// GreedyOptions::stochastic): per-round uniform candidate sampling at
  /// slack `stochastic_epsilon`, seeded from `seed`. Ignored by the other
  /// algorithms.
  bool stochastic_greedy = false;
  double stochastic_epsilon = 0.1;
  /// Explicit cardinality k for the sample-size formula; 0 derives it
  /// from the matroid (or n when unconstrained).
  std::size_t stochastic_k = 0;
  /// Optional thread pool (not owned) for GRASP's parallel candidate
  /// evaluation; used only when the oracle reports thread_safe().
  ThreadPool* pool = nullptr;
  /// Optional run report (not owned) the selector folds its outcome into:
  /// the algorithm label, oracle-call counters (made / saved), the final
  /// profit, and a timed "select/<algo>" stage (see obs/report.h). The
  /// caller owns serialization (--metrics-out).
  obs::RunReport* report = nullptr;
  /// Optional per-run decision log (not owned) threaded into the greedy,
  /// budgeted, and GRASP paths (MaxSub's local search is not audited).
  /// Callers that want the trail inside a RunReport pass
  /// `&report->decision_log` explicitly - the selector never wires the two
  /// together on its own, so repeated SelectSources calls against one
  /// report (bench loops) do not accumulate records.
  obs::DecisionLog* decision_log = nullptr;
};

/// Runs the configured algorithm on `oracle`, constrained by `matroid` when
/// given (Greedy and GRASP check feasibility directly; MaxSub switches to
/// the Algorithm 2 matroid local search).
Result<SelectionResult> SelectSources(const ProfitFunction& oracle,
                                      const SelectorConfig& config,
                                      const PartitionMatroid* matroid =
                                          nullptr);

}  // namespace freshsel::selection

#endif  // FRESHSEL_SELECTION_SELECTOR_H_
