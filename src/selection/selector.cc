#include "selection/selector.h"

#include <string>

#include "common/string_util.h"
#include "obs/macros.h"
#include "obs/report.h"
#include "obs/timer.h"

namespace freshsel::selection {

std::string AlgorithmName(Algorithm algorithm, int kappa, int r) {
  switch (algorithm) {
    case Algorithm::kGreedy:
      return "Greedy";
    case Algorithm::kMaxSub:
      return "MaxSub";
    case Algorithm::kGrasp:
      return StringPrintf("GRASP-(%d,%d)", kappa, r);
    case Algorithm::kHillClimb:
      return "HillClimb";
  }
  return "Unknown";
}

namespace {

Result<SelectionResult> Dispatch(const ProfitFunction& oracle,
                                 const SelectorConfig& config,
                                 const PartitionMatroid* matroid) {
  switch (config.algorithm) {
    case Algorithm::kGreedy: {
      GreedyOptions options;
      options.lazy = config.lazy_greedy;
      options.incremental = config.incremental_oracle;
      options.stochastic = config.stochastic_greedy;
      options.stochastic_epsilon = config.stochastic_epsilon;
      options.stochastic_seed = config.seed;
      options.stochastic_k = config.stochastic_k;
      options.decision_log = config.decision_log;
      return Greedy(oracle, matroid, options);
    }
    case Algorithm::kMaxSub:
      if (matroid != nullptr) {
        return MaxSubMatroid(oracle, {matroid}, config.epsilon);
      }
      return MaxSub(oracle, config.epsilon);
    case Algorithm::kGrasp: {
      GraspParams params;
      params.kappa = config.grasp_kappa;
      params.restarts = config.grasp_restarts;
      params.seed = config.seed;
      params.pool = config.pool;
      params.incremental = config.incremental_oracle;
      params.decision_log = config.decision_log;
      return Grasp(oracle, params, matroid);
    }
    case Algorithm::kHillClimb: {
      GraspParams params;
      params.kappa = 1;
      params.restarts = 1;
      params.seed = config.seed;
      params.pool = config.pool;
      params.incremental = config.incremental_oracle;
      params.decision_log = config.decision_log;
      return Grasp(oracle, params, matroid);
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

}  // namespace

Result<SelectionResult> SelectSources(const ProfitFunction& oracle,
                                      const SelectorConfig& config,
                                      const PartitionMatroid* matroid) {
  FRESHSEL_TRACE_SPAN("selection/select");
  FRESHSEL_OBS_SCOPED_LATENCY("selection.select.seconds");
  FRESHSEL_OBS_GAUGE_SET("selection.universe.size", oracle.universe_size());

  obs::WallTimer timer;
  Result<SelectionResult> result = Dispatch(oracle, config, matroid);
  const double seconds = timer.ElapsedSeconds();

  if (result.ok()) {
    FRESHSEL_OBS_COUNT("selection.oracle.calls", result->oracle_calls);
    FRESHSEL_OBS_COUNT("selection.oracle.calls_saved",
                       result->oracle_calls_saved);
    if (config.report != nullptr) {
      std::string algo = AlgorithmName(
          config.algorithm, config.grasp_kappa, config.grasp_restarts);
      if (config.algorithm == Algorithm::kGreedy && config.stochastic_greedy) {
        algo = StringPrintf("StochasticGreedy-(eps=%g)",
                            config.stochastic_epsilon);
      }
      obs::RunReport& report = *config.report;
      report.labels["algorithm"] = algo;
      report.counters["oracle_calls"] += result->oracle_calls;
      report.counters["oracle_calls_saved"] += result->oracle_calls_saved;
      report.counters["selected_sources"] += result->selected.size();
      report.values["profit"] = result->profit;
      report.values["cache_hit_rate"] = result->cache_hit_rate;
      report.AddStage("select/" + algo, seconds);
    }
  }
  return result;
}

}  // namespace freshsel::selection
