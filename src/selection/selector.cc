#include "selection/selector.h"

#include "common/string_util.h"

namespace freshsel::selection {

std::string AlgorithmName(Algorithm algorithm, int kappa, int r) {
  switch (algorithm) {
    case Algorithm::kGreedy:
      return "Greedy";
    case Algorithm::kMaxSub:
      return "MaxSub";
    case Algorithm::kGrasp:
      return StringPrintf("GRASP-(%d,%d)", kappa, r);
    case Algorithm::kHillClimb:
      return "HillClimb";
  }
  return "Unknown";
}

Result<SelectionResult> SelectSources(const ProfitFunction& oracle,
                                      const SelectorConfig& config,
                                      const PartitionMatroid* matroid) {
  switch (config.algorithm) {
    case Algorithm::kGreedy: {
      GreedyOptions options;
      options.lazy = config.lazy_greedy;
      return Greedy(oracle, matroid, options);
    }
    case Algorithm::kMaxSub:
      if (matroid != nullptr) {
        return MaxSubMatroid(oracle, {matroid}, config.epsilon);
      }
      return MaxSub(oracle, config.epsilon);
    case Algorithm::kGrasp: {
      GraspParams params;
      params.kappa = config.grasp_kappa;
      params.restarts = config.grasp_restarts;
      params.seed = config.seed;
      params.pool = config.pool;
      return Grasp(oracle, params, matroid);
    }
    case Algorithm::kHillClimb: {
      GraspParams params;
      params.kappa = 1;
      params.restarts = 1;
      params.seed = config.seed;
      params.pool = config.pool;
      return Grasp(oracle, params, matroid);
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

}  // namespace freshsel::selection
