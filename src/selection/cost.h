#ifndef FRESHSEL_SELECTION_COST_H_
#define FRESHSEL_SELECTION_COST_H_

#include <cstdint>
#include <vector>

#include "estimation/source_profile.h"

namespace freshsel::selection {

/// The paper's additive cost model (Section 6.1): every item has a base
/// price, an item's actual cost is price / (#sources mentioning it), and a
/// source costs the sum of its items' costs. Acquiring a source at
/// frequency divisor m discounts its cost to c / (1 + m / 10).
class CostModel {
 public:
  static constexpr double kItemPrice = 10.0;

  /// Computes per-source base costs from the sources' full (unrestricted)
  /// t0 signatures: cost_s = sum over items of S of price / n_mentions.
  /// All profiles must share one signature width.
  static std::vector<double> ItemShareCosts(
      const std::vector<const estimation::SourceProfile*>& profiles,
      double item_price = kItemPrice);

  /// The frequency discount c' = c / (1 + m / 10).
  static double DiscountForDivisor(double base_cost, std::int64_t divisor);
};

}  // namespace freshsel::selection

#endif  // FRESHSEL_SELECTION_COST_H_
