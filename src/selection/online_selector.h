#ifndef FRESHSEL_SELECTION_ONLINE_SELECTOR_H_
#define FRESHSEL_SELECTION_ONLINE_SELECTOR_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/result.h"
#include "estimation/quality_estimator.h"
#include "selection/algorithms.h"
#include "selection/profit.h"

namespace freshsel::selection {

/// Online source selection: the paper's future-work scenario where new
/// sources appear over time ("examine scenarios where new sources appear
/// over time", Section 8).
///
/// The selector maintains a running selection. When a new source is
/// registered it performs a cheap incremental update (try adding the
/// newcomer; try swapping it for each incumbent), and every
/// `reoptimize_every` arrivals it refreshes the whole selection with a
/// warm-started MaxSub local search. Incremental updates cost O(|S|)
/// oracle calls per arrival instead of the O(n^3 log n) of a from-scratch
/// run, while the periodic refresh bounds the drift from the offline
/// optimum.
///
/// The selector owns its profit oracle (rebuilt on arrival because cost
/// normalization depends on the universe) but not the estimator, which the
/// caller keeps and may share.
class OnlineSelector {
 public:
  struct Config {
    GainModel gain{GainFamily::kLinear, QualityMetric::kCoverage};
    double budget = std::numeric_limits<double>::infinity();
    double cost_weight = 1.0;
    double epsilon = 0.5;
    /// Full warm-started refresh every k arrivals; 0 disables refreshes.
    int reoptimize_every = 8;
  };

  /// `estimator` must outlive the selector and must not be mutated except
  /// through this selector.
  static Result<OnlineSelector> Create(
      estimation::QualityEstimator* estimator, Config config);

  OnlineSelector(OnlineSelector&&) noexcept = default;
  OnlineSelector& operator=(OnlineSelector&&) noexcept = default;

  /// Registers a newly appeared source (raw, unnormalized cost) and
  /// updates the running selection. Returns the source's handle.
  Result<SourceHandle> AddSource(const estimation::SourceProfile* profile,
                                 double cost, std::int64_t divisor = 1);

  const std::vector<SourceHandle>& selection() const { return selection_; }
  double profit() const { return profit_; }
  std::size_t universe_size() const { return raw_costs_.size(); }
  /// Total oracle calls spent across all updates (for the cost comparison
  /// against from-scratch reruns).
  std::uint64_t total_oracle_calls() const { return total_calls_; }
  /// Arrivals since construction.
  int arrivals() const { return arrivals_; }

  /// Forces a full warm-started refresh now.
  void Reoptimize();

 private:
  OnlineSelector(estimation::QualityEstimator* estimator, Config config)
      : estimator_(estimator), config_(std::move(config)) {}

  Status RebuildOracle();
  void IncrementalUpdate(SourceHandle newcomer);

  estimation::QualityEstimator* estimator_ = nullptr;
  Config config_;
  std::vector<double> raw_costs_;
  std::unique_ptr<ProfitOracle> oracle_;
  std::vector<SourceHandle> selection_;
  double profit_ = 0.0;
  int arrivals_ = 0;
  std::uint64_t total_calls_ = 0;
};

}  // namespace freshsel::selection

#endif  // FRESHSEL_SELECTION_ONLINE_SELECTOR_H_
