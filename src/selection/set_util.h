#ifndef FRESHSEL_SELECTION_SET_UTIL_H_
#define FRESHSEL_SELECTION_SET_UTIL_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "selection/profit.h"

namespace freshsel::selection::internal {

/// The one absolute improvement threshold shared by the greedy family
/// (Greedy, GRASP construction/local search, BudgetedGreedy): a move must
/// improve the objective by more than this to count, so near-zero marginal
/// chatter terminates instead of cycling. The Feige-Mirrokni local searches
/// use the paper's multiplicative (1 + eps/n^k) thresholds via `ImprovesBy`
/// below instead.
inline constexpr double kImprovementEps = 1e-12;

/// Local-search improvement test with the multiplicative threshold
/// candidate > (1 + slack) * current for meaningfully positive current
/// values and a small absolute guard otherwise (keeps the search finite
/// when profits are near zero or negative). Used by MaxSub (slack =
/// eps/n^2) and the matroid local search (slack = eps/n^4).
inline bool ImprovesBy(double candidate, double current, double slack) {
  if (!std::isfinite(candidate)) return false;
  const double margin = slack * std::max(std::fabs(current), 1e-3);
  return candidate > current + margin;
}

/// Sorted-vector set helpers shared by the selection algorithms.

inline bool Contains(const std::vector<SourceHandle>& set, SourceHandle e) {
  return std::binary_search(set.begin(), set.end(), e);
}

inline std::vector<SourceHandle> WithAdded(
    const std::vector<SourceHandle>& set, SourceHandle e) {
  std::vector<SourceHandle> out = set;
  out.insert(std::upper_bound(out.begin(), out.end(), e), e);
  return out;
}

inline std::vector<SourceHandle> WithRemoved(
    const std::vector<SourceHandle>& set, SourceHandle e) {
  std::vector<SourceHandle> out;
  out.reserve(set.size());
  for (SourceHandle x : set) {
    if (x != e) out.push_back(x);
  }
  return out;
}

inline std::vector<SourceHandle> WithRemovedAll(
    const std::vector<SourceHandle>& set,
    const std::vector<SourceHandle>& removals) {
  std::vector<SourceHandle> out;
  out.reserve(set.size());
  for (SourceHandle x : set) {
    if (std::find(removals.begin(), removals.end(), x) == removals.end()) {
      out.push_back(x);
    }
  }
  return out;
}

inline std::vector<SourceHandle> FullUniverse(std::size_t n) {
  std::vector<SourceHandle> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<SourceHandle>(i);
  return all;
}

inline std::vector<SourceHandle> Complement(
    const std::vector<SourceHandle>& set, std::size_t n) {
  std::vector<SourceHandle> out;
  out.reserve(n - set.size());
  std::size_t j = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (j < set.size() && set[j] == i) {
      ++j;
    } else {
      out.push_back(static_cast<SourceHandle>(i));
    }
  }
  return out;
}

}  // namespace freshsel::selection::internal

#endif  // FRESHSEL_SELECTION_SET_UTIL_H_
